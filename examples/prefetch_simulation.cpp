// Scenario example: deploy DART as an LLC prefetcher in the timing
// simulator and compare it against Best-Offset and a no-prefetcher baseline
// on a pointer-heavy workload — the use case the paper's introduction
// motivates (rule-based prefetchers cannot learn irregular correlations).
//
// Built on the experiment API: every prefetcher is a registry spec string,
// so extra scenarios need no code — pass them on the command line:
//
//   ./build/examples/prefetch_simulation [app] [spec ...]
//   ./build/examples/prefetch_simulation 605.mcf "stride:table=512,degree=4" \
//       "dart:variant=l,threshold=0.6"
#include <cstdio>

#include "core/experiment.hpp"

using namespace dart;

int main(int argc, char** argv) try {
  const trace::App app = argc > 1 ? trace::app_from_name(argv[1]) : trace::App::kMcf;

  core::ExperimentSpec spec;
  spec.apps = {app};
  spec.prefetchers = {"bo", "isb", "dart"};
  for (int i = 2; i < argc; ++i) spec.prefetchers.push_back(argv[i]);
  spec.pipeline.raw_accesses = 200000;
  spec.pipeline.prep.max_samples = 4000;

  std::printf("== %s ==\n", trace::app_name(app).c_str());
  std::printf("running %zu prefetchers (training happens lazily per spec)...\n",
              spec.prefetchers.size());
  const core::ExperimentResult result = core::ExperimentRunner(spec).run();

  std::printf("\n%-28s %8s %10s %10s %10s\n", "prefetcher (spec)", "IPC", "improve",
              "accuracy", "coverage");
  if (!result.cells.empty()) {
    std::printf("%-28s %8.3f %9.1f%% %9s %9s\n", "(none)", result.cells[0].baseline_ipc, 0.0,
                "-", "-");
  }
  for (const auto& c : result.cells) {
    const std::string label =
        c.prefetcher == c.spec ? c.prefetcher : c.prefetcher + " (" + c.spec + ")";
    std::printf("%-28s %8.3f %9.1f%% %9.1f%% %9.1f%%\n", label.c_str(), c.stats.ipc(),
                100.0 * c.ipc_improvement, 100.0 * c.stats.accuracy(),
                100.0 * c.stats.coverage());
  }
  const core::ExperimentCell* dart = result.find("DART", trace::app_name(app));
  if (dart != nullptr) {
    std::printf("\nDART predictor: %.1f KB of tables, %zu-cycle prediction latency\n",
                dart->storage_bytes / 1024.0, dart->latency_cycles);
  }
  result.write_json("prefetch_simulation.json");
  std::printf("[json] prefetch_simulation.json\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
