// Scenario example: deploy DART as an LLC prefetcher in the timing
// simulator and compare it against Best-Offset and a no-prefetcher baseline
// on a pointer-heavy workload — the use case the paper's introduction
// motivates (rule-based prefetchers cannot learn irregular correlations).
//
// Run: ./build/examples/prefetch_simulation [app] (default 605.mcf)
#include <cstdio>

#include "core/configs.hpp"
#include "core/pipeline.hpp"
#include "prefetch/nn_prefetchers.hpp"
#include "prefetch/rule_based.hpp"
#include "sim/simulator.hpp"
#include "tabular/complexity.hpp"

using namespace dart;

int main(int argc, char** argv) {
  const trace::App app = argc > 1 ? trace::app_from_name(argv[1]) : trace::App::kMcf;

  core::PipelineOptions options = core::PipelineOptions::bench_defaults();
  options.raw_accesses = 200000;
  options.prep.max_samples = 4000;

  std::printf("== %s ==\n", trace::app_name(app).c_str());
  core::Pipeline pipe(app, options);
  pipe.prepare();

  // Train and tabularize (teacher -> KD student -> tables).
  std::printf("training + tabularizing DART...\n");
  tabular::TabularizeOptions tab = options.tab;
  tab.encoder = pq::EncoderKind::kHashTree;  // O(log K) queries in the loop
  auto dart_predictor =
      std::make_shared<tabular::TabularPredictor>(pipe.tabularize(tab));
  const auto cost = tabular::tabular_model_cost(options.student_arch, tab.tables);

  prefetch::NnAdapterOptions adapter;
  adapter.prep = options.prep;
  adapter.latency = cost.latency_cycles;
  prefetch::DartPrefetcher dart(dart_predictor, adapter);
  prefetch::BestOffsetPrefetcher bo;
  prefetch::IsbPrefetcher isb;

  sim::Simulator simulator(options.sim);
  const auto& trace = pipe.raw_trace();
  const sim::SimStats base = simulator.run(trace);
  const sim::SimStats s_bo = simulator.run(trace, &bo);
  const sim::SimStats s_isb = simulator.run(trace, &isb);
  const sim::SimStats s_dart = simulator.run(trace, &dart);

  std::printf("\n%-12s %8s %10s %10s %10s\n", "prefetcher", "IPC", "improve", "accuracy",
              "coverage");
  auto row = [&](const char* name, const sim::SimStats& s) {
    std::printf("%-12s %8.3f %9.1f%% %9.1f%% %9.1f%%\n", name, s.ipc(),
                base.ipc() > 0 ? 100.0 * (s.ipc() - base.ipc()) / base.ipc() : 0.0,
                100.0 * s.accuracy(), 100.0 * s.coverage());
  };
  row("(none)", base);
  row("BO", s_bo);
  row("ISB", s_isb);
  row("DART", s_dart);
  std::printf("\nDART predictor: %.1f KB of tables, %zu-cycle prediction latency\n",
              dart_predictor->storage_bytes() / 1024.0, cost.latency_cycles);
  return 0;
}
