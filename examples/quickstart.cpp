// Quickstart: the whole DART recipe on one workload, in ~60 lines.
//
//   1. Generate a synthetic mcf-like LLC trace.
//   2. Train the attention teacher, distill the student (§VI-B/D).
//   3. Tabularize the student into the table hierarchy (§VI-E).
//   4. Compare F1 scores and storage, then predict for one window.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/configs.hpp"
#include "core/pipeline.hpp"

using namespace dart;

int main() {
  core::PipelineOptions options = core::PipelineOptions::bench_defaults();
  options.prep.max_samples = 3000;   // keep the demo snappy
  options.teacher_train.epochs = 4;
  options.student_train.epochs = 4;

  core::Pipeline pipe(trace::App::kGcc, options);
  pipe.prepare();
  std::printf("LLC trace: %zu accesses -> %zu training windows\n",
              pipe.llc_trace().size(), pipe.train_set().size());

  std::printf("training teacher (L=%zu, D=%zu)...\n", options.teacher_arch.layers,
              options.teacher_arch.dim);
  const nn::F1Result teacher_f1 = pipe.eval_nn(pipe.teacher());

  std::printf("distilling student (L=%zu, D=%zu)...\n", options.student_arch.layers,
              options.student_arch.dim);
  const nn::F1Result student_f1 = pipe.eval_nn(pipe.student());

  std::printf("tabularizing (K=%zu, C=%zu)...\n", options.tab.tables.attention.k,
              options.tab.tables.attention.c);
  tabular::TabularizeReport report;
  tabular::TabularPredictor dart = pipe.tabularize(options.tab, &report);
  const nn::F1Result dart_f1 = pipe.eval_tabular(dart);

  std::printf("\n%-22s %8s\n", "model", "F1");
  std::printf("%-22s %8.3f\n", "teacher (attention)", teacher_f1.f1);
  std::printf("%-22s %8.3f\n", "student (KD)", student_f1.f1);
  std::printf("%-22s %8.3f   (storage %.1f KB)\n", "DART (tables)", dart_f1.f1,
              dart.storage_bytes() / 1024.0);

  std::printf("\nlayer-wise cosine similarity (tabular vs NN):\n");
  for (const auto& stage : report.stages) {
    std::printf("  %-12s %.4f\n", stage.name.c_str(), stage.cosine);
  }

  // Single-window prediction: the last test window.
  const nn::Dataset& test = pipe.test_set();
  nn::Dataset one = test.slice(test.size() - 1, test.size());
  nn::Tensor probs = dart.forward(one.addr, one.pc);
  std::printf("\npredicted deltas (p >= 0.5): ");
  for (std::size_t j = 0; j < probs.numel(); ++j) {
    if (probs[j] >= 0.5f) {
      std::printf("%+lld ", static_cast<long long>(
                                trace::bit_to_delta(j, options.prep.bitmap_size)));
    }
  }
  std::printf("\n");
  return 0;
}
