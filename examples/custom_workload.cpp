// Scenario example: bring your own workload. Builds a custom access trace
// from the generator building blocks (or your own loop), runs the full
// DART pipeline on it, and inspects what the table hierarchy learned.
//
// This is the integration path a downstream user follows to evaluate DART
// on a proprietary trace: produce a trace::MemoryTrace, preprocess, train,
// tabularize, deploy.
#include <cstdio>

#include "common/rng.hpp"
#include "core/configs.hpp"
#include "nn/trainer.hpp"
#include "sim/simulator.hpp"
#include "tabular/tabularizer.hpp"
#include "trace/generators.hpp"
#include "trace/preprocess.hpp"

using namespace dart;

namespace {

/// A hand-rolled workload: a database-style scan that alternates a
/// sequential key scan with hash-bucket probes (two interleaved patterns
/// with different PCs — exactly the kind of composite DART's attention
/// backbone separates by PC).
trace::MemoryTrace make_scan_probe_trace(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  trace::MemoryTrace out;
  out.reserve(n);
  std::uint64_t instr = 0;
  std::uint64_t scan_cursor = 0x100000000ULL;
  constexpr std::uint64_t kBuckets = 4096;
  for (std::size_t i = 0; i < n; ++i) {
    instr += 1 + static_cast<std::uint64_t>(rng.uniform_int(2, 9));
    if (i % 3 != 0) {
      // Sequential scan, 8-byte keys.
      out.push_back({instr, 0xA000, scan_cursor, false});
      scan_cursor += 8;
    } else {
      // Hash probe into a bucket array (64-byte buckets).
      const auto bucket = static_cast<std::uint64_t>(rng.zipf_like(kBuckets, 0.995));
      out.push_back({instr, 0xB000, 0x200000000ULL + bucket * 64, false});
    }
  }
  return out;
}

}  // namespace

int main() {
  // 1. Produce the trace and extract its LLC stream.
  const trace::MemoryTrace raw = make_scan_probe_trace(300000, 7);
  sim::SimConfig sim_cfg;
  const trace::MemoryTrace llc = sim::extract_llc_trace(raw, sim_cfg);
  const trace::TraceStats stats = trace::compute_stats(llc);
  std::printf("custom workload: %zu raw accesses -> %zu LLC accesses\n", raw.size(),
              llc.size());
  std::printf("  unique blocks %zu, pages %zu, deltas %zu\n", stats.unique_blocks,
              stats.unique_pages, stats.unique_deltas);

  // 2. Preprocess into supervised windows (§VI-A).
  trace::PreprocessOptions prep = core::default_preprocess();
  prep.max_samples = 5000;
  nn::Dataset all = trace::make_dataset(llc, prep);
  auto [train, test] = all.split(0.75);

  // 3. Train the attention model directly at the student size (skipping the
  //    teacher is fine when the pattern is simple).
  nn::ModelConfig arch = core::paper_student_config();
  nn::AddressPredictor model(arch, 11);
  nn::TrainOptions topt;
  topt.epochs = 6;
  nn::train_bce(model, train, topt);
  std::printf("student F1 on held-out windows: %.3f\n", nn::evaluate_f1(model, test).f1);

  // 4. Tabularize with fine-tuning and compare.
  tabular::TabularizeOptions tab;
  tab.tables = core::dart_table_config();
  tab.max_train_samples = 2048;
  tabular::TabularizeReport report;
  tabular::TabularPredictor dart = tabular::tabularize(model, train.addr, train.pc, tab,
                                                       &report);
  std::size_t tp = 0, fp = 0, fn = 0;
  {
    nn::Tensor probs = dart.forward(test.addr, test.pc);
    const nn::F1Result r = nn::f1_score_from_probs(probs, test.labels);
    tp = r.true_pos; fp = r.false_pos; fn = r.false_neg;
    std::printf("DART F1 on held-out windows:    %.3f  (tables: %.1f KB)\n", r.f1,
                dart.storage_bytes() / 1024.0);
  }
  (void)tp; (void)fp; (void)fn;

  std::printf("\nper-stage fidelity (cosine similarity to the NN):\n");
  for (const auto& s : report.stages) {
    std::printf("  %-10s %.4f\n", s.name.c_str(), s.cosine);
  }
  std::printf("\nNext step: wrap the predictor in prefetch::DartPrefetcher and pass it\n"
              "to sim::Simulator::run — see examples/prefetch_simulation.cpp.\n");
  return 0;
}
