// Scenario example: hardware design-space exploration with the table
// configurator (§VI-C). Given a latency budget (cycles) and a storage
// budget (bytes) — the constraints a cache designer actually faces — find
// the best tabular predictor configuration, and show how the frontier moves
// as the budgets change.
//
// Run: ./build/examples/design_constraints [tau_cycles] [storage_bytes]
#include <cstdio>
#include <cstdlib>

#include "core/configs.hpp"
#include "tabular/configurator.hpp"

using namespace dart;

int main(int argc, char** argv) {
  tabular::ConfiguratorOptions opts;
  opts.base = core::paper_student_config();
  tabular::TableConfigurator configurator(opts);
  std::printf("enumerated %zu valid (architecture, tables) candidates\n\n",
              configurator.candidates().size());

  if (argc == 3) {
    const auto tau = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
    const double storage = std::strtod(argv[2], nullptr);
    const auto choice = configurator.configure(tau, storage);
    if (!choice.has_value()) {
      std::printf("no configuration satisfies tau=%zu cycles, s=%.0f bytes\n", tau, storage);
      return 1;
    }
    std::printf("chosen: %s  latency=%zu cyc  storage=%.1f KB  ops=%zu\n",
                choice->to_string().c_str(), choice->cost.latency_cycles,
                choice->cost.storage_bytes() / 1024.0, choice->cost.arithmetic_ops);
    return 0;
  }

  // No arguments: sweep a frontier of budgets (the Table VIII experiment,
  // generalized).
  std::printf("%-10s %-12s %-28s %-10s %-12s\n", "tau(cyc)", "s(bytes)", "chosen config",
              "latency", "storage");
  const std::size_t taus[] = {40, 60, 80, 100, 150, 200, 300};
  const double storages[] = {16e3, 30e3, 128e3, 1e6, 4e6, 16e6};
  for (std::size_t tau : taus) {
    for (double s : storages) {
      const auto choice = configurator.configure(tau, s);
      if (!choice.has_value()) continue;
      std::printf("%-10zu %-12.0f %-28s %-10zu %-12.1f\n", tau, s,
                  choice->to_string().c_str(), choice->cost.latency_cycles,
                  choice->cost.storage_bytes() / 1024.0);
      break;  // report the largest storage budget that changes the answer
    }
  }
  std::printf("\nTip: pass explicit budgets, e.g. ./design_constraints 100 1000000\n");
  return 0;
}
