#!/usr/bin/env python3
"""Offline markdown link check for the repository docs.

Scans every tracked *.md file for inline links/images and verifies that
relative targets exist on disk (anchors are stripped; http(s)/mailto links
are skipped — CI must not depend on external availability). Exits non-zero
listing every broken link. Run from the repository root:

    python3 tools/check_links.py
"""
import os
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", "build-review", "build-baseline", "build-docs"}


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target.split("#", 1)[0])
                )
                if not os.path.exists(resolved):
                    broken.append((lineno, target, os.path.relpath(resolved, root)))
    return broken


def main():
    root = os.getcwd()
    failures = 0
    checked = 0
    for path in sorted(markdown_files(root)):
        checked += 1
        for lineno, target, resolved in check_file(path, root):
            rel = os.path.relpath(path, root)
            print(f"{rel}:{lineno}: broken link '{target}' -> missing '{resolved}'")
            failures += 1
    print(f"checked {checked} markdown files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
