// dart_train — train a DART model and ship it as a versioned `.dart`
// artifact (DESIGN.md §7).
//
// Runs the full pipeline for one workload (trace -> teacher -> distilled
// student -> layer-wise tabularization), persists the deployable bundle,
// then reloads it and verifies the round trip is bit-exact on held-out
// inputs before reporting success. The artifact can be served by
// `dart_run`, the `dart-artifact:file=...` prefetcher spec, or any process
// linking `src/io` — with no training dependency.
//
//   dart_train [--app 605.mcf | --workload SPEC] [--variant s|m|l]
//              [--tables K] [--codebooks C] [--out FILE]
//              [--artifact-dir DIR] [--no-verify]
//
// `--app`/`--workload` accept the full trace/workloads.hpp spec grammar:
// Table IV app names and synthetic specs like
// "trace:zipfian,theta=0.99,footprint=64M" or "ycsb-b" train just the same.
//
// `--artifact-dir` additionally caches teacher/student checkpoints there,
// so retraining a different variant of the same app skips the teacher.
// Scale knobs come from the DART_* environment (see README.md): a quick
// smoke run is `DART_EPOCHS=1 DART_TRAIN_SAMPLES=800 DART_SIM_INSTR=60000
// dart_train --app 462.libquantum --variant s`.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/timer.hpp"
#include "core/artifact_cache.hpp"
#include "core/pipeline.hpp"
#include "io/artifact.hpp"

using namespace dart;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--app NAME | --workload SPEC] [--variant s|m|l] [--tables K]\n"
               "          [--codebooks C] [--out FILE] [--artifact-dir DIR] [--no-verify]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) try {
  std::string app_name = "605.mcf";
  std::string out_path;
  std::string artifact_dir;
  sim::DartModelRequest request;
  bool verify = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--app" || arg == "--workload") {
      app_name = value();
    } else if (arg == "--variant") {
      request.variant = value();
    } else if (arg == "--tables") {
      request.table_k = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--codebooks") {
      request.table_c = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--artifact-dir") {
      artifact_dir = value();
    } else if (arg == "--no-verify") {
      verify = false;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  const trace::Workload workload = trace::Workload::parse(app_name);
  core::PipelineOptions options = core::PipelineOptions::bench_defaults();
  if (!artifact_dir.empty()) options.artifact_dir = artifact_dir;
  if (out_path.empty()) {
    out_path = workload.name() + "-" + core::normalize_dart_variant(request.variant) +
               ".dart";
  }

  std::printf("== dart_train: %s, variant %s ==\n", workload.name().c_str(),
              core::normalize_dart_variant(request.variant).c_str());
  common::Stopwatch timer;
  core::Pipeline pipe(workload, options);
  core::TrainedDart trained = core::train_dart(pipe, request);
  const double train_seconds = timer.elapsed_s();

  if (!core::save_dart_artifact(out_path, workload, trained, "dart_train")) return 1;
  const io::ArtifactInfo info = io::read_artifact_info(out_path);

  const nn::F1Result f1 = pipe.eval_tabular(trained.predictor);
  std::printf("model     : %s (%zu-cycle latency, %.1f KB tables)\n",
              trained.display_name.c_str(), trained.latency_cycles,
              trained.predictor.storage_bytes() / 1024.0);
  std::printf("test F1   : %.4f (precision %.4f, recall %.4f)\n", f1.f1, f1.precision,
              f1.recall);
  std::printf("trained in: %.1fs\n", train_seconds);
  std::printf("artifact  : %s (content hash %016llx, config key %s)\n", out_path.c_str(),
              static_cast<unsigned long long>(info.content_hash),
              trained.config_key.c_str());

  if (verify) {
    // Round-trip proof: the reloaded artifact must reproduce the in-process
    // predictor bit-exactly on held-out inputs.
    const tabular::TabularPredictor reloaded = io::load_predictor_artifact(out_path);
    const nn::Dataset& test = pipe.test_set();
    const std::size_t n = std::min<std::size_t>(test.size(), 256);
    const nn::Dataset probe = test.slice(0, n);
    const nn::Tensor expect = trained.predictor.forward(probe.addr, probe.pc);
    const nn::Tensor got = reloaded.forward(probe.addr, probe.pc);
    if (expect.numel() != got.numel() ||
        std::memcmp(expect.data(), got.data(), expect.numel() * sizeof(float)) != 0) {
      std::fprintf(stderr, "round-trip verification FAILED: reloaded predictions differ\n");
      return 1;
    }
    std::printf("round-trip: verified bit-exact on %zu held-out samples\n", n);
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
