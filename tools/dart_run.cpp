// dart_run — serve a trained `.dart` artifact with zero training
// dependency: cold-start the table hierarchy from disk in milliseconds,
// then inspect it, micro-bench its query path, or deploy it as an LLC
// prefetcher in the timing simulator.
//
//   dart_run ARTIFACT.dart [--info] [--bench] [--simulate] [--serve]
//            [--app NAME] [--workload SPEC] [--queries N] [--streams N]
//            [--requests N] [--shards N] [--batch-cap N] [--linger-us N]
//
// Modes (default --info; several can be combined in one invocation):
//   --info      print the artifact header: architecture, tables, storage,
//               latency, content hash, producing configuration key.
//   --bench     regenerate the app's access stream (deterministic, no
//               training), build the segmented inference inputs, and
//               measure batched query throughput + F1 vs the trace labels.
//   --simulate  run the timing simulator with the artifact as the LLC
//               prefetcher vs a no-prefetcher baseline (Fig. 14's metric).
//   --serve     stand up the prefetch-as-a-service engine (DESIGN.md §9)
//               on the artifact and drive it with simulated client streams
//               replaying the artifact's app; prints the aggregate
//               throughput, latency quantiles, and per-shard counters.
//
// `--app`/`--workload` override the workload recorded in the artifact
// (e.g. to measure how a model trained on one workload generalizes to
// another); both accept the full trace/workloads.hpp spec grammar — app
// names, "trace:zipfian,theta=0.99,footprint=64M,seed=42", "ycsb-b", or
// "tracefile:path=trace.dtrc". `--queries`
// caps the bench query count (default DART_BENCH_QUERIES or 4096).
// `--streams`/`--requests` shape the serve client load and
// `--shards`/`--batch-cap`/`--linger-us` the serve engine, overriding
// the corresponding DART_SERVE_* environment knobs. DART_QUANT=int16|int8
// serves the artifact's linear tables quantized (DESIGN.md §10).
// DART_FAULT=<spec> arms the deterministic fault injector for the serve
// run (DESIGN.md §11), e.g. DART_FAULT="slow-shard:shard=0,us=2000".
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "nn/metrics.hpp"
#include "core/configs.hpp"
#include "core/pipeline.hpp"
#include "io/artifact.hpp"
#include "prefetch/nn_prefetchers.hpp"
#include "serve/fault.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"
#include "trace/workloads.hpp"
#include "trace/preprocess.hpp"

using namespace dart;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s ARTIFACT.dart [--info] [--bench] [--simulate] [--serve] "
               "[--app NAME] [--workload SPEC] [--queries N] [--streams N] [--requests N] "
               "[--shards N] [--batch-cap N] [--linger-us N]\n",
               argv0);
  return 2;
}

void print_info(const std::string& path, const io::ArtifactInfo& info,
                const tabular::TabularPredictor& predictor) {
  const nn::ModelConfig& a = info.arch;
  std::printf("artifact   : %s (format v%u, content hash %016llx)\n", path.c_str(),
              info.format_version, static_cast<unsigned long long>(info.content_hash));
  std::printf("producer   : %s%s%s\n", info.meta.producer.c_str(),
              info.meta.app.empty() ? "" : ", app ", info.meta.app.c_str());
  std::printf("model      : %s — L=%zu D=%zu H=%zu T=%zu DF=%zu DO=%zu\n",
              info.meta.display_name.empty() ? "(unnamed)" : info.meta.display_name.c_str(),
              a.layers, a.dim, a.heads, a.seq_len, a.ffn_dim, a.out_dim);
  std::printf("tables     : K=%zu C=%zu (attention class), %.1f KB total storage\n",
              info.meta.tables.attention.k, info.meta.tables.attention.c,
              predictor.storage_bytes() / 1024.0);
  if (predictor.quant_mode() != tabular::QuantMode::kOff) {
    std::printf("quantized  : %s linear tables, %.1f KB payload\n",
                tabular::quant_mode_name(predictor.quant_mode()),
                predictor.quantized_bytes() / 1024.0);
  }
  std::printf("latency    : %llu cycles (Eq. 22 cost model)\n",
              static_cast<unsigned long long>(info.meta.latency_cycles));
  std::printf("config key : %s\n",
              info.meta.config_key.empty() ? "(none)" : info.meta.config_key.c_str());
}

/// Deterministically rebuilds the workload's dataset from the artifact's
/// recorded preprocessing geometry — trace generation + segmentation only,
/// no model training anywhere on this path.
nn::Dataset build_eval_dataset(const trace::Workload& workload,
                               const trace::PreprocessOptions& prep) {
  core::PipelineOptions options = core::PipelineOptions::bench_defaults();
  options.prep = prep;
  if (options.prep.max_samples == 0) options.prep.max_samples = 6000;
  core::Pipeline pipe(workload, options);
  return pipe.test_set();
}

int run_bench(const trace::Workload& workload, const io::ArtifactInfo& info,
              const tabular::TabularPredictor& predictor, std::size_t queries) {
  nn::Dataset data = build_eval_dataset(workload, info.meta.prep);
  if (data.size() == 0) {
    std::fprintf(stderr, "bench: empty evaluation dataset for %s\n",
                 workload.name().c_str());
    return 1;
  }
  const std::size_t n = std::min(queries, data.size());
  const nn::Dataset probe = data.slice(0, n);

  common::Stopwatch timer;
  const nn::Tensor probs = predictor.forward(probe.addr, probe.pc);
  const double ms = timer.elapsed_ms();
  const nn::F1Result f1 = nn::f1_score_from_probs(probs, probe.labels);

  std::printf("bench      : %zu queries on %s in %.2f ms (%.0f q/s, batched)\n", n,
              workload.name().c_str(), ms, 1000.0 * static_cast<double>(n) / ms);
  std::printf("accuracy   : F1 %.4f (precision %.4f, recall %.4f) vs trace labels\n", f1.f1,
              f1.precision, f1.recall);
  return 0;
}

int run_simulate(const trace::Workload& workload, const io::ArtifactInfo& info,
                 std::shared_ptr<const tabular::TabularPredictor> predictor) {
  core::PipelineOptions options = core::PipelineOptions::bench_defaults();
  const trace::MemoryTrace trace =
      workload.generate(options.raw_accesses, common::derive_seed(options.seed, 1));

  // One reusable workspace serves both replays (second run allocates
  // nothing).
  sim::SimWorkspace workspace;
  sim::Simulator baseline_sim(options.sim);
  const sim::SimStats baseline = baseline_sim.run(trace, nullptr, workspace);

  prefetch::NnAdapterOptions o;
  o.prep = info.meta.prep;
  o.degree = options.sim.max_degree;
  o.latency = static_cast<std::size_t>(info.meta.latency_cycles);
  prefetch::DartPrefetcher prefetcher(
      std::move(predictor), o,
      info.meta.display_name.empty() ? "DART" : info.meta.display_name);

  sim::Simulator sim(options.sim);
  const sim::SimStats stats = sim.run(trace, &prefetcher, workspace);
  const double improvement =
      baseline.ipc() > 0.0 ? (stats.ipc() - baseline.ipc()) / baseline.ipc() : 0.0;

  std::printf("simulate   : %s on %s, %llu accesses\n", prefetcher.name().c_str(),
              workload.name().c_str(),
              static_cast<unsigned long long>(stats.llc_accesses));
  std::printf("  baseline IPC %.3f -> %.3f (%+.1f%%)\n", baseline.ipc(), stats.ipc(),
              100.0 * improvement);
  std::printf("  accuracy %.1f%%, coverage %.1f%%, %llu prefetches issued\n",
              100.0 * stats.accuracy(), 100.0 * stats.coverage(),
              static_cast<unsigned long long>(stats.pf_issued));
  return 0;
}

/// Serves the artifact through the sharded engine under simulated client
/// load (serve::run_client_load), replaying `workload` on every stream.
/// Engine and load shape come from the DART_SERVE_* environment, already
/// overridden by the CLI flags in main.
int run_serve(const trace::Workload& workload, const io::ArtifactInfo& info,
              std::shared_ptr<const tabular::TabularPredictor> predictor,
              const serve::ServeConfig& config, serve::LoadOptions load) {
  load.prep = info.meta.prep;
  // DART_SERVE_WORKLOADS (already parsed into `load` by from_env) wins;
  // otherwise every stream replays the workload the artifact was trained on.
  if (load.workloads.empty()) load.workloads = {workload};

  // DART_FAULT arms the deterministic fault injector (serve/fault.hpp) for
  // this serve run — the operator-facing way to rehearse overload and
  // reload failures against a real artifact.
  const std::string fault_spec = common::env_string("DART_FAULT", "");
  if (!fault_spec.empty()) {
    serve::fault_injector().install(fault_spec);
    std::printf("faults     : %s\n", fault_spec.c_str());
  }

  serve::PrefetchServer server(std::move(predictor), config);
  const serve::LoadReport report = serve::run_client_load(server, load);
  if (!fault_spec.empty()) serve::fault_injector().clear();

  std::string load_names;
  for (const trace::Workload& w : load.workloads) {
    if (!load_names.empty()) load_names += ';';
    load_names += w.name();
  }
  std::printf("serve      : %zu streams x %zu requests on %s over %zu shard(s)\n",
              report.streams, load.requests_per_stream, load_names.c_str(),
              server.num_shards());
  std::printf("  throughput %.0f predictions/sec, p50 %.1f us, p99 %.1f us\n",
              report.predictions_per_sec, report.server.p50_ns / 1000.0,
              report.server.p99_ns / 1000.0);
  std::printf("  %llu completed + %llu shed / %llu submitted, %llu backpressure rejects, "
              "%llu id mismatches\n",
              static_cast<unsigned long long>(report.completed),
              static_cast<unsigned long long>(report.shed),
              static_cast<unsigned long long>(report.submitted),
              static_cast<unsigned long long>(report.rejected),
              static_cast<unsigned long long>(report.id_mismatches));
  std::printf("  %.1f avg batch occupancy over %llu micro-batches\n", report.server.avg_batch,
              static_cast<unsigned long long>(report.server.batches));
  if (report.server.deadline_missed != 0 || report.server.watchdog_restarts != 0 ||
      report.server.reload_rejected != 0 || report.server.admission_rejected != 0) {
    std::printf("  robustness: %llu deadline misses, %llu admission rejects, "
                "%llu watchdog restarts, %llu reloads rejected\n",
                static_cast<unsigned long long>(report.server.deadline_missed),
                static_cast<unsigned long long>(report.server.admission_rejected),
                static_cast<unsigned long long>(report.server.watchdog_restarts),
                static_cast<unsigned long long>(report.server.reload_rejected));
  }
  for (std::size_t i = 0; i < report.server.shards.size(); ++i) {
    const serve::ShardStatsSnapshot& s = report.server.shards[i];
    std::printf("  shard %zu: %llu requests, %llu batches, max queue depth %llu, %s\n", i,
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.batches),
                static_cast<unsigned long long>(s.queue_depth_max),
                serve::shard_state_name(s.state));
  }
  if (report.completed + report.shed != report.submitted || report.id_mismatches != 0) {
    std::fprintf(stderr, "serve: lost or mis-routed responses\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];
  bool info_mode = false, bench_mode = false, simulate_mode = false, serve_mode = false;
  std::string app_override;
  std::size_t queries =
      static_cast<std::size_t>(common::env_int("DART_BENCH_QUERIES", 4096));
  serve::ServeConfig serve_config = serve::ServeConfig::from_env();
  serve::LoadOptions serve_load = serve::LoadOptions::from_env();

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--info") {
      info_mode = true;
    } else if (arg == "--bench") {
      bench_mode = true;
    } else if (arg == "--simulate") {
      simulate_mode = true;
    } else if (arg == "--serve") {
      serve_mode = true;
    } else if (arg == "--app" || arg == "--workload") {
      app_override = value();
    } else if (arg == "--queries") {
      queries = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--streams") {
      serve_load.streams = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--requests") {
      serve_load.requests_per_stream = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--shards") {
      serve_config.shards = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--batch-cap") {
      serve_config.batch_cap = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--linger-us") {
      serve_config.linger_us = static_cast<std::size_t>(std::stoul(value()));
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (!info_mode && !bench_mode && !simulate_mode && !serve_mode) info_mode = true;

  // The only load in the binary: everything below serves from memory.
  common::Stopwatch load_timer;
  io::ArtifactInfo info;
  tabular::TabularPredictor loaded = io::load_predictor_artifact(path, &info);
  // DART_QUANT=int16|int8 re-quantizes the loaded tables (DESIGN.md §10);
  // unset/off serves the artifact as stored, QNTT chunk included.
  const tabular::QuantMode quant = core::quant_mode_from_env();
  if (quant != tabular::QuantMode::kOff && quant != loaded.quant_mode()) {
    loaded.set_quant_mode(quant);
  }
  const auto predictor =
      std::make_shared<const tabular::TabularPredictor>(std::move(loaded));
  const double load_ms = load_timer.elapsed_ms();

  if (info_mode) {
    print_info(path, info, *predictor);
    std::printf("cold start : loaded and validated in %.1f ms\n", load_ms);
  }
  if (bench_mode || simulate_mode || serve_mode) {
    // The artifact's meta.app field stores the producing workload's
    // canonical spec; Workload::parse accepts app names and spec strings
    // alike, so old artifacts keep working.
    const std::string spec_text = !app_override.empty() ? app_override : info.meta.app;
    if (spec_text.empty()) {
      std::fprintf(stderr, "artifact records no workload; pass --workload SPEC\n");
      return 2;
    }
    const trace::Workload workload = trace::Workload::parse(spec_text);
    if (bench_mode) {
      const int rc = run_bench(workload, info, *predictor, queries);
      if (rc != 0) return rc;
    }
    if (simulate_mode) {
      const int rc = run_simulate(workload, info, predictor);
      if (rc != 0) return rc;
    }
    if (serve_mode) {
      const int rc = run_serve(workload, info, predictor, serve_config, serve_load);
      if (rc != 0) return rc;
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
