// dart_trace — generate, inspect and fingerprint workload traces
// (DESIGN.md §12): the operator-facing front end of the deterministic
// workload engine and the tool the CI corpus-hash job runs on two
// compilers to prove bit-reproducibility.
//
//   dart_trace --spec SPEC [--n N] [--seed S] [--out FILE.dtrc]
//              [--hash] [--stats]
//   dart_trace --corpus [--n N] [--seed S]
//   dart_trace --validate-spec SPEC
//   dart_trace --list
//
// Modes:
//   --spec SPEC      generate N accesses of the workload ("605.mcf",
//                    "trace:zipfian,theta=0.99,footprint=64M", "ycsb-b",
//                    "tracefile:path=..."); combine with --out / --hash /
//                    --stats (default --hash when neither is given).
//   --out FILE       write the generated trace as a .dtrc trace file.
//   --hash           print "<spec>\t<n>\t<seed>\t<hash>" — the 64-bit
//                    FNV-1a content hash over the record encoding. The
//                    exact line format the golden corpus file pins.
//   --stats          print access counts, write fraction, unique lines and
//                    footprint.
//   --corpus         emit one --hash line per canonical corpus workload
//                    (the full synthetic family grid). CI runs this under
//                    gcc/libstdc++ AND clang/libc++ and diffs the output
//                    against tests/golden/corpus_hashes.tsv.
//   --validate-spec  parse the spec and exit: 0 valid (prints the
//                    canonical form), 1 invalid (prints the parse error).
//                    The CI negative check asserts malformed specs fail.
//   --list           print the known synthetic family names.
#include <cstdio>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_file.hpp"
#include "trace/workloads.hpp"

using namespace dart;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --spec SPEC [--n N] [--seed S] [--out FILE.dtrc] [--hash] "
               "[--stats]\n"
               "       %s --corpus [--n N] [--seed S]\n"
               "       %s --validate-spec SPEC\n"
               "       %s --list\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

/// The canonical reproducibility corpus: every synthetic family at its
/// documented default parameters plus the parameter variations the golden
/// tests pin. Fixed specs — extending the corpus means appending here AND
/// regenerating tests/golden/corpus_hashes.tsv.
std::vector<std::string> corpus_specs() {
  return {
      "trace:zipfian,footprint=64M,theta=0.99",
      "trace:zipfian,footprint=64M,theta=0.8",
      "trace:zipfian,footprint=256M,theta=0.99,layout=hash",
      "trace:scrambled-zipfian,footprint=64M,theta=0.99",
      "trace:scrambled-zipfian,footprint=64M,theta=0.99,layout=chase",
      "trace:latest,footprint=64M,theta=0.99",
      "trace:exponential,footprint=64M",
      "trace:uniform,footprint=64M",
      "trace:uniform,footprint=64M,write=0.2",
      "trace:sequential,footprint=64M,stride=4",
      "trace:ycsb-a,footprint=64M",
      "trace:ycsb-b,footprint=64M",
      "trace:ycsb-c,footprint=64M",
      "trace:ycsb-d,footprint=64M",
      "trace:ycsb-e,footprint=64M,scan=16",
      "trace:ycsb-f,footprint=64M",
      "trace:ycsb-b,footprint=64M,layout=btree",
      "trace:ycsb-c,footprint=64M,layout=graph",
  };
}

void print_hash_line(const std::string& spec, std::size_t n, std::uint64_t seed,
                     std::uint64_t hash) {
  std::printf("%s\t%zu\t%llu\t%016llx\n", spec.c_str(), n,
              static_cast<unsigned long long>(seed), static_cast<unsigned long long>(hash));
}

void print_stats(const trace::MemoryTrace& t) {
  std::uint64_t writes = 0;
  std::set<std::uint64_t> lines, pcs;
  std::uint64_t lo = ~0ULL, hi = 0;
  for (const trace::MemoryAccess& a : t) {
    if (a.is_write) ++writes;
    lines.insert(a.addr >> 6);
    pcs.insert(a.pc);
    if (a.addr < lo) lo = a.addr;
    if (a.addr > hi) hi = a.addr;
  }
  std::printf("accesses   : %zu (%llu writes, %.1f%%)\n", t.size(),
              static_cast<unsigned long long>(writes),
              t.empty() ? 0.0 : 100.0 * static_cast<double>(writes) / t.size());
  std::printf("unique     : %zu cache lines, %zu pcs\n", lines.size(), pcs.size());
  std::printf("addr span  : [%#llx, %#llx]\n", static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi));
  if (!t.empty()) {
    std::printf("instr span : %llu\n",
                static_cast<unsigned long long>(t.back().instr_id - t.front().instr_id));
  }
}

}  // namespace

int main(int argc, char** argv) try {
  std::string spec_text, out_path, validate_text;
  std::size_t n = 100000;
  std::uint64_t seed = 42;
  bool hash_mode = false, stats_mode = false, corpus_mode = false, list_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--spec") {
      spec_text = value();
    } else if (arg == "--n") {
      n = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::stoull(value()));
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--hash") {
      hash_mode = true;
    } else if (arg == "--stats") {
      stats_mode = true;
    } else if (arg == "--corpus") {
      corpus_mode = true;
    } else if (arg == "--validate-spec") {
      validate_text = value();
    } else if (arg == "--list") {
      list_mode = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (list_mode) {
    for (const std::string& f : trace::Workload::known_families()) {
      std::printf("%s\n", f.c_str());
    }
    return 0;
  }
  if (!validate_text.empty()) {
    try {
      const trace::Workload w = trace::Workload::parse(validate_text);
      std::printf("valid: %s (name %s)\n", w.spec().c_str(), w.name().c_str());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "invalid: %s\n", e.what());
      return 1;
    }
  }
  if (corpus_mode) {
    for (const std::string& spec : corpus_specs()) {
      const trace::Workload w = trace::Workload::parse(spec);
      const trace::MemoryTrace t = w.generate(n, seed);
      print_hash_line(w.spec(), n, seed, trace::trace_content_hash(t));
    }
    return 0;
  }
  if (spec_text.empty()) return usage(argv[0]);

  const trace::Workload workload = trace::Workload::parse(spec_text);
  const trace::MemoryTrace t = workload.generate(n, seed);
  if (!hash_mode && !stats_mode && out_path.empty()) hash_mode = true;
  if (!out_path.empty()) {
    trace::write_trace_file(out_path, t);
    std::printf("wrote      : %s (%zu records, %zu bytes)\n", out_path.c_str(), t.size(),
                trace::kTraceFileHeaderBytes + t.size() * trace::kTraceFileRecordBytes + 8);
  }
  if (hash_mode) print_hash_line(workload.spec(), n, seed, trace::trace_content_hash(t));
  if (stats_mode) print_stats(t);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
