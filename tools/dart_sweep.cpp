// dart_sweep — crash-safe, resumable experiment sweeps (DESIGN.md §13).
//
//   dart_sweep [--store DIR] [--workloads LIST] [--prefetchers LIST]
//              [--csv PATH] [--json PATH] [--timeout-ms N] [--retries N]
//              [--backoff-ms N] [--shards N] [--warmup N] [--sequential]
//              [--compact]
//
// Runs the ExperimentRunner grid through the durable result store: every
// resolving cell is committed (fsync'd) before the sweep moves on, so a
// crash — OOM, kill -9, power loss — loses at most the cells in flight.
// Re-running the same command resumes: committed cells are loaded from the
// store and skipped, only the remainder is simulated, and the merged
// CSV/JSON output is byte-identical to an uninterrupted run.
//
// Flags override the matching environment knobs:
//   --store DIR        result-store directory        (DART_SWEEP_DIR)
//   --workloads LIST   ';'-separated workload specs  (DART_WORKLOADS)
//   --prefetchers LIST ';'-separated prefetcher specs(DART_PREFETCHERS)
//   --timeout-ms N     per-attempt wall-clock budget (DART_SWEEP_TIMEOUT_MS)
//   --retries N        retries after first failure   (DART_SWEEP_RETRIES)
//   --backoff-ms N     doubling retry backoff base   (DART_SWEEP_BACKOFF_MS)
//   --shards N         trace shards per cell replay  (DART_SWEEP_SHARDS)
//   --warmup N         shard warmup accesses; -1=full(DART_SWEEP_WARMUP)
//   --sequential       run cells in grid order (deterministic commit order,
//                      the mode the resume CI job uses)
//   --compact          rewrite the store log to one record per cell at exit
//
// DART_FAULT=<spec> arms the deterministic fault injector (common/fault.hpp)
// before the sweep, e.g. DART_FAULT="crash-after-commit:after=2,hard=1".
//
// Exit codes: 0 = every cell completed (or was reused), 3 = the sweep
// finished but quarantined at least one cell (results partial, loudly), 17
// (common::kCrashExitCode) = an injected hard crash fired, 1 = crash/error.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/env.hpp"
#include "common/fault.hpp"
#include "core/experiment.hpp"
#include "core/result_store.hpp"
#include "sim/registry.hpp"
#include "sim/shard_replay.hpp"
#include "trace/workloads.hpp"

using namespace dart;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--store DIR] [--workloads LIST] [--prefetchers LIST] "
               "[--csv PATH] [--json PATH] [--timeout-ms N] [--retries N] [--backoff-ms N] "
               "[--shards N] [--warmup N] [--sequential] [--compact]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentSpec spec = core::ExperimentSpec::bench_defaults();
  spec.sweep = core::SweepOptions::from_env();
  std::string csv_path;
  std::string json_path;
  bool compact = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--store") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      spec.sweep.store_dir = v;
    } else if (arg == "--workloads") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      spec.workloads.clear();
      for (const trace::Workload& w : trace::parse_workload_list(v)) {
        spec.workloads.push_back(w.spec());
      }
    } else if (arg == "--prefetchers") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      spec.prefetchers = sim::split_spec_list(v);
    } else if (arg == "--csv") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      csv_path = v;
    } else if (arg == "--json") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--timeout-ms") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      spec.sweep.cell_timeout_ms = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--retries") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      spec.sweep.cell_retries = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--backoff-ms") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      spec.sweep.backoff_ms = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--shards") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      spec.sweep.trace_shards = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
      if (spec.sweep.trace_shards == 0) spec.sweep.trace_shards = 1;
    } else if (arg == "--warmup") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      const long long w = std::strtoll(v, nullptr, 10);
      spec.sweep.shard_warmup = w < 0 ? sim::kFullWarmup : static_cast<std::size_t>(w);
    } else if (arg == "--sequential") {
      spec.parallel = false;
    } else if (arg == "--compact") {
      compact = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  // Arm the deterministic fault injector before any sweep work, mirroring
  // the serve path: chaos tests exercise the exact binary that ships.
  const std::string fault_spec = common::env_string("DART_FAULT", "");
  if (!fault_spec.empty()) {
    try {
      common::fault_injector().install(fault_spec);
      std::fprintf(stderr, "[fault] armed: %s\n", fault_spec.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[fault] invalid DART_FAULT: %s\n", e.what());
      return 2;
    }
  }

  try {
    core::ExperimentRunner runner(spec);
    core::ExperimentResult result = runner.run();

    const std::size_t done = result.count(core::CellStatus::kDone);
    const std::size_t failed = result.count(core::CellStatus::kFailed);
    const std::size_t skipped = result.count(core::CellStatus::kSkipped);
    std::printf("sweep      : %zu cell(s) — %zu simulated, %zu reused from store, "
                "%zu quarantined\n",
                result.cells.size(), done, skipped, failed);
    for (const auto& c : result.cells) {
      if (c.status == core::CellStatus::kFailed) {
        std::printf("quarantined: %s | %s after %u attempt(s): %s\n", c.app.c_str(),
                    c.spec.c_str(), c.attempts, c.error.c_str());
      }
    }
    if (done + failed + skipped != result.cells.size()) {
      std::fprintf(stderr, "accounting violation: %zu + %zu + %zu != %zu\n", done, failed,
                   skipped, result.cells.size());
      return 1;
    }

    if (!csv_path.empty() && !result.write_csv(csv_path)) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    if (!json_path.empty() && !result.write_json(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    if (compact && !spec.sweep.store_dir.empty()) {
      core::ResultStore store(spec.sweep.store_dir);
      store.compact();
      std::printf("store      : compacted to %zu record(s)\n", store.size());
    }
    return failed > 0 ? 3 : 0;
  } catch (const core::SweepCrash& e) {
    // The injected soft crash: committed cells are durable, the rest will
    // be re-run on resume. Mirror what a real crash would leave behind.
    std::fprintf(stderr, "sweep crashed: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
