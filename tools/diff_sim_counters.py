#!/usr/bin/env python3
"""Diffs the deterministic fields of two bench JSON snapshots.

Usage: diff_sim_counters.py <baseline.json> <candidate.json> [--ignore PATTERN]...

Schema-agnostic: the two files are compared recursively, field by field,
and any leaf mismatch is reported with its full path (e.g.
``configs[2].counters.pf_issued``). Works for every committed baseline —
bench_sim_throughput.json, bench_batch_inference.json, bench_serve.json —
and any future bench that separates deterministic counters from
host-dependent measurements.

Host-dependent fields are excluded by key name. The default ignore set
covers the conventions used across the repo's bench JSON schemas:

  host          whole subtree of machine facts (shards, hardware_threads)
  perf          whole subtree of throughput/latency measurements
  *_per_sec     inline rate fields (accesses_per_sec, queries_per_sec)
  speedup_vs_*  ratios of rate fields

``--ignore`` (repeatable, fnmatch patterns against key names) extends the
set for ad-hoc comparisons. Exit code: 0 when all compared fields match,
1 on any drift (with a per-field report), 2 on usage errors.
"""
import fnmatch
import json
import sys

DEFAULT_IGNORES = ["host", "perf", "*_per_sec", "speedup_vs_*"]


def ignored(key, patterns):
    return any(fnmatch.fnmatchcase(str(key), p) for p in patterns)


def diff(base, cand, patterns, path, failures):
    if isinstance(base, dict) and isinstance(cand, dict):
        for key in base:
            if ignored(key, patterns):
                continue
            sub = f"{path}.{key}" if path else str(key)
            if key not in cand:
                failures.append(f"{sub}: missing from candidate")
            else:
                diff(base[key], cand[key], patterns, sub, failures)
        for key in cand:
            if not ignored(key, patterns) and key not in base:
                failures.append(f"{path + '.' if path else ''}{key}: not in baseline")
    elif isinstance(base, list) and isinstance(cand, list):
        if len(base) != len(cand):
            failures.append(f"{path}: length {len(base)} vs {len(cand)}")
        for i, (b, c) in enumerate(zip(base, cand)):
            diff(b, c, patterns, f"{path}[{i}]", failures)
    elif base != cand:
        failures.append(f"{path}: baseline {base!r}, candidate {cand!r}")


def count_leaves(value, patterns):
    if isinstance(value, dict):
        return sum(count_leaves(v, patterns) for k, v in value.items()
                   if not ignored(k, patterns))
    if isinstance(value, list):
        return sum(count_leaves(v, patterns) for v in value)
    return 1


def main():
    argv = sys.argv[1:]
    paths, patterns = [], list(DEFAULT_IGNORES)
    i = 0
    while i < len(argv):
        if argv[i] == "--ignore":
            if i + 1 >= len(argv):
                print(__doc__)
                return 2
            patterns.append(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        print(__doc__)
        return 2
    with open(paths[0]) as f:
        base = json.load(f)
    with open(paths[1]) as f:
        cand = json.load(f)
    failures = []
    diff(base, cand, patterns, "", failures)
    if failures:
        print("deterministic counter drift vs committed baseline:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"counters identical across {count_leaves(base, patterns)} compared fields")
    return 0


if __name__ == "__main__":
    sys.exit(main())
