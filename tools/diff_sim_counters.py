#!/usr/bin/env python3
"""Diffs the deterministic counters of two bench_sim_throughput JSON files.

Usage: diff_sim_counters.py <baseline.json> <candidate.json>

The simulator is fully deterministic for a given trace and configuration
(tests/sim_reference_test.cpp pins the semantics), so the `counters` object
of every config must match the committed baseline exactly on any host.
Host-dependent fields (`*_per_sec`) are ignored. Exit code 1 on any
mismatch, with a per-field report.
"""
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    by_name = {c["prefetcher"]: c["counters"] for c in data["configs"]}
    shape = {k: data[k] for k in ("accesses_per_config", "apps", "sim_instr")}
    return shape, by_name


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    base_shape, base = load(sys.argv[1])
    cand_shape, cand = load(sys.argv[2])
    failures = []
    if base_shape != cand_shape:
        failures.append(f"workload shape differs: {base_shape} vs {cand_shape}")
    for name in base:
        if name not in cand:
            failures.append(f"config '{name}' missing from candidate")
            continue
        for field, expected in base[name].items():
            got = cand[name].get(field)
            if got != expected:
                failures.append(f"{name}.{field}: baseline {expected}, candidate {got}")
    for name in cand:
        if name not in base:
            failures.append(f"config '{name}' not in baseline")
    if failures:
        print("simulator counter drift vs committed baseline:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"counters identical across {len(base)} configs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
