// Shared helpers for the per-table / per-figure bench binaries.
//
// Every binary prints the paper's rows to stdout and mirrors them to a CSV
// (<bench-name>.csv in the working directory). Scaling knobs come from the
// environment (DESIGN.md §5): DART_TRAIN_SAMPLES, DART_EPOCHS,
// DART_SIM_INSTR, DART_APPS, DART_FULL_SWEEP, DART_PAPER_SCALE.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/table_printer.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "trace/generators.hpp"

namespace dart::bench {

/// Apps to evaluate: all eight by default, or the DART_APPS subset.
inline std::vector<trace::App> bench_apps() {
  const auto names = common::env_list("DART_APPS");
  if (names.empty()) return trace::all_apps();
  std::vector<trace::App> apps;
  for (const auto& n : names) apps.push_back(trace::app_from_name(n));
  return apps;
}

/// Short column label, e.g. "410.bwav".
inline std::string short_name(trace::App app) {
  std::string n = trace::app_name(app);
  return n.size() > 8 ? n.substr(0, 8) : n;
}

/// Runs `fn(app, index)` for every app on its own thread (per-app pipelines
/// are independent; inner compute shares the global pool).
template <typename Fn>
void for_each_app_parallel(const std::vector<trace::App>& apps, Fn&& fn) {
  std::vector<std::thread> threads;
  threads.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    threads.emplace_back([&, i] { fn(apps[i], i); });
  }
  for (auto& t : threads) t.join();
}

/// Prints and CSV-mirrors a finished table.
inline void emit(common::TablePrinter& table, const std::string& csv_name) {
  table.print();
  if (table.write_csv(csv_name)) {
    std::printf("[csv] %s\n", csv_name.c_str());
  }
}

}  // namespace dart::bench
