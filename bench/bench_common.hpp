// Shared helpers for the per-table / per-figure bench binaries.
//
// Every binary prints the paper's rows to stdout and mirrors them to a CSV
// (<bench-name>.csv in the working directory). Scaling knobs come from the
// environment (DESIGN.md §5): DART_TRAIN_SAMPLES, DART_EPOCHS,
// DART_SIM_INSTR, DART_APPS, DART_FULL_SWEEP, DART_PAPER_SCALE.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/table_printer.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "trace/generators.hpp"

namespace dart::bench {

/// Apps to evaluate: all eight by default, or the DART_APPS subset
/// (parsed once, by core::ExperimentSpec::bench_defaults).
inline std::vector<trace::App> bench_apps() {
  const std::vector<trace::App> apps = core::ExperimentSpec::bench_defaults().apps;
  return apps.empty() ? trace::all_apps() : apps;
}

/// Short column label, e.g. "410.bwav".
inline std::string short_name(trace::App app) {
  std::string n = trace::app_name(app);
  return n.size() > 8 ? n.substr(0, 8) : n;
}

/// Runs `fn(app, index)` for every app on the shared thread pool (per-app
/// pipelines are independent; inner compute inlines inside pool workers).
template <typename Fn>
void for_each_app_parallel(const std::vector<trace::App>& apps, Fn&& fn) {
  common::parallel_for_each(
      apps.size(), [&](std::size_t i) { fn(apps[i], i); }, /*min_grain=*/1);
}

/// Prints and CSV-mirrors a finished table.
inline void emit(common::TablePrinter& table, const std::string& csv_name) {
  table.print();
  if (table.write_csv(csv_name)) {
    std::printf("[csv] %s\n", csv_name.c_str());
  }
}

}  // namespace dart::bench
