#include "prefetch_sweep.hpp"

#include <sstream>

#include "bench_common.hpp"

namespace dart::bench {

namespace {

constexpr const char* kCachePath = "prefetch_sweep_cache.csv";

std::string current_tag(const core::ExperimentSpec& spec) {
  std::ostringstream os;
  // engine= names the simulator-semantics generation: bump it whenever
  // SimStats definitions or event ordering change (DESIGN.md §8), so a
  // cache written by an older engine cannot be silently reused.
  os << "#tag engine=2 instr=" << spec.pipeline.raw_accesses
     << " samples=" << spec.pipeline.prep.max_samples
     << " epochs=" << spec.pipeline.teacher_train.epochs << " apps=";
  for (trace::App a : spec.apps.empty() ? trace::all_apps() : spec.apps) {
    os << trace::app_name(a) << ';';
  }
  // DART_WORKLOADS extends the grid; a cache keyed without them would be
  // silently reused across different corpora.
  os << " workloads=";
  for (const auto& w : spec.workloads) os << w << ';';
  os << " pfs=";
  for (const auto& p : spec.prefetchers) os << p << ';';
  return os.str();
}

}  // namespace

core::ExperimentResult cached_prefetch_sweep() {
  core::ExperimentSpec spec = core::ExperimentSpec::bench_defaults();
  if (spec.apps.empty()) spec.apps = bench_apps();
  const std::string tag = current_tag(spec);

  core::ExperimentResult result;
  if (core::ExperimentResult::read_csv(kCachePath, tag, &result)) {
    std::printf("[cache] loaded %zu sweep cells from %s\n", result.cells.size(), kCachePath);
    return result;
  }

  common::Stopwatch watch;
  std::printf("running prefetcher sweep (%zu apps x %zu prefetchers)...\n", spec.apps.size(),
              spec.prefetchers.size());
  result = core::ExperimentRunner(spec).run();
  std::printf("sweep done in %.1f s\n", watch.elapsed_s());
  result.write_csv(kCachePath, tag);
  return result;
}

void print_metric_table(const core::ExperimentResult& result, const std::string& metric,
                        const std::string& title, const std::string& csv_name) {
  const std::vector<std::string> apps = result.apps();
  const std::vector<std::string> pfs = result.prefetchers();
  auto value_of = [&](const core::ExperimentCell& c) {
    if (metric == "accuracy") return c.stats.accuracy();
    if (metric == "coverage") return c.stats.coverage();
    return c.ipc_improvement;
  };

  common::TablePrinter t(title);
  std::vector<std::string> header = {"Prefetcher"};
  for (const auto& a : apps) header.push_back(a.size() > 8 ? a.substr(0, 8) : a);
  header.push_back("Mean");
  t.set_header(header);
  for (const auto& pf : pfs) {
    std::vector<std::string> row = {pf};
    double mean = 0.0;
    for (const auto& app : apps) {
      const core::ExperimentCell* cell = result.find(pf, app);
      const double v = cell != nullptr ? value_of(*cell) : 0.0;
      row.push_back(common::TablePrinter::fmt_pct(v));
      mean += v;
    }
    row.push_back(common::TablePrinter::fmt_pct(mean / static_cast<double>(apps.size())));
    t.add_row(row);
  }
  emit(t, csv_name);
}

}  // namespace dart::bench
