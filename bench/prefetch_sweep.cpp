#include "prefetch_sweep.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "bench_common.hpp"

namespace dart::bench {

namespace {

constexpr const char* kCachePath = "prefetch_sweep_cache.csv";

std::string current_tag(const core::PrefetchEvalOptions& opt,
                        const std::vector<trace::App>& apps) {
  std::ostringstream os;
  os << "#tag instr=" << opt.pipeline.raw_accesses
     << " samples=" << opt.pipeline.prep.max_samples
     << " epochs=" << opt.pipeline.teacher_train.epochs << " apps=";
  for (trace::App a : apps) os << trace::app_name(a) << ';';
  os << " pfs=";
  for (const auto& p : opt.prefetchers) os << p << ';';
  return os.str();
}

core::PrefetchEvalOptions sweep_options() {
  core::PrefetchEvalOptions opt;
  opt.pipeline = core::PipelineOptions::bench_defaults();
  return opt;
}

}  // namespace

std::vector<core::PrefetchCell> cached_prefetch_sweep() {
  const auto apps = bench_apps();
  core::PrefetchEvalOptions opt = sweep_options();
  const std::string tag = current_tag(opt, apps);

  // Try the cache.
  {
    std::ifstream in(kCachePath);
    std::string line;
    if (in && std::getline(in, line) && line == tag) {
      std::vector<core::PrefetchCell> cells;
      std::getline(in, line);  // header
      while (std::getline(in, line)) {
        std::stringstream ss(line);
        core::PrefetchCell c;
        std::string field;
        std::getline(ss, c.prefetcher, ',');
        std::getline(ss, c.app, ',');
        auto next_d = [&]() {
          std::getline(ss, field, ',');
          return std::stod(field);
        };
        c.baseline_ipc = next_d();
        c.ipc_improvement = next_d();
        c.stats.pf_issued = static_cast<std::uint64_t>(next_d());
        c.stats.pf_useful = static_cast<std::uint64_t>(next_d());
        c.stats.pf_late = static_cast<std::uint64_t>(next_d());
        c.stats.llc_demand_misses = static_cast<std::uint64_t>(next_d());
        c.stats.instructions = static_cast<std::uint64_t>(next_d());
        c.stats.cycles = static_cast<std::uint64_t>(next_d());
        c.storage_bytes = static_cast<std::size_t>(next_d());
        c.latency_cycles = static_cast<std::size_t>(next_d());
        cells.push_back(c);
      }
      if (!cells.empty()) {
        std::printf("[cache] loaded %zu sweep cells from %s\n", cells.size(), kCachePath);
        return cells;
      }
    }
  }

  common::Stopwatch watch;
  std::printf("running prefetcher sweep (%zu apps x %zu prefetchers)...\n", apps.size(),
              opt.prefetchers.size());
  auto cells = core::evaluate_prefetchers(apps, opt);
  std::printf("sweep done in %.1f s\n", watch.elapsed_s());

  std::ofstream out(kCachePath);
  out << tag << '\n'
      << "prefetcher,app,baseline_ipc,ipc_improvement,issued,useful,late,misses,"
         "instructions,cycles,storage,latency\n";
  for (const auto& c : cells) {
    out << c.prefetcher << ',' << c.app << ',' << c.baseline_ipc << ',' << c.ipc_improvement
        << ',' << c.stats.pf_issued << ',' << c.stats.pf_useful << ',' << c.stats.pf_late
        << ',' << c.stats.llc_demand_misses << ',' << c.stats.instructions << ','
        << c.stats.cycles << ',' << c.storage_bytes << ',' << c.latency_cycles << '\n';
  }
  return cells;
}

void print_metric_table(const std::vector<core::PrefetchCell>& cells, const std::string& metric,
                        const std::string& title, const std::string& csv_name) {
  // Collect apps and prefetchers in first-seen order.
  std::vector<std::string> apps, pfs;
  for (const auto& c : cells) {
    if (std::find(apps.begin(), apps.end(), c.app) == apps.end()) apps.push_back(c.app);
    if (std::find(pfs.begin(), pfs.end(), c.prefetcher) == pfs.end()) {
      pfs.push_back(c.prefetcher);
    }
  }
  auto value_of = [&](const core::PrefetchCell& c) {
    if (metric == "accuracy") return c.stats.accuracy();
    if (metric == "coverage") return c.stats.coverage();
    return c.ipc_improvement;
  };

  common::TablePrinter t(title);
  std::vector<std::string> header = {"Prefetcher"};
  for (const auto& a : apps) header.push_back(a.size() > 8 ? a.substr(0, 8) : a);
  header.push_back("Mean");
  t.set_header(header);
  for (const auto& pf : pfs) {
    std::vector<std::string> row = {pf};
    double mean = 0.0;
    std::size_t count = 0;
    for (const auto& app : apps) {
      double v = 0.0;
      for (const auto& c : cells) {
        if (c.prefetcher == pf && c.app == app) {
          v = value_of(c);
          break;
        }
      }
      row.push_back(common::TablePrinter::fmt_pct(v));
      mean += v;
      ++count;
    }
    row.push_back(common::TablePrinter::fmt_pct(mean / static_cast<double>(count)));
    t.add_row(row);
  }
  emit(t, csv_name);
}

}  // namespace dart::bench
