// Ablation (the paper's §VIII future work): fuse the FFN's two linear
// layers + ReLU into ONE vector-quantized table and compare against the
// standard two-linear-kernel tabularization — fidelity (cosine to the NN
// FFN output on real activations) vs latency/storage.
#include "bench_common.hpp"
#include "nn/ops.hpp"
#include "tabular/complexity.hpp"
#include "tabular/fused_kernel.hpp"
#include "tabular/linear_kernel.hpp"

using namespace dart;

int main() {
  auto apps = bench::bench_apps();
  if (common::env_list("DART_APPS").empty()) {
    apps = {trace::App::kLibquantum, trace::App::kGcc, trace::App::kMcf};
  }
  core::PipelineOptions opts = core::PipelineOptions::bench_defaults();

  struct Row {
    double cos_two = 0.0, cos_fused = 0.0;
  };
  std::vector<Row> rows(apps.size());
  bench::for_each_app_parallel(apps, [&](trace::App app, std::size_t i) {
    core::Pipeline pipe(app, opts);
    nn::AddressPredictor& student = pipe.student();
    auto& enc = *student.encoder_layers()[0];
    // Real FFN input distribution: the LN1 outputs on the training set.
    nn::Tensor x = student.addr_embed().apply(pipe.train_set().addr);
    {
      nn::Tensor ep = student.pc_embed().apply(pipe.train_set().pc);
      x += ep;
    }
    nn::Tensor qkv = enc.msa().qkv_proj().apply(x);
    nn::Tensor attn = enc.msa().out_proj().apply(enc.msa().attention_core(qkv));
    attn += x;
    nn::Tensor ffn_in = enc.ln1().apply(attn);
    nn::Tensor flat = ffn_in.reshaped({ffn_in.numel() / ffn_in.dim(2), ffn_in.dim(2)});
    // Subsample rows for tractable codebooks.
    const std::size_t m = std::min<std::size_t>(flat.dim(0), 16384);
    nn::Tensor train_rows = flat.reshaped({flat.dim(0), flat.dim(1)});
    nn::Tensor sample({m, flat.dim(1)});
    const std::size_t stride = std::max<std::size_t>(1, flat.dim(0) / m);
    for (std::size_t r = 0; r < m; ++r) {
      std::copy(flat.row(std::min(flat.dim(0) - 1, r * stride)),
                flat.row(std::min(flat.dim(0) - 1, r * stride)) + flat.dim(1),
                sample.row(r));
    }
    auto stack = [&](const nn::Tensor& in) {
      nn::Tensor h = enc.ffn().hidden_layer().apply(in);
      for (std::size_t j = 0; j < h.numel(); ++j) h[j] = h[j] > 0.0f ? h[j] : 0.0f;
      return enc.ffn().output_layer().apply(h);
    };
    nn::Tensor exact = stack(sample);

    // Two chained linear kernels (the paper's default path).
    tabular::KernelConfig kc;
    kc.num_prototypes = 128;
    kc.num_subspaces = 2;
    tabular::LinearKernel hidden_k(enc.ffn().hidden_layer().weight(),
                                   enc.ffn().hidden_layer().bias(), sample, kc);
    nn::Tensor h_hat = hidden_k.query(sample);
    for (std::size_t j = 0; j < h_hat.numel(); ++j) h_hat[j] = h_hat[j] > 0.0f ? h_hat[j] : 0.0f;
    tabular::LinearKernel out_k(enc.ffn().output_layer().weight(),
                                enc.ffn().output_layer().bias(), h_hat, kc);
    nn::Tensor two_stage = out_k.query(h_hat);

    // Fused single table (K=1024 single codebook).
    tabular::FusedKernelConfig fc;
    fc.num_prototypes = 1024;
    tabular::FusedKernel fused(flat.dim(1), exact.dim(1), stack, sample, fc);
    nn::Tensor fused_out = fused.query(sample);

    rows[i].cos_two = nn::ops::cosine_similarity(two_stage, exact);
    rows[i].cos_fused = nn::ops::cosine_similarity(fused_out, exact);
  });

  common::TablePrinter t("Ablation (SVIII future work): two linear kernels vs fused FFN table");
  t.set_header({"App", "cos two-kernel", "cos fused", "lat two", "lat fused"});
  const std::size_t lat_two = 2 * tabular::linear_kernel_latency(128, 2);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    t.add_row({trace::app_name(apps[i]), common::TablePrinter::fmt(rows[i].cos_two, 4),
               common::TablePrinter::fmt(rows[i].cos_fused, 4), std::to_string(lat_two),
               std::to_string(tabular::log2_ceil(1024) + 1)});
  }
  bench::emit(t, "ablation_fused_ffn.csv");
  std::printf("The fused table reaches ~%zu cycles (vs %zu for two kernels) at the cost\n"
              "of pure-VQ fidelity — quantifying the latency/accuracy trade the paper's\n"
              "conclusion proposes to explore.\n",
              tabular::log2_ceil(1024) + 1, lat_two);
  return 0;
}
