// Fig. 13 — prefetch coverage of DART and the baselines over all apps.
// Paper shape: ideal NN prefetchers cover ~50%; with real latency the NN
// baselines collapse (14.4% / 2.1%); DART variants stay ~48-52%.
#include "prefetch_sweep.hpp"

int main() {
  const auto cells = dart::bench::cached_prefetch_sweep();
  dart::bench::print_metric_table(cells, "coverage",
                                  "Fig. 13: prefetch coverage", "fig13_coverage.csv");
  std::printf("Paper means: DART-S 48.3%%, DART 51.0%%, DART-L 51.8%%,\n"
              "TransFetch-I 54.7%%, Voyager-I 47.0%%, TransFetch 14.4%%, Voyager 2.1%%.\n");
  return 0;
}
