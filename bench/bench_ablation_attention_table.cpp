// Ablation — attention-kernel activation handling: sigmoid folded into the
// QKV table at training time (the paper's Eq. 14) vs exact row softmax
// applied to the looked-up scores at query time.
#include "bench_common.hpp"

using namespace dart;

int main() {
  auto apps = bench::bench_apps();
  if (common::env_list("DART_APPS").empty()) {
    apps = {trace::App::kLibquantum, trace::App::kGcc, trace::App::kMilc, trace::App::kMcf};
  }
  core::PipelineOptions opts = core::PipelineOptions::bench_defaults();

  std::vector<std::array<double, 2>> f1(apps.size());
  bench::for_each_app_parallel(apps, [&](trace::App app, std::size_t i) {
    core::Pipeline pipe(app, opts);
    pipe.student();
    tabular::TabularizeOptions tab = opts.tab;
    tab.attention_activation = tabular::AttentionActivation::kSigmoidFolded;
    f1[i][0] = pipe.eval_tabular(pipe.tabularize(tab)).f1;
    tab.attention_activation = tabular::AttentionActivation::kSoftmaxAtQuery;
    f1[i][1] = pipe.eval_tabular(pipe.tabularize(tab)).f1;
  });

  common::TablePrinter t("Ablation: attention activation (Eq. 14 sigmoid vs query softmax)");
  t.set_header({"App", "F1 sigmoid-folded", "F1 softmax-at-query", "delta"});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    t.add_row({trace::app_name(apps[i]), common::TablePrinter::fmt(f1[i][0], 3),
               common::TablePrinter::fmt(f1[i][1], 3),
               common::TablePrinter::fmt(f1[i][1] - f1[i][0], 3)});
  }
  bench::emit(t, "ablation_attention_table.csv");
  std::printf("Sigmoid folding removes all query-time activation arithmetic (Eq. 14);\n"
              "softmax-at-query trades O(T) scalar work per row for exact normalization.\n");
  return 0;
}
