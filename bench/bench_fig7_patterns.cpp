// Fig. 7 — memory access pattern visualization: per application, a CSV of
// (access index, page index, block delta) series for plotting, plus a
// printed summary of the pattern's spread in each dimension.
#include "bench_common.hpp"
#include "sim/simulator.hpp"

#include <fstream>

using namespace dart;

int main() {
  const auto n = static_cast<std::size_t>(common::env_int("DART_SIM_INSTR", 200000));
  const std::size_t plot_points = 4000;
  sim::SimConfig cfg;
  common::TablePrinter t("Fig. 7: memory access pattern summary (LLC stream)");
  t.set_header({"Application", "pages spanned", "delta p5", "delta p95", "pattern class"});
  for (trace::App app : bench::bench_apps()) {
    const auto llc = sim::extract_llc_trace(trace::generate(app, n, 1), cfg);
    // Dump a decimated (index, page, delta) series.
    std::string csv = "fig7_" + trace::app_name(app) + ".csv";
    for (auto& c : csv) {
      if (c == '.') c = '_';
    }
    csv = csv.substr(0, csv.size() - 4) + ".csv";
    std::ofstream out(csv);
    out << "index,page,delta\n";
    const std::size_t stride = std::max<std::size_t>(1, llc.size() / plot_points);
    std::vector<std::int64_t> deltas;
    std::uint64_t min_page = ~0ULL, max_page = 0;
    for (std::size_t i = 1; i < llc.size(); ++i) {
      const auto page = trace::page_of(llc[i].addr);
      min_page = std::min(min_page, page);
      max_page = std::max(max_page, page);
      const std::int64_t delta = static_cast<std::int64_t>(trace::block_of(llc[i].addr)) -
                                 static_cast<std::int64_t>(trace::block_of(llc[i - 1].addr));
      deltas.push_back(delta);
      if (i % stride == 0) out << i << ',' << page << ',' << delta << '\n';
    }
    std::sort(deltas.begin(), deltas.end());
    const auto pct = [&](double p) {
      return deltas.empty() ? 0
                            : deltas[static_cast<std::size_t>(p * (deltas.size() - 1))];
    };
    const char* klass = "regular";
    const std::int64_t spread = pct(0.95) - pct(0.05);
    if (spread > 100000) {
      klass = "irregular (pointer-chase)";
    } else if (spread > 500) {
      klass = "multi-region strided";
    }
    t.add_row({trace::app_name(app),
               common::TablePrinter::fmt_count(static_cast<double>(max_page - min_page + 1)),
               std::to_string(pct(0.05)), std::to_string(pct(0.95)), klass});
    std::printf("[csv] %s\n", csv.c_str());
  }
  t.print();
  return 0;
}
