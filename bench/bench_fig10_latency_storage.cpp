// Fig. 10 — tabular model latency and storage under varying K and C.
// Paper shape: latency scales linearly with log(K) and log(C); storage
// grows exponentially (dominated by the K^2 attention tables).
#include "bench_common.hpp"
#include "core/configs.hpp"
#include "tabular/complexity.hpp"

using namespace dart;

int main() {
  const nn::ModelConfig arch = core::paper_student_config();

  common::TablePrinter tk("Fig. 10a: latency & storage vs K (C=2)");
  tk.set_header({"K", "Latency (cycles)", "Storage (bytes)"});
  for (std::size_t k : {16, 32, 64, 128, 256, 512, 1024}) {
    const auto cost = tabular::tabular_model_cost(arch, tabular::TableConfig::uniform(k, 2));
    tk.add_row({std::to_string(k), std::to_string(cost.latency_cycles),
                common::TablePrinter::fmt_bytes(cost.storage_bytes())});
  }
  bench::emit(tk, "fig10_k_sweep.csv");

  common::TablePrinter tc("Fig. 10b: latency & storage vs C (K=128)");
  tc.set_header({"C", "Latency (cycles)", "Storage (bytes)"});
  for (std::size_t c : {1, 2, 4, 8}) {
    const tabular::TableConfig cfg = tabular::TableConfig::uniform(128, c);
    if (!tabular::config_is_valid(arch, cfg)) continue;
    const auto cost = tabular::tabular_model_cost(arch, cfg);
    tc.add_row({std::to_string(c), std::to_string(cost.latency_cycles),
                common::TablePrinter::fmt_bytes(cost.storage_bytes())});
  }
  bench::emit(tc, "fig10_c_sweep.csv");
  std::printf("Paper shape: latency linear in log(K), log(C); storage exponential in K.\n");
  return 0;
}
