// Table VII — F1-score of DART with and without layer fine-tuning, per
// application, next to the student it was tabularized from.
//
// Paper shape: DART >= DART w/o FT (mean gain ~5.75%), DART within ~0.08 of
// the Student.
#include "bench_common.hpp"

using namespace dart;

int main() {
  const auto apps = bench::bench_apps();
  core::PipelineOptions opts = core::PipelineOptions::bench_defaults();

  std::vector<std::array<double, 3>> results(apps.size());
  bench::for_each_app_parallel(apps, [&](trace::App app, std::size_t i) {
    core::Pipeline pipe(app, opts);
    results[i][0] = pipe.eval_nn(pipe.student()).f1;
    tabular::TabularizeOptions no_ft = opts.tab;
    no_ft.fine_tune = false;
    results[i][1] = pipe.eval_tabular(pipe.tabularize(no_ft)).f1;
    tabular::TabularizeOptions ft = opts.tab;
    ft.fine_tune = true;
    results[i][2] = pipe.eval_tabular(pipe.tabularize(ft)).f1;
  });

  common::TablePrinter t("Table VII: F1 of DART with/without fine-tuning");
  std::vector<std::string> header = {"Model"};
  for (trace::App app : apps) header.push_back(bench::short_name(app));
  header.push_back("Mean");
  t.set_header(header);
  const char* names[3] = {"Student", "DART w/o FT", "DART"};
  for (int m = 0; m < 3; ++m) {
    std::vector<std::string> row = {names[m]};
    double mean = 0.0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
      row.push_back(common::TablePrinter::fmt(results[i][m], 3));
      mean += results[i][m];
    }
    row.push_back(common::TablePrinter::fmt(mean / static_cast<double>(apps.size()), 3));
    t.add_row(row);
  }
  bench::emit(t, "table7_finetune.csv");
  std::printf("Paper means: DART w/o FT 0.661, DART 0.699 (Student 0.783).\n"
              "(expected shape: DART >= DART w/o FT; modest drop from the Student).\n");
  return 0;
}
