// Fig. 11 — layer-wise cosine similarity between the student NN and its
// tabularized counterpart, with and without fine-tuning.
// Paper shape: fine-tuning raises similarity, most visibly near the output.
#include "bench_common.hpp"

using namespace dart;

int main() {
  const auto apps = bench::bench_apps();
  core::PipelineOptions opts = core::PipelineOptions::bench_defaults();

  // Aggregate stage similarity across apps.
  std::vector<std::vector<double>> with_ft(apps.size()), without_ft(apps.size());
  std::vector<std::string> stage_names;
  std::mutex names_mutex;
  bench::for_each_app_parallel(apps, [&](trace::App app, std::size_t i) {
    core::Pipeline pipe(app, opts);
    pipe.student();
    tabular::TabularizeReport r_ft, r_noft;
    tabular::TabularizeOptions tab = opts.tab;
    tab.fine_tune = true;
    pipe.tabularize(tab, &r_ft);
    tab.fine_tune = false;
    pipe.tabularize(tab, &r_noft);
    for (const auto& s : r_ft.stages) with_ft[i].push_back(s.cosine);
    for (const auto& s : r_noft.stages) without_ft[i].push_back(s.cosine);
    std::lock_guard lock(names_mutex);
    if (stage_names.empty()) {
      for (const auto& s : r_ft.stages) stage_names.push_back(s.name);
    }
  });

  common::TablePrinter t("Fig. 11: layer-wise cosine similarity (mean over apps)");
  t.set_header({"Stage", "DART w/o FT", "DART (FT)", "FT gain"});
  for (std::size_t s = 0; s < stage_names.size(); ++s) {
    double m_ft = 0.0, m_noft = 0.0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
      m_ft += with_ft[i][s];
      m_noft += without_ft[i][s];
    }
    m_ft /= static_cast<double>(apps.size());
    m_noft /= static_cast<double>(apps.size());
    t.add_row({stage_names[s], common::TablePrinter::fmt(m_noft, 4),
               common::TablePrinter::fmt(m_ft, 4),
               common::TablePrinter::fmt(m_ft - m_noft, 4)});
  }
  bench::emit(t, "fig11_cosine_similarity.csv");
  std::printf("Paper shape: FT raises cosine similarity, most near the output layers.\n");
  return 0;
}
