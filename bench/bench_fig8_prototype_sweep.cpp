// Fig. 8 — DART F1-score as the number of prototypes K varies (C fixed at
// the DART default). Paper shape: F1 improves with K, with the big jump
// past K=128 and ~10.9% between K=16 and K=1024.
#include "bench_common.hpp"

using namespace dart;

int main() {
  const auto apps = bench::bench_apps();
  core::PipelineOptions opts = core::PipelineOptions::bench_defaults();
  std::vector<std::size_t> ks = {16, 64, 256, 1024};
  if (common::env_int("DART_FULL_SWEEP", 0) != 0) ks = {16, 32, 64, 128, 256, 512, 1024};

  std::vector<std::vector<double>> f1(apps.size(), std::vector<double>(ks.size(), 0.0));
  bench::for_each_app_parallel(apps, [&](trace::App app, std::size_t i) {
    core::Pipeline pipe(app, opts);
    pipe.student();  // train once; tabularize per K
    for (std::size_t j = 0; j < ks.size(); ++j) {
      tabular::TabularizeOptions tab = opts.tab;
      tab.tables = tabular::TableConfig::uniform(ks[j], opts.tab.tables.attention.c);
      f1[i][j] = pipe.eval_tabular(pipe.tabularize(tab)).f1;
    }
  });

  common::TablePrinter t("Fig. 8: DART F1 vs number of prototypes K (C=2)");
  std::vector<std::string> header = {"App"};
  for (auto k : ks) header.push_back("K=" + std::to_string(k));
  t.set_header(header);
  std::vector<double> mean(ks.size(), 0.0);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    std::vector<std::string> row = {trace::app_name(apps[i])};
    for (std::size_t j = 0; j < ks.size(); ++j) {
      row.push_back(common::TablePrinter::fmt(f1[i][j], 3));
      mean[j] += f1[i][j];
    }
    t.add_row(row);
  }
  std::vector<std::string> mrow = {"Mean"};
  for (std::size_t j = 0; j < ks.size(); ++j) {
    mrow.push_back(common::TablePrinter::fmt(mean[j] / static_cast<double>(apps.size()), 3));
  }
  t.add_row(mrow);
  bench::emit(t, "fig8_prototype_sweep.csv");
  std::printf("Paper shape: mean F1 rises with K (K=1024 ~10.9%% above K=16).\n");
  return 0;
}
