// Batched tabular inference throughput (the ROADMAP "as fast as the
// hardware allows" tracker): scalar forward_sample vs the batched forward
// path over batch sizes 1..64, on a synthetic DART predictor (paper student
// architecture, K=128 / C=2 tables learned from random activations — table
// *contents* don't affect query cost, only shapes do).
//
// Output: the usual table + CSV mirror, plus a JSON snapshot in the schema
// of the repo-root bench_batch_inference.json:
//
//   {"queries": N, "scalar_queries_per_sec": S,
//    "batched": [{"batch": B, "queries_per_sec": Q, "speedup_vs_scalar": X}, ...],
//    "quantized": [{"mode": "int16", "quantized_table_bytes": T,
//                   "batched": [{"batch": B, "queries_per_sec": Q,
//                                "speedup_vs_float": X}, ...]}, ...]}
//
// The quantized series (DESIGN.md §10) reruns the batched sweep with the
// linear-kernel tables served int16 then int8 on an otherwise identical
// predictor (same seed), so speedup_vs_float isolates the aggregation-path
// change. Knobs: DART_BENCH_QUERIES (default 4096), DART_BENCH_REPS and
// --json <path> (default bench_batch_inference.json in the working
// directory).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/configs.hpp"
#include "synthetic_model.hpp"
#include "tabular/tabular_predictor.hpp"

using namespace dart;

namespace {

/// queries/sec for the scalar path: one forward_sample per query. Input
/// slicing happens outside the timer, mirroring run_batched, so both
/// paths measure inference only.
double run_scalar(const tabular::TabularPredictor& tab, const nn::Tensor& addr,
                  const nn::Tensor& pc, std::size_t queries) {
  const std::size_t t_len = addr.dim(1), sa = addr.dim(2), sp = pc.dim(2);
  std::vector<nn::Tensor> addr_qs(queries, nn::Tensor({t_len, sa}));
  std::vector<nn::Tensor> pc_qs(queries, nn::Tensor({t_len, sp}));
  for (std::size_t i = 0; i < queries; ++i) {
    std::copy(addr.data() + i * t_len * sa, addr.data() + (i + 1) * t_len * sa,
              addr_qs[i].data());
    std::copy(pc.data() + i * t_len * sp, pc.data() + (i + 1) * t_len * sp, pc_qs[i].data());
  }
  common::Stopwatch watch;
  double sink = 0.0;
  for (std::size_t i = 0; i < queries; ++i) {
    nn::Tensor probs = tab.forward_sample(addr_qs[i], pc_qs[i]);
    sink += probs[0];
  }
  const double qps = static_cast<double>(queries) / watch.elapsed_s();
  if (sink == 12345.678) std::printf(" ");  // defeat dead-code elimination
  return qps;
}

/// queries/sec for the batched path at a fixed batch size.
double run_batched(const tabular::TabularPredictor& tab, const nn::Tensor& addr,
                   const nn::Tensor& pc, std::size_t queries, std::size_t batch) {
  const std::size_t t_len = addr.dim(1), sa = addr.dim(2), sp = pc.dim(2);
  // Pre-slice the query stream into [batch, T, S] windows outside the timer.
  std::vector<nn::Tensor> addr_wins, pc_wins;
  for (std::size_t q0 = 0; q0 < queries; q0 += batch) {
    const std::size_t b = std::min(batch, queries - q0);
    nn::Tensor aw({b, t_len, sa}), pw({b, t_len, sp});
    std::copy(addr.data() + q0 * t_len * sa, addr.data() + (q0 + b) * t_len * sa, aw.data());
    std::copy(pc.data() + q0 * t_len * sp, pc.data() + (q0 + b) * t_len * sp, pw.data());
    addr_wins.push_back(std::move(aw));
    pc_wins.push_back(std::move(pw));
  }
  common::Stopwatch watch;
  double sink = 0.0;
  for (std::size_t w = 0; w < addr_wins.size(); ++w) {
    nn::Tensor probs = tab.forward(addr_wins[w], pc_wins[w]);
    sink += probs[0];
  }
  const double qps = static_cast<double>(queries) / watch.elapsed_s();
  if (sink == 12345.678) std::printf(" ");
  return qps;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "bench_batch_inference.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const std::size_t queries =
      static_cast<std::size_t>(common::env_int("DART_BENCH_QUERIES", 4096));

  // Shared builder (bench/synthetic_model.hpp): student architecture,
  // K=128/C=2 tables from random activations — table *contents* don't
  // affect query cost, only shapes do. Seed 1000 matches the pre-refactor
  // local builder, so the committed baseline stays comparable.
  const nn::ModelConfig arch = core::paper_student_config();
  tabular::TabularPredictor tab = bench::synthetic_predictor(arch);

  nn::Tensor addr = nn::Tensor::randn({queries, arch.seq_len, arch.addr_dim}, 1.0f, 7);
  nn::Tensor pc = nn::Tensor::randn({queries, arch.seq_len, arch.pc_dim}, 1.0f, 8);

  // Warm-up pass (thread-local workspaces, page faults, branch predictors).
  run_batched(tab, addr, pc, std::min<std::size_t>(queries, 256), 16);

  // Best-of-R timing: the minimum-noise estimator for throughput on a
  // shared machine (any slowdown is interference, never the code).
  const int reps = static_cast<int>(common::env_int("DART_BENCH_REPS", 3));
  auto best_of = [&](auto&& fn) {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) best = std::max(best, fn());
    return best;
  };

  const double scalar_qps = best_of([&] { return run_scalar(tab, addr, pc, queries); });
  std::printf("scalar forward_sample: %.0f queries/sec\n", scalar_qps);

  common::TablePrinter t("Batched tabular inference (queries/sec)");
  t.set_header({"batch", "queries/sec", "speedup vs scalar"});
  const std::size_t batches[] = {1, 2, 4, 8, 16, 32, 64};
  std::vector<std::pair<std::size_t, double>> results;
  for (std::size_t b : batches) {
    const double qps = best_of([&] { return run_batched(tab, addr, pc, queries, b); });
    results.emplace_back(b, qps);
    t.add_row({std::to_string(b), common::TablePrinter::fmt(qps, 0),
               common::TablePrinter::fmt(qps / scalar_qps, 2) + "x"});
  }
  bench::emit(t, "bench_batch_inference.csv");

  // Quantized series: identical predictor (same builder, same seed) with
  // the linear tables served through the integer aggregation path.
  struct QuantSeries {
    tabular::QuantMode mode;
    std::size_t payload_bytes;
    std::vector<std::pair<std::size_t, double>> results;
  };
  std::vector<QuantSeries> quant_series;
  for (tabular::QuantMode mode : {tabular::QuantMode::kInt16, tabular::QuantMode::kInt8}) {
    tabular::TabularPredictor qtab = bench::synthetic_predictor(arch);
    qtab.set_quant_mode(mode);
    QuantSeries series;
    series.mode = mode;
    series.payload_bytes = qtab.quantized_bytes();
    run_batched(qtab, addr, pc, std::min<std::size_t>(queries, 256), 16);  // warm-up
    common::TablePrinter qt(std::string("Quantized batched inference, ") +
                            tabular::quant_mode_name(mode) + " (queries/sec)");
    qt.set_header({"batch", "queries/sec", "speedup vs float"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const std::size_t b = results[i].first;
      const double qps = best_of([&] { return run_batched(qtab, addr, pc, queries, b); });
      series.results.emplace_back(b, qps);
      qt.add_row({std::to_string(b), common::TablePrinter::fmt(qps, 0),
                  common::TablePrinter::fmt(qps / results[i].second, 2) + "x"});
    }
    bench::emit(qt, std::string("bench_batch_inference_") +
                        tabular::quant_mode_name(mode) + ".csv");
    quant_series.push_back(std::move(series));
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"queries\": %zu,\n  \"scalar_queries_per_sec\": %.0f,\n  \"batched\": [\n",
               queries, scalar_qps);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f, "    {\"batch\": %zu, \"queries_per_sec\": %.0f, \"speedup_vs_scalar\": %g}%s\n",
                 results[i].first, results[i].second, results[i].second / scalar_qps,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"quantized\": [\n");
  for (std::size_t s = 0; s < quant_series.size(); ++s) {
    const QuantSeries& series = quant_series[s];
    std::fprintf(f, "    {\"mode\": \"%s\", \"quantized_table_bytes\": %zu, \"batched\": [\n",
                 tabular::quant_mode_name(series.mode), series.payload_bytes);
    for (std::size_t i = 0; i < series.results.size(); ++i) {
      std::fprintf(
          f, "      {\"batch\": %zu, \"queries_per_sec\": %.0f, \"speedup_vs_float\": %g}%s\n",
          series.results[i].first, series.results[i].second,
          series.results[i].second / results[i].second,
          i + 1 < series.results.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", s + 1 < quant_series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] %s\n", json_path.c_str());
  return 0;
}
