// A training-free synthetic TabularPredictor for throughput benches
// (bench_batch_inference, bench_serve): paper-shaped kernels whose tables
// are learned from random activations. k-means still runs, so encoders and
// tables are structurally realistic, but table *contents* do not affect
// query cost — only the shapes do — which is exactly what a throughput
// measurement needs.
#pragma once

#include <memory>

#include "nn/tensor.hpp"
#include "pq/encoder.hpp"
#include "tabular/tabular_predictor.hpp"

namespace dart::bench {

/// Builds a predictor of architecture `arch` with K prototypes / C
/// subspaces per linear kernel (attention kernels use K with ck=ct=2),
/// deterministically from `seed`. The simulated deployment uses the
/// O(log K) hash-tree encoder (DESIGN.md §3); exact encoding would
/// dominate the measurement.
inline tabular::TabularPredictor synthetic_predictor(const nn::ModelConfig& arch,
                                                     std::size_t k = 128, std::size_t c = 2,
                                                     std::uint64_t seed = 1000) {
  const std::size_t m = 512;  // training rows for prototype learning
  auto next = [&seed] { return seed += 17; };

  tabular::KernelConfig lin;
  lin.num_prototypes = k;
  lin.num_subspaces = c;
  lin.kmeans_iters = 4;
  lin.encoder = pq::EncoderKind::kHashTree;

  auto make_linear = [&](std::size_t dout, std::size_t din) {
    nn::Tensor w = nn::Tensor::randn({dout, din}, 0.5f, next());
    nn::Tensor b = nn::Tensor::randn({dout}, 0.2f, next());
    nn::Tensor rows = nn::Tensor::randn({m, din}, 1.0f, next());
    tabular::KernelConfig cfg = lin;
    cfg.seed = next();
    return std::make_unique<tabular::LinearKernel>(w, b, rows, cfg);
  };

  tabular::TabularPredictor tab(arch);
  tab.addr_kernel = make_linear(arch.dim, arch.addr_dim);
  tab.pc_kernel = make_linear(arch.dim, arch.pc_dim);
  tab.pos_encoding = nn::Tensor::randn({arch.seq_len, arch.dim}, 0.1f, next());
  const std::size_t dh = arch.dim / arch.heads;
  for (std::size_t l = 0; l < arch.layers; ++l) {
    tabular::TabularEncoderLayer layer;
    layer.qkv = make_linear(3 * arch.dim, arch.dim);
    for (std::size_t h = 0; h < arch.heads; ++h) {
      nn::Tensor q = nn::Tensor::randn({m, arch.seq_len, dh}, 1.0f, next());
      nn::Tensor kk = nn::Tensor::randn({m, arch.seq_len, dh}, 1.0f, next());
      nn::Tensor v = nn::Tensor::randn({m, arch.seq_len, dh}, 1.0f, next());
      tabular::AttentionKernelConfig acfg;
      acfg.num_prototypes = k;
      acfg.ck = 2;
      acfg.ct = 2;
      acfg.kmeans_iters = 4;
      acfg.encoder = pq::EncoderKind::kHashTree;
      acfg.seed = next();
      layer.heads.push_back(std::make_unique<tabular::AttentionKernel>(q, kk, v, acfg));
    }
    layer.out_proj = make_linear(arch.dim, arch.dim);
    layer.ln1.gamma = nn::Tensor::randn({arch.dim}, 0.1f, next());
    layer.ln1.beta = nn::Tensor::randn({arch.dim}, 0.1f, next());
    for (std::size_t j = 0; j < arch.dim; ++j) layer.ln1.gamma[j] += 1.0f;
    layer.ffn_hidden = make_linear(arch.ffn_dim, arch.dim);
    layer.ffn_out = make_linear(arch.dim, arch.ffn_dim);
    layer.ln2.gamma = nn::Tensor::randn({arch.dim}, 0.1f, next());
    layer.ln2.beta = nn::Tensor::randn({arch.dim}, 0.1f, next());
    for (std::size_t j = 0; j < arch.dim; ++j) layer.ln2.gamma[j] += 1.0f;
    tab.layers.push_back(std::move(layer));
  }
  tab.final_ln.gamma = nn::Tensor::randn({arch.dim}, 0.1f, next());
  tab.final_ln.beta = nn::Tensor::randn({arch.dim}, 0.1f, next());
  for (std::size_t j = 0; j < arch.dim; ++j) tab.final_ln.gamma[j] += 1.0f;
  tab.head_kernel = make_linear(arch.out_dim, arch.dim);
  return tab;
}

}  // namespace dart::bench
