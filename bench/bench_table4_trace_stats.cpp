// Table IV — benchmark application memory-trace statistics: unique block
// addresses, pages and deltas of the LLC access stream per application,
// alongside the paper's published values for comparison.
#include "bench_common.hpp"
#include "sim/simulator.hpp"

using namespace dart;

namespace {
struct PaperRow {
  const char* addr;
  const char* page;
  const char* delta;
};

PaperRow paper_row(trace::App app) {
  switch (app) {
    case trace::App::kBwaves: return {"236.5K", "3.7K", "14.4K"};
    case trace::App::kMilc: return {"170.7K", "19.8K", "15.8K"};
    case trace::App::kLeslie3d: return {"104.3K", "1.7K", "3.6K"};
    case trace::App::kLibquantum: return {"347.8K", "5.4K", "0.5K"};
    case trace::App::kGcc: return {"195.8K", "3.4K", "4.9K"};
    case trace::App::kMcf: return {"176.0K", "3.7K", "207.7K"};
    case trace::App::kLbm: return {"121.8K", "1.9K", "1.2K"};
    case trace::App::kWrf: return {"188.5K", "3.3K", "13.7K"};
  }
  return {"-", "-", "-"};
}
}  // namespace

int main() {
  const auto n = static_cast<std::size_t>(common::env_int("DART_SIM_INSTR", 400000));
  sim::SimConfig cfg;
  common::TablePrinter t("Table IV: benchmark memory trace statistics (LLC stream)");
  t.set_header({"Application", "#Access", "#Block", "#Page", "#Delta", "paper #Page",
                "paper #Delta"});
  for (trace::App app : bench::bench_apps()) {
    const auto raw = trace::generate(app, n, 1);
    const auto llc = sim::extract_llc_trace(raw, cfg);
    const trace::TraceStats s = trace::compute_stats(llc);
    const PaperRow p = paper_row(app);
    t.add_row({trace::app_name(app), common::TablePrinter::fmt_count(s.accesses),
               common::TablePrinter::fmt_count(s.unique_blocks),
               common::TablePrinter::fmt_count(s.unique_pages),
               common::TablePrinter::fmt_count(s.unique_deltas), p.page, p.delta});
  }
  bench::emit(t, "table4_trace_stats.csv");
  std::printf("Note: absolute counts scale with DART_SIM_INSTR; the paper's analysis\n"
              "depends on the relative delta/page cardinality across apps (Section VII-B).\n");
  return 0;
}
