// Fig. 14 — IPC improvement of DART and the baselines over all apps.
// Paper shape: DART variants (35-39%) beat BO (31.5%) and crush the
// latency-bound NN baselines (TransFetch 4.5%, Voyager 0.38%); the
// zero-latency ideals sit slightly above DART.
#include "prefetch_sweep.hpp"

int main() {
  const auto cells = dart::bench::cached_prefetch_sweep();
  dart::bench::print_metric_table(cells, "ipc", "Fig. 14: IPC improvement",
                                  "fig14_ipc_improvement.csv");
  std::printf("Paper means: DART-S 35.4%%, DART 37.6%%, DART-L 38.5%%, BO 31.5%%,\n"
              "ISB 1.6%%, TransFetch 4.5%%, Voyager 0.38%%, TransFetch-I 40.9%%.\n");
  return 0;
}
