// Shared driver for the Figs. 12/13/14 bench binaries: one full
// (app x prefetcher) ExperimentRunner sweep, cached on disk so the three
// binaries (run alphabetically by the bench loop) compute it only once.
#pragma once

#include <string>

#include "core/experiment.hpp"

namespace dart::bench {

/// Loads the cached sweep if its tag matches the current knobs; otherwise
/// runs the sweep and writes the cache ("prefetch_sweep_cache.csv").
core::ExperimentResult cached_prefetch_sweep();

/// Prints the per-app + mean table for one metric ("accuracy", "coverage",
/// or "ipc") and writes `csv_name`.
void print_metric_table(const core::ExperimentResult& result, const std::string& metric,
                        const std::string& title, const std::string& csv_name);

}  // namespace dart::bench
