// Table V — model configurations and complexity: latency (cycles under full
// parallelism), storage, and arithmetic operations for the Teacher, the
// distilled Student, and DART's table hierarchy; plus the paper's headline
// ratios (170x / 9.4x acceleration, 99.99% / 91.83% op reduction).
#include "bench_common.hpp"
#include "core/configs.hpp"
#include "tabular/complexity.hpp"

using namespace dart;

int main() {
  const nn::ModelConfig teacher = core::paper_teacher_config();
  const nn::ModelConfig student = core::paper_student_config();
  const auto dart_v = core::dart_variant();

  const tabular::ModelCost ct = tabular::nn_model_cost(teacher);
  const tabular::ModelCost cs = tabular::nn_model_cost(student);
  const tabular::ModelCost cd = tabular::tabular_model_cost(dart_v.arch, dart_v.tables);

  common::TablePrinter t("Table V: configurations of models");
  t.set_header({"Model", "L", "D", "H", "K", "C", "Latency(cyc)", "Storage(B)", "Ops"});
  auto row = [&](const char* name, const nn::ModelConfig& m, const char* k, const char* c,
                 const tabular::ModelCost& cost) {
    t.add_row({name, std::to_string(m.layers), std::to_string(m.dim), std::to_string(m.heads),
               k, c, common::TablePrinter::fmt_count(cost.latency_cycles),
               common::TablePrinter::fmt_bytes(cost.storage_bytes()),
               common::TablePrinter::fmt_count(cost.arithmetic_ops)});
  };
  row("Teacher", teacher, "-", "-", ct);
  row("Student", student, "-", "-", cs);
  row("DART", dart_v.arch, "128", "2", cd);
  bench::emit(t, "table5_complexity.csv");

  common::TablePrinter h("Headline ratios (paper: 170x, 9.4x, 99.99%, 91.83%)");
  h.set_header({"Metric", "Measured", "Paper"});
  h.add_row({"Teacher/DART latency speedup",
             common::TablePrinter::fmt(static_cast<double>(ct.latency_cycles) /
                                           static_cast<double>(cd.latency_cycles), 1) + "x",
             "170x"});
  h.add_row({"Student/DART latency speedup",
             common::TablePrinter::fmt(static_cast<double>(cs.latency_cycles) /
                                           static_cast<double>(cd.latency_cycles), 1) + "x",
             "9.4x"});
  h.add_row({"Op reduction vs Teacher",
             common::TablePrinter::fmt_pct(
                 1.0 - static_cast<double>(cd.arithmetic_ops) /
                           static_cast<double>(ct.arithmetic_ops), 2),
             "99.99%"});
  h.add_row({"Op reduction vs Student",
             common::TablePrinter::fmt_pct(
                 1.0 - static_cast<double>(cd.arithmetic_ops) /
                           static_cast<double>(cs.arithmetic_ops), 2),
             "91.83%"});
  h.add_row({"Teacher/DART storage compression",
             common::TablePrinter::fmt(ct.storage_bytes() / cd.storage_bytes(), 0) + "x",
             "102x"});
  bench::emit(h, "table5_ratios.csv");
  return 0;
}
