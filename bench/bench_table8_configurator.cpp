// Table VIII — configurations chosen by the table configurator under the
// paper's three (latency, storage) design-constraint pairs.
#include "bench_common.hpp"
#include "core/configs.hpp"
#include "tabular/configurator.hpp"

using namespace dart;

int main() {
  tabular::ConfiguratorOptions copts;
  copts.base = core::paper_student_config();
  tabular::TableConfigurator configurator(copts);
  std::printf("Configuration dictionary: %zu valid candidates enumerated.\n\n",
              configurator.candidates().size());

  common::TablePrinter t("Table VIII: DART variants under design constraints");
  t.set_header({"Prefetcher", "tau (cyc)", "s (B)", "Chosen (L,D,H,K,C)", "Latency",
                "Storage", "Ops", "Paper config"});
  struct Row {
    const char* name;
    std::size_t tau;
    double s;
    const char* paper;
  };
  const Row rows[] = {
      {"DART-S", 60, 30e3, "(1,16,2,16,1) 57cyc 29.9K"},
      {"DART", 100, 1e6, "(1,32,2,128,2) 97cyc 864.4K"},
      {"DART-L", 200, 4e6, "(2,32,2,256,2) 191cyc 3.75M"},
  };
  for (const Row& r : rows) {
    const auto choice = configurator.configure(r.tau, r.s);
    if (!choice.has_value()) {
      t.add_row({r.name, std::to_string(r.tau), common::TablePrinter::fmt_bytes(r.s),
                 "(none)", "-", "-", "-", r.paper});
      continue;
    }
    t.add_row({r.name, std::to_string(r.tau), common::TablePrinter::fmt_bytes(r.s),
               choice->to_string(),
               std::to_string(choice->cost.latency_cycles),
               common::TablePrinter::fmt_bytes(choice->cost.storage_bytes()),
               common::TablePrinter::fmt_count(choice->cost.arithmetic_ops), r.paper});
  }
  bench::emit(t, "table8_configurator.csv");
  return 0;
}
