// Table IX experiment grid over the synthetic workload corpus (DESIGN.md
// §12): the same ExperimentRunner sweep that produces Figs. 12-14 for the
// Table IV apps, re-pointed at the YCSB-grade workload families from
// trace/workloads.hpp. Closes the loop on the deterministic workload
// engine — the corpus feeds training, simulation and the accuracy /
// coverage / IPC metrics end to end.
//
// Output: one per-(workload, prefetcher) results table + CSV
// (table9_workloads.csv, ExperimentResult::write_csv schema). The repo
// versions a reference run at results/table9_workloads.csv; CI regenerates
// the CSV at smoke scale and uploads it as an artifact.
//
// Knobs: DART_WORKLOADS overrides the default corpus (';'-separated
// specs), DART_PREFETCHERS the prefetcher set (default keeps the sweep
// tractable: rule-based baselines + the tabular DART variants; the NN
// baselines train per workload and dominate wall-clock), and the usual
// DART_EPOCHS / DART_TRAIN_SAMPLES / DART_SIM_INSTR scale levers.
//
// The grid runs through the resumable sweep machinery (DESIGN.md §13):
// DART_SWEEP_DIR (or --store DIR) points at a durable result store, so an
// interrupted overnight grid resumes instead of restarting — CI and local
// runs produce table9_workloads.csv through the exact same path. The
// DART_SWEEP_TIMEOUT_MS / DART_SWEEP_RETRIES knobs apply unchanged.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "prefetch_sweep.hpp"

using namespace dart;

int main(int argc, char** argv) {
  std::string csv_path = "table9_workloads.csv";
  std::string store_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) csv_path = argv[++i];
    if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) store_dir = argv[++i];
  }

  core::ExperimentSpec spec = core::ExperimentSpec::bench_defaults();
  spec.apps.clear();  // synthetic corpus only; DART_APPS does not apply here
  spec.sweep = core::SweepOptions::from_env();
  if (!store_dir.empty()) spec.sweep.store_dir = store_dir;
  if (spec.workloads.empty()) {
    spec.workloads = {
        "trace:zipfian,footprint=64M,theta=0.99",
        "trace:scrambled-zipfian,footprint=64M,theta=0.99",
        "trace:latest,footprint=64M,theta=0.99",
        "trace:exponential,footprint=64M",
        "trace:uniform,footprint=64M",
        "trace:sequential,footprint=64M,stride=4",
        "trace:ycsb-a,footprint=64M",
        "trace:ycsb-b,footprint=64M",
    };
  }
  if (common::env_string("DART_PREFETCHERS", "").empty()) {
    spec.prefetchers = {"BO", "ISB", "DART-S", "DART"};
  }

  std::printf("running workload-corpus grid (%zu workloads x %zu prefetchers)...\n",
              spec.workloads.size(), spec.prefetchers.size());
  if (!spec.sweep.store_dir.empty()) {
    std::printf("result store: %s (crash-safe, resumable)\n", spec.sweep.store_dir.c_str());
  }
  common::Stopwatch watch;
  core::ExperimentResult result = core::ExperimentRunner(spec).run();
  std::printf("grid done in %.1f s (%zu simulated, %zu reused, %zu quarantined)\n",
              watch.elapsed_s(), result.count(core::CellStatus::kDone),
              result.count(core::CellStatus::kSkipped),
              result.count(core::CellStatus::kFailed));

  bench::print_metric_table(result, "accuracy", "Prefetch accuracy over the workload corpus",
                            "workload_grid_accuracy.csv");
  bench::print_metric_table(result, "coverage", "Prefetch coverage over the workload corpus",
                            "workload_grid_coverage.csv");
  bench::print_metric_table(result, "ipc", "IPC improvement over the workload corpus",
                            "workload_grid_ipc.csv");

  std::string tag = "#tag corpus instr=" + std::to_string(spec.pipeline.raw_accesses) +
                    " samples=" + std::to_string(spec.pipeline.prep.max_samples) +
                    " epochs=" + std::to_string(spec.pipeline.teacher_train.epochs) +
                    " workloads=";
  for (const auto& w : spec.workloads) tag += w + ";";
  tag += " pfs=";
  for (const auto& p : spec.prefetchers) tag += p + ";";
  if (!result.write_csv(csv_path, tag)) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("[csv] %s\n", csv_path.c_str());
  return 0;
}
