// Table III — simulation parameters, plus a baseline sanity run per app so
// the printed configuration is demonstrably the one the simulator executes.
#include "bench_common.hpp"
#include "sim/simulator.hpp"

using namespace dart;

int main() {
  sim::SimConfig cfg;
  common::TablePrinter t("Table III: Simulation parameters");
  t.set_header({"Parameter", "Value"});
  t.add_row({"CPU", "4 GHz, 4-wide OoO, " + std::to_string(cfg.rob_entries) + "-entry ROB, " +
                         std::to_string(cfg.lsq_entries) + "-entry LSQ"});
  t.add_row({"L1 D-cache", common::TablePrinter::fmt_bytes(cfg.l1_size) + ", " +
                               std::to_string(cfg.l1_ways) + "-way, " +
                               std::to_string(cfg.l1_mshrs) + "-entry MSHR, " +
                               std::to_string(cfg.l1_latency) + "-cycle"});
  t.add_row({"L2 Cache", common::TablePrinter::fmt_bytes(cfg.l2_size) + ", " +
                             std::to_string(cfg.l2_ways) + "-way, " +
                             std::to_string(cfg.l2_mshrs) + "-entry MSHR, " +
                             std::to_string(cfg.l2_latency) + "-cycle"});
  t.add_row({"LL Cache", common::TablePrinter::fmt_bytes(cfg.llc_size) + ", " +
                             std::to_string(cfg.llc_ways) + "-way, " +
                             std::to_string(cfg.llc_mshrs) + "-entry MSHR, " +
                             std::to_string(cfg.llc_latency) + "-cycle"});
  t.add_row({"DRAM", std::to_string(cfg.dram_latency) + "-cycle access (tRP=tRCD=tCAS=12.5ns)"});
  t.add_row({"Prefetch engine", std::to_string(cfg.prefetch_queue) + "-entry queue, degree <= " +
                                    std::to_string(cfg.max_degree)});
  bench::emit(t, "table3_simparams.csv");

  // Baseline IPC sanity sweep (no prefetcher).
  common::TablePrinter runs("Baseline simulation sanity (no prefetcher)");
  runs.set_header({"App", "Instructions", "Cycles", "IPC", "LLC accesses", "LLC misses"});
  const auto n = static_cast<std::size_t>(common::env_int("DART_SIM_INSTR", 200000));
  sim::Simulator simulator(cfg);
  for (trace::App app : bench::bench_apps()) {
    const auto trace = trace::generate(app, n, 1);
    const sim::SimStats s = simulator.run(trace);
    runs.add_row({trace::app_name(app), common::TablePrinter::fmt_count(s.instructions),
                  common::TablePrinter::fmt_count(s.cycles),
                  common::TablePrinter::fmt(s.ipc(), 3),
                  common::TablePrinter::fmt_count(s.llc_accesses),
                  common::TablePrinter::fmt_count(s.llc_demand_misses)});
  }
  bench::emit(runs, "table3_baseline_runs.csv");
  return 0;
}
