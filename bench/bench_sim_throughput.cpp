// Trace-replay simulator throughput (the second axis of the perf
// trajectory, next to bench_batch_inference): accesses/sec through
// sim::Simulator::run on the Table IX sweep configuration — every app of
// Table IV replayed against the rule-based prefetcher set (baseline, stride,
// BO, ISB), plus one zipfian and one YCSB-B synthetic-workload series from
// the deterministic workload engine (trace/workloads.hpp). Every
// ExperimentRunner cell pays exactly this loop, so sweep wall-clock scales
// with this number.
//
// Output: the usual table + CSV mirror, plus a JSON snapshot:
//
//   {"accesses_per_config": N, "apps": A, "sim_instr": I,
//    "configs": [{"prefetcher": "baseline", "accesses_per_sec": S,
//                 "counters": {"instructions": ..., "cycles": ...,
//                              "llc_accesses": ..., ...}}, ...]}
//
// The `counters` objects are deterministic (trace generation and the
// simulator are seeded and allocation order does not affect results), so CI
// diffs them against the committed repo-root bench_sim_throughput.json to
// catch semantic regressions; the *_per_sec fields are host-dependent and
// ignored by the diff (tools/diff_sim_counters.py).
//
// Synthetic series are named "zipfian/<prefetcher>" and
// "ycsb-b/<prefetcher>" in the table and JSON; their counters are pinned
// by the same CI diff, so the workload engine's streams are regression-
// checked here end to end (generator -> simulator).
//
// Knobs: DART_SIM_INSTR (accesses per app trace, default 400000),
// DART_APPS, DART_BENCH_REPS (best-of-R, default 3), --json <path>.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/registry.hpp"
#include "trace/workloads.hpp"
#include "sim/simulator.hpp"

using namespace dart;

namespace {

struct ConfigResult {
  std::string name;
  double accesses_per_sec = 0.0;
  sim::SimStats totals;  ///< counters summed over all apps (deterministic)
};

void accumulate(sim::SimStats& into, const sim::SimStats& s) {
  into.instructions += s.instructions;
  into.cycles += s.cycles;
  into.llc_accesses += s.llc_accesses;
  into.llc_hits += s.llc_hits;
  into.llc_demand_misses += s.llc_demand_misses;
  into.pf_issued += s.pf_issued;
  into.pf_useful += s.pf_useful;
  into.pf_late += s.pf_late;
  into.pf_dropped += s.pf_dropped;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "bench_sim_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const std::size_t n =
      static_cast<std::size_t>(common::env_int("DART_SIM_INSTR", 400000));
  const int reps = static_cast<int>(common::env_int("DART_BENCH_REPS", 3));
  const std::vector<trace::App> apps = bench::bench_apps();
  const sim::SimConfig cfg;  // Table III parameters (the table9 sweep config)

  // Rule-based Table IX prefetchers only: cell cost is then pure replay, not
  // model training/inference, which is what this bench tracks.
  const char* specs[] = {"baseline", "stride", "bo", "isb"};

  // Trace series: the Table IV app pool (summed, as before), plus one
  // zipfian and one YCSB-B synthetic workload from the workload engine.
  // All traces are generated outside the timer, with a fixed seed so the
  // counters in the JSON are reproducible on any host.
  struct Series {
    std::string prefix;  ///< "" for the app pool, "zipfian/" etc. otherwise
    std::vector<trace::MemoryTrace> traces;
    std::size_t accesses = 0;
  };
  std::vector<Series> series(3);
  for (trace::App app : apps) series[0].traces.push_back(trace::generate(app, n, 1));
  series[1].prefix = "zipfian/";
  series[1].traces.push_back(
      trace::Workload::parse("trace:zipfian,footprint=64M,theta=0.99").generate(n, 1));
  series[2].prefix = "ycsb-b/";
  series[2].traces.push_back(
      trace::Workload::parse("trace:ycsb-b,footprint=64M").generate(n, 1));
  std::size_t total_accesses = 0;
  for (Series& sr : series) {
    for (const auto& trace : sr.traces) sr.accesses += trace.size();
    total_accesses += sr.accesses;
  }

  common::TablePrinter t("Simulator replay throughput (accesses/sec)");
  t.set_header({"prefetcher", "accesses/sec", "Maccess/s", "ipc(sum)"});
  std::vector<ConfigResult> results;
  sim::Simulator simulator(cfg);

  for (const Series& sr : series) {
    for (const char* spec : specs) {
      ConfigResult r;
      r.name = sr.prefix + spec;
      // Warm-up + counter capture (identical across reps: the simulator is
      // deterministic), then best-of-R for the timing.
      for (int rep = -1; rep < reps; ++rep) {
        sim::SimStats totals;
        common::Stopwatch watch;
        for (const auto& trace : sr.traces) {
          // Fresh prefetcher per app, like an ExperimentRunner cell.
          std::unique_ptr<sim::Prefetcher> pf;
          if (std::strcmp(spec, "baseline") != 0) pf = sim::make_prefetcher(spec);
          accumulate(totals, simulator.run(trace, pf.get()));
        }
        const double aps = static_cast<double>(sr.accesses) / watch.elapsed_s();
        if (rep < 0) {
          r.totals = totals;
        } else {
          r.accesses_per_sec = std::max(r.accesses_per_sec, aps);
        }
      }
      results.push_back(r);
      t.add_row({r.name, common::TablePrinter::fmt(r.accesses_per_sec, 0),
                 common::TablePrinter::fmt(r.accesses_per_sec / 1e6, 2),
                 common::TablePrinter::fmt(r.totals.ipc(), 3)});
    }
  }
  bench::emit(t, "bench_sim_throughput.csv");

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"accesses_per_config\": %zu,\n  \"apps\": %zu,\n  \"sim_instr\": %zu,\n  \"configs\": [\n",
               total_accesses, apps.size(), n);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    const sim::SimStats& s = r.totals;
    std::fprintf(f,
                 "    {\"prefetcher\": \"%s\", \"accesses_per_sec\": %.0f,\n"
                 "     \"counters\": {\"instructions\": %llu, \"cycles\": %llu, "
                 "\"llc_accesses\": %llu, \"llc_hits\": %llu, "
                 "\"llc_demand_misses\": %llu, \"pf_issued\": %llu, "
                 "\"pf_useful\": %llu, \"pf_late\": %llu, \"pf_dropped\": %llu}}%s\n",
                 r.name.c_str(), r.accesses_per_sec,
                 static_cast<unsigned long long>(s.instructions),
                 static_cast<unsigned long long>(s.cycles),
                 static_cast<unsigned long long>(s.llc_accesses),
                 static_cast<unsigned long long>(s.llc_hits),
                 static_cast<unsigned long long>(s.llc_demand_misses),
                 static_cast<unsigned long long>(s.pf_issued),
                 static_cast<unsigned long long>(s.pf_useful),
                 static_cast<unsigned long long>(s.pf_late),
                 static_cast<unsigned long long>(s.pf_dropped),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] %s\n", json_path.c_str());
  return 0;
}
