// Table VI — F1-score of the teacher model and the student models trained
// with and without knowledge distillation, per application.
//
// Paper shape to reproduce: Student (KD) >= Student w/o KD on average, and
// Student within a small gap of the much larger Teacher.
#include <mutex>

#include "bench_common.hpp"

using namespace dart;

int main() {
  const auto apps = bench::bench_apps();
  core::PipelineOptions opts = core::PipelineOptions::bench_defaults();

  std::vector<std::array<double, 3>> results(apps.size());
  bench::for_each_app_parallel(apps, [&](trace::App app, std::size_t i) {
    core::Pipeline pipe(app, opts);
    results[i][0] = pipe.eval_nn(pipe.teacher()).f1;
    results[i][1] = pipe.eval_nn(pipe.student_no_kd()).f1;
    results[i][2] = pipe.eval_nn(pipe.student()).f1;
  });

  common::TablePrinter t("Table VI: F1 of teacher vs students (with/without KD)");
  std::vector<std::string> header = {"Model"};
  for (trace::App app : apps) header.push_back(bench::short_name(app));
  header.push_back("Mean");
  t.set_header(header);

  const char* names[3] = {"Teacher", "Stu w/o KD", "Student"};
  for (int m = 0; m < 3; ++m) {
    std::vector<std::string> row = {names[m]};
    double mean = 0.0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
      row.push_back(common::TablePrinter::fmt(results[i][m], 3));
      mean += results[i][m];
    }
    row.push_back(common::TablePrinter::fmt(mean / static_cast<double>(apps.size()), 3));
    t.add_row(row);
  }
  bench::emit(t, "table6_distillation.csv");
  std::printf("Paper means: Teacher 0.788, Stu w/o KD 0.751, Student 0.783\n"
              "(expected shape: Student >= Stu w/o KD, both close to Teacher).\n");
  return 0;
}
