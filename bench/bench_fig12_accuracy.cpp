// Fig. 12 — prefetch accuracy of DART and the baselines over all apps.
// Paper shape: the ideal NN prefetchers score highest; BO is high; the
// latency-bound NN baselines drop hard; DART variants stay ~80%.
#include "prefetch_sweep.hpp"

int main() {
  const auto cells = dart::bench::cached_prefetch_sweep();
  dart::bench::print_metric_table(cells, "accuracy",
                                  "Fig. 12: prefetch accuracy", "fig12_accuracy.csv");
  std::printf("Paper means: DART-S 80.6%%, DART 80.7%%, DART-L 82.5%%, BO 89.4%%,\n"
              "TransFetch-I 89.6%%, Voyager-I 95.1%%, TransFetch 78.6%%, Voyager 49.9%%.\n");
  return 0;
}
