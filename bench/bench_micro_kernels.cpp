// Microbenchmarks (google-benchmark): wall-clock cost of the tabular
// kernels vs the dense operations they replace, and of the two encoders.
// These demonstrate the mechanism behind Table V on a real CPU: table
// lookups replace the O(D^2) matmul with O(C log K + DO*C) work.
#include <benchmark/benchmark.h>

#include <cmath>

#include "nn/linear.hpp"
#include "nn/ops.hpp"
#include "pq/kmeans.hpp"
#include "tabular/attention_kernel.hpp"
#include "tabular/linear_kernel.hpp"

using namespace dart;

namespace {

constexpr std::size_t kT = 8;

nn::Tensor make_rows(std::size_t n, std::size_t d, std::uint64_t seed) {
  return nn::Tensor::randn({n, d}, 1.0f, seed);
}

void BM_DenseLinear(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  nn::Linear lin(d, d, 1);
  nn::Tensor x = make_rows(kT, d, 2);
  for (auto _ : state) {
    nn::Tensor y = lin.apply(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_DenseLinear)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_LinearKernelQuery(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  nn::Linear lin(d, d, 1);
  nn::Tensor train = make_rows(2048, d, 3);
  tabular::KernelConfig cfg;
  cfg.num_prototypes = 128;
  cfg.num_subspaces = 2;
  cfg.encoder = pq::EncoderKind::kHashTree;
  tabular::LinearKernel kernel(lin.weight(), lin.bias(), train, cfg);
  nn::Tensor x = make_rows(kT, d, 4);
  for (auto _ : state) {
    nn::Tensor y = kernel.query(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LinearKernelQuery)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_DenseAttentionHead(benchmark::State& state) {
  const std::size_t dk = static_cast<std::size_t>(state.range(0));
  nn::Tensor q = make_rows(kT, dk, 5), k = make_rows(kT, dk, 6), v = make_rows(kT, dk, 7);
  for (auto _ : state) {
    nn::Tensor scores, out;
    nn::ops::matmul_nt(q, k, scores);
    scores *= 1.0f / std::sqrt(static_cast<float>(dk));
    nn::ops::softmax_rows(scores);
    nn::ops::matmul(scores, v, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DenseAttentionHead)->Arg(16)->Arg(32)->Arg(64);

void BM_AttentionKernelQuery(benchmark::State& state) {
  const std::size_t dk = static_cast<std::size_t>(state.range(0));
  nn::Tensor q = nn::Tensor::randn({512, kT, dk}, 1.0f, 8);
  nn::Tensor k = nn::Tensor::randn({512, kT, dk}, 1.0f, 9);
  nn::Tensor v = nn::Tensor::randn({512, kT, dk}, 1.0f, 10);
  tabular::AttentionKernelConfig cfg;
  cfg.num_prototypes = 128;
  cfg.ck = 2;
  cfg.ct = 2;
  cfg.encoder = pq::EncoderKind::kHashTree;
  tabular::AttentionKernel kernel(q, k, v, cfg);
  nn::Tensor qs = make_rows(kT, dk, 11), ks = make_rows(kT, dk, 12), vs = make_rows(kT, dk, 13);
  for (auto _ : state) {
    nn::Tensor y = kernel.query(qs, ks, vs);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AttentionKernelQuery)->Arg(16)->Arg(32)->Arg(64);

void BM_ExactEncoder(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  nn::Tensor data = make_rows(4096, 16, 14);
  auto res = pq::kmeans(data, k, {8, 1e-4, 1});
  pq::ExactEncoder enc(res.centroids);
  nn::Tensor probe = make_rows(1, 16, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(probe.row(0)));
  }
}
BENCHMARK(BM_ExactEncoder)->Arg(16)->Arg(128)->Arg(1024);

void BM_HashTreeEncoder(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  nn::Tensor data = make_rows(4096, 16, 16);
  auto res = pq::kmeans(data, k, {8, 1e-4, 1});
  pq::HashTreeEncoder enc(res.centroids);
  nn::Tensor probe = make_rows(1, 16, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(probe.row(0)));
  }
}
BENCHMARK(BM_HashTreeEncoder)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
