// Table IX — configurations of all evaluated prefetchers: storage, latency,
// table/ML mechanism. Rule-based entries are constructed through the
// prefetcher registry to report their real structure sizes; NN entries
// report the canonical model sizes with the shared Table IX latency
// constants from core/configs.hpp.
#include "bench_common.hpp"
#include "core/configs.hpp"
#include "sim/registry.hpp"
#include "tabular/complexity.hpp"

using namespace dart;

int main() {
  common::TablePrinter t("Table IX: configurations of prefetchers");
  t.set_header({"Prefetcher", "Storage", "Latency(cyc)", "Table", "ML", "Mechanism"});

  const auto bo = sim::make_prefetcher("bo");
  const auto isb = sim::make_prefetcher("isb");
  t.add_row({bo->name(), common::TablePrinter::fmt_bytes(bo->storage_bytes()),
             std::to_string(bo->prediction_latency()), "yes", "no", "Spatial locality"});
  t.add_row({isb->name(), common::TablePrinter::fmt_bytes(isb->storage_bytes()),
             std::to_string(isb->prediction_latency()), "yes", "no", "Temporal locality"});

  // NN baselines: the TransFetch-like model is the pipeline teacher; the
  // Voyager-like model is the LSTM predictor (sizes from the architectures).
  const nn::ModelConfig tf = core::bench_teacher_config();
  nn::AddressPredictor tf_model(tf, 1);
  const auto prep = core::default_preprocess();
  nn::LstmPredictor voy(prep.addr_segments, prep.pc_segments, 64, prep.bitmap_size, 2);
  t.add_row({"TransFetch", common::TablePrinter::fmt_bytes(tf_model.num_params() * 4.0),
             common::TablePrinter::fmt_count(core::kTransFetchLatencyCycles), "no", "yes",
             "Attention"});
  t.add_row({"Voyager", common::TablePrinter::fmt_bytes(voy.num_params() * 4.0),
             common::TablePrinter::fmt_count(core::kVoyagerLatencyCycles), "no", "yes",
             "LSTM"});
  t.add_row({"TransFetch-I", "-", "0", "no", "yes", "Attention (Ideal)"});
  t.add_row({"Voyager-I", "-", "0", "no", "yes", "LSTM (Ideal)"});

  const auto s = core::dart_s_variant();
  const auto l = core::dart_l_variant();
  const auto cs = tabular::tabular_model_cost(s.arch, s.tables);
  const auto cl = tabular::tabular_model_cost(l.arch, l.tables);
  t.add_row({"DART (S..L)",
             common::TablePrinter::fmt_bytes(cs.storage_bytes()) + " - " +
                 common::TablePrinter::fmt_bytes(cl.storage_bytes()),
             std::to_string(cs.latency_cycles) + " - " + std::to_string(cl.latency_cycles),
             "yes", "yes", "Attention (tabularized)"});
  bench::emit(t, "table9_prefetchers.csv");
  std::printf("Paper: BO 4KB/~60cyc, ISB 8KB/~30cyc, TransFetch 13.8MB/4.5K,\n"
              "Voyager 14.9MB/27.7K, DART 29.9K-3.75M / 57-191 cycles.\n"
              "(Our NN baselines are CPU-scaled; see DESIGN.md substitution #3.)\n");
  return 0;
}
