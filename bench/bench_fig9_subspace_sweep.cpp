// Fig. 9 — DART F1-score as the number of subspaces C varies (K fixed).
// Paper shape: higher C helps, but less than K (C=8 ~6.6% above C=1).
#include "bench_common.hpp"

using namespace dart;

int main() {
  const auto apps = bench::bench_apps();
  core::PipelineOptions opts = core::PipelineOptions::bench_defaults();
  // C must divide the per-head dimension (16 for the student), T (8), and
  // the segment counts (8): {1, 2, 4, 8} are the valid sweep points.
  std::vector<std::size_t> cs = {1, 2, 4};
  if (common::env_int("DART_FULL_SWEEP", 0) != 0) cs = {1, 2, 4, 8};

  std::vector<std::vector<double>> f1(apps.size(), std::vector<double>(cs.size(), 0.0));
  bench::for_each_app_parallel(apps, [&](trace::App app, std::size_t i) {
    core::Pipeline pipe(app, opts);
    pipe.student();
    for (std::size_t j = 0; j < cs.size(); ++j) {
      tabular::TabularizeOptions tab = opts.tab;
      tab.tables = tabular::TableConfig::uniform(opts.tab.tables.attention.k, cs[j]);
      if (!tabular::config_is_valid(opts.student_arch, tab.tables)) continue;
      f1[i][j] = pipe.eval_tabular(pipe.tabularize(tab)).f1;
    }
  });

  common::TablePrinter t("Fig. 9: DART F1 vs number of subspaces C (K=128)");
  std::vector<std::string> header = {"App"};
  for (auto c : cs) header.push_back("C=" + std::to_string(c));
  t.set_header(header);
  std::vector<double> mean(cs.size(), 0.0);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    std::vector<std::string> row = {trace::app_name(apps[i])};
    for (std::size_t j = 0; j < cs.size(); ++j) {
      row.push_back(common::TablePrinter::fmt(f1[i][j], 3));
      mean[j] += f1[i][j];
    }
    t.add_row(row);
  }
  std::vector<std::string> mrow = {"Mean"};
  for (std::size_t j = 0; j < cs.size(); ++j) {
    mrow.push_back(common::TablePrinter::fmt(mean[j] / static_cast<double>(apps.size()), 3));
  }
  t.add_row(mrow);
  bench::emit(t, "fig9_subspace_sweep.csv");
  std::printf("Paper shape: F1 improves mildly with C (C=8 ~6.6%% above C=1).\n");
  return 0;
}
