// Prefetch-as-a-service throughput (the ROADMAP "millions of users"
// tracker): aggregate predictions/sec through serve::PrefetchServer —
// 8+ simulated client streams replaying Table IV app traces into the
// shard-per-core micro-batching engine, on a synthetic student-architecture
// predictor (bench/synthetic_model.hpp — table contents don't affect query
// cost, only shapes do).
//
// Output: the usual table + CSV mirror, plus a JSON snapshot in the schema
// of the repo-root bench_serve.json:
//
//   {"streams": S, "requests_per_stream": R, "queue_capacity": Q,
//    "batch_cap": B, "linger_us": L,
//    "counters": {"submitted": N, "completed": N, "shed": 0, "lost": 0,
//                 "id_mismatches": 0, "deadline_missed": 0,
//                 "watchdog_restarts": 0, "reload_rejected": 0},
//    "host": {...}, "perf": {...}}
//
// The `counters` object is deterministic for a given workload shape —
// every accepted request must resolve (completed + shed == submitted),
// none may be lost or mis-routed, and at the default config (no
// deadlines, no watermarks, watchdog miss budget far above CI jitter) the
// overload/robustness counters are all zero — so CI diffs it against the
// committed baseline (tools/diff_sim_counters.py ignores the
// host-dependent `host`/`perf` sections). The bench itself exits nonzero
// if the no-loss invariants fail.
//
// Knobs: DART_SERVE_SHARDS/QUEUE/BATCH/LINGER_US/PIN (server),
// DART_SERVE_STREAMS/REQUESTS/WINDOW (load), DART_BENCH_REPS (best-of-R),
// --json <path>.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "core/configs.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "synthetic_model.hpp"

using namespace dart;

int main(int argc, char** argv) {
  std::string json_path = "bench_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const nn::ModelConfig arch = core::paper_student_config();
  const auto model =
      std::make_shared<const tabular::TabularPredictor>(bench::synthetic_predictor(arch));

  const serve::ServeConfig server_config = serve::ServeConfig::from_env();
  serve::LoadOptions load = serve::LoadOptions::from_env();
  load.prep = core::default_preprocess();

  // Warm-up run (shard threads, workspaces, page faults) on a small slice.
  {
    serve::PrefetchServer server(model, server_config);
    serve::LoadOptions warm = load;
    warm.requests_per_stream = 512;
    serve::run_client_load(server, warm);
  }

  // Best-of-R: each rep gets a fresh server so its stats cover exactly one
  // run; any slowdown vs the best rep is interference, never the code.
  const int reps = static_cast<int>(common::env_int("DART_BENCH_REPS", 3));
  serve::LoadReport best;
  std::size_t shards = 0;
  for (int r = 0; r < reps; ++r) {
    serve::PrefetchServer server(model, server_config);
    shards = server.num_shards();
    serve::LoadReport rep = serve::run_client_load(server, load);
    if (rep.completed + rep.shed != rep.submitted || rep.id_mismatches != 0 ||
        rep.submitted != load.streams * load.requests_per_stream) {
      std::fprintf(stderr,
                   "bench_serve: no-loss invariant violated (submitted %llu, completed %llu, "
                   "shed %llu, id_mismatches %llu)\n",
                   static_cast<unsigned long long>(rep.submitted),
                   static_cast<unsigned long long>(rep.completed),
                   static_cast<unsigned long long>(rep.shed),
                   static_cast<unsigned long long>(rep.id_mismatches));
      return 1;
    }
    if (rep.predictions_per_sec > best.predictions_per_sec) best = rep;
  }

  std::printf("serve      : %zu streams x %zu requests over %zu shard(s)\n", load.streams,
              load.requests_per_stream, shards);
  std::printf("throughput : %.0f predictions/sec aggregate (%.0f per shard)\n",
              best.predictions_per_sec, best.predictions_per_sec / static_cast<double>(shards));
  std::printf("latency    : p50 %.1f us, p99 %.1f us (enqueue -> completion)\n",
              best.server.p50_ns / 1000.0, best.server.p99_ns / 1000.0);
  std::printf("batching   : %.1f avg occupancy over %llu micro-batches\n", best.server.avg_batch,
              static_cast<unsigned long long>(best.server.batches));

  common::TablePrinter t("Per-shard serving counters (best rep)");
  t.set_header({"shard", "requests", "batches", "avg batch", "p50 us", "p99 us", "max depth"});
  for (std::size_t i = 0; i < best.server.shards.size(); ++i) {
    const serve::ShardStatsSnapshot& s = best.server.shards[i];
    t.add_row({std::to_string(i), std::to_string(s.requests), std::to_string(s.batches),
               common::TablePrinter::fmt(s.avg_batch(), 1),
               common::TablePrinter::fmt(s.p50_ns / 1000.0, 1),
               common::TablePrinter::fmt(s.p99_ns / 1000.0, 1),
               std::to_string(s.queue_depth_max)});
  }
  bench::emit(t, "bench_serve.csv");

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"streams\": %zu,\n  \"requests_per_stream\": %zu,\n", load.streams,
               load.requests_per_stream);
  std::fprintf(f, "  \"queue_capacity\": %zu,\n  \"batch_cap\": %zu,\n  \"linger_us\": %zu,\n",
               server_config.queue_capacity, server_config.batch_cap, server_config.linger_us);
  std::fprintf(f,
               "  \"counters\": {\"submitted\": %llu, \"completed\": %llu, \"shed\": %llu, "
               "\"lost\": %llu, \"id_mismatches\": %llu, \"deadline_missed\": %llu, "
               "\"watchdog_restarts\": %llu, \"reload_rejected\": %llu},\n",
               static_cast<unsigned long long>(best.submitted),
               static_cast<unsigned long long>(best.completed),
               static_cast<unsigned long long>(best.shed),
               static_cast<unsigned long long>(best.submitted - best.completed - best.shed),
               static_cast<unsigned long long>(best.id_mismatches),
               static_cast<unsigned long long>(best.server.deadline_missed),
               static_cast<unsigned long long>(best.server.watchdog_restarts),
               static_cast<unsigned long long>(best.server.reload_rejected));
  std::fprintf(f, "  \"host\": {\"shards\": %zu, \"hardware_threads\": %u, \"pinned\": %d},\n",
               shards, std::thread::hardware_concurrency(), server_config.pin_threads ? 1 : 0);
  std::fprintf(f,
               "  \"perf\": {\"predictions_per_sec\": %.0f, \"per_shard_predictions_per_sec\": "
               "%.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, \"avg_batch\": %.2f, "
               "\"backpressure_rejects\": %llu}\n",
               best.predictions_per_sec, best.predictions_per_sec / static_cast<double>(shards),
               best.server.p50_ns / 1000.0, best.server.p99_ns / 1000.0, best.server.avg_batch,
               static_cast<unsigned long long>(best.rejected));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("[json] %s\n", json_path.c_str());
  return 0;
}
