// Ablation — exact argmin encoder vs the O(log K) hash-tree encoder
// (DESIGN.md substitution #4): end-to-end DART F1 under both, per app.
#include "bench_common.hpp"

using namespace dart;

int main() {
  auto apps = bench::bench_apps();
  // Ablations default to a representative subset to keep runtime modest.
  if (common::env_list("DART_APPS").empty()) {
    apps = {trace::App::kLibquantum, trace::App::kGcc, trace::App::kMilc, trace::App::kMcf};
  }
  core::PipelineOptions opts = core::PipelineOptions::bench_defaults();

  std::vector<std::array<double, 2>> f1(apps.size());
  bench::for_each_app_parallel(apps, [&](trace::App app, std::size_t i) {
    core::Pipeline pipe(app, opts);
    pipe.student();
    tabular::TabularizeOptions tab = opts.tab;
    tab.encoder = pq::EncoderKind::kExact;
    f1[i][0] = pipe.eval_tabular(pipe.tabularize(tab)).f1;
    tab.encoder = pq::EncoderKind::kHashTree;
    f1[i][1] = pipe.eval_tabular(pipe.tabularize(tab)).f1;
  });

  common::TablePrinter t("Ablation: exact vs hash-tree (log K) encoding");
  t.set_header({"App", "F1 exact", "F1 hash-tree", "delta"});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    t.add_row({trace::app_name(apps[i]), common::TablePrinter::fmt(f1[i][0], 3),
               common::TablePrinter::fmt(f1[i][1], 3),
               common::TablePrinter::fmt(f1[i][1] - f1[i][0], 3)});
  }
  bench::emit(t, "ablation_encoders.csv");
  std::printf("The hash tree costs log2(K) comparisons per subspace (the Eq. 16 latency\n"
              "model) and should track the exact encoder within a small F1 gap.\n");
  return 0;
}
