// Unit tests for the Tensor container and the threaded dense kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/ops.hpp"
#include "nn/tensor.hpp"

namespace dart::nn {
namespace {

TEST(Tensor, ZeroInitializedWithShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, AccessorsAreRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[1 * 3 + 2], 5.0f);
  Tensor u({2, 3, 4});
  u.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(u[(1 * 3 + 2) * 4 + 3], 7.0f);
}

TEST(Tensor, ReshapeKeepsDataRejectsBadShape) {
  Tensor t({2, 6});
  t.at(0, 1) = 3.0f;
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.at(0, 1), 3.0f);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({4}), b({4});
  for (std::size_t i = 0; i < 4; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = 1.0f;
  }
  a += b;
  EXPECT_EQ(a[3], 4.0f);
  a -= b;
  EXPECT_EQ(a[3], 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a[3], 6.0f);
  EXPECT_DOUBLE_EQ(a.sum(), 0 + 2 + 4 + 6);
  EXPECT_FLOAT_EQ(a.abs_max(), 6.0f);
}

TEST(Tensor, SizeMismatchThrows) {
  Tensor a({4}), b({5});
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Tensor, RandnDeterministicPerSeed) {
  Tensor a = Tensor::randn({10}, 1.0f, 99);
  Tensor b = Tensor::randn({10}, 1.0f, 99);
  Tensor c = Tensor::randn({10}, 1.0f, 100);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(a[i], b[i]);
  bool any_diff = false;
  for (std::size_t i = 0; i < 10; ++i) any_diff |= a[i] != c[i];
  EXPECT_TRUE(any_diff);
}

// ---- matmul family, validated against a naive reference -------------------

void naive_matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  c = Tensor({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a.at(i, kk) * b.at(kk, j);
      c.at(i, j) = acc;
    }
  }
}

class MatmulSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSizes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Tensor a = Tensor::randn({static_cast<std::size_t>(m), static_cast<std::size_t>(k)}, 1.0f, 1);
  Tensor b = Tensor::randn({static_cast<std::size_t>(k), static_cast<std::size_t>(n)}, 1.0f, 2);
  Tensor c, ref;
  ops::matmul(a, b, c);
  naive_matmul(a, b, ref);
  for (std::size_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

TEST_P(MatmulSizes, TransposedVariantsConsistent) {
  const auto [m, k, n] = GetParam();
  Tensor a = Tensor::randn({static_cast<std::size_t>(m), static_cast<std::size_t>(k)}, 1.0f, 3);
  Tensor bt = Tensor::randn({static_cast<std::size_t>(n), static_cast<std::size_t>(k)}, 1.0f, 4);
  // matmul_nt(a, bt) == matmul(a, bt^T)
  Tensor b({static_cast<std::size_t>(k), static_cast<std::size_t>(n)});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) b.at(j, i) = bt.at(i, j);
  }
  Tensor c1, c2;
  ops::matmul_nt(a, bt, c1);
  ops::matmul(a, b, c2);
  for (std::size_t i = 0; i < c1.numel(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-3f);

  // matmul_tn(a, c2) == a^T c2.
  Tensor at({static_cast<std::size_t>(k), static_cast<std::size_t>(m)});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor d1, d2;
  ops::matmul_tn(a, c2, d1);
  ops::matmul(at, c2, d2);
  for (std::size_t i = 0; i < d1.numel(); ++i) EXPECT_NEAR(d1[i], d2[i], 1e-2f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulSizes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                                           std::make_tuple(8, 8, 8), std::make_tuple(17, 31, 9),
                                           std::make_tuple(64, 32, 48),
                                           std::make_tuple(128, 16, 128)));

TEST(Ops, MatmulRejectsMismatchedDims) {
  Tensor a({2, 3}), b({4, 5}), c;
  EXPECT_THROW(ops::matmul(a, b, c), std::invalid_argument);
}

TEST(Ops, LinearForwardAddsBias) {
  Tensor x({2, 3}), w({4, 3}), b({4}), y;
  x.fill(0.0f);
  w.fill(1.0f);
  for (std::size_t i = 0; i < 4; ++i) b[i] = static_cast<float>(i);
  ops::linear_forward(x, w, b, y);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(y.at(i, j), static_cast<float>(j));
  }
}

TEST(Ops, SoftmaxRowsSumToOneAndOrderPreserved) {
  Tensor x = Tensor::randn({16, 10}, 3.0f, 5);
  Tensor orig = x;
  ops::softmax_rows(x);
  for (std::size_t i = 0; i < 16; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 10; ++j) {
      sum += x.at(i, j);
      EXPECT_GT(x.at(i, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    // argmax preserved
    std::size_t am_orig = 0, am_soft = 0;
    for (std::size_t j = 1; j < 10; ++j) {
      if (orig.at(i, j) > orig.at(i, am_orig)) am_orig = j;
      if (x.at(i, j) > x.at(i, am_soft)) am_soft = j;
    }
    EXPECT_EQ(am_orig, am_soft);
  }
}

TEST(Ops, SoftmaxHandlesExtremeValuesStably) {
  Tensor x({1, 3});
  x[0] = 1000.0f;
  x[1] = -1000.0f;
  x[2] = 999.0f;
  ops::softmax_rows(x);
  EXPECT_FALSE(std::isnan(x[0]));
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0f, 1e-5f);
}

TEST(Ops, SigmoidStableAtExtremes) {
  EXPECT_NEAR(ops::sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(ops::sigmoid(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(ops::sigmoid(-100.0f), 0.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(ops::sigmoid(-1e30f)));
}

TEST(Ops, ReluAndBackward) {
  Tensor x({4}), y, dy({4}), dx;
  x[0] = -1.0f; x[1] = 2.0f; x[2] = 0.0f; x[3] = 3.0f;
  ops::relu(x, y);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  dy.fill(1.0f);
  ops::relu_backward(x, dy, dx);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 1.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);  // relu'(0) = 0 by convention
}

TEST(Ops, CosineSimilarityProperties) {
  Tensor a({3}), b({3});
  a[0] = 1; a[1] = 2; a[2] = 3;
  b = a;
  EXPECT_NEAR(ops::cosine_similarity(a, b), 1.0, 1e-6);
  for (std::size_t i = 0; i < 3; ++i) b[i] = -a[i];
  EXPECT_NEAR(ops::cosine_similarity(a, b), -1.0, 1e-6);
  Tensor z({3});
  EXPECT_EQ(ops::cosine_similarity(a, z), 0.0);
}

}  // namespace
}  // namespace dart::nn
