// Tests for the prefetcher implementations: BO offset learning, ISB
// temporal streams, stride detection, and the NN adapter mechanics.
#include <gtest/gtest.h>

#include <memory>

#include "nn/trainer.hpp"
#include "prefetch/nn_prefetchers.hpp"
#include "prefetch/rule_based.hpp"
#include "sim/simulator.hpp"
#include "tabular/tabularizer.hpp"
#include "trace/generators.hpp"

namespace dart::prefetch {
namespace {

TEST(NextLine, EmitsSequentialCandidates) {
  NextLinePrefetcher pf(3);
  std::vector<std::uint64_t> out;
  pf.on_access(100, 0, false, 0, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 101u);
  EXPECT_EQ(out[2], 103u);
}

TEST(Stride, LearnsPerPcStrideAfterConfidence) {
  StridePrefetcher pf(64, 2);
  std::vector<std::uint64_t> out;
  // Same PC, stride 3: needs three repeats to reach confidence.
  for (std::uint64_t i = 0; i < 4; ++i) {
    out.clear();
    pf.on_access(100 + i * 3, 0x40, false, 0, out);
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 109u + 3u);
  EXPECT_EQ(out[1], 109u + 6u);
}

TEST(Stride, DistinctPcsTrackIndependently) {
  StridePrefetcher pf(64, 1);
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 5; ++i) {
    out.clear();
    pf.on_access(i * 2, 0x40, false, 0, out);      // stride 2 on PC A
    std::vector<std::uint64_t> out_b;
    pf.on_access(1000 + i * 5, 0x44, false, 0, out_b);  // stride 5 on PC B
    if (i == 4) {
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], 8u + 2u);
      ASSERT_EQ(out_b.size(), 1u);
      EXPECT_EQ(out_b[0], 1020u + 5u);
    }
  }
}

TEST(BestOffset, LearnsDominantOffsetViaSimulation) {
  // Feed a stride-6 all-miss stream through the simulator so BO sees fills;
  // it must converge on an offset that covers the stream.
  sim::SimConfig cfg;
  sim::Simulator sim(cfg);
  trace::MemoryTrace t;
  for (std::size_t i = 0; i < 60000; ++i) {
    t.push_back({(i + 1) * 4, 0x400, i * 6 * 64 * 300, false});  // huge stride -> miss
  }
  // Use a plain stride-6 trace with large page jumps is overkill; use stride 6 blocks.
  t.clear();
  for (std::size_t i = 0; i < 60000; ++i) {
    t.push_back({(i + 1) * 64, 0x400, (i * 6) * 64, false});
  }
  BestOffsetPrefetcher bo;
  const sim::SimStats stats = sim.run(t, &bo);
  EXPECT_GT(stats.accuracy(), 0.8);
  EXPECT_GT(stats.coverage(), 0.3);
  EXPECT_EQ(bo.current_offset() % 6, 0);  // a multiple of the true stride
}

TEST(BestOffset, StorageIsTableIxMagnitude) {
  BestOffsetPrefetcher bo;
  EXPECT_GT(bo.storage_bytes(), 1000u);
  EXPECT_LT(bo.storage_bytes(), 8192u);  // ~4KB in Table IX
}

TEST(Isb, LearnsTemporalPairOnRepeat) {
  IsbPrefetcher::Options opt;
  opt.degree = 1;
  IsbPrefetcher isb(opt);
  std::vector<std::uint64_t> out;
  // Correlated irregular sequence A->B->C repeated under one PC.
  const std::uint64_t seq[] = {1000, 7777, 4242};
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t b : seq) {
      out.clear();
      isb.on_access(b, 0x88, false, 0, out);
    }
  }
  // Now accessing 1000 should predict its learned successor 7777.
  out.clear();
  isb.on_access(1000, 0x88, false, 0, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], 7777u);
}

TEST(Isb, CapacityEvictionKeepsMapsBounded) {
  IsbPrefetcher::Options opt;
  opt.max_mappings = 64;
  IsbPrefetcher isb(opt);
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    out.clear();
    isb.on_access(i * 17, 0x88, false, 0, out);
  }
  SUCCEED();  // bounded structures; would OOM/slow otherwise
}

// ------------------------------------------------------------- NN adapters

/// Deterministic fake predictor: always fires delta +1 with p=0.9.
class FakeTabular {
 public:
  static std::shared_ptr<tabular::TabularPredictor> make() { return nullptr; }
};

/// Adapter mechanics are tested through DartPrefetcher with a predictor
/// built from a tiny trained model (integration-lite).
class AdapterFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kT = 4;

  void SetUp() override {
    nn::ModelConfig arch;
    arch.seq_len = kT;
    arch.addr_dim = 4;
    arch.pc_dim = 4;
    arch.dim = 8;
    arch.ffn_dim = 16;
    arch.out_dim = 64;
    arch.heads = 2;
    arch.layers = 1;
    model_ = std::make_unique<nn::AddressPredictor>(arch, 5);

    // Train on a +1-delta sequential pattern so predictions are meaningful.
    trace::MemoryTrace t;
    for (std::uint64_t i = 0; i < 600; ++i) t.push_back({i + 1, 0x10, i * 64, false});
    prep_.history = kT;
    prep_.addr_segments = 4;
    prep_.pc_segments = 4;
    prep_.bitmap_size = 64;
    prep_.lookforward = 16;
    data_ = trace::make_dataset(t, prep_);
    nn::TrainOptions opt;
    opt.epochs = 10;
    nn::train_bce(*model_, data_, opt);

    tabular::TabularizeOptions tab;
    tab.tables = tabular::TableConfig::uniform(16, 2);
    tab.max_train_samples = 256;
    predictor_ = std::make_shared<tabular::TabularPredictor>(
        tabular::tabularize(*model_, data_.addr, data_.pc, tab));
  }

  NnAdapterOptions adapter_opts(std::size_t latency = 0) const {
    NnAdapterOptions o;
    o.prep = prep_;
    o.latency = latency;
    o.degree = 4;
    return o;
  }

  trace::PreprocessOptions prep_;
  nn::Dataset data_;
  std::unique_ptr<nn::AddressPredictor> model_;
  std::shared_ptr<tabular::TabularPredictor> predictor_;
};

TEST_F(AdapterFixture, NoPredictionsBeforeHistoryWarmup) {
  DartPrefetcher pf(predictor_, adapter_opts());
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i + 1 < kT; ++i) {
    out.clear();
    pf.on_access(100 + i, 0x10, false, i, out);
    EXPECT_TRUE(out.empty()) << "predicted before history filled";
  }
}

TEST_F(AdapterFixture, PredictsForwardDeltaOnSequentialStream) {
  DartPrefetcher pf(predictor_, adapter_opts());
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 50; ++i) {
    out.clear();
    pf.on_access(2000 + i, 0x10, false, i * 100, out);
  }
  ASSERT_FALSE(out.empty());
  // Every prediction must be a forward delta within the trained
  // look-forward window (+1 .. +16) relative to the last access (2049).
  for (std::uint64_t cand : out) {
    EXPECT_GT(cand, 2049u);
    EXPECT_LE(cand, 2049u + 16u);
  }
}

TEST_F(AdapterFixture, DegreeCapsPredictionCount) {
  NnAdapterOptions o = adapter_opts();
  o.degree = 2;
  o.threshold = 0.0f;  // fire everything
  DartPrefetcher pf(predictor_, o);
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 50; ++i) {
    out.clear();
    pf.on_access(3000 + i, 0x10, false, i * 100, out);
  }
  EXPECT_LE(out.size(), 2u);
}

TEST_F(AdapterFixture, InitiationIntervalThrottlesTriggers) {
  // A non-pipelined predictor allows one inference per interval.
  NnAdapterOptions o = adapter_opts(/*latency=*/1000);
  o.initiation_interval = 1000;
  DartPrefetcher pf(predictor_, o);
  std::size_t predictions = 0;
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 100; ++i) {
    out.clear();
    pf.on_access(4000 + i, 0x10, false, i * 10, out);  // 10 cycles apart
    predictions += out.empty() ? 0 : 1;
  }
  // 100 accesses over ~1000 cycles with interval 1000 -> very few triggers.
  EXPECT_LE(predictions, 3u);
  EXPECT_GE(predictions, 1u);
}

TEST_F(AdapterFixture, AttentionAdapterMatchesModelStorage) {
  auto shared = std::shared_ptr<nn::AddressPredictor>(model_.get(), [](auto*) {});
  AttentionPrefetcher pf(shared, adapter_opts(4500), "TransFetch");
  EXPECT_EQ(pf.storage_bytes(), model_->num_params() * sizeof(float));
  EXPECT_EQ(pf.prediction_latency(), 4500u);
  EXPECT_EQ(pf.name(), "TransFetch");
}

TEST_F(AdapterFixture, DartEndToEndInSimulatorBeatsNoPrefetcher) {
  sim::SimConfig cfg;
  sim::Simulator sim(cfg);
  // Sequential stream matching the trained pattern, with enough compute
  // between accesses (instr gap 64 -> ~16 cycles/access) that a 97-cycle
  // predictor can be timely.
  trace::MemoryTrace t;
  for (std::uint64_t i = 0; i < 30000; ++i) {
    t.push_back({(i + 1) * 64, 0x10, i * 64, false});
  }
  const sim::SimStats base = sim.run(t);
  DartPrefetcher pf(predictor_, adapter_opts(/*latency=*/97));
  const sim::SimStats with_pf = sim.run(t, &pf);
  EXPECT_GT(with_pf.ipc(), base.ipc());
  EXPECT_GT(with_pf.accuracy(), 0.5);
}

}  // namespace
}  // namespace dart::prefetch
