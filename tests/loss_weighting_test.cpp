// Tests for positive-class weighting in the BCE loss and its automatic
// resolution from label density — the guard against all-negative collapse
// on sparse delta bitmaps (mcf-class workloads).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/trainer.hpp"

namespace dart::nn {
namespace {

TEST(WeightedBce, ReducesToPlainBceAtWeightOne) {
  Tensor logits = Tensor::randn({32}, 2.0f, 1);
  Tensor targets({32});
  for (std::size_t i = 0; i < 32; ++i) targets[i] = i % 4 == 0 ? 1.0f : 0.0f;
  Tensor d1, d2;
  const double a = bce_with_logits(logits, targets, d1);
  const double b = bce_with_logits(logits, targets, d2, 1.0f);
  EXPECT_DOUBLE_EQ(a, b);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(d1[i], d2[i]);
}

TEST(WeightedBce, ScalesPositiveGradientsOnly) {
  Tensor logits({2}), targets({2});
  logits[0] = 0.0f;  // positive label
  logits[1] = 0.0f;  // negative label
  targets[0] = 1.0f;
  targets[1] = 0.0f;
  Tensor d1, d4;
  bce_with_logits(logits, targets, d1, 1.0f);
  bce_with_logits(logits, targets, d4, 4.0f);
  EXPECT_NEAR(d4[0], 4.0f * d1[0], 1e-7f);  // positive grad scaled
  EXPECT_NEAR(d4[1], d1[1], 1e-7f);         // negative grad untouched
}

TEST(WeightedBce, LossIncreasesWithWeightWhenPositivesWrong) {
  Tensor logits({1}), targets({1});
  logits[0] = -3.0f;  // confidently wrong on a positive
  targets[0] = 1.0f;
  Tensor d;
  const double l1 = bce_with_logits(logits, targets, d, 1.0f);
  const double l8 = bce_with_logits(logits, targets, d, 8.0f);
  EXPECT_NEAR(l8, 8.0 * l1, 1e-6);
}

TEST(ResolvePosWeight, ExplicitValueWins) {
  TrainOptions opt;
  opt.pos_weight = 3.5f;
  Dataset ds;
  ds.labels = Tensor({10, 10});
  EXPECT_FLOAT_EQ(resolve_pos_weight(opt, ds), 3.5f);
}

TEST(ResolvePosWeight, AutoScalesWithSparsity) {
  TrainOptions opt;  // pos_weight = 0 -> auto
  Dataset dense, sparse;
  dense.labels = Tensor({10, 10});
  sparse.labels = Tensor({10, 10});
  for (std::size_t i = 0; i < 100; ++i) dense.labels[i] = i % 2 ? 1.0f : 0.0f;
  sparse.labels[0] = 1.0f;  // 1% positive
  const float w_dense = resolve_pos_weight(opt, dense);
  const float w_sparse = resolve_pos_weight(opt, sparse);
  EXPECT_LT(w_dense, w_sparse);
  EXPECT_NEAR(w_dense, std::sqrt(2.0f), 1e-4f);
  EXPECT_FLOAT_EQ(w_sparse, 6.0f);  // clamped at 6
}

TEST(ResolvePosWeight, AllNegativeLabelsFallBackToOne) {
  TrainOptions opt;
  Dataset ds;
  ds.labels = Tensor({4, 4});
  EXPECT_FLOAT_EQ(resolve_pos_weight(opt, ds), 1.0f);
}

}  // namespace
}  // namespace dart::nn
