// Unit tests for the common utilities: thread pool, parallel_for, RNG,
// env-var parsing, and table printing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <numeric>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "common/thread_pool.hpp"

namespace dart::common {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesZeroAndSingleElement) {
  int calls = 0;
  parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  parallel_for(1, [&](std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ParallelFor, NestedCallsExecuteInline) {
  // Nested parallel_for must not deadlock the bounded pool.
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      parallel_for(100, [&](std::size_t b2, std::size_t e2) {
        total += static_cast<int>(e2 - b2);
      }, 1);
    }
  }, 1);
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelForEach, MatchesSerialSum) {
  std::vector<std::atomic<long>> acc(1);
  std::atomic<long> sum{0};
  parallel_for_each(1000, [&](std::size_t i) { sum += static_cast<long>(i); }, 8);
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 100000) == b.uniform_int(0, 100000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ZipfLikeStaysInRangeAndIsSkewed) {
  Rng r(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t v = r.zipf_like(10, 0.5);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[5]);  // heavy head
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(5, 9), derive_seed(5, 9));
}

TEST(Env, IntParsesAndFallsBack) {
  ::setenv("DART_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("DART_TEST_INT", 7), 42);
  ::setenv("DART_TEST_INT", "notanint", 1);
  EXPECT_EQ(env_int("DART_TEST_INT", 7), 7);
  ::unsetenv("DART_TEST_INT");
  EXPECT_EQ(env_int("DART_TEST_INT", 7), 7);
}

TEST(Env, DoubleParses) {
  ::setenv("DART_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("DART_TEST_DBL", 1.0), 2.5);
  ::unsetenv("DART_TEST_DBL");
}

TEST(Env, ListSplitsOnComma) {
  ::setenv("DART_TEST_LIST", "a,b,,c", 1);
  const auto items = env_list("DART_TEST_LIST");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "a");
  EXPECT_EQ(items[2], "c");
  ::unsetenv("DART_TEST_LIST");
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt_bytes(864400.0), "864.4K");
  EXPECT_EQ(TablePrinter::fmt_bytes(3.75e6), "3.75M");
  EXPECT_EQ(TablePrinter::fmt_count(98.3e6), "98.3M");
  EXPECT_EQ(TablePrinter::fmt_pct(0.376), "37.6%");
}

TEST(TablePrinter, WritesCsv) {
  TablePrinter t("test");
  t.set_header({"a", "b"});
  t.add_row({"1", "two,with comma"});
  const std::string path = "/tmp/dart_test_table.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"two,with comma\"");
}

TEST(PinCurrentThread, PinsOnLinuxAndKeepsWorking) {
  // Core indices wrap modulo hardware concurrency, so any index is valid.
  const bool pinned = pin_current_thread(0);
  const bool pinned_wrapped = pin_current_thread(1u << 20);
#if defined(__linux__)
  EXPECT_TRUE(pinned);
  EXPECT_TRUE(pinned_wrapped);
#else
  EXPECT_FALSE(pinned);
  EXPECT_FALSE(pinned_wrapped);
#endif
  // The thread still runs after (re)pinning.
  std::atomic<int> x{0};
  ++x;
  EXPECT_EQ(x.load(), 1);
}

}  // namespace
}  // namespace dart::common
