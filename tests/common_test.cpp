// Unit tests for the common utilities: thread pool, parallel_for, RNG,
// env-var parsing, and table printing.
//
// The RNG section pins golden output vectors: the counter-based core
// (SplitMix64 / wyrand / mix64) and every sampler built on it are part of
// the reproducibility contract (DESIGN.md §12) — artifact hashes and the
// trace corpus depend on these exact streams, so a change here is a
// compatibility break, not a refactor.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "common/detmath.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "common/thread_pool.hpp"

namespace dart::common {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, TaskExceptionRethrownAtWaitIdle) {
  // A throwing task must not kill the worker silently: the first exception
  // is captured and rethrown to the caller blocked in wait_idle (DESIGN.md
  // §13 — a sweep cell crash surfaces at the fork point, never vanishes).
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after the rethrow.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, FirstOfManyExceptionsWins) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  // Exactly one rethrow per wait_idle; the captured slot is cleared by it.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // no stale exception left behind
  SUCCEED();
}

TEST(ParallelForEach, BodyExceptionPropagatesToCaller) {
  // parallel_for_each is the sweep's fan-out primitive: a throwing body
  // must rethrow at the call site after every block finishes (no deadlock
  // on the completion latch, no lost worker).
  std::atomic<int> ran{0};
  try {
    parallel_for_each(64, [&](std::size_t i) {
      ++ran;
      if (i == 7) throw std::invalid_argument("body boom");
    }, 1);
    FAIL() << "expected the body exception to propagate";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "body boom");
  }
  // Every block completed (the latch drained) despite the throw.
  EXPECT_GT(ran.load(), 0);
  // The pool is healthy afterwards.
  std::atomic<int> total{0};
  parallel_for_each(100, [&](std::size_t) { ++total; }, 1);
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesZeroAndSingleElement) {
  int calls = 0;
  parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  parallel_for(1, [&](std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ParallelFor, NestedCallsExecuteInline) {
  // Nested parallel_for must not deadlock the bounded pool.
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      parallel_for(100, [&](std::size_t b2, std::size_t e2) {
        total += static_cast<int>(e2 - b2);
      }, 1);
    }
  }, 1);
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelForEach, MatchesSerialSum) {
  std::vector<std::atomic<long>> acc(1);
  std::atomic<long> sum{0};
  parallel_for_each(1000, [&](std::size_t i) { sum += static_cast<long>(i); }, 8);
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 100000) == b.uniform_int(0, 100000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ZipfLikeStaysInRangeAndIsSkewed) {
  Rng r(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t v = r.zipf_like(10, 0.5);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[5]);  // heavy head
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(5, 9), derive_seed(5, 9));
}

// --------------------------------------------------------------- golden RNG

// SplitMix64 from state 0: the published reference sequence. Any change to
// the counter core silently re-keys every committed artifact and trace hash.
TEST(RngGolden, SplitMix64MatchesReferenceVectors) {
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06c45d188009454fULL);
  EXPECT_EQ(splitmix64_next(state), 0xf88bb8a8724c81ecULL);
}

TEST(RngGolden, Mix64AndWyrandPinned) {
  EXPECT_EQ(mix64(1), 0x5692161d100b05e5ULL);
  EXPECT_EQ(mix64(0xdeadbeefULL), 0x4e062702ec929eeaULL);
  std::uint64_t state = 1;
  EXPECT_EQ(wyrand_next(state), 0xcdef1695e1f8ed2cULL);
  EXPECT_EQ(wyrand_next(state), 0x61d6d24b1c9aad40ULL);
  EXPECT_EQ(wyrand_next(state), 0x8cf880c22eebfadfULL);
}

// derive_seed feeds stream decorrelation everywhere (loadgen jitter, fault
// draws, pipeline sub-seeds); the serve layer pins these exact values.
TEST(RngGolden, DeriveSeedPinned) {
  EXPECT_EQ(derive_seed(42, 0), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(derive_seed(42, 7), 0xccf635ee9e9e2fa4ULL);
}

TEST(RngGolden, CounterU01MatchesTopBitFormula) {
  // counter_u01 is the pinned fault-injector draw: top 53 bits of the
  // derived seed scaled by 2^-53.
  for (std::uint64_t n = 0; n < 64; ++n) {
    const double expect =
        static_cast<double>(derive_seed(9, n) >> 11) * (1.0 / 9007199254740992.0);
    EXPECT_EQ(counter_u01(9, n), expect);
  }
}

TEST(RngGolden, NextU64AndBelowPinned) {
  Rng r(123);
  EXPECT_EQ(r.next_u64(), 0x9e3af31dbe02f15fULL);
  EXPECT_EQ(r.next_u64(), 0xfe55109a08da842dULL);
  EXPECT_EQ(r.next_u64(), 0x17bc6b4f13530f17ULL);
  EXPECT_EQ(r.next_u64(), 0x2c7199cfd7076d21ULL);
  Rng b(7);
  const std::uint64_t expect[] = {623, 719, 256, 884, 809, 696, 489, 330};
  for (std::uint64_t e : expect) EXPECT_EQ(b.below(1000), e);
}

TEST(RngGolden, ShufflePinned) {
  Rng r(9);
  std::vector<int> perm(8);
  std::iota(perm.begin(), perm.end(), 0);
  r.shuffle(perm);
  const std::vector<int> expect = {4, 3, 5, 0, 2, 7, 1, 6};
  EXPECT_EQ(perm, expect);
}

// The FP samplers go through det:: math only, so their bit patterns are
// identical across compilers/stdlibs — assert exact doubles via bits.
TEST(RngGolden, NormalBitExact) {
  Rng r(11);
  const std::uint64_t expect[] = {0x3ffbf07d8e5d0834ULL, 0x3fe640a4014df6efULL,
                                  0x3fd924dcba8319d7ULL, 0x3ffd361dda927bdfULL};
  for (std::uint64_t e : expect) {
    const double d = r.normal(0.0, 1.0);
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    EXPECT_EQ(bits, e);
  }
}

TEST(RngGolden, SamplersPinned) {
  ZipfianSampler z(1000, 0.99);
  Rng rz(5);
  const std::uint64_t ez[] = {6, 8, 14, 12, 7, 22, 2, 0};
  for (std::uint64_t e : ez) EXPECT_EQ(z.next(rz), e);

  ScrambledZipfianSampler s(1000, 0.99);
  Rng rs(5);
  const std::uint64_t es[] = {492, 120, 209, 500, 604, 67, 730, 0};
  for (std::uint64_t e : es) EXPECT_EQ(s.next(rs), e);

  LatestSampler l(1000, 0.99);
  Rng rl(5);
  const std::uint64_t el[] = {993, 991, 985, 987, 992, 977, 997, 999};
  for (std::uint64_t e : el) EXPECT_EQ(l.next(rl, 1000), e);

  ExponentialSampler x(1000, 100.0);
  Rng rx(5);
  const std::uint64_t ex[] = {41, 47, 59, 56, 44, 70, 22, 13};
  for (std::uint64_t e : ex) EXPECT_EQ(x.next(rx), e);
}

TEST(RngGolden, SamplerConstructorRejectsBadParameters) {
  EXPECT_THROW(ZipfianSampler(0, 0.99), std::invalid_argument);
  EXPECT_THROW(ZipfianSampler(100, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfianSampler(100, 1.0), std::invalid_argument);
}

// ---------------------------------------------------------- statistical RNG

// Lemire-debiased below(n) must be uniform: chi-squared over 64 buckets,
// 64k draws. 99.9th percentile of chi2(63) is ~106; a biased bound
// sampler blows far past it.
TEST(RngStats, BelowIsUniformChiSquared) {
  constexpr int kBuckets = 64;
  constexpr int kDraws = 1 << 16;
  Rng r(2024);
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
  const double expect = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) chi2 += (c - expect) * (c - expect) / expect;
  EXPECT_LT(chi2, 106.0);
}

// Zipfian rank-frequency: log f(r) ~ -theta log r. Regress the slope over
// the top ranks and compare against theta.
TEST(RngStats, ZipfianRankFrequencySlopeTracksTheta) {
  for (double theta : {0.8, 0.99}) {
    constexpr std::uint64_t kItems = 10000;
    constexpr int kDraws = 1 << 18;
    ZipfianSampler z(kItems, theta);
    Rng r(77);
    std::vector<int> counts(kItems, 0);
    for (int i = 0; i < kDraws; ++i) ++counts[z.next(r)];
    // Ranks 1..32 carry plenty of mass; least-squares in log-log space.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int m = 0;
    for (int rank = 1; rank <= 32; ++rank) {
      if (counts[rank - 1] < 8) continue;  // too noisy for the fit
      const double x = std::log(static_cast<double>(rank));
      const double y = std::log(static_cast<double>(counts[rank - 1]));
      sx += x; sy += y; sxx += x * x; sxy += x * y;
      ++m;
    }
    ASSERT_GE(m, 16);
    const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
    EXPECT_NEAR(-slope, theta, 0.12) << "theta=" << theta;
  }
}

// Latest: recency-skewed — the newest 1% of keys should absorb most of the
// mass. Exponential: mean near the configured mean, truncated to items.
TEST(RngStats, LatestAndExponentialRecencyMass) {
  constexpr std::uint64_t kItems = 10000;
  constexpr int kDraws = 1 << 16;
  LatestSampler latest(kItems, 0.99);
  Rng rl(31);
  int newest = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (latest.next(rl, kItems) >= kItems - kItems / 100) ++newest;
  }
  EXPECT_GT(static_cast<double>(newest) / kDraws, 0.5);

  ExponentialSampler expo(kItems, 250.0);
  Rng re(32);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(expo.next(re));
  EXPECT_NEAR(sum / kDraws, 250.0, 25.0);
}

TEST(RngStats, NormalMomentsMatch) {
  Rng r(5150);
  constexpr int kDraws = 1 << 16;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double d = r.normal(2.0, 3.0);
    sum += d;
    sumsq += d * d;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

// det:: math replaces libm on sampler paths; it must stay accurate or the
// zipfian eta/alpha terms drift from the YCSB reference distribution.
TEST(DetMath, TracksLibmWithinTolerance) {
  for (double x : {1e-6, 0.01, 0.5, 1.0, 2.0, 10.0, 12345.678, 1e12}) {
    EXPECT_NEAR(det::log(x), std::log(x), std::abs(std::log(x)) * 1e-12 + 1e-14) << x;
  }
  for (double x : {-40.0, -1.5, 0.0, 0.5, 3.0, 30.0}) {
    EXPECT_NEAR(det::exp(x), std::exp(x), std::exp(x) * 1e-12) << x;
  }
  for (double b : {0.1, 0.99, 2.0, 700.0}) {
    for (double e : {-2.0, -0.01, 0.5, 1.0, 3.0}) {
      EXPECT_NEAR(det::pow(b, e), std::pow(b, e), std::abs(std::pow(b, e)) * 1e-11)
          << b << "^" << e;
    }
  }
}

TEST(Env, IntParsesAndFallsBack) {
  ::setenv("DART_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("DART_TEST_INT", 7), 42);
  ::setenv("DART_TEST_INT", "notanint", 1);
  EXPECT_EQ(env_int("DART_TEST_INT", 7), 7);
  ::unsetenv("DART_TEST_INT");
  EXPECT_EQ(env_int("DART_TEST_INT", 7), 7);
}

TEST(Env, DoubleParses) {
  ::setenv("DART_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("DART_TEST_DBL", 1.0), 2.5);
  ::unsetenv("DART_TEST_DBL");
}

TEST(Env, ListSplitsOnComma) {
  ::setenv("DART_TEST_LIST", "a,b,,c", 1);
  const auto items = env_list("DART_TEST_LIST");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "a");
  EXPECT_EQ(items[2], "c");
  ::unsetenv("DART_TEST_LIST");
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt_bytes(864400.0), "864.4K");
  EXPECT_EQ(TablePrinter::fmt_bytes(3.75e6), "3.75M");
  EXPECT_EQ(TablePrinter::fmt_count(98.3e6), "98.3M");
  EXPECT_EQ(TablePrinter::fmt_pct(0.376), "37.6%");
}

TEST(TablePrinter, WritesCsv) {
  TablePrinter t("test");
  t.set_header({"a", "b"});
  t.add_row({"1", "two,with comma"});
  const std::string path = "/tmp/dart_test_table.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"two,with comma\"");
}

TEST(PinCurrentThread, PinsOnLinuxAndKeepsWorking) {
  // Core indices wrap modulo hardware concurrency, so any index is valid.
  const bool pinned = pin_current_thread(0);
  const bool pinned_wrapped = pin_current_thread(1u << 20);
#if defined(__linux__)
  EXPECT_TRUE(pinned);
  EXPECT_TRUE(pinned_wrapped);
#else
  EXPECT_FALSE(pinned);
  EXPECT_FALSE(pinned_wrapped);
#endif
  // The thread still runs after (re)pinning.
  std::atomic<int> x{0};
  ++x;
  EXPECT_EQ(x.load(), 1);
}

}  // namespace
}  // namespace dart::common
