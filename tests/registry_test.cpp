// Tests for the prefetcher registry / spec-string API and the
// ExperimentRunner grid harness (DESIGN.md §4).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/configs.hpp"
#include "core/experiment.hpp"
#include "sim/registry.hpp"

namespace dart {
namespace {

// ----------------------------------------------------------- spec parsing

TEST(PrefetcherSpec, ParsesNameAndParams) {
  auto spec = sim::PrefetcherSpec::parse("stride:table=256,degree=4");
  EXPECT_EQ(spec.name(), "stride");
  EXPECT_EQ(spec.get_uint("table", 0), 256u);
  EXPECT_EQ(spec.get_uint("degree", 0), 4u);
  EXPECT_TRUE(spec.unused_keys().empty());
}

TEST(PrefetcherSpec, DefaultsFlagsAndCase) {
  auto spec = sim::PrefetcherSpec::parse("TransFetch: Ideal , Threshold=0.6");
  EXPECT_EQ(spec.name(), "transfetch");  // names are case-insensitive
  EXPECT_TRUE(spec.get_flag("ideal"));   // bare token = boolean flag
  EXPECT_DOUBLE_EQ(spec.get_double("threshold", 0.5), 0.6);
  EXPECT_EQ(spec.get_uint("latency", 4500), 4500u);  // absent -> fallback
  EXPECT_FALSE(spec.get_flag("missing", false));
}

TEST(PrefetcherSpec, CanonicalRoundTrips) {
  auto spec = sim::PrefetcherSpec::parse("dart:variant=l,threshold=0.6,degree=32");
  const std::string canonical = spec.canonical();
  auto reparsed = sim::PrefetcherSpec::parse(canonical);
  EXPECT_EQ(reparsed.name(), spec.name());
  EXPECT_EQ(reparsed.canonical(), canonical);
  EXPECT_EQ(reparsed.get_string("variant", ""), "l");
  EXPECT_EQ(reparsed.get_uint("degree", 0), 32u);
}

TEST(PrefetcherSpec, RejectsMalformedValues) {
  auto spec = sim::PrefetcherSpec::parse("stride:table=abc");
  EXPECT_THROW(spec.get_uint("table", 0), std::invalid_argument);
  auto negative = sim::PrefetcherSpec::parse("nextline:degree=-1");
  EXPECT_THROW(negative.get_uint("degree", 0), std::invalid_argument);
  EXPECT_THROW(sim::PrefetcherSpec::parse(":degree=2"), std::invalid_argument);
  EXPECT_THROW(sim::PrefetcherSpec::parse("stride:=2"), std::invalid_argument);
}

TEST(PrefetcherSpec, TracksUnusedKeys) {
  auto spec = sim::PrefetcherSpec::parse("stride:table=64,bogus=1");
  spec.get_uint("table", 0);
  const auto unused = spec.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "bogus");
}

// -------------------------------------------------------------- registry

TEST(PrefetcherRegistry, UnknownNameListsKnownPrefetchers) {
  try {
    sim::make_prefetcher("nosuchprefetcher");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nosuchprefetcher"), std::string::npos);
    EXPECT_NE(msg.find("stride"), std::string::npos);
    EXPECT_NE(msg.find("dart"), std::string::npos);
  }
}

TEST(PrefetcherRegistry, UnknownParameterIsRejected) {
  try {
    sim::make_prefetcher("stride:bogus=7");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(PrefetcherRegistry, BuildsParameterizedRuleBasedPrefetchers) {
  auto nextline = sim::make_prefetcher("nextline:degree=4");
  EXPECT_EQ(nextline->name(), "NextLine");
  auto stride = sim::make_prefetcher("stride:table=64,degree=4");
  EXPECT_EQ(stride->name(), "Stride");
  EXPECT_GT(stride->storage_bytes(), 0u);
  auto bo = sim::make_prefetcher("BO:latency=90,degree=2");
  EXPECT_EQ(bo->prediction_latency(), 90u);
  auto isb = sim::make_prefetcher("isb:granularity=128");
  EXPECT_EQ(isb->name(), "ISB");
  // label= renames a prefetcher for sweeps over one type.
  auto labeled = sim::make_prefetcher("stride:table=1024,label=Stride-1K");
  EXPECT_EQ(labeled->name(), "Stride-1K");
}

TEST(PrefetcherRegistry, ModelBackedSpecsRequireContext) {
  EXPECT_THROW(sim::make_prefetcher("transfetch"), std::runtime_error);
  EXPECT_THROW(sim::make_prefetcher("voyager:ideal"), std::runtime_error);
  EXPECT_THROW(sim::make_prefetcher("dart:variant=s"), std::runtime_error);
}

TEST(PrefetcherRegistry, KnowsAllLegacyNames) {
  const auto& registry = sim::PrefetcherRegistry::instance();
  for (const char* name :
       {"NextLine", "Stride", "BO", "ISB", "TransFetch", "TransFetch-I", "Voyager",
        "Voyager-I", "DART-S", "DART", "DART-L"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_NO_THROW(registry.validate(name)) << name;
  }
}

TEST(SplitSpecList, HandlesLegacyAndSpecLists) {
  const auto legacy = sim::split_spec_list("BO,ISB,DART");
  ASSERT_EQ(legacy.size(), 3u);
  EXPECT_EQ(legacy[1], "ISB");
  const auto specs = sim::split_spec_list("stride:table=64,degree=2; dart:variant=l");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0], "stride:table=64,degree=2");
  EXPECT_EQ(specs[1], "dart:variant=l");
  // A single parameterized spec without separators stays whole.
  const auto single = sim::split_spec_list("stride:table=64,degree=2");
  ASSERT_EQ(single.size(), 1u);
}

// ------------------------------------------------------ experiment runner

core::PipelineOptions smoke_options() {
  core::PipelineOptions o = core::PipelineOptions::bench_defaults();
  o.raw_accesses = 60000;
  o.prep.max_samples = 400;
  o.teacher_arch.layers = 1;
  o.teacher_arch.dim = 16;
  o.teacher_arch.heads = 2;
  o.teacher_arch.ffn_dim = 32;
  // Zero epochs: models stay untrained — construction/scheduling is under
  // test here, not predictive quality.
  o.teacher_train.epochs = 0;
  o.student_train.epochs = 0;
  o.tab.tables = tabular::TableConfig::uniform(8, 1);
  o.tab.max_train_samples = 100;
  return o;
}

TEST(ExperimentRunner, ConstructsEveryBuiltinPrefetcher) {
  core::ExperimentSpec spec;
  spec.pipeline = smoke_options();
  spec.apps = {trace::App::kLibquantum};
  spec.prefetchers = {"NextLine",   "Stride",    "BO",     "ISB",  "TransFetch",
                      "TransFetch-I", "Voyager", "Voyager-I", "DART-S", "DART", "DART-L"};
  spec.nn_trigger_sample = 64;  // keep untrained NN inference cheap
  const core::ExperimentResult result = core::ExperimentRunner(spec).run();
  ASSERT_EQ(result.cells.size(), spec.prefetchers.size());
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    // Display names match the legacy table labels, cells are in spec order.
    EXPECT_EQ(result.cells[i].prefetcher, spec.prefetchers[i]);
    EXPECT_EQ(result.cells[i].spec, spec.prefetchers[i]);
    EXPECT_GT(result.cells[i].baseline_ipc, 0.0);
    EXPECT_GT(result.cells[i].stats.cycles, 0u);
  }
  // The "-I" ideals are the zero-latency variants (Table IX).
  EXPECT_EQ(result.find("TransFetch-I", "462.libquantum")->latency_cycles, 0u);
  EXPECT_EQ(result.find("Voyager", "462.libquantum")->latency_cycles,
            core::kVoyagerLatencyCycles);
  EXPECT_GT(result.find("DART", "462.libquantum")->storage_bytes, 0u);
}

TEST(ExperimentRunner, DisambiguatesCollidingDisplayNames) {
  core::ExperimentSpec spec;
  spec.pipeline = smoke_options();
  spec.apps = {trace::App::kLibquantum};
  spec.prefetchers = {"stride:table=64", "stride:table=1024", "nextline"};
  spec.parallel = false;
  const core::ExperimentResult result = core::ExperimentRunner(spec).run();
  // Both stride configs must stay distinct rows (fall back to spec text);
  // the unambiguous prefetcher keeps its display name.
  const auto names = result.prefetchers();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "stride:table=64");
  EXPECT_EQ(names[1], "stride:table=1024");
  EXPECT_EQ(names[2], "NextLine");
}

TEST(ExperimentRunner, RejectsUnknownSpecBeforeTraining) {
  core::ExperimentSpec spec;
  spec.pipeline = smoke_options();
  spec.apps = {trace::App::kLibquantum};
  spec.prefetchers = {"BO", "nosuch:param=1"};
  EXPECT_THROW(core::ExperimentRunner(spec).run(), std::invalid_argument);
}

TEST(ExperimentResult, CsvAndJsonRoundTrip) {
  core::ExperimentSpec spec;
  spec.pipeline = smoke_options();
  spec.apps = {trace::App::kLibquantum};
  spec.prefetchers = {"NextLine", "stride:table=64,degree=4"};
  spec.parallel = false;
  const core::ExperimentResult result = core::ExperimentRunner(spec).run();

  const std::string csv = "registry_test_cells.csv";
  const std::string tag = "#tag registry-test";
  ASSERT_TRUE(result.write_csv(csv, tag));
  core::ExperimentResult loaded;
  EXPECT_FALSE(core::ExperimentResult::read_csv(csv, "#tag other", &loaded));
  ASSERT_TRUE(core::ExperimentResult::read_csv(csv, tag, &loaded));
  ASSERT_EQ(loaded.cells.size(), result.cells.size());
  // The comma-bearing spec string survives CSV quoting.
  EXPECT_EQ(loaded.cells[1].spec, "stride:table=64,degree=4");
  EXPECT_EQ(loaded.cells[1].prefetcher, "Stride");
  EXPECT_EQ(loaded.cells[1].stats.cycles, result.cells[1].stats.cycles);
  EXPECT_NEAR(loaded.cells[0].baseline_ipc, result.cells[0].baseline_ipc, 1e-9);

  const std::string json = "registry_test_cells.json";
  ASSERT_TRUE(result.write_json(json));
  std::FILE* f = std::fopen(json.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 16, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  EXPECT_NE(content.find("\"prefetcher\": \"Stride\""), std::string::npos);
  EXPECT_NE(content.find("\"baseline_ipc\""), std::string::npos);
  std::remove(csv.c_str());
  std::remove(json.c_str());
}

}  // namespace
}  // namespace dart
