// Tests for the versioned `.dart` artifact store (src/io, DESIGN.md §7):
// bit-exact round trips of the full predictor bundle (exact and hash-tree
// encoders) and of the fused kernel, clean errors on truncated / corrupted /
// version-mismatched files, stale-configuration rejection, and the
// train-once ExperimentRunner artifact cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "io/artifact.hpp"
#include "nn/transformer.hpp"
#include "pq/encoder.hpp"
#include "tabular/fused_kernel.hpp"
#include "tabular/tabularizer.hpp"

namespace dart {
namespace {

nn::ModelConfig tiny_arch() {
  nn::ModelConfig a;
  a.seq_len = 4;
  a.addr_dim = 4;
  a.pc_dim = 4;
  a.dim = 8;
  a.ffn_dim = 16;
  a.out_dim = 12;
  a.heads = 2;
  a.layers = 1;
  return a;
}

/// A small but complete table hierarchy: tabularize an (untrained) model on
/// random activations — the artifact store only cares about the tables.
tabular::TabularPredictor tiny_predictor(pq::EncoderKind encoder) {
  nn::AddressPredictor model(tiny_arch(), 7);
  nn::Tensor addr = nn::Tensor::randn({48, 4, 4}, 0.6f, 11);
  nn::Tensor pc = nn::Tensor::randn({48, 4, 4}, 0.6f, 12);
  tabular::TabularizeOptions options;
  options.tables = tabular::TableConfig::uniform(8, 2);
  options.fine_tune = false;
  options.encoder = encoder;
  options.kmeans_iters = 4;
  options.max_train_samples = 48;
  return tabular::tabularize(model, addr, pc, options);
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_bit_exact(const tabular::TabularPredictor& a, const tabular::TabularPredictor& b) {
  nn::Tensor addr = nn::Tensor::randn({16, 4, 4}, 0.8f, 21);
  nn::Tensor pc = nn::Tensor::randn({16, 4, 4}, 0.8f, 22);
  nn::Tensor ya = a.forward(addr, pc);
  nn::Tensor yb = b.forward(addr, pc);
  ASSERT_EQ(ya.numel(), yb.numel());
  EXPECT_EQ(0, std::memcmp(ya.data(), yb.data(), ya.numel() * sizeof(float)));
}

TEST(Artifact, RoundTripsPredictorBitExactWithExactEncoder) {
  const std::string path = temp_path("dart_artifact_exact.dart");
  tabular::TabularPredictor original = tiny_predictor(pq::EncoderKind::kExact);
  original.save(path);
  tabular::TabularPredictor reloaded = tabular::TabularPredictor::load(path);
  EXPECT_EQ(original.storage_bytes(), reloaded.storage_bytes());
  expect_bit_exact(original, reloaded);
  std::remove(path.c_str());
}

TEST(Artifact, RoundTripsPredictorBitExactWithHashTreeEncoder) {
  const std::string path = temp_path("dart_artifact_tree.dart");
  tabular::TabularPredictor original = tiny_predictor(pq::EncoderKind::kHashTree);
  original.save(path);
  tabular::TabularPredictor reloaded = tabular::TabularPredictor::load(path);
  expect_bit_exact(original, reloaded);
  std::remove(path.c_str());
}

TEST(Artifact, ContentHashIsDeterministic) {
  const std::string p1 = temp_path("dart_artifact_h1.dart");
  const std::string p2 = temp_path("dart_artifact_h2.dart");
  tabular::TabularPredictor predictor = tiny_predictor(pq::EncoderKind::kExact);
  io::ArtifactMeta meta;
  meta.producer = "test";
  const std::uint64_t h1 = io::save_predictor_artifact(p1, predictor, meta);
  const std::uint64_t h2 = io::save_predictor_artifact(p2, predictor, meta);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, io::read_artifact_info(p1).content_hash);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Artifact, InfoCarriesMetadata) {
  const std::string path = temp_path("dart_artifact_meta.dart");
  tabular::TabularPredictor predictor = tiny_predictor(pq::EncoderKind::kExact);
  io::ArtifactMeta meta;
  meta.producer = "test";
  meta.app = "605.mcf";
  meta.display_name = "DART-TEST";
  meta.config_key = "cafe";
  meta.latency_cycles = 91;
  meta.prep.segment_bits = 5;
  io::save_predictor_artifact(path, predictor, meta);
  const io::ArtifactInfo info = io::read_artifact_info(path);
  EXPECT_EQ(info.format_version, io::kFormatVersion);
  EXPECT_EQ(info.meta.app, "605.mcf");
  EXPECT_EQ(info.meta.display_name, "DART-TEST");
  EXPECT_EQ(info.meta.config_key, "cafe");
  EXPECT_EQ(info.meta.latency_cycles, 91u);
  EXPECT_EQ(info.meta.prep.segment_bits, 5u);
  EXPECT_EQ(info.arch.dim, tiny_arch().dim);
  std::remove(path.c_str());
}

TEST(Artifact, RoundTripsFusedKernelBitExact) {
  for (pq::EncoderKind kind : {pq::EncoderKind::kExact, pq::EncoderKind::kHashTree}) {
    const std::string path = temp_path("dart_artifact_fused.dart");
    nn::Tensor rows = nn::Tensor::randn({64, 6}, 1.0f, 31);
    tabular::FusedKernelConfig config;
    config.num_prototypes = 16;
    config.encoder = kind;
    auto stack = [](const nn::Tensor& x) {
      nn::Tensor y({x.dim(0), 3});
      for (std::size_t i = 0; i < x.dim(0); ++i) {
        for (std::size_t j = 0; j < 3; ++j) y.at(i, j) = x.at(i, j) * 2.0f + 1.0f;
      }
      return y;
    };
    tabular::FusedKernel original(6, 3, stack, rows, config);
    original.save(path);
    tabular::FusedKernel reloaded = tabular::FusedKernel::load(path);
    nn::Tensor probe = nn::Tensor::randn({32, 6}, 1.0f, 32);
    nn::Tensor ya = original.query(probe);
    nn::Tensor yb = reloaded.query(probe);
    ASSERT_EQ(ya.numel(), yb.numel());
    EXPECT_EQ(0, std::memcmp(ya.data(), yb.data(), ya.numel() * sizeof(float)));
    std::remove(path.c_str());
  }
}

TEST(Artifact, MissingFileIsACleanErrorNamingThePath) {
  const std::string path = temp_path("dart_no_such_file.dart");
  try {
    tabular::TabularPredictor::load(path);
    FAIL() << "missing file not detected";
  } catch (const io::ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error message does not name the failing file: " << e.what();
  }
}

// The quarantine-log contract (DESIGN.md §11): a rejected artifact's error
// message pins the damage — file path, chunk tag, and file byte offset —
// so an operator can tell a bad byte from a bad deploy. The corruption here
// is checksum-consistent (the CSUM trailer is recomputed over the damaged
// image), so only the chunk parser can object, exercising the in-chunk
// context layering rather than the checksum fast-fail.
TEST(Artifact, ParseErrorsCarryPathChunkTagAndByteOffset) {
  const std::string path = temp_path("dart_artifact_context.dart");
  tiny_predictor(pq::EncoderKind::kExact).save(path);
  std::vector<char> bytes = slurp(path);

  const char tag[4] = {'T', 'P', 'R', 'D'};
  std::size_t tag_at = std::string::npos;
  for (std::size_t i = 16; i + 12 < bytes.size(); ++i) {
    if (std::memcmp(bytes.data() + i, tag, 4) == 0) {
      tag_at = i;
      break;
    }
  }
  ASSERT_NE(tag_at, std::string::npos) << "no TPRD chunk in the saved artifact";
  // Saturate the leading payload fields (element counts / dims): whatever
  // they encode becomes absurd and the parser must reject it.
  for (std::size_t i = 0; i < 8; ++i) bytes[tag_at + 12 + i] = static_cast<char>(0xFF);
  // Recompute the trailing CSUM chunk ([tag 4][len u64 = 8][hash u64]) so
  // the checksum passes and the parse layer is what fails.
  ASSERT_GE(bytes.size(), 20u);
  const std::size_t csum_tag = bytes.size() - 20;
  ASSERT_EQ(std::memcmp(bytes.data() + csum_tag, "CSUM", 4), 0);
  const std::uint64_t hash = io::fnv1a64(bytes.data(), csum_tag);
  std::memcpy(bytes.data() + bytes.size() - 8, &hash, 8);
  spit(path, bytes);

  try {
    tabular::TabularPredictor::load(path);
    FAIL() << "corrupted TPRD payload parsed without error";
  } catch (const io::ArtifactError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << "no file path in: " << msg;
    EXPECT_NE(msg.find("chunk 'TPRD'"), std::string::npos) << "no chunk tag in: " << msg;
    EXPECT_NE(msg.find("byte offset"), std::string::npos) << "no byte offset in: " << msg;
  }
  std::remove(path.c_str());
}

TEST(Artifact, RejectsBadMagicAndForeignFiles) {
  const std::string path = temp_path("dart_artifact_notdart.dart");
  spit(path, {'n', 'o', 't', ' ', 'a', 'n', ' ', 'a', 'r', 't', 'i', 'f', 'a', 'c', 't'});
  EXPECT_THROW(tabular::TabularPredictor::load(path), io::ArtifactError);
  spit(path, {});
  EXPECT_THROW(tabular::TabularPredictor::load(path), io::ArtifactError);
  std::remove(path.c_str());
}

TEST(Artifact, RejectsVersionMismatch) {
  const std::string path = temp_path("dart_artifact_version.dart");
  tiny_predictor(pq::EncoderKind::kExact).save(path);
  std::vector<char> bytes = slurp(path);
  bytes[8] = 99;  // format version field (little-endian u32 at offset 8)
  spit(path, bytes);
  try {
    tabular::TabularPredictor::load(path);
    FAIL() << "version mismatch not detected";
  } catch (const io::ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Artifact, DetectsSingleByteCorruptionAnywhere) {
  const std::string path = temp_path("dart_artifact_corrupt.dart");
  tiny_predictor(pq::EncoderKind::kHashTree).save(path);
  const std::vector<char> clean = slurp(path);
  ASSERT_GT(clean.size(), 64u);
  // Flip one byte at a spread of offsets across the file (headers, tables,
  // encoders, checksum): every flip must yield ArtifactError, never UB or
  // a silently different model.
  for (std::size_t pos = 16; pos < clean.size(); pos += clean.size() / 23 + 1) {
    std::vector<char> bytes = clean;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5A);
    spit(path, bytes);
    EXPECT_THROW(tabular::TabularPredictor::load(path), io::ArtifactError)
        << "corruption at byte " << pos << " was not detected";
  }
  std::remove(path.c_str());
}

TEST(Artifact, TruncationAtAnyPointIsACleanError) {
  const std::string path = temp_path("dart_artifact_trunc.dart");
  tiny_predictor(pq::EncoderKind::kExact).save(path);
  const std::vector<char> clean = slurp(path);
  for (std::size_t keep : {std::size_t{0}, std::size_t{4}, std::size_t{15}, std::size_t{16},
                           std::size_t{40}, clean.size() / 4, clean.size() / 2,
                           clean.size() - 9, clean.size() - 1}) {
    spit(path, std::vector<char>(clean.begin(), clean.begin() + keep));
    EXPECT_THROW(tabular::TabularPredictor::load(path), io::ArtifactError)
        << "truncation to " << keep << " bytes was not detected";
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------- atomic save (§13)
// Artifact saves go through write-temp + fsync + atomic rename: a crash
// mid-save can leave a partial `<path>.tmp` behind, but never a torn file
// under the final name. These tests pin the three observable halves of that
// contract: no temp residue after a clean save, stale temp files are inert,
// and a torn final file (simulated) is rejected with path context.

TEST(Artifact, SaveLeavesNoTempFileBehind) {
  const std::string path = temp_path("dart_artifact_atomic.dart");
  tiny_predictor(pq::EncoderKind::kExact).save(path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "save must rename its temp file away, not leave it beside the artifact";
  EXPECT_NO_THROW(tabular::TabularPredictor::load(path));
  std::remove(path.c_str());
}

TEST(Artifact, StalePartialTempFileIsIgnoredAndReplacedBySave) {
  const std::string path = temp_path("dart_artifact_stale_tmp.dart");
  tabular::TabularPredictor original = tiny_predictor(pq::EncoderKind::kExact);
  original.save(path);
  // A crashed previous save left a garbage temp next to the artifact:
  // readers only ever open the final name, so the load is unaffected.
  spit(path + ".tmp", {'p', 'a', 'r', 't', 'i', 'a', 'l'});
  tabular::TabularPredictor reloaded = tabular::TabularPredictor::load(path);
  expect_bit_exact(original, reloaded);
  // The next save overwrites the stale temp and renames it away.
  original.save(path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_NO_THROW(tabular::TabularPredictor::load(path));
  std::remove(path.c_str());
}

TEST(Artifact, TornFinalFileIsRejectedWithPathAndTruncationContext) {
  // What a *non-atomic* writer would have left after a crash: the artifact
  // cut mid-chunk under its final name. The reader must reject it with an
  // error naming the file and the damage, never load a partial model.
  const std::string path = temp_path("dart_artifact_torn.dart");
  tiny_predictor(pq::EncoderKind::kExact).save(path);
  const std::vector<char> clean = slurp(path);
  spit(path, std::vector<char>(clean.begin(),
                               clean.begin() + static_cast<std::ptrdiff_t>(clean.size() / 2)));
  try {
    tabular::TabularPredictor::load(path);
    FAIL() << "torn artifact loaded without error";
  } catch (const io::ArtifactError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << "no file path in: " << msg;
    EXPECT_NE(msg.find("truncat"), std::string::npos)
        << "no truncation context in: " << msg;
  }
  std::remove(path.c_str());
}

TEST(Artifact, HashTreeRawConstructorValidatesTree) {
  using Node = pq::HashTreeEncoder::HotNode;
  // Valid 2-leaf tree: root splits dim 0, children are leaves 0/1.
  std::vector<Node> nodes(3);
  std::vector<std::int32_t> leaves = {-1, 0, 1};
  EXPECT_NO_THROW(pq::HashTreeEncoder(nodes, leaves, 2, 3));
  // Split dimension out of range.
  std::vector<Node> bad_dim = nodes;
  bad_dim[0].split_dim = 7;
  EXPECT_THROW(pq::HashTreeEncoder(bad_dim, leaves, 2, 3), std::invalid_argument);
  // Leaf id out of range.
  EXPECT_THROW(pq::HashTreeEncoder(nodes, {-1, 0, 9}, 2, 3), std::invalid_argument);
  // Reachable path that never terminates (all internal).
  EXPECT_THROW(pq::HashTreeEncoder(nodes, {-1, -1, -1}, 2, 3), std::invalid_argument);
  // Array sizes inconsistent with K.
  EXPECT_THROW(pq::HashTreeEncoder(nodes, leaves, 4, 3), std::invalid_argument);
}

TEST(ArtifactCache, RejectsStaleConfigKey) {
  const std::string dir = temp_path("dart_cache_stale");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/model.dart";
  core::TrainedDart trained;
  trained.predictor = tiny_predictor(pq::EncoderKind::kExact);
  trained.display_name = "DART-TEST";
  trained.latency_cycles = 50;
  trained.config_key = "expected-key";
  ASSERT_TRUE(core::save_dart_artifact(path, trace::App::kMcf, trained, "test"));
  EXPECT_TRUE(core::try_load_dart_artifact(path, "expected-key").has_value());
  EXPECT_FALSE(core::try_load_dart_artifact(path, "different-key").has_value());
  EXPECT_FALSE(core::try_load_dart_artifact(dir + "/absent.dart", "x").has_value());
  std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, ExperimentRunnerSkipsTrainingOnSecondSweep) {
  const std::string dir = temp_path("dart_cache_sweep");
  std::filesystem::remove_all(dir);

  core::ExperimentSpec spec;
  spec.apps = {trace::App::kLibquantum};
  spec.prefetchers = {"dart:variant=s"};
  spec.pipeline.raw_accesses = 30000;
  spec.pipeline.prep.max_samples = 400;
  spec.pipeline.teacher_train.epochs = 1;
  spec.pipeline.student_train.epochs = 1;
  spec.pipeline.tab.max_train_samples = 300;
  spec.pipeline.artifact_dir = dir;

  const core::ExperimentResult first = core::ExperimentRunner(spec).run();
  ASSERT_EQ(first.cells.size(), 1u);
  // The sweep persisted a .dart artifact plus NN checkpoints.
  std::size_t dart_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".dart") ++dart_files;
  }
  EXPECT_EQ(dart_files, 1u);

  // Second invocation must reload instead of retraining and reproduce the
  // cell exactly (same predictor tables => same simulation).
  const core::ExperimentResult second = core::ExperimentRunner(spec).run();
  ASSERT_EQ(second.cells.size(), 1u);
  EXPECT_EQ(first.cells[0].stats.cycles, second.cells[0].stats.cycles);
  EXPECT_EQ(first.cells[0].stats.pf_issued, second.cells[0].stats.pf_issued);
  EXPECT_EQ(first.cells[0].storage_bytes, second.cells[0].storage_bytes);
  EXPECT_DOUBLE_EQ(first.cells[0].ipc_improvement, second.cells[0].ipc_improvement);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dart
