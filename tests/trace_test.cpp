// Tests for the trace substrate: generators (Table IV shape properties),
// address segmentation, and delta-bitmap labeling (§VI-A).
#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "trace/preprocess.hpp"

namespace dart::trace {
namespace {

TEST(AppNames, RoundTrip) {
  for (App app : all_apps()) {
    EXPECT_EQ(app_from_name(app_name(app)), app);
  }
  EXPECT_EQ(app_from_name("bwaves"), App::kBwaves);
  EXPECT_EQ(app_from_name("605.mcf"), App::kMcf);
  EXPECT_THROW(app_from_name("no-such-app"), std::invalid_argument);
}

class GeneratorApps : public ::testing::TestWithParam<App> {};

TEST_P(GeneratorApps, ProducesRequestedLengthDeterministically) {
  const App app = GetParam();
  MemoryTrace a = generate(app, 5000, 42);
  MemoryTrace b = generate(app, 5000, 42);
  MemoryTrace c = generate(app, 5000, 43);
  ASSERT_EQ(a.size(), 5000u);
  ASSERT_EQ(b.size(), 5000u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].pc, b[i].pc);
  }
  bool diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i].addr != c[i].addr;
  EXPECT_TRUE(diff);
}

TEST_P(GeneratorApps, InstructionIdsStrictlyIncrease) {
  MemoryTrace t = generate(GetParam(), 2000, 7);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t[i].instr_id, t[i - 1].instr_id);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, GeneratorApps, ::testing::ValuesIn(all_apps()),
                         [](const ::testing::TestParamInfo<App>& info) {
                           std::string n = app_name(info.param);
                           for (auto& ch : n) {
                             if (ch == '.') ch = '_';
                           }
                           return n;
                         });

TEST(TraceStats, ComputedOnKnownSequence) {
  MemoryTrace t;
  // Blocks: 0, 1, 2, 0 -> deltas {1, 1, -2} -> 2 unique.
  for (std::uint64_t b : {0ULL, 1ULL, 2ULL, 0ULL}) {
    t.push_back({t.size() + 1, 0x400, b * 64, false});
  }
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.accesses, 4u);
  EXPECT_EQ(s.unique_blocks, 3u);
  EXPECT_EQ(s.unique_pages, 1u);
  EXPECT_EQ(s.unique_deltas, 2u);
}

TEST(TraceStats, Table4OrderingProperties) {
  // The qualitative relations the paper's analysis rests on (§VII-B).
  const std::size_t n = 60000;
  const auto mcf = compute_stats(generate(App::kMcf, n, 1));
  const auto lbm = compute_stats(generate(App::kLbm, n, 1));
  const auto libq = compute_stats(generate(App::kLibquantum, n, 1));
  const auto milc = compute_stats(generate(App::kMilc, n, 1));
  const auto leslie = compute_stats(generate(App::kLeslie3d, n, 1));
  const auto gcc = compute_stats(generate(App::kGcc, n, 1));

  // mcf's pointer chasing dominates everyone's delta count.
  EXPECT_GT(mcf.unique_deltas, 10u * gcc.unique_deltas);
  EXPECT_GT(mcf.unique_deltas, 100u * lbm.unique_deltas);
  // libquantum and lbm are near-regular: tiny delta sets.
  EXPECT_LT(libq.unique_deltas, 64u);
  EXPECT_LT(lbm.unique_deltas, 256u);
  // milc sweeps far more pages than leslie3d.
  EXPECT_GT(milc.unique_pages, 4u * leslie.unique_pages);
}

TEST(SegmentValue, SplitsBitsLsbFirstNormalized) {
  float out[3];
  // value = 0b000011_000010_000001 (segments of 6 bits).
  const std::uint64_t v = 1 | (2 << 6) | (3ULL << 12);
  segment_value(v, 3, 6, out);
  EXPECT_FLOAT_EQ(out[0], 1.0f / 63.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f / 63.0f);
  EXPECT_FLOAT_EQ(out[2], 3.0f / 63.0f);
}

TEST(SegmentValue, ValuesAlwaysInUnitInterval) {
  float out[8];
  segment_value(~0ULL, 8, 6, out);
  for (float v : out) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

class DeltaBits : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DeltaBits, RoundTripThroughBitmap) {
  const std::int64_t delta = GetParam();
  const int bit = delta_to_bit(delta, 128);
  if (delta == 0 || delta < -64 || delta >= 64) {
    EXPECT_EQ(bit, -1);
  } else {
    ASSERT_GE(bit, 0);
    EXPECT_EQ(bit_to_delta(static_cast<std::size_t>(bit), 128), delta);
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaBits,
                         ::testing::Values(-100, -64, -63, -1, 0, 1, 32, 63, 64, 100));

TEST(MakeDataset, LabelsEncodeFutureDeltas) {
  // Craft a block-stride-2 trace; every label must be exactly {+2,+4,...}.
  MemoryTrace t;
  for (std::uint64_t i = 0; i < 64; ++i) {
    t.push_back({i + 1, 0x400, i * 2 * 64, false});
  }
  PreprocessOptions opt;
  opt.history = 4;
  opt.addr_segments = 4;
  opt.pc_segments = 4;
  opt.bitmap_size = 32;
  opt.lookforward = 3;
  nn::Dataset ds = make_dataset(t, opt);
  ASSERT_GT(ds.size(), 0u);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = 0; j < opt.bitmap_size; ++j) {
      const std::int64_t delta = bit_to_delta(j, opt.bitmap_size);
      const bool expected = delta == 2 || delta == 4 || delta == 6;
      EXPECT_EQ(ds.labels.at(i, j) > 0.5f, expected) << "delta " << delta;
    }
  }
}

TEST(MakeDataset, ShapesAndMaxSamples) {
  MemoryTrace t = generate(App::kGcc, 4000, 3);
  PreprocessOptions opt;
  opt.history = 8;
  opt.max_samples = 100;
  nn::Dataset ds = make_dataset(t, opt);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.addr.dim(1), 8u);
  EXPECT_EQ(ds.addr.dim(2), opt.addr_segments);
  EXPECT_EQ(ds.labels.dim(1), opt.bitmap_size);
}

TEST(MakeDataset, RejectsTooShortTrace) {
  MemoryTrace t;
  for (std::uint64_t i = 0; i < 5; ++i) t.push_back({i + 1, 0, i * 64, false});
  PreprocessOptions opt;
  EXPECT_THROW(make_dataset(t, opt), std::invalid_argument);
}

TEST(MakeDataset, SequentialTraceGivesPlusOneLabels) {
  MemoryTrace t;
  for (std::uint64_t i = 0; i < 100; ++i) t.push_back({i + 1, 0x10, i * 64, false});
  PreprocessOptions opt;
  opt.history = 4;
  opt.lookforward = 1;
  opt.bitmap_size = 16;
  nn::Dataset ds = make_dataset(t, opt);
  const int expect_bit = delta_to_bit(1, 16);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(ds.labels.at(i, j) > 0.5f, static_cast<int>(j) == expect_bit);
    }
  }
}

}  // namespace
}  // namespace dart::trace
