// Integration tests for the prefetch-as-a-service engine (DESIGN.md §9):
// end-to-end correctness of multi-client serving vs the direct query path,
// ingress backpressure, model hot-swap (no request lost, none served by a
// torn artifact), stats plumbing, and the shares_mutable_model() audit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "nn/tensor.hpp"
#include "prefetch/nn_prefetchers.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "tabular/tabular_predictor.hpp"

namespace dart::serve {
namespace {

/// Tiny test geometry: big enough to exercise every kernel class, small
/// enough that reference forwards are instant.
nn::ModelConfig tiny_arch() {
  nn::ModelConfig a;
  a.layers = 1;
  a.dim = 8;
  a.heads = 2;
  a.seq_len = 4;
  a.ffn_dim = 16;
  a.addr_dim = 4;
  a.pc_dim = 4;
  a.out_dim = 16;
  return a;
}

/// Deterministic tiny predictor; different seeds yield different tables,
/// which is how the hot-swap test tells model A's answers from model B's.
std::shared_ptr<const tabular::TabularPredictor> tiny_predictor(std::uint64_t seed,
                                                                const nn::ModelConfig& arch) {
  const std::size_t m = 64;  // training rows for prototype learning
  auto next = [&seed] { return seed += 17; };

  tabular::KernelConfig lin;
  lin.num_prototypes = 16;
  lin.num_subspaces = 2;
  lin.kmeans_iters = 2;

  auto make_linear = [&](std::size_t dout, std::size_t din) {
    nn::Tensor w = nn::Tensor::randn({dout, din}, 0.5f, next());
    nn::Tensor b = nn::Tensor::randn({dout}, 0.2f, next());
    nn::Tensor rows = nn::Tensor::randn({m, din}, 1.0f, next());
    tabular::KernelConfig cfg = lin;
    cfg.seed = next();
    return std::make_unique<tabular::LinearKernel>(w, b, rows, cfg);
  };

  auto tab = std::make_shared<tabular::TabularPredictor>(arch);
  tab->addr_kernel = make_linear(arch.dim, arch.addr_dim);
  tab->pc_kernel = make_linear(arch.dim, arch.pc_dim);
  tab->pos_encoding = nn::Tensor::randn({arch.seq_len, arch.dim}, 0.1f, next());
  const std::size_t dh = arch.dim / arch.heads;
  for (std::size_t l = 0; l < arch.layers; ++l) {
    tabular::TabularEncoderLayer layer;
    layer.qkv = make_linear(3 * arch.dim, arch.dim);
    for (std::size_t h = 0; h < arch.heads; ++h) {
      nn::Tensor q = nn::Tensor::randn({m, arch.seq_len, dh}, 1.0f, next());
      nn::Tensor k = nn::Tensor::randn({m, arch.seq_len, dh}, 1.0f, next());
      nn::Tensor v = nn::Tensor::randn({m, arch.seq_len, dh}, 1.0f, next());
      tabular::AttentionKernelConfig acfg;
      acfg.num_prototypes = 16;
      acfg.ck = 2;
      acfg.ct = 2;
      acfg.kmeans_iters = 2;
      acfg.seed = next();
      layer.heads.push_back(std::make_unique<tabular::AttentionKernel>(q, k, v, acfg));
    }
    layer.out_proj = make_linear(arch.dim, arch.dim);
    layer.ln1.gamma = nn::Tensor::randn({arch.dim}, 0.1f, next());
    layer.ln1.beta = nn::Tensor::randn({arch.dim}, 0.1f, next());
    for (std::size_t j = 0; j < arch.dim; ++j) layer.ln1.gamma[j] += 1.0f;
    layer.ffn_hidden = make_linear(arch.ffn_dim, arch.dim);
    layer.ffn_out = make_linear(arch.dim, arch.ffn_dim);
    layer.ln2.gamma = nn::Tensor::randn({arch.dim}, 0.1f, next());
    layer.ln2.beta = nn::Tensor::randn({arch.dim}, 0.1f, next());
    for (std::size_t j = 0; j < arch.dim; ++j) layer.ln2.gamma[j] += 1.0f;
    tab->layers.push_back(std::move(layer));
  }
  tab->final_ln.gamma = nn::Tensor::randn({arch.dim}, 0.1f, next());
  tab->final_ln.beta = nn::Tensor::randn({arch.dim}, 0.1f, next());
  for (std::size_t j = 0; j < arch.dim; ++j) tab->final_ln.gamma[j] += 1.0f;
  tab->head_kernel = make_linear(arch.out_dim, arch.dim);
  return tab;
}

/// A deterministic bank of feature inputs: `count` distinct [T, S] rows.
struct InputBank {
  std::size_t count, addr_len, pc_len;
  nn::Tensor addr, pc;

  InputBank(const nn::ModelConfig& arch, std::size_t n)
      : count(n),
        addr_len(arch.seq_len * arch.addr_dim),
        pc_len(arch.seq_len * arch.pc_dim),
        addr(nn::Tensor::randn({n, arch.seq_len, arch.addr_dim}, 1.0f, 777)),
        pc(nn::Tensor::randn({n, arch.seq_len, arch.pc_dim}, 1.0f, 778)) {}

  const float* addr_of(std::size_t i) const { return addr.data() + i * addr_len; }
  const float* pc_of(std::size_t i) const { return pc.data() + i * pc_len; }
};

/// Reference answers: model(inputs[i]) via the direct single-sample path.
std::vector<std::vector<float>> reference_probs(const tabular::TabularPredictor& model,
                                                const InputBank& bank, std::size_t out_dim) {
  tabular::InferenceWorkspace ws;
  std::vector<std::vector<float>> ref(bank.count, std::vector<float>(out_dim));
  for (std::size_t i = 0; i < bank.count; ++i) {
    model.forward_sample_into(bank.addr_of(i), bank.pc_of(i), ref[i].data(), ws);
  }
  return ref;
}

ServeConfig tiny_config(std::size_t shards) {
  ServeConfig c;
  c.shards = shards;
  c.queue_capacity = 64;
  c.completion_capacity = 64;
  c.batch_cap = 8;
  c.linger_us = 20;
  return c;
}

TEST(PrefetchServer, ServedProbsMatchDirectForwardBitExact) {
  const nn::ModelConfig arch = tiny_arch();
  const auto model = tiny_predictor(1, arch);
  const InputBank bank(arch, 32);
  const auto ref = reference_probs(*model, bank, arch.out_dim);

  PrefetchServer server(model, tiny_config(2));
  constexpr std::size_t kClients = 3, kPerClient = 400;
  std::atomic<std::uint64_t> mismatches{0}, completed{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto session = server.connect();
      std::vector<float> probs(arch.out_dim);
      Response r;
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t input = (c * kPerClient + i) % bank.count;
        std::uint64_t id = 0;
        while ((id = session->submit(bank.addr_of(input), bank.pc_of(input), probs.data())) == 0) {
          std::this_thread::yield();
        }
        while (!session->poll(r)) std::this_thread::yield();  // window of 1
        ++completed;
        if (r.trace_id != id ||
            std::memcmp(probs.data(), ref[input].data(), arch.out_dim * sizeof(float)) != 0) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(completed.load(), kClients * kPerClient);
  EXPECT_EQ(mismatches.load(), 0u);

  const ServeStatsSummary stats = server.stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.avg_batch, 0.0);
  EXPECT_LE(stats.p50_ns, stats.p99_ns);
  EXPECT_EQ(stats.shards.size(), 2u);
}

TEST(PrefetchServer, SessionsRoundRobinAcrossShards) {
  const auto model = tiny_predictor(1, tiny_arch());
  PrefetchServer server(model, tiny_config(2));
  auto s0 = server.connect();
  auto s1 = server.connect();
  auto s2 = server.connect();
  EXPECT_EQ(s0->shard(), 0u);
  EXPECT_EQ(s1->shard(), 1u);
  EXPECT_EQ(s2->shard(), 0u);
}

TEST(PrefetchServer, SubmitReturnsZeroOnIngressBackpressure) {
  const nn::ModelConfig arch = tiny_arch();
  const auto model = tiny_predictor(1, arch);
  ServeConfig config = tiny_config(1);
  config.queue_capacity = 2;  // rounds to a 2-slot ingress ring
  config.completion_capacity = 4096;
  PrefetchServer server(model, config);
  auto session = server.connect();

  const InputBank bank(arch, 1);
  std::vector<std::vector<float>> probs(4096, std::vector<float>(arch.out_dim));
  std::uint64_t rejected = 0, accepted = 0;
  Response r;
  // Flood the 2-slot ring without yielding; the shard thread can't drain
  // fast enough forever, so submit must reject (return 0) at least once.
  for (std::size_t i = 0; i < probs.size(); ++i) {
    while (session->submit(bank.addr_of(0), bank.pc_of(0), probs[i].data()) == 0) {
      ++rejected;
      if (rejected > 1) break;  // proven; stop flooding
    }
    ++accepted;
    if (rejected > 1) break;
  }
  while (session->in_flight() > 0) {
    if (!session->poll(r)) std::this_thread::yield();
  }
  EXPECT_GT(rejected, 0u) << "a 2-slot ring absorbed " << accepted << " unanswered submissions";
}

TEST(PrefetchServer, HotSwapLosesNothingAndNeverServesATornArtifact) {
  const nn::ModelConfig arch = tiny_arch();
  const auto model_a = tiny_predictor(1, arch);
  const auto model_b = tiny_predictor(5000, arch);
  const InputBank bank(arch, 16);
  const auto ref_a = reference_probs(*model_a, bank, arch.out_dim);
  const auto ref_b = reference_probs(*model_b, bank, arch.out_dim);
  // Distinct tables must give distinct answers, or the test proves nothing.
  ASSERT_NE(std::memcmp(ref_a[0].data(), ref_b[0].data(), arch.out_dim * sizeof(float)), 0);

  PrefetchServer server(model_a, tiny_config(1));

  // epoch -> which model the server published under it (0 = A, 1 = B).
  std::mutex epochs_mu;
  std::map<std::uint64_t, int> epoch_model{{server.epoch(), 0}};

  constexpr std::size_t kClients = 2, kPerClient = 3000;
  std::atomic<std::uint64_t> completed{0}, torn{0}, wrong_epoch_probs{0};
  std::set<std::uint64_t> epochs_seen;
  std::mutex seen_mu;

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto session = server.connect();
      std::vector<float> probs(arch.out_dim);
      Response r;
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t input = (c + i) % bank.count;
        while (session->submit(bank.addr_of(input), bank.pc_of(input), probs.data()) == 0) {
          std::this_thread::yield();
        }
        while (!session->poll(r)) std::this_thread::yield();
        ++completed;
        const bool is_a =
            std::memcmp(probs.data(), ref_a[input].data(), arch.out_dim * sizeof(float)) == 0;
        const bool is_b =
            std::memcmp(probs.data(), ref_b[input].data(), arch.out_dim * sizeof(float)) == 0;
        if (!is_a && !is_b) {
          ++torn;  // matches neither artifact: a torn or corrupted serve
        } else {
          int expected;
          {
            std::lock_guard<std::mutex> lock(epochs_mu);
            ASSERT_TRUE(epoch_model.count(r.epoch)) << "response under unpublished epoch";
            expected = epoch_model[r.epoch];
          }
          if ((expected == 0 && !is_a) || (expected == 1 && !is_b)) ++wrong_epoch_probs;
        }
        {
          std::lock_guard<std::mutex> lock(seen_mu);
          epochs_seen.insert(r.epoch);
        }
      }
    });
  }

  // Flip the model repeatedly mid-load, spaced by completion progress so
  // every epoch actually serves traffic.
  const std::uint64_t total = kClients * kPerClient;
  for (int flip = 1; flip <= 4; ++flip) {
    const std::uint64_t threshold = total * flip / 5;
    while (completed.load() < threshold) std::this_thread::yield();
    const auto& next = (flip % 2 == 1) ? model_b : model_a;
    std::lock_guard<std::mutex> lock(epochs_mu);
    const std::uint64_t e = server.swap_model(next);
    epoch_model[e] = flip % 2;
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(completed.load(), total);       // nothing lost across 4 swaps
  EXPECT_EQ(torn.load(), 0u);               // every answer is exactly A or B
  EXPECT_EQ(wrong_epoch_probs.load(), 0u);  // and matches its stamped epoch
  EXPECT_GE(epochs_seen.size(), 2u) << "load finished before any swap took effect";

  std::uint64_t reloads = 0;
  for (const auto& s : server.stats().shards) reloads += s.reloads;
  EXPECT_GE(reloads, 1u);
}

TEST(PrefetchServer, SwapRejectsGeometryMismatch) {
  const auto model = tiny_predictor(1, tiny_arch());
  nn::ModelConfig wide = tiny_arch();
  wide.out_dim = 32;  // client probs buffers are sized to out_dim = 16
  const auto mismatched = tiny_predictor(2, wide);

  PrefetchServer server(model, tiny_config(1));
  const std::uint64_t before = server.epoch();
  EXPECT_THROW(server.swap_model(mismatched), std::invalid_argument);
  EXPECT_EQ(server.epoch(), before);  // failed swap publishes nothing
}

TEST(PrefetchServer, StopIsIdempotentAndStatsSurviveIt) {
  const nn::ModelConfig arch = tiny_arch();
  const auto model = tiny_predictor(1, arch);
  PrefetchServer server(model, tiny_config(1));
  auto session = server.connect();
  const InputBank bank(arch, 1);
  std::vector<float> probs(arch.out_dim);
  Response r;
  while (session->submit(bank.addr_of(0), bank.pc_of(0), probs.data()) == 0) {
    std::this_thread::yield();
  }
  while (!session->poll(r)) std::this_thread::yield();
  server.stop();
  server.stop();  // idempotent
  EXPECT_EQ(server.stats().requests, 1u);
}

TEST(RunClientLoad, RejectsMismatchedPreprocessGeometry) {
  const auto model = tiny_predictor(1, tiny_arch());
  PrefetchServer server(model, tiny_config(1));
  LoadOptions load;  // default prep (history 8 etc.) != tiny_arch geometry
  load.streams = 1;
  load.requests_per_stream = 1;
  EXPECT_THROW(run_client_load(server, load), std::invalid_argument);
}

// The serialization audit behind the serve design (sim/prefetcher.hpp):
// shards share one predictor with no lock, which is sound only for
// prefetchers whose prediction path is const. DART's tabular predictor
// qualifies; the activation-caching NN baselines do not and must keep
// reporting that they need serialization.
TEST(SharesMutableModelAudit, DartIsShareableNnBaselinesAreNot) {
  const nn::ModelConfig arch = tiny_arch();
  prefetch::NnAdapterOptions opts;

  prefetch::DartPrefetcher dart_pf(tiny_predictor(1, arch), opts);
  EXPECT_FALSE(dart_pf.shares_mutable_model());

  prefetch::AttentionPrefetcher attn_pf(std::make_shared<nn::AddressPredictor>(arch, 1), opts,
                                        "TransFetch");
  EXPECT_TRUE(attn_pf.shares_mutable_model());

  prefetch::LstmPrefetcher lstm_pf(
      std::make_shared<nn::LstmPredictor>(arch.addr_dim, arch.pc_dim, 16, arch.out_dim, 1), opts,
      "Voyager");
  EXPECT_TRUE(lstm_pf.shares_mutable_model());
}

}  // namespace
}  // namespace dart::serve
