// Bit-exactness contract for the optimized replay loop (DESIGN.md §8).
//
// `ReferenceSimulator` is a deliberately naive, straight-line
// reimplementation of the simulator's specification: an AoS
// timestamp-LRU cache, a std::deque window, a std::unordered_map
// in-flight table, and std::priority_queues over totally ordered
// (time, seq) fill events. It shares no code with sim::Cache /
// sim::Simulator / sim::SimWorkspace. Every SimStats counter must match
// exactly — not just IPC — across pattern classes, prefetchers, and
// saturation configs. Any optimization that changes simulated behavior
// fails here.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/registry.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace dart::sim {
namespace {

// ------------------------------------------------------- reference cache

/// The seed's AoS set-associative cache: valid/prefetched/used bools and a
/// global LRU timestamp per line, first-invalid-way victim rule.
class RefCache {
 public:
  RefCache(std::size_t size_bytes, std::size_t ways, std::size_t line_bytes = 64)
      : sets_(size_bytes / (ways * line_bytes)), ways_(ways) {
    lines_.assign(sets_ * ways_, Line{});
  }

  bool access(std::uint64_t block) {
    last_useful_ = false;
    Line* base = lines_.data() + (block % sets_) * ways_;
    const std::uint64_t tag = block / sets_;
    for (std::size_t w = 0; w < ways_; ++w) {
      Line& line = base[w];
      if (line.valid && line.tag == tag) {
        line.lru = ++tick_;
        if (line.prefetched && !line.used) {
          line.used = true;
          last_useful_ = true;
        }
        return true;
      }
    }
    return false;
  }

  bool contains(std::uint64_t block) const {
    const Line* base = lines_.data() + (block % sets_) * ways_;
    const std::uint64_t tag = block / sets_;
    for (std::size_t w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].tag == tag) return true;
    }
    return false;
  }

  void insert(std::uint64_t block, bool prefetched) {
    Line* base = lines_.data() + (block % sets_) * ways_;
    const std::uint64_t tag = block / sets_;
    Line* victim = nullptr;
    for (std::size_t w = 0; w < ways_; ++w) {
      Line& line = base[w];
      if (line.valid && line.tag == tag) return;  // already present
      if (!line.valid) {
        if (victim == nullptr || victim->valid) victim = &line;
      } else if (victim == nullptr || (victim->valid && line.lru < victim->lru)) {
        victim = &line;
      }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++tick_;
    victim->prefetched = prefetched;
    victim->used = false;
  }

  bool last_hit_was_useful_prefetch() const { return last_useful_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool prefetched = false;
    bool used = false;
  };
  std::size_t sets_;
  std::size_t ways_;
  std::vector<Line> lines_;
  std::uint64_t tick_ = 0;
  bool last_useful_ = false;
};

// --------------------------------------------------- reference simulator

/// Fill event with the spec's total order: fill cycle, then issue order.
struct RefFill {
  std::uint64_t time;
  std::uint64_t seq;
  std::uint64_t block;
  bool operator>(const RefFill& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

SimStats reference_run(const trace::MemoryTrace& trace, const SimConfig& cfg,
                       Prefetcher* prefetcher) {
  SimStats stats;
  RefCache l1(cfg.l1_size, cfg.l1_ways);
  RefCache l2(cfg.l2_size, cfg.l2_ways);
  RefCache llc(cfg.llc_size, cfg.llc_ways);

  std::deque<std::pair<std::uint64_t, std::uint64_t>> window;
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>, std::greater<>> mshr;
  std::unordered_map<std::uint64_t, std::uint64_t> inflight_pf;
  std::priority_queue<RefFill, std::vector<RefFill>, std::greater<>> fill_queue;
  std::priority_queue<RefFill, std::vector<RefFill>, std::greater<>> demand_fill_queue;

  std::vector<std::uint64_t> pf_candidates;
  std::uint64_t last_commit = 0;
  std::uint64_t prev_issue = 0;
  std::uint64_t fill_seq = 0;
  const bool notify_fills = prefetcher != nullptr && prefetcher->trains_on_fill();

  const std::uint64_t demand_miss_latency =
      cfg.l1_latency + cfg.l2_latency + cfg.llc_latency + cfg.dram_latency;

  for (const auto& acc : trace) {
    const std::uint64_t block = trace::block_of(acc.addr);

    std::uint64_t t = acc.instr_id / cfg.issue_width;
    if (t < prev_issue) t = prev_issue;

    while (!window.empty() && window.front().first + cfg.rob_entries <= acc.instr_id) {
      t = std::max(t, window.front().second);
      window.pop_front();
    }
    while (!window.empty() && window.size() >= cfg.lsq_entries) {
      t = std::max(t, window.front().second);
      window.pop_front();
    }

    while (notify_fills && !demand_fill_queue.empty() && demand_fill_queue.top().time <= t) {
      prefetcher->on_fill(demand_fill_queue.top().block, /*was_prefetch=*/false);
      demand_fill_queue.pop();
    }
    while (!fill_queue.empty() && fill_queue.top().time <= t) {
      const RefFill f = fill_queue.top();
      fill_queue.pop();
      auto it = inflight_pf.find(f.block);
      if (it != inflight_pf.end() && it->second == f.time) {
        llc.insert(f.block, /*prefetched=*/true);
        if (prefetcher != nullptr) prefetcher->on_fill(f.block, /*was_prefetch=*/true);
        inflight_pf.erase(it);
      }
    }

    std::uint64_t complete;
    if (l1.access(block)) {
      complete = t + cfg.l1_latency;
    } else if (l2.access(block)) {
      complete = t + cfg.l1_latency + cfg.l2_latency;
      l1.insert(block, false);
    } else {
      ++stats.llc_accesses;
      const bool llc_hit = llc.access(block);
      if (llc_hit) {
        ++stats.llc_hits;
        if (llc.last_hit_was_useful_prefetch()) ++stats.pf_useful;
        complete = t + cfg.l1_latency + cfg.l2_latency + cfg.llc_latency;
        while (!mshr.empty() && mshr.top() <= t) mshr.pop();
      } else {
        auto pf_it = inflight_pf.find(block);
        if (pf_it != inflight_pf.end() && pf_it->second <= t + demand_miss_latency) {
          ++stats.pf_late;
          complete = std::max(t + cfg.l1_latency + cfg.l2_latency + cfg.llc_latency,
                              pf_it->second);
          llc.insert(block, false);
          inflight_pf.erase(pf_it);
        } else {
          if (pf_it != inflight_pf.end()) inflight_pf.erase(pf_it);
          ++stats.llc_demand_misses;
          std::uint64_t issue = t;
          while (!mshr.empty() && mshr.size() >= cfg.llc_mshrs) {
            issue = std::max(issue, mshr.top());
            mshr.pop();
          }
          complete = issue + demand_miss_latency;
          mshr.push(complete);
          while (!mshr.empty() && mshr.top() <= t) mshr.pop();
          llc.insert(block, false);
          if (notify_fills) demand_fill_queue.push({complete, fill_seq++, block});
        }
        l2.insert(block, false);
        l1.insert(block, false);
      }

      if (prefetcher != nullptr) {
        pf_candidates.clear();
        prefetcher->on_access(block, acc.pc, llc_hit, t, pf_candidates);
        const std::uint64_t ready = t + prefetcher->prediction_latency();
        std::size_t accepted = 0;
        for (std::uint64_t cand : pf_candidates) {
          if (accepted >= cfg.max_degree) {
            ++stats.pf_dropped;
            continue;
          }
          if (llc.contains(cand) || inflight_pf.count(cand) != 0) {
            ++stats.pf_dropped;
            continue;
          }
          if (inflight_pf.size() >= cfg.prefetch_queue) {
            ++stats.pf_dropped;
            continue;
          }
          const std::uint64_t fill_time = ready + cfg.dram_latency;
          inflight_pf.emplace(cand, fill_time);
          fill_queue.push({fill_time, fill_seq++, cand});
          ++stats.pf_issued;
          ++accepted;
        }
      }
    }

    window.emplace_back(acc.instr_id, complete);
    last_commit = std::max(last_commit, complete);
    prev_issue = t;
  }

  if (!trace.empty()) {
    stats.instructions = trace.back().instr_id - trace.front().instr_id + 1;
  }
  stats.cycles = std::max(last_commit, stats.instructions / cfg.issue_width);
  return stats;
}

// ------------------------------------------------------------- harness

void expect_identical(const SimStats& a, const SimStats& b, const std::string& label) {
  EXPECT_EQ(a.instructions, b.instructions) << label;
  EXPECT_EQ(a.cycles, b.cycles) << label;
  EXPECT_EQ(a.llc_accesses, b.llc_accesses) << label;
  EXPECT_EQ(a.llc_hits, b.llc_hits) << label;
  EXPECT_EQ(a.llc_demand_misses, b.llc_demand_misses) << label;
  EXPECT_EQ(a.pf_issued, b.pf_issued) << label;
  EXPECT_EQ(a.pf_useful, b.pf_useful) << label;
  EXPECT_EQ(a.pf_late, b.pf_late) << label;
  EXPECT_EQ(a.pf_dropped, b.pf_dropped) << label;
}

using PrefetcherFactory = std::function<std::unique_ptr<Prefetcher>()>;

/// Runs reference and optimized loops with independent, identically
/// configured prefetcher instances, through a shared workspace, and
/// demands identical counters.
void check(const trace::MemoryTrace& trace, const SimConfig& cfg,
           const PrefetcherFactory& factory, SimWorkspace& ws, const std::string& label) {
  std::unique_ptr<Prefetcher> ref_pf = factory ? factory() : nullptr;
  std::unique_ptr<Prefetcher> opt_pf = factory ? factory() : nullptr;
  const SimStats ref = reference_run(trace, cfg, ref_pf.get());
  const SimStats opt = Simulator(cfg).run(trace, opt_pf.get(), ws);
  expect_identical(ref, opt, label);
}

/// Emits a fixed stride; `degree` controls queue pressure.
class TestStride final : public Prefetcher {
 public:
  TestStride(std::int64_t stride, std::size_t degree) : stride_(stride), degree_(degree) {}
  void on_access(std::uint64_t block, std::uint64_t, bool, std::uint64_t,
                 std::vector<std::uint64_t>& out) override {
    for (std::size_t d = 1; d <= degree_; ++d) {
      out.push_back(block + static_cast<std::uint64_t>(stride_ * static_cast<std::int64_t>(d)));
    }
  }
  std::size_t storage_bytes() const override { return 0; }
  std::string name() const override { return "TestStride"; }

 private:
  std::int64_t stride_;
  std::size_t degree_;
};

std::vector<trace::MemoryTrace> pattern_traces() {
  std::vector<trace::MemoryTrace> traces;
  for (trace::App app : {trace::App::kLibquantum, trace::App::kMcf, trace::App::kGcc,
                         trace::App::kBwaves, trace::App::kWrf}) {
    traces.push_back(trace::generate(app, 25000, 7));
  }
  // Dense all-miss stream with ids not starting at zero.
  trace::MemoryTrace shifted;
  for (std::size_t i = 0; i < 20000; ++i) {
    shifted.push_back({1000000 + (i + 1) * 4, 0x400 + (i % 7) * 8, (i << 14) * 64, false});
  }
  traces.push_back(std::move(shifted));
  return traces;
}

std::vector<std::pair<std::string, PrefetcherFactory>> prefetcher_grid() {
  std::vector<std::pair<std::string, PrefetcherFactory>> grid;
  grid.emplace_back("none", PrefetcherFactory{});
  grid.emplace_back("oracle-stride",
                    [] { return std::make_unique<TestStride>(1 << 14, 4); });
  grid.emplace_back("wrong-stride", [] { return std::make_unique<TestStride>(-9, 2); });
  grid.emplace_back("flood", [] { return std::make_unique<TestStride>(1 << 20, 64); });
  for (const char* spec : {"stride", "bo", "isb", "nextline"}) {
    grid.emplace_back(spec, [spec] { return make_prefetcher(spec); });
  }
  return grid;
}

TEST(SimReference, DefaultConfigAllPatternsAllPrefetchers) {
  SimWorkspace ws;  // shared across all runs: reuse must not leak state
  const SimConfig cfg;
  for (const auto& trace : pattern_traces()) {
    for (const auto& [name, factory] : prefetcher_grid()) {
      check(trace, cfg, factory, ws, name);
    }
  }
}

TEST(SimReference, PrefetchQueueFullConfig) {
  SimWorkspace ws;
  SimConfig cfg;
  cfg.prefetch_queue = 2;  // saturate the in-flight table constantly
  cfg.max_degree = 8;
  for (const auto& trace : pattern_traces()) {
    for (const auto& [name, factory] : prefetcher_grid()) {
      check(trace, cfg, factory, ws, "queue-full/" + name);
    }
  }
}

TEST(SimReference, MshrSaturatedConfig) {
  SimWorkspace ws;
  SimConfig cfg;
  cfg.llc_mshrs = 1;  // serialize all DRAM misses
  for (const auto& trace : pattern_traces()) {
    for (const auto& [name, factory] : prefetcher_grid()) {
      check(trace, cfg, factory, ws, "mshr-sat/" + name);
    }
  }
}

TEST(SimReference, NonDefaultGeometries) {
  SimWorkspace ws;
  // Power-of-two L1 (64 sets) and tiny shared levels; also a non-power-of
  // two L2 (96 KB / 8 ways = 192 sets).
  SimConfig pow2;
  pow2.l1_ways = 16;
  SimConfig odd;
  odd.l2_size = 96 * 1024;
  odd.llc_size = 3 * 1024 * 1024;  // 3072 sets, non-power-of-two
  for (const SimConfig& cfg : {pow2, odd}) {
    for (const auto& trace : pattern_traces()) {
      for (const auto& [name, factory] : prefetcher_grid()) {
        check(trace, cfg, factory, ws, "geometry/" + name);
      }
    }
  }
}

TEST(SimReference, WorkspaceReuseIsStateless) {
  // Same trace, same config, same workspace: run 1 warms the arenas, run 2
  // must reproduce run 1 exactly (and match a fresh workspace).
  SimWorkspace ws;
  const SimConfig cfg;
  const auto trace = trace::generate(trace::App::kMcf, 30000, 11);
  Simulator sim(cfg);
  auto bo1 = make_prefetcher("bo");
  const SimStats first = sim.run(trace, bo1.get(), ws);
  auto bo2 = make_prefetcher("bo");
  const SimStats second = sim.run(trace, bo2.get(), ws);
  expect_identical(first, second, "reuse");
  SimWorkspace fresh;
  auto bo3 = make_prefetcher("bo");
  expect_identical(first, sim.run(trace, bo3.get(), fresh), "fresh");
}

TEST(SimReference, ExtractLlcTraceMatchesReferenceFilter) {
  const SimConfig cfg;
  const auto raw = trace::generate(trace::App::kGcc, 30000, 5);
  // Naive reference filter.
  RefCache l1(cfg.l1_size, cfg.l1_ways);
  RefCache l2(cfg.l2_size, cfg.l2_ways);
  trace::MemoryTrace expected;
  for (const auto& acc : raw) {
    const std::uint64_t block = trace::block_of(acc.addr);
    if (l1.access(block)) continue;
    if (l2.access(block)) {
      l1.insert(block, false);
      continue;
    }
    l2.insert(block, false);
    l1.insert(block, false);
    expected.push_back(acc);
  }
  SimWorkspace ws;
  const trace::MemoryTrace got = extract_llc_trace(raw, cfg, ws);
  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].addr, got[i].addr);
    EXPECT_EQ(expected[i].instr_id, got[i].instr_id);
  }
  // The thread-local overload and a second (reused-workspace) pass agree.
  const trace::MemoryTrace again = extract_llc_trace(raw, cfg, ws);
  EXPECT_EQ(got.size(), extract_llc_trace(raw, cfg).size());
  EXPECT_EQ(got.size(), again.size());
}

}  // namespace
}  // namespace dart::sim
