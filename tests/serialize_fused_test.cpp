// Tests for model checkpointing and the fused multi-layer table (the
// paper's §VIII future-work feature).
#include <gtest/gtest.h>

#include <cstdio>

#include "nn/ops.hpp"
#include "nn/serialize.hpp"
#include "nn/transformer.hpp"
#include "tabular/complexity.hpp"
#include "tabular/fused_kernel.hpp"

namespace dart {
namespace {

nn::ModelConfig tiny_arch() {
  nn::ModelConfig a;
  a.seq_len = 4;
  a.addr_dim = 4;
  a.pc_dim = 4;
  a.dim = 8;
  a.ffn_dim = 16;
  a.out_dim = 12;
  a.heads = 2;
  a.layers = 1;
  return a;
}

TEST(Serialize, RoundTripsAddressPredictor) {
  const std::string path = "/tmp/dart_ckpt_roundtrip.bin";
  nn::AddressPredictor a(tiny_arch(), 3);
  ASSERT_TRUE(nn::save_model(a, path));
  nn::AddressPredictor b(tiny_arch(), 99);  // different init
  nn::load_model(b, path);
  nn::Tensor addr = nn::Tensor::randn({2, 4, 4}, 0.5f, 5);
  nn::Tensor pc = nn::Tensor::randn({2, 4, 4}, 0.5f, 6);
  nn::Tensor ya = a.forward(addr, pc);
  nn::Tensor yb = b.forward(addr, pc);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsWrongArchitecture) {
  const std::string path = "/tmp/dart_ckpt_badarch.bin";
  nn::AddressPredictor a(tiny_arch(), 3);
  ASSERT_TRUE(nn::save_model(a, path));
  nn::ModelConfig other = tiny_arch();
  other.dim = 16;  // different shapes
  nn::AddressPredictor b(other, 3);
  EXPECT_THROW(nn::load_model(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsMissingAndCorruptFiles) {
  nn::AddressPredictor a(tiny_arch(), 3);
  EXPECT_THROW(nn::load_model(a, "/tmp/does_not_exist_dart.bin"), std::runtime_error);
  const std::string path = "/tmp/dart_ckpt_corrupt.bin";
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EXPECT_THROW(nn::load_model(a, path), std::runtime_error);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- FusedKernel

TEST(FusedKernel, ExactOnPrototypeInputs) {
  // Identity stack: table rows are the prototypes themselves; querying a
  // training point equal to a prototype must return it exactly.
  nn::Tensor rows({8, 4});
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 4; ++j) rows.at(i, j) = static_cast<float>(i * 7 + j);
  }
  tabular::FusedKernelConfig cfg;
  cfg.num_prototypes = 8;
  cfg.kmeans_iters = 25;
  tabular::FusedKernel fused(4, 4, [](const nn::Tensor& x) { return x; }, rows, cfg);
  nn::Tensor out = fused.query(rows);
  for (std::size_t i = 0; i < out.numel(); ++i) EXPECT_NEAR(out[i], rows[i], 1e-3f);
}

TEST(FusedKernel, ApproximatesAnFfnStack) {
  // Fuse hidden -> ReLU -> out into one table and compare against the exact
  // stack on held-out points drawn from the same distribution.
  nn::FeedForward ffn(6, 12, 7);
  auto stack = [&](const nn::Tensor& x) { return ffn.forward(x); };
  nn::Tensor train = nn::Tensor::randn({2048, 6}, 1.0f, 8);
  tabular::FusedKernelConfig cfg;
  cfg.num_prototypes = 512;
  tabular::FusedKernel fused(6, 6, stack, train, cfg);
  nn::Tensor test = nn::Tensor::randn({128, 6}, 1.0f, 9);
  nn::Tensor approx = fused.query(test);
  nn::Tensor exact = ffn.forward(test);
  EXPECT_GT(nn::ops::cosine_similarity(approx, exact), 0.7);
}

TEST(FusedKernel, MoreVqPrototypesReduceError) {
  nn::FeedForward ffn(6, 12, 11);
  auto stack = [&](const nn::Tensor& x) { return ffn.forward(x); };
  nn::Tensor train = nn::Tensor::randn({2048, 6}, 1.0f, 12);
  nn::Tensor test = nn::Tensor::randn({128, 6}, 1.0f, 13);
  nn::Tensor exact = ffn.forward(test);
  auto mse_for = [&](std::size_t k) {
    tabular::FusedKernelConfig cfg;
    cfg.num_prototypes = k;
    tabular::FusedKernel fused(6, 6, stack, train, cfg);
    nn::Tensor approx = fused.query(test);
    double mse = 0.0;
    for (std::size_t i = 0; i < approx.numel(); ++i) {
      const double d = approx[i] - exact[i];
      mse += d * d;
    }
    return mse;
  };
  EXPECT_LE(mse_for(512), mse_for(16) * 1.05);
}

TEST(FusedKernel, LatencyBeatsTwoChainedLinearKernels) {
  nn::FeedForward ffn(8, 16, 21);
  auto stack = [&](const nn::Tensor& x) { return ffn.forward(x); };
  nn::Tensor train = nn::Tensor::randn({256, 8}, 1.0f, 22);
  tabular::FusedKernelConfig cfg;
  cfg.num_prototypes = 256;
  tabular::FusedKernel fused(8, 8, stack, train, cfg);
  // Two linear kernels at K=128, C=2 cost 2*(7+1+1) = 18 cycles; the fused
  // table at K=256 costs log2(256)+1 = 9.
  EXPECT_LT(fused.latency_cycles(),
            2 * tabular::linear_kernel_latency(128, 2));
}

TEST(FusedKernel, RejectsBadShapes) {
  nn::Tensor train({10, 3});
  tabular::FusedKernelConfig cfg;
  cfg.num_prototypes = 4;
  EXPECT_THROW(
      tabular::FusedKernel(4, 4, [](const nn::Tensor& x) { return x; }, train, cfg),
      std::invalid_argument);
}

}  // namespace
}  // namespace dart
