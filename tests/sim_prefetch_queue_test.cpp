// Additional simulator properties: prefetch queue limits, degree capping,
// duplicate suppression, and prefetch-fill eviction behavior.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace dart::sim {
namespace {

trace::MemoryTrace miss_stream(std::size_t n, std::uint64_t gap_instr = 16) {
  trace::MemoryTrace t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({(i + 1) * gap_instr, 0x400, (i << 14) * 64, false});
  }
  return t;
}

/// Emits a fixed candidate list on every access.
class FloodPrefetcher final : public Prefetcher {
 public:
  explicit FloodPrefetcher(std::size_t count) : count_(count) {}
  void on_access(std::uint64_t block, std::uint64_t, bool, std::uint64_t,
                 std::vector<std::uint64_t>& out) override {
    for (std::size_t i = 1; i <= count_; ++i) out.push_back(block + (i << 20));
  }
  std::size_t storage_bytes() const override { return 0; }
  std::string name() const override { return "Flood"; }

 private:
  std::size_t count_;
};

TEST(SimulatorQueue, DegreeCapBoundsIssuesPerTrigger) {
  SimConfig cfg;
  cfg.max_degree = 4;
  cfg.prefetch_queue = 1u << 20;  // effectively unlimited
  Simulator sim(cfg);
  FloodPrefetcher flood(64);
  const auto t = miss_stream(100);
  const SimStats s = sim.run(t, &flood);
  EXPECT_LE(s.pf_issued, 4u * s.llc_accesses);
  EXPECT_GT(s.pf_dropped, 0u);
}

TEST(SimulatorQueue, QueueLimitDropsExcessPrefetches) {
  SimConfig small = {};
  small.prefetch_queue = 2;
  SimConfig big = {};
  big.prefetch_queue = 1024;
  FloodPrefetcher flood_a(16), flood_b(16);
  const auto t = miss_stream(500);
  const SimStats s_small = Simulator(small).run(t, &flood_a);
  const SimStats s_big = Simulator(big).run(t, &flood_b);
  EXPECT_LT(s_small.pf_issued, s_big.pf_issued);
  EXPECT_GT(s_small.pf_dropped, s_big.pf_dropped);
}

TEST(SimulatorQueue, DuplicateCandidatesSuppressed) {
  // A prefetcher that keeps asking for the same line must only issue once
  // while it is in flight / resident.
  class Repeater final : public Prefetcher {
   public:
    void on_access(std::uint64_t, std::uint64_t, bool, std::uint64_t,
                   std::vector<std::uint64_t>& out) override {
      out.push_back(0xABCDE);
    }
    std::size_t storage_bytes() const override { return 0; }
    std::string name() const override { return "Repeater"; }
  };
  SimConfig cfg;
  Simulator sim(cfg);
  Repeater rep;
  const auto t = miss_stream(300);
  const SimStats s = sim.run(t, &rep);
  EXPECT_LE(s.pf_issued, 2u);  // once in flight, later asks are duplicates
  EXPECT_GT(s.pf_dropped, 200u);
}

TEST(SimulatorQueue, AccuracyCountsEachPrefetchedLineOnce) {
  // A correct next-line prefetcher on a repeat-free stream: useful count
  // can never exceed issued count.
  class NextBlock final : public Prefetcher {
   public:
    void on_access(std::uint64_t block, std::uint64_t, bool, std::uint64_t,
                   std::vector<std::uint64_t>& out) override {
      out.push_back(block + (1ULL << 14));
    }
    std::size_t storage_bytes() const override { return 0; }
    std::string name() const override { return "NextBlock"; }
  };
  SimConfig cfg;
  Simulator sim(cfg);
  NextBlock nb;
  const SimStats s = sim.run(miss_stream(2000, 64), &nb);
  EXPECT_LE(s.pf_useful + s.pf_late, s.pf_issued);
  EXPECT_GT(s.accuracy(), 0.5);
}

TEST(SimulatorQueue, PrefetchOnlyFillsLlcNotL1) {
  // After a prefetch fill, a demand access must still count as an LLC
  // access (the line is not in L1/L2), and hit in the LLC.
  SimConfig cfg;
  Simulator sim(cfg);
  class OneShot final : public Prefetcher {
   public:
    void on_access(std::uint64_t, std::uint64_t, bool, std::uint64_t,
                   std::vector<std::uint64_t>& out) override {
      if (!fired_) {
        out.push_back(42);
        fired_ = true;
      }
    }
    std::size_t storage_bytes() const override { return 0; }
    std::string name() const override { return "OneShot"; }

   private:
    bool fired_ = false;
  };
  trace::MemoryTrace t;
  t.push_back({64, 0x1, 99 * 64, false});          // trigger
  t.push_back({1u << 20, 0x1, 42 * 64, false});    // much later: hits LLC
  OneShot pf;
  const SimStats s = sim.run(t, &pf);
  EXPECT_EQ(s.llc_accesses, 2u);
  EXPECT_EQ(s.pf_useful, 1u);
}

}  // namespace
}  // namespace dart::sim
