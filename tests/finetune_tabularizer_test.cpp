// Tests for layer fine-tuning (Eq. 26) and the full Algorithm-1
// tabularizer, including the fine-tuning-vs-none comparison behind Fig. 11.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/ops.hpp"
#include "nn/trainer.hpp"
#include "tabular/finetune.hpp"
#include "tabular/tabularizer.hpp"

namespace dart::tabular {
namespace {

TEST(RidgeSolve, RecoversExactLinearMap) {
  // B = A W with known W; lambda ~ 0 must recover W.
  const std::size_t m = 200, p = 6, q = 3;
  nn::Tensor a = nn::Tensor::randn({m, p}, 1.0f, 1);
  nn::Tensor w_true = nn::Tensor::randn({p, q}, 1.0f, 2);
  nn::Tensor b;
  nn::ops::matmul(a, w_true, b);
  nn::Tensor w = ridge_solve(a, b, 1e-6f);
  for (std::size_t i = 0; i < w.numel(); ++i) EXPECT_NEAR(w[i], w_true[i], 1e-3f);
}

TEST(RidgeSolve, LambdaShrinksSolution) {
  const std::size_t m = 100, p = 4;
  nn::Tensor a = nn::Tensor::randn({m, p}, 1.0f, 3);
  nn::Tensor w_true = nn::Tensor::randn({p, 1}, 1.0f, 4);
  nn::Tensor b;
  nn::ops::matmul(a, w_true, b);
  nn::Tensor w_small = ridge_solve(a, b, 1e-6f);
  nn::Tensor w_big = ridge_solve(a, b, 100.0f);
  double n_small = 0.0, n_big = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    n_small += w_small[i] * w_small[i];
    n_big += w_big[i] * w_big[i];
  }
  EXPECT_LT(n_big, n_small);
}

TEST(RidgeSolve, RejectsShapeMismatch) {
  nn::Tensor a({10, 3}), b({9, 2});
  EXPECT_THROW(ridge_solve(a, b, 0.1f), std::invalid_argument);
}

TEST(FineTune, ClosedFormFixesPerturbedLayer) {
  // Layer output target Y = W0 x + b0; start from perturbed weights and
  // fine-tune on noisy inputs: residual MSE must collapse.
  const std::size_t m = 400, di = 6, dout = 4;
  nn::Linear truth(di, dout, 5);
  nn::Tensor x_hat = nn::Tensor::randn({m, di}, 1.0f, 6);
  nn::Tensor y_ref = truth.apply(x_hat);
  nn::Linear layer(di, dout, 99);  // different random init
  FineTuneOptions opt;
  opt.method = FineTuneMethod::kClosedForm;
  opt.ridge_lambda = 1e-6f;  // no shrinkage: exact least-squares recovery
  const double mse = fine_tune_linear(layer, x_hat, y_ref, opt);
  EXPECT_LT(mse, 1e-4);
}

TEST(FineTune, SgdReducesMse) {
  const std::size_t m = 300, di = 5, dout = 3;
  nn::Linear truth(di, dout, 7);
  nn::Tensor x_hat = nn::Tensor::randn({m, di}, 1.0f, 8);
  nn::Tensor y_ref = truth.apply(x_hat);
  nn::Linear layer(di, dout, 11);
  nn::Tensor d_unused;
  const double before = nn::mse_loss(layer.apply(x_hat), y_ref, d_unused);
  FineTuneOptions opt;
  opt.method = FineTuneMethod::kSgd;
  opt.epochs = 60;
  opt.batch_size = 64;
  opt.lr = 1e-2f;
  const double after = fine_tune_linear(layer, x_hat, y_ref, opt);
  EXPECT_LT(after, before * 0.3);
}

TEST(FineTune, RejectsShapeMismatch) {
  nn::Linear layer(4, 2, 1);
  nn::Tensor x({10, 3}), y({10, 2});
  EXPECT_THROW(fine_tune_linear(layer, x, y, {}), std::invalid_argument);
}

// ------------------------------------------------------------- tabularizer

struct TinySetup {
  nn::ModelConfig arch;
  nn::AddressPredictor model;
  nn::Dataset data;

  TinySetup()
      : arch(make_arch()), model(arch, 31), data(make_data(arch)) {
    nn::TrainOptions opt;
    opt.epochs = 6;
    opt.batch_size = 32;
    nn::train_bce(model, data, opt);
  }

  static nn::ModelConfig make_arch() {
    nn::ModelConfig a;
    a.seq_len = 4;
    a.addr_dim = 4;
    a.pc_dim = 4;
    a.dim = 8;
    a.ffn_dim = 16;
    a.out_dim = 16;
    a.heads = 2;
    a.layers = 1;
    return a;
  }

  static nn::Dataset make_data(const nn::ModelConfig& arch) {
    const std::size_t n = 600;
    nn::Dataset ds;
    ds.addr = nn::Tensor::randn({n, arch.seq_len, arch.addr_dim}, 0.5f, 32);
    ds.pc = nn::Tensor::randn({n, arch.seq_len, arch.pc_dim}, 0.5f, 33);
    ds.labels = nn::Tensor({n, arch.out_dim});
    for (std::size_t i = 0; i < n; ++i) {
      double mean = 0.0;
      for (std::size_t k = 0; k < arch.seq_len * arch.addr_dim; ++k) {
        mean += ds.addr[i * arch.seq_len * arch.addr_dim + k];
      }
      mean /= static_cast<double>(arch.seq_len * arch.addr_dim);
      for (std::size_t j = 0; j < arch.out_dim; ++j) {
        ds.labels.at(i, j) =
            mean > (static_cast<double>(j) / arch.out_dim - 0.5) ? 1.0f : 0.0f;
      }
    }
    return ds;
  }

  TabularizeOptions options(bool fine_tune) const {
    TabularizeOptions o;
    o.tables = TableConfig::uniform(64, 2);
    o.fine_tune = fine_tune;
    o.kmeans_iters = 10;
    o.max_train_samples = 400;
    return o;
  }
};

TEST(Tabularizer, ProducesWorkingPredictor) {
  TinySetup s;
  TabularizeReport report;
  TabularPredictor tab = tabularize(s.model, s.data.addr, s.data.pc, s.options(true), &report);
  // Probabilities valid and F1 close to the NN's.
  nn::Tensor probs = tab.forward(s.data.addr, s.data.pc);
  for (std::size_t i = 0; i < probs.numel(); ++i) {
    EXPECT_GE(probs[i], 0.0f);
    EXPECT_LE(probs[i], 1.0f);
  }
  const double nn_f1 = nn::evaluate_f1(s.model, s.data).f1;
  const double tab_f1 = nn::f1_score_from_probs(probs, s.data.labels).f1;
  EXPECT_GT(tab_f1, nn_f1 - 0.15);
}

TEST(Tabularizer, RecordsAllStages) {
  TinySetup s;
  TabularizeReport report;
  tabularize(s.model, s.data.addr, s.data.pc, s.options(true), &report);
  // embed + (qkv, attn, ln1, ln2) per layer + head.
  ASSERT_EQ(report.stages.size(), 1u + 4u * s.arch.layers + 1u);
  EXPECT_EQ(report.stages.front().name, "embed");
  EXPECT_EQ(report.stages.back().name, "head");
  for (const auto& st : report.stages) {
    EXPECT_GT(st.cosine, 0.3) << st.name;
    EXPECT_LE(st.cosine, 1.0 + 1e-9) << st.name;
  }
  // One fine-tune per linear layer past the input: qkv, out, ffn x2, head.
  EXPECT_EQ(report.finetune_mse.size(), 4u * s.arch.layers + 1u);
}

TEST(Tabularizer, FineTuningImprovesOutputFidelity) {
  TinySetup s;
  TabularizeReport with_ft, without_ft;
  tabularize(s.model, s.data.addr, s.data.pc, s.options(true), &with_ft);
  tabularize(s.model, s.data.addr, s.data.pc, s.options(false), &without_ft);
  // Fig. 11's claim: fine-tuning raises similarity, most visibly near the
  // output. Compare the head stage.
  EXPECT_GE(with_ft.stages.back().cosine, without_ft.stages.back().cosine - 0.01);
}

TEST(Tabularizer, DoesNotMutateTheModel) {
  TinySetup s;
  // Snapshot a weight, tabularize with fine-tuning, verify unchanged.
  const float before = s.model.head().weight().at(0, 0);
  tabularize(s.model, s.data.addr, s.data.pc, s.options(true), nullptr);
  EXPECT_EQ(s.model.head().weight().at(0, 0), before);
}

TEST(Tabularizer, StorageAccountsForAllTables) {
  TinySetup s;
  TabularPredictor tab = tabularize(s.model, s.data.addr, s.data.pc, s.options(true), nullptr);
  // Lower bound: head kernel alone stores DO*K*C floats.
  EXPECT_GT(tab.storage_bytes(), s.arch.out_dim * 64 * 2 * sizeof(float));
}

TEST(Tabularizer, RejectsIncompatibleTables) {
  TinySetup s;
  TabularizeOptions bad = s.options(true);
  bad.tables = TableConfig::uniform(64, 16);  // C=16 cannot divide Dk=4
  EXPECT_THROW(tabularize(s.model, s.data.addr, s.data.pc, bad, nullptr),
               std::invalid_argument);
}

TEST(Tabularizer, DeterministicForFixedSeed) {
  TinySetup s;
  TabularPredictor a = tabularize(s.model, s.data.addr, s.data.pc, s.options(true), nullptr);
  TabularPredictor b = tabularize(s.model, s.data.addr, s.data.pc, s.options(true), nullptr);
  nn::Dataset probe = s.data.slice(0, 8);
  nn::Tensor pa = a.forward(probe.addr, probe.pc);
  nn::Tensor pb = b.forward(probe.addr, probe.pc);
  for (std::size_t i = 0; i < pa.numel(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(Tabularizer, HashTreeEncoderStaysClose) {
  TinySetup s;
  TabularizeOptions exact = s.options(true);
  TabularizeOptions hashed = s.options(true);
  hashed.encoder = pq::EncoderKind::kHashTree;
  TabularPredictor te = tabularize(s.model, s.data.addr, s.data.pc, exact, nullptr);
  TabularPredictor th = tabularize(s.model, s.data.addr, s.data.pc, hashed, nullptr);
  const double f1e = nn::f1_score_from_probs(te.forward(s.data.addr, s.data.pc),
                                             s.data.labels).f1;
  const double f1h = nn::f1_score_from_probs(th.forward(s.data.addr, s.data.pc),
                                             s.data.labels).f1;
  EXPECT_GT(f1h, f1e - 0.25);  // log-K encoding costs limited accuracy
}

}  // namespace
}  // namespace dart::tabular
