// Tests for the deterministic workload engine (DESIGN.md §12): the spec
// grammar, the synthetic family generators with their golden content
// hashes, YCSB op-mix ratios, and the .dtrc trace-file round trip with its
// corruption negatives.
//
// The golden hashes here ARE the reproducibility contract: they pin the
// exact byte stream of every generator family for (n=20000, seed=42). A
// hash change means every committed corpus hash and trained artifact is
// re-keyed — never update a golden casually; regenerate
// tests/golden/corpus_hashes.tsv and the bench baselines with it.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/bytes.hpp"
#include "trace/generators.hpp"
#include "trace/trace_file.hpp"
#include "trace/workloads.hpp"

namespace dart::trace {
namespace {

constexpr std::size_t kN = 20000;
constexpr std::uint64_t kSeed = 42;

std::uint64_t hash_of(const std::string& spec) {
  return trace_content_hash(Workload::parse(spec).generate(kN, kSeed));
}

// ------------------------------------------------------------- spec grammar

TEST(WorkloadSpec, ParsesKeyValuesAndCanonicalizes) {
  WorkloadSpec spec = WorkloadSpec::parse("zipfian,theta=0.9,footprint=1G");
  EXPECT_EQ(spec.family(), "zipfian");
  EXPECT_EQ(spec.get_double("theta", 0.0), 0.9);
  EXPECT_EQ(spec.get_size("footprint", 0), 1ULL << 30);
  // Canonical form sorts keys (raw value strings preserved) and
  // round-trips through parse.
  EXPECT_EQ(spec.canonical(), "zipfian,footprint=1G,theta=0.9");
}

TEST(WorkloadSpec, SizeSuffixes) {
  WorkloadSpec spec = WorkloadSpec::parse("x,a=64K,b=3M,c=2G,d=123");
  EXPECT_EQ(spec.get_size("a", 0), 64ULL << 10);
  EXPECT_EQ(spec.get_size("b", 0), 3ULL << 20);
  EXPECT_EQ(spec.get_size("c", 0), 2ULL << 30);
  EXPECT_EQ(spec.get_size("d", 0), 123ULL);
}

TEST(WorkloadSpec, RejectsMalformedInput) {
  EXPECT_THROW(WorkloadSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse(",theta=0.9"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("zipfian,=0.9"), std::invalid_argument);
  EXPECT_THROW(Workload::parse("trace:zipfian,theta=abc"), std::invalid_argument);
}

TEST(Workload, ParseAcceptsAppNamesAndFamilies) {
  EXPECT_EQ(Workload::parse("605.mcf").name(), "605.mcf");
  EXPECT_EQ(Workload::parse("mcf").name(), "605.mcf");
  EXPECT_EQ(Workload::parse("ycsb-b").name(), "ycsb-b");
  EXPECT_EQ(Workload::parse("trace:zipfian,theta=0.8").name(), "zipfian");
  EXPECT_EQ(Workload(App::kMcf).spec(), "605.mcf");
}

TEST(Workload, ParseRejectsUnknownFamiliesAndUnusedKeys) {
  EXPECT_THROW(Workload::parse("trace:nosuchfamily"), std::invalid_argument);
  EXPECT_THROW(Workload::parse("notaworkload"), std::invalid_argument);
  // Typo'd parameter names must be rejected, not silently ignored.
  EXPECT_THROW(Workload::parse("trace:zipfian,theta=0.9,footprnt=64M"),
               std::invalid_argument);
  EXPECT_THROW(Workload::parse("trace:zipfian,theta=1.5"), std::invalid_argument);
  EXPECT_THROW(Workload::parse("trace:zipfian,footprint=1K"), std::invalid_argument);
  EXPECT_THROW(Workload::parse("trace:uniform,write=1.5"), std::invalid_argument);
  EXPECT_THROW(Workload::parse("trace:sequential,stride=0"), std::invalid_argument);
  EXPECT_THROW(Workload::parse("trace:zipfian,layout=nosuch"), std::invalid_argument);
  EXPECT_THROW(Workload::parse("tracefile:label=x"), std::invalid_argument);
}

TEST(Workload, CanonicalSpecRoundTrips) {
  const Workload w = Workload::parse("trace:ycsb-b,footprint=128M,theta=0.9,label=hot");
  const Workload again = Workload::parse(w.spec());
  EXPECT_EQ(again.spec(), w.spec());
  EXPECT_EQ(again.name(), "hot");
  EXPECT_EQ(trace_content_hash(w.generate(5000, 3)),
            trace_content_hash(again.generate(5000, 3)));
}

TEST(Workload, LabelsAreFilesystemSafe) {
  const Workload w = Workload::parse("trace:zipfian,label=my wild/label!");
  for (char c : w.name()) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_' ||
                c == '-')
        << w.name();
  }
}

TEST(Workload, ParseWorkloadListSplitsBothWays) {
  // ';' always splits; ',' only for parameterless name lists.
  EXPECT_EQ(parse_workload_list("mcf;trace:zipfian,theta=0.9;ycsb-a").size(), 3u);
  EXPECT_EQ(parse_workload_list("mcf,gcc,ycsb-c").size(), 3u);
  EXPECT_EQ(parse_workload_list("trace:zipfian,theta=0.9").size(), 1u);
}

// ----------------------------------------------------------- determinism

TEST(Workload, SameSeedSameHashDifferentSeedDiffers) {
  const Workload w = Workload::parse("trace:ycsb-a,footprint=64M");
  EXPECT_EQ(trace_content_hash(w.generate(kN, 7)), trace_content_hash(w.generate(kN, 7)));
  EXPECT_NE(trace_content_hash(w.generate(kN, 7)), trace_content_hash(w.generate(kN, 8)));
}

TEST(Workload, SpecSeedParameterOverridesArgument) {
  const Workload pinned = Workload::parse("trace:uniform,footprint=64M,seed=5");
  EXPECT_EQ(trace_content_hash(pinned.generate(kN, 1)),
            trace_content_hash(pinned.generate(kN, 2)));
}

// --------------------------------------------------------- golden corpus

// One pinned 64-bit content hash per generator family (and per layout
// variation). These must match on every platform/compiler — the CI
// corpus-hash job asserts the same equality between gcc and clang builds.
TEST(WorkloadGolden, FamilyContentHashesPinned) {
  const std::vector<std::pair<std::string, std::uint64_t>> golden = {
      {"trace:zipfian,footprint=64M,theta=0.99", 0xd3573966a43b5c4dULL},
      {"trace:scrambled,footprint=64M,theta=0.99", 0x7b1853c2fba097d0ULL},
      {"trace:latest,footprint=64M,theta=0.99", 0xeb6dae10c3d4ac69ULL},
      {"trace:exponential,footprint=64M", 0x8f1472146fd7e477ULL},
      {"trace:uniform,footprint=64M", 0xfa8513d784b9d7dbULL},
      {"trace:sequential,footprint=64M,stride=4", 0x53614ce97d4b2a5bULL},
      {"trace:ycsb-a,footprint=64M", 0xb5c713e2e0b1d592ULL},
      {"trace:ycsb-b,footprint=64M", 0xbd1573be8951e3a0ULL},
      {"trace:ycsb-c,footprint=64M", 0xa9c6606cbbe457ebULL},
      {"trace:ycsb-d,footprint=64M", 0x0d29d3e1024cc66cULL},
      {"trace:ycsb-e,footprint=64M,scan=16", 0xed171b01f8e42e6eULL},
      {"trace:ycsb-f,footprint=64M", 0x59cbf11d36b993deULL},
      {"trace:uniform,footprint=64M,write=0.2", 0xf1a078c3aaa29d88ULL},
      {"trace:zipfian,footprint=256M,theta=0.99,layout=hash", 0xf9778abacaf33a21ULL},
      {"trace:scrambled,footprint=64M,theta=0.99,layout=chase", 0xd078106ae363489bULL},
      {"trace:ycsb-b,footprint=64M,layout=btree", 0x3a76f9ddb61fcfa7ULL},
      {"trace:ycsb-c,footprint=64M,layout=graph", 0x070dbc5c5778a386ULL},
  };
  for (const auto& [spec, expect] : golden) {
    EXPECT_EQ(hash_of(spec), expect) << spec;
  }
}

// "scrambled-zipfian" is an alias of "scrambled": identical streams.
TEST(WorkloadGolden, ScrambledZipfianAliasSameStream) {
  EXPECT_EQ(hash_of("trace:scrambled-zipfian,footprint=64M,theta=0.99"),
            hash_of("trace:scrambled,footprint=64M,theta=0.99"));
}

// --------------------------------------------------------- family behavior

TEST(WorkloadFamilies, YcsbMixRatios) {
  // layout=direct maps one op to one access, so the write fraction of the
  // trace equals the mix's update fraction. (The default hash layout emits
  // multi-access probe bursts per op, which dilutes the raw fraction.)
  const MemoryTrace b =
      Workload::parse("trace:ycsb-b,footprint=64M,layout=direct").generate(50000, 3);
  std::size_t writes = 0;
  for (const MemoryAccess& a : b) writes += a.is_write ? 1 : 0;
  const double frac = static_cast<double>(writes) / static_cast<double>(b.size());
  EXPECT_NEAR(frac, 0.05, 0.01);

  // YCSB-C is read-only — in every layout.
  const MemoryTrace c = Workload::parse("trace:ycsb-c,footprint=64M").generate(20000, 3);
  for (const MemoryAccess& a : c) ASSERT_FALSE(a.is_write);

  // YCSB-A is 50/50: roughly half the accesses are writes.
  const MemoryTrace a50 =
      Workload::parse("trace:ycsb-a,footprint=64M,layout=direct").generate(50000, 3);
  writes = 0;
  for (const MemoryAccess& a : a50) writes += a.is_write ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(writes) / a50.size(), 0.5, 0.05);
}

TEST(WorkloadFamilies, SequentialStrideIsExact) {
  const MemoryTrace t =
      Workload::parse("trace:sequential,footprint=64M,stride=4").generate(1000, 9);
  for (std::size_t i = 1; i < t.size(); ++i) {
    // Direct layout: key * 64 offsets from the array base; stride 4 keys.
    EXPECT_EQ(t[i].addr - t[i - 1].addr, 4 * 64u);
  }
}

TEST(WorkloadFamilies, MonotonicInstrIdsAndLayoutBases) {
  for (const char* spec :
       {"trace:zipfian,footprint=64M", "trace:zipfian,footprint=64M,layout=hash",
        "trace:zipfian,footprint=64M,layout=chase", "trace:zipfian,footprint=64M,layout=btree",
        "trace:zipfian,footprint=64M,layout=graph"}) {
    const MemoryTrace t = Workload::parse(spec).generate(5000, 11);
    ASSERT_EQ(t.size(), 5000u) << spec;
    for (std::size_t i = 1; i < t.size(); ++i) {
      ASSERT_GE(t[i].instr_id, t[i - 1].instr_id) << spec;
    }
  }
}

// ------------------------------------------------------------- trace files

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "dart_trace_file_test";
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "t.dtrc").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::uint8_t> slurp() {
    std::ifstream in(path_, std::ios::binary);
    return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                     std::istreambuf_iterator<char>());
  }
  void dump(const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(TraceFileTest, RoundTripPreservesEveryRecordAndHash) {
  const MemoryTrace t = Workload::parse("trace:ycsb-a,footprint=64M").generate(5000, 13);
  write_trace_file(path_, t);
  const MemoryTrace back = read_trace_file(path_);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back[i].instr_id, t[i].instr_id);
    EXPECT_EQ(back[i].pc, t[i].pc);
    EXPECT_EQ(back[i].addr, t[i].addr);
    EXPECT_EQ(back[i].is_write, t[i].is_write);
  }
  EXPECT_EQ(trace_content_hash(back), trace_content_hash(t));

  // And the tracefile: workload spec replays it (wrapping past the end).
  const Workload w = Workload::parse("tracefile:path=" + path_);
  const MemoryTrace replay = w.generate(6000, 0);
  ASSERT_EQ(replay.size(), 6000u);
  EXPECT_EQ(replay[0].addr, t[0].addr);
  EXPECT_EQ(replay[5000].addr, t[0].addr);           // wrapped
  EXPECT_GT(replay[5000].instr_id, replay[4999].instr_id);  // instr ids continue
}

TEST_F(TraceFileTest, EmptyTraceRoundTrips) {
  write_trace_file(path_, {});
  EXPECT_TRUE(read_trace_file(path_).empty());
}

TEST_F(TraceFileTest, StreamingReaderCountsAndStops) {
  const MemoryTrace t = Workload::parse("trace:uniform,footprint=64M").generate(100, 1);
  write_trace_file(path_, t);
  TraceFileReader reader(path_);
  EXPECT_EQ(reader.count(), 100u);
  MemoryAccess a;
  std::size_t n = 0;
  while (reader.next(a)) ++n;
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(reader.consumed(), 100u);
  EXPECT_FALSE(reader.next(a));  // idempotent at EOF
}

TEST_F(TraceFileTest, MissingFileThrowsWithPath) {
  try {
    read_trace_file((dir_ / "nope.dtrc").string());
    FAIL() << "expected ArtifactError";
  } catch (const io::ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("nope.dtrc"), std::string::npos);
  }
}

TEST_F(TraceFileTest, BadMagicAndVersionRejected) {
  const MemoryTrace t = Workload::parse("trace:uniform,footprint=64M").generate(4, 1);
  write_trace_file(path_, t);
  std::vector<std::uint8_t> bytes = slurp();
  std::vector<std::uint8_t> magic = bytes;
  magic[0] ^= 0xff;
  dump(magic);
  EXPECT_THROW(read_trace_file(path_), io::ArtifactError);
  std::vector<std::uint8_t> version = bytes;
  version[4] = 99;
  dump(version);
  EXPECT_THROW(read_trace_file(path_), io::ArtifactError);
}

TEST_F(TraceFileTest, TruncationReportsByteOffset) {
  const MemoryTrace t = Workload::parse("trace:uniform,footprint=64M").generate(16, 1);
  write_trace_file(path_, t);
  std::vector<std::uint8_t> bytes = slurp();
  bytes.resize(bytes.size() - 20);  // clip the checksum + part of a record
  dump(bytes);
  try {
    read_trace_file(path_);
    FAIL() << "expected ArtifactError";
  } catch (const io::ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos) << e.what();
  }
}

TEST_F(TraceFileTest, HeaderShortReadRejected) {
  dump({0x44, 0x54, 0x52, 0x43, 0x01, 0x00});  // magic + half a version
  EXPECT_THROW(read_trace_file(path_), io::ArtifactError);
}

TEST_F(TraceFileTest, CorruptFlagsByteRejected) {
  const MemoryTrace t = Workload::parse("trace:uniform,footprint=64M").generate(8, 1);
  write_trace_file(path_, t);
  std::vector<std::uint8_t> bytes = slurp();
  // Record 3's flags byte: header + 3 full records + 24 bytes in.
  bytes[kTraceFileHeaderBytes + 3 * kTraceFileRecordBytes + 24] = 0x80;
  dump(bytes);
  try {
    read_trace_file(path_);
    FAIL() << "expected ArtifactError";
  } catch (const io::ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("flags"), std::string::npos) << e.what();
  }
}

TEST_F(TraceFileTest, PayloadCorruptionFailsChecksum) {
  const MemoryTrace t = Workload::parse("trace:uniform,footprint=64M").generate(8, 1);
  write_trace_file(path_, t);
  std::vector<std::uint8_t> bytes = slurp();
  bytes[kTraceFileHeaderBytes + 5] ^= 0x01;  // flip one addr bit in record 0
  dump(bytes);
  try {
    read_trace_file(path_);
    FAIL() << "expected ArtifactError";
  } catch (const io::ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST_F(TraceFileTest, TrailingGarbageRejected) {
  const MemoryTrace t = Workload::parse("trace:uniform,footprint=64M").generate(8, 1);
  write_trace_file(path_, t);
  std::vector<std::uint8_t> bytes = slurp();
  bytes.push_back(0xab);
  dump(bytes);
  EXPECT_THROW(read_trace_file(path_), io::ArtifactError);
}

TEST_F(TraceFileTest, CountOverflowRejectedBeforeAllocation) {
  // A header declaring 2^61 records must fail fast on truncation, not
  // attempt to allocate.
  std::vector<std::uint8_t> bytes = {0x44, 0x54, 0x52, 0x43, 0x01, 0x00, 0x00, 0x00,
                                     0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x20};
  dump(bytes);
  EXPECT_THROW(read_trace_file(path_), io::ArtifactError);
}

}  // namespace
}  // namespace dart::trace
