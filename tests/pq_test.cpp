// Tests for the product-quantization substrate: k-means, encoders, and the
// classic PQ train/query path of §II-B.
#include <gtest/gtest.h>

#include <cmath>

#include "pq/encoder.hpp"
#include "pq/kmeans.hpp"
#include "pq/pq.hpp"

namespace dart::pq {
namespace {

/// Well-separated clusters: k groups at distance >> intra-cluster spread.
nn::Tensor clustered_data(std::size_t n, std::size_t v, std::size_t k, std::uint64_t seed) {
  nn::Tensor data = nn::Tensor::randn({n, v}, 0.05f, seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % k;
    for (std::size_t j = 0; j < v; ++j) {
      data.at(i, j) += static_cast<float>(c) * 2.0f + static_cast<float>(j % 2);
    }
  }
  return data;
}

TEST(KMeans, RecoversSeparatedClusters) {
  const std::size_t k = 4;
  nn::Tensor data = clustered_data(400, 3, k, 1);
  KMeansResult res = kmeans(data, k, {20, 1e-6, 7});
  // Every point must be close to its centroid (within the cluster spread).
  for (std::size_t i = 0; i < data.dim(0); ++i) {
    const float* row = data.row(i);
    const float* c = res.centroids.row(res.assignment[i]);
    float d = 0.0f;
    for (std::size_t j = 0; j < 3; ++j) d += (row[j] - c[j]) * (row[j] - c[j]);
    EXPECT_LT(std::sqrt(d), 0.8f);
  }
}

TEST(KMeans, DeterministicForSeed) {
  nn::Tensor data = clustered_data(100, 4, 3, 2);
  KMeansResult a = kmeans(data, 8, {10, 1e-4, 5});
  KMeansResult b = kmeans(data, 8, {10, 1e-4, 5});
  for (std::size_t i = 0; i < a.centroids.numel(); ++i) {
    EXPECT_EQ(a.centroids[i], b.centroids[i]);
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  nn::Tensor data = nn::Tensor::randn({500, 4}, 1.0f, 3);
  const double i2 = kmeans(data, 2, {15, 1e-6, 9}).inertia;
  const double i16 = kmeans(data, 16, {15, 1e-6, 9}).inertia;
  EXPECT_LT(i16, i2);
}

TEST(KMeans, HandlesFewerRowsThanCentroids) {
  nn::Tensor data = nn::Tensor::randn({3, 2}, 1.0f, 4);
  KMeansResult res = kmeans(data, 8, {5, 1e-4, 1});
  EXPECT_EQ(res.centroids.dim(0), 8u);
  for (auto a : res.assignment) EXPECT_LT(a, 8u);
}

TEST(KMeans, RejectsBadInput) {
  nn::Tensor bad({2, 2, 2});
  EXPECT_THROW(kmeans(bad, 2), std::invalid_argument);
  nn::Tensor ok({4, 2});
  EXPECT_THROW(kmeans(ok, 0), std::invalid_argument);
}

TEST(ExactEncoder, PicksNearestPrototype) {
  nn::Tensor protos({3, 2});
  protos.at(0, 0) = 0.0f;
  protos.at(1, 0) = 5.0f;
  protos.at(2, 0) = 10.0f;
  ExactEncoder enc(protos);
  float q1[2] = {1.0f, 0.0f};
  float q2[2] = {7.9f, 0.0f};
  EXPECT_EQ(enc.encode(q1), 0u);
  EXPECT_EQ(enc.encode(q2), 2u);
}

class HashTreeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashTreeSizes, LogDepthAndValidIndices) {
  const std::size_t k = GetParam();
  nn::Tensor data = clustered_data(std::max<std::size_t>(4 * k, 64), 4, k, 5);
  KMeansResult res = kmeans(data, k, {10, 1e-4, 3});
  HashTreeEncoder enc(res.centroids);
  std::size_t expect_depth = 0;
  while ((1ULL << expect_depth) < k) ++expect_depth;
  EXPECT_EQ(enc.comparisons_per_encode(), expect_depth);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_LT(enc.encode(data.row(i)), k);
  }
}

TEST_P(HashTreeSizes, AgreesWithExactOnClusteredData) {
  const std::size_t k = GetParam();
  nn::Tensor data = clustered_data(std::max<std::size_t>(8 * k, 128), 4, k, 6);
  KMeansResult res = kmeans(data, k, {15, 1e-5, 11});
  HashTreeEncoder tree(res.centroids);
  ExactEncoder exact(res.centroids);
  std::size_t agree = 0;
  const std::size_t probes = 128;
  for (std::size_t i = 0; i < probes; ++i) {
    if (tree.encode(data.row(i)) == exact.encode(data.row(i))) ++agree;
  }
  // The hash tree is an approximation, but on well-clustered data it should
  // agree with exact assignment for the large majority of points.
  EXPECT_GT(agree, probes * 6 / 10);
}

INSTANTIATE_TEST_SUITE_P(PrototypeCounts, HashTreeSizes, ::testing::Values(2, 4, 8, 16, 32));

TEST(ProductQuantizer, ReconstructionIsNearestPrototypeConcat) {
  nn::Tensor data = clustered_data(200, 8, 4, 7);
  PqConfig cfg;
  cfg.num_subspaces = 2;
  cfg.num_prototypes = 8;
  ProductQuantizer pq(data, cfg);
  const auto rec = pq.reconstruct(data.row(0));
  ASSERT_EQ(rec.size(), 8u);
  // Reconstruction error must be bounded by cluster spread.
  float err = 0.0f;
  for (std::size_t j = 0; j < 8; ++j) {
    err += (rec[j] - data.at(0, j)) * (rec[j] - data.at(0, j));
  }
  EXPECT_LT(std::sqrt(err), 1.0f);
}

TEST(ProductQuantizer, DotProductApproximation) {
  nn::Tensor data = clustered_data(500, 8, 8, 8);
  PqConfig cfg;
  cfg.num_subspaces = 4;
  cfg.num_prototypes = 16;
  ProductQuantizer pq(data, cfg);
  nn::Tensor w = nn::Tensor::randn({8}, 1.0f, 9);
  const auto table = pq.build_table(w.data());
  double max_err = 0.0;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto code = pq.encode(data.row(i));
    const float approx = ProductQuantizer::query(table, code, cfg.num_prototypes);
    float exact = 0.0f;
    for (std::size_t j = 0; j < 8; ++j) exact += data.at(i, j) * w[j];
    max_err = std::max(max_err, static_cast<double>(std::fabs(approx - exact)));
  }
  EXPECT_LT(max_err, 1.5);  // bounded by quantization error * |w|
}

class PqPrototypeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PqPrototypeSweep, ErrorShrinksAsPrototypesGrow) {
  // Property: average quantization error with K prototypes is no worse than
  // with K/4 prototypes (monotone improvement, Fig. 8's mechanism).
  const std::size_t k = GetParam();
  nn::Tensor data = nn::Tensor::randn({600, 8}, 1.0f, 10);
  auto avg_err = [&](std::size_t protos) {
    PqConfig cfg;
    cfg.num_subspaces = 2;
    cfg.num_prototypes = protos;
    ProductQuantizer pq(data, cfg);
    double err = 0.0;
    for (std::size_t i = 0; i < 200; ++i) {
      const auto rec = pq.reconstruct(data.row(i));
      for (std::size_t j = 0; j < 8; ++j) {
        err += (rec[j] - data.at(i, j)) * (rec[j] - data.at(i, j));
      }
    }
    return err;
  };
  EXPECT_LE(avg_err(k), avg_err(std::max<std::size_t>(1, k / 4)) * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Ks, PqPrototypeSweep, ::testing::Values(8, 16, 32, 64));

TEST(ProductQuantizer, RejectsIndivisibleSubspaces) {
  nn::Tensor data({10, 7});
  PqConfig cfg;
  cfg.num_subspaces = 2;
  EXPECT_THROW(ProductQuantizer(data, cfg), std::invalid_argument);
}

TEST(ProductQuantizer, EncodeAllMatchesEncode) {
  nn::Tensor data = clustered_data(64, 4, 4, 11);
  PqConfig cfg;
  cfg.num_subspaces = 2;
  cfg.num_prototypes = 4;
  ProductQuantizer pq(data, cfg);
  const auto codes = pq.encode_all(data);
  for (std::size_t i = 0; i < 64; ++i) {
    const auto one = pq.encode(data.row(i));
    for (std::size_t c = 0; c < 2; ++c) EXPECT_EQ(codes[i * 2 + c], one[c]);
  }
}

}  // namespace
}  // namespace dart::pq
