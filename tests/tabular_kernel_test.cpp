// Tests for the tabularization kernels (§V): linear kernel with bias
// folding, attention kernel with double quantization, and the sigmoid LUT.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.hpp"
#include "nn/ops.hpp"
#include "tabular/attention_kernel.hpp"
#include "tabular/linear_kernel.hpp"
#include "tabular/lut.hpp"

namespace dart::tabular {
namespace {

TEST(LinearKernel, ExactWhenInputsAreThePrototypes) {
  // With K >= distinct inputs, quantization is lossless and the kernel must
  // reproduce W x + b exactly (up to float rounding).
  const std::size_t di = 4, dout = 3;
  nn::Tensor w = nn::Tensor::randn({dout, di}, 1.0f, 1);
  nn::Tensor b = nn::Tensor::randn({dout}, 1.0f, 2);
  nn::Tensor rows({4, di});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < di; ++j) rows.at(i, j) = static_cast<float>(i * 10 + j);
  }
  KernelConfig cfg;
  cfg.num_prototypes = 4;
  cfg.num_subspaces = 2;
  cfg.kmeans_iters = 30;
  LinearKernel kernel(w, b, rows, cfg);
  nn::Tensor out = kernel.query(rows);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t o = 0; o < dout; ++o) {
      float exact = b[o];
      for (std::size_t j = 0; j < di; ++j) exact += w.at(o, j) * rows.at(i, j);
      EXPECT_NEAR(out.at(i, o), exact, 1e-2f);
    }
  }
}

TEST(LinearKernel, BiasIsFoldedIntoSubspaceZero) {
  // All-zero weights: output must equal the bias for any input.
  nn::Tensor w({2, 4});
  nn::Tensor b({2});
  b[0] = 3.5f;
  b[1] = -1.25f;
  nn::Tensor rows = nn::Tensor::randn({64, 4}, 1.0f, 3);
  KernelConfig cfg;
  cfg.num_prototypes = 8;
  cfg.num_subspaces = 2;
  LinearKernel kernel(w, b, rows, cfg);
  nn::Tensor out = kernel.query(rows);
  for (std::size_t i = 0; i < out.dim(0); ++i) {
    EXPECT_FLOAT_EQ(out.at(i, 0), 3.5f);
    EXPECT_FLOAT_EQ(out.at(i, 1), -1.25f);
  }
}

class LinearKernelK : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LinearKernelK, ApproximationImprovesWithK) {
  const std::size_t k = GetParam();
  const std::size_t di = 8, dout = 4;
  nn::Tensor w = nn::Tensor::randn({dout, di}, 0.5f, 4);
  nn::Tensor b = nn::Tensor::randn({dout}, 0.5f, 5);
  nn::Tensor rows = nn::Tensor::randn({512, di}, 1.0f, 6);
  auto mse_for = [&](std::size_t protos) {
    KernelConfig cfg;
    cfg.num_prototypes = protos;
    cfg.num_subspaces = 2;
    LinearKernel kernel(w, b, rows, cfg);
    nn::Tensor approx = kernel.query(rows);
    double mse = 0.0;
    for (std::size_t i = 0; i < rows.dim(0); ++i) {
      for (std::size_t o = 0; o < dout; ++o) {
        float exact = b[o];
        for (std::size_t j = 0; j < di; ++j) exact += w.at(o, j) * rows.at(i, j);
        const double d = approx.at(i, o) - exact;
        mse += d * d;
      }
    }
    return mse;
  };
  EXPECT_LE(mse_for(k), mse_for(std::max<std::size_t>(2, k / 8)) * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Ks, LinearKernelK, ::testing::Values(16, 32, 64, 128));

TEST(LinearKernel, TableBytesMatchFormula) {
  nn::Tensor w({6, 8}), b({6});
  nn::Tensor rows = nn::Tensor::randn({32, 8}, 1.0f, 7);
  KernelConfig cfg;
  cfg.num_prototypes = 16;
  cfg.num_subspaces = 4;
  LinearKernel kernel(w, b, rows, cfg);
  EXPECT_EQ(kernel.table_bytes(), 6u * 16u * 4u * sizeof(float));
}

TEST(LinearKernel, Query3dPreservesBatchShape) {
  nn::Tensor w = nn::Tensor::randn({3, 4}, 1.0f, 8);
  nn::Tensor b({3});
  nn::Tensor rows = nn::Tensor::randn({40, 4}, 1.0f, 9);
  KernelConfig cfg;
  cfg.num_prototypes = 8;
  cfg.num_subspaces = 2;
  LinearKernel kernel(w, b, rows, cfg);
  nn::Tensor x = nn::Tensor::randn({5, 8, 4}, 1.0f, 10);
  nn::Tensor y = kernel.query3d(x);
  ASSERT_EQ(y.ndim(), 3u);
  EXPECT_EQ(y.dim(0), 5u);
  EXPECT_EQ(y.dim(1), 8u);
  EXPECT_EQ(y.dim(2), 3u);
}

TEST(LinearKernel, RejectsBadShapes) {
  nn::Tensor w({3, 4}), b({3});
  nn::Tensor rows({10, 5});  // DI mismatch
  KernelConfig cfg;
  EXPECT_THROW(LinearKernel(w, b, rows, cfg), std::invalid_argument);
  nn::Tensor rows2({10, 4});
  cfg.num_subspaces = 3;  // does not divide 4
  EXPECT_THROW(LinearKernel(w, b, rows2, cfg), std::invalid_argument);
}

// ------------------------------------------------------------------ attention

/// Exact single-head attention with the kernel's sigmoid activation (Eq. 14
/// semantics) for comparison.
nn::Tensor exact_attention_sigmoid(const nn::Tensor& q, const nn::Tensor& k,
                                   const nn::Tensor& v) {
  const std::size_t t = q.dim(0), dk = q.dim(1);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  nn::Tensor scores, out({t, dk});
  nn::ops::matmul_nt(q, k, scores);
  for (std::size_t i = 0; i < scores.numel(); ++i) {
    scores[i] = nn::ops::sigmoid(scores[i] * scale);
  }
  nn::Tensor res;
  nn::ops::matmul(scores, v, res);
  return res;
}

AttentionKernelConfig attn_cfg(std::size_t k, std::size_t ck, std::size_t ct) {
  AttentionKernelConfig cfg;
  cfg.num_prototypes = k;
  cfg.ck = ck;
  cfg.ct = ct;
  cfg.kmeans_iters = 15;
  return cfg;
}

TEST(AttentionKernel, ApproxScoresTrackExactScores) {
  const std::size_t n = 256, t = 4, dk = 8;
  nn::Tensor q = nn::Tensor::randn({n, t, dk}, 1.0f, 11);
  nn::Tensor k = nn::Tensor::randn({n, t, dk}, 1.0f, 12);
  nn::Tensor v = nn::Tensor::randn({n, t, dk}, 1.0f, 13);
  AttentionKernel kernel(q, k, v, attn_cfg(96, 2, 2));
  // Average correlation between exact and approximated scores on samples.
  double cos_sum = 0.0;
  for (std::size_t s = 0; s < 32; ++s) {
    nn::Tensor qs({t, dk}), ks({t, dk});
    std::copy(q.data() + s * t * dk, q.data() + (s + 1) * t * dk, qs.data());
    std::copy(k.data() + s * t * dk, k.data() + (s + 1) * t * dk, ks.data());
    nn::Tensor approx = kernel.approx_scores(qs, ks);
    nn::Tensor exact;
    nn::ops::matmul_nt(qs, ks, exact);
    cos_sum += nn::ops::cosine_similarity(approx, exact);
  }
  EXPECT_GT(cos_sum / 32.0, 0.85);
}

TEST(AttentionKernel, QueryApproximatesSigmoidAttention) {
  const std::size_t n = 384, t = 4, dk = 8;
  nn::Tensor q = nn::Tensor::randn({n, t, dk}, 0.7f, 14);
  nn::Tensor k = nn::Tensor::randn({n, t, dk}, 0.7f, 15);
  nn::Tensor v = nn::Tensor::randn({n, t, dk}, 0.7f, 16);
  AttentionKernel kernel(q, k, v, attn_cfg(128, 2, 2));
  double cos_sum = 0.0;
  for (std::size_t s = 0; s < 32; ++s) {
    nn::Tensor qs({t, dk}), ks({t, dk}), vs({t, dk});
    std::copy(q.data() + s * t * dk, q.data() + (s + 1) * t * dk, qs.data());
    std::copy(k.data() + s * t * dk, k.data() + (s + 1) * t * dk, ks.data());
    std::copy(v.data() + s * t * dk, v.data() + (s + 1) * t * dk, vs.data());
    nn::Tensor approx = kernel.query(qs, ks, vs);
    nn::Tensor exact = exact_attention_sigmoid(qs, ks, vs);
    cos_sum += nn::ops::cosine_similarity(approx, exact);
  }
  EXPECT_GT(cos_sum / 32.0, 0.8);
}

TEST(AttentionKernel, SoftmaxAtQueryModeWorks) {
  const std::size_t n = 256, t = 4, dk = 8;
  nn::Tensor q = nn::Tensor::randn({n, t, dk}, 0.7f, 17);
  nn::Tensor k = nn::Tensor::randn({n, t, dk}, 0.7f, 18);
  nn::Tensor v = nn::Tensor::randn({n, t, dk}, 0.7f, 19);
  AttentionKernelConfig cfg = attn_cfg(64, 2, 2);
  cfg.activation = AttentionActivation::kSoftmaxAtQuery;
  AttentionKernel kernel(q, k, v, cfg);
  nn::Tensor qs({t, dk}), ks({t, dk}), vs({t, dk});
  std::copy(q.data(), q.data() + t * dk, qs.data());
  std::copy(k.data(), k.data() + t * dk, ks.data());
  std::copy(v.data(), v.data() + t * dk, vs.data());
  nn::Tensor out = kernel.query(qs, ks, vs);
  // Softmax attention output is a convex combination of V rows: bounded by
  // V's extremes per column.
  for (std::size_t d = 0; d < dk; ++d) {
    float lo = vs.at(0, d), hi = vs.at(0, d);
    for (std::size_t tt = 1; tt < t; ++tt) {
      lo = std::min(lo, vs.at(tt, d));
      hi = std::max(hi, vs.at(tt, d));
    }
    for (std::size_t tt = 0; tt < t; ++tt) {
      EXPECT_GE(out.at(tt, d), lo - 1.0f);
      EXPECT_LE(out.at(tt, d), hi + 1.0f);
    }
  }
}

TEST(AttentionKernel, TableBytesAre2KSquaredTimesC) {
  const std::size_t n = 64, t = 4, dk = 8, k = 16;
  nn::Tensor q = nn::Tensor::randn({n, t, dk}, 1.0f, 20);
  nn::Tensor kk = nn::Tensor::randn({n, t, dk}, 1.0f, 21);
  nn::Tensor v = nn::Tensor::randn({n, t, dk}, 1.0f, 22);
  AttentionKernel kernel(q, kk, v, attn_cfg(k, 2, 2));
  // QK table: Ck * K^2; QKV table: Ct * K^2 (the 2K^2 optimization vs K^3).
  EXPECT_EQ(kernel.table_bytes(), (2u + 2u) * k * k * sizeof(float));
}

TEST(AttentionKernel, RejectsIndivisibleDims) {
  nn::Tensor q({4, 4, 6}), k({4, 4, 6}), v({4, 4, 6});
  EXPECT_THROW(AttentionKernel(q, k, v, attn_cfg(8, 4, 2)), std::invalid_argument);
  nn::Tensor q2({4, 5, 8}), k2({4, 5, 8}), v2({4, 5, 8});
  EXPECT_THROW(AttentionKernel(q2, k2, v2, attn_cfg(8, 2, 2)), std::invalid_argument);
}

// ----------------------------------------------------------------------- LUT

TEST(SigmoidLut, BoundedErrorAcrossRange) {
  SigmoidLut lut;
  float max_err = 0.0f;
  for (float x = -10.0f; x <= 10.0f; x += 0.003f) {
    const float exact = 1.0f / (1.0f + std::exp(-x));
    max_err = std::max(max_err, std::fabs(lut(x) - exact));
  }
  // Cell width is 1/16; worst-case error ~ width/2 * max slope (1/4) plus
  // the clamp tails.
  EXPECT_LT(max_err, 0.02f);
}

TEST(SigmoidLut, MonotonicAndClamped) {
  SigmoidLut lut;
  EXPECT_EQ(lut(-100.0f), 0.0f);
  EXPECT_EQ(lut(100.0f), 1.0f);
  float prev = -1.0f;
  for (float x = -9.0f; x <= 9.0f; x += 0.25f) {
    EXPECT_GE(lut(x), prev);
    prev = lut(x);
  }
}

TEST(SigmoidLut, ApplyMatchesScalar) {
  SigmoidLut lut;
  nn::Tensor x = nn::Tensor::randn({32}, 3.0f, 23);
  nn::Tensor y = lut.apply(x);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_FLOAT_EQ(y[i], lut(x[i]));
}

}  // namespace
}  // namespace dart::tabular
