// Chaos tests for the crash-safe resumable sweep engine (DESIGN.md §13):
// the durable result store (torn-tail recovery, injected tail corruption,
// crash latching, compaction), the retry/quarantine harness (fail-cell,
// slow-cell + wall-clock timeout), crash-and-resume determinism (the
// resumed merged CSV is byte-identical to an uninterrupted run and reuses
// committed cells), and the sharded-replay merge contract (bit-exact under
// full-prefix warmup, bounded under partial warmup).
//
// The invariant under test throughout: every grid cell resolves to exactly
// one of {done, failed, skipped} and the three counts sum to the grid size
// — faults may slow, quarantine, or crash the sweep, but may never lose a
// cell silently. Runs under ThreadSanitizer in the serve-chaos CI job.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/result_store.hpp"
#include "sim/registry.hpp"
#include "sim/shard_replay.hpp"
#include "sim/simulator.hpp"
#include "trace/workloads.hpp"

namespace dart::core {
namespace {

/// Fresh per-test scratch directory under the system temp root.
std::string scratch_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("dart_sweep_test_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

CellRecord make_record(std::uint64_t key, const std::string& app, const std::string& pf,
                       std::uint64_t issued) {
  CellRecord rec;
  rec.key = key;
  rec.status = CellStatus::kDone;
  rec.attempts = 1;
  rec.cell.spec = pf;
  rec.cell.prefetcher = pf;
  rec.cell.app = app;
  rec.cell.baseline_ipc = 1.25;
  rec.cell.ipc_improvement = 0.0625;
  rec.cell.stats.pf_issued = issued;
  rec.cell.stats.instructions = 1000 + issued;
  rec.cell.stats.cycles = 2000 + issued;
  rec.cell.status = rec.status;
  rec.cell.attempts = rec.attempts;
  return rec;
}

/// A deliberately tiny grid: 2 synthetic workloads x 2 rule-based
/// prefetchers, no NN training anywhere, a few thousand replayed accesses.
ExperimentSpec tiny_grid() {
  ExperimentSpec spec;
  spec.workloads = {"trace:sequential,footprint=1M,stride=4", "trace:uniform,footprint=1M"};
  spec.prefetchers = {"BO", "ISB"};
  spec.pipeline = PipelineOptions::bench_defaults();
  spec.pipeline.raw_accesses = 4000;
  spec.pipeline.prep.max_samples = 200;
  spec.parallel = false;  // grid-order commits: deterministic crash points
  spec.sweep.cell_retries = 0;
  spec.sweep.backoff_ms = 0;
  return spec;
}

class SweepChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { common::fault_injector().clear(); }
};

// ------------------------------------------------------------- result store

TEST_F(SweepChaosTest, StoreRoundTripAndLastWins) {
  const std::string dir = scratch_dir("roundtrip");
  {
    ResultStore store(dir);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.recovery().truncated);
    store.append(make_record(1, "app-a", "BO", 10));
    store.append(make_record(2, "app-a", "ISB", 20));
    store.append(make_record(1, "app-a", "BO", 30));  // supersedes key 1
    EXPECT_EQ(store.size(), 2u);
  }
  ResultStore store(dir);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.recovery().records, 3u);  // all three frames intact
  EXPECT_FALSE(store.recovery().truncated);
  CellRecord rec;
  ASSERT_TRUE(store.find(1, &rec));
  EXPECT_EQ(rec.cell.stats.pf_issued, 30u);  // last record won
  EXPECT_EQ(rec.cell.prefetcher, "BO");
  EXPECT_EQ(rec.cell.baseline_ipc, 1.25);
  ASSERT_TRUE(store.find(2, &rec));
  EXPECT_EQ(rec.cell.stats.pf_issued, 20u);
  EXPECT_FALSE(store.find(3, &rec));
}

TEST_F(SweepChaosTest, StoreTornTailTruncatedNeverRefused) {
  const std::string dir = scratch_dir("torntail");
  {
    ResultStore store(dir);
    store.append(make_record(1, "a", "BO", 1));
    store.append(make_record(2, "a", "ISB", 2));
  }
  // Simulate a crash mid-append: garbage after the last intact record.
  const std::string log = dir + "/results.log";
  {
    std::ofstream out(log, std::ios::binary | std::ios::app);
    const char garbage[] = "DRS1\x40\x00\x00\x00torn";  // valid magic, short body
    out.write(garbage, sizeof(garbage) - 1);
  }
  {
    ResultStore store(dir);
    EXPECT_EQ(store.size(), 2u);  // both real records recovered
    EXPECT_TRUE(store.recovery().truncated);
    EXPECT_GT(store.recovery().dropped_bytes, 0u);
    // The store stays writable after recovery.
    store.append(make_record(3, "a", "BO", 3));
  }
  // The torn tail was physically truncated: the next open is clean.
  ResultStore store(dir);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_FALSE(store.recovery().truncated);
}

TEST_F(SweepChaosTest, StoreCorruptTailFaultDropsLastRecordOnly) {
  const std::string dir = scratch_dir("corrupttail");
  {
    ResultStore store(dir);
    store.append(make_record(1, "a", "BO", 1));
    store.append(make_record(2, "a", "ISB", 2));
    store.append(make_record(3, "a", "BO", 3));
  }
  common::fault_injector().install("corrupt-store-tail:bytes=5");
  {
    ResultStore store(dir);
    EXPECT_EQ(store.size(), 2u);  // the chopped record is gone, rest intact
    EXPECT_TRUE(store.recovery().truncated);
    EXPECT_EQ(common::fault_injector().counters().stores_mutated, 1u);
    CellRecord rec;
    EXPECT_TRUE(store.find(1, &rec));
    EXPECT_TRUE(store.find(2, &rec));
    EXPECT_FALSE(store.find(3, &rec));
  }
  common::fault_injector().clear();
  ResultStore store(dir);  // recovery truncated the file: clean reopen
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.recovery().truncated);
}

TEST_F(SweepChaosTest, StoreCrashAfterCommitLatchesAndSurvivesResume) {
  const std::string dir = scratch_dir("crashlatch");
  common::fault_injector().install("crash-after-commit:after=2");
  {
    ResultStore store(dir);
    store.append(make_record(1, "a", "BO", 1));  // commit #1: fine
    EXPECT_THROW(store.append(make_record(2, "a", "ISB", 2)), SweepCrash);
    // The latch: every further append fails too (parallel workers stop).
    EXPECT_THROW(store.append(make_record(3, "a", "BO", 3)), SweepCrash);
    EXPECT_EQ(common::fault_injector().counters().crashes, 1u);
  }
  common::fault_injector().clear();
  // Both commits that reached the fsync are durable — including the one
  // whose append "crashed" (the fault fires after the record hit disk).
  ResultStore store(dir);
  EXPECT_EQ(store.size(), 2u);
  CellRecord rec;
  EXPECT_TRUE(store.find(2, &rec));
}

TEST_F(SweepChaosTest, StoreCompactionDropsSupersededRecords) {
  const std::string dir = scratch_dir("compact");
  ResultStore store(dir);
  for (int i = 0; i < 8; ++i) {
    store.append(make_record(1, "a", "BO", static_cast<std::uint64_t>(i)));
  }
  store.append(make_record(2, "a", "ISB", 99));
  const auto before = std::filesystem::file_size(store.log_path());
  store.compact();
  const auto after = std::filesystem::file_size(store.log_path());
  EXPECT_LT(after, before);
  EXPECT_EQ(store.size(), 2u);
  // Appending after compaction still works and survives a reopen.
  store.append(make_record(3, "a", "BO", 7));
  ResultStore reopened(dir);
  EXPECT_EQ(reopened.size(), 3u);
  CellRecord rec;
  ASSERT_TRUE(reopened.find(1, &rec));
  EXPECT_EQ(rec.cell.stats.pf_issued, 7u);  // pre-compaction last record
}

// -------------------------------------------------------- retry/quarantine

TEST_F(SweepChaosTest, FailCellQuarantinesWithoutAbortingSweep) {
  ExperimentSpec spec = tiny_grid();
  spec.sweep.store_dir = scratch_dir("quarantine");
  spec.sweep.cell_retries = 1;
  common::fault_injector().install("fail-cell:match=ISB");
  ExperimentResult result = ExperimentRunner(spec).run();

  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.count(CellStatus::kDone), 2u);
  EXPECT_EQ(result.count(CellStatus::kFailed), 2u);
  EXPECT_EQ(result.count(CellStatus::kSkipped), 0u);
  for (const auto& c : result.cells) {
    if (c.spec == "ISB") {
      EXPECT_EQ(c.status, CellStatus::kFailed);
      EXPECT_EQ(c.attempts, 2u);  // first try + one retry, both injected
      EXPECT_NE(c.error.find("fail-cell"), std::string::npos);
      EXPECT_EQ(c.stats.pf_issued, 0u);  // quarantined cells carry no stats
    } else {
      EXPECT_EQ(c.status, CellStatus::kDone);
      EXPECT_EQ(c.attempts, 1u);
      EXPECT_TRUE(c.error.empty());
    }
  }
  EXPECT_EQ(common::fault_injector().counters().cells_failed, 4u);  // 2 cells x 2 attempts

  // Quarantined cells are NOT reused on resume: they get a fresh chance,
  // and with the fault cleared they complete and supersede their record.
  common::fault_injector().clear();
  ExperimentResult resumed = ExperimentRunner(spec).run();
  EXPECT_EQ(resumed.count(CellStatus::kSkipped), 2u);  // the 2 done cells
  EXPECT_EQ(resumed.count(CellStatus::kDone), 2u);     // re-run ISB cells
  EXPECT_EQ(resumed.count(CellStatus::kFailed), 0u);
}

TEST_F(SweepChaosTest, FailCellOnceThenRetrySucceeds) {
  ExperimentSpec spec = tiny_grid();
  spec.sweep.cell_retries = 2;
  common::fault_injector().install("fail-cell:match=sequential|BO,times=1");
  ExperimentResult result = ExperimentRunner(spec).run();
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.count(CellStatus::kDone), 4u);
  EXPECT_EQ(result.count(CellStatus::kFailed), 0u);
  const ExperimentCell* cell = result.find("BO", "sequential");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->attempts, 2u);  // failed once, succeeded on retry
  EXPECT_GT(cell->stats.instructions, 0u);
}

TEST_F(SweepChaosTest, SlowCellTimeoutQuarantines) {
  ExperimentSpec spec = tiny_grid();
  spec.sweep.cell_timeout_ms = 60;
  // Delay one cell far past the timeout; the attempt thread is abandoned,
  // reaped before run() returns, and the cell is quarantined loudly.
  common::fault_injector().install("slow-cell:match=uniform|ISB,ms=400");
  ExperimentResult result = ExperimentRunner(spec).run();
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.count(CellStatus::kDone), 3u);
  EXPECT_EQ(result.count(CellStatus::kFailed), 1u);
  const ExperimentCell* cell = result.find("ISB", "uniform");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->status, CellStatus::kFailed);
  EXPECT_NE(cell->error.find("timed out"), std::string::npos);
  EXPECT_GE(common::fault_injector().counters().cells_delayed, 1u);
}

// ------------------------------------------------------- crash-and-resume

TEST_F(SweepChaosTest, CrashResumeMergedOutputByteIdentical) {
  // The clean, uninterrupted run: the reference output.
  ExperimentSpec spec = tiny_grid();
  const std::string clean_csv = scratch_dir("resume_csvs") + "/clean.csv";
  std::filesystem::create_directories(std::filesystem::path(clean_csv).parent_path());
  {
    ExperimentSpec clean = spec;
    clean.sweep.store_dir = scratch_dir("resume_clean_store");
    ExperimentResult result = ExperimentRunner(clean).run();
    ASSERT_EQ(result.count(CellStatus::kDone), 4u);
    ASSERT_TRUE(result.write_csv(clean_csv));
  }
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  };
  const std::string clean_bytes = slurp(clean_csv);
  ASSERT_FALSE(clean_bytes.empty());

  // Kill the sweep after each possible commit point, resume, and demand
  // byte-identical merged output plus actual reuse of committed cells.
  for (int after = 1; after <= 3; ++after) {
    ExperimentSpec crashing = spec;
    crashing.sweep.store_dir =
        scratch_dir("resume_store_" + std::to_string(after));
    common::fault_injector().install("crash-after-commit:after=" + std::to_string(after));
    EXPECT_THROW(ExperimentRunner(crashing).run(), SweepCrash) << "after=" << after;
    common::fault_injector().clear();

    ExperimentResult resumed = ExperimentRunner(crashing).run();
    EXPECT_EQ(resumed.cells.size(), 4u);
    // Everything committed before the crash is reused, the rest re-run.
    EXPECT_EQ(resumed.count(CellStatus::kSkipped), static_cast<std::size_t>(after));
    EXPECT_EQ(resumed.count(CellStatus::kDone), static_cast<std::size_t>(4 - after));
    EXPECT_EQ(resumed.count(CellStatus::kFailed), 0u);
    EXPECT_GE(resumed.count(CellStatus::kSkipped), 1u);

    const std::string resumed_csv =
        scratch_dir("resume_csv_" + std::to_string(after)) + "/resumed.csv";
    std::filesystem::create_directories(std::filesystem::path(resumed_csv).parent_path());
    ASSERT_TRUE(resumed.write_csv(resumed_csv));
    EXPECT_EQ(slurp(resumed_csv), clean_bytes) << "after=" << after;
  }
}

// ------------------------------------------------------------ sharded replay

TEST_F(SweepChaosTest, ShardedReplayFullWarmupBitExact) {
  const trace::Workload workload = trace::Workload::parse("trace:zipfian,footprint=4M");
  const trace::MemoryTrace trace = workload.generate(20000, 42);
  const sim::SimConfig config = PipelineOptions::bench_defaults().sim;

  sim::PrefetcherContext ctx;
  const auto bo_factory = [&ctx] { return sim::make_prefetcher("BO", ctx); };
  const sim::SimStats unsharded = [&] {
    auto pf = bo_factory();
    return sim::Simulator(config).run(trace, pf.get());
  }();

  for (std::size_t shards : {1u, 2u, 4u, 7u}) {
    sim::ShardReplayOptions options;
    options.shards = shards;
    options.warmup = sim::kFullWarmup;
    const sim::ShardedStats sharded = sim::run_sharded(config, trace, bo_factory, options);
    EXPECT_EQ(sharded.shards.size(), shards);
    // The pinned telescoping merge: bit-exact on EVERY field.
    EXPECT_EQ(sharded.merged.instructions, unsharded.instructions) << shards;
    EXPECT_EQ(sharded.merged.cycles, unsharded.cycles) << shards;
    EXPECT_EQ(sharded.merged.llc_accesses, unsharded.llc_accesses) << shards;
    EXPECT_EQ(sharded.merged.llc_hits, unsharded.llc_hits) << shards;
    EXPECT_EQ(sharded.merged.llc_demand_misses, unsharded.llc_demand_misses) << shards;
    EXPECT_EQ(sharded.merged.pf_issued, unsharded.pf_issued) << shards;
    EXPECT_EQ(sharded.merged.pf_useful, unsharded.pf_useful) << shards;
    EXPECT_EQ(sharded.merged.pf_late, unsharded.pf_late) << shards;
    EXPECT_EQ(sharded.merged.pf_dropped, unsharded.pf_dropped) << shards;
    // Shard windows tile the trace exactly.
    std::size_t covered = 0;
    for (const auto& s : sharded.shards) {
      EXPECT_EQ(s.begin, covered);
      covered = s.end;
    }
    EXPECT_EQ(covered, trace.size());
  }
  // Baseline (no prefetcher) shards exactly too.
  const sim::SimStats base = sim::Simulator(config).run(trace, nullptr);
  sim::ShardReplayOptions options;
  options.shards = 4;
  const sim::ShardedStats sharded = sim::run_sharded(config, trace, nullptr, options);
  EXPECT_EQ(sharded.merged.cycles, base.cycles);
  EXPECT_EQ(sharded.merged.llc_accesses, base.llc_accesses);
}

TEST_F(SweepChaosTest, ShardedReplayPartialWarmupWithinDocumentedBound) {
  const trace::Workload workload = trace::Workload::parse("trace:zipfian,footprint=4M");
  const trace::MemoryTrace trace = workload.generate(20000, 42);
  const sim::SimConfig config = PipelineOptions::bench_defaults().sim;

  sim::PrefetcherContext ctx;
  const auto bo_factory = [&ctx] { return sim::make_prefetcher("BO", ctx); };
  const sim::SimStats unsharded = [&] {
    auto pf = bo_factory();
    return sim::Simulator(config).run(trace, pf.get());
  }();

  sim::ShardReplayOptions options;
  options.shards = 4;
  options.warmup = 4000;  // partial: the scale-out mode (80% of a shard here)
  const sim::ShardedStats sharded = sim::run_sharded(config, trace, bo_factory, options);

  // Exact by construction: the global instruction span.
  EXPECT_EQ(sharded.merged.instructions, unsharded.instructions);
  // Documented bound (DESIGN.md §13): cache-state-dependent counters carry
  // warmup error, asserted here at the 25% relative level the contract
  // promises when warmup approaches the shard size. pf_issued is the
  // slowest to converge (each shard's prefetcher re-learns from scratch and
  // over-issues while training), which is why the contract pins the bound
  // at this warmup, not a smaller one.
  auto within = [](std::uint64_t got, std::uint64_t want, double tol) {
    const double g = static_cast<double>(got);
    const double w = static_cast<double>(want);
    return w == 0.0 ? g == 0.0 : (g > w ? g - w : w - g) / w <= tol;
  };
  EXPECT_TRUE(within(sharded.merged.cycles, unsharded.cycles, 0.25));
  EXPECT_TRUE(within(sharded.merged.llc_accesses, unsharded.llc_accesses, 0.25));
  EXPECT_TRUE(within(sharded.merged.pf_issued, unsharded.pf_issued, 0.25));
  // Derived ratios converge with warmup; assert the same documented bound.
  EXPECT_NEAR(sharded.merged.accuracy(), unsharded.accuracy(), 0.25);
  EXPECT_NEAR(sharded.merged.coverage(), unsharded.coverage(), 0.25);
}

// --------------------------------------------------------------- accounting

TEST_F(SweepChaosTest, AccountingInvariantHoldsUnderEveryFault) {
  // One sweep with failures, timeouts, and resume-skips mixed together:
  // completed + failed + skipped must still equal the grid size.
  ExperimentSpec spec = tiny_grid();
  spec.sweep.store_dir = scratch_dir("accounting");
  spec.sweep.cell_timeout_ms = 60;
  spec.sweep.cell_retries = 1;
  common::fault_injector().install(
      "fail-cell:match=sequential|ISB;slow-cell:match=uniform|BO,ms=400");
  ExperimentResult first = ExperimentRunner(spec).run();
  EXPECT_EQ(first.count(CellStatus::kDone) + first.count(CellStatus::kFailed) +
                first.count(CellStatus::kSkipped),
            first.cells.size());
  EXPECT_EQ(first.count(CellStatus::kFailed), 2u);

  common::fault_injector().clear();
  ExperimentResult second = ExperimentRunner(spec).run();
  EXPECT_EQ(second.count(CellStatus::kDone) + second.count(CellStatus::kFailed) +
                second.count(CellStatus::kSkipped),
            second.cells.size());
  EXPECT_EQ(second.count(CellStatus::kSkipped), 2u);  // the clean cells
  EXPECT_EQ(second.count(CellStatus::kDone), 2u);     // the healed cells
  EXPECT_EQ(second.count(CellStatus::kFailed), 0u);
}

}  // namespace
}  // namespace dart::core
