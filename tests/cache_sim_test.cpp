// Tests for the cache model and the timing simulator.
#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace dart::sim {
namespace {

TEST(Cache, ColdMissThenHit) {
  Cache c(4096, 4);  // 16 sets
  EXPECT_FALSE(c.access(5));
  c.insert(5, false);
  EXPECT_TRUE(c.access(5));
  EXPECT_EQ(c.accesses(), 2u);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsOldestWithinSet) {
  Cache c(2 * 64 * 4, 2);  // 4 sets, 2 ways
  // Blocks mapping to set 0: 0, 4, 8 (block % 4).
  c.insert(0, false);
  c.insert(4, false);
  EXPECT_TRUE(c.access(0));  // make 0 most-recent
  const auto info = c.insert(8, false);
  EXPECT_TRUE(info.evicted);
  EXPECT_EQ(info.victim_block, 4u);  // LRU victim
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(8));
  EXPECT_FALSE(c.contains(4));
}

TEST(Cache, InsertIsIdempotentForPresentLine) {
  Cache c(4096, 4);
  c.insert(7, false);
  const auto info = c.insert(7, true);
  EXPECT_FALSE(info.evicted);
  EXPECT_TRUE(c.contains(7));
}

TEST(Cache, PrefetchUsefulAccounting) {
  Cache c(4096, 4);
  c.insert(3, /*prefetched=*/true);
  EXPECT_EQ(c.useful_prefetches(), 0u);
  EXPECT_TRUE(c.access(3));
  EXPECT_TRUE(c.last_hit_was_useful_prefetch());
  EXPECT_EQ(c.useful_prefetches(), 1u);
  // Second hit on the same line is not counted again.
  EXPECT_TRUE(c.access(3));
  EXPECT_FALSE(c.last_hit_was_useful_prefetch());
  EXPECT_EQ(c.useful_prefetches(), 1u);
}

TEST(Cache, UnusedPrefetchEvictionCounted) {
  Cache c(2 * 64 * 1, 1);  // 2 sets, direct-mapped
  c.insert(0, true);
  c.insert(2, false);  // same set (block % 2 == 0), evicts unused prefetch
  EXPECT_EQ(c.unused_prefetch_evictions(), 1u);
}

TEST(Cache, NonPowerOfTwoSetCountsWork) {
  Cache c(12 * 64, 4);  // 3 sets
  EXPECT_EQ(c.num_sets(), 3u);
  for (std::uint64_t b = 0; b < 30; ++b) c.insert(b, false);
  std::size_t present = 0;
  for (std::uint64_t b = 0; b < 30; ++b) present += c.contains(b) ? 1 : 0;
  EXPECT_EQ(present, 12u);  // exactly capacity
}

TEST(Cache, ZeroSizeRejected) {
  EXPECT_THROW(Cache(0, 4), std::invalid_argument);
}

// ---------------------------------------------------------------- simulator

trace::MemoryTrace sequential_trace(std::size_t n, std::uint64_t stride_blocks = 1) {
  trace::MemoryTrace t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({(i + 1) * 4, 0x400, i * stride_blocks * 64, false});
  }
  return t;
}

TEST(Simulator, RepeatedHitsApproachFrontEndBound) {
  SimConfig cfg;
  Simulator sim(cfg);
  // Tiny working set: after warmup everything L1-hits.
  trace::MemoryTrace t;
  for (std::size_t i = 0; i < 20000; ++i) {
    t.push_back({(i + 1) * 4, 0x400, (i % 16) * 64, false});
  }
  const SimStats s = sim.run(t);
  EXPECT_GT(s.ipc(), 2.0);  // near the 4-wide front-end bound
  EXPECT_EQ(s.llc_demand_misses, 16u);
}

TEST(Simulator, MissesReduceIpc) {
  SimConfig cfg;
  Simulator sim(cfg);
  // Small resident loop (all hits after warmup) vs huge-stride all-miss.
  trace::MemoryTrace resident;
  for (std::size_t i = 0; i < 20000; ++i) {
    resident.push_back({(i + 1) * 4, 0x400, (i % 32) * 64, false});
  }
  const SimStats hits = sim.run(resident);
  const SimStats misses = sim.run(sequential_trace(20000, 1 << 14));
  EXPECT_LT(misses.ipc(), hits.ipc());
  EXPECT_GT(misses.llc_demand_misses, 19000u);
}

TEST(Simulator, MshrLimitSerializesMisses) {
  SimConfig few = {};
  few.llc_mshrs = 1;
  SimConfig many = {};
  many.llc_mshrs = 64;
  const auto t = sequential_trace(20000, 1 << 14);
  const SimStats s_few = Simulator(few).run(t);
  const SimStats s_many = Simulator(many).run(t);
  EXPECT_LT(s_few.ipc(), s_many.ipc());
}

/// Oracle prefetcher: always prefetches the next `degree` strided blocks.
class OraclePrefetcher final : public Prefetcher {
 public:
  explicit OraclePrefetcher(std::int64_t stride, std::size_t degree = 4)
      : stride_(stride), degree_(degree) {}
  void on_access(std::uint64_t block, std::uint64_t, bool, std::uint64_t,
                 std::vector<std::uint64_t>& out) override {
    for (std::size_t d = 1; d <= degree_; ++d) {
      out.push_back(block + static_cast<std::uint64_t>(stride_ * static_cast<std::int64_t>(d)));
    }
  }
  std::size_t storage_bytes() const override { return 0; }
  std::string name() const override { return "Oracle"; }

 private:
  std::int64_t stride_;
  std::size_t degree_;
};

TEST(Simulator, OraclePrefetcherLiftsIpcAndScoresHigh) {
  SimConfig cfg;
  Simulator sim(cfg);
  const auto t = sequential_trace(30000, 1 << 14);  // all-miss stream
  const SimStats base = sim.run(t);
  OraclePrefetcher oracle(1 << 14);
  const SimStats pf = sim.run(t, &oracle);
  EXPECT_GT(pf.ipc(), base.ipc());
  EXPECT_GT(pf.accuracy(), 0.9);
  EXPECT_GT(pf.coverage(), 0.5);
}

TEST(Simulator, WrongPrefetchesScoreZeroAccuracy) {
  SimConfig cfg;
  Simulator sim(cfg);
  const auto t = sequential_trace(20000, 1 << 14);
  OraclePrefetcher wrong(-7);  // never-used predictions
  const SimStats pf = sim.run(t, &wrong);
  EXPECT_GT(pf.pf_issued, 0u);
  EXPECT_LT(pf.accuracy(), 0.05);
  EXPECT_LT(pf.coverage(), 0.05);
}

TEST(Simulator, PredictionLatencyDegradesCoverage) {
  class LatentOracle final : public Prefetcher {
   public:
    LatentOracle(std::int64_t stride, std::size_t latency)
        : stride_(stride), latency_(latency) {}
    void on_access(std::uint64_t block, std::uint64_t, bool, std::uint64_t,
                   std::vector<std::uint64_t>& out) override {
      out.push_back(block + static_cast<std::uint64_t>(stride_));
    }
    std::size_t prediction_latency() const override { return latency_; }
    std::size_t storage_bytes() const override { return 0; }
    std::string name() const override { return "LatentOracle"; }

   private:
    std::int64_t stride_;
    std::size_t latency_;
  };
  SimConfig cfg;
  Simulator sim(cfg);
  const auto t = sequential_trace(30000, 1 << 14);
  LatentOracle fast(1 << 14, 0);
  LatentOracle slow(1 << 14, 50000);
  const SimStats s_fast = sim.run(t, &fast);
  const SimStats s_slow = sim.run(t, &slow);
  // The paper's central observation: latency kills timeliness, so IPC and
  // coverage collapse even with identical predictions.
  EXPECT_GT(s_fast.ipc(), s_slow.ipc());
  EXPECT_GT(s_fast.coverage(), s_slow.coverage() + 0.2);
}

TEST(Simulator, StatsAreDeterministic) {
  SimConfig cfg;
  Simulator sim(cfg);
  const auto t = trace::generate(trace::App::kWrf, 30000, 9);
  const SimStats a = sim.run(t);
  const SimStats b = sim.run(t);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.llc_demand_misses, b.llc_demand_misses);
}

TEST(ExtractLlcTrace, FiltersCacheFriendlyAccesses) {
  SimConfig cfg;
  // Tiny loop fits in L1: almost nothing reaches the LLC.
  trace::MemoryTrace t;
  for (std::size_t i = 0; i < 10000; ++i) {
    t.push_back({(i + 1) * 4, 0x400, (i % 8) * 64, false});
  }
  const auto llc = extract_llc_trace(t, cfg);
  EXPECT_LT(llc.size(), 32u);
  // A pointer-chase stream mostly reaches the LLC.
  const auto chase = trace::generate(trace::App::kMcf, 10000, 3);
  const auto llc2 = extract_llc_trace(chase, cfg);
  EXPECT_GT(llc2.size(), chase.size() / 10);
}

TEST(SimStats, RatioEdgeCases) {
  SimStats s;
  EXPECT_EQ(s.ipc(), 0.0);
  EXPECT_EQ(s.accuracy(), 0.0);
  EXPECT_EQ(s.coverage(), 0.0);
}

}  // namespace
}  // namespace dart::sim
