// Tests for the analytic complexity model (Eq. 16-23) and the table
// configurator (§VI-C): formula exactness, Table V magnitudes, and the
// latency-major greedy search.
#include <gtest/gtest.h>

#include "core/configs.hpp"
#include "tabular/configurator.hpp"

namespace dart::tabular {
namespace {

TEST(Log2Ceil, Values) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(128), 7u);
  EXPECT_EQ(log2_ceil(1024), 10u);
}

TEST(KernelFormulas, MatchEquations16To21) {
  // K=128 -> logK=7; C=2 -> logC=1.
  EXPECT_EQ(linear_kernel_latency(128, 2), 7u + 1u + 1u);           // Eq. 16
  EXPECT_EQ(attention_kernel_latency(128, 2), 2u * 9u);             // Eq. 17
  EXPECT_EQ(linear_kernel_storage_bits(8, 32, 128, 2, 32),          // Eq. 18
            8u * 2u * 7u + 32u * 128u * 2u * 32u);
  EXPECT_EQ(attention_kernel_storage_bits(8, 16, 128, 2, 32),       // Eq. 19
            (3u * 8u + 16u) * 2u * 7u + 2u * 128u * 128u * 2u * 32u);
  EXPECT_EQ(linear_kernel_ops(8, 32, 128, 2), 8u * 2u * 7u + 8u * 32u * 1u);  // Eq. 20
  EXPECT_EQ(attention_kernel_ops(8, 16, 128, 2),                    // Eq. 21
            (3u * 8u + 16u) * 2u * 7u + (64u + 256u) * 1u);
}

TEST(TableConfig, UniformAppliesEverywhere) {
  TableConfig cfg = TableConfig::uniform(64, 4);
  EXPECT_EQ(cfg.input.k, 64u);
  EXPECT_EQ(cfg.attention.c, 4u);
  EXPECT_EQ(cfg.ffn.k, 64u);
  EXPECT_EQ(cfg.output.c, 4u);
}

TEST(TableVReproduction, DartLatencyNearPaper) {
  // Paper Table V: DART (L=1, D=32, H=2, K=128, C=2) has latency 97 cycles;
  // our fixed-cost charges for LayerNorm/sigmoid differ by a few cycles.
  const auto variant = core::dart_variant();
  const ModelCost cost = tabular_model_cost(variant.arch, variant.tables);
  EXPECT_GE(cost.latency_cycles, 85u);
  EXPECT_LE(cost.latency_cycles, 100u);
}

TEST(TableVReproduction, DartStorageNearPaper) {
  // Paper: 864.4 KB. Accept the right order of magnitude (our fused-QKV
  // width differs slightly from the paper's 3*H*DA accounting).
  const auto variant = core::dart_variant();
  const ModelCost cost = tabular_model_cost(variant.arch, variant.tables);
  EXPECT_GT(cost.storage_bytes(), 400e3);
  EXPECT_LT(cost.storage_bytes(), 1.6e6);
}

TEST(TableVReproduction, TeacherAndStudentLatencies) {
  // Paper: Teacher 16.5K cycles, Student 908 cycles (systolic-array model).
  const ModelCost teacher = nn_model_cost(core::paper_teacher_config());
  const ModelCost student = nn_model_cost(core::paper_student_config());
  EXPECT_GT(teacher.latency_cycles, 10000u);
  EXPECT_LT(teacher.latency_cycles, 25000u);
  EXPECT_GT(student.latency_cycles, 500u);
  EXPECT_LT(student.latency_cycles, 1500u);
}

TEST(TableVReproduction, SpeedupRatiosHoldShape) {
  // Headline claims: DART accelerates the teacher by ~170x and the student
  // by ~9.4x; arithmetic-op reductions of 99.99% and 91.83%.
  const ModelCost teacher = nn_model_cost(core::paper_teacher_config());
  const ModelCost student = nn_model_cost(core::paper_student_config());
  const auto variant = core::dart_variant();
  const ModelCost dart = tabular_model_cost(variant.arch, variant.tables);
  const double teacher_speedup =
      static_cast<double>(teacher.latency_cycles) / dart.latency_cycles;
  const double student_speedup =
      static_cast<double>(student.latency_cycles) / dart.latency_cycles;
  EXPECT_GT(teacher_speedup, 100.0);
  EXPECT_GT(student_speedup, 5.0);
  EXPECT_LT(student_speedup, 20.0);
  const double op_red_teacher =
      1.0 - static_cast<double>(dart.arithmetic_ops) / teacher.arithmetic_ops;
  const double op_red_student =
      1.0 - static_cast<double>(dart.arithmetic_ops) / student.arithmetic_ops;
  EXPECT_GT(op_red_teacher, 0.999);
  EXPECT_GT(op_red_student, 0.85);
}

TEST(ConfigValidity, ChecksDivisibility) {
  nn::ModelConfig arch = core::paper_student_config();
  EXPECT_TRUE(config_is_valid(arch, TableConfig::uniform(128, 2)));
  // C=4 partitions per-head Dk=16 and T=8 fine; C=16 must fail (Dk/H).
  EXPECT_TRUE(config_is_valid(arch, TableConfig::uniform(128, 4)));
  EXPECT_FALSE(config_is_valid(arch, TableConfig::uniform(128, 16)));
}

ConfiguratorOptions default_opts() {
  ConfiguratorOptions o;
  o.base = core::paper_student_config();
  return o;
}

TEST(Configurator, EnumeratesOnlyValidCandidates) {
  TableConfigurator cfg(default_opts());
  ASSERT_GT(cfg.candidates().size(), 10u);
  for (const auto& cand : cfg.candidates()) {
    EXPECT_TRUE(config_is_valid(cand.arch, cand.tables)) << cand.to_string();
  }
}

TEST(Configurator, RespectsBothConstraints) {
  TableConfigurator cfg(default_opts());
  const auto choice = cfg.configure(100, 1e6);
  ASSERT_TRUE(choice.has_value());
  EXPECT_LT(choice->cost.latency_cycles, 100u);
  EXPECT_LT(choice->cost.storage_bytes(), 1e6);
}

TEST(Configurator, LatencyMajorGreedyPicksHighestFittingLatency) {
  TableConfigurator cfg(default_opts());
  const auto choice = cfg.configure(100, 1e9);  // storage unconstrained
  ASSERT_TRUE(choice.has_value());
  // No valid candidate with latency in (choice, 100) may exist.
  for (const auto& cand : cfg.candidates()) {
    if (cand.cost.latency_cycles < 100) {
      EXPECT_LE(cand.cost.latency_cycles, choice->cost.latency_cycles);
    }
  }
}

TEST(Configurator, FallsBackToLowerLatencyWhenStorageTight) {
  TableConfigurator cfg(default_opts());
  const auto loose = cfg.configure(200, 1e9);
  const auto tight = cfg.configure(200, 50e3);
  ASSERT_TRUE(loose.has_value());
  ASSERT_TRUE(tight.has_value());
  EXPECT_LT(tight->cost.storage_bytes(), 50e3);
  EXPECT_LE(tight->cost.storage_bytes(), loose->cost.storage_bytes());
}

TEST(Configurator, ReturnsNulloptWhenImpossible) {
  TableConfigurator cfg(default_opts());
  EXPECT_FALSE(cfg.configure(2, 100).has_value());
}

class VariantFits : public ::testing::TestWithParam<int> {};

TEST_P(VariantFits, TableVIIIVariantsMeetTheirConstraints) {
  // Each published variant must satisfy the constraints it was derived from.
  core::DartVariant v = GetParam() == 0   ? core::dart_s_variant()
                        : GetParam() == 1 ? core::dart_variant()
                                          : core::dart_l_variant();
  const ModelCost cost = tabular_model_cost(v.arch, v.tables);
  EXPECT_LT(cost.latency_cycles, v.tau_cycles + 10) << v.name;  // small slack
  EXPECT_LT(cost.storage_bytes(), v.storage_bytes * 1.05) << v.name;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantFits, ::testing::Values(0, 1, 2));

TEST(Configurator, MonotoneLatencyOrderingOfVariants) {
  // DART-S < DART < DART-L in both latency and storage (Table VIII shape).
  const ModelCost s = tabular_model_cost(core::dart_s_variant().arch,
                                         core::dart_s_variant().tables);
  const ModelCost m = tabular_model_cost(core::dart_variant().arch,
                                         core::dart_variant().tables);
  const ModelCost l = tabular_model_cost(core::dart_l_variant().arch,
                                         core::dart_l_variant().tables);
  EXPECT_LT(s.latency_cycles, m.latency_cycles);
  EXPECT_LT(m.latency_cycles, l.latency_cycles);
  EXPECT_LT(s.storage_bits, m.storage_bits);
  EXPECT_LT(m.storage_bits, l.storage_bits);
}

}  // namespace
}  // namespace dart::tabular
