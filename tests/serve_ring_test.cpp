// Unit tests for the serving layer's lock-free plumbing (DESIGN.md §9):
// SPSC/MPSC ring wraparound, full-queue backpressure, FIFO ordering,
// multi-producer races, trace-ID generation, and the latency histogram.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "serve/id_generator.hpp"
#include "serve/ring.hpp"
#include "serve/stats.hpp"

namespace dart::serve {
namespace {

TEST(CeilPow2, RoundsUpWithMinimumTwo) {
  EXPECT_EQ(ceil_pow2(0), 2u);
  EXPECT_EQ(ceil_pow2(1), 2u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(64), 64u);
  EXPECT_EQ(ceil_pow2(65), 128u);
}

TEST(SpscRing, FifoAcrossManyWraparounds) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0, next_pop = 0, out = 0;
  // Interleave pushes and pops so positions lap the 8-slot ring thousands
  // of times; values must come out in exact push order.
  for (int round = 0; round < 10000; ++round) {
    while (ring.try_push(next_push)) ++next_push;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_GT(next_push, 8u * 1000);
}

TEST(SpscRing, RejectsWhenFullAndRecoversAfterPop) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: rejected, not dropped
  EXPECT_EQ(ring.size_approx(), 4u);
  int out = -1;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // one slot freed, one accepted
  EXPECT_FALSE(ring.try_push(99));
  for (int expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, expect);
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty again
}

TEST(SpscRing, ConcurrentProducerConsumerDeliversEverythingInOrder) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kItems = 50000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0, out = 0;
  while (expect < kItems) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expect);
      ++expect;
    } else {
      std::this_thread::yield();  // single-core hosts: let the producer run
    }
  }
  producer.join();
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, FifoAcrossManyWraparoundsSingleProducer) {
  MpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0, next_pop = 0, out = 0;
  for (int round = 0; round < 10000; ++round) {
    while (ring.try_push(next_push)) ++next_push;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_GT(next_push, 8u * 1000);
}

TEST(MpscRing, RejectsWhenFullAndRecoversAfterPop) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  int out = -1;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(99));
  for (int expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, expect);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, ConcurrentProducersLoseNothingAndStayPerProducerOrdered) {
  // 4 producers × 5k items through a 64-slot ring: every item arrives
  // exactly once, and each producer's items arrive in its push order
  // (MPSC guarantees per-producer FIFO, not global order).
  constexpr std::uint64_t kPerProducer = 5000;
  constexpr std::uint64_t kProducers = 4;
  MpscRing<std::uint64_t> ring(64);
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t item = (p << 32) | i;
        while (!ring.try_push(item)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint64_t> next_from(kProducers, 0);
  std::uint64_t received = 0, out = 0;
  while (received < kProducers * kPerProducer) {
    if (!ring.try_pop(out)) {
      std::this_thread::yield();  // single-core hosts: let producers refill
      continue;
    }
    const std::uint64_t p = out >> 32, i = out & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(i, next_from[p]) << "producer " << p << " items reordered or lost";
    ++next_from[p];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(ring.try_pop(out));
  for (std::uint64_t p = 0; p < kProducers; ++p) EXPECT_EQ(next_from[p], kPerProducer);
}

TEST(MpscRing, BackpressureUnderContentionNeverDropsAcceptedItems) {
  // A tiny ring (capacity 4) forces constant full-queue rejection; each
  // producer counts its accepted pushes and the popped total must match.
  MpscRing<int> ring(4);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (ring.try_push(1)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();  // full: let the consumer drain
        }
      }
    });
  }
  std::uint64_t popped = 0;
  int out = 0;
  while (popped < 10000) {
    if (ring.try_pop(out)) {
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : producers) t.join();
  while (ring.try_pop(out)) ++popped;  // drain the stragglers
  EXPECT_EQ(popped, accepted.load());
}

// Positions are monotonic uint64s that wrap modulo 2^64 — and the Vyukov
// full/empty tests reinterpret position differences as signed, which is UB
// if written as separate casts once positions straddle 2^63. Start the
// rings just below both boundaries and lap them: FIFO order, full
// rejection, and size_approx must all survive the wrap.
TEST(SpscRing, SurvivesPositionWraparoundNearIndexTypeOverflow) {
  for (const std::uint64_t start : {std::numeric_limits<std::uint64_t>::max() - 5,
                                    (std::uint64_t{1} << 63) - 5, std::uint64_t{0}}) {
    SpscRing<std::uint64_t> ring(8, start);
    std::uint64_t next_push = 0, next_pop = 0, out = 0;
    for (int round = 0; round < 16; ++round) {  // 16 laps cross either boundary
      while (ring.try_push(next_push)) ++next_push;
      ASSERT_EQ(ring.size_approx(), 8u) << "start " << start;
      ASSERT_FALSE(ring.try_push(next_push));
      while (ring.try_pop(out)) {
        ASSERT_EQ(out, next_pop) << "start " << start;
        ++next_pop;
      }
    }
    EXPECT_EQ(next_pop, next_push);
    EXPECT_EQ(ring.size_approx(), 0u);
  }
}

TEST(MpscRing, SurvivesPositionWraparoundNearIndexTypeOverflow) {
  for (const std::uint64_t start : {std::numeric_limits<std::uint64_t>::max() - 5,
                                    (std::uint64_t{1} << 63) - 5, std::uint64_t{0}}) {
    MpscRing<std::uint64_t> ring(8, start);
    std::uint64_t next_push = 0, next_pop = 0, out = 0;
    for (int round = 0; round < 16; ++round) {
      while (ring.try_push(next_push)) ++next_push;
      ASSERT_EQ(ring.size_approx(), 8u) << "start " << start;
      ASSERT_FALSE(ring.try_push(next_push));
      // Pop only half before refilling so head and tail sit on opposite
      // sides of the boundary for a while instead of crossing in lockstep.
      for (int half = 0; half < 4; ++half) {
        ASSERT_TRUE(ring.try_pop(out));
        ASSERT_EQ(out, next_pop) << "start " << start;
        ++next_pop;
      }
      while (ring.try_pop(out)) {
        ASSERT_EQ(out, next_pop) << "start " << start;
        ++next_pop;
      }
    }
    EXPECT_EQ(next_pop, next_push);
    EXPECT_EQ(ring.size_approx(), 0u);
  }
}

TEST(MpscRing, ConcurrentProducersAcrossThe2To63Boundary) {
  // The signed-difference trick must hold under real contention while
  // positions cross 2^63 (where `int64(seq) - int64(pos)` would overflow).
  constexpr std::uint64_t kPerProducer = 2000;
  constexpr std::uint64_t kProducers = 4;
  MpscRing<std::uint64_t> ring(16, (std::uint64_t{1} << 63) - 64);
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        while (!ring.try_push((p << 32) | i)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint64_t> next_from(kProducers, 0);
  std::uint64_t received = 0, out = 0;
  while (received < kProducers * kPerProducer) {
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t p = out >> 32, i = out & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(i, next_from[p]) << "producer " << p << " reordered across the boundary";
    ++next_from[p];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(ring.try_pop(out));
}

/// Gate for GatedItem: while closed, copying a gated item blocks. Lets a
/// test freeze a producer inside the claim-then-publish window.
std::atomic<bool> g_copy_gate_closed{false};

struct GatedItem {
  std::uint64_t value = 0;
  bool gated = false;

  GatedItem() = default;
  GatedItem(std::uint64_t v, bool g) : value(v), gated(g) {}
  GatedItem(const GatedItem& o) { *this = o; }
  GatedItem& operator=(const GatedItem& o) {
    if (o.gated) {
      while (g_copy_gate_closed.load(std::memory_order_acquire)) std::this_thread::yield();
    }
    value = o.value;
    gated = o.gated;
    return *this;
  }
};

TEST(MpscRing, ProducerStalledMidPushBlocksConsumptionButLosesNothing) {
  // A Vyukov producer claims its position with a CAS, then copies the
  // payload, then publishes the slot sequence. A producer abandoned (or
  // descheduled indefinitely) between claim and publish must make the
  // consumer see an *empty* ring — positions behind the head are never
  // skipped — and later producers' items must still be accepted and pop in
  // position order once the stuck slot publishes. This is the ring-level
  // guarantee the shard watchdog's restart containment builds on.
  MpscRing<GatedItem> ring(8);
  g_copy_gate_closed.store(true, std::memory_order_release);

  std::thread stuck([&] { ring.try_push(GatedItem{100, true}); });
  // The claim (tail CAS) lands even though the publish is gated.
  while (ring.size_approx() < 1) std::this_thread::yield();

  // Later producers fill every remaining slot...
  for (std::uint64_t i = 1; i <= 7; ++i) {
    ASSERT_TRUE(ring.try_push(GatedItem{i, false}));
  }
  // ...the ring is now full (the stuck slot counts), so pushes reject...
  EXPECT_FALSE(ring.try_push(GatedItem{999, false}));
  // ...and the consumer cannot pop anything: the head position is claimed
  // but unpublished, and FIFO forbids skipping it.
  GatedItem out;
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(ring.try_pop(out)) << "popped past an unpublished slot";
  }

  g_copy_gate_closed.store(false, std::memory_order_release);
  stuck.join();
  std::vector<std::uint64_t> order;
  while (order.size() < 8) {
    if (ring.try_pop(out)) order.push_back(out.value);
  }
  const std::vector<std::uint64_t> expect{100, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expect);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(IdGenerator, NonzeroAndUniqueWithinAThread) {
  const auto ids = default_id_generator(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t id = ids->trace_id();
    ASSERT_NE(id, 0u);
    ASSERT_TRUE(seen.insert(id).second) << "duplicate trace ID";
  }
}

TEST(IdGenerator, UniqueAcrossThreads) {
  const auto ids = default_id_generator(43);
  constexpr int kThreads = 4, kPerThread = 50000;
  std::vector<std::vector<std::uint64_t>> drawn(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      drawn[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) drawn[t].push_back(ids->trace_id());
    });
  }
  for (auto& t : threads) t.join();
  std::set<std::uint64_t> seen;
  for (const auto& v : drawn) {
    for (std::uint64_t id : v) {
      ASSERT_NE(id, 0u);
      ASSERT_TRUE(seen.insert(id).second) << "trace ID collided across threads";
    }
  }
}

TEST(IdGenerator, FixedSeedIsDeterministicPerThread) {
  // Same seed, fresh generator, same calling thread -> same stream.
  const auto a = default_id_generator(7);
  const auto b = default_id_generator(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a->trace_id(), b->trace_id());
}

TEST(LatencyHistogram, QuantilesBoundTheRecordedRange) {
  LatencyHistogram h;
  for (std::uint64_t ns = 1000; ns <= 100000; ns += 1000) h.record(ns);
  EXPECT_EQ(h.count(), 100u);
  const std::uint64_t p50 = h.quantile(0.5), p99 = h.quantile(0.99);
  EXPECT_GE(p50, 40000u);  // log-scale buckets: ~19% worst-case error
  EXPECT_LE(p50, 70000u);
  EXPECT_GE(p99, 80000u);
  EXPECT_LE(p99, 140000u);
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(1000);
  for (int i = 0; i < 100; ++i) b.record(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_LE(a.quantile(0.25), 2000u);     // low half still visible
  EXPECT_GE(a.quantile(0.95), 500000u);   // high half dominates the tail
}

TEST(LatencyHistogram, EmptyAndSaturatingSamples) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty -> 0
  h.record(0);
  h.record(~0ull);  // saturates into the top bucket, must not crash
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.quantile(1.0), 0u);
}

}  // namespace
}  // namespace dart::serve
