// Gradient checks and shape tests for every trainable layer: the backward
// implementations are validated against central finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/attention.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/lstm.hpp"
#include "nn/transformer.hpp"

namespace dart::nn {
namespace {

/// Scalar loss used for gradient checking: sum of elementwise y * coeff.
double weighted_sum(const Tensor& y, const Tensor& coeff) {
  double s = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) s += static_cast<double>(y[i]) * coeff[i];
  return s;
}

/// Checks dL/dx and dL/dparams of `module` on input `x` via central
/// differences. Loss L = sum(coeff ⊙ forward(x)).
void check_gradients(Module& module, Tensor x, float eps = 1e-2f, float tol = 2e-2f) {
  Tensor y = module.forward(x);
  Tensor coeff = Tensor::randn(y.shape(), 1.0f, 77);
  module.zero_grad();
  Tensor y2 = module.forward(x);
  Tensor dx = module.backward(coeff);

  // Input gradient.
  for (std::size_t i = 0; i < std::min<std::size_t>(x.numel(), 24); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double fp = weighted_sum(module.forward(xp), coeff);
    const double fm = weighted_sum(module.forward(xm), coeff);
    const double fd = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(dx[i], fd, tol * std::max(1.0, std::fabs(fd)))
        << "input grad mismatch at " << i;
  }
  // Parameter gradients (sample a few per parameter).
  for (Param* p : module.params()) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p->value.numel(), 12); ++i) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double fp = weighted_sum(module.forward(x), coeff);
      p->value[i] = orig - eps;
      const double fm = weighted_sum(module.forward(x), coeff);
      p->value[i] = orig;
      const double fd = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], fd, tol * std::max(1.0, std::fabs(fd)))
          << "param " << p->name << " grad mismatch at " << i;
    }
  }
}

TEST(Linear, ForwardMatchesManual) {
  Linear lin(2, 3, 1);
  lin.mutable_weight().fill(0.5f);
  lin.mutable_bias().fill(1.0f);
  Tensor x({1, 2});
  x[0] = 2.0f;
  x[1] = 4.0f;
  Tensor y = lin.forward(x);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(y.at(0, j), 0.5f * 6.0f + 1.0f);
}

TEST(Linear, Handles3dInput) {
  Linear lin(4, 6, 2);
  Tensor x = Tensor::randn({2, 3, 4}, 1.0f, 3);
  Tensor y = lin.forward(x);
  ASSERT_EQ(y.ndim(), 3u);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 3u);
  EXPECT_EQ(y.dim(2), 6u);
}

TEST(Linear, GradientCheck) {
  Linear lin(5, 4, 11);
  check_gradients(lin, Tensor::randn({3, 5}, 1.0f, 5));
}

TEST(Linear, ApplyIsStateless) {
  Linear lin(3, 3, 4);
  Tensor x = Tensor::randn({2, 3}, 1.0f, 6);
  Tensor a = lin.apply(x);
  Tensor b = lin.forward(x);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm ln(8);
  Tensor x = Tensor::randn({4, 8}, 3.0f, 7);
  Tensor y = ln.forward(x);
  for (std::size_t i = 0; i < 4; ++i) {
    double mean = 0.0, var = 0.0;
    for (std::size_t j = 0; j < 8; ++j) mean += y.at(i, j);
    mean /= 8.0;
    for (std::size_t j = 0; j < 8; ++j) var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNorm, GradientCheck) {
  LayerNorm ln(6);
  // Perturb gamma/beta so gradients are non-trivial.
  for (Param* p : ln.params()) {
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      p->value[i] += 0.1f * static_cast<float>(i % 3);
    }
  }
  check_gradients(ln, Tensor::randn({4, 6}, 1.0f, 8), 1e-2f, 4e-2f);
}

TEST(FeedForward, GradientCheck) {
  FeedForward ffn(4, 8, 21);
  check_gradients(ffn, Tensor::randn({3, 4}, 1.0f, 9));
}

TEST(Msa, OutputShapeAndGradientCheck) {
  MultiHeadSelfAttention msa(8, 2, 31);
  Tensor x = Tensor::randn({2, 4, 8}, 0.5f, 10);
  Tensor y = msa.forward(x);
  ASSERT_EQ(y.shape(), x.shape());
  check_gradients(msa, x, 1e-2f, 5e-2f);
}

TEST(Msa, RejectsBadShapes) {
  MultiHeadSelfAttention msa(8, 2, 31);
  Tensor bad({2, 8});
  EXPECT_THROW(msa.forward(bad), std::invalid_argument);
  EXPECT_THROW(MultiHeadSelfAttention(7, 2, 1), std::invalid_argument);
}

TEST(Msa, AttentionCoreMatchesForwardPath) {
  // forward() == out_proj(attention_core(qkv_proj(x))).
  MultiHeadSelfAttention msa(8, 2, 41);
  Tensor x = Tensor::randn({1, 4, 8}, 0.5f, 11);
  Tensor y = msa.forward(x);
  Tensor qkv = msa.qkv_proj().apply(x);
  Tensor concat = msa.attention_core(qkv);
  Tensor y2 = msa.out_proj().apply(concat);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], y2[i], 1e-4f);
}

TEST(EncoderLayer, GradientCheck) {
  TransformerEncoderLayer enc(8, 2, 16, 51);
  check_gradients(enc, Tensor::randn({2, 4, 8}, 0.5f, 12), 1e-2f, 6e-2f);
}

TEST(Lstm, HiddenSequenceShape) {
  Lstm lstm(5, 7, 61);
  Tensor x = Tensor::randn({3, 6, 5}, 1.0f, 13);
  Tensor h = lstm.forward(x);
  ASSERT_EQ(h.ndim(), 3u);
  EXPECT_EQ(h.dim(0), 3u);
  EXPECT_EQ(h.dim(1), 6u);
  EXPECT_EQ(h.dim(2), 7u);
  for (std::size_t i = 0; i < h.numel(); ++i) {
    EXPECT_GE(h[i], -1.0f);
    EXPECT_LE(h[i], 1.0f);  // |h| <= |tanh| bound
  }
}

TEST(Lstm, GradientCheck) {
  Lstm lstm(3, 4, 71);
  check_gradients(lstm, Tensor::randn({2, 3, 3}, 0.8f, 14), 1e-2f, 6e-2f);
}

TEST(AddressPredictor, ForwardShapeAndDeterminism) {
  ModelConfig cfg;
  cfg.seq_len = 4;
  cfg.addr_dim = 4;
  cfg.pc_dim = 4;
  cfg.dim = 8;
  cfg.ffn_dim = 16;
  cfg.out_dim = 10;
  cfg.heads = 2;
  cfg.layers = 2;
  AddressPredictor m1(cfg, 99), m2(cfg, 99);
  Tensor addr = Tensor::randn({3, 4, 4}, 0.3f, 15);
  Tensor pc = Tensor::randn({3, 4, 4}, 0.3f, 16);
  Tensor y1 = m1.forward(addr, pc);
  Tensor y2 = m2.forward(addr, pc);
  ASSERT_EQ(y1.dim(0), 3u);
  ASSERT_EQ(y1.dim(1), 10u);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(AddressPredictor, BackwardProducesFiniteGradsForAllParams) {
  ModelConfig cfg;
  cfg.seq_len = 4;
  cfg.addr_dim = 4;
  cfg.pc_dim = 4;
  cfg.dim = 8;
  cfg.ffn_dim = 16;
  cfg.out_dim = 6;
  cfg.heads = 2;
  cfg.layers = 1;
  AddressPredictor model(cfg, 7);
  Tensor addr = Tensor::randn({2, 4, 4}, 0.3f, 17);
  Tensor pc = Tensor::randn({2, 4, 4}, 0.3f, 18);
  Tensor logits = model.forward(addr, pc);
  Tensor d(logits.shape());
  d.fill(1.0f);
  model.zero_grad();
  model.backward(d);
  std::size_t nonzero = 0;
  for (Param* p : model.params()) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) {
      ASSERT_FALSE(std::isnan(p->grad[i])) << p->name;
      if (p->grad[i] != 0.0f) ++nonzero;
    }
  }
  EXPECT_GT(nonzero, 100u);  // gradient reaches (almost) everything
}

TEST(LstmPredictor, ForwardShape) {
  LstmPredictor model(4, 4, 8, 10, 3);
  Tensor addr = Tensor::randn({2, 5, 4}, 0.3f, 19);
  Tensor pc = Tensor::randn({2, 5, 4}, 0.3f, 20);
  Tensor y = model.forward(addr, pc);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 10u);
  EXPECT_GT(model.num_params(), 0u);
}

}  // namespace
}  // namespace dart::nn
