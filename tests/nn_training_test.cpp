// Tests for losses, optimizers, metrics, the dataset container, and the
// training loops (including knowledge distillation, §VI-D).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "nn/transformer.hpp"

namespace dart::nn {
namespace {

TEST(BceLoss, MatchesManualComputation) {
  Tensor logits({2}), targets({2}), d;
  logits[0] = 0.0f;
  logits[1] = 2.0f;
  targets[0] = 1.0f;
  targets[1] = 0.0f;
  const double loss = bce_with_logits(logits, targets, d);
  const double expected =
      0.5 * (-std::log(0.5) - std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0))));
  EXPECT_NEAR(loss, expected, 1e-6);
  // Gradient: (sigmoid(z) - y) / N.
  EXPECT_NEAR(d[0], (0.5 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(d[1], (1.0 / (1.0 + std::exp(-2.0))) / 2.0, 1e-6);
}

TEST(BceLoss, StableForExtremeLogits) {
  Tensor logits({2}), targets({2}), d;
  logits[0] = 500.0f;
  logits[1] = -500.0f;
  targets[0] = 1.0f;
  targets[1] = 0.0f;
  const double loss = bce_with_logits(logits, targets, d);
  EXPECT_FALSE(std::isnan(loss));
  EXPECT_NEAR(loss, 0.0, 1e-6);
}

TEST(MseLoss, ValueAndGradient) {
  Tensor pred({2}), target({2}), d;
  pred[0] = 1.0f;
  pred[1] = 3.0f;
  target[0] = 0.0f;
  target[1] = 3.0f;
  EXPECT_NEAR(mse_loss(pred, target, d), 0.5, 1e-6);
  EXPECT_NEAR(d[0], 2.0f * 1.0f / 2.0f, 1e-6);
  EXPECT_NEAR(d[1], 0.0f, 1e-6);
}

TEST(TSigmoid, TemperatureSoftensProbabilities) {
  Tensor logits({1});
  logits[0] = 4.0f;
  const float hard = t_sigmoid(logits, 1.0f)[0];
  const float soft = t_sigmoid(logits, 4.0f)[0];
  EXPECT_GT(hard, soft);
  EXPECT_GT(soft, 0.5f);  // same side of 0.5
}

TEST(KdLoss, ZeroWhenStudentMatchesTeacher) {
  Tensor logits = Tensor::randn({8}, 2.0f, 1);
  Tensor d;
  EXPECT_NEAR(kd_loss(logits, logits, 2.0f, d), 0.0, 1e-6);
  for (std::size_t i = 0; i < d.numel(); ++i) EXPECT_NEAR(d[i], 0.0f, 1e-6f);
}

TEST(KdLoss, GradientPullsStudentTowardTeacher) {
  Tensor student({1}), teacher({1}), d;
  student[0] = -2.0f;
  teacher[0] = 3.0f;
  const double loss = kd_loss(student, teacher, 2.0f, d);
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(d[0], 0.0f);  // increase student logit to approach teacher
}

TEST(DistillationLoss, LambdaInterpolates) {
  Tensor student = Tensor::randn({16}, 1.0f, 2);
  Tensor teacher = Tensor::randn({16}, 1.0f, 3);
  Tensor targets({16});
  for (std::size_t i = 0; i < 16; ++i) targets[i] = i % 2 ? 1.0f : 0.0f;
  Tensor d_bce, d_kd, d_mix;
  const double bce = bce_with_logits(student, targets, d_bce);
  const double kd = kd_loss(student, teacher, 2.0f, d_kd);
  const double mix = distillation_loss(student, teacher, targets, 2.0f, 0.3f, d_mix);
  EXPECT_NEAR(mix, 0.3 * kd + 0.7 * bce, 1e-6);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(d_mix[i], 0.3f * d_kd[i] + 0.7f * d_bce[i], 1e-6f);
  }
}

TEST(Sgd, ConvergesOnQuadratic) {
  // minimize (w - 3)^2 via explicit gradient descent steps.
  Param w(Tensor({1}), "w");
  Sgd sgd({&w}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    sgd.zero_grad();
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    sgd.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-3f);
}

TEST(SgdMomentum, AcceleratesDescent) {
  Param a(Tensor({1}), "a"), b(Tensor({1}), "b");
  Sgd plain({&a}, 0.01f);
  Sgd mom({&b}, 0.01f, 0.9f);
  for (int i = 0; i < 50; ++i) {
    plain.zero_grad();
    a.grad[0] = 2.0f * (a.value[0] - 3.0f);
    plain.step();
    mom.zero_grad();
    b.grad[0] = 2.0f * (b.value[0] - 3.0f);
    mom.step();
  }
  EXPECT_LT(std::fabs(b.value[0] - 3.0f), std::fabs(a.value[0] - 3.0f));
}

TEST(Adam, ConvergesOnQuadratic) {
  Param w(Tensor({2}), "w");
  Adam adam({&w}, 0.05f);
  for (int i = 0; i < 500; ++i) {
    adam.zero_grad();
    w.grad[0] = 2.0f * (w.value[0] - 1.0f);
    w.grad[1] = 2.0f * (w.value[1] + 2.0f);
    adam.step();
  }
  EXPECT_NEAR(w.value[0], 1.0f, 1e-2f);
  EXPECT_NEAR(w.value[1], -2.0f, 1e-2f);
}

TEST(F1, PerfectAndWorstCase) {
  Tensor probs({4}), targets({4});
  for (std::size_t i = 0; i < 4; ++i) {
    targets[i] = i % 2 ? 1.0f : 0.0f;
    probs[i] = targets[i];
  }
  EXPECT_NEAR(f1_score_from_probs(probs, targets).f1, 1.0, 1e-9);
  for (std::size_t i = 0; i < 4; ++i) probs[i] = 1.0f - targets[i];
  EXPECT_NEAR(f1_score_from_probs(probs, targets).f1, 0.0, 1e-9);
}

TEST(F1, CountsMatchManual) {
  Tensor probs({6}), targets({6});
  // pred: 1 1 0 0 1 0 ; truth: 1 0 0 1 1 1
  const float p[] = {0.9f, 0.8f, 0.2f, 0.1f, 0.7f, 0.3f};
  const float t[] = {1, 0, 0, 1, 1, 1};
  for (int i = 0; i < 6; ++i) {
    probs[i] = p[i];
    targets[i] = t[i];
  }
  const F1Result r = f1_score_from_probs(probs, targets);
  EXPECT_EQ(r.true_pos, 2u);
  EXPECT_EQ(r.false_pos, 1u);
  EXPECT_EQ(r.false_neg, 2u);
  EXPECT_NEAR(r.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.recall, 0.5, 1e-9);
}

TEST(F1, LogitsAndProbsAgree) {
  Tensor logits = Tensor::randn({40}, 2.0f, 4);
  Tensor targets({40});
  for (std::size_t i = 0; i < 40; ++i) targets[i] = i % 3 == 0 ? 1.0f : 0.0f;
  Tensor probs(logits.shape());
  for (std::size_t i = 0; i < 40; ++i) probs[i] = 1.0f / (1.0f + std::exp(-logits[i]));
  EXPECT_NEAR(f1_score_from_logits(logits, targets).f1,
              f1_score_from_probs(probs, targets).f1, 1e-9);
}

Dataset make_toy_dataset(std::size_t n, std::size_t t, std::size_t s, std::size_t out,
                         std::uint64_t seed) {
  Dataset ds;
  ds.addr = Tensor::randn({n, t, s}, 0.5f, seed);
  ds.pc = Tensor::randn({n, t, s}, 0.5f, seed + 1);
  ds.labels = Tensor({n, out});
  // Learnable rule: label j fires when mean of addr window is above a
  // per-label threshold.
  for (std::size_t i = 0; i < n; ++i) {
    double mean = 0.0;
    for (std::size_t k = 0; k < t * s; ++k) mean += ds.addr[i * t * s + k];
    mean /= static_cast<double>(t * s);
    for (std::size_t j = 0; j < out; ++j) {
      ds.labels.at(i, j) = mean > (static_cast<double>(j) / out - 0.5) ? 1.0f : 0.0f;
    }
  }
  return ds;
}

TEST(Dataset, SliceAndShuffleKeepRowsAligned) {
  Dataset ds = make_toy_dataset(20, 2, 3, 4, 5);
  const float probe = ds.addr[7 * 6 + 1];
  Dataset s = ds.slice(7, 9);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.addr[1], probe);
  Dataset copy = ds;
  copy.shuffle(3);
  // Row multiset preserved: find the original row 7 somewhere.
  bool found = false;
  for (std::size_t i = 0; i < copy.size(); ++i) {
    if (copy.addr[i * 6 + 1] == probe) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(copy.size(), ds.size());
}

TEST(Dataset, SplitFractions) {
  Dataset ds = make_toy_dataset(10, 2, 3, 4, 6);
  auto [train, test] = ds.split(0.7);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
}

TEST(Training, BceReducesLossAndLearnsToyRule) {
  ModelConfig cfg;
  cfg.seq_len = 2;
  cfg.addr_dim = 3;
  cfg.pc_dim = 3;
  cfg.dim = 8;
  cfg.ffn_dim = 16;
  cfg.out_dim = 4;
  cfg.heads = 2;
  cfg.layers = 1;
  AddressPredictor model(cfg, 11);
  Dataset ds = make_toy_dataset(400, 2, 3, 4, 7);
  TrainOptions opt;
  opt.epochs = 1;
  opt.batch_size = 32;
  const double first = train_bce(model, ds, opt);
  opt.epochs = 10;
  const double last = train_bce(model, ds, opt);
  EXPECT_LT(last, first);
  const F1Result f1 = evaluate_f1(model, ds);
  EXPECT_GT(f1.f1, 0.8);
}

TEST(Training, DistillationRunsAndStudentLearns) {
  ModelConfig tcfg;
  tcfg.seq_len = 2;
  tcfg.addr_dim = 3;
  tcfg.pc_dim = 3;
  tcfg.dim = 16;
  tcfg.ffn_dim = 32;
  tcfg.out_dim = 4;
  tcfg.heads = 2;
  tcfg.layers = 1;
  ModelConfig scfg = tcfg;
  scfg.dim = 8;
  scfg.ffn_dim = 16;
  Dataset ds = make_toy_dataset(400, 2, 3, 4, 8);
  AddressPredictor teacher(tcfg, 21);
  TrainOptions opt;
  opt.epochs = 8;
  train_bce(teacher, ds, opt);
  AddressPredictor student(scfg, 22);
  KdOptions kd;
  train_distill(student, teacher, ds, opt, kd);
  EXPECT_GT(evaluate_f1(student, ds).f1, 0.7);
}

}  // namespace
}  // namespace dart::nn
