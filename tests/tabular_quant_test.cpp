// Tests for the quantized inference path (DESIGN.md §10): the per-column
// quantization scheme and its C·s_o/2 rounding-error budget, bit-identity
// between the SIMD aggregation kernels and the always-scalar golden
// reference, the vpshufb fast-path selection rule, kernel- and
// predictor-level quantized-vs-exact tolerances, the `.dart` QNTT chunk
// round trip (bit-exact, with corruption/truncation negatives and the
// float-fallback for artifacts that predate the chunk), and the knob
// plumbing (parse_quant_mode, DART_QUANT, load-time requantization).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/configs.hpp"
#include "io/artifact.hpp"
#include "nn/tensor.hpp"
#include "nn/transformer.hpp"
#include "tabular/fused_kernel.hpp"
#include "tabular/linear_kernel.hpp"
#include "tabular/quant.hpp"
#include "tabular/tabularizer.hpp"

namespace dart {
namespace {

using tabular::QuantMode;
using tabular::QuantizedTable;

/// Deterministic float [C][K][DO] table plus SoA codes for `n` queries.
struct TableFixture {
  std::size_t c, k, dout, n;
  std::vector<float> table;          // [C][K][DO]
  std::vector<std::uint32_t> codes;  // codes[c * n + i]

  TableFixture(std::size_t c_, std::size_t k_, std::size_t dout_, std::size_t n_,
               std::uint64_t seed)
      : c(c_), k(k_), dout(dout_), n(n_) {
    nn::Tensor t = nn::Tensor::randn({c * k, dout}, 2.5f, seed);
    table.assign(t.data(), t.data() + t.numel());
    // A constant column exercises the s_o = 0 exact-encoding path.
    for (std::size_t ck = 0; ck < c * k; ++ck) table[ck * dout] = 0.75f;
    std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    codes.resize(c * n);
    for (auto& code : codes) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      code = static_cast<std::uint32_t>((state >> 33) % k);
    }
  }

  /// Exact float aggregation of query i, column o, accumulated in double.
  double exact(std::size_t i, std::size_t o) const {
    double acc = 0.0;
    for (std::size_t cc = 0; cc < c; ++cc) {
      acc += table[((cc * k) + codes[cc * n + i]) * dout + o];
    }
    return acc;
  }
};

void expect_within_budget(const TableFixture& fx, const QuantizedTable& qt) {
  std::vector<float> out(fx.n * fx.dout);
  tabular::aggregate_quantized(qt, fx.codes.data(), fx.n, out.data(), fx.dout);
  for (std::size_t i = 0; i < fx.n; ++i) {
    for (std::size_t o = 0; o < fx.dout; ++o) {
      const double exact = fx.exact(i, o);
      // The §10 budget is pure rounding: C·s_o/2, plus float headroom for
      // the dequantization affine itself.
      const double bound = qt.error_bound(o) * (1.0 + 1e-5) + 1e-5;
      EXPECT_NEAR(out[i * fx.dout + o], exact, bound)
          << "query " << i << " column " << o;
    }
  }
}

void expect_simd_matches_reference(const TableFixture& fx, const QuantizedTable& qt) {
  std::vector<float> fast(fx.n * fx.dout, -1.0f), ref(fx.n * fx.dout, -2.0f);
  tabular::aggregate_quantized(qt, fx.codes.data(), fx.n, fast.data(), fx.dout);
  tabular::aggregate_quantized_reference(qt, fx.codes.data(), fx.n, ref.data(), fx.dout);
  ASSERT_EQ(0, std::memcmp(fast.data(), ref.data(), fast.size() * sizeof(float)))
      << "SIMD aggregation is not bit-identical to the scalar reference";
}

// ------------------------------------------------------------ mode parsing

TEST(QuantMode, NamesAndParsingRoundTrip) {
  for (QuantMode mode : {QuantMode::kOff, QuantMode::kInt16, QuantMode::kInt8}) {
    EXPECT_EQ(mode, tabular::parse_quant_mode(tabular::quant_mode_name(mode)));
  }
  EXPECT_THROW(tabular::parse_quant_mode("int32"), std::invalid_argument);
  EXPECT_THROW(tabular::parse_quant_mode(""), std::invalid_argument);
  EXPECT_THROW(tabular::parse_quant_mode("INT8"), std::invalid_argument);
}

TEST(QuantMode, EnvKnobParsesAndRejectsTypos) {
  ::setenv("DART_QUANT", "int8", 1);
  EXPECT_EQ(QuantMode::kInt8, core::quant_mode_from_env());
  ::setenv("DART_QUANT", "bogus", 1);
  EXPECT_THROW(core::quant_mode_from_env(), std::invalid_argument);
  ::unsetenv("DART_QUANT");
  EXPECT_EQ(QuantMode::kOff, core::quant_mode_from_env());
}

// --------------------------------------------------------- error budget

TEST(QuantizeTable, Int16WithinErrorBudget) {
  TableFixture fx(/*c=*/4, /*k=*/32, /*dout=*/37, /*n=*/64, /*seed=*/101);
  QuantizedTable qt = tabular::quantize_table(fx.table.data(), fx.c, fx.k, fx.dout,
                                              QuantMode::kInt16);
  EXPECT_EQ(fx.c * fx.k * fx.dout, qt.q16.size());
  EXPECT_TRUE(qt.q8.empty());
  expect_within_budget(fx, qt);
}

TEST(QuantizeTable, Int8RowPathWithinErrorBudget) {
  TableFixture fx(/*c=*/4, /*k=*/32, /*dout=*/37, /*n=*/64, /*seed=*/202);
  QuantizedTable qt =
      tabular::quantize_table(fx.table.data(), fx.c, fx.k, fx.dout, QuantMode::kInt8);
  EXPECT_EQ(fx.c * fx.k * fx.dout, qt.q8.size());
  EXPECT_FALSE(qt.shuffle()) << "K=32 must not take the 16-entry vpshufb path";
  expect_within_budget(fx, qt);
}

TEST(QuantizeTable, Int8ShufflePathWithinErrorBudget) {
  TableFixture fx(/*c=*/2, /*k=*/16, /*dout=*/128, /*n=*/64, /*seed=*/303);
  QuantizedTable qt =
      tabular::quantize_table(fx.table.data(), fx.c, fx.k, fx.dout, QuantMode::kInt8);
  EXPECT_TRUE(qt.shuffle()) << "K=16, C=2 int8 must build the vpshufb LUT";
  EXPECT_EQ(fx.c * fx.dout * 16, qt.lut8.size());
  expect_within_budget(fx, qt);
}

TEST(QuantizeTable, ConstantColumnsQuantizeExactly) {
  TableFixture fx(/*c=*/3, /*k=*/8, /*dout=*/5, /*n=*/16, /*seed=*/404);
  QuantizedTable qt =
      tabular::quantize_table(fx.table.data(), fx.c, fx.k, fx.dout, QuantMode::kInt8);
  EXPECT_EQ(0.0f, qt.scales[0]);  // the fixture pins column 0 constant
  EXPECT_EQ(0.0f, qt.error_bound(0));
  std::vector<float> out(fx.n * fx.dout);
  tabular::aggregate_quantized(qt, fx.codes.data(), fx.n, out.data(), fx.dout);
  for (std::size_t i = 0; i < fx.n; ++i) {
    EXPECT_EQ(3.0f * 0.75f, out[i * fx.dout]);
  }
}

TEST(QuantizeTable, RejectsOffModeAndZeroDims) {
  TableFixture fx(2, 8, 4, 1, 1);
  EXPECT_THROW(tabular::quantize_table(fx.table.data(), 2, 8, 4, QuantMode::kOff),
               std::invalid_argument);
  EXPECT_THROW(tabular::quantize_table(fx.table.data(), 0, 8, 4, QuantMode::kInt8),
               std::invalid_argument);
}

// ------------------------------------------- SIMD vs reference bit-identity

TEST(Aggregate, SimdMatchesScalarReferenceInt16) {
  // DO = 37 exercises the 8-wide main loop plus a 5-column tail.
  TableFixture fx(4, 32, 37, 97, 11);
  expect_simd_matches_reference(
      fx, tabular::quantize_table(fx.table.data(), fx.c, fx.k, fx.dout, QuantMode::kInt16));
}

TEST(Aggregate, SimdMatchesScalarReferenceInt8Rows) {
  TableFixture fx(4, 32, 37, 97, 22);
  expect_simd_matches_reference(
      fx, tabular::quantize_table(fx.table.data(), fx.c, fx.k, fx.dout, QuantMode::kInt8));
}

TEST(Aggregate, SimdMatchesScalarReferenceInt8Shuffle) {
  // n = 97 exercises two full 32-row shuffle blocks plus a 33-row tail;
  // DO = 70 exercises the 64-column tile plus a 6-column tail.
  TableFixture fx(2, 16, 70, 97, 33);
  QuantizedTable qt =
      tabular::quantize_table(fx.table.data(), fx.c, fx.k, fx.dout, QuantMode::kInt8);
  ASSERT_TRUE(qt.shuffle());
  expect_simd_matches_reference(fx, qt);
}

// ------------------------------------------------------- kernel-level paths

/// A trained-from-random linear kernel (weights and activations are
/// irrelevant to the quantization contract; only shapes matter).
tabular::LinearKernel small_kernel(std::size_t k, std::size_t c) {
  const std::size_t di = 16, dout = 24;
  nn::Tensor weight = nn::Tensor::randn({dout, di}, 0.5f, 51);
  nn::Tensor bias = nn::Tensor::randn({dout}, 0.5f, 52);
  nn::Tensor rows = nn::Tensor::randn({64, di}, 1.0f, 53);
  tabular::KernelConfig config;
  config.num_prototypes = k;
  config.num_subspaces = c;
  config.kmeans_iters = 4;
  return tabular::LinearKernel(weight, bias, rows, config);
}

TEST(LinearKernelQuant, QueryStaysWithinColumnBudget) {
  for (QuantMode mode : {QuantMode::kInt16, QuantMode::kInt8}) {
    tabular::LinearKernel kernel = small_kernel(/*k=*/16, /*c=*/2);
    nn::Tensor rows = nn::Tensor::randn({32, kernel.in_dim()}, 1.0f, 54);
    nn::Tensor exact = kernel.query(rows);
    kernel.quantize(mode);
    EXPECT_EQ(mode, kernel.quant_mode());
    nn::Tensor quantized = kernel.query(rows);
    const QuantizedTable& qt = kernel.quantized();
    for (std::size_t r = 0; r < rows.dim(0); ++r) {
      for (std::size_t o = 0; o < kernel.out_dim(); ++o) {
        EXPECT_NEAR(quantized.row(r)[o], exact.row(r)[o],
                    qt.error_bound(o) * (1.0 + 1e-5) + 1e-5)
            << tabular::quant_mode_name(mode) << " row " << r << " col " << o;
      }
    }
    // kOff restores the exact float path bit-for-bit.
    kernel.quantize(QuantMode::kOff);
    nn::Tensor restored = kernel.query(rows);
    EXPECT_EQ(0, std::memcmp(restored.data(), exact.data(), exact.numel() * sizeof(float)));
  }
}

TEST(LinearKernelQuant, AttachRejectsMismatchedPayload) {
  tabular::LinearKernel kernel = small_kernel(16, 2);
  tabular::LinearKernel other = small_kernel(8, 2);
  other.quantize(QuantMode::kInt8);
  EXPECT_THROW(kernel.attach_quantized(other.quantized()), std::invalid_argument);
  QuantizedTable truncated =
      tabular::quantize_table(kernel.table().data(), 2, 16, kernel.out_dim(), QuantMode::kInt8);
  truncated.q8.pop_back();
  EXPECT_THROW(kernel.attach_quantized(std::move(truncated)), std::invalid_argument);
}

// ----------------------------------------------------- predictor-level path

nn::ModelConfig tiny_arch() {
  nn::ModelConfig a;
  a.seq_len = 4;
  a.addr_dim = 4;
  a.pc_dim = 4;
  a.dim = 8;
  a.ffn_dim = 16;
  a.out_dim = 12;
  a.heads = 2;
  a.layers = 1;
  return a;
}

tabular::TabularPredictor tiny_predictor() {
  nn::AddressPredictor model(tiny_arch(), 7);
  nn::Tensor addr = nn::Tensor::randn({48, 4, 4}, 0.6f, 11);
  nn::Tensor pc = nn::Tensor::randn({48, 4, 4}, 0.6f, 12);
  tabular::TabularizeOptions options;
  options.tables = tabular::TableConfig::uniform(8, 2);
  options.fine_tune = false;
  options.kmeans_iters = 4;
  options.max_train_samples = 48;
  return tabular::tabularize(model, addr, pc, options);
}

/// End-to-end tolerance for quantized-vs-exact probabilities. The linear
/// bound does not compose through LayerNorm / attention re-encoding, so the
/// tolerance is empirical: measured max |Δprob| on this fixture, with a 4x
/// safety margin (see DESIGN.md §10).
TEST(PredictorQuant, EndToEndProbabilitiesStayClose) {
  nn::Tensor addr = nn::Tensor::randn({16, 4, 4}, 0.8f, 21);
  nn::Tensor pc = nn::Tensor::randn({16, 4, 4}, 0.8f, 22);
  tabular::TabularPredictor predictor = tiny_predictor();
  nn::Tensor exact = predictor.forward(addr, pc);
  const struct {
    QuantMode mode;
    float tolerance;
  } cases[] = {{QuantMode::kInt16, 0.02f}, {QuantMode::kInt8, 0.20f}};
  for (const auto& c : cases) {
    predictor.set_quant_mode(c.mode);
    EXPECT_EQ(c.mode, predictor.quant_mode());
    EXPECT_GT(predictor.quantized_bytes(), 0u);
    nn::Tensor probs = predictor.forward(addr, pc);
    float max_diff = 0.0f;
    for (std::size_t i = 0; i < probs.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(probs[i]));
      ASSERT_GE(probs[i], 0.0f);
      ASSERT_LE(probs[i], 1.0f);
      max_diff = std::max(max_diff, std::abs(probs[i] - exact[i]));
    }
    EXPECT_LT(max_diff, c.tolerance) << tabular::quant_mode_name(c.mode);
  }
  // And back: kOff restores bit-exact float serving.
  predictor.set_quant_mode(QuantMode::kOff);
  EXPECT_EQ(0u, predictor.quantized_bytes());
  nn::Tensor restored = predictor.forward(addr, pc);
  EXPECT_EQ(0, std::memcmp(restored.data(), exact.data(), exact.numel() * sizeof(float)));
}

// ------------------------------------------------------ QNTT chunk round trip

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(QuantArtifact, PredictorRoundTripsBitExact) {
  for (QuantMode mode : {QuantMode::kInt16, QuantMode::kInt8}) {
    const std::string path = temp_path("dart_quant_roundtrip.dart");
    tabular::TabularPredictor original = tiny_predictor();
    original.set_quant_mode(mode);
    original.save(path);
    tabular::TabularPredictor loaded = tabular::TabularPredictor::load(path);
    EXPECT_EQ(mode, loaded.quant_mode());

    // The stored payload must attach verbatim: same integers, same affine.
    const QuantizedTable& a = original.head_kernel->quantized();
    const QuantizedTable& b = loaded.head_kernel->quantized();
    EXPECT_EQ(a.q16, b.q16);
    EXPECT_EQ(a.q8, b.q8);
    EXPECT_EQ(a.lut8, b.lut8);  // deterministic relayout, rebuilt on attach
    EXPECT_EQ(0, std::memcmp(a.scales.data(), b.scales.data(),
                             a.scales.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(a.offsets.data(), b.offsets.data(),
                             a.offsets.size() * sizeof(float)));

    // ... and serve bit-exactly vs the saving process.
    nn::Tensor addr = nn::Tensor::randn({8, 4, 4}, 0.8f, 31);
    nn::Tensor pc = nn::Tensor::randn({8, 4, 4}, 0.8f, 32);
    nn::Tensor ya = original.forward(addr, pc);
    nn::Tensor yb = loaded.forward(addr, pc);
    EXPECT_EQ(0, std::memcmp(ya.data(), yb.data(), ya.numel() * sizeof(float)));

    const io::ArtifactInfo info = io::read_artifact_info(path);
    EXPECT_EQ(mode, info.quant);
    std::filesystem::remove(path);
  }
}

TEST(QuantArtifact, FloatArtifactsLoadWithQuantOff) {
  // Artifacts that predate (or never carry) the QNTT chunk serve the exact
  // float tables — the dequantized-exact fallback.
  const std::string path = temp_path("dart_quant_float.dart");
  tabular::TabularPredictor original = tiny_predictor();
  original.save(path);
  tabular::TabularPredictor loaded = tabular::TabularPredictor::load(path);
  EXPECT_EQ(QuantMode::kOff, loaded.quant_mode());
  EXPECT_EQ(0u, loaded.quantized_bytes());
  EXPECT_EQ(QuantMode::kOff, io::read_artifact_info(path).quant);
  std::filesystem::remove(path);
}

TEST(QuantArtifact, FusedKernelRoundTripsBitExact) {
  const std::string path = temp_path("dart_quant_fused.dart");
  nn::Tensor rows = nn::Tensor::randn({64, 8}, 1.0f, 61);
  tabular::FusedKernelConfig config;
  config.num_prototypes = 16;
  config.kmeans_iters = 4;
  tabular::FusedKernel original(
      8, 12, [](const nn::Tensor& x) { return nn::Tensor::randn({x.dim(0), 12}, 1.0f, 62); },
      rows, config);
  original.quantize(QuantMode::kInt8);
  original.save(path);
  tabular::FusedKernel loaded = tabular::FusedKernel::load(path);
  EXPECT_EQ(QuantMode::kInt8, loaded.quant_mode());
  EXPECT_EQ(original.quantized().q8, loaded.quantized().q8);
  nn::Tensor queries = nn::Tensor::randn({16, 8}, 1.0f, 63);
  nn::Tensor ya = original.query(queries);
  nn::Tensor yb = loaded.query(queries);
  EXPECT_EQ(0, std::memcmp(ya.data(), yb.data(), ya.numel() * sizeof(float)));
  std::filesystem::remove(path);
}

TEST(QuantArtifact, CorruptedQuantChunkIsRejected) {
  const std::string path = temp_path("dart_quant_corrupt.dart");
  tabular::TabularPredictor original = tiny_predictor();
  original.set_quant_mode(QuantMode::kInt8);
  original.save(path);
  std::vector<char> bytes = slurp(path);
  // Flip a byte just after the QNTT tag: the container checksum catches it.
  const char tag[] = {'Q', 'N', 'T', 'T'};
  auto it = std::search(bytes.begin(), bytes.end(), tag, tag + 4);
  ASSERT_NE(bytes.end(), it);
  *(it + 16) ^= 0x5a;
  spit(path, bytes);
  EXPECT_THROW(tabular::TabularPredictor::load(path), io::ArtifactError);
  std::filesystem::remove(path);
}

TEST(QuantArtifact, TruncatedQuantChunkIsRejected) {
  const std::string path = temp_path("dart_quant_truncated.dart");
  tabular::TabularPredictor original = tiny_predictor();
  original.set_quant_mode(QuantMode::kInt16);
  original.save(path);
  std::vector<char> bytes = slurp(path);
  bytes.resize(bytes.size() - 24);  // drop the checksum tail
  spit(path, bytes);
  EXPECT_THROW(tabular::TabularPredictor::load(path), io::ArtifactError);
  std::filesystem::remove(path);
}

// --------------------------------------------------- load-time requantization

TEST(QuantArtifact, LoadDartArtifactAppliesRequestedMode) {
  const std::string path = temp_path("dart_quant_loadmode.dart");
  tabular::TabularPredictor original = tiny_predictor();
  original.save(path);  // stored float

  // kOff serves as stored (float here) ...
  sim::DartModel as_stored = core::load_dart_artifact(path);
  EXPECT_EQ(QuantMode::kOff, as_stored.predictor->quant_mode());
  // ... an explicit mode requantizes before the predictor is shared.
  sim::DartModel int8 = core::load_dart_artifact(path, nullptr, QuantMode::kInt8);
  EXPECT_EQ(QuantMode::kInt8, int8.predictor->quant_mode());
  EXPECT_GT(int8.predictor->quantized_bytes(), 0u);

  // A stored-quantized artifact served with kOff keeps its QNTT tables.
  original.set_quant_mode(QuantMode::kInt16);
  original.save(path);
  sim::DartModel stored_quant = core::load_dart_artifact(path);
  EXPECT_EQ(QuantMode::kInt16, stored_quant.predictor->quant_mode());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dart
