// Integration tests across the whole stack: trace -> dataset -> teacher ->
// KD student -> tabularization -> simulator, on shrunken configurations.
#include <gtest/gtest.h>

#include "core/configs.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"

namespace dart::core {
namespace {

PipelineOptions tiny_options() {
  PipelineOptions o = PipelineOptions::bench_defaults();
  o.raw_accesses = 60000;
  o.prep.max_samples = 1200;
  o.teacher_arch.layers = 1;
  o.teacher_arch.dim = 32;
  o.teacher_arch.heads = 2;
  o.teacher_arch.ffn_dim = 64;
  o.teacher_train.epochs = 4;
  o.student_train.epochs = 4;
  o.tab.tables = tabular::TableConfig::uniform(64, 2);
  o.tab.max_train_samples = 600;
  return o;
}

TEST(PipelineIntegration, PrepareBuildsAlignedSplits) {
  Pipeline pipe(trace::App::kLibquantum, tiny_options());
  pipe.prepare();
  EXPECT_GT(pipe.train_set().size(), 100u);
  EXPECT_GT(pipe.test_set().size(), 30u);
  EXPECT_EQ(pipe.train_set().addr.dim(1), tiny_options().prep.history);
  EXPECT_EQ(pipe.train_set().labels.dim(1), tiny_options().prep.bitmap_size);
}

TEST(PipelineIntegration, SequentialAppIsLearnableEndToEnd) {
  // libquantum is near-pure sequential: every model should score high,
  // and the tabular model must stay within a modest F1 drop (Table VII's
  // mechanism).
  Pipeline pipe(trace::App::kLibquantum, tiny_options());
  const double teacher = pipe.eval_nn(pipe.teacher()).f1;
  const double student = pipe.eval_nn(pipe.student()).f1;
  const double dart = pipe.eval_tabular(pipe.dart()).f1;
  EXPECT_GT(teacher, 0.85);
  EXPECT_GT(student, 0.85);
  EXPECT_GT(dart, teacher - 0.25);
}

TEST(PipelineIntegration, HardAppScoresLowerThanEasyApp) {
  // The Fig. 7 / Table VI observation: delta-rich mcf is harder than
  // delta-poor libquantum.
  PipelineOptions o = tiny_options();
  Pipeline easy(trace::App::kLibquantum, o);
  Pipeline hard(trace::App::kMcf, o);
  const double f1_easy = easy.eval_nn(easy.teacher()).f1;
  const double f1_hard = hard.eval_nn(hard.teacher()).f1;
  EXPECT_LT(f1_hard, f1_easy);
}

TEST(PipelineIntegration, DeterministicAcrossRuns) {
  PipelineOptions o = tiny_options();
  Pipeline a(trace::App::kGcc, o), b(trace::App::kGcc, o);
  const double fa = a.eval_nn(a.teacher()).f1;
  const double fb = b.eval_nn(b.teacher()).f1;
  EXPECT_DOUBLE_EQ(fa, fb);
}

TEST(PipelineIntegration, TabularizeHonorsVariantTables) {
  Pipeline pipe(trace::App::kGcc, tiny_options());
  tabular::TabularizeOptions tab;
  tab.tables = tabular::TableConfig::uniform(16, 1);
  tab.max_train_samples = 400;
  tabular::TabularPredictor small = pipe.tabularize(tab);
  tab.tables = tabular::TableConfig::uniform(128, 2);
  tabular::TabularPredictor large = pipe.tabularize(tab);
  EXPECT_LT(small.storage_bytes(), large.storage_bytes());
}

TEST(Experiment, RunsRuleBasedSweep) {
  ExperimentSpec spec;
  spec.pipeline = tiny_options();
  spec.apps = {trace::App::kLibquantum};
  spec.prefetchers = {"NextLine", "BO", "ISB", "Stride"};
  spec.parallel = false;
  const ExperimentResult result = ExperimentRunner(spec).run();
  ASSERT_EQ(result.cells.size(), 4u);
  for (const auto& c : result.cells) {
    EXPECT_GT(c.baseline_ipc, 0.0);
    EXPECT_GE(c.stats.pf_issued, 0u);
  }
  // On a sequential workload BO must deliver a clear IPC win.
  EXPECT_GT(result.cells[1].ipc_improvement, 0.02);
  const auto summary = result.summaries();
  ASSERT_EQ(summary.size(), 4u);
  EXPECT_EQ(summary[0].prefetcher, "NextLine");
}

TEST(Experiment, DartBeatsHighLatencyNnOnRegularApp) {
  ExperimentSpec spec;
  spec.pipeline = tiny_options();
  spec.apps = {trace::App::kLibquantum};
  spec.prefetchers = {"DART", "TransFetch"};
  spec.parallel = false;
  const ExperimentResult result = ExperimentRunner(spec).run();
  ASSERT_EQ(result.cells.size(), 2u);
  // The paper's headline: low-latency tables beat the high-latency NN.
  EXPECT_GE(result.cells[0].ipc_improvement, result.cells[1].ipc_improvement - 0.01);
  EXPECT_LT(result.cells[0].latency_cycles, result.cells[1].latency_cycles);
}

TEST(Configs, CanonicalArchitecturesAreConsistent) {
  const auto prep = default_preprocess();
  const auto teacher = paper_teacher_config();
  const auto student = paper_student_config();
  EXPECT_EQ(teacher.seq_len, prep.history);
  EXPECT_EQ(teacher.out_dim, prep.bitmap_size);
  EXPECT_EQ(student.dim, 32u);
  EXPECT_EQ(student.layers, 1u);
  EXPECT_EQ(teacher.layers, 4u);
  EXPECT_EQ(teacher.dim, 256u);
  // Variants match the paper's Table VIII tuples.
  EXPECT_EQ(dart_s_variant().tables.attention.k, 16u);
  EXPECT_EQ(dart_s_variant().tables.attention.c, 1u);
  EXPECT_EQ(dart_l_variant().arch.layers, 2u);
  EXPECT_EQ(dart_l_variant().tables.attention.k, 256u);
}

}  // namespace
}  // namespace dart::core
