// Golden equivalence tests for the zero-allocation tabular inference engine:
// a deliberately naive reference implementation (scalar per-row encodes,
// per-output gather aggregation over the exposed [C][K][DO] table) must match
// the optimized batch path bit-for-bit practically (<= 1e-6), across both the
// exact and hash-tree encoders, for the linear kernel, the attention kernel,
// and a seeded end-to-end TabularPredictor::forward.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/configs.hpp"
#include "nn/transformer.hpp"
#include "tabular/attention_kernel.hpp"
#include "tabular/linear_kernel.hpp"
#include "tabular/tabular_predictor.hpp"
#include "tabular/tabularizer.hpp"

namespace dart::tabular {
namespace {

// ---------------------------------------------------------------- references

/// Naive LinearKernel::query: scalar encode per (row, subspace), then a
/// per-output gather over the table — the pre-optimization access pattern,
/// expressed against the documented [C][K][DO] layout.
nn::Tensor naive_linear_query(const LinearKernel& kernel, const nn::Tensor& rows) {
  const std::size_t n = rows.dim(0);
  const std::size_t di = kernel.in_dim();
  const std::size_t dout = kernel.out_dim();
  const std::size_t c_count = kernel.num_subspaces();
  const std::size_t k = kernel.num_prototypes();
  const std::size_t sub = di / c_count;
  const std::vector<float>& table = kernel.table();
  nn::Tensor out({n, dout});
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint32_t> code(c_count);
    for (std::size_t c = 0; c < c_count; ++c) {
      code[c] = kernel.encoder(c).encode(rows.row(i) + c * sub);
    }
    for (std::size_t o = 0; o < dout; ++o) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < c_count; ++c) {
        acc += table[(c * k + code[c]) * dout + o];
      }
      out.at(i, o) = acc;
    }
  }
  return out;
}

/// Naive AttentionKernel::query (sigmoid-folded mode): scalar encodes,
/// gather aggregation, explicit V-column slices.
nn::Tensor naive_attention_query(const AttentionKernel& kernel, const nn::Tensor& q,
                                 const nn::Tensor& k, const nn::Tensor& v) {
  const std::size_t t_len = kernel.seq_len();
  const std::size_t dk = kernel.head_dim();
  const std::size_t kp = kernel.config().num_prototypes;
  const std::size_t ck = kernel.config().ck;
  const std::size_t ct = kernel.config().ct;
  const std::size_t sub_dk = dk / ck;
  const std::size_t sub_t = t_len / ct;
  // Stage 1: scores from the QK table.
  nn::Tensor scores({t_len, t_len});
  std::vector<std::uint32_t> qc(t_len * ck), kc(t_len * ck);
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t c = 0; c < ck; ++c) {
      qc[t * ck + c] = kernel.q_encoder(c).encode(q.row(t) + c * sub_dk);
      kc[t * ck + c] = kernel.k_encoder(c).encode(k.row(t) + c * sub_dk);
    }
  }
  for (std::size_t t1 = 0; t1 < t_len; ++t1) {
    for (std::size_t t2 = 0; t2 < t_len; ++t2) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < ck; ++c) {
        acc += kernel.qk_table()[c * kp * kp + qc[t1 * ck + c] * kp + kc[t2 * ck + c]];
      }
      scores.at(t1, t2) = acc;
    }
  }
  // Stage 2: encode score rows and V columns, aggregate from the QKV table.
  std::vector<std::uint32_t> sc(t_len * ct), vc(dk * ct);
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t c = 0; c < ct; ++c) {
      sc[t * ct + c] = kernel.s_encoder(c).encode(scores.row(t) + c * sub_t);
    }
  }
  std::vector<float> vcol(t_len);
  for (std::size_t d = 0; d < dk; ++d) {
    for (std::size_t t = 0; t < t_len; ++t) vcol[t] = v.at(t, d);
    for (std::size_t c = 0; c < ct; ++c) {
      vc[d * ct + c] = kernel.v_encoder(c).encode(vcol.data() + c * sub_t);
    }
  }
  nn::Tensor out({t_len, dk});
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t d = 0; d < dk; ++d) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < ct; ++c) {
        acc += kernel.qkv_table()[c * kp * kp + sc[t * ct + c] * kp + vc[d * ct + c]];
      }
      out.at(t, d) = acc;
    }
  }
  return out;
}

/// Naive TabularPredictor::forward_sample: Tensor arithmetic mirroring the
/// optimized raw-pointer path, built on the naive kernel references above.
nn::Tensor naive_forward_sample(const TabularPredictor& tab, const nn::Tensor& addr,
                                const nn::Tensor& pc) {
  const std::size_t t_len = tab.arch().seq_len;
  const std::size_t d = tab.arch().dim;
  const std::size_t dh = d / tab.arch().heads;
  nn::Tensor x = naive_linear_query(*tab.addr_kernel, addr);
  nn::Tensor xp = naive_linear_query(*tab.pc_kernel, pc);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] += xp[i] + tab.pos_encoding[i];
  for (const auto& layer : tab.layers) {
    nn::Tensor qkv = naive_linear_query(*layer.qkv, x);
    nn::Tensor concat({t_len, d});
    for (std::size_t h = 0; h < layer.heads.size(); ++h) {
      nn::Tensor q({t_len, dh}), k({t_len, dh}), v({t_len, dh});
      for (std::size_t t = 0; t < t_len; ++t) {
        const float* row = qkv.row(t);
        for (std::size_t j = 0; j < dh; ++j) {
          q.at(t, j) = row[h * dh + j];
          k.at(t, j) = row[d + h * dh + j];
          v.at(t, j) = row[2 * d + h * dh + j];
        }
      }
      nn::Tensor o = naive_attention_query(*layer.heads[h], q, k, v);
      for (std::size_t t = 0; t < t_len; ++t) {
        for (std::size_t j = 0; j < dh; ++j) concat.at(t, h * dh + j) = o.at(t, j);
      }
    }
    nn::Tensor attn = naive_linear_query(*layer.out_proj, concat);
    attn += x;
    x = layer.ln1.apply(attn);
    nn::Tensor hidden = naive_linear_query(*layer.ffn_hidden, x);
    for (std::size_t i = 0; i < hidden.numel(); ++i) {
      hidden[i] = hidden[i] > 0.0f ? hidden[i] : 0.0f;
    }
    nn::Tensor ffn = naive_linear_query(*layer.ffn_out, hidden);
    ffn += x;
    x = layer.ln2.apply(ffn);
  }
  x = tab.final_ln.apply(x);
  nn::Tensor per_token = naive_linear_query(*tab.head_kernel, x);
  nn::Tensor probs({tab.arch().out_dim});
  const float inv_t = 1.0f / static_cast<float>(t_len);
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t j = 0; j < tab.arch().out_dim; ++j) {
      probs[j] += per_token.at(t, j) * inv_t;
    }
  }
  for (std::size_t j = 0; j < probs.numel(); ++j) probs[j] = tab.sigmoid_lut(probs[j]);
  return probs;
}

// -------------------------------------------------------------------- fixtures

class LinearKernelGolden : public ::testing::TestWithParam<pq::EncoderKind> {};

TEST_P(LinearKernelGolden, OptimizedMatchesNaiveReference) {
  const std::size_t di = 16, dout = 24, n = 200;
  nn::Tensor w = nn::Tensor::randn({dout, di}, 0.8f, 101);
  nn::Tensor b = nn::Tensor::randn({dout}, 0.5f, 102);
  nn::Tensor train = nn::Tensor::randn({256, di}, 1.0f, 103);
  KernelConfig cfg;
  cfg.num_prototypes = 32;
  cfg.num_subspaces = 4;
  cfg.encoder = GetParam();
  LinearKernel kernel(w, b, train, cfg);
  nn::Tensor probe = nn::Tensor::randn({n, di}, 1.1f, 104);
  nn::Tensor fast = kernel.query(probe);
  nn::Tensor ref = naive_linear_query(kernel, probe);
  for (std::size_t i = 0; i < fast.numel(); ++i) {
    EXPECT_NEAR(fast[i], ref[i], 1e-6f) << "mismatch at flat index " << i;
  }
}

TEST_P(LinearKernelGolden, EncodeBatchMatchesScalarEncode) {
  nn::Tensor train = nn::Tensor::randn({300, 12}, 1.0f, 105);
  KernelConfig cfg;
  cfg.num_prototypes = 16;
  cfg.num_subspaces = 3;
  cfg.encoder = GetParam();
  nn::Tensor w = nn::Tensor::randn({5, 12}, 1.0f, 106);
  nn::Tensor b({5});
  LinearKernel kernel(w, b, train, cfg);
  nn::Tensor probe = nn::Tensor::randn({64, 12}, 1.3f, 107);
  for (std::size_t c = 0; c < cfg.num_subspaces; ++c) {
    const pq::Encoder& enc = kernel.encoder(c);
    std::vector<std::uint32_t> batch(probe.dim(0));
    enc.encode_batch(probe.data() + c * 4, 12, probe.dim(0), batch.data());
    for (std::size_t i = 0; i < probe.dim(0); ++i) {
      EXPECT_EQ(batch[i], enc.encode(probe.row(i) + c * 4)) << "row " << i << " subspace " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Encoders, LinearKernelGolden,
                         ::testing::Values(pq::EncoderKind::kExact, pq::EncoderKind::kHashTree));

class AttentionKernelGolden : public ::testing::TestWithParam<pq::EncoderKind> {};

TEST_P(AttentionKernelGolden, OptimizedMatchesNaiveReference) {
  const std::size_t n = 128, t = 8, dk = 8;
  nn::Tensor q = nn::Tensor::randn({n, t, dk}, 0.9f, 111);
  nn::Tensor k = nn::Tensor::randn({n, t, dk}, 0.9f, 112);
  nn::Tensor v = nn::Tensor::randn({n, t, dk}, 0.9f, 113);
  AttentionKernelConfig cfg;
  cfg.num_prototypes = 32;
  cfg.ck = 2;
  cfg.ct = 2;
  cfg.kmeans_iters = 8;
  cfg.encoder = GetParam();
  AttentionKernel kernel(q, k, v, cfg);
  for (std::size_t s = 0; s < 8; ++s) {
    nn::Tensor qs({t, dk}), ks({t, dk}), vs({t, dk});
    std::copy(q.data() + s * t * dk, q.data() + (s + 1) * t * dk, qs.data());
    std::copy(k.data() + s * t * dk, k.data() + (s + 1) * t * dk, ks.data());
    std::copy(v.data() + s * t * dk, v.data() + (s + 1) * t * dk, vs.data());
    nn::Tensor fast = kernel.query(qs, ks, vs);
    nn::Tensor ref = naive_attention_query(kernel, qs, ks, vs);
    for (std::size_t i = 0; i < fast.numel(); ++i) {
      EXPECT_NEAR(fast[i], ref[i], 1e-6f) << "sample " << s << " flat index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Encoders, AttentionKernelGolden,
                         ::testing::Values(pq::EncoderKind::kExact, pq::EncoderKind::kHashTree));

class EndToEndGolden : public ::testing::TestWithParam<pq::EncoderKind> {};

TEST_P(EndToEndGolden, BatchedForwardMatchesNaiveReference) {
  // Seeded, untrained model — tabularize exercises the real builder path.
  nn::ModelConfig arch = core::paper_student_config();
  nn::AddressPredictor model(arch, /*seed=*/42);
  const std::size_t n = 96;
  nn::Tensor addr = nn::Tensor::randn({n, arch.seq_len, arch.addr_dim}, 1.0f, 121);
  nn::Tensor pc = nn::Tensor::randn({n, arch.seq_len, arch.pc_dim}, 1.0f, 122);
  TabularizeOptions opt;
  opt.tables = TableConfig::uniform(16, 2);
  opt.fine_tune = false;
  opt.kmeans_iters = 4;
  opt.max_train_samples = 96;
  opt.encoder = GetParam();
  TabularPredictor tab = tabularize(model, addr, pc, opt);

  const std::size_t b_sz = 12;
  nn::Tensor probe_addr = nn::Tensor::randn({b_sz, arch.seq_len, arch.addr_dim}, 1.0f, 123);
  nn::Tensor probe_pc = nn::Tensor::randn({b_sz, arch.seq_len, arch.pc_dim}, 1.0f, 124);
  nn::Tensor batched = tab.forward(probe_addr, probe_pc);
  for (std::size_t b = 0; b < b_sz; ++b) {
    nn::Tensor a({arch.seq_len, arch.addr_dim}), p({arch.seq_len, arch.pc_dim});
    std::copy(probe_addr.data() + b * a.numel(), probe_addr.data() + (b + 1) * a.numel(),
              a.data());
    std::copy(probe_pc.data() + b * p.numel(), probe_pc.data() + (b + 1) * p.numel(), p.data());
    nn::Tensor ref = naive_forward_sample(tab, a, p);
    nn::Tensor single = tab.forward_sample(a, p);
    for (std::size_t j = 0; j < ref.numel(); ++j) {
      EXPECT_NEAR(batched.at(b, j), ref[j], 1e-6f) << "sample " << b << " output " << j;
      EXPECT_NEAR(single[j], ref[j], 1e-6f) << "sample " << b << " output " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Encoders, EndToEndGolden,
                         ::testing::Values(pq::EncoderKind::kExact, pq::EncoderKind::kHashTree));

TEST(TabularPredictorEdge, EmptyBatchReturnsEmptyTensor) {
  nn::ModelConfig arch = core::paper_student_config();
  nn::AddressPredictor model(arch, 43);
  nn::Tensor addr = nn::Tensor::randn({32, arch.seq_len, arch.addr_dim}, 1.0f, 131);
  nn::Tensor pc = nn::Tensor::randn({32, arch.seq_len, arch.pc_dim}, 1.0f, 132);
  TabularizeOptions opt;
  opt.tables = TableConfig::uniform(8, 2);
  opt.fine_tune = false;
  opt.kmeans_iters = 2;
  TabularPredictor tab = tabularize(model, addr, pc, opt);
  nn::Tensor empty_addr({0, arch.seq_len, arch.addr_dim});
  nn::Tensor empty_pc({0, arch.seq_len, arch.pc_dim});
  nn::Tensor out = tab.forward(empty_addr, empty_pc);
  EXPECT_EQ(out.dim(0), 0u);
  EXPECT_EQ(out.dim(1), arch.out_dim);
}

}  // namespace
}  // namespace dart::tabular
