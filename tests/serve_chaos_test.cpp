// Chaos tests for the overload-resilient serving layer (DESIGN.md §11):
// the deterministic fault-injection matrix — slow shard + deadline storm,
// stalled shard + watchdog restart, corrupt/truncated artifact swap
// quarantine, dropped park wakes, ring saturation with injected submit
// rejection, and degradation under sustained overload.
//
// The contract under test: every submitted request resolves to exactly one
// of {completed with the correct trace ID and bit-exact probabilities,
// explicitly shed (Response::Status::kShed), explicitly rejected at submit
// (return 0)} — overload and faults may slow or shed work but may never
// lose or corrupt it silently — and once the faults clear the server
// returns to Healthy and serves bit-exact again. Runs under ThreadSanitizer
// in the serve-chaos CI job.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "io/artifact.hpp"
#include "nn/tensor.hpp"
#include "nn/transformer.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"
#include "tabular/tabular_predictor.hpp"
#include "tabular/tabularizer.hpp"

namespace dart::serve {
namespace {

nn::ModelConfig tiny_arch() {
  nn::ModelConfig a;
  a.seq_len = 4;
  a.addr_dim = 4;
  a.pc_dim = 4;
  a.dim = 8;
  a.ffn_dim = 16;
  a.out_dim = 12;
  a.heads = 2;
  a.layers = 1;
  return a;
}

/// Deterministic tiny predictor via the real tabularize path (the same
/// construction the io_artifact round-trip tests prove artifact-codec
/// clean, which the degraded twin and swap_artifact tests rely on).
/// Different seeds give different tables, hence distinguishable answers.
std::shared_ptr<const tabular::TabularPredictor> make_model(std::uint64_t seed) {
  nn::AddressPredictor model(tiny_arch(), seed);
  nn::Tensor addr = nn::Tensor::randn({48, 4, 4}, 0.6f, seed + 100);
  nn::Tensor pc = nn::Tensor::randn({48, 4, 4}, 0.6f, seed + 101);
  tabular::TabularizeOptions options;
  options.tables = tabular::TableConfig::uniform(8, 2);
  options.fine_tune = false;
  options.kmeans_iters = 4;
  options.max_train_samples = 48;
  return std::make_shared<const tabular::TabularPredictor>(
      tabular::tabularize(model, addr, pc, options));
}

/// A deterministic bank of distinct feature inputs.
struct InputBank {
  std::size_t count, addr_len, pc_len;
  nn::Tensor addr, pc;

  InputBank(const nn::ModelConfig& arch, std::size_t n)
      : count(n),
        addr_len(arch.seq_len * arch.addr_dim),
        pc_len(arch.seq_len * arch.pc_dim),
        addr(nn::Tensor::randn({n, arch.seq_len, arch.addr_dim}, 1.0f, 777)),
        pc(nn::Tensor::randn({n, arch.seq_len, arch.pc_dim}, 1.0f, 778)) {}

  const float* addr_of(std::size_t i) const { return addr.data() + i * addr_len; }
  const float* pc_of(std::size_t i) const { return pc.data() + i * pc_len; }
};

/// Reference answers via the direct single-sample path.
std::vector<std::vector<float>> reference_probs(const tabular::TabularPredictor& model,
                                                const InputBank& bank, std::size_t out_dim) {
  tabular::InferenceWorkspace ws;
  std::vector<std::vector<float>> ref(bank.count, std::vector<float>(out_dim));
  for (std::size_t i = 0; i < bank.count; ++i) {
    model.forward_sample_into(bank.addr_of(i), bank.pc_of(i), ref[i].data(), ws);
  }
  return ref;
}

ServeConfig chaos_config() {
  ServeConfig c;
  c.shards = 1;
  c.queue_capacity = 64;
  c.completion_capacity = 64;
  c.batch_cap = 8;
  c.linger_us = 20;
  return c;
}

/// Disarms the global injector on scope exit so one failing test cannot
/// poison the rest of the binary.
struct FaultGuard {
  ~FaultGuard() { fault_injector().clear(); }
};

/// Full per-request accounting of one single-threaded client load: every
/// submit resolves to exactly one of completed / shed / rejected-at-submit,
/// completions echo the right trace ID, and every kOk answer must be
/// bit-exact against at least one of `refs` (several epochs/quant modes may
/// legitimately serve during a chaos run).
struct LoadOutcome {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;     ///< Response::Status::kOk
  std::uint64_t shed = 0;          ///< Response::Status::kShed
  std::uint64_t rejected = 0;      ///< submit() returned 0 (each retried)
  std::uint64_t id_mismatches = 0;
  std::uint64_t bad_probs = 0;     ///< kOk answer matching none of the refs
};

LoadOutcome drive(PrefetchServer& server, const InputBank& bank,
                  const std::vector<const std::vector<std::vector<float>>*>& refs,
                  std::size_t requests, std::size_t window) {
  const std::size_t out_dim = server.arch().out_dim;
  auto session = server.connect(window);
  std::vector<std::vector<float>> probs(window, std::vector<float>(out_dim));
  std::vector<std::uint64_t> expect_id(window, 0);
  std::vector<std::size_t> expect_input(window, 0);
  std::vector<std::size_t> free_slots;
  for (std::size_t i = 0; i < window; ++i) free_slots.push_back(i);

  LoadOutcome o;
  auto slot_of = [&](const float* p) -> std::size_t {
    for (std::size_t i = 0; i < window; ++i) {
      if (probs[i].data() == p) return i;
    }
    return window;
  };
  auto drain = [&](bool block) {
    Response r;
    do {
      while (session->poll(r)) {
        const std::size_t s = slot_of(r.probs);
        if (s == window || expect_id[s] != r.trace_id) ++o.id_mismatches;
        if (r.status == Response::Status::kShed) {
          ++o.shed;
        } else {
          ++o.completed;
          if (s != window) {
            bool exact = false;
            for (const auto* ref : refs) {
              exact = exact || std::memcmp(probs[s].data(), (*ref)[expect_input[s]].data(),
                                           out_dim * sizeof(float)) == 0;
            }
            if (!exact) ++o.bad_probs;
          }
        }
        if (s != window) free_slots.push_back(s);
      }
      if (block && session->in_flight() > 0) std::this_thread::yield();
    } while (block && session->in_flight() > 0);
  };

  for (std::size_t i = 0; i < requests; ++i) {
    while (free_slots.empty()) {
      drain(false);
      if (free_slots.empty()) std::this_thread::yield();
    }
    const std::size_t s = free_slots.back();
    free_slots.pop_back();
    const std::size_t input = i % bank.count;
    expect_input[s] = input;
    for (;;) {
      const std::uint64_t id =
          session->submit(bank.addr_of(input), bank.pc_of(input), probs[s].data());
      if (id != 0) {
        expect_id[s] = id;
        break;
      }
      ++o.rejected;  // explicit rejection: retry, never silently dropped
      drain(false);
      std::this_thread::yield();
    }
    ++o.submitted;
    drain(false);
  }
  drain(true);
  return o;
}

/// Polls `pred` until true or `timeout_ms` elapses.
template <typename Pred>
bool wait_until(Pred pred, std::size_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

std::string temp_artifact(const char* name,
                          const std::shared_ptr<const tabular::TabularPredictor>& model) {
  const std::string path = (std::filesystem::temp_directory_path() / name).string();
  io::ArtifactMeta meta;
  meta.producer = "serve_chaos_test";
  io::save_predictor_artifact(path, *model, meta);
  return path;
}

// ---------------------------------------------------------------- grammar

TEST(FaultSpec, ParsesClausesAndParams) {
  EXPECT_TRUE(parse_fault_specs("").empty());
  EXPECT_TRUE(parse_fault_specs(" ; ;").empty());
  const auto specs =
      parse_fault_specs("slow-shard:shard=1,us=5000; drop-wake:p=0.5,seed=42 ;stall-shard:shard=0");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].kind, "slow-shard");
  ASSERT_EQ(specs[0].params.size(), 2u);
  EXPECT_EQ(specs[0].params[0].first, "shard");
  EXPECT_EQ(specs[0].params[0].second, "1");
  EXPECT_EQ(specs[1].kind, "drop-wake");
  EXPECT_EQ(specs[1].params[1].second, "42");
  EXPECT_EQ(specs[2].kind, "stall-shard");
}

TEST(FaultSpec, RejectsMalformedGrammar) {
  EXPECT_THROW(parse_fault_specs("slow-shard:shard"), std::invalid_argument);   // not key=value
  EXPECT_THROW(parse_fault_specs("slow-shard:=3"), std::invalid_argument);      // empty key
  EXPECT_THROW(parse_fault_specs(":p=1"), std::invalid_argument);               // empty kind
}

TEST(FaultInjector, RejectsBadSpecsAndKeepsThePreviousPlanArmed) {
  FaultGuard guard;
  FaultInjector& inj = fault_injector();
  inj.install("slow-shard:shard=0,us=1");
  EXPECT_TRUE(inj.armed());
  // Semantic errors: unknown kind, unknown/missing params, bad values.
  EXPECT_THROW(inj.install("explode-shard:shard=0"), std::invalid_argument);
  EXPECT_THROW(inj.install("slow-shard:shard=0"), std::invalid_argument);       // missing us
  EXPECT_THROW(inj.install("slow-shard:shard=0,us=abc"), std::invalid_argument);
  EXPECT_THROW(inj.install("slow-shard:shard=0,us=1,wat=2"), std::invalid_argument);
  EXPECT_THROW(inj.install("drop-wake:p=1.5"), std::invalid_argument);          // p out of range
  EXPECT_THROW(inj.install("drop-wake:seed=1"), std::invalid_argument);         // missing p
  EXPECT_TRUE(inj.armed()) << "a failed install must leave the previous plan armed";
  inj.install("");
  EXPECT_FALSE(inj.armed());
}

// ----------------------------------------------- slow shard + deadlines

TEST(ServeChaos, SlowShardDeadlineStormShedsExplicitlyAndRecoversBitExact) {
  FaultGuard guard;
  const nn::ModelConfig arch = tiny_arch();
  const auto model = make_model(1);
  const InputBank bank(arch, 16);
  const auto ref = reference_probs(*model, bank, arch.out_dim);

  ServeConfig config = chaos_config();
  config.deadline_us = 10000;  // 10 ms: generous for a healthy tiny model
  PrefetchServer server(model, config);

  // Every batch takes 30 ms > the 10 ms deadline: queued requests expire.
  fault_injector().install("slow-shard:shard=0,us=30000");
  const LoadOutcome storm = drive(server, bank, {&ref}, 96, 32);
  EXPECT_EQ(storm.submitted, 96u);
  EXPECT_EQ(storm.completed + storm.shed, storm.submitted)
      << "a deadline storm must resolve every request, never lose one";
  EXPECT_GT(storm.shed, 0u) << "30 ms batches cannot meet 10 ms deadlines";
  EXPECT_EQ(storm.id_mismatches, 0u);
  EXPECT_EQ(storm.bad_probs, 0u) << "a served (non-shed) answer must still be bit-exact";

  ServeStatsSummary stats = server.stats();
  EXPECT_EQ(stats.shed, storm.shed);
  EXPECT_GT(stats.deadline_missed, 0u);

  // Faults cleared: the same server serves everything bit-exact again.
  fault_injector().clear();
  const LoadOutcome calm = drive(server, bank, {&ref}, 64, 16);
  EXPECT_EQ(calm.completed, 64u);
  EXPECT_EQ(calm.shed, 0u);
  EXPECT_EQ(calm.id_mismatches, 0u);
  EXPECT_EQ(calm.bad_probs, 0u);
  EXPECT_TRUE(server.stats().all_healthy);
}

// ------------------------------------------- stalled shard + watchdog

TEST(ServeChaos, WatchdogRestartsAStalledShardWithoutLosingRequests) {
  FaultGuard guard;
  const nn::ModelConfig arch = tiny_arch();
  const auto model = make_model(1);
  const InputBank bank(arch, 16);
  const auto ref = reference_probs(*model, bank, arch.out_dim);

  ServeConfig config = chaos_config();
  config.watchdog_ms = 25;        // fast sweeps so the test finishes quickly
  config.watchdog_miss_budget = 2;
  PrefetchServer server(model, config);

  // The first batch on shard 0 stops heartbeating; the watchdog must
  // declare the stall, abandon the thread (its held batch is shed), and
  // respawn a successor that drains the surviving ingress ring.
  fault_injector().install("stall-shard:shard=0,after=0");
  const LoadOutcome stalled = drive(server, bank, {&ref}, 40, 40);
  EXPECT_EQ(stalled.submitted, 40u);
  EXPECT_EQ(stalled.completed + stalled.shed, 40u)
      << "a restarted shard must resolve every accepted request";
  EXPECT_GT(stalled.shed, 0u) << "the abandoned thread's held batch is shed, not lost";
  EXPECT_EQ(stalled.id_mismatches, 0u);
  EXPECT_EQ(stalled.bad_probs, 0u);
  EXPECT_EQ(fault_injector().counters().stalls, 1u);

  ASSERT_TRUE(wait_until([&] { return server.stats().watchdog_restarts >= 1; }, 2000))
      << "watchdog never restarted the stalled shard";
  ASSERT_TRUE(wait_until([&] { return server.stats().all_healthy; }, 2000))
      << "shard did not return to Healthy after the restart";

  // The stall clause is exactly-once; the successor serves bit-exact.
  fault_injector().clear();
  const LoadOutcome after = drive(server, bank, {&ref}, 32, 16);
  EXPECT_EQ(after.completed, 32u);
  EXPECT_EQ(after.shed, 0u);
  EXPECT_EQ(after.bad_probs, 0u);
  EXPECT_TRUE(server.stats().all_healthy);
}

// ------------------------------------------ artifact swap quarantine

TEST(ServeChaos, CorruptArtifactSwapIsQuarantinedAndTheOldEpochKeepsServing) {
  FaultGuard guard;
  const nn::ModelConfig arch = tiny_arch();
  const auto model_a = make_model(1);
  const auto model_b = make_model(5000);
  const InputBank bank(arch, 8);
  const auto ref_a = reference_probs(*model_a, bank, arch.out_dim);
  const auto ref_b = reference_probs(*model_b, bank, arch.out_dim);
  ASSERT_NE(std::memcmp(ref_a[0].data(), ref_b[0].data(), arch.out_dim * sizeof(float)), 0)
      << "models must be distinguishable or the test proves nothing";
  const std::string path_b = temp_artifact("chaos_swap_b.dart", model_b);

  ServeConfig config = chaos_config();
  config.reload_retries = 2;
  config.reload_backoff_us = 100;
  PrefetchServer server(model_a, config);
  const std::uint64_t epoch_before = server.epoch();

  // Every read of the artifact image is corrupted: all attempts (1 + 2
  // retries) must be rejected, the swap must throw, and the old epoch must
  // keep serving — an ArtifactError never takes the server down.
  fault_injector().install("corrupt-artifact:offset=32,count=10");
  EXPECT_THROW(server.swap_artifact(path_b), io::ArtifactError);
  EXPECT_EQ(server.epoch(), epoch_before) << "a rejected swap must publish nothing";
  EXPECT_EQ(server.stats().reload_rejected, 3u);  // initial attempt + 2 retries
  EXPECT_GE(fault_injector().counters().artifacts_mutated, 3u);
  const LoadOutcome during = drive(server, bank, {&ref_a}, 32, 8);
  EXPECT_EQ(during.completed, 32u);
  EXPECT_EQ(during.bad_probs, 0u) << "old epoch must serve bit-exact through the quarantine";

  // Truncation that heals after one read: attempt 0 is rejected, the retry
  // reads a clean image and the swap goes through.
  fault_injector().install("truncate-artifact:bytes=8,count=1");
  const std::uint64_t epoch_after = server.swap_artifact(path_b);
  EXPECT_GT(epoch_after, epoch_before);
  EXPECT_EQ(server.stats().reload_rejected, 4u);  // 3 from the corrupt phase + 1 here
  const LoadOutcome swapped = drive(server, bank, {&ref_b}, 32, 8);
  EXPECT_EQ(swapped.completed, 32u);
  EXPECT_EQ(swapped.bad_probs, 0u) << "the published swap must serve the new artifact bit-exact";
  EXPECT_TRUE(server.stats().all_healthy);
  std::remove(path_b.c_str());
}

TEST(ServeChaos, GeometryMismatchSwapFailsFastWithoutRetries) {
  FaultGuard guard;
  nn::ModelConfig wide = tiny_arch();
  wide.out_dim = 24;  // client buffers are sized to out_dim = 12
  nn::AddressPredictor nn_model(wide, 9);
  nn::Tensor addr = nn::Tensor::randn({48, 4, 4}, 0.6f, 900);
  nn::Tensor pc = nn::Tensor::randn({48, 4, 4}, 0.6f, 901);
  tabular::TabularizeOptions options;
  options.tables = tabular::TableConfig::uniform(8, 2);
  options.fine_tune = false;
  options.kmeans_iters = 4;
  options.max_train_samples = 48;
  const auto mismatched = std::make_shared<const tabular::TabularPredictor>(
      tabular::tabularize(nn_model, addr, pc, options));
  const std::string path = temp_artifact("chaos_swap_wide.dart", mismatched);

  PrefetchServer server(make_model(1), chaos_config());
  const std::uint64_t before = server.epoch();
  // A valid artifact of the wrong geometry is deterministic damage: fail
  // immediately (no retry loop), count it, publish nothing.
  EXPECT_THROW(server.swap_artifact(path), std::invalid_argument);
  EXPECT_EQ(server.epoch(), before);
  EXPECT_EQ(server.stats().reload_rejected, 1u);
  std::remove(path.c_str());
}

// --------------------------------------------------------- drop-wake

TEST(ServeChaos, DroppedParkWakesDelayButNeverLoseRequests) {
  FaultGuard guard;
  const nn::ModelConfig arch = tiny_arch();
  const auto model = make_model(1);
  const InputBank bank(arch, 16);
  const auto ref = reference_probs(*model, bank, arch.out_dim);

  PrefetchServer server(model, chaos_config());
  // Suppress every post-push wake: the 200 us park timeout is the designed
  // backstop, so every request still completes — late, never lost. The
  // load is a paced trickle (one request at a time with idle gaps) so the
  // shard actually parks between requests; a continuous stream keeps it
  // hot and the wake path — the thing under test — never runs.
  fault_injector().install("drop-wake:p=1.0,seed=7");
  auto session = server.connect(8);
  std::vector<float> probs(arch.out_dim);
  for (std::size_t i = 0; i < 64; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(400));
    const std::size_t input = i % bank.count;
    const std::uint64_t id = session->submit(bank.addr_of(input), bank.pc_of(input), probs.data());
    ASSERT_NE(id, 0u) << "an idle shard must never backpressure a lone submit";
    Response r;
    ASSERT_TRUE(wait_until([&] { return session->poll(r); }, 1000))
        << "request " << i << " was lost: the park timeout backstop never fired";
    EXPECT_EQ(r.trace_id, id);
    EXPECT_EQ(r.status, Response::Status::kOk);
    EXPECT_EQ(std::memcmp(probs.data(), ref[input].data(), arch.out_dim * sizeof(float)), 0);
  }
  EXPECT_GT(fault_injector().counters().wakes_dropped, 0u)
      << "the fault never fired; the test exercised nothing";
}

// ------------------------------------------------- ring saturation

TEST(ServeChaos, SaturatedTinyRingWithInjectedRejectionsLosesNothing) {
  FaultGuard guard;
  const nn::ModelConfig arch = tiny_arch();
  const auto model = make_model(1);
  const InputBank bank(arch, 16);
  const auto ref = reference_probs(*model, bank, arch.out_dim);

  ServeConfig config = chaos_config();
  config.queue_capacity = 2;  // constant genuine backpressure...
  PrefetchServer server(model, config);
  // ...plus a deterministic 25% injected rejection on top of it.
  fault_injector().install("reject-submit:p=0.25,seed=9");
  const LoadOutcome o = drive(server, bank, {&ref}, 200, 4);
  EXPECT_EQ(o.submitted, 200u);
  EXPECT_EQ(o.completed, 200u) << "every accepted request completes despite saturation";
  EXPECT_GT(o.rejected, 0u);
  EXPECT_EQ(o.id_mismatches, 0u);
  EXPECT_EQ(o.bad_probs, 0u);
  EXPECT_GT(fault_injector().counters().submits_rejected, 0u);
}

// ------------------------------------- degradation under overload

TEST(ServeChaos, SustainedOverloadDegradesToInt8TwinAndRecovers) {
  FaultGuard guard;
  const nn::ModelConfig arch = tiny_arch();
  const auto model = make_model(1);
  const InputBank bank(arch, 16);
  const auto ref_float = reference_probs(*model, bank, arch.out_dim);
  // The degraded twin the server builds is the artifact-codec clone with
  // int8 tables — reproduce it exactly for the acceptance set.
  auto twin = std::make_shared<tabular::TabularPredictor>(io::clone_predictor(*model));
  twin->set_quant_mode(tabular::QuantMode::kInt8);
  const auto ref_int8 = reference_probs(*twin, bank, arch.out_dim);

  ServeConfig config = chaos_config();
  config.batch_cap = 4;
  config.watermark_hi = 8;
  config.watermark_lo = 2;
  PrefetchServer server(model, config);

  // 500 us per batch of <= 4 while a 64-deep client window floods the
  // queue: depth stays above the high watermark long enough to cross the
  // sustained-overload threshold and degrade the shard.
  fault_injector().install("slow-shard:shard=0,us=500");
  const LoadOutcome o = drive(server, bank, {&ref_float, &ref_int8}, 300, 64);
  EXPECT_EQ(o.submitted, 300u);
  EXPECT_EQ(o.completed + o.shed, 300u);
  EXPECT_EQ(o.id_mismatches, 0u);
  EXPECT_EQ(o.bad_probs, 0u)
      << "every answer must be bit-exact against the float epoch or its int8 twin";
  EXPECT_GT(o.rejected, 0u) << "the closed admission gate never rejected a submit";

  ServeStatsSummary stats = server.stats();
  EXPECT_GE(stats.degraded_entries, 1u) << "sustained overload never degraded the shard";
  EXPECT_GT(stats.admission_rejected, 0u);

  // Load gone, faults cleared: the drained shard must exit Degraded.
  fault_injector().clear();
  ASSERT_TRUE(wait_until(
      [&] {
        const ServeStatsSummary s = server.stats();
        return s.degraded_exits >= s.degraded_entries && s.all_healthy;
      },
      2000))
      << "shard did not recover from Degraded after the queue drained";
  const LoadOutcome calm = drive(server, bank, {&ref_float}, 32, 8);
  EXPECT_EQ(calm.completed, 32u);
  EXPECT_EQ(calm.bad_probs, 0u) << "a recovered shard must serve the primary epoch bit-exact";
}

}  // namespace
}  // namespace dart::serve
