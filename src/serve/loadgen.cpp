#include "serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "trace/trace.hpp"

namespace dart::serve {

namespace {

/// One client's in-flight slot: borrowed feature/result buffers plus the
/// trace ID the matching response must echo.
struct Slot {
  std::vector<float> addr, pc, probs;
  std::uint64_t expect_id = 0;
};

/// Per-stream tallies, summed into the report after the join.
struct StreamCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t backoff_us = 0;
  std::uint64_t id_mismatches = 0;
};

/// Backpressure backoff bounds: exponential from base to cap, jittered.
constexpr std::uint64_t kBackoffBaseUs = 4;
constexpr std::uint64_t kBackoffCapUs = 512;

/// Replays one app stream: rolls a T-deep history over the trace, issues
/// one request per post-warmup access (wrapping the trace as needed) and
/// drains completions to keep at most `window` requests in flight.
void run_stream(ClientSession& session, const LoadOptions& options,
                const trace::Workload& workload, std::uint64_t seed, StreamCounters& counters) {
  const trace::PreprocessOptions& prep = options.prep;
  const std::size_t t_len = prep.history;
  const trace::MemoryTrace trace = workload.generate(options.trace_accesses, seed);

  std::vector<Slot> slots(options.window);
  for (Slot& s : slots) {
    s.addr.resize(t_len * prep.addr_segments);
    s.pc.resize(t_len * prep.pc_segments);
    s.probs.resize(prep.bitmap_size);
  }
  std::vector<std::size_t> free_slots;
  for (std::size_t i = 0; i < slots.size(); ++i) free_slots.push_back(i);

  // Slot identification: responses echo the probs pointer, which maps back
  // to the slot index by address.
  auto slot_of = [&](const float* probs) -> std::size_t {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].probs.data() == probs) return i;
    }
    return slots.size();
  };
  auto drain = [&](bool block) {
    Response r;
    do {
      while (session.poll(r)) {
        if (r.status == Response::Status::kShed) {
          ++counters.shed;  // explicit drop: the slot frees, probs hold no result
        } else {
          ++counters.completed;
        }
        const std::size_t idx = slot_of(r.probs);
        if (idx == slots.size() || slots[idx].expect_id != r.trace_id) {
          ++counters.id_mismatches;
        }
        if (idx != slots.size()) free_slots.push_back(idx);
      }
      if (block && session.in_flight() > 0) std::this_thread::yield();
    } while (block && session.in_flight() > 0);
  };

  std::vector<std::uint64_t> hist_blocks(t_len, 0), hist_pcs(t_len, 0);
  std::size_t hist_pos = 0, access = 0;
  // Warm the history window before the first request.
  for (; access < t_len && access < trace.size(); ++access) {
    hist_blocks[hist_pos] = trace::block_of(trace[access].addr);
    hist_pcs[hist_pos] = trace[access].pc;
    hist_pos = (hist_pos + 1) % t_len;
  }

  for (std::uint64_t issued = 0; issued < options.requests_per_stream; ++issued) {
    const trace::MemoryAccess& acc = trace[access % trace.size()];
    ++access;
    hist_blocks[hist_pos] = trace::block_of(acc.addr);
    hist_pcs[hist_pos] = acc.pc;
    hist_pos = (hist_pos + 1) % t_len;

    // Claim a slot, draining completions while the window is saturated.
    while (free_slots.empty()) {
      drain(false);
      if (free_slots.empty()) std::this_thread::yield();
    }
    const std::size_t idx = free_slots.back();
    free_slots.pop_back();
    Slot& slot = slots[idx];
    for (std::size_t t = 0; t < t_len; ++t) {
      const std::size_t h = (hist_pos + t) % t_len;  // oldest -> newest
      trace::segment_value(hist_blocks[h], prep.addr_segments, prep.segment_bits,
                           slot.addr.data() + t * prep.addr_segments);
      trace::segment_value(hist_pcs[h] >> 2, prep.pc_segments, prep.segment_bits,
                           slot.pc.data() + t * prep.pc_segments);
    }
    // Submit, absorbing backpressure by draining and retrying under bounded
    // exponential backoff with seeded jitter — a hot spin here would steal
    // the very cycles the overloaded shard needs to drain its queue, and
    // synchronized clients would retry in lockstep without the jitter.
    for (std::uint64_t attempt = 0;; ++attempt) {
      slot.expect_id = session.submit(slot.addr.data(), slot.pc.data(), slot.probs.data());
      if (slot.expect_id != 0) break;
      ++counters.rejected;
      drain(false);
      const std::uint64_t cap =
          std::min(kBackoffCapUs, kBackoffBaseUs << std::min<std::uint64_t>(attempt, 7));
      // Deterministic jitter in [cap/2, cap]: a fresh SplitMix64 draw per
      // retry, seeded by the stream, so runs are reproducible.
      const std::uint64_t sleep_us =
          cap / 2 + common::derive_seed(seed, counters.rejected) % (cap / 2 + 1);
      counters.backoff_us += sleep_us;
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    }
    ++counters.submitted;
    drain(false);
  }
  drain(true);  // collect every outstanding response before exiting
}

}  // namespace

LoadOptions LoadOptions::from_env() {
  LoadOptions o;
  o.streams = static_cast<std::size_t>(
      common::env_int("DART_SERVE_STREAMS", static_cast<std::int64_t>(o.streams)));
  o.requests_per_stream = static_cast<std::size_t>(
      common::env_int("DART_SERVE_REQUESTS", static_cast<std::int64_t>(o.requests_per_stream)));
  o.window = static_cast<std::size_t>(
      common::env_int("DART_SERVE_WINDOW", static_cast<std::int64_t>(o.window)));
  const std::string wls = common::env_string("DART_SERVE_WORKLOADS", "");
  if (!wls.empty()) o.workloads = trace::parse_workload_list(wls);
  return o;
}

LoadReport run_client_load(PrefetchServer& server, const LoadOptions& options) {
  const nn::ModelConfig arch = server.arch();
  if (options.prep.history != arch.seq_len || options.prep.addr_segments != arch.addr_dim ||
      options.prep.pc_segments != arch.pc_dim || options.prep.bitmap_size != arch.out_dim) {
    throw std::invalid_argument(
        "run_client_load: preprocessing geometry does not match the serving model");
  }
  std::vector<trace::Workload> workloads = options.workloads;
  if (workloads.empty()) {
    workloads.assign(trace::all_apps().begin(), trace::all_apps().end());
  }

  std::vector<std::unique_ptr<ClientSession>> sessions;
  std::vector<StreamCounters> counters(options.streams);
  for (std::size_t i = 0; i < options.streams; ++i) {
    sessions.push_back(server.connect(options.window));
  }

  common::Stopwatch watch;
  std::vector<std::thread> clients;
  clients.reserve(options.streams);
  for (std::size_t i = 0; i < options.streams; ++i) {
    clients.emplace_back([&, i] {
      run_stream(*sessions[i], options, workloads[i % workloads.size()],
                 common::derive_seed(options.seed, i), counters[i]);
    });
  }
  for (auto& c : clients) c.join();

  LoadReport report;
  report.streams = options.streams;
  report.elapsed_s = watch.elapsed_s();
  for (const StreamCounters& c : counters) {
    report.submitted += c.submitted;
    report.completed += c.completed;
    report.shed += c.shed;
    report.rejected += c.rejected;
    report.backoff_us += c.backoff_us;
    report.id_mismatches += c.id_mismatches;
  }
  report.predictions_per_sec =
      report.elapsed_s > 0.0 ? static_cast<double>(report.completed) / report.elapsed_s : 0.0;
  report.server = server.stats();
  return report;
}

}  // namespace dart::serve
