// Simulated client load for the serving layer (DESIGN.md §9): N client
// threads replay synthetic app access streams (src/trace generators)
// against a PrefetchServer, exactly as a prefetching front-end would — a
// rolling T-deep history window per stream, segmented into the model's
// [T, S] feature rows per request, submitted with bounded in-flight
// windows and polled for completions. Used by bench/bench_serve.cpp and
// `dart_run --serve`.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/server.hpp"
#include "trace/preprocess.hpp"
#include "trace/workloads.hpp"

namespace dart::serve {

/// Client-load shape. `streams` threads each issue `requests_per_stream`
/// requests; stream i replays workload `workloads[i % workloads.size()]`.
struct LoadOptions {
  std::size_t streams = 8;              ///< concurrent client threads
  std::size_t requests_per_stream = 20000;  ///< requests issued per stream
  std::size_t window = 256;             ///< max in-flight requests per client
  std::size_t trace_accesses = 100000;  ///< generated accesses per stream (wraps)
  std::uint64_t seed = 1;               ///< trace-generation seed base
  trace::PreprocessOptions prep;        ///< feature geometry (must match the server)
  /// Replayed workloads (trace::App converts implicitly); empty = all of
  /// Table IV. Accepts the full spec grammar via DART_SERVE_WORKLOADS, so
  /// the serving load generator replays the same corpus as the sweeps.
  std::vector<trace::Workload> workloads;

  /// Defaults overridden by DART_SERVE_STREAMS / DART_SERVE_REQUESTS /
  /// DART_SERVE_WINDOW / DART_SERVE_WORKLOADS (';'-separated spec list).
  static LoadOptions from_env();
};

/// Outcome of one load run. The no-loss invariants (`completed + shed ==
/// submitted`, `lost == 0`, `id_mismatches == 0`) are deterministic;
/// throughput/latency fields are host-dependent. Backpressure retries use
/// bounded exponential backoff with seeded jitter (base 4 us, cap 512 us),
/// never a hot spin.
struct LoadReport {
  std::size_t streams = 0;
  std::uint64_t submitted = 0;       ///< requests accepted by the server
  std::uint64_t completed = 0;       ///< responses served (Response::Status::kOk)
  std::uint64_t shed = 0;            ///< responses explicitly shed by the server
  std::uint64_t rejected = 0;        ///< backpressure rejections (each retried)
  std::uint64_t backoff_us = 0;      ///< total client backoff slept across retries
  std::uint64_t id_mismatches = 0;   ///< responses with an unexpected trace ID
  double elapsed_s = 0.0;            ///< wall-clock of the client phase
  double predictions_per_sec = 0.0;  ///< completed / elapsed_s
  ServeStatsSummary server;          ///< server-side counters at completion
};

/// Runs the load against `server` and blocks until every stream has
/// submitted its quota and received every response. Throws
/// std::invalid_argument when `options.prep` geometry does not match the
/// server's model architecture.
LoadReport run_client_load(PrefetchServer& server, const LoadOptions& options);

}  // namespace dart::serve
