#include "serve/id_generator.hpp"

#include <atomic>

#include "common/rng.hpp"

namespace dart::serve {
namespace {

/// SplitMix64 step: passes BigCrush, one multiply-xorshift chain per ID —
/// cheap enough to sit on the per-request hot path.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class DefaultIdGenerator final : public IdGenerator {
 public:
  explicit DefaultIdGenerator(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t trace_id() const override {
    // Per-thread stream state, lazily seeded per (thread, generator) pair.
    // Distinct threads draw from decorrelated SplitMix64 streams (disjoint
    // with overwhelming probability: distinct derive_seed starting points
    // on a 2^64 cycle), so no atomic is touched after the first call.
    thread_local const DefaultIdGenerator* owner = nullptr;
    thread_local std::uint64_t state = 0;
    if (owner != this) {
      owner = this;
      state = common::derive_seed(seed_, streams_.fetch_add(1, std::memory_order_relaxed));
    }
    std::uint64_t id = splitmix64(state);
    while (id == 0) id = splitmix64(state);  // 0 is the reserved "no id"
    return id;
  }

 private:
  const std::uint64_t seed_;
  mutable std::atomic<std::uint64_t> streams_{0};
};

}  // namespace

std::shared_ptr<const IdGenerator> default_id_generator(std::uint64_t seed) {
  return std::make_shared<DefaultIdGenerator>(seed);
}

}  // namespace dart::serve
