#include "serve/id_generator.hpp"

#include <atomic>

#include "common/rng.hpp"

namespace dart::serve {
namespace {

class DefaultIdGenerator final : public IdGenerator {
 public:
  explicit DefaultIdGenerator(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t trace_id() const override {
    // Per-thread stream state, lazily seeded per (thread, generator) pair.
    // Distinct threads draw from decorrelated SplitMix64 streams (disjoint
    // with overwhelming probability: distinct derive_seed starting points
    // on a 2^64 cycle), so no atomic is touched after the first call.
    thread_local const DefaultIdGenerator* owner = nullptr;
    thread_local std::uint64_t state = 0;
    if (owner != this) {
      owner = this;
      state = common::derive_seed(seed_, streams_.fetch_add(1, std::memory_order_relaxed));
    }
    std::uint64_t id = common::splitmix64_next(state);
    while (id == 0) id = common::splitmix64_next(state);  // 0 is the reserved "no id"
    return id;
  }

 private:
  const std::uint64_t seed_;
  mutable std::atomic<std::uint64_t> streams_{0};
};

}  // namespace

std::shared_ptr<const IdGenerator> default_id_generator(std::uint64_t seed) {
  return std::make_shared<DefaultIdGenerator>(seed);
}

}  // namespace dart::serve
