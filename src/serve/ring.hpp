// Bounded lock-free rings for the serving layer (DESIGN.md §9).
//
// Two shapes, one discipline: fixed power-of-two capacity, monotonically
// increasing 64-bit positions masked into slot indices (wraparound never
// resets a position, so full/empty tests are plain subtractions), and
// cache-line-aligned producer/consumer state so the two sides never false-
// share. Both rings are *rejecting*: `try_push` returns false when full and
// the caller decides (backpressure at ingress, bounded retry at egress) —
// the rings themselves never block, allocate, or drop.
//
//  * SpscRing — single producer, single consumer (the per-client completion
//    path). Wait-free on both sides; each side caches the opposing index and
//    refreshes it only on apparent-full/apparent-empty, so steady-state
//    operations touch one shared cache line instead of two.
//  * MpscRing — multiple producers, single consumer (the per-shard ingress
//    path). A Vyukov-style bounded queue: producers claim positions with a
//    CAS on the tail, per-slot sequence numbers publish the payload, and the
//    single consumer pops without any atomic RMW.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace dart::serve {

/// Rounds `n` up to the next power of two (minimum 2), so ring capacities
/// can mask positions instead of dividing.
inline std::size_t ceil_pow2(std::size_t n) {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Bounded wait-free single-producer / single-consumer ring.
///
/// `T` must be default-constructible and copyable (the serving layer moves
/// small POD request/response records). Exactly one thread may call
/// `try_push` and exactly one thread may call `try_pop`; the payload write
/// is published by the release store of the producer position and consumed
/// under the matching acquire load.
template <typename T>
class SpscRing {
 public:
  /// Ring holding at least `capacity` elements (rounded up to a power of
  /// two, minimum 2). `start_pos` is the initial head/tail position —
  /// production rings start at 0; tests start near the uint64 wrap points
  /// to prove position arithmetic survives index-type overflow.
  explicit SpscRing(std::size_t capacity, std::uint64_t start_pos = 0)
      : capacity_(ceil_pow2(capacity)),
        mask_(capacity_ - 1),
        slots_(new T[capacity_]),
        tail_(start_pos),
        head_cache_(start_pos),
        head_(start_pos),
        tail_cache_(start_pos) {}

  /// Producer side: enqueues `v`; false when the ring is full.
  bool try_push(const T& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    slots_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: dequeues into `out`; false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Element count as last published (racy by design; monitoring only).
  /// The subtraction is wrap-safe: positions are modular uint64, so the
  /// difference is exact even when the tail has wrapped past 2^64.
  std::size_t size_approx() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_relaxed) -
                                    head_.load(std::memory_order_relaxed));
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<T[]> slots_;
  // Producer-owned line: tail position plus its stale view of the head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  // Consumer-owned line: head position plus its stale view of the tail.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
};

/// Bounded lock-free multi-producer / single-consumer ring (Vyukov bounded
/// queue, consumer side simplified for a single popper).
///
/// Each slot carries a sequence number: `seq == pos` means free for the
/// producer claiming position `pos`; `seq == pos + 1` means the payload at
/// `pos` is published for the consumer; after popping, the consumer
/// re-arms the slot with `seq = pos + capacity` for its next lap. Producers
/// contend only on the tail CAS; the consumer performs no atomic RMW at all.
template <typename T>
class MpscRing {
 public:
  /// Ring holding at least `capacity` elements (rounded up to a power of
  /// two, minimum 2). `start_pos` is the initial head/tail position —
  /// production rings start at 0; tests start near 2^63 / 2^64 to prove the
  /// sequence arithmetic survives index-type overflow. Each slot is armed
  /// with the first position at or past `start_pos` that maps to it.
  explicit MpscRing(std::size_t capacity, std::uint64_t start_pos = 0)
      : capacity_(ceil_pow2(capacity)),
        mask_(capacity_ - 1),
        cells_(new Cell[capacity_]),
        tail_(start_pos),
        head_(start_pos) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      // base + i cannot wrap here (base <= 2^64 - capacity, i < capacity);
      // the += capacity for slots behind start_pos may wrap, which is
      // exactly the modular position the producer will claim them with.
      std::uint64_t pos = (start_pos & ~static_cast<std::uint64_t>(mask_)) + i;
      if (pos < start_pos) pos += capacity_;
      cells_[i].seq.store(pos, std::memory_order_relaxed);
    }
  }

  /// Any producer thread: enqueues `v`; false when the ring is full.
  bool try_push(const T& v) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      // Subtract in uint64 (wraps mod 2^64) and reinterpret as signed:
      // |seq - pos| < 2 * capacity, so the sign survives wraparound.
      // Casting each operand separately would overflow at positions
      // crossing 2^63.
      const std::int64_t diff = static_cast<std::int64_t>(seq - pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = v;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed `pos`; retry with the new tail.
      } else if (diff < 0) {
        // The slot still holds an unconsumed lap-old element: ring is full.
        return false;
      } else {
        // Another producer claimed `pos`; chase the tail.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// The single consumer thread: dequeues into `out`; false when empty.
  bool try_pop(T& out) {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    // Wrap-safe signed comparison (see try_push).
    if (static_cast<std::int64_t>(seq - (pos + 1)) < 0) {
      return false;  // producer has not published this position yet
    }
    out = cell.value;
    cell.seq.store(pos + capacity_, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Element count as last published (racy by design; used for the shard
  /// queue-depth counters). Computed with wrap-safe modular subtraction —
  /// comparing raw positions would report 0 whenever the tail wraps past
  /// 2^64 ahead of the head. Any difference beyond the capacity is a
  /// transient racy view and is clamped to 0.
  std::size_t size_approx() const {
    const std::uint64_t depth = tail_.load(std::memory_order_relaxed) -
                                head_.load(std::memory_order_relaxed);
    return depth <= capacity_ ? static_cast<std::size_t>(depth) : 0;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq;
    T value;
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producers (CAS)
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer only
};

}  // namespace dart::serve
