// Prefetch-as-a-service (DESIGN.md §9): a multi-client inference server
// over `.dart` artifacts. N independent client streams push requests
// through lock-free MPSC ingress rings into a shard-per-core engine; each
// shard owns an immutable `TabularPredictor` epoch and one reusable
// `InferenceWorkspace`, micro-batches queued requests into the batch-32/64
// blocks where `bench_batch_inference.json` shows peak throughput, and
// answers over per-client SPSC completion rings. Artifacts hot-swap without
// dropping in-flight requests: shards adopt a new epoch only at batch
// boundaries and the old model is retired by epoch (shared_ptr) reclamation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/id_generator.hpp"
#include "serve/shard.hpp"
#include "tabular/quant.hpp"

namespace dart::serve {

/// Server-wide tuning knobs. `from_env()` reads the `DART_SERVE_*`
/// environment variables documented in the README knob table.
struct ServeConfig {
  std::size_t shards = 0;             ///< shard threads; 0 = hardware concurrency
  std::size_t queue_capacity = 1024;  ///< per-shard ingress ring depth
  std::size_t completion_capacity = 1024;  ///< default per-client egress ring depth
  std::size_t batch_cap = 64;         ///< micro-batch size limit
  std::size_t linger_us = 50;         ///< max batch-straggler wait
  bool pin_threads = false;           ///< pin shard i to core i
  std::uint64_t id_seed = 0x5eed;     ///< trace-ID generator seed
  /// Per-request deadline stamped at submit, microseconds; 0 = none. A
  /// request still queued past its deadline is completed as kShed instead
  /// of served (DESIGN.md §11).
  std::uint64_t deadline_us = 0;
  /// Queue-depth admission watermarks; 0 disables overload control. Above
  /// `watermark_hi` a shard refuses new submits and, sustained, degrades to
  /// its int8 twin epoch; it recovers at `watermark_lo` (0 = hi/2).
  std::size_t watermark_hi = 0;
  std::size_t watermark_lo = 0;
  /// Watchdog sweep interval in milliseconds; 0 disables the watchdog. A
  /// shard whose heartbeat is unchanged for `watchdog_miss_budget`
  /// consecutive sweeps is declared stalled and its thread restarted.
  std::size_t watchdog_ms = 1000;
  std::size_t watchdog_miss_budget = 8;
  /// swap_artifact quarantine policy: a load rejected as io::ArtifactError
  /// is retried up to `reload_retries` times with doubling backoff starting
  /// at `reload_backoff_us`, then rethrown — the old epoch serves on.
  std::size_t reload_retries = 3;
  std::uint64_t reload_backoff_us = 1000;
  /// Table-quantization mode applied to artifacts loaded by the
  /// path-taking constructor and swap_artifact (DESIGN.md §10). kOff
  /// serves artifacts as stored (including any QNTT chunk they carry);
  /// epochs are always published already-quantized, so shards never
  /// observe a mode switch mid-serve.
  tabular::QuantMode quant = tabular::QuantMode::kOff;

  /// Defaults overridden by DART_SERVE_SHARDS / DART_SERVE_QUEUE /
  /// DART_SERVE_BATCH / DART_SERVE_LINGER_US / DART_SERVE_PIN /
  /// DART_SERVE_DEADLINE_US / DART_SERVE_WATERMARK_HI /
  /// DART_SERVE_WATERMARK_LO / DART_SERVE_WATCHDOG_MS / DART_QUANT.
  static ServeConfig from_env();
};

class PrefetchServer;

/// One client's connection: a submission facade plus the SPSC completion
/// ring responses come back on. Create via PrefetchServer::connect; a
/// session is bound to one shard (round-robin at connect time) so a
/// client's requests complete in submission order. All methods must be
/// called from a single client thread.
class ClientSession {
 public:
  /// Submits one inference request. `addr` ([T, addr_dim]) and `pc`
  /// ([T, pc_dim]) are the segmented feature rows, `probs_out` receives
  /// out_dim probabilities; all three buffers are borrowed until the
  /// matching Response is popped. Returns the request's nonzero trace ID,
  /// or 0 on backpressure (ingress ring full — caller retries after
  /// draining completions).
  std::uint64_t submit(const float* addr, const float* pc, float* probs_out);

  /// Pops one completion; false when none is pending. After a true return,
  /// `out.probs` is published and readable.
  bool poll(Response& out);

  /// Requests submitted minus responses popped on this session.
  std::size_t in_flight() const { return in_flight_; }

  /// The shard this session is bound to.
  std::size_t shard() const { return shard_; }

 private:
  friend class PrefetchServer;
  ClientSession(PrefetchServer& server, std::size_t shard, std::size_t completion_capacity,
                std::shared_ptr<const IdGenerator> ids)
      : server_(server), shard_(shard), completions_(completion_capacity), ids_(std::move(ids)) {}

  PrefetchServer& server_;
  std::size_t shard_;
  SpscRing<Response> completions_;
  std::shared_ptr<const IdGenerator> ids_;
  std::size_t in_flight_ = 0;
};

/// The sharded inference server. Construction spins up the shard threads;
/// destruction (or stop()) drains and joins them. Thread-safe: connect,
/// swap_model/swap_artifact, and stats() may race with serving.
class PrefetchServer {
 public:
  /// Serves `model` (shared, immutable — the shares_mutable_model() audit
  /// in serve/shard.cpp pins why that is required) under `config`.
  PrefetchServer(std::shared_ptr<const tabular::TabularPredictor> model,
                 const ServeConfig& config);

  /// Convenience: loads the `.dart` artifact at `path` (via the
  /// core::load_dart_artifact reload path) and serves it.
  PrefetchServer(const std::string& path, const ServeConfig& config);

  ~PrefetchServer();

  PrefetchServer(const PrefetchServer&) = delete;
  PrefetchServer& operator=(const PrefetchServer&) = delete;

  /// Opens a client session bound to the next shard (round-robin).
  /// `completion_capacity` 0 uses the config default; it must be at least
  /// the client's maximum in-flight window.
  std::unique_ptr<ClientSession> connect(std::size_t completion_capacity = 0);

  /// Atomically publishes `model` as a new epoch; shards adopt it at their
  /// next batch boundary and in-flight requests finish on the epoch that
  /// admitted them. The input/output geometry (seq_len, addr_dim, pc_dim,
  /// out_dim) must match the serving model — client feature buffers are
  /// sized to it — else std::invalid_argument. Returns the new epoch.
  std::uint64_t swap_model(std::shared_ptr<const tabular::TabularPredictor> model);

  /// Hot-swaps to the `.dart` artifact at `path`, validate-then-publish: the
  /// bytes are read, parsed, checksum-verified and geometry-checked in full
  /// before any shard can observe the new epoch, so a corrupt or truncated
  /// artifact is quarantined (counted in stats().reload_rejected, retried
  /// `reload_retries` times with doubling backoff) while the old epoch keeps
  /// serving. Throws io::ArtifactError after the retry budget, or
  /// std::invalid_argument immediately on a geometry mismatch — either way
  /// the server keeps running on the previously published epoch.
  std::uint64_t swap_artifact(const std::string& path);

  /// Epoch currently published to the shards (starts at 1).
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Stops and joins every shard after draining (idempotent). Clients must
  /// have stopped submitting; every accepted request is still completed.
  void stop();

  /// Aggregated per-shard counters and merged latency quantiles.
  ServeStatsSummary stats() const;

  /// Architecture of the currently published model (input geometry is
  /// stable across swaps by contract).
  nn::ModelConfig arch() const;

  /// Number of serving shard threads.
  std::size_t num_shards() const { return shards_.size(); }

  /// The configuration the server was constructed with (shards resolved).
  const ServeConfig& config() const { return config_; }

 private:
  friend class ClientSession;

  ModelEpoch current_model() const;
  /// Builds the int8 twin a Degraded shard serves (null when overload
  /// control is off; the primary itself when it is already int8).
  std::shared_ptr<const tabular::TabularPredictor> make_degraded_twin(
      const std::shared_ptr<const tabular::TabularPredictor>& model) const;
  /// Watchdog sweep loop: heartbeat deltas -> miss budget -> restart.
  void watchdog_loop();

  ServeConfig config_;
  std::atomic<std::uint64_t> epoch_{1};
  mutable std::mutex model_mu_;      ///< guards model_ (the cold swap path)
  ModelEpoch model_;                 ///< latest published epoch
  std::vector<std::unique_ptr<ShardEngine>> shards_;
  std::shared_ptr<const IdGenerator> ids_;
  std::atomic<std::size_t> next_client_{0};
  std::atomic<std::uint64_t> reload_rejected_{0};  ///< quarantined artifact swaps

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;       ///< guarded by watchdog_mu_
  std::thread watchdog_;
};

}  // namespace dart::serve
