#include "serve/server.hpp"

#include <stdexcept>

#include "common/env.hpp"
#include "core/artifact_cache.hpp"
#include "core/configs.hpp"

namespace dart::serve {

namespace {

/// Geometry contract for hot-swap: client feature/output buffers are sized
/// to the serving model, so every published epoch must agree on them.
void check_geometry(const nn::ModelConfig& a, const nn::ModelConfig& b) {
  if (a.seq_len != b.seq_len || a.addr_dim != b.addr_dim || a.pc_dim != b.pc_dim ||
      a.out_dim != b.out_dim) {
    throw std::invalid_argument(
        "PrefetchServer: new model's input/output geometry (T, addr_dim, pc_dim, out_dim) "
        "does not match the serving model");
  }
}

}  // namespace

ServeConfig ServeConfig::from_env() {
  ServeConfig c;
  c.shards = static_cast<std::size_t>(common::env_int("DART_SERVE_SHARDS", 0));
  c.queue_capacity =
      static_cast<std::size_t>(common::env_int("DART_SERVE_QUEUE", static_cast<std::int64_t>(c.queue_capacity)));
  c.batch_cap =
      static_cast<std::size_t>(common::env_int("DART_SERVE_BATCH", static_cast<std::int64_t>(c.batch_cap)));
  c.linger_us =
      static_cast<std::size_t>(common::env_int("DART_SERVE_LINGER_US", static_cast<std::int64_t>(c.linger_us)));
  c.pin_threads = common::env_int("DART_SERVE_PIN", 0) != 0;
  c.quant = core::quant_mode_from_env();
  return c;
}

PrefetchServer::PrefetchServer(std::shared_ptr<const tabular::TabularPredictor> model,
                               const ServeConfig& config)
    : config_(config), ids_(default_id_generator(config.id_seed)) {
  if (model == nullptr) throw std::invalid_argument("PrefetchServer: null model");
  if (config_.shards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    config_.shards = hw == 0 ? 1 : hw;
  }
  if (config_.batch_cap == 0) config_.batch_cap = 1;
  model_ = ModelEpoch{std::move(model), epoch_.load(std::memory_order_relaxed)};
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    ShardConfig sc;
    sc.queue_capacity = config_.queue_capacity;
    sc.batch_cap = config_.batch_cap;
    sc.linger_us = config_.linger_us;
    sc.pin_core = config_.pin_threads ? static_cast<int>(i) : -1;
    shards_.push_back(std::make_unique<ShardEngine>(i, sc, current_model(), epoch_,
                                                    [this] { return current_model(); }));
  }
}

PrefetchServer::PrefetchServer(const std::string& path, const ServeConfig& config)
    : PrefetchServer(core::load_dart_artifact(path, nullptr, config.quant).predictor, config) {}

PrefetchServer::~PrefetchServer() { stop(); }

std::unique_ptr<ClientSession> PrefetchServer::connect(std::size_t completion_capacity) {
  if (completion_capacity == 0) completion_capacity = config_.completion_capacity;
  const std::size_t shard =
      next_client_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  // Not make_unique: the constructor is private to this friend.
  return std::unique_ptr<ClientSession>(
      new ClientSession(*this, shard, completion_capacity, ids_));
}

std::uint64_t PrefetchServer::swap_model(
    std::shared_ptr<const tabular::TabularPredictor> model) {
  if (model == nullptr) throw std::invalid_argument("PrefetchServer: null model");
  std::lock_guard<std::mutex> lock(model_mu_);
  check_geometry(model_.model->arch(), model->arch());
  const std::uint64_t next = model_.epoch + 1;
  model_ = ModelEpoch{std::move(model), next};
  // Publish after the model is in place: a shard seeing the new epoch
  // number takes model_mu_ in current_model() and reads a complete record.
  epoch_.store(next, std::memory_order_release);
  return next;
}

std::uint64_t PrefetchServer::swap_artifact(const std::string& path) {
  // The quant mode is applied inside load_dart_artifact, BEFORE the epoch
  // is published — shards only ever adopt fully-quantized models.
  return swap_model(core::load_dart_artifact(path, nullptr, config_.quant).predictor);
}

ModelEpoch PrefetchServer::current_model() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

nn::ModelConfig PrefetchServer::arch() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_.model->arch();
}

void PrefetchServer::stop() {
  for (auto& shard : shards_) shard->stop();
}

ServeStatsSummary PrefetchServer::stats() const {
  ServeStatsSummary summary;
  LatencyHistogram merged;
  std::uint64_t occupancy = 0;
  for (const auto& shard : shards_) {
    ShardStatsSnapshot s = snapshot(shard->stats());
    summary.requests += s.requests;
    summary.batches += s.batches;
    occupancy += s.occupancy_sum;
    merged.merge(shard->stats().latency);
    summary.shards.push_back(s);
  }
  summary.p50_ns = merged.quantile(0.50);
  summary.p99_ns = merged.quantile(0.99);
  summary.avg_batch =
      summary.batches == 0 ? 0.0 : static_cast<double>(occupancy) / static_cast<double>(summary.batches);
  return summary;
}

std::uint64_t ClientSession::submit(const float* addr, const float* pc, float* probs_out) {
  Request r;
  r.trace_id = ids_->trace_id();
  r.addr = addr;
  r.pc = pc;
  r.probs_out = probs_out;
  r.completions = &completions_;
  r.enqueue_ns = now_ns();
  if (!server_.shards_[shard_]->submit(r)) return 0;
  ++in_flight_;
  return r.trace_id;
}

bool ClientSession::poll(Response& out) {
  if (!completions_.try_pop(out)) return false;
  --in_flight_;
  return true;
}

}  // namespace dart::serve
