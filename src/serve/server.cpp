#include "serve/server.hpp"

#include <stdexcept>
#include <utility>

#include "common/env.hpp"
#include "core/artifact_cache.hpp"
#include "core/configs.hpp"
#include "io/artifact.hpp"
#include "serve/fault.hpp"

namespace dart::serve {

namespace {

/// Geometry contract for hot-swap: client feature/output buffers are sized
/// to the serving model, so every published epoch must agree on them.
void check_geometry(const nn::ModelConfig& a, const nn::ModelConfig& b) {
  if (a.seq_len != b.seq_len || a.addr_dim != b.addr_dim || a.pc_dim != b.pc_dim ||
      a.out_dim != b.out_dim) {
    throw std::invalid_argument(
        "PrefetchServer: new model's input/output geometry (T, addr_dim, pc_dim, out_dim) "
        "does not match the serving model");
  }
}

}  // namespace

ServeConfig ServeConfig::from_env() {
  ServeConfig c;
  c.shards = static_cast<std::size_t>(common::env_int("DART_SERVE_SHARDS", 0));
  c.queue_capacity =
      static_cast<std::size_t>(common::env_int("DART_SERVE_QUEUE", static_cast<std::int64_t>(c.queue_capacity)));
  c.batch_cap =
      static_cast<std::size_t>(common::env_int("DART_SERVE_BATCH", static_cast<std::int64_t>(c.batch_cap)));
  c.linger_us =
      static_cast<std::size_t>(common::env_int("DART_SERVE_LINGER_US", static_cast<std::int64_t>(c.linger_us)));
  c.pin_threads = common::env_int("DART_SERVE_PIN", 0) != 0;
  c.deadline_us = static_cast<std::uint64_t>(
      common::env_int("DART_SERVE_DEADLINE_US", static_cast<std::int64_t>(c.deadline_us)));
  c.watermark_hi = static_cast<std::size_t>(
      common::env_int("DART_SERVE_WATERMARK_HI", static_cast<std::int64_t>(c.watermark_hi)));
  c.watermark_lo = static_cast<std::size_t>(
      common::env_int("DART_SERVE_WATERMARK_LO", static_cast<std::int64_t>(c.watermark_lo)));
  c.watchdog_ms = static_cast<std::size_t>(
      common::env_int("DART_SERVE_WATCHDOG_MS", static_cast<std::int64_t>(c.watchdog_ms)));
  c.quant = core::quant_mode_from_env();
  return c;
}

PrefetchServer::PrefetchServer(std::shared_ptr<const tabular::TabularPredictor> model,
                               const ServeConfig& config)
    : config_(config), ids_(default_id_generator(config.id_seed)) {
  if (model == nullptr) throw std::invalid_argument("PrefetchServer: null model");
  if (config_.shards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    config_.shards = hw == 0 ? 1 : hw;
  }
  if (config_.batch_cap == 0) config_.batch_cap = 1;
  if (config_.watermark_hi != 0 && config_.watermark_lo == 0) {
    config_.watermark_lo = config_.watermark_hi / 2;
  }
  auto degraded = make_degraded_twin(model);
  model_ = ModelEpoch{std::move(model), std::move(degraded),
                      epoch_.load(std::memory_order_relaxed)};
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    ShardConfig sc;
    sc.queue_capacity = config_.queue_capacity;
    sc.batch_cap = config_.batch_cap;
    sc.linger_us = config_.linger_us;
    sc.pin_core = config_.pin_threads ? static_cast<int>(i) : -1;
    sc.watermark_hi = config_.watermark_hi;
    sc.watermark_lo = config_.watermark_lo;
    shards_.push_back(std::make_unique<ShardEngine>(i, sc, current_model(), epoch_,
                                                    [this] { return current_model(); }));
  }
  if (config_.watchdog_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

PrefetchServer::PrefetchServer(const std::string& path, const ServeConfig& config)
    : PrefetchServer(core::load_dart_artifact(path, nullptr, config.quant).predictor, config) {}

PrefetchServer::~PrefetchServer() { stop(); }

std::unique_ptr<ClientSession> PrefetchServer::connect(std::size_t completion_capacity) {
  if (completion_capacity == 0) completion_capacity = config_.completion_capacity;
  const std::size_t shard =
      next_client_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  // Not make_unique: the constructor is private to this friend.
  return std::unique_ptr<ClientSession>(
      new ClientSession(*this, shard, completion_capacity, ids_));
}

std::shared_ptr<const tabular::TabularPredictor> PrefetchServer::make_degraded_twin(
    const std::shared_ptr<const tabular::TabularPredictor>& model) const {
  // Twins exist only for the Degraded state, so overload control must be
  // armed — and a primary already on the int8 path is its own twin.
  if (config_.watermark_hi == 0) return nullptr;
  if (config_.quant == tabular::QuantMode::kInt8) return model;
  // The predictor is deliberately non-copyable (shards share one immutable
  // instance); the artifact codec's in-memory round trip is the sanctioned
  // bit-exact clone. set_quant_mode happens strictly before publication, so
  // no shard ever observes a mode switch (DESIGN.md §10).
  auto twin = std::make_shared<tabular::TabularPredictor>(io::clone_predictor(*model));
  twin->set_quant_mode(tabular::QuantMode::kInt8);
  return twin;
}

std::uint64_t PrefetchServer::swap_model(
    std::shared_ptr<const tabular::TabularPredictor> model) {
  if (model == nullptr) throw std::invalid_argument("PrefetchServer: null model");
  // Built outside the lock: cloning + quantizing the twin is cold-path work
  // that must not block shards reloading via current_model().
  auto degraded = make_degraded_twin(model);
  std::lock_guard<std::mutex> lock(model_mu_);
  check_geometry(model_.model->arch(), model->arch());
  const std::uint64_t next = model_.epoch + 1;
  model_ = ModelEpoch{std::move(model), std::move(degraded), next};
  // Publish after the model is in place: a shard seeing the new epoch
  // number takes model_mu_ in current_model() and reads a complete record.
  epoch_.store(next, std::memory_order_release);
  return next;
}

std::uint64_t PrefetchServer::swap_artifact(const std::string& path) {
  std::uint64_t backoff_us = config_.reload_backoff_us == 0 ? 1 : config_.reload_backoff_us;
  for (std::size_t attempt = 0;; ++attempt) {
    std::shared_ptr<const tabular::TabularPredictor> predictor;
    try {
      // Validate-then-publish: read the whole image, then parse, checksum
      // and (below, in swap_model) geometry-check it before any shard can
      // observe the new epoch. The quant mode is applied inside the load,
      // so shards only ever adopt fully-quantized models.
      std::vector<std::uint8_t> bytes = io::read_artifact_file(path);
      fault_injector().mutate_artifact(bytes);
      predictor =
          core::load_dart_artifact_bytes(std::move(bytes), path, nullptr, config_.quant).predictor;
    } catch (const io::ArtifactError&) {
      // Quarantine: the previous epoch keeps serving. Transient damage
      // (half-written file mid-copy) deserves a bounded retry with backoff.
      reload_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (attempt >= config_.reload_retries) throw;
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us *= 2;
      continue;
    }
    try {
      return swap_model(std::move(predictor));
    } catch (const std::invalid_argument&) {
      // Geometry mismatch is deterministic — no retry can fix it.
      reload_rejected_.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
  }
}

ModelEpoch PrefetchServer::current_model() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

nn::ModelConfig PrefetchServer::arch() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_.model->arch();
}

void PrefetchServer::watchdog_loop() {
  const std::uint64_t grace_us = static_cast<std::uint64_t>(config_.watchdog_ms) * 1000ULL;
  std::vector<std::uint64_t> last_heartbeat(shards_.size(), 0);
  std::vector<std::size_t> misses(shards_.size(), 0);
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    if (watchdog_cv_.wait_for(lock, std::chrono::milliseconds(config_.watchdog_ms),
                              [this] { return watchdog_stop_; })) {
      return;
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::uint64_t hb = shards_[i]->stats().heartbeat.load(std::memory_order_relaxed);
      if (hb != last_heartbeat[i]) {
        last_heartbeat[i] = hb;
        misses[i] = 0;
        // Self-heal: a shard declared stalled that resumed on its own (it
        // was descheduled, not wedged) goes back to Healthy untouched.
        shards_[i]->clear_stalled();
        continue;
      }
      if (++misses[i] < config_.watchdog_miss_budget) continue;
      // Heartbeat flat for the whole miss budget: declare the stall, then
      // drain/restart the thread. Held requests are shed (never lost), the
      // ingress ring survives, and the successor re-adopts the latest
      // epoch at its first batch boundary.
      shards_[i]->mark_stalled();
      if (shards_[i]->try_restart(grace_us)) {
        misses[i] = 0;
        last_heartbeat[i] = shards_[i]->stats().heartbeat.load(std::memory_order_relaxed);
      }
      // On failure the shard stays Stalled and the next sweep retries.
    }
  }
}

void PrefetchServer::stop() {
  // Watchdog first: a restart racing the shard joins below could respawn a
  // thread stop() would never see.
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_one();
    watchdog_.join();
  }
  for (auto& shard : shards_) shard->stop();
}

ServeStatsSummary PrefetchServer::stats() const {
  ServeStatsSummary summary;
  LatencyHistogram merged;
  std::uint64_t occupancy = 0;
  for (const auto& shard : shards_) {
    ShardStatsSnapshot s = snapshot(shard->stats());
    summary.requests += s.requests;
    summary.batches += s.batches;
    summary.shed += s.shed;
    summary.deadline_missed += s.deadline_missed;
    summary.admission_rejected += s.admission_rejected;
    summary.watchdog_restarts += s.watchdog_restarts;
    summary.degraded_entries += s.degraded_entries;
    summary.degraded_exits += s.degraded_exits;
    if (s.state != ShardState::kHealthy) summary.all_healthy = false;
    occupancy += s.occupancy_sum;
    merged.merge(shard->stats().latency);
    summary.shards.push_back(s);
  }
  summary.reload_rejected = reload_rejected_.load(std::memory_order_relaxed);
  summary.p50_ns = merged.quantile(0.50);
  summary.p99_ns = merged.quantile(0.99);
  summary.avg_batch =
      summary.batches == 0 ? 0.0 : static_cast<double>(occupancy) / static_cast<double>(summary.batches);
  return summary;
}

std::uint64_t ClientSession::submit(const float* addr, const float* pc, float* probs_out) {
  Request r;
  r.trace_id = ids_->trace_id();
  r.addr = addr;
  r.pc = pc;
  r.probs_out = probs_out;
  r.completions = &completions_;
  r.enqueue_ns = now_ns();
  if (server_.config_.deadline_us != 0) {
    r.deadline_ns = r.enqueue_ns + server_.config_.deadline_us * 1000ULL;
  }
  if (!server_.shards_[shard_]->submit(r)) return 0;
  ++in_flight_;
  return r.trace_id;
}

bool ClientSession::poll(Response& out) {
  if (!completions_.try_pop(out)) return false;
  --in_flight_;
  return true;
}

}  // namespace dart::serve
