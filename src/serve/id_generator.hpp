// Per-request trace-ID generation for the serving layer (DESIGN.md §9),
// modeled on dd-trace-cpp's IDGenerator: a small const interface whose
// default implementation hands out unique, well-mixed 64-bit IDs from
// per-thread generator state, so concurrent client streams never contend
// on a shared counter and never repeat an ID.
#pragma once

#include <cstdint>
#include <memory>

namespace dart::serve {

/// Source of per-request trace IDs. Implementations must be safe to call
/// from any number of threads concurrently and must never return 0 (the
/// serving layer reserves 0 for "no request" / backpressure-rejected).
class IdGenerator {
 public:
  virtual ~IdGenerator() = default;

  /// A fresh, process-unique, nonzero 64-bit trace ID.
  virtual std::uint64_t trace_id() const = 0;
};

/// The default generator: each calling thread owns a SplitMix64 stream
/// seeded from a process-wide counter mixed with `seed`, so IDs are unique
/// across threads without shared-state contention, and a fixed `seed`
/// yields deterministic per-thread streams (tests rely on this).
std::shared_ptr<const IdGenerator> default_id_generator(std::uint64_t seed = 0x5eed);

}  // namespace dart::serve
