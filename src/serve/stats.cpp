#include "serve/stats.hpp"

namespace dart::serve {

namespace {

/// Index of the highest set bit (0 for value 0).
inline std::size_t log2_floor(std::uint64_t v) {
  std::size_t b = 0;
  while (v >>= 1) ++b;
  return b;
}

}  // namespace

std::size_t LatencyHistogram::bucket_of(std::uint64_t ns) {
  if (ns < (1ULL << kSubBits)) return static_cast<std::size_t>(ns);
  const std::size_t octave = log2_floor(ns);
  // Top kSubBits bits below the leading one select the linear sub-bucket.
  const std::size_t sub = static_cast<std::size_t>((ns >> (octave - kSubBits)) & ((1 << kSubBits) - 1));
  const std::size_t idx = ((octave - kSubBits + 1) << kSubBits) + sub;
  return idx < kBuckets ? idx : kBuckets - 1;
}

std::uint64_t LatencyHistogram::bucket_bound(std::size_t b) {
  if (b < (1ULL << kSubBits)) return b;
  const std::size_t octave = (b >> kSubBits) + kSubBits - 1;
  const std::size_t sub = b & ((1 << kSubBits) - 1);
  return (1ULL << octave) + ((sub + 1) << (octave - kSubBits)) - 1;
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += counts_[b].load(std::memory_order_relaxed);
    if (cum >= rank) return bucket_bound(b);
  }
  return bucket_bound(kBuckets - 1);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = other.counts_[b].load(std::memory_order_relaxed);
    if (c != 0) counts_[b].fetch_add(c, std::memory_order_relaxed);
  }
  total_.fetch_add(other.total_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

const char* shard_state_name(ShardState state) {
  switch (state) {
    case ShardState::kHealthy:
      return "healthy";
    case ShardState::kDegraded:
      return "degraded";
    case ShardState::kStalled:
      return "stalled";
  }
  return "unknown";
}

ShardStatsSnapshot snapshot(const ShardStats& stats) {
  ShardStatsSnapshot s;
  s.requests = stats.requests.load(std::memory_order_relaxed);
  s.batches = stats.batches.load(std::memory_order_relaxed);
  s.occupancy_sum = stats.occupancy_sum.load(std::memory_order_relaxed);
  s.full_batches = stats.full_batches.load(std::memory_order_relaxed);
  s.queue_depth_sum = stats.queue_depth_sum.load(std::memory_order_relaxed);
  s.queue_depth_max = stats.queue_depth_max.load(std::memory_order_relaxed);
  s.completion_retries = stats.completion_retries.load(std::memory_order_relaxed);
  s.reloads = stats.reloads.load(std::memory_order_relaxed);
  s.heartbeat = stats.heartbeat.load(std::memory_order_relaxed);
  s.shed = stats.shed.load(std::memory_order_relaxed);
  s.deadline_missed = stats.deadline_missed.load(std::memory_order_relaxed);
  s.admission_rejected = stats.admission_rejected.load(std::memory_order_relaxed);
  s.watchdog_restarts = stats.watchdog_restarts.load(std::memory_order_relaxed);
  s.degraded_entries = stats.degraded_entries.load(std::memory_order_relaxed);
  s.degraded_exits = stats.degraded_exits.load(std::memory_order_relaxed);
  s.state = static_cast<ShardState>(stats.state.load(std::memory_order_relaxed));
  s.p50_ns = stats.latency.quantile(0.50);
  s.p99_ns = stats.latency.quantile(0.99);
  return s;
}

}  // namespace dart::serve
