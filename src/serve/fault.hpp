// Serving-layer view of the shared deterministic fault injector.
//
// The injector itself lives in common/fault.hpp (one process-global plan
// serves both the serving hot paths of DESIGN.md §11 and the sweep engine
// of DESIGN.md §13); this header re-exports the surface under dart::serve
// so the serving code and its chaos tests keep their historical spelling.
#pragma once

#include "common/fault.hpp"

namespace dart::serve {

using common::BatchFault;     ///< shard-loop batch fault (slow/stall)
using common::FaultCounters;  ///< fired-fault tallies
using common::FaultInjector;  ///< the process-global registry type
using common::FaultSpec;      ///< one parsed fault clause
using common::parse_fault_specs;

/// The process-wide injector instance (the same object as
/// common::fault_injector()).
inline FaultInjector& fault_injector() { return common::fault_injector(); }

}  // namespace dart::serve
