// Deterministic fault injection for the serving layer (DESIGN.md §11).
//
// A process-global registry parses a semicolon-separated spec string (the
// `DART_FAULT` environment variable) into an immutable fault plan and
// exposes cheap hooks the serving hot paths call at well-defined points:
// batch assembly in `ShardEngine::run`, the submit wake handshake, ingress
// admission, and the artifact bytes read by `PrefetchServer::swap_artifact`.
// When no plan is armed every hook is a single relaxed atomic load, so the
// hooks stay in production builds and chaos tests exercise the exact
// binary that ships.
//
// Probabilistic faults draw from a counter-based SplitMix64 stream
// (`common::derive_seed`), so a given spec produces the same fault schedule
// on every run regardless of thread interleaving — the property
// `tests/serve_chaos_test.cpp` builds its assertions on.
//
// Grammar (see §11 for the full table):
//
//   spec     := fault (';' fault)*
//   fault    := kind [':' param (',' param)*]
//   param    := key '=' value
//
//   slow-shard:shard=N,us=U[,batches=B]   delay each batch on shard N by U
//                                         microseconds (first B batches;
//                                         B=0 or absent: every batch)
//   stall-shard:shard=N[,after=B]         after B more batches, shard N
//                                         stops heartbeating until the
//                                         watchdog abandons its thread
//   drop-wake:p=P[,seed=S]                drop the submit-side park wake
//                                         with probability P (the 200us
//                                         park timeout is the backstop)
//   reject-submit:p=P[,seed=S,shard=N]    fail ingress admission with
//                                         probability P (shard absent: all)
//   corrupt-artifact:offset=O[,count=N]   XOR-flip the byte at offset O of
//                                         the next N artifact reads
//   truncate-artifact:bytes=N[,count=C]   drop the last N bytes of the next
//                                         C artifact reads
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dart::serve {

/// One parsed fault clause: its kind plus the key=value parameters.
struct FaultSpec {
  std::string kind;                                          ///< e.g. "slow-shard"
  std::vector<std::pair<std::string, std::string>> params;   ///< in spec order
};

/// Parses a `DART_FAULT` spec string into clauses; throws
/// std::invalid_argument on grammar errors, unknown kinds, unknown or
/// missing parameters, or out-of-range values. An empty string parses to
/// an empty plan.
std::vector<FaultSpec> parse_fault_specs(const std::string& text);

/// What `FaultInjector::on_batch` tells the shard loop to do before
/// serving the batch it just assembled.
struct BatchFault {
  std::uint64_t delay_us = 0;  ///< sleep this long (slow-shard)
  bool stall = false;          ///< stop heartbeating until abandoned (stall-shard)
};

/// Monotonic tallies of faults actually fired, for test assertions and the
/// operator report printed by `dart_run --serve`.
struct FaultCounters {
  std::uint64_t slow_batches = 0;       ///< batches delayed by slow-shard
  std::uint64_t stalls = 0;             ///< stall-shard triggers
  std::uint64_t wakes_dropped = 0;      ///< park wakes suppressed
  std::uint64_t submits_rejected = 0;   ///< admissions failed by reject-submit
  std::uint64_t artifacts_mutated = 0;  ///< artifact byte images corrupted/truncated
};

/// The process-global fault registry. `install` swaps in a new immutable
/// plan (thread-safe against hooks running concurrently); `clear` disarms.
/// Hooks are safe to call from any thread at any time.
class FaultInjector {
 public:
  /// Parses and arms `spec`; an empty string disarms. Resets the fired
  /// counters. Throws std::invalid_argument on grammar errors (leaving the
  /// previous plan armed).
  void install(const std::string& spec);

  /// Disarms all faults (hooks return to their single-load fast path).
  void clear();

  /// True when a non-empty plan is armed.
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Shard-loop hook, called once per assembled batch before serving.
  BatchFault on_batch(std::size_t shard);

  /// Submit-side hook: true = suppress the park wake for this submit.
  bool drop_wake();

  /// Ingress admission hook: true = reject this submit (backpressure).
  bool reject_submit(std::size_t shard);

  /// Artifact-read hook: corrupts or truncates `bytes` in place per the
  /// armed corrupt-artifact / truncate-artifact clauses.
  void mutate_artifact(std::vector<std::uint8_t>& bytes);

  /// Snapshot of the fired-fault tallies since the last install().
  FaultCounters counters() const;

 private:
  struct Plan;
  std::shared_ptr<const Plan> plan() const;

  mutable std::mutex mu_;
  std::shared_ptr<const Plan> plan_;
  std::atomic<bool> armed_{false};

  std::atomic<std::uint64_t> slow_batches_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> wakes_dropped_{0};
  std::atomic<std::uint64_t> submits_rejected_{0};
  std::atomic<std::uint64_t> artifacts_mutated_{0};
};

/// The process-wide injector instance every serving hook consults.
FaultInjector& fault_injector();

}  // namespace dart::serve
