// Serving-layer observability (DESIGN.md §9): per-shard latency histograms
// and queue/batch counters, written lock-free by the shard thread with
// relaxed atomics and read by anyone as a consistent-enough snapshot
// (monitoring data, not accounting — individual counters are exact, cross-
// counter skew of a few in-flight requests is acceptable).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dart::serve {

/// Lock-free log-scale latency histogram over nanosecond samples.
///
/// Buckets are 4 linear sub-buckets per power of two (HdrHistogram-style,
/// ~19% worst-case relative error per bucket), covering 1 ns .. ~18 min in
/// 160 buckets. `record` is a single relaxed fetch_add; quantiles are
/// computed from a snapshot walk.
class LatencyHistogram {
 public:
  static constexpr std::size_t kSubBits = 2;                      ///< 4 sub-buckets / octave
  static constexpr std::size_t kBuckets = (40 << kSubBits);       ///< covers < 2^40 ns

  /// Records one latency sample (saturates into the top bucket).
  void record(std::uint64_t ns) {
    counts_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total recorded samples.
  std::uint64_t count() const { return total_.load(std::memory_order_relaxed); }

  /// Approximate `q`-quantile (q in [0, 1]) in nanoseconds: the upper bound
  /// of the first bucket whose cumulative count reaches q * count. 0 when
  /// empty.
  std::uint64_t quantile(double q) const;

  /// Adds another histogram's counts into this one (shard -> aggregate).
  void merge(const LatencyHistogram& other);

 private:
  static std::size_t bucket_of(std::uint64_t ns);
  /// Inclusive upper bound of bucket `b` in nanoseconds.
  static std::uint64_t bucket_bound(std::size_t b);

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
};

/// Shard health state machine (DESIGN.md §11). The shard thread moves
/// between Healthy and Degraded on queue-depth watermarks; the watchdog
/// moves a shard to Stalled when its heartbeat stops and back to Healthy
/// after a successful restart (or when the heartbeat resumes on its own).
enum class ShardState : std::uint32_t {
  kHealthy = 0,   ///< serving the primary epoch, normal batching
  kDegraded = 1,  ///< sustained overload: int8 twin epoch, linger collapsed to 0
  kStalled = 2,   ///< watchdog declared the shard thread unresponsive
};

/// Human-readable name for a ShardState ("healthy" / "degraded" / "stalled").
const char* shard_state_name(ShardState state);

/// Counters one shard maintains while serving (all relaxed atomics, written
/// only by the owning shard thread, except `state` and `watchdog_restarts`
/// which the watchdog also writes).
struct ShardStats {
  std::atomic<std::uint64_t> requests{0};        ///< requests completed
  std::atomic<std::uint64_t> batches{0};         ///< micro-batches executed
  std::atomic<std::uint64_t> occupancy_sum{0};   ///< sum of batch sizes
  std::atomic<std::uint64_t> full_batches{0};    ///< batches at the batch cap
  std::atomic<std::uint64_t> queue_depth_sum{0}; ///< ingress depth sampled per batch
  std::atomic<std::uint64_t> queue_depth_max{0}; ///< peak sampled ingress depth
  std::atomic<std::uint64_t> completion_retries{0};  ///< egress-ring full events
  std::atomic<std::uint64_t> reloads{0};         ///< model epochs adopted
  std::atomic<std::uint64_t> heartbeat{0};       ///< shard-loop liveness ticks
  std::atomic<std::uint64_t> shed{0};            ///< requests completed as kShed
  std::atomic<std::uint64_t> deadline_missed{0}; ///< sheds caused by expired deadlines
  std::atomic<std::uint64_t> admission_rejected{0};  ///< submits refused above the high watermark
  std::atomic<std::uint64_t> watchdog_restarts{0};   ///< shard-thread restarts by the watchdog
  std::atomic<std::uint64_t> degraded_entries{0};    ///< Healthy -> Degraded transitions
  std::atomic<std::uint64_t> degraded_exits{0};      ///< Degraded -> Healthy transitions
  std::atomic<std::uint32_t> state{0};           ///< current ShardState
  LatencyHistogram latency;                      ///< enqueue -> completion-push
};

/// Plain-value snapshot of one shard's counters.
struct ShardStatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t occupancy_sum = 0;
  std::uint64_t full_batches = 0;
  std::uint64_t queue_depth_sum = 0;
  std::uint64_t queue_depth_max = 0;
  std::uint64_t completion_retries = 0;
  std::uint64_t reloads = 0;
  std::uint64_t heartbeat = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t admission_rejected = 0;
  std::uint64_t watchdog_restarts = 0;
  std::uint64_t degraded_entries = 0;
  std::uint64_t degraded_exits = 0;
  ShardState state = ShardState::kHealthy;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;

  /// Mean batch occupancy (0 when no batch ran).
  double avg_batch() const {
    return batches == 0 ? 0.0 : static_cast<double>(occupancy_sum) / static_cast<double>(batches);
  }
  /// Mean sampled ingress queue depth (0 when no batch ran).
  double avg_queue_depth() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(queue_depth_sum) / static_cast<double>(batches);
  }
};

/// Reads a consistent-enough snapshot of `stats` (relaxed loads).
ShardStatsSnapshot snapshot(const ShardStats& stats);

/// Server-wide aggregate: per-shard snapshots plus merged latency quantiles.
struct ServeStatsSummary {
  std::vector<ShardStatsSnapshot> shards;
  std::uint64_t requests = 0;      ///< sum over shards
  std::uint64_t batches = 0;       ///< sum over shards
  std::uint64_t shed = 0;          ///< sum over shards (explicit kShed completions)
  std::uint64_t deadline_missed = 0;   ///< sum over shards
  std::uint64_t admission_rejected = 0;  ///< sum over shards
  std::uint64_t watchdog_restarts = 0;   ///< sum over shards
  std::uint64_t degraded_entries = 0;    ///< sum over shards
  std::uint64_t degraded_exits = 0;      ///< sum over shards
  std::uint64_t reload_rejected = 0;     ///< artifact swaps quarantined by the server
  bool all_healthy = true;         ///< every shard currently ShardState::kHealthy
  std::uint64_t p50_ns = 0;        ///< over the merged histogram
  std::uint64_t p99_ns = 0;        ///< over the merged histogram
  double avg_batch = 0.0;          ///< occupancy mean over all batches
};

}  // namespace dart::serve
