// One serving shard (DESIGN.md §9): a single-threaded inference engine that
// owns an MPSC ingress ring, one `tabular::InferenceWorkspace`, and a
// shared-immutable `TabularPredictor` epoch. The shard thread drains queued
// requests into micro-batches (up to `batch_cap`, lingering a bounded
// `linger_us` for stragglers), runs them through the zero-allocation block
// query path, and pushes responses onto each request's per-client SPSC
// completion ring.
//
// Model hot-swap: the owning server bumps an epoch counter; the shard
// adopts the new `std::shared_ptr<const TabularPredictor>` strictly at a
// batch boundary, so no batch is ever served by a torn mix of two
// artifacts. The old predictor is retired by epoch reclamation — the final
// shard (or in-flight reader) to drop its reference frees it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/ring.hpp"
#include "serve/stats.hpp"
#include "tabular/tabular_predictor.hpp"
#include "tabular/workspace.hpp"

namespace dart::serve {

/// Steady-clock timestamp in nanoseconds (latency accounting).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

struct Response;

/// One queued inference request. The feature and output buffers are owned
/// by the submitting client and must stay valid (and untouched) until the
/// matching Response is popped from the completion ring.
struct Request {
  std::uint64_t trace_id = 0;             ///< nonzero per-request trace ID
  const float* addr = nullptr;            ///< [T, addr_dim] segmented addresses
  const float* pc = nullptr;              ///< [T, pc_dim] segmented PCs
  float* probs_out = nullptr;             ///< [out_dim] result probabilities
  SpscRing<Response>* completions = nullptr;  ///< the client's egress ring
  std::uint64_t enqueue_ns = 0;           ///< submit timestamp (latency base)
  std::uint64_t deadline_ns = 0;          ///< absolute deadline; 0 = none
};

/// Completion record pushed to the client's SPSC ring. Popping it (acquire)
/// publishes the probabilities written to the request's `probs_out`.
struct Response {
  /// How the request resolved. Every accepted request gets exactly one
  /// completion — overload never loses work silently (DESIGN.md §11).
  enum class Status : std::uint8_t {
    kOk = 0,    ///< served; `probs` is published and readable
    kShed = 1,  ///< dropped unserved (expired deadline or shard restart);
                ///< `probs` identifies the slot but holds no result
  };

  std::uint64_t trace_id = 0;  ///< echoes Request::trace_id
  std::uint64_t epoch = 0;     ///< model epoch that served the request
  float* probs = nullptr;      ///< == Request::probs_out
  Status status = Status::kOk; ///< served vs explicitly shed
};

/// A model epoch: the immutable predictor plus its version number, and the
/// optional pre-built int8-quantized twin a Degraded shard serves instead
/// (same geometry, built by the server before publication — shards never
/// mutate a shared predictor; DESIGN.md §11).
struct ModelEpoch {
  std::shared_ptr<const tabular::TabularPredictor> model;
  std::shared_ptr<const tabular::TabularPredictor> degraded;  ///< may be null
  std::uint64_t epoch = 0;
};

/// Per-shard tuning knobs (the server derives them from ServeConfig).
struct ShardConfig {
  std::size_t queue_capacity = 1024;  ///< ingress ring depth (rounded to 2^k)
  std::size_t batch_cap = 64;         ///< micro-batch size limit
  std::size_t linger_us = 50;         ///< max wait for batch stragglers
  int pin_core = -1;                  ///< >= 0: pin the shard thread to this core
  /// Queue-depth admission watermarks (0 = overload control off). At depth
  /// >= hi the shard stops admitting (submit fails, shed-newest); it
  /// resumes at depth <= lo — the gap is the hysteresis band. Sustained
  /// depth >= hi also drives Healthy -> Degraded (see DESIGN.md §11).
  std::size_t watermark_hi = 0;
  std::size_t watermark_lo = 0;
};

class ShardEngine {
 public:
  /// Creates the shard and starts its serving thread. `latest_epoch` is the
  /// server's published epoch counter; when it moves past the local epoch,
  /// the shard calls `reload` (at a batch boundary) to adopt the new model.
  ShardEngine(std::size_t index, const ShardConfig& config, ModelEpoch initial,
              const std::atomic<std::uint64_t>& latest_epoch, std::function<ModelEpoch()> reload);

  /// Stops and joins the shard thread (draining the ingress ring first).
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Enqueues a request from any thread; false on backpressure (ring full).
  /// A parked shard thread is woken.
  bool submit(const Request& request);

  /// Asks the thread to finish draining and exit, then joins it. Callers
  /// must have quiesced producers first; every request enqueued before
  /// stop() is still served (flush semantics, the no-loss contract).
  void stop();

  /// Watchdog: marks the shard Stalled (heartbeat stopped past the miss
  /// budget). The shard thread reclaims Healthy itself if it resumes.
  void mark_stalled();

  /// Watchdog: clears a Stalled mark back to Healthy (a shard whose
  /// heartbeat resumed on its own, e.g. one that was merely descheduled).
  /// Leaves Healthy/Degraded untouched.
  void clear_stalled();

  /// Watchdog: asks the (presumed wedged) shard thread to abandon its loop,
  /// waits up to `grace_us` for it to exit, then joins and respawns it.
  /// Requests the old thread held are shed, never lost; the ingress ring
  /// carries over to the successor. False when the thread did not exit
  /// within the grace period (it keeps serving if it ever unsticks, and the
  /// watchdog retries on its next sweep).
  bool try_restart(std::uint64_t grace_us);

  const ShardStats& stats() const { return stats_; }
  std::size_t index() const { return index_; }
  std::size_t queue_capacity() const { return ingress_.capacity(); }

 private:
  void spawn();
  void run();
  /// Adopts the newest model epoch if the server published one.
  void maybe_adopt_epoch();
  /// Samples ingress depth: drives the admission gate (hysteresis between
  /// the watermarks) and the Healthy <-> Degraded transitions.
  void update_overload_state();
  /// Runs `n` queued requests as one micro-batch and completes them.
  void serve_batch(Request* batch, std::size_t n);
  /// Completes `req` unserved with an explicit kShed response.
  void shed_request(const Request& req, bool deadline_missed);
  /// Parks until woken by a submit, stop(), or a 200 us timeout.
  void park();

  const std::size_t index_;
  const ShardConfig config_;
  MpscRing<Request> ingress_;
  const std::atomic<std::uint64_t>& latest_epoch_;
  std::function<ModelEpoch()> reload_;

  // Shard-thread-owned serving state.
  ModelEpoch current_;
  tabular::InferenceWorkspace workspace_;
  std::vector<float> staging_addr_, staging_pc_, staging_probs_;
  bool degraded_ = false;          ///< serving the int8 twin, linger collapsed
  std::size_t overload_streak_ = 0;  ///< consecutive depth samples >= hi

  ShardStats stats_;
  std::atomic<bool> admit_{true};  ///< admission gate written by the shard loop
  std::atomic<bool> stop_{false};
  std::atomic<bool> abandon_{false};  ///< watchdog asks the thread to exit now
  std::atomic<bool> running_{false};  ///< thread liveness for the restart handshake
  std::atomic<bool> parked_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::thread thread_;
};

}  // namespace dart::serve
