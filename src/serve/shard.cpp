#include "serve/shard.hpp"

#include <algorithm>
#include <type_traits>

#include "common/thread_pool.hpp"
#include "serve/fault.hpp"

namespace dart::serve {

namespace {

// The shares_mutable_model() audit (sim/prefetcher.hpp): shards share ONE
// predictor instance across threads with no serialization, which is only
// sound because the tabular query path is const — all mutable state lives
// in the per-shard InferenceWorkspace. The NN baselines (AttentionPrefetcher
// / LstmPrefetcher) cache activations inside forward and would need a lock;
// they are not servable here. This assert pins the contract at compile
// time: if the block query path ever stops being const-invocable, shard
// construction fails to build instead of racing at runtime.
static_assert(
    std::is_invocable_v<decltype(&tabular::TabularPredictor::forward_block_into),
                        const tabular::TabularPredictor&, const float*, const float*, std::size_t,
                        float*, tabular::InferenceWorkspace&, std::vector<nn::Tensor>*>,
    "serve shards require a const (immutable, concurrently shareable) tabular query path");

/// Sub-block size for forward_block_into calls — mirrors the top-level
/// batch split in TabularPredictor::forward: 16 samples keep the activation
/// buffers L2-resident; larger blocks measurably spill (DESIGN.md §6).
constexpr std::size_t kBlockSamples = 16;

/// Empty-ring spins before the shard thread parks on its condition variable.
constexpr int kSpinsBeforePark = 256;

/// Consecutive depth samples at/above the high watermark before the shard
/// degrades — one spike sheds admission immediately, but switching epochs
/// is reserved for *sustained* overload (DESIGN.md §11).
constexpr std::size_t kDegradeSustain = 4;

/// Poll interval while a stalled/abandoning thread waits to be collected.
constexpr std::chrono::microseconds kStallPoll{50};

}  // namespace

ShardEngine::ShardEngine(std::size_t index, const ShardConfig& config, ModelEpoch initial,
                         const std::atomic<std::uint64_t>& latest_epoch,
                         std::function<ModelEpoch()> reload)
    : index_(index),
      config_(config),
      ingress_(config.queue_capacity),
      latest_epoch_(latest_epoch),
      reload_(std::move(reload)),
      current_(std::move(initial)) {
  if (current_.model == nullptr) {
    throw std::invalid_argument("ShardEngine: null model");
  }
  const nn::ModelConfig& a = current_.model->arch();
  staging_addr_.resize(config_.batch_cap * a.seq_len * a.addr_dim);
  staging_pc_.resize(config_.batch_cap * a.seq_len * a.pc_dim);
  staging_probs_.resize(config_.batch_cap * a.out_dim);
  spawn();
}

ShardEngine::~ShardEngine() { stop(); }

void ShardEngine::spawn() {
  // Set before the launch so a watchdog sweep between here and the first
  // loop iteration sees a live thread, not a restart candidate.
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

bool ShardEngine::submit(const Request& request) {
  // Admission control: above the high watermark the newest work is shed at
  // the door (explicit backpressure) rather than queued past the deadline.
  if (config_.watermark_hi != 0 && !admit_.load(std::memory_order_relaxed)) {
    stats_.admission_rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (fault_injector().reject_submit(index_)) return false;
  if (!ingress_.try_push(request)) return false;
  // Dekker handshake with park(): the push above is the "work" store, the
  // fence orders it against the parked_ load so either we see the parked
  // flag (and wake), or the consumer's post-park recheck sees our element.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_relaxed)) {
    // drop-wake fault: suppress the notify. The 200 us park timeout is the
    // designed backstop — the request is late, never lost.
    if (!fault_injector().drop_wake()) {
      std::lock_guard<std::mutex> lock(park_mu_);
      park_cv_.notify_one();
    }
  }
  return true;
}

void ShardEngine::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_one();
  }
  thread_.join();
}

void ShardEngine::mark_stalled() {
  stats_.state.store(static_cast<std::uint32_t>(ShardState::kStalled),
                     std::memory_order_relaxed);
}

void ShardEngine::clear_stalled() {
  std::uint32_t expect = static_cast<std::uint32_t>(ShardState::kStalled);
  stats_.state.compare_exchange_strong(expect,
                                       static_cast<std::uint32_t>(ShardState::kHealthy),
                                       std::memory_order_relaxed);
}

bool ShardEngine::try_restart(std::uint64_t grace_us) {
  if (!thread_.joinable()) return false;
  abandon_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_one();
  }
  const std::uint64_t deadline = now_ns() + grace_us * 1000ULL;
  while (running_.load(std::memory_order_acquire) && now_ns() < deadline) {
    std::this_thread::sleep_for(kStallPoll);
  }
  if (running_.load(std::memory_order_acquire)) {
    // Truly wedged (not even the abandon checkpoints run). Withdraw the
    // request so the thread resumes serving if it ever unsticks; the
    // watchdog retries on its next sweep.
    abandon_.store(false, std::memory_order_release);
    return false;
  }
  thread_.join();
  abandon_.store(false, std::memory_order_release);
  degraded_ = false;  // thread-owned state; safe to reset between threads
  overload_streak_ = 0;
  stats_.watchdog_restarts.fetch_add(1, std::memory_order_relaxed);
  stats_.state.store(static_cast<std::uint32_t>(ShardState::kHealthy),
                     std::memory_order_relaxed);
  // The successor inherits the ingress ring (queued requests survive the
  // restart) and re-adopts the latest published epoch at its first batch.
  spawn();
  return true;
}

void ShardEngine::park() {
  parked_.store(true, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Recheck after publishing the flag: a producer that pushed before seeing
  // parked_ is caught here; one that pushed after will notify. The timeout
  // is a belt-and-braces backstop, not a correctness requirement (and the
  // recovery path the drop-wake fault leans on).
  if (ingress_.size_approx() == 0 && !stop_.load(std::memory_order_acquire) &&
      !abandon_.load(std::memory_order_acquire)) {
    std::unique_lock<std::mutex> lock(park_mu_);
    park_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
  parked_.store(false, std::memory_order_relaxed);
}

void ShardEngine::maybe_adopt_epoch() {
  if (latest_epoch_.load(std::memory_order_acquire) == current_.epoch) return;
  ModelEpoch next = reload_();
  if (next.model == nullptr || next.epoch == current_.epoch) return;
  current_ = std::move(next);  // old epoch retires when its last ref drops
  // The new model may be larger (e.g. DART-S -> DART-L); grow the arena at
  // this batch boundary, never mid-block. The arena only ever grows, so a
  // smaller model simply leaves slack.
  tabular::TabularArch ta = current_.model->tabular_arch();
  ta.float_slots *= kBlockSamples;
  ta.code_slots *= kBlockSamples;
  workspace_.ensure(ta);
  stats_.reloads.fetch_add(1, std::memory_order_relaxed);
}

void ShardEngine::update_overload_state() {
  if (config_.watermark_hi == 0) return;
  const std::size_t depth = ingress_.size_approx();
  // Admission gate with hysteresis: close at hi, reopen only at lo.
  const bool admitting = admit_.load(std::memory_order_relaxed);
  if (admitting && depth >= config_.watermark_hi) {
    admit_.store(false, std::memory_order_relaxed);
  } else if (!admitting && depth <= config_.watermark_lo) {
    admit_.store(true, std::memory_order_relaxed);
  }
  // Degradation: one spike sheds admission above; switching to the int8
  // twin takes kDegradeSustain consecutive over-watermark samples.
  if (depth >= config_.watermark_hi) {
    ++overload_streak_;
    if (!degraded_ && overload_streak_ >= kDegradeSustain) {
      degraded_ = true;
      stats_.degraded_entries.fetch_add(1, std::memory_order_relaxed);
      stats_.state.store(static_cast<std::uint32_t>(ShardState::kDegraded),
                         std::memory_order_relaxed);
    }
  } else {
    overload_streak_ = 0;
    if (degraded_ && depth <= config_.watermark_lo) {
      degraded_ = false;
      stats_.degraded_exits.fetch_add(1, std::memory_order_relaxed);
      stats_.state.store(static_cast<std::uint32_t>(ShardState::kHealthy),
                         std::memory_order_relaxed);
    }
  }
}

void ShardEngine::run() {
  if (config_.pin_core >= 0) {
    common::pin_current_thread(static_cast<std::size_t>(config_.pin_core));
  }
  // Size the arena once for the largest sub-block; hot-swaps re-ensure (the
  // arena only ever grows, so a larger model never overflows mid-batch).
  tabular::TabularArch ta = current_.model->tabular_arch();
  ta.float_slots *= kBlockSamples;
  ta.code_slots *= kBlockSamples;
  workspace_.ensure(ta);

  std::vector<Request> batch(config_.batch_cap);
  int idle_spins = 0;
  for (;;) {
    stats_.heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (abandon_.load(std::memory_order_acquire)) break;
    update_overload_state();
    std::size_t n = 0;
    while (n < config_.batch_cap && ingress_.try_pop(batch[n])) ++n;
    if (n == 0) {
      if (stop_.load(std::memory_order_acquire)) {
        // Producers are quiesced by the stop() contract; one failed pop
        // after the stop flag means the ring is drained for good.
        break;
      }
      if (++idle_spins >= kSpinsBeforePark) {
        park();
        idle_spins = 0;
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    idle_spins = 0;
    // Linger: give stragglers a bounded window to fill the batch — batching
    // efficiency is worth a few tens of microseconds of latency, but only
    // while traffic is live (never during shutdown drain, never while
    // degraded: an overloaded shard's queue refills the batch by itself).
    const std::size_t linger_us = degraded_ ? 0 : config_.linger_us;
    if (n < config_.batch_cap && linger_us > 0 && !stop_.load(std::memory_order_acquire)) {
      const std::uint64_t deadline = now_ns() + linger_us * 1000ULL;
      while (n < config_.batch_cap && now_ns() < deadline &&
             !abandon_.load(std::memory_order_acquire)) {
        if (!ingress_.try_pop(batch[n])) {
          std::this_thread::yield();
        } else {
          ++n;
        }
      }
    }
    maybe_adopt_epoch();

    // Fault hooks fire where real pathologies bite: after batch assembly,
    // before the deadline sweep — a slow or stalled shard ages its queue.
    const BatchFault fault = fault_injector().on_batch(index_);
    if (fault.delay_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(fault.delay_us));
    }
    if (fault.stall) {
      // Heartbeat stops here: the watchdog must notice, abandon this
      // thread, and respawn. stop_ is honored too so shutdown never hangs
      // on an armed stall.
      while (!abandon_.load(std::memory_order_acquire) &&
             !stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(kStallPoll);
      }
    }
    if (abandon_.load(std::memory_order_acquire)) {
      // Complete held work as explicitly shed — never silently lost — and
      // leave the ring for the successor thread.
      for (std::size_t i = 0; i < n; ++i) shed_request(batch[i], /*deadline_missed=*/false);
      break;
    }

    // Deadline sweep: expired requests are shed before any model work is
    // spent on them; survivors keep their submission order.
    const std::uint64_t now = now_ns();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (batch[i].deadline_ns != 0 && now > batch[i].deadline_ns) {
        shed_request(batch[i], /*deadline_missed=*/true);
      } else {
        if (kept != i) batch[kept] = batch[i];
        ++kept;
      }
    }
    if (kept > 0) serve_batch(batch.data(), kept);
  }
  running_.store(false, std::memory_order_release);
}

void ShardEngine::serve_batch(Request* batch, std::size_t n) {
  // Degraded shards serve the epoch's pre-built int8 twin (published by the
  // server with the epoch; no shared predictor is ever mutated here). A
  // twin-less epoch degrades batching only (linger collapsed in run()).
  const tabular::TabularPredictor& model =
      (degraded_ && current_.degraded != nullptr) ? *current_.degraded : *current_.model;
  const nn::ModelConfig& a = model.arch();
  const std::size_t addr_elems = a.seq_len * a.addr_dim;
  const std::size_t pc_elems = a.seq_len * a.pc_dim;

  // Gather scattered client feature buffers into the contiguous staging
  // block the layer-major query path requires.
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(batch[i].addr, batch[i].addr + addr_elems, staging_addr_.data() + i * addr_elems);
    std::copy(batch[i].pc, batch[i].pc + pc_elems, staging_pc_.data() + i * pc_elems);
  }
  for (std::size_t s0 = 0; s0 < n; s0 += kBlockSamples) {
    const std::size_t bn = std::min(kBlockSamples, n - s0);
    model.forward_block_into(staging_addr_.data() + s0 * addr_elems,
                             staging_pc_.data() + s0 * pc_elems, bn,
                             staging_probs_.data() + s0 * a.out_dim, workspace_);
  }

  const std::uint64_t done_ns = now_ns();
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(staging_probs_.data() + i * a.out_dim, staging_probs_.data() + (i + 1) * a.out_dim,
              batch[i].probs_out);
    Response r;
    r.trace_id = batch[i].trace_id;
    r.epoch = current_.epoch;
    r.probs = batch[i].probs_out;
    r.status = Response::Status::kOk;
    // The client sizes its in-flight window <= completion capacity, so a
    // full egress ring is transient (client mid-drain); spin it out.
    while (!batch[i].completions->try_push(r)) {
      stats_.completion_retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    stats_.latency.record(done_ns > batch[i].enqueue_ns ? done_ns - batch[i].enqueue_ns : 0);
  }

  stats_.requests.fetch_add(n, std::memory_order_relaxed);
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  stats_.occupancy_sum.fetch_add(n, std::memory_order_relaxed);
  if (n == config_.batch_cap) stats_.full_batches.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t depth = ingress_.size_approx();
  stats_.queue_depth_sum.fetch_add(depth, std::memory_order_relaxed);
  if (depth > stats_.queue_depth_max.load(std::memory_order_relaxed)) {
    stats_.queue_depth_max.store(depth, std::memory_order_relaxed);
  }
}

void ShardEngine::shed_request(const Request& req, bool deadline_missed) {
  Response r;
  r.trace_id = req.trace_id;
  r.epoch = current_.epoch;
  r.probs = req.probs_out;  // identifies the slot; carries no result
  r.status = Response::Status::kShed;
  while (!req.completions->try_push(r)) {
    stats_.completion_retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
  stats_.shed.fetch_add(1, std::memory_order_relaxed);
  if (deadline_missed) stats_.deadline_missed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace dart::serve
