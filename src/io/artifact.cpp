#include "io/artifact.hpp"

#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "pq/encoder.hpp"
#include "tabular/linear_kernel.hpp"

namespace dart::io {

namespace {

// 8-byte magic: non-ASCII first byte catches text-mode mangling (PNG-style),
// the rest spells the format.
constexpr std::uint8_t kMagic[8] = {0x89, 'D', 'A', 'R', 'T', 'B', 'L', 0x0A};
constexpr std::size_t kHeaderBytes = 16;  // magic + version u32 + flags u32

constexpr char kTagMeta[5] = "META";
constexpr char kTagArch[5] = "ARCH";
constexpr char kTagPredictor[5] = "TPRD";
constexpr char kTagFused[5] = "FUSD";
constexpr char kTagQuant[5] = "QNTT";
constexpr char kTagChecksum[5] = "CSUM";

constexpr std::uint8_t kEncoderExact = 0;
constexpr std::uint8_t kEncoderHashTree = 1;

std::size_t pad_to_8(std::size_t n) { return (8 - n % 8) % 8; }

// ------------------------------------------------------------- container

/// Accumulates tagged chunks and writes the framed, checksummed file.
class ChunkWriter {
 public:
  ByteWriter& chunk(const char tag[5]) {
    chunks_.emplace_back(tag, ByteWriter{});
    return chunks_.back().second;
  }

  /// Frames all chunks, appends CSUM, writes `path`. Returns the checksum
  /// (= content hash).
  std::uint64_t write(const std::string& path) const {
    ByteWriter file;
    for (std::size_t i = 0; i < sizeof(kMagic); ++i) file.u8(kMagic[i]);
    file.u32(kFormatVersion);
    file.u32(0);  // flags: reserved, must be zero in v1
    for (const auto& [tag, payload] : chunks_) {
      append_chunk(file, tag, payload.bytes());
    }
    const std::uint64_t hash = fnv1a64(file.bytes().data(), file.size());
    ByteWriter csum;
    csum.u64(hash);
    // The checksum chunk is unpadded and terminates the file: every stored
    // byte is covered either by the hash or by being the hash.
    append_chunk(file, kTagChecksum, csum.bytes(), /*pad=*/false);

    // write-temp + fsync + atomic rename: a crash mid-save can never leave
    // a torn `.dart` under the final name, so consumers either see the old
    // complete artifact or the new one (never a checksum-failing hybrid).
    write_file_atomic(path, file.bytes().data(), file.size());
    return hash;
  }

 private:
  static void append_chunk(ByteWriter& file, const std::string& tag,
                           const std::vector<std::uint8_t>& payload, bool pad = true) {
    for (char c : tag) file.u8(static_cast<std::uint8_t>(c));
    file.u64(payload.size());
    for (std::uint8_t b : payload) file.u8(b);
    if (pad) {
      for (std::size_t i = 0; i < pad_to_8(4 + 8 + payload.size()); ++i) file.u8(0);
    }
  }

  std::vector<std::pair<std::string, ByteWriter>> chunks_;
};

/// Parses and verifies the container framing of a loaded file.
class ChunkReader {
 public:
  explicit ChunkReader(std::vector<std::uint8_t> file) : file_(std::move(file)) {
    if (file_.size() < kHeaderBytes ||
        std::memcmp(file_.data(), kMagic, sizeof(kMagic)) != 0) {
      throw ArtifactError("not a .dart artifact (bad magic)");
    }
    ByteReader header(file_.data() + sizeof(kMagic), 8);
    version_ = header.u32();
    const std::uint32_t flags = header.u32();
    if (version_ != kFormatVersion) {
      throw ArtifactError("unsupported .dart format version " + std::to_string(version_) +
                          " (this build reads version " + std::to_string(kFormatVersion) + ")");
    }
    if (flags != 0) throw ArtifactError("unsupported .dart feature flags");

    std::size_t pos = kHeaderBytes;
    bool checksummed = false;
    while (pos < file_.size()) {
      if (file_.size() - pos < 12) throw ArtifactError("truncated chunk header");
      if (checksummed) throw ArtifactError("artifact has chunks after the checksum");
      const std::string tag(reinterpret_cast<const char*>(file_.data() + pos), 4);
      ByteReader len_reader(file_.data() + pos + 4, 8);
      const std::uint64_t len = len_reader.u64();
      const std::size_t payload_at = pos + 12;
      if (len > file_.size() - payload_at) throw ArtifactError("truncated chunk payload");
      if (tag == kTagChecksum) {
        ByteReader csum(file_.data() + payload_at, static_cast<std::size_t>(len));
        hash_ = csum.u64();
        if (hash_ != fnv1a64(file_.data(), pos)) {
          throw ArtifactError("artifact checksum mismatch (file is corrupted)");
        }
        // The checksum chunk must be the exact tail of the file, so no
        // stored byte escapes verification.
        if (payload_at + static_cast<std::size_t>(len) != file_.size()) {
          throw ArtifactError("artifact bytes found after the checksum chunk");
        }
        checksummed = true;
      } else {
        // Unknown tags are recorded but never required: forward compat.
        chunks_.emplace_back(tag, std::make_pair(payload_at, static_cast<std::size_t>(len)));
      }
      pos = payload_at + static_cast<std::size_t>(len) + pad_to_8(12 + len);
    }
    if (!checksummed) throw ArtifactError("artifact has no checksum chunk (truncated?)");
  }

  bool has(const char tag[5]) const { return find_span(tag) != nullptr; }

  ByteReader require(const char tag[5]) const {
    const auto* span = find_span(tag);
    if (!span) {
      throw ArtifactError(std::string("artifact is missing required chunk '") + tag + "'");
    }
    return ByteReader(file_.data() + span->first, span->second);
  }

  /// File byte offset of `tag`'s payload (quarantine-log context); 0 when
  /// the chunk is absent.
  std::size_t offset_of(const char tag[5]) const {
    const auto* span = find_span(tag);
    return span ? span->first : 0;
  }

  std::uint32_t version() const { return version_; }
  std::uint64_t content_hash() const { return hash_; }

 private:
  const std::pair<std::size_t, std::size_t>* find_span(const char tag[5]) const {
    for (const auto& [t, span] : chunks_) {
      if (t == tag) return &span;
    }
    return nullptr;
  }

  std::vector<std::uint8_t> file_;
  std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>> chunks_;
  std::uint32_t version_ = 0;
  std::uint64_t hash_ = 0;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw ArtifactError("cannot open artifact '" + path + "'");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw ArtifactError("failed reading artifact '" + path + "'");
  return bytes;
}

// ------------------------------------------------- config (de)serializers
// (the put_* side is public — see artifact.hpp — so cache keys and chunks
// cannot drift apart)

nn::ModelConfig get_model_config(ByteReader& r) {
  nn::ModelConfig c;
  c.seq_len = r.u64();
  c.addr_dim = r.u64();
  c.pc_dim = r.u64();
  c.dim = r.u64();
  c.ffn_dim = r.u64();
  c.out_dim = r.u64();
  c.heads = r.u64();
  c.layers = r.u64();
  return c;
}

tabular::TableConfig get_table_config(ByteReader& r) {
  tabular::TableConfig t;
  for (auto* lc : {&t.input, &t.attention, &t.ffn, &t.output}) {
    lc->k = r.u64();
    lc->c = r.u64();
  }
  t.data_bits = r.u64();
  return t;
}

trace::PreprocessOptions get_prep(ByteReader& r) {
  trace::PreprocessOptions p;
  p.history = r.u64();
  p.segment_bits = r.u64();
  p.addr_segments = r.u64();
  p.pc_segments = r.u64();
  p.bitmap_size = r.u64();
  p.lookforward = r.u64();
  p.max_samples = r.u64();
  return p;
}

pq::EncoderKind decode_encoder_kind(std::uint8_t v) {
  switch (v) {
    case kEncoderExact:
      return pq::EncoderKind::kExact;
    case kEncoderHashTree:
      return pq::EncoderKind::kHashTree;
  }
  throw ArtifactError("unknown encoder kind tag " + std::to_string(v));
}

std::uint8_t encode_encoder_kind(pq::EncoderKind kind) {
  return kind == pq::EncoderKind::kExact ? kEncoderExact : kEncoderHashTree;
}

// ------------------------------------------------ encoder (de)serializers

void put_encoder(ByteWriter& w, const pq::Encoder& encoder) {
  if (const auto* exact = dynamic_cast<const pq::ExactEncoder*>(&encoder)) {
    w.u8(kEncoderExact);
    w.tensor(exact->prototypes());
    return;
  }
  if (const auto* tree = dynamic_cast<const pq::HashTreeEncoder*>(&encoder)) {
    w.u8(kEncoderHashTree);
    w.u64(tree->num_prototypes());
    w.u64(tree->vec_dim());
    const auto& nodes = tree->nodes();
    std::vector<std::uint32_t> dims(nodes.size());
    std::vector<float> thresholds(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      dims[i] = nodes[i].split_dim;
      thresholds[i] = nodes[i].threshold;
    }
    w.u32s(dims.data(), dims.size());
    w.f32s(thresholds.data(), thresholds.size());
    w.i32s(tree->leaves().data(), tree->leaves().size());
    return;
  }
  throw ArtifactError("encoder type is not serializable");
}

std::unique_ptr<pq::Encoder> get_encoder(ByteReader& r) {
  const std::uint8_t kind = r.u8();
  if (kind == kEncoderExact) {
    return std::make_unique<pq::ExactEncoder>(r.tensor());
  }
  if (kind == kEncoderHashTree) {
    const std::size_t k = r.u64();
    const std::size_t v = r.u64();
    std::vector<std::uint32_t> dims = r.u32s();
    std::vector<float> thresholds = r.f32s();
    std::vector<std::int32_t> leaves = r.i32s();
    if (thresholds.size() != dims.size() || leaves.size() != dims.size()) {
      throw ArtifactError("hash-tree encoder arrays are inconsistent");
    }
    std::vector<pq::HashTreeEncoder::HotNode> nodes(dims.size());
    for (std::size_t i = 0; i < dims.size(); ++i) {
      nodes[i].split_dim = dims[i];
      nodes[i].threshold = thresholds[i];
    }
    return std::make_unique<pq::HashTreeEncoder>(std::move(nodes), std::move(leaves), k, v);
  }
  throw ArtifactError("unknown encoder kind tag " + std::to_string(kind));
}

// ------------------------------------------------- kernel (de)serializers

void put_linear(ByteWriter& w, const tabular::LinearKernel& kernel) {
  const tabular::KernelConfig& c = kernel.config();
  w.u64(kernel.in_dim());
  w.u64(kernel.out_dim());
  w.u64(c.num_prototypes);
  w.u64(c.num_subspaces);
  w.u8(encode_encoder_kind(c.encoder));
  w.u64(c.kmeans_iters);
  w.u64(c.seed);
  w.f32s(kernel.table().data(), kernel.table().size());
  for (std::size_t sc = 0; sc < c.num_subspaces; ++sc) put_encoder(w, kernel.encoder(sc));
}

std::unique_ptr<tabular::LinearKernel> get_linear(ByteReader& r) {
  const std::size_t in_dim = r.u64();
  const std::size_t out_dim = r.u64();
  tabular::KernelConfig c;
  c.num_prototypes = r.u64();
  c.num_subspaces = r.u64();
  c.encoder = decode_encoder_kind(r.u8());
  c.kmeans_iters = r.u64();
  c.seed = r.u64();
  std::vector<float> table = r.f32s();
  std::vector<std::unique_ptr<pq::Encoder>> encoders;
  encoders.reserve(c.num_subspaces);
  for (std::size_t sc = 0; sc < c.num_subspaces; ++sc) encoders.push_back(get_encoder(r));
  return std::make_unique<tabular::LinearKernel>(
      tabular::LinearKernel::from_parts(c, in_dim, out_dim, std::move(table),
                                        std::move(encoders)));
}

void put_attention(ByteWriter& w, const tabular::AttentionKernel& kernel) {
  const tabular::AttentionKernelConfig& c = kernel.config();
  w.u64(kernel.seq_len());
  w.u64(kernel.head_dim());
  w.u64(c.num_prototypes);
  w.u64(c.ck);
  w.u64(c.ct);
  w.u8(c.activation == tabular::AttentionActivation::kSigmoidFolded ? 0 : 1);
  w.u8(encode_encoder_kind(c.encoder));
  w.u64(c.kmeans_iters);
  w.u64(c.seed);
  w.f32s(kernel.qk_table().data(), kernel.qk_table().size());
  w.f32s(kernel.qkv_table().data(), kernel.qkv_table().size());
  for (std::size_t sc = 0; sc < c.ck; ++sc) put_encoder(w, kernel.q_encoder(sc));
  for (std::size_t sc = 0; sc < c.ck; ++sc) put_encoder(w, kernel.k_encoder(sc));
  for (std::size_t sc = 0; sc < c.ct; ++sc) put_encoder(w, kernel.s_encoder(sc));
  for (std::size_t sc = 0; sc < c.ct; ++sc) put_encoder(w, kernel.v_encoder(sc));
}

std::unique_ptr<tabular::AttentionKernel> get_attention(ByteReader& r) {
  const std::size_t t_len = r.u64();
  const std::size_t dk = r.u64();
  tabular::AttentionKernelConfig c;
  c.num_prototypes = r.u64();
  c.ck = r.u64();
  c.ct = r.u64();
  const std::uint8_t act = r.u8();
  if (act > 1) throw ArtifactError("unknown attention activation tag");
  c.activation = act == 0 ? tabular::AttentionActivation::kSigmoidFolded
                          : tabular::AttentionActivation::kSoftmaxAtQuery;
  c.encoder = decode_encoder_kind(r.u8());
  c.kmeans_iters = r.u64();
  c.seed = r.u64();
  std::vector<float> qk_table = r.f32s();
  std::vector<float> qkv_table = r.f32s();
  auto read_bank = [&r](std::size_t count) {
    std::vector<std::unique_ptr<pq::Encoder>> bank;
    bank.reserve(count);
    for (std::size_t i = 0; i < count; ++i) bank.push_back(get_encoder(r));
    return bank;
  };
  auto q_enc = read_bank(c.ck);
  auto k_enc = read_bank(c.ck);
  auto s_enc = read_bank(c.ct);
  auto v_enc = read_bank(c.ct);
  return std::make_unique<tabular::AttentionKernel>(tabular::AttentionKernel::from_parts(
      c, t_len, dk, std::move(qk_table), std::move(qkv_table), std::move(q_enc),
      std::move(k_enc), std::move(s_enc), std::move(v_enc)));
}

void put_ln(ByteWriter& w, const tabular::LnParams& ln) {
  w.tensor(ln.gamma);
  w.tensor(ln.beta);
  w.f32(ln.eps);
}

tabular::LnParams get_ln(ByteReader& r) {
  tabular::LnParams ln;
  ln.gamma = r.tensor();
  ln.beta = r.tensor();
  ln.eps = r.f32();
  if (ln.gamma.numel() != ln.beta.numel()) {
    throw ArtifactError("LayerNorm gamma/beta size mismatch");
  }
  return ln;
}

void put_lut(ByteWriter& w, const tabular::SigmoidLut& lut) {
  w.u32(static_cast<std::uint32_t>(tabular::SigmoidLut::kEntries));
  w.f32(tabular::SigmoidLut::kRange);
  w.f32s(lut.table_data(), tabular::SigmoidLut::kEntries);
}

tabular::SigmoidLut get_lut(ByteReader& r) {
  const std::uint32_t entries = r.u32();
  const float range = r.f32();
  if (entries != tabular::SigmoidLut::kEntries || range != tabular::SigmoidLut::kRange) {
    throw ArtifactError("sigmoid LUT geometry is not supported by this build");
  }
  std::vector<float> stored = r.f32s();
  if (stored.size() != tabular::SigmoidLut::kEntries) {
    throw ArtifactError("sigmoid LUT payload has the wrong entry count");
  }
  // Adopt the stored table verbatim (integrity is already covered by the
  // container checksum): served predictions stay bit-exact with the
  // producing host even when this host's libm rounds std::exp differently.
  tabular::SigmoidLut lut;
  lut.set_table(stored.data(), stored.size());
  return lut;
}

// ---------------------------------------------- predictor (de)serializers

void put_linear_opt(ByteWriter& w, const std::unique_ptr<tabular::LinearKernel>& kernel) {
  w.u8(kernel ? 1 : 0);
  if (kernel) put_linear(w, *kernel);
}

std::unique_ptr<tabular::LinearKernel> get_linear_opt(ByteReader& r) {
  return r.u8() ? get_linear(r) : nullptr;
}

void put_predictor(ByteWriter& w, const tabular::TabularPredictor& p) {
  put_linear_opt(w, p.addr_kernel);
  put_linear_opt(w, p.pc_kernel);
  w.tensor(p.pos_encoding);
  w.u64(p.layers.size());
  for (const auto& layer : p.layers) {
    put_linear_opt(w, layer.qkv);
    w.u64(layer.heads.size());
    for (const auto& head : layer.heads) put_attention(w, *head);
    put_linear_opt(w, layer.out_proj);
    put_ln(w, layer.ln1);
    put_linear_opt(w, layer.ffn_hidden);
    put_linear_opt(w, layer.ffn_out);
    put_ln(w, layer.ln2);
  }
  put_ln(w, p.final_ln);
  put_linear_opt(w, p.head_kernel);
  put_lut(w, p.sigmoid_lut);
}

/// Cross-checks the deserialized kernels against the declared architecture
/// so a mismatched ARCH/TPRD pair fails loudly instead of mis-indexing.
void check_dims(bool ok, const char* what) {
  if (!ok) throw ArtifactError(std::string("artifact predictor inconsistent: ") + what);
}

tabular::TabularPredictor get_predictor(ByteReader& r, const nn::ModelConfig& arch) {
  tabular::TabularPredictor p(arch);
  p.addr_kernel = get_linear_opt(r);
  p.pc_kernel = get_linear_opt(r);
  p.pos_encoding = r.tensor();
  const std::size_t layer_count = r.u64();
  check_dims(layer_count == arch.layers, "layer count");
  check_dims(p.pos_encoding.ndim() == 2 && p.pos_encoding.dim(0) == arch.seq_len &&
                 p.pos_encoding.dim(1) == arch.dim,
             "positional encoding shape");
  check_dims(p.addr_kernel && p.addr_kernel->in_dim() == arch.addr_dim &&
                 p.addr_kernel->out_dim() == arch.dim,
             "addr kernel shape");
  check_dims(p.pc_kernel && p.pc_kernel->in_dim() == arch.pc_dim &&
                 p.pc_kernel->out_dim() == arch.dim,
             "pc kernel shape");
  p.layers.resize(layer_count);
  for (auto& layer : p.layers) {
    layer.qkv = get_linear_opt(r);
    check_dims(layer.qkv && layer.qkv->in_dim() == arch.dim &&
                   layer.qkv->out_dim() == 3 * arch.dim,
               "qkv kernel shape");
    const std::size_t heads = r.u64();
    check_dims(heads == arch.heads, "head count");
    layer.heads.resize(heads);
    for (auto& head : layer.heads) {
      head = get_attention(r);
      check_dims(head->seq_len() == arch.seq_len &&
                     head->head_dim() * arch.heads == arch.dim,
                 "attention head shape");
    }
    layer.out_proj = get_linear_opt(r);
    layer.ln1 = get_ln(r);
    layer.ffn_hidden = get_linear_opt(r);
    layer.ffn_out = get_linear_opt(r);
    layer.ln2 = get_ln(r);
    check_dims(layer.out_proj && layer.out_proj->in_dim() == arch.dim &&
                   layer.out_proj->out_dim() == arch.dim,
               "out_proj kernel shape");
    check_dims(layer.ffn_hidden && layer.ffn_hidden->in_dim() == arch.dim &&
                   layer.ffn_hidden->out_dim() == arch.ffn_dim,
               "ffn hidden kernel shape");
    check_dims(layer.ffn_out && layer.ffn_out->in_dim() == arch.ffn_dim &&
                   layer.ffn_out->out_dim() == arch.dim,
               "ffn out kernel shape");
    check_dims(layer.ln1.gamma.numel() == arch.dim && layer.ln2.gamma.numel() == arch.dim,
               "layer norm width");
  }
  p.final_ln = get_ln(r);
  p.head_kernel = get_linear_opt(r);
  check_dims(p.head_kernel && p.head_kernel->in_dim() == arch.dim &&
                 p.head_kernel->out_dim() == arch.out_dim,
             "head kernel shape");
  check_dims(p.final_ln.gamma.numel() == arch.dim, "final layer norm width");
  p.sigmoid_lut = get_lut(r);
  if (!r.done()) throw ArtifactError("trailing bytes in predictor chunk");
  return p;
}

// ------------------------------------------ quantized-table serializers
// The QNTT chunk (DESIGN.md §10) is OPTIONAL: readers predating it skip the
// unknown tag and serve the bit-exact float tables, and float-only
// artifacts simply never carry it. It stores only the row-layout payloads
// (q16/q8) plus scales/offsets — the vpshufb lut8 relayout is deterministic
// and rebuilt by attach_quantized on load.

tabular::QuantMode decode_quant_mode(std::uint8_t v) {
  if (v != static_cast<std::uint8_t>(tabular::QuantMode::kInt16) &&
      v != static_cast<std::uint8_t>(tabular::QuantMode::kInt8)) {
    throw ArtifactError("unknown quantization mode tag " + std::to_string(v));
  }
  return static_cast<tabular::QuantMode>(v);
}

void put_quant_table(ByteWriter& w, const tabular::QuantizedTable& qt) {
  w.u8(static_cast<std::uint8_t>(qt.mode));
  w.u64(qt.c);
  w.u64(qt.k);
  w.u64(qt.out_dim);
  w.f32s(qt.scales.data(), qt.scales.size());
  w.f32s(qt.offsets.data(), qt.offsets.size());
  if (qt.mode == tabular::QuantMode::kInt16) {
    w.i16s(qt.q16.data(), qt.q16.size());
  } else {
    w.i8s(qt.q8.data(), qt.q8.size());
  }
}

tabular::QuantizedTable get_quant_table(ByteReader& r, tabular::QuantMode chunk_mode) {
  tabular::QuantizedTable qt;
  qt.mode = decode_quant_mode(r.u8());
  if (qt.mode != chunk_mode) throw ArtifactError("quantized chunk mixes modes");
  qt.c = r.u64();
  qt.k = r.u64();
  qt.out_dim = r.u64();
  qt.scales = r.f32s();
  qt.offsets = r.f32s();
  if (qt.mode == tabular::QuantMode::kInt16) {
    qt.q16 = r.i16s();
  } else {
    qt.q8 = r.i8s();
  }
  return qt;
}

// Canonical kernel order shared by the QNTT writer and loader: addr, pc,
// per layer [qkv, out_proj, ffn_hidden, ffn_out], head.
template <typename Fn>
void for_each_linear(const tabular::TabularPredictor& p, Fn&& fn) {
  fn(p.addr_kernel);
  fn(p.pc_kernel);
  for (const auto& layer : p.layers) {
    fn(layer.qkv);
    fn(layer.out_proj);
    fn(layer.ffn_hidden);
    fn(layer.ffn_out);
  }
  fn(p.head_kernel);
}

void put_predictor_quant(ByteWriter& w, const tabular::TabularPredictor& p) {
  w.u8(static_cast<std::uint8_t>(p.quant_mode()));
  std::uint64_t count = 0;
  for_each_linear(p, [&count](const auto& k) {
    if (k) ++count;
  });
  w.u64(count);
  for_each_linear(p, [&w](const auto& k) {
    if (k) put_quant_table(w, k->quantized());
  });
}

void attach_predictor_quant(ByteReader& r, tabular::TabularPredictor& p) {
  const tabular::QuantMode mode = decode_quant_mode(r.u8());
  const std::uint64_t count = r.u64();
  std::uint64_t expected = 0;
  for_each_linear(p, [&expected](const auto& k) {
    if (k) ++expected;
  });
  if (count != expected) {
    throw ArtifactError("quantized chunk kernel count does not match the predictor");
  }
  // attach_quantized cross-validates each payload against the kernel's
  // <C, K, DO> and throws std::invalid_argument (wrapped into
  // ArtifactError by with_clean_errors) on mismatch.
  for_each_linear(p, [&r, mode](const std::unique_ptr<tabular::LinearKernel>& k) {
    if (k) k->attach_quantized(get_quant_table(r, mode));
  });
  if (!r.done()) throw ArtifactError("trailing bytes in quantized chunk");
  p.adopt_quant_mode(mode);
}

void put_meta(ByteWriter& w, const ArtifactMeta& meta) {
  w.str(meta.producer);
  w.str(meta.app);
  w.str(meta.display_name);
  w.str(meta.config_key);
  w.u64(meta.latency_cycles);
  put_table_config(w, meta.tables);
  put_prep(w, meta.prep);
}

ArtifactMeta get_meta(ByteReader& r) {
  ArtifactMeta meta;
  meta.producer = r.str();
  meta.app = r.str();
  meta.display_name = r.str();
  meta.config_key = r.str();
  meta.latency_cycles = r.u64();
  meta.tables = get_table_config(r);
  meta.prep = get_prep(r);
  return meta;
}

/// Translates any parsing exception (std::invalid_argument from the
/// from_parts validators, bad_alloc from adversarial sizes, ...) into an
/// ArtifactError carrying the file path.
template <typename Fn>
auto with_clean_errors(const std::string& path, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const ArtifactError& e) {
    throw ArtifactError(path + ": " + e.what());
  } catch (const std::exception& e) {
    throw ArtifactError(path + ": invalid artifact: " + e.what());
  }
}

/// Runs `fn` over the required chunk `tag`, stamping any failure with the
/// chunk tag and its file byte offset so quarantine logs (the serve-side
/// swap_artifact rejection path, DESIGN.md §11) say exactly where the
/// damage sits: "<path>: chunk 'TPRD' at byte offset 128: ...".
template <typename Fn>
auto in_chunk(const ChunkReader& container, const char tag[5], Fn&& fn)
    -> decltype(fn(std::declval<ByteReader&>())) {
  ByteReader r = container.require(tag);
  try {
    return fn(r);
  } catch (const ArtifactError& e) {
    throw ArtifactError(std::string("chunk '") + tag + "' at byte offset " +
                        std::to_string(container.offset_of(tag)) + ": " + e.what());
  } catch (const std::exception& e) {
    throw ArtifactError(std::string("chunk '") + tag + "' at byte offset " +
                        std::to_string(container.offset_of(tag)) + ": invalid artifact: " +
                        e.what());
  }
}

ArtifactInfo info_from_container(const ChunkReader& container) {
  ArtifactInfo info;
  info.format_version = container.version();
  info.content_hash = container.content_hash();
  if (container.has(kTagMeta)) {
    info.meta = in_chunk(container, kTagMeta, [](ByteReader& r) { return get_meta(r); });
  }
  if (container.has(kTagArch)) {
    info.arch =
        in_chunk(container, kTagArch, [](ByteReader& r) { return get_model_config(r); });
  }
  if (container.has(kTagQuant)) {
    info.quant =
        in_chunk(container, kTagQuant, [](ByteReader& r) { return decode_quant_mode(r.u8()); });
  }
  return info;
}

}  // namespace

// ------------------------------------------------------------- public API

void put_model_config(ByteWriter& w, const nn::ModelConfig& c) {
  w.u64(c.seq_len);
  w.u64(c.addr_dim);
  w.u64(c.pc_dim);
  w.u64(c.dim);
  w.u64(c.ffn_dim);
  w.u64(c.out_dim);
  w.u64(c.heads);
  w.u64(c.layers);
}

void put_table_config(ByteWriter& w, const tabular::TableConfig& t) {
  for (const auto* lc : {&t.input, &t.attention, &t.ffn, &t.output}) {
    w.u64(lc->k);
    w.u64(lc->c);
  }
  w.u64(t.data_bits);
}

void put_prep(ByteWriter& w, const trace::PreprocessOptions& p) {
  w.u64(p.history);
  w.u64(p.segment_bits);
  w.u64(p.addr_segments);
  w.u64(p.pc_segments);
  w.u64(p.bitmap_size);
  w.u64(p.lookforward);
  w.u64(p.max_samples);
}

std::uint64_t save_predictor_artifact(const std::string& path,
                                      const tabular::TabularPredictor& predictor,
                                      const ArtifactMeta& meta) {
  return with_clean_errors(path, [&] {
    ChunkWriter out;
    put_meta(out.chunk(kTagMeta), meta);
    put_model_config(out.chunk(kTagArch), predictor.arch());
    put_predictor(out.chunk(kTagPredictor), predictor);
    if (predictor.quant_mode() != tabular::QuantMode::kOff) {
      put_predictor_quant(out.chunk(kTagQuant), predictor);
    }
    return out.write(path);
  });
}

std::vector<std::uint8_t> read_artifact_file(const std::string& path) { return read_file(path); }

tabular::TabularPredictor load_predictor_artifact_bytes(std::vector<std::uint8_t> bytes,
                                                        const std::string& name,
                                                        ArtifactInfo* info) {
  return with_clean_errors(name, [&]() -> tabular::TabularPredictor {
    ChunkReader container(std::move(bytes));
    const nn::ModelConfig arch =
        in_chunk(container, kTagArch, [](ByteReader& r) { return get_model_config(r); });
    tabular::TabularPredictor predictor = in_chunk(
        container, kTagPredictor, [&](ByteReader& r) { return get_predictor(r, arch); });
    if (container.has(kTagQuant)) {
      in_chunk(container, kTagQuant, [&](ByteReader& r) {
        attach_predictor_quant(r, predictor);
        return 0;
      });
    }
    if (info) *info = info_from_container(container);
    return predictor;
  });
}

tabular::TabularPredictor load_predictor_artifact(const std::string& path, ArtifactInfo* info) {
  return load_predictor_artifact_bytes(read_file(path), path, info);
}

tabular::TabularPredictor clone_predictor(const tabular::TabularPredictor& predictor) {
  // The predictor is deliberately non-copyable; the codec round trip is the
  // sanctioned clone and is bit-exact by the artifact contract (DESIGN.md
  // §7). Quantized mirrors are not cloned — callers pick the clone's mode.
  ByteWriter w;
  put_predictor(w, predictor);
  ByteReader r(w.bytes().data(), w.size());
  return get_predictor(r, predictor.arch());
}

ArtifactInfo read_artifact_info(const std::string& path) {
  return with_clean_errors(path, [&] {
    ChunkReader container(read_file(path));
    return info_from_container(container);
  });
}

std::uint64_t save_fused_artifact(const std::string& path, const tabular::FusedKernel& kernel,
                                  const ArtifactMeta& meta) {
  return with_clean_errors(path, [&] {
    ChunkWriter out;
    put_meta(out.chunk(kTagMeta), meta);
    ByteWriter& w = out.chunk(kTagFused);
    w.u64(kernel.in_dim());
    w.u64(kernel.out_dim());
    w.u64(kernel.config().num_prototypes);
    w.u8(encode_encoder_kind(kernel.config().encoder));
    w.u64(kernel.config().kmeans_iters);
    w.u64(kernel.config().seed);
    w.tensor(kernel.table());
    put_encoder(w, kernel.encoder());
    // The fused quantized mirror travels in its own QNTT chunk: extending
    // the FUSD payload would break old readers, which check r.done().
    if (kernel.quant_mode() != tabular::QuantMode::kOff) {
      ByteWriter& q = out.chunk(kTagQuant);
      q.u8(static_cast<std::uint8_t>(kernel.quant_mode()));
      q.u64(1);
      put_quant_table(q, kernel.quantized());
    }
    return out.write(path);
  });
}

tabular::FusedKernel load_fused_artifact(const std::string& path, ArtifactInfo* info) {
  return with_clean_errors(path, [&]() -> tabular::FusedKernel {
    ChunkReader container(read_file(path));
    ByteReader r = container.require(kTagFused);
    const std::size_t in_dim = r.u64();
    const std::size_t out_dim = r.u64();
    tabular::FusedKernelConfig config;
    config.num_prototypes = r.u64();
    config.encoder = decode_encoder_kind(r.u8());
    config.kmeans_iters = r.u64();
    config.seed = r.u64();
    nn::Tensor table = r.tensor();
    std::unique_ptr<pq::Encoder> encoder = get_encoder(r);
    if (!r.done()) throw ArtifactError("trailing bytes in fused-kernel chunk");
    tabular::FusedKernel kernel = tabular::FusedKernel::from_parts(
        config, in_dim, out_dim, std::move(table), std::move(encoder));
    if (container.has(kTagQuant)) {
      ByteReader q = container.require(kTagQuant);
      const tabular::QuantMode mode = decode_quant_mode(q.u8());
      if (q.u64() != 1) {
        throw ArtifactError("fused quantized chunk must hold exactly one table");
      }
      kernel.attach_quantized(get_quant_table(q, mode));
      if (!q.done()) throw ArtifactError("trailing bytes in quantized chunk");
    }
    if (info) *info = info_from_container(container);
    return kernel;
  });
}

}  // namespace dart::io

// Member-function shims declared in the tabular headers: defined here so
// the tabular target never depends on io at compile time (the project links
// as one library, the same cross-directory idiom as the registry packs).
namespace dart::tabular {

void TabularPredictor::save(const std::string& path) const {
  io::ArtifactMeta meta;
  meta.producer = "TabularPredictor::save";
  io::save_predictor_artifact(path, *this, meta);
}

TabularPredictor TabularPredictor::load(const std::string& path) {
  return io::load_predictor_artifact(path);
}

void FusedKernel::save(const std::string& path) const {
  io::ArtifactMeta meta;
  meta.producer = "FusedKernel::save";
  io::save_fused_artifact(path, *this, meta);
}

FusedKernel FusedKernel::load(const std::string& path) {
  return io::load_fused_artifact(path);
}

}  // namespace dart::tabular
