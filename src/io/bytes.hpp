// Endian-explicit binary primitives for the `.dart` artifact container
// (DESIGN.md §7).
//
// Every multi-byte value is encoded little-endian by explicit byte shifts,
// so artifacts are byte-identical across hosts regardless of the native
// endianness, and floats travel as their IEEE-754 bit patterns (the
// round-trip is bit-exact by construction). `ByteReader` bounds-checks every
// read — a truncated or corrupted payload raises `ArtifactError`, never
// undefined behavior — and validates count prefixes against the remaining
// payload before allocating, so a corrupted length field cannot trigger a
// multi-gigabyte allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace dart::io {

/// Error raised by every artifact parsing/validation failure: truncation,
/// corruption, checksum/magic/version mismatch, or inconsistent payloads.
/// Loading never exhibits undefined behavior on malformed input — it throws
/// this instead.
class ArtifactError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a offset basis (the seed of an unchained hash).
inline constexpr std::uint64_t kFnv1aBasis = 1469598103934665603ULL;

/// 64-bit FNV-1a over `n` bytes, chainable via `seed`. Used both for the
/// container checksum/content hash and for configuration cache keys.
std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed = kFnv1aBasis);

/// Appends little-endian encoded scalars, strings, arrays, and tensors to a
/// growing byte buffer. The exact inverse of `ByteReader`.
class ByteWriter {
 public:
  /// Appends one byte.
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  /// Appends a 32-bit value, little-endian.
  void u32(std::uint32_t v);
  /// Appends a 64-bit value, little-endian.
  void u64(std::uint64_t v);
  /// Appends a float as its IEEE-754 bit pattern, little-endian.
  void f32(float v);
  /// Appends a double as its IEEE-754 bit pattern, little-endian. Used by
  /// the sweep result store for per-cell derived metrics.
  void f64(double v);
  /// Appends a u64 length prefix followed by the raw characters.
  void str(const std::string& s);
  /// Appends a u64 count prefix followed by `n` floats.
  void f32s(const float* data, std::size_t n);
  /// Appends a u64 count prefix followed by `n` uint32 values.
  void u32s(const std::uint32_t* data, std::size_t n);
  /// Appends a u64 count prefix followed by `n` int32 values (two's
  /// complement bit patterns).
  void i32s(const std::int32_t* data, std::size_t n);
  /// Appends a u64 count prefix followed by `n` int16 values (two's
  /// complement bit patterns, little-endian). Used by the QNTT chunk.
  void i16s(const std::int16_t* data, std::size_t n);
  /// Appends a u64 count prefix followed by `n` int8 values (two's
  /// complement bit patterns). Used by the QNTT chunk.
  void i8s(const std::int8_t* data, std::size_t n);
  /// Appends a tensor: u32 ndim, u64 extents, then the float payload.
  void tensor(const nn::Tensor& t);

  /// The accumulated bytes.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  /// Number of bytes written so far.
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over a borrowed byte range. Every
/// accessor throws `ArtifactError` instead of reading out of bounds.
class ByteReader {
 public:
  /// Wraps `[data, data + n)`; the range must outlive the reader.
  ByteReader(const std::uint8_t* data, std::size_t n) : data_(data), size_(n) {}

  /// Reads one byte.
  std::uint8_t u8();
  /// Reads a little-endian 32-bit value.
  std::uint32_t u32();
  /// Reads a little-endian 64-bit value.
  std::uint64_t u64();
  /// Reads an IEEE-754 float.
  float f32();
  /// Reads an IEEE-754 double.
  double f64();
  /// Reads a length-prefixed string.
  std::string str();
  /// Reads a count-prefixed float array.
  std::vector<float> f32s();
  /// Reads a count-prefixed uint32 array.
  std::vector<std::uint32_t> u32s();
  /// Reads a count-prefixed int32 array.
  std::vector<std::int32_t> i32s();
  /// Reads a count-prefixed int16 array.
  std::vector<std::int16_t> i16s();
  /// Reads a count-prefixed int8 array.
  std::vector<std::int8_t> i8s();
  /// Reads a tensor (u32 ndim, u64 extents, float payload); validates that
  /// the extent product matches the payload count.
  nn::Tensor tensor();

  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - pos_; }
  /// True when the payload is fully consumed.
  bool done() const { return pos_ == size_; }

 private:
  /// Throws `ArtifactError` unless `n` more bytes are available.
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Atomically replaces `path` with `n` bytes of `data`: writes a sibling
/// temp file, fsyncs it, renames it over `path`, and fsyncs the parent
/// directory. A crash at any point leaves either the old file or the new
/// file — never a torn final file that a later run half-trusts. The
/// leftover temp of an interrupted write is ignored by every reader (it
/// never carries the final name) and is overwritten by the next save.
/// Throws ArtifactError on any I/O failure (the temp file is removed).
void write_file_atomic(const std::string& path, const void* data, std::size_t n);

}  // namespace dart::io
