// Versioned model-artifact store: the `.dart` container (DESIGN.md §7).
//
// A `.dart` file is the complete deployment bundle of one tabularized DART
// predictor — PQ codebooks and hash-tree encoders, the transposed [C][K][DO]
// linear-kernel tables, both attention tables per head, LayerNorm
// parameters, the sigmoid LUT, the originating ModelConfig, and producer
// metadata (app, display name, latency from the Eq. 22 cost model, the
// preprocessing geometry, and a configuration cache key). Serving processes
// (`tools/dart_run`, the `dart-artifact` prefetcher spec) cold-start from it
// in milliseconds, with predictions bit-exact vs the training process.
//
// Container layout (chunk-tagged, little-endian, 8-byte aligned; the full
// byte-level spec is DESIGN.md §7):
//
//   [magic 8B] [version u32] [flags u32]
//   repeated chunks: [tag 4B] [length u64] [payload] [pad to 8]
//   final chunk "CSUM": FNV-1a 64 over every preceding file byte
//
// Unknown chunk tags are skipped on load (forward compatibility); breaking
// layout changes bump the version, which loaders reject with a clean error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/bytes.hpp"
#include "nn/transformer.hpp"
#include "tabular/complexity.hpp"
#include "tabular/fused_kernel.hpp"
#include "tabular/tabular_predictor.hpp"
#include "trace/preprocess.hpp"

namespace dart::io {

/// Current container format version. Readers reject newer (or unknown
/// older) versions with ArtifactError instead of misparsing.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Producer metadata stored in the META chunk. Everything here is
/// informational except `config_key`, which cache layers compare against
/// the expected key of the producing configuration to detect stale files.
struct ArtifactMeta {
  std::string producer;       ///< e.g. "dart_train", "experiment_runner"
  std::string app;            ///< Table IV app name, e.g. "605.mcf"
  std::string display_name;   ///< e.g. "DART-L"
  std::string config_key;     ///< producing-configuration hash (cache key)
  std::uint64_t latency_cycles = 0;  ///< Eq. 22 cost-model latency
  tabular::TableConfig tables;       ///< the <K, C> table configuration
  /// Preprocessing geometry the model was trained with — a serving process
  /// must build inference inputs (segmentation, bitmap width) identically.
  trace::PreprocessOptions prep;
};

/// Parsed header + metadata of an artifact (without the model payload).
struct ArtifactInfo {
  std::uint32_t format_version = 0;
  /// FNV-1a 64 over the whole file body (the CSUM value): a content hash
  /// usable as a cache/identity key for the trained model.
  std::uint64_t content_hash = 0;
  /// Quantization mode of the stored QNTT chunk (DESIGN.md §10); kOff when
  /// the artifact carries only exact float tables.
  tabular::QuantMode quant = tabular::QuantMode::kOff;
  ArtifactMeta meta;
  nn::ModelConfig arch;
};

/// Writes `predictor` plus `meta` to `path` as a `.dart` artifact.
/// Returns the content hash. Throws ArtifactError on I/O failure.
std::uint64_t save_predictor_artifact(const std::string& path,
                                      const tabular::TabularPredictor& predictor,
                                      const ArtifactMeta& meta);

/// Loads a predictor artifact; the returned predictor's outputs are
/// bit-exact vs the instance that was saved. Optionally fills `info` with
/// the header/metadata. Throws ArtifactError on missing, truncated,
/// corrupted, or version-mismatched files.
tabular::TabularPredictor load_predictor_artifact(const std::string& path,
                                                  ArtifactInfo* info = nullptr);

/// Reads the raw bytes of the artifact file at `path` (no parsing). Throws
/// ArtifactError on I/O failure. Pairs with load_predictor_artifact_bytes
/// so callers can validate an image fully before acting on it — the
/// serve-side validate-then-publish reload (DESIGN.md §11) and the
/// fault-injection hooks both work on this byte image.
std::vector<std::uint8_t> read_artifact_file(const std::string& path);

/// Parses a predictor artifact from an in-memory byte image. `name` labels
/// error messages (usually the originating path). Error strings carry the
/// failing chunk tag and file byte offset, e.g.
/// "model.dart: chunk 'TPRD' at byte offset 128: truncated ...".
tabular::TabularPredictor load_predictor_artifact_bytes(std::vector<std::uint8_t> bytes,
                                                        const std::string& name,
                                                        ArtifactInfo* info = nullptr);

/// Clones a predictor through the artifact codec's in-memory round trip —
/// the sanctioned copy of the deliberately non-copyable TabularPredictor,
/// bit-exact by the artifact contract. The clone carries float tables only
/// (quant mode kOff); callers re-quantize as needed.
tabular::TabularPredictor clone_predictor(const tabular::TabularPredictor& predictor);

/// Reads only the header + META/ARCH chunks (still checksum-verified).
/// Throws ArtifactError on any container-level problem.
ArtifactInfo read_artifact_info(const std::string& path);

/// Writes a fused multi-layer table as a `.dart` artifact (FUSD chunk).
/// Returns the content hash. Throws ArtifactError on I/O failure.
std::uint64_t save_fused_artifact(const std::string& path, const tabular::FusedKernel& kernel,
                                  const ArtifactMeta& meta = {});

/// Loads a fused-kernel artifact saved by `save_fused_artifact`; bit-exact.
/// Throws ArtifactError on malformed files.
tabular::FusedKernel load_fused_artifact(const std::string& path, ArtifactInfo* info = nullptr);

// Shared config field codecs. The artifact chunks and the configuration
// cache keys (core::pipeline_cache_key) serialize through the SAME
// functions, so adding a field to one of these structs cannot desync the
// staleness detection from the stored format.

/// Appends the eight nn::ModelConfig fields.
void put_model_config(ByteWriter& w, const nn::ModelConfig& config);
/// Appends the four <K, C> pairs plus data_bits of a TableConfig.
void put_table_config(ByteWriter& w, const tabular::TableConfig& tables);
/// Appends the seven trace::PreprocessOptions fields.
void put_prep(ByteWriter& w, const trace::PreprocessOptions& prep);

}  // namespace dart::io
