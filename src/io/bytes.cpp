#include "io/bytes.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace dart::io {

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// ------------------------------------------------------------------ writer

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f32(float v) {
  std::uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "float must be 32-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::f32s(const float* data, std::size_t n) {
  u64(n);
  for (std::size_t i = 0; i < n; ++i) f32(data[i]);
}

void ByteWriter::u32s(const std::uint32_t* data, std::size_t n) {
  u64(n);
  for (std::size_t i = 0; i < n; ++i) u32(data[i]);
}

void ByteWriter::i32s(const std::int32_t* data, std::size_t n) {
  u64(n);
  for (std::size_t i = 0; i < n; ++i) u32(static_cast<std::uint32_t>(data[i]));
}

void ByteWriter::i16s(const std::int16_t* data, std::size_t n) {
  u64(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::uint16_t>(data[i]);
    bytes_.push_back(static_cast<std::uint8_t>(v));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
}

void ByteWriter::i8s(const std::int8_t* data, std::size_t n) {
  u64(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(data[i]));
  }
}

void ByteWriter::tensor(const nn::Tensor& t) {
  u32(static_cast<std::uint32_t>(t.ndim()));
  for (std::size_t i = 0; i < t.ndim(); ++i) u64(t.dim(i));
  f32s(t.data(), t.numel());
}

// ------------------------------------------------------------------ reader

void ByteReader::need(std::size_t n) const {
  if (n > size_ - pos_) {
    throw ArtifactError("truncated artifact payload: need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_) + ", have " +
                        std::to_string(size_ - pos_));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  need(n);  // rejects corrupted lengths before any allocation
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

// Count prefixes are validated against the remaining payload (divide, so a
// near-2^64 count cannot overflow the byte total) before any allocation.
std::vector<float> ByteReader::f32s() {
  const std::uint64_t n = u64();
  if (n > remaining() / 4) throw ArtifactError("artifact float array of " + std::to_string(n) +
                        " elements at byte offset " + std::to_string(pos_) +
                        " exceeds the remaining payload");
  std::vector<float> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = f32();
  return out;
}

std::vector<std::uint32_t> ByteReader::u32s() {
  const std::uint64_t n = u64();
  if (n > remaining() / 4) throw ArtifactError("artifact uint32 array of " + std::to_string(n) +
                        " elements at byte offset " + std::to_string(pos_) +
                        " exceeds the remaining payload");
  std::vector<std::uint32_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = u32();
  return out;
}

std::vector<std::int32_t> ByteReader::i32s() {
  const std::uint64_t n = u64();
  if (n > remaining() / 4) throw ArtifactError("artifact int32 array of " + std::to_string(n) +
                        " elements at byte offset " + std::to_string(pos_) +
                        " exceeds the remaining payload");
  std::vector<std::int32_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = static_cast<std::int32_t>(u32());
  return out;
}

std::vector<std::int16_t> ByteReader::i16s() {
  const std::uint64_t n = u64();
  if (n > remaining() / 2) throw ArtifactError("artifact int16 array of " + std::to_string(n) +
                        " elements at byte offset " + std::to_string(pos_) +
                        " exceeds the remaining payload");
  std::vector<std::int16_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                      static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
    pos_ += 2;
    out[i] = static_cast<std::int16_t>(v);
  }
  return out;
}

std::vector<std::int8_t> ByteReader::i8s() {
  const std::uint64_t n = u64();
  if (n > remaining()) throw ArtifactError("artifact int8 array of " + std::to_string(n) +
                        " elements at byte offset " + std::to_string(pos_) +
                        " exceeds the remaining payload");
  std::vector<std::int8_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = static_cast<std::int8_t>(data_[pos_++]);
  return out;
}

nn::Tensor ByteReader::tensor() {
  const std::uint32_t ndim = u32();
  if (ndim == 0 || ndim > 4) {
    throw ArtifactError("artifact tensor at byte offset " + std::to_string(pos_) +
                        " has unsupported rank " + std::to_string(ndim));
  }
  std::vector<std::size_t> shape(ndim);
  std::uint64_t numel = 1;
  for (std::uint32_t i = 0; i < ndim; ++i) {
    const std::uint64_t d = u64();
    // A corrupted extent must not overflow the element count: each extent is
    // bounded by the payload that must still follow.
    if (d == 0 || d > remaining() || numel > remaining()) {
      throw ArtifactError("artifact tensor extent at byte offset " + std::to_string(pos_) +
                          " is inconsistent with payload size");
    }
    shape[i] = static_cast<std::size_t>(d);
    numel *= d;
  }
  std::vector<float> payload = f32s();
  if (payload.size() != numel) {
    throw ArtifactError("artifact tensor payload at byte offset " + std::to_string(pos_) +
                        " does not match its shape");
  }
  nn::Tensor t(shape);
  std::memcpy(t.data(), payload.data(), payload.size() * sizeof(float));
  return t;
}

// ------------------------------------------------------------ atomic write

void write_file_atomic(const std::string& path, const void* data, std::size_t n) {
  // The temp lives next to the target so the rename never crosses a
  // filesystem boundary (rename is only atomic within one filesystem).
  const std::string tmp = path + ".tmp";
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw ArtifactError("cannot open '" + tmp + "' for writing");
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, p + off, n - off);
    if (w < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      throw ArtifactError("failed writing '" + tmp + "'");
    }
    off += static_cast<std::size_t>(w);
  }
  // Durability before visibility: the payload must be on stable storage
  // before the rename can publish it under the final name.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw ArtifactError("failed syncing '" + tmp + "'");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw ArtifactError("failed closing '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw ArtifactError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  // fsync the parent directory so the rename itself survives a crash.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best-effort: some filesystems reject directory fsync
    ::close(dfd);
  }
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw ArtifactError("cannot open '" + tmp + "' for writing");
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    out.flush();
    if (!out) throw ArtifactError("failed writing '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ArtifactError("cannot rename '" + tmp + "' to '" + path + "'");
  }
#endif
}

}  // namespace dart::io
