#include "common/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace dart::common {

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return std::fma(spare_normal_, stddev, mean);
  }
  // Marsaglia polar: draw (u, v) uniform on (-1, 1)^2 until inside the unit
  // disk, then scale by sqrt(-2 ln s / s). sqrt is IEEE-exact and det::log
  // is pinned, so the stream is bit-stable.
  double u, v, s;
  do {
    u = std::fma(to_unit_double(next_u64()), 2.0, -1.0);
    v = std::fma(to_unit_double(next_u64()), 2.0, -1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * det::log(s) / s);
  spare_normal_ = v * scale;
  has_spare_normal_ = true;
  return std::fma(u * scale, stddev, mean);
}

namespace {

/// Generalized harmonic number zeta(n, theta) = sum_{i=1..n} 1/i^theta.
/// Summed exactly (in pinned order, lowest term first) up to kExactZetaN
/// items; beyond that the tail is the analytic integral
/// (n^(1-theta) - k^(1-theta)) / (1-theta), which is accurate to < 0.1% for
/// the footprints we care about and — critically — pinned: both branches
/// use only det:: math, so zetan is bit-identical everywhere.
constexpr std::uint64_t kExactZetaN = 1ULL << 18;

double zeta(std::uint64_t n, double theta) {
  const std::uint64_t exact_n = n < kExactZetaN ? n : kExactZetaN;
  double sum = 0.0;
  // Smallest terms first so the accumulation order is both pinned and
  // numerically tame.
  for (std::uint64_t i = exact_n; i >= 1; --i) {
    sum += det::pow(static_cast<double>(i), -theta);
  }
  if (n > exact_n) {
    const double one_minus = 1.0 - theta;
    sum += (det::pow(static_cast<double>(n), one_minus) -
            det::pow(static_cast<double>(exact_n), one_minus)) /
           one_minus;
  }
  return sum;
}

}  // namespace

ZipfianSampler::ZipfianSampler(std::uint64_t items, double theta)
    : items_(items), theta_(theta) {
  if (items == 0) throw std::invalid_argument("ZipfianSampler: items must be > 0");
  if (theta <= 0.0 || theta >= 1.0) {
    throw std::invalid_argument("ZipfianSampler: theta must be in (0, 1)");
  }
  zetan_ = zeta(items, theta);
  const double zeta2 = zeta(2 < items ? 2 : items, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - det::pow(2.0 / static_cast<double>(items), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfianSampler::next(Rng& rng) const {
  // Gray et al. "Quickly generating billion-record synthetic databases"
  // (the YCSB generator): invert an approximate CDF with two exact special
  // cases for the two hottest ranks.
  const double u = to_unit_double(rng.next_u64());
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + det::pow(0.5, theta_)) return 1;
  const double frac = det::pow(std::fma(eta_, u, 1.0 - eta_), alpha_);
  std::uint64_t rank = static_cast<std::uint64_t>(static_cast<double>(items_) * frac);
  if (rank >= items_) rank = items_ - 1;
  return rank;
}

}  // namespace dart::common
