#include "common/fault.hpp"

#include <list>
#include <stdexcept>

#include "common/rng.hpp"

namespace dart::common {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t");
  return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
}

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("DART_FAULT: " + what);
}

std::uint64_t parse_u64(const FaultSpec& spec, const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    bad_spec(spec.kind + ": parameter '" + key + "' is not an unsigned integer: '" + value + "'");
  }
}

double parse_probability(const FaultSpec& spec, const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double p = std::stod(value, &used);
    if (used != value.size() || p < 0.0 || p > 1.0) throw std::invalid_argument(value);
    return p;
  } catch (const std::exception&) {
    bad_spec(spec.kind + ": parameter '" + key + "' is not a probability in [0, 1]: '" + value +
             "'");
  }
}

/// Looks up `key`; returns whether present, value in `out`.
bool find_param(const FaultSpec& spec, const std::string& key, std::string& out) {
  for (const auto& [k, v] : spec.params) {
    if (k == key) {
      out = v;
      return true;
    }
  }
  return false;
}

void require_known_params(const FaultSpec& spec, std::initializer_list<const char*> known) {
  for (const auto& [k, v] : spec.params) {
    bool ok = false;
    for (const char* name : known) ok = ok || (k == name);
    if (!ok) bad_spec(spec.kind + ": unknown parameter '" + k + "'");
  }
}

std::uint64_t required_u64(const FaultSpec& spec, const std::string& key) {
  std::string v;
  if (!find_param(spec, key, v)) bad_spec(spec.kind + ": missing required parameter '" + key + "'");
  return parse_u64(spec, key, v);
}

std::uint64_t optional_u64(const FaultSpec& spec, const std::string& key, std::uint64_t fallback) {
  std::string v;
  return find_param(spec, key, v) ? parse_u64(spec, key, v) : fallback;
}

std::string required_str(const FaultSpec& spec, const std::string& key) {
  std::string v;
  if (!find_param(spec, key, v)) bad_spec(spec.kind + ": missing required parameter '" + key + "'");
  if (v.empty()) bad_spec(spec.kind + ": parameter '" + key + "' must not be empty");
  return v;
}

/// Deterministic Bernoulli draw: counter-based SplitMix64
/// (common::counter_u01), so the decision sequence depends only on
/// (seed, draw index), never on thread timing.
bool draw(double p, std::uint64_t seed, std::atomic<std::uint64_t>& counter) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return common::counter_u01(seed, n) < p;
}

}  // namespace

std::vector<FaultSpec> parse_fault_specs(const std::string& text) {
  std::vector<FaultSpec> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(';', start);
    if (end == std::string::npos) end = text.size();
    const std::string clause = trim(text.substr(start, end - start));
    start = end + 1;
    if (clause.empty()) continue;

    FaultSpec spec;
    const std::size_t colon = clause.find(':');
    spec.kind = trim(clause.substr(0, colon));
    if (spec.kind.empty()) bad_spec("empty fault kind in '" + clause + "'");
    if (colon != std::string::npos) {
      std::size_t p = colon + 1;
      while (p <= clause.size()) {
        std::size_t q = clause.find(',', p);
        if (q == std::string::npos) q = clause.size();
        const std::string param = trim(clause.substr(p, q - p));
        p = q + 1;
        if (param.empty()) continue;
        const std::size_t eq = param.find('=');
        if (eq == std::string::npos || eq == 0) {
          bad_spec(spec.kind + ": parameter '" + param + "' is not key=value");
        }
        spec.params.emplace_back(trim(param.substr(0, eq)), trim(param.substr(eq + 1)));
      }
    }
    out.push_back(std::move(spec));
  }
  return out;
}

/// The armed plan: immutable clause parameters plus mutable per-clause fire
/// budgets (atomics; the plan object is shared as const by the hooks).
/// Clause lists use std::list so the atomics are constructed in place and
/// never moved.
struct FaultInjector::Plan {
  struct SlowShard {
    std::size_t shard = 0;
    std::uint64_t us = 0;
    std::uint64_t batches = 0;  ///< 0 = every batch
    mutable std::atomic<std::uint64_t> fired{0};
  };
  struct StallShard {
    std::size_t shard = 0;
    std::uint64_t after = 0;  ///< trigger on the (after+1)-th batch
    mutable std::atomic<std::uint64_t> seen{0};
  };
  struct DropWake {
    double p = 0.0;
    std::uint64_t seed = 42;
    mutable std::atomic<std::uint64_t> draws{0};
  };
  struct RejectSubmit {
    double p = 0.0;
    std::uint64_t seed = 42;
    std::int64_t shard = -1;  ///< -1 = all shards
    mutable std::atomic<std::uint64_t> draws{0};
  };
  struct MutateArtifact {
    bool truncate = false;
    std::uint64_t arg = 0;    ///< byte offset (corrupt) or byte count (truncate)
    std::uint64_t count = 1;  ///< reads affected before the clause expires
    mutable std::atomic<std::uint64_t> used{0};
  };
  struct FailCell {
    std::string match;        ///< substring of the "app|prefetcher" label
    std::uint64_t times = 0;  ///< matching attempts failed; 0 = forever
    mutable std::atomic<std::uint64_t> fired{0};
  };
  struct SlowCell {
    std::string match;
    std::uint64_t ms = 0;
    std::uint64_t times = 0;  ///< matching attempts delayed; 0 = forever
    mutable std::atomic<std::uint64_t> fired{0};
  };
  struct MutateStore {
    std::uint64_t bytes = 0;  ///< tail bytes chopped off the segment image
    std::uint64_t count = 1;  ///< opens affected before the clause expires
    mutable std::atomic<std::uint64_t> used{0};
  };
  struct CrashAfterCommit {
    std::uint64_t after = 1;  ///< fire right after this commit ordinal
    bool hard = false;        ///< _Exit instead of throwing
    mutable std::atomic<std::uint64_t> commits{0};
  };

  std::list<SlowShard> slow;
  std::list<StallShard> stall;
  std::list<DropWake> drop_wake;
  std::list<RejectSubmit> reject;
  std::list<MutateArtifact> mutate;
  std::list<FailCell> fail_cell;
  std::list<SlowCell> slow_cell;
  std::list<MutateStore> mutate_store;
  std::list<CrashAfterCommit> crash;
};

void FaultInjector::install(const std::string& spec) {
  const std::vector<FaultSpec> specs = parse_fault_specs(spec);
  auto plan = std::make_shared<Plan>();
  for (const FaultSpec& s : specs) {
    if (s.kind == "slow-shard") {
      require_known_params(s, {"shard", "us", "batches"});
      auto& c = plan->slow.emplace_back();
      c.shard = static_cast<std::size_t>(required_u64(s, "shard"));
      c.us = required_u64(s, "us");
      c.batches = optional_u64(s, "batches", 0);
    } else if (s.kind == "stall-shard") {
      require_known_params(s, {"shard", "after"});
      auto& c = plan->stall.emplace_back();
      c.shard = static_cast<std::size_t>(required_u64(s, "shard"));
      c.after = optional_u64(s, "after", 0);
    } else if (s.kind == "drop-wake") {
      require_known_params(s, {"p", "seed"});
      std::string v;
      if (!find_param(s, "p", v)) bad_spec("drop-wake: missing required parameter 'p'");
      auto& c = plan->drop_wake.emplace_back();
      c.p = parse_probability(s, "p", v);
      c.seed = optional_u64(s, "seed", 42);
    } else if (s.kind == "reject-submit") {
      require_known_params(s, {"p", "seed", "shard"});
      std::string v;
      if (!find_param(s, "p", v)) bad_spec("reject-submit: missing required parameter 'p'");
      auto& c = plan->reject.emplace_back();
      c.p = parse_probability(s, "p", v);
      c.seed = optional_u64(s, "seed", 42);
      std::string sh;
      if (find_param(s, "shard", sh)) {
        c.shard = static_cast<std::int64_t>(parse_u64(s, "shard", sh));
      }
    } else if (s.kind == "corrupt-artifact") {
      require_known_params(s, {"offset", "count"});
      auto& c = plan->mutate.emplace_back();
      c.truncate = false;
      c.arg = required_u64(s, "offset");
      c.count = optional_u64(s, "count", 1);
    } else if (s.kind == "truncate-artifact") {
      require_known_params(s, {"bytes", "count"});
      auto& c = plan->mutate.emplace_back();
      c.truncate = true;
      c.arg = required_u64(s, "bytes");
      c.count = optional_u64(s, "count", 1);
    } else if (s.kind == "fail-cell") {
      require_known_params(s, {"match", "times"});
      auto& c = plan->fail_cell.emplace_back();
      c.match = required_str(s, "match");
      c.times = optional_u64(s, "times", 0);
    } else if (s.kind == "slow-cell") {
      require_known_params(s, {"match", "ms", "times"});
      auto& c = plan->slow_cell.emplace_back();
      c.match = required_str(s, "match");
      c.ms = required_u64(s, "ms");
      c.times = optional_u64(s, "times", 0);
    } else if (s.kind == "corrupt-store-tail") {
      require_known_params(s, {"bytes", "count"});
      auto& c = plan->mutate_store.emplace_back();
      c.bytes = required_u64(s, "bytes");
      if (c.bytes == 0) bad_spec("corrupt-store-tail: 'bytes' must be positive");
      c.count = optional_u64(s, "count", 1);
    } else if (s.kind == "crash-after-commit") {
      require_known_params(s, {"after", "hard"});
      auto& c = plan->crash.emplace_back();
      c.after = required_u64(s, "after");
      if (c.after == 0) bad_spec("crash-after-commit: 'after' must be positive");
      c.hard = optional_u64(s, "hard", 0) != 0;
    } else {
      bad_spec("unknown fault kind '" + s.kind + "'");
    }
  }

  const bool empty = specs.empty();
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = empty ? nullptr : std::move(plan);
  slow_batches_.store(0, std::memory_order_relaxed);
  stalls_.store(0, std::memory_order_relaxed);
  wakes_dropped_.store(0, std::memory_order_relaxed);
  submits_rejected_.store(0, std::memory_order_relaxed);
  artifacts_mutated_.store(0, std::memory_order_relaxed);
  cells_failed_.store(0, std::memory_order_relaxed);
  cells_delayed_.store(0, std::memory_order_relaxed);
  stores_mutated_.store(0, std::memory_order_relaxed);
  crashes_.store(0, std::memory_order_relaxed);
  armed_.store(!empty, std::memory_order_release);
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = nullptr;
  armed_.store(false, std::memory_order_release);
}

std::shared_ptr<const FaultInjector::Plan> FaultInjector::plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

BatchFault FaultInjector::on_batch(std::size_t shard) {
  BatchFault fault;
  if (!armed()) return fault;
  const auto p = plan();
  if (!p) return fault;
  for (const auto& c : p->slow) {
    if (c.shard != shard) continue;
    if (c.batches != 0 && c.fired.fetch_add(1, std::memory_order_relaxed) >= c.batches) continue;
    fault.delay_us += c.us;
    slow_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  for (const auto& c : p->stall) {
    if (c.shard != shard) continue;
    // Exactly-once: only the (after+1)-th batch observed on this shard
    // trips the stall; the respawned thread's batches count past it.
    if (c.seen.fetch_add(1, std::memory_order_relaxed) == c.after) {
      fault.stall = true;
      stalls_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return fault;
}

bool FaultInjector::drop_wake() {
  if (!armed()) return false;
  const auto p = plan();
  if (!p) return false;
  for (const auto& c : p->drop_wake) {
    if (draw(c.p, c.seed, c.draws)) {
      wakes_dropped_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool FaultInjector::reject_submit(std::size_t shard) {
  if (!armed()) return false;
  const auto p = plan();
  if (!p) return false;
  for (const auto& c : p->reject) {
    if (c.shard >= 0 && static_cast<std::size_t>(c.shard) != shard) continue;
    if (draw(c.p, c.seed, c.draws)) {
      submits_rejected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void FaultInjector::mutate_artifact(std::vector<std::uint8_t>& bytes) {
  if (!armed()) return;
  const auto p = plan();
  if (!p) return;
  bool mutated = false;
  for (const auto& c : p->mutate) {
    if (c.used.fetch_add(1, std::memory_order_relaxed) >= c.count) continue;
    if (c.truncate) {
      bytes.resize(bytes.size() > c.arg ? bytes.size() - static_cast<std::size_t>(c.arg) : 0);
      mutated = true;
    } else if (c.arg < bytes.size()) {
      bytes[static_cast<std::size_t>(c.arg)] ^= 0xFF;
      mutated = true;
    }
  }
  if (mutated) artifacts_mutated_.fetch_add(1, std::memory_order_relaxed);
}

CellFault FaultInjector::on_cell(const std::string& label) {
  CellFault fault;
  if (!armed()) return fault;
  const auto p = plan();
  if (!p) return fault;
  for (const auto& c : p->slow_cell) {
    if (label.find(c.match) == std::string::npos) continue;
    if (c.times != 0 && c.fired.fetch_add(1, std::memory_order_relaxed) >= c.times) continue;
    fault.delay_ms += c.ms;
    cells_delayed_.fetch_add(1, std::memory_order_relaxed);
  }
  for (const auto& c : p->fail_cell) {
    if (label.find(c.match) == std::string::npos) continue;
    if (c.times != 0 && c.fired.fetch_add(1, std::memory_order_relaxed) >= c.times) continue;
    fault.fail = true;
    cells_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  return fault;
}

void FaultInjector::mutate_store(std::vector<std::uint8_t>& bytes) {
  if (!armed()) return;
  const auto p = plan();
  if (!p) return;
  bool mutated = false;
  for (const auto& c : p->mutate_store) {
    if (c.used.fetch_add(1, std::memory_order_relaxed) >= c.count) continue;
    bytes.resize(bytes.size() > c.bytes ? bytes.size() - static_cast<std::size_t>(c.bytes) : 0);
    mutated = true;
  }
  if (mutated) stores_mutated_.fetch_add(1, std::memory_order_relaxed);
}

CrashAction FaultInjector::on_store_commit() {
  if (!armed()) return CrashAction::kNone;
  const auto p = plan();
  if (!p) return CrashAction::kNone;
  for (const auto& c : p->crash) {
    // Exactly-once: only the commit whose ordinal equals `after` trips the
    // crash; a resumed sweep's commits count past it.
    if (c.commits.fetch_add(1, std::memory_order_relaxed) + 1 == c.after) {
      crashes_.fetch_add(1, std::memory_order_relaxed);
      return c.hard ? CrashAction::kExit : CrashAction::kThrow;
    }
  }
  return CrashAction::kNone;
}

FaultCounters FaultInjector::counters() const {
  FaultCounters c;
  c.slow_batches = slow_batches_.load(std::memory_order_relaxed);
  c.stalls = stalls_.load(std::memory_order_relaxed);
  c.wakes_dropped = wakes_dropped_.load(std::memory_order_relaxed);
  c.submits_rejected = submits_rejected_.load(std::memory_order_relaxed);
  c.artifacts_mutated = artifacts_mutated_.load(std::memory_order_relaxed);
  c.cells_failed = cells_failed_.load(std::memory_order_relaxed);
  c.cells_delayed = cells_delayed_.load(std::memory_order_relaxed);
  c.stores_mutated = stores_mutated_.load(std::memory_order_relaxed);
  c.crashes = crashes_.load(std::memory_order_relaxed);
  return c;
}

FaultInjector& fault_injector() {
  static FaultInjector instance;
  return instance;
}

}  // namespace dart::common
