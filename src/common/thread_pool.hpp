// Shared fork-join thread pool used by all compute-heavy subsystems
// (matmul, k-means, PQ encoding, simulator sweeps).
//
// Design follows the hpc-parallel guidance: a single process-wide pool,
// OpenMP-style `parallel_for` over index ranges, static block partitioning,
// and no shared mutable state inside loop bodies (each worker owns a
// disjoint index range).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dart::common {

/// A fixed-size worker pool executing arbitrary tasks.
///
/// Tasks are `std::function<void()>`; `wait_idle()` blocks until every
/// submitted task has finished. The pool is non-copyable and joins its
/// workers on destruction (RAII, C++ Core Guidelines CP.25).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means `hardware_concurrency()`.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Process-wide pool, created on first use.
  static ThreadPool& instance();

  /// True when the calling thread is a pool worker — callers must then run
  /// work inline instead of fork-joining (a bounded pool cannot wait on
  /// itself without risking deadlock).
  static bool inside_worker();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Splits `[0, n)` into contiguous blocks and runs `body(begin, end)` on the
/// shared pool. Falls back to inline execution for small `n` (grain control)
/// or when already inside a pool worker (no nested parallelism).
///
/// `body` must be safe to run concurrently on disjoint ranges.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_grain = 1024);

/// Convenience per-index variant: runs `body(i)` for i in [0, n).
void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& body,
                       std::size_t min_grain = 256);

}  // namespace dart::common
