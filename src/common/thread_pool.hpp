// Shared fork-join thread pool used by all compute-heavy subsystems
// (matmul, k-means, PQ encoding, simulator sweeps).
//
// Design follows the hpc-parallel guidance: a single process-wide pool,
// OpenMP-style `parallel_for` over index ranges, static block partitioning,
// and no shared mutable state inside loop bodies (each worker owns a
// disjoint index range).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dart::common {

/// A fixed-size worker pool executing arbitrary tasks.
///
/// Tasks are `std::function<void()>`; `wait_idle()` blocks until every
/// submitted task has finished. A task that throws never terminates the
/// process: the worker captures the `std::exception_ptr` and the next
/// `wait_idle()` call rethrows the first captured exception to the waiting
/// caller (later ones from the same batch are dropped — one failure is
/// enough to fail the wait, and the pool itself stays usable). The
/// fork-join helpers below (`parallel_for*`) propagate the same way at
/// their own join point. The pool is non-copyable and joins its workers on
/// destruction (RAII, C++ Core Guidelines CP.25).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means `hardware_concurrency()`.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle, then
  /// rethrows the first exception any task threw since the last wait
  /// (clearing the captured backlog).
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Process-wide pool, created on first use.
  static ThreadPool& instance();

  /// True when the calling thread is a pool worker — callers must then run
  /// work inline instead of fork-joining (a bounded pool cannot wait on
  /// itself without risking deadlock).
  static bool inside_worker();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  /// First exception thrown by a task since the last wait_idle(); kept
  /// under mutex_ and rethrown (then cleared) at the next wait_idle().
  std::exception_ptr pending_error_;
};

/// Pins the calling thread to CPU `core` (modulo the hardware core count).
/// Used by long-lived worker threads that own per-core state — e.g. the
/// serve-layer shard engines (DART_SERVE_PIN) — to keep their workspaces
/// and ring cache lines resident on one core. Returns false when the
/// platform does not support affinity or the kernel refuses (restricted
/// cpusets); callers treat pinning as a best-effort hint.
bool pin_current_thread(std::size_t core);

/// Number of blocks `parallel_for_blocks(n, ..., min_grain)` will use — 1
/// when the range would run inline (small n, single worker, or nested under
/// a pool worker). Lets callers preallocate per-block state (e.g. one
/// tabular::InferenceWorkspace per block) before forking.
std::size_t plan_blocks(std::size_t n, std::size_t min_grain = 1024);

/// Splits `[0, n)` into `plan_blocks(n, min_grain)` contiguous blocks and
/// runs `body(block, begin, end)` on the shared pool, with `block` the
/// dense block index in [0, plan_blocks(...)). This is the ONLY fork-join
/// entry point that may be reached from the inference batch split — called
/// from inside a pool worker it degrades to one inline block, so kernels
/// invoked underneath it stay serial (single-level threading, DESIGN.md §6).
///
/// `body` must be safe to run concurrently on disjoint ranges.
void parallel_for_blocks(std::size_t n,
                         const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                         std::size_t min_grain = 1024);

/// Block variant without the block index.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_grain = 1024);

/// Convenience per-index variant: runs `body(i)` for i in [0, n).
void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& body,
                       std::size_t min_grain = 256);

}  // namespace dart::common
