// Deterministic random number generation helpers.
//
// Every stochastic component in the library (weight init, k-means seeding,
// synthetic trace generation, data shuffling) takes an explicit seed so runs
// are bit-reproducible; tests rely on this.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace dart::common {

/// Thin wrapper over mt19937_64 with the sampling helpers we need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean / stddev.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Geometric-ish heavy-tail sample in [0, n): index i with prob ~ decay^i.
  std::size_t zipf_like(std::size_t n, double decay) {
    // Inverse-CDF over a truncated geometric distribution; cheap and
    // adequate for workload skew modeling.
    double u = uniform();
    double p = 1.0 - decay;
    double cum = 0.0;
    double w = p;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      cum += w;
      if (u < cum) return i;
      w *= decay;
    }
    return n - 1;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives a child seed from a parent seed and a stream id (splitmix64 mix),
/// so parallel components get decorrelated streams deterministically.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace dart::common
