// Deterministic random number generation (DESIGN.md §12).
//
// Every stochastic component in the library (weight init, k-means seeding,
// synthetic trace generation, data shuffling, workload sampling) draws from
// this header. Nothing here touches std::mt19937 or std::*_distribution:
// the standard distributions are implementation-defined, so two standard
// libraries (libstdc++ vs libc++) produce different streams from the same
// seed, which would make every trace, model, and `.dart` content hash
// platform-specific. All algorithms below are pinned — same seed, same
// stream, on every platform and standard library.
//
// Core: a counter-based wyrand generator (one 64x64->128 widening multiply
// per draw, `umul128`-style) with SplitMix64 used for seed derivation and
// stateless counter-indexed draws. Bounded integers use Lemire's debiased
// multiply-shift; doubles take the top 53 bits; gaussians use the Marsaglia
// polar method over det:: math (common/detmath.hpp), so even the
// FP-dependent samplers are bit-stable across libms.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/detmath.hpp"

namespace dart::common {

/// 64x64 -> 128-bit widening multiply: returns the low half, stores the
/// high half in `*hi`. One `mulx` on x86-64; the portable split fallback
/// computes the same bits on compilers without __int128.
inline std::uint64_t umul128(std::uint64_t a, std::uint64_t b, std::uint64_t* hi) {
#if defined(__SIZEOF_INT128__)
  const unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  *hi = static_cast<std::uint64_t>(p >> 64);
  return static_cast<std::uint64_t>(p);
#else
  const std::uint64_t a_lo = a & 0xffffffffULL, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffULL, b_hi = b >> 32;
  const std::uint64_t p0 = a_lo * b_lo, p1 = a_lo * b_hi, p2 = a_hi * b_lo, p3 = a_hi * b_hi;
  const std::uint64_t mid = p1 + (p0 >> 32) + (p2 & 0xffffffffULL);
  *hi = p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);
  return (mid << 32) | (p0 & 0xffffffffULL);
#endif
}

/// SplitMix64 finalizer: a bijective 64-bit mix (the classic
/// multiply-xorshift chain). Also the scramble function of the
/// scrambled-zipfian sampler.
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One SplitMix64 step: advances `state` by the golden-ratio gamma and
/// returns the mixed draw. Passes BigCrush; cheap enough for per-request
/// hot paths (serve::IdGenerator sits on this).
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  return mix64(state += 0x9e3779b97f4a7c15ULL);
}

/// Derives a child seed from a parent seed and a stream id — the
/// counter-indexed (stateless) form of SplitMix64, so parallel components
/// get decorrelated streams deterministically. derive_seed(s, n) is draw
/// `n` of the SplitMix64 stream anchored at `s`.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  return mix64(seed + 0x9e3779b97f4a7c15ULL * (stream + 1));
}

/// One wyrand step: golden-gamma counter plus a 128-bit mum fold. The
/// counter-based core of Rng — state is a plain counter, so any draw index
/// is random-accessible and streams never correlate.
inline std::uint64_t wyrand_next(std::uint64_t& state) {
  state += 0xa0761d6478bd642fULL;
  std::uint64_t hi;
  const std::uint64_t lo = umul128(state ^ 0xe7037ed1a0b428dbULL, state, &hi);
  return lo ^ hi;
}

/// Top 53 bits of `x` as a double in [0, 1). The only u64 -> double
/// conversion used anywhere; one exact multiply, no libm.
inline double to_unit_double(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Stateless uniform double in [0, 1) for counter-indexed Bernoulli draws
/// (serve/fault.cpp): depends only on (seed, n), never on call order.
inline double counter_u01(std::uint64_t seed, std::uint64_t n) {
  return to_unit_double(derive_seed(seed, n));
}

/// Deterministic counter-based generator with the sampling helpers the
/// library needs. Same seed => bit-identical stream on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : state_(derive_seed(seed, 0)) {}

  /// The raw 64-bit draw every helper below is built from.
  std::uint64_t next_u64() { return wyrand_next(state_); }

  /// Uniform integer in [0, n), n > 0: Lemire's multiply-shift with the
  /// standard debiasing rejection, so every value is exactly equally likely.
  std::uint64_t below(std::uint64_t n) {
    std::uint64_t hi;
    std::uint64_t lo = umul128(next_u64(), n, &hi);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) lo = umul128(next_u64(), n, &hi);
    }
    return hi;
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    if (span == ~0ULL) return static_cast<std::int64_t>(next_u64());
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + below(span + 1));
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    // fma pins the affine map as one rounding step.
    return std::fma(to_unit_double(next_u64()), hi - lo, lo);
  }

  /// Gaussian with the given mean / stddev (Marsaglia polar, det::log —
  /// bit-stable, unlike std::normal_distribution).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// True with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return to_unit_double(next_u64()) < p;
  }

  /// Geometric-ish heavy-tail sample in [0, n): index i with prob ~ decay^i.
  /// (Inverse-CDF over a truncated geometric distribution; kept for the
  /// legacy gcc-like generator — the YCSB-grade samplers live below.)
  std::size_t zipf_like(std::size_t n, double decay) {
    double u = uniform();
    double p = 1.0 - decay;
    double cum = 0.0;
    double w = p;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      cum += w;
      if (u < cum) return i;
      w *= decay;
    }
    return n - 1;
  }

  /// Fisher-Yates over our bounded draws (std::shuffle's draw pattern is
  /// implementation-defined; this one is pinned).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

// --------------------------------------------------------------------------
// YCSB-grade key-distribution samplers (DESIGN.md §12). Each returns ranks /
// keys in [0, items); the trace layer maps keys onto address streams.
// Algorithms and constants are pinned; all FP goes through det:: math.

/// Zipfian ranks with parameter theta (Gray et al., the YCSB generator):
/// rank 0 is the hottest key. Construction is O(min(items, 2^18)) — the
/// harmonic normalizer zeta(items, theta) is summed exactly up to 2^18
/// items and extended by the integral tail for larger footprints (pinned
/// approximation, documented in DESIGN.md §12).
class ZipfianSampler {
 public:
  explicit ZipfianSampler(std::uint64_t items, double theta = kDefaultTheta);

  std::uint64_t next(Rng& rng) const;
  std::uint64_t items() const { return items_; }
  double theta() const { return theta_; }

  static constexpr double kDefaultTheta = 0.99;

 private:
  std::uint64_t items_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Zipfian popularity without rank locality: the hot keys are scattered
/// over the whole key space by the SplitMix64 finalizer (mix64), like
/// YCSB's scrambled-zipfian (fnv hash there; the scramble function is part
/// of the pinned contract).
class ScrambledZipfianSampler {
 public:
  explicit ScrambledZipfianSampler(std::uint64_t items,
                                   double theta = ZipfianSampler::kDefaultTheta)
      : inner_(items, theta) {}

  std::uint64_t next(Rng& rng) const { return mix64(inner_.next(rng)) % inner_.items(); }
  std::uint64_t items() const { return inner_.items(); }

 private:
  ZipfianSampler inner_;
};

/// "Latest" distribution (YCSB-D): recently inserted keys are hottest.
/// next(rng, max) returns a key in [0, max) skewed toward max-1 by a
/// zipfian offset; `max` grows as the workload inserts.
class LatestSampler {
 public:
  explicit LatestSampler(std::uint64_t items, double theta = ZipfianSampler::kDefaultTheta)
      : zipf_(items, theta) {}

  std::uint64_t next(Rng& rng, std::uint64_t max) const {
    const std::uint64_t off = zipf_.next(rng) % (max > 0 ? max : 1);
    return max - 1 - off;
  }

 private:
  ZipfianSampler zipf_;
};

/// Exponentially decaying recency offsets: offset o with prob ~ e^{-o/mean}
/// via inverse CDF over det::log, truncated to [0, items).
class ExponentialSampler {
 public:
  /// `mean` is the mean offset in keys (must be > 0).
  ExponentialSampler(std::uint64_t items, double mean) : items_(items), mean_(mean) {}

  std::uint64_t next(Rng& rng) const {
    const double u = to_unit_double(rng.next_u64());  // [0, 1); 1-u in (0, 1]
    const double v = -det::log(1.0 - u) * mean_;
    const std::uint64_t o = static_cast<std::uint64_t>(v);
    return o < items_ ? o : items_ - 1;
  }

 private:
  std::uint64_t items_;
  double mean_;
};

}  // namespace dart::common
