#include "common/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace dart::common {

void TablePrinter::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TablePrinter::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void TablePrinter::print() const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  if (!title_.empty()) std::printf("== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s", static_cast<int>(widths[i] + 2), row[i].c_str());
    }
    std::printf("\n");
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
  }
  for (const auto& r : rows_) print_row(r);
  std::printf("\n");
}

bool TablePrinter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      // Quote cells containing commas.
      if (row[i].find(',') != std::string::npos) {
        out << '"' << row[i] << '"';
      } else {
        out << row[i];
      }
    }
    out << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& r : rows_) write_row(r);
  return static_cast<bool>(out);
}

std::string TablePrinter::fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::fmt_bytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  }
  return buf;
}

std::string TablePrinter::fmt_count(double n) {
  char buf[64];
  if (n >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fG", n / 1e9);
  } else if (n >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", n / 1e6);
  } else if (n >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", n / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", n);
  }
  return buf;
}

std::string TablePrinter::fmt_pct(double frac, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, frac * 100.0);
  return buf;
}

}  // namespace dart::common
