// Deterministic fault injection shared by the serving layer (DESIGN.md §11)
// and the sweep engine (DESIGN.md §13).
//
// A process-global registry parses a semicolon-separated spec string (the
// `DART_FAULT` environment variable) into an immutable fault plan and
// exposes cheap hooks the hot paths call at well-defined points: batch
// assembly in `serve::ShardEngine::run`, the submit wake handshake, ingress
// admission, the artifact bytes read by `PrefetchServer::swap_artifact`,
// sweep-cell attempt starts in `core::ExperimentRunner`, and the
// result-store open/commit path in `core::ResultStore`. When no plan is
// armed every hook is a single relaxed atomic load, so the hooks stay in
// production builds and chaos tests exercise the exact binary that ships.
//
// Probabilistic faults draw from a counter-based SplitMix64 stream
// (`common::counter_u01`), so a given spec produces the same fault schedule
// on every run regardless of thread interleaving — the property
// `tests/serve_chaos_test.cpp` and `tests/sweep_chaos_test.cpp` build
// their assertions on.
//
// Grammar (see §11 and §13 for the full tables):
//
//   spec     := fault (';' fault)*
//   fault    := kind [':' param (',' param)*]
//   param    := key '=' value
//
// Serving-path kinds:
//
//   slow-shard:shard=N,us=U[,batches=B]   delay each batch on shard N by U
//                                         microseconds (first B batches;
//                                         B=0 or absent: every batch)
//   stall-shard:shard=N[,after=B]         after B more batches, shard N
//                                         stops heartbeating until the
//                                         watchdog abandons its thread
//   drop-wake:p=P[,seed=S]                drop the submit-side park wake
//                                         with probability P (the 200us
//                                         park timeout is the backstop)
//   reject-submit:p=P[,seed=S,shard=N]    fail ingress admission with
//                                         probability P (shard absent: all)
//   corrupt-artifact:offset=O[,count=N]   XOR-flip the byte at offset O of
//                                         the next N artifact reads
//   truncate-artifact:bytes=N[,count=C]   drop the last N bytes of the next
//                                         C artifact reads
//
// Sweep-path kinds:
//
//   fail-cell:match=SUB[,times=N]         throw from every sweep-cell
//                                         attempt whose "app|prefetcher"
//                                         label contains SUB (first N
//                                         attempts; N=0 or absent: forever)
//   slow-cell:match=SUB,ms=M[,times=N]    delay matching cell attempts by
//                                         M milliseconds (drives the
//                                         wall-clock timeout path)
//   corrupt-store-tail:bytes=N[,count=C]  chop the last N bytes off the
//                                         next C result-store segment
//                                         images read at open (a torn tail
//                                         the recovery scan must absorb)
//   crash-after-commit:after=N[,hard=1]   after the N-th durable result
//                                         commit, crash the sweep: throw
//                                         core::SweepCrash (default) or
//                                         _Exit(17) when hard=1 (true
//                                         process kill for CI resume tests)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dart::common {

/// One parsed fault clause: its kind plus the key=value parameters.
struct FaultSpec {
  std::string kind;                                          ///< e.g. "slow-shard"
  std::vector<std::pair<std::string, std::string>> params;   ///< in spec order
};

/// Parses a `DART_FAULT` spec string into clauses; throws
/// std::invalid_argument on grammar errors, unknown kinds, unknown or
/// missing parameters, or out-of-range values. An empty string parses to
/// an empty plan.
std::vector<FaultSpec> parse_fault_specs(const std::string& text);

/// What `FaultInjector::on_batch` tells the shard loop to do before
/// serving the batch it just assembled.
struct BatchFault {
  std::uint64_t delay_us = 0;  ///< sleep this long (slow-shard)
  bool stall = false;          ///< stop heartbeating until abandoned (stall-shard)
};

/// What `FaultInjector::on_cell` tells a sweep-cell attempt to do before
/// running its simulation.
struct CellFault {
  std::uint64_t delay_ms = 0;  ///< sleep this long first (slow-cell)
  bool fail = false;           ///< then fail the attempt (fail-cell)
};

/// What the result store must do right after a durable commit.
enum class CrashAction : std::uint8_t {
  kNone = 0,  ///< keep going
  kThrow,     ///< throw core::SweepCrash (in-process crash simulation)
  kExit,      ///< _Exit(kCrashExitCode) — a real kill, nothing unwinds
};

/// Exit code of a `crash-after-commit:hard=1` process kill, so CI resume
/// scripts can assert the sweep died by injection rather than by accident.
inline constexpr int kCrashExitCode = 17;

/// Monotonic tallies of faults actually fired, for test assertions and the
/// operator reports printed by `dart_run --serve` / `dart_sweep`.
struct FaultCounters {
  std::uint64_t slow_batches = 0;       ///< batches delayed by slow-shard
  std::uint64_t stalls = 0;             ///< stall-shard triggers
  std::uint64_t wakes_dropped = 0;      ///< park wakes suppressed
  std::uint64_t submits_rejected = 0;   ///< admissions failed by reject-submit
  std::uint64_t artifacts_mutated = 0;  ///< artifact byte images corrupted/truncated
  std::uint64_t cells_failed = 0;       ///< sweep-cell attempts failed by fail-cell
  std::uint64_t cells_delayed = 0;      ///< sweep-cell attempts delayed by slow-cell
  std::uint64_t stores_mutated = 0;     ///< store segment images torn at open
  std::uint64_t crashes = 0;            ///< crash-after-commit triggers
};

/// The process-global fault registry. `install` swaps in a new immutable
/// plan (thread-safe against hooks running concurrently); `clear` disarms.
/// Hooks are safe to call from any thread at any time.
class FaultInjector {
 public:
  /// Parses and arms `spec`; an empty string disarms. Resets the fired
  /// counters. Throws std::invalid_argument on grammar errors (leaving the
  /// previous plan armed).
  void install(const std::string& spec);

  /// Disarms all faults (hooks return to their single-load fast path).
  void clear();

  /// True when a non-empty plan is armed.
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Shard-loop hook, called once per assembled batch before serving.
  BatchFault on_batch(std::size_t shard);

  /// Submit-side hook: true = suppress the park wake for this submit.
  bool drop_wake();

  /// Ingress admission hook: true = reject this submit (backpressure).
  bool reject_submit(std::size_t shard);

  /// Artifact-read hook: corrupts or truncates `bytes` in place per the
  /// armed corrupt-artifact / truncate-artifact clauses.
  void mutate_artifact(std::vector<std::uint8_t>& bytes);

  /// Sweep-cell hook, called once per cell attempt with the cell's
  /// "app|prefetcher" label before any simulation work.
  CellFault on_cell(const std::string& label);

  /// Result-store open hook: chops the tail off `bytes` per the armed
  /// corrupt-store-tail clauses (simulating a torn final write).
  void mutate_store(std::vector<std::uint8_t>& bytes);

  /// Result-store commit hook, called once per durable record append,
  /// after the record hit disk. Returns what the store should do next.
  CrashAction on_store_commit();

  /// Snapshot of the fired-fault tallies since the last install().
  FaultCounters counters() const;

 private:
  struct Plan;
  std::shared_ptr<const Plan> plan() const;

  mutable std::mutex mu_;
  std::shared_ptr<const Plan> plan_;
  std::atomic<bool> armed_{false};

  std::atomic<std::uint64_t> slow_batches_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> wakes_dropped_{0};
  std::atomic<std::uint64_t> submits_rejected_{0};
  std::atomic<std::uint64_t> artifacts_mutated_{0};
  std::atomic<std::uint64_t> cells_failed_{0};
  std::atomic<std::uint64_t> cells_delayed_{0};
  std::atomic<std::uint64_t> stores_mutated_{0};
  std::atomic<std::uint64_t> crashes_{0};
};

/// The process-wide injector instance every serving and sweep hook consults.
FaultInjector& fault_injector();

}  // namespace dart::common
