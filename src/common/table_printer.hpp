// Console table and CSV emission used by every bench binary so the output
// visually matches the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace dart::common {

/// Collects rows of string cells and prints them column-aligned, plus an
/// optional CSV mirror for plotting figures.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Renders the aligned table to stdout.
  void print() const;

  /// Writes the same content to `path` as CSV. Returns false on I/O error.
  bool write_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `digits` decimals.
  static std::string fmt(double v, int digits = 3);
  /// Formats bytes with a unit suffix (e.g. "864.4K", "3.75M").
  static std::string fmt_bytes(double bytes);
  /// Formats a count with K/M suffix (e.g. "98.3M").
  static std::string fmt_count(double n);
  /// Formats a percentage with one decimal (e.g. "37.6%").
  static std::string fmt_pct(double frac, int digits = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dart::common
