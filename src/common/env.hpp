// Environment-variable driven scaling knobs for benches and examples.
//
// Defaults are chosen so the full bench suite completes in minutes; paper-
// scale runs only need larger values, never code changes (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dart::common {

/// Reads an integer env var, returning `fallback` when unset or malformed.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads a double env var, returning `fallback` when unset or malformed.
double env_double(const char* name, double fallback);

/// Reads a string env var, returning `fallback` when unset or empty.
std::string env_string(const char* name, const std::string& fallback);

/// Reads a comma-separated string list; empty when unset.
std::vector<std::string> env_list(const char* name);

}  // namespace dart::common
