#include "common/detmath.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace dart::common::det {

namespace {

constexpr double kLn2 = 0.6931471805599453094172321214581766;  // ln 2
constexpr double kInvLn2 = 1.4426950408889634073599246810018921;  // 1/ln 2

inline std::uint64_t bits_of(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

inline double double_of(std::uint64_t b) {
  double x;
  std::memcpy(&x, &b, sizeof(x));
  return x;
}

/// log2 of the reduced mantissa m in [sqrt(2)/2, sqrt(2)): atanh series
/// log(m) = 2z * (1 + z^2/3 + z^4/5 + ...) with z = (m-1)/(m+1), |z| <=
/// 0.1716, so 8 odd terms reach ~1e-16. Every step is an explicit fma.
inline double log2_mantissa(double m) {
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  // Horner over the odd-term series 1 + z2/3 + z2^2/5 + ... + z2^7/15.
  double p = 1.0 / 15.0;
  p = std::fma(p, z2, 1.0 / 13.0);
  p = std::fma(p, z2, 1.0 / 11.0);
  p = std::fma(p, z2, 1.0 / 9.0);
  p = std::fma(p, z2, 1.0 / 7.0);
  p = std::fma(p, z2, 1.0 / 5.0);
  p = std::fma(p, z2, 1.0 / 3.0);
  p = std::fma(p, z2, 1.0);
  return (2.0 * z * p) * kInvLn2;
}

}  // namespace

double log2(double x) {
  if (std::isnan(x) || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  if (std::isinf(x)) return x;
  std::uint64_t b = bits_of(x);
  int e = 0;
  if (b < (1ULL << 52)) {  // subnormal: renormalize through a pinned scale
    x = x * 0x1.0p64;
    b = bits_of(x);
    e = -64;
  }
  e += static_cast<int>((b >> 52) & 0x7ff) - 1023;
  // Mantissa in [1, 2); fold into [sqrt(2)/2, sqrt(2)) so z stays small.
  double m = double_of((b & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL);
  if (m > 1.4142135623730951) {
    m *= 0.5;
    e += 1;
  }
  return static_cast<double>(e) + log2_mantissa(m);
}

double log(double x) { return log2(x) * kLn2; }

double exp2(double x) {
  if (std::isnan(x)) return x;
  if (x >= 1024.0) return std::numeric_limits<double>::infinity();
  if (x <= -1075.0) return 0.0;
  // n = nearest integer (round-half-away, pinned by floor of x + 0.5).
  const double nf = std::floor(x + 0.5);
  const int n = static_cast<int>(nf);
  const double f = x - nf;  // f in [-0.5, 0.5]
  const double t = f * kLn2;  // |t| <= 0.347
  // e^t by a 13-term Taylor Horner: error < 1e-17 at |t| <= 0.35.
  double p = 1.0 / 6227020800.0;  // 1/13!
  p = std::fma(p, t, 1.0 / 479001600.0);
  p = std::fma(p, t, 1.0 / 39916800.0);
  p = std::fma(p, t, 1.0 / 3628800.0);
  p = std::fma(p, t, 1.0 / 362880.0);
  p = std::fma(p, t, 1.0 / 40320.0);
  p = std::fma(p, t, 1.0 / 5040.0);
  p = std::fma(p, t, 1.0 / 720.0);
  p = std::fma(p, t, 1.0 / 120.0);
  p = std::fma(p, t, 1.0 / 24.0);
  p = std::fma(p, t, 1.0 / 6.0);
  p = std::fma(p, t, 0.5);
  p = std::fma(p, t, 1.0);
  p = std::fma(p, t, 1.0);
  // Scale by 2^n via exponent arithmetic; split the step for |n| near the
  // subnormal range so the intermediate stays normal.
  if (n >= -1021 && n <= 1023) {
    return p * double_of(static_cast<std::uint64_t>(1023 + n) << 52);
  }
  const int half = n / 2;
  return (p * double_of(static_cast<std::uint64_t>(1023 + half) << 52)) *
         double_of(static_cast<std::uint64_t>(1023 + (n - half)) << 52);
}

double exp(double x) { return exp2(x * kInvLn2); }

double pow(double x, double y) {
  if (y == 0.0) return 1.0;
  if (x == 0.0) return y > 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return exp2(y * log2(x));
}

}  // namespace dart::common::det
