// Deterministic elementary math for the sampler layer (DESIGN.md §12).
//
// The workload samplers (zipfian, latest, exponential, gaussian) need log /
// pow / exp. libm gives no cross-platform bit-reproducibility guarantee for
// those (glibc, musl and LLVM libm all round differently in the last ulp),
// which would make every FP-dependent trace hash platform-specific. These
// replacements are built only from IEEE-754 primitives that ARE exactly
// specified — +, -, *, /, sqrt, fma and bit manipulation — evaluated in a
// pinned order, so the result is bit-identical on every IEEE double
// platform and standard library. Accuracy is ~1 ulp-ish (< 1e-14 relative),
// far beyond what workload sampling needs; determinism, not last-ulp
// correctness, is the contract.
//
// Every polynomial step uses std::fma explicitly: a fused multiply-add is a
// single correctly-rounded IEEE operation, which both pins the evaluation
// order and makes the compiler's -ffp-contract setting irrelevant.
#pragma once

namespace dart::common::det {

/// Natural log of `x`. Pinned argument reduction (frexp-style exponent
/// extraction, atanh-series mantissa polynomial). Domain: x > 0 and finite;
/// returns -inf for x == 0 and NaN for x < 0 / NaN, like std::log.
double log(double x);

/// Base-2 logarithm, same contract as det::log.
double log2(double x);

/// 2^x by pinned round-to-int reduction plus an fma Taylor polynomial.
/// Overflows to inf / underflows to 0 exactly like std::exp2 would.
double exp2(double x);

/// e^x = exp2(x * log2(e)), pinned.
double exp(double x);

/// x^y = exp2(y * log2(x)) for x > 0; pinned. x == 0 returns 0 for y > 0
/// and inf for y < 0; any x^0 is 1. Negative bases return NaN (the samplers
/// never need them).
double pow(double x, double y);

}  // namespace dart::common::det
