// Wall-clock timing helpers for benchmarks and progress reporting.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace dart::common {

/// Monotonic stopwatch; `elapsed_ms()` can be called repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
  }

  double elapsed_s() const { return elapsed_ms() / 1000.0; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Prints "<label>: <ms> ms" to stderr when the scope ends.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string label) : label_(std::move(label)) {}
  ~ScopedTimer() { std::fprintf(stderr, "[time] %s: %.1f ms\n", label_.c_str(), watch_.elapsed_ms()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string label_;
  Stopwatch watch_;
};

}  // namespace dart::common
