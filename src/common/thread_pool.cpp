#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/env.hpp"

namespace dart::common {
namespace {
thread_local bool t_inside_pool = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    error = pending_error_;
    pending_error_ = nullptr;
  }
  // Rethrown outside the lock so the handler can submit new work.
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  t_inside_pool = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    // A throwing task must not take the worker (std::terminate) or vanish
    // silently: capture the exception for the next wait_idle() caller.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !pending_error_) pending_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::instance() {
  // DART_THREADS overrides the worker count (<= 0 = hardware_concurrency).
  static ThreadPool pool(
      static_cast<std::size_t>(std::max<std::int64_t>(0, env_int("DART_THREADS", 0))));
  return pool;
}

bool ThreadPool::inside_worker() { return t_inside_pool; }

bool pin_current_thread(std::size_t core) {
#if defined(__linux__)
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % hw), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

std::size_t plan_blocks(std::size_t n, std::size_t min_grain) {
  if (n == 0) return 0;
  const std::size_t workers = ThreadPool::instance().size();
  // Inline cases: small range, single worker, or already inside a pool task
  // (nested fork-join would deadlock a bounded pool waiting on itself).
  if (t_inside_pool || n <= min_grain || workers <= 1) return 1;
  const std::size_t blocks = std::min(workers * 2, (n + min_grain - 1) / min_grain);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  return (n + chunk - 1) / chunk;
}

void parallel_for_blocks(std::size_t n,
                         const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                         std::size_t min_grain) {
  if (n == 0) return;
  const std::size_t blocks = plan_blocks(n, min_grain);
  if (blocks <= 1) {
    body(0, 0, n);
    return;
  }
  auto& pool = ThreadPool::instance();
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = blocks;
  std::exception_ptr first_error;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    pool.submit([&, b, begin, end] {
      // A throwing block must still decrement `remaining` (or the join
      // below waits forever); the first exception is rethrown to the
      // forking caller after every block finished.
      std::exception_ptr error;
      try {
        body(b, begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      // Decrement under the mutex so the waiter cannot destroy the
      // synchronization state while this worker still references it.
      std::lock_guard lock(done_mutex);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
  lock.unlock();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_grain) {
  parallel_for_blocks(
      n, [&](std::size_t, std::size_t begin, std::size_t end) { body(begin, end); }, min_grain);
}

void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& body,
                       std::size_t min_grain) {
  parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      min_grain);
}

}  // namespace dart::common
