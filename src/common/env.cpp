#include "common/env.hpp"

#include <cstdlib>
#include <sstream>

namespace dart::common {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

std::vector<std::string> env_list(const char* name) {
  std::vector<std::string> out;
  const char* v = std::getenv(name);
  if (v == nullptr) return out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace dart::common
