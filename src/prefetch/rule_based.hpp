// Rule-based baseline prefetchers (Table IX):
//  * NextLine  — trivial sequential reference.
//  * Stride    — classic per-PC stride with confidence.
//  * BestOffset (BO) — Michaud, HPCA'16: offset scoring against a recent
//    request table.
//  * Isb       — Jain & Lin, MICRO'13: PC-localized temporal streams via a
//    structural address space.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/prefetcher.hpp"
#include "sim/workspace.hpp"

namespace dart::prefetch {

class NextLinePrefetcher final : public sim::Prefetcher {
 public:
  explicit NextLinePrefetcher(std::size_t degree = 1) : degree_(degree) {}

  void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                 std::vector<std::uint64_t>& out) override;
  bool trains_on_fill() const override { return false; }
  std::size_t storage_bytes() const override { return 0; }
  std::string name() const override { return "NextLine"; }

 private:
  std::size_t degree_;
};

class StridePrefetcher final : public sim::Prefetcher {
 public:
  explicit StridePrefetcher(std::size_t table_entries = 256, std::size_t degree = 2);

  void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                 std::vector<std::uint64_t>& out) override;
  bool trains_on_fill() const override { return false; }
  std::size_t storage_bytes() const override;
  std::string name() const override { return "Stride"; }

 private:
  struct Entry {
    std::uint64_t pc_tag = 0;
    std::uint64_t last_block = 0;
    std::int64_t stride = 0;
    int confidence = 0;
    bool valid = false;
  };
  std::size_t index_of(std::uint64_t pc) const {
    return mask_ != 0 ? static_cast<std::size_t>(pc & mask_)
                      : static_cast<std::size_t>(pc % table_.size());
  }
  std::vector<Entry> table_;
  std::uint64_t mask_ = 0;  ///< table_.size() - 1 when a power of two
  std::size_t degree_;
};

/// Best-Offset prefetcher [6]. Offsets are scored in rounds: each trigger
/// tests one candidate offset d — if (X - d) sits in the recent-request (RR)
/// table, X would have been prefetched by offset d in time, so d scores.
/// The best-scoring offset becomes the active prefetch offset.
class BestOffsetPrefetcher final : public sim::Prefetcher {
 public:
  struct Options {
    std::size_t rr_entries = 256;
    int score_max = 31;      ///< early selection threshold
    int round_max = 100;     ///< rounds before forced selection
    int bad_score = 1;       ///< below this, prefetching is disabled
    std::size_t max_offset = 128;
    std::size_t degree = 1;
    std::size_t latency = 60;  ///< Table IX: ~60 cycles
  };

  BestOffsetPrefetcher();
  explicit BestOffsetPrefetcher(const Options& options);

  void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                 std::vector<std::uint64_t>& out) override;
  void on_fill(std::uint64_t block, bool was_prefetch) override;
  std::size_t prediction_latency() const override { return opts_.latency; }
  std::size_t storage_bytes() const override;
  std::string name() const override { return "BO"; }

  std::int64_t current_offset() const { return best_offset_; }

 private:
  std::size_t rr_index(std::uint64_t block) const {
    return rr_mask_ != 0 ? static_cast<std::size_t>(block & rr_mask_)
                         : static_cast<std::size_t>(block % rr_.size());
  }
  void rr_insert(std::uint64_t block);
  bool rr_contains(std::uint64_t block) const;
  void end_learning_phase();

  Options opts_;
  std::vector<std::int64_t> offsets_;  ///< candidate list (±, factors 2/3/5)
  std::vector<int> scores_;
  std::vector<std::uint64_t> rr_;  ///< direct-mapped recent-request table
  std::uint64_t rr_mask_ = 0;      ///< rr_.size() - 1 when a power of two
  std::size_t test_index_ = 0;     ///< next offset to test
  int round_ = 0;
  std::int64_t best_offset_ = 1;
  bool prefetch_enabled_ = true;
};

/// Irregular Stream Buffer [7]: maps correlated physical blocks to
/// consecutive *structural* addresses per trigger PC, then prefetches the
/// successors of the current block's structural address.
class IsbPrefetcher final : public sim::Prefetcher {
 public:
  struct Options {
    /// PS/SP mapping capacity. The real ISB keeps these maps in off-chip
    /// memory and caches them on chip (Table IX charges only the ~8KB
    /// on-chip structures), so the effective capacity is large.
    std::size_t max_mappings = 262144;
    std::size_t degree = 2;
    std::size_t stream_granularity = 256;  ///< structural stream spacing
    std::size_t latency = 30;  ///< Table IX: ~30 cycles
  };

  IsbPrefetcher();
  explicit IsbPrefetcher(const Options& options);

  void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                 std::vector<std::uint64_t>& out) override;
  bool trains_on_fill() const override { return false; }
  std::size_t prediction_latency() const override { return opts_.latency; }
  std::size_t storage_bytes() const override;
  std::string name() const override { return "ISB"; }

 private:
  std::uint64_t assign_structural(std::uint64_t block);
  void record_mapping(std::uint64_t block, std::uint64_t structural);

  /// Growable power-of-two ring over a reusable vector: the deque's FIFO
  /// semantics (push_back / pop_front) without per-segment allocation.
  class FifoRing {
   public:
    std::size_t size() const { return size_; }
    std::uint64_t front() const { return buf_[head_]; }
    void pop_front() {
      head_ = (head_ + 1) & (buf_.size() - 1);
      --size_;
    }
    void push_back(std::uint64_t v) {
      if (size_ == buf_.size()) grow();
      buf_[(head_ + size_) & (buf_.size() - 1)] = v;
      ++size_;
    }

   private:
    void grow() {
      std::vector<std::uint64_t> bigger(buf_.empty() ? 1024 : buf_.size() * 2);
      for (std::size_t i = 0; i < size_; ++i) {
        bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
      }
      buf_.swap(bigger);
      head_ = 0;
    }
    std::vector<std::uint64_t> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  Options opts_;
  sim::FlatMap64 ps_;  ///< physical -> structural
  sim::FlatMap64 sp_;  ///< structural -> physical
  FifoRing fifo_;      ///< insertion order of physical keys
  sim::FlatMap64 training_unit_;  ///< pc -> last block
  std::uint64_t next_stream_base_ = 0;
};

}  // namespace dart::prefetch
