// Rule-based baseline prefetchers (Table IX):
//  * NextLine  — trivial sequential reference.
//  * Stride    — classic per-PC stride with confidence.
//  * BestOffset (BO) — Michaud, HPCA'16: offset scoring against a recent
//    request table.
//  * Isb       — Jain & Lin, MICRO'13: PC-localized temporal streams via a
//    structural address space.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/prefetcher.hpp"

namespace dart::prefetch {

class NextLinePrefetcher final : public sim::Prefetcher {
 public:
  explicit NextLinePrefetcher(std::size_t degree = 1) : degree_(degree) {}

  void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                 std::vector<std::uint64_t>& out) override;
  std::size_t storage_bytes() const override { return 0; }
  std::string name() const override { return "NextLine"; }

 private:
  std::size_t degree_;
};

class StridePrefetcher final : public sim::Prefetcher {
 public:
  explicit StridePrefetcher(std::size_t table_entries = 256, std::size_t degree = 2);

  void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                 std::vector<std::uint64_t>& out) override;
  std::size_t storage_bytes() const override;
  std::string name() const override { return "Stride"; }

 private:
  struct Entry {
    std::uint64_t pc_tag = 0;
    std::uint64_t last_block = 0;
    std::int64_t stride = 0;
    int confidence = 0;
    bool valid = false;
  };
  std::vector<Entry> table_;
  std::size_t degree_;
};

/// Best-Offset prefetcher [6]. Offsets are scored in rounds: each trigger
/// tests one candidate offset d — if (X - d) sits in the recent-request (RR)
/// table, X would have been prefetched by offset d in time, so d scores.
/// The best-scoring offset becomes the active prefetch offset.
class BestOffsetPrefetcher final : public sim::Prefetcher {
 public:
  struct Options {
    std::size_t rr_entries = 256;
    int score_max = 31;      ///< early selection threshold
    int round_max = 100;     ///< rounds before forced selection
    int bad_score = 1;       ///< below this, prefetching is disabled
    std::size_t max_offset = 128;
    std::size_t degree = 1;
    std::size_t latency = 60;  ///< Table IX: ~60 cycles
  };

  BestOffsetPrefetcher();
  explicit BestOffsetPrefetcher(const Options& options);

  void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                 std::vector<std::uint64_t>& out) override;
  void on_fill(std::uint64_t block, bool was_prefetch) override;
  std::size_t prediction_latency() const override { return opts_.latency; }
  std::size_t storage_bytes() const override;
  std::string name() const override { return "BO"; }

  std::int64_t current_offset() const { return best_offset_; }

 private:
  void rr_insert(std::uint64_t block);
  bool rr_contains(std::uint64_t block) const;
  void end_learning_phase();

  Options opts_;
  std::vector<std::int64_t> offsets_;  ///< candidate list (±, factors 2/3/5)
  std::vector<int> scores_;
  std::vector<std::uint64_t> rr_;  ///< direct-mapped recent-request table
  std::size_t test_index_ = 0;     ///< next offset to test
  int round_ = 0;
  std::int64_t best_offset_ = 1;
  bool prefetch_enabled_ = true;
};

/// Irregular Stream Buffer [7]: maps correlated physical blocks to
/// consecutive *structural* addresses per trigger PC, then prefetches the
/// successors of the current block's structural address.
class IsbPrefetcher final : public sim::Prefetcher {
 public:
  struct Options {
    /// PS/SP mapping capacity. The real ISB keeps these maps in off-chip
    /// memory and caches them on chip (Table IX charges only the ~8KB
    /// on-chip structures), so the effective capacity is large.
    std::size_t max_mappings = 262144;
    std::size_t degree = 2;
    std::size_t stream_granularity = 256;  ///< structural stream spacing
    std::size_t latency = 30;  ///< Table IX: ~30 cycles
  };

  IsbPrefetcher();
  explicit IsbPrefetcher(const Options& options);

  void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                 std::vector<std::uint64_t>& out) override;
  std::size_t prediction_latency() const override { return opts_.latency; }
  std::size_t storage_bytes() const override;
  std::string name() const override { return "ISB"; }

 private:
  std::uint64_t assign_structural(std::uint64_t block);

  Options opts_;
  std::unordered_map<std::uint64_t, std::uint64_t> ps_;  ///< physical -> structural
  std::unordered_map<std::uint64_t, std::uint64_t> sp_;  ///< structural -> physical
  std::deque<std::uint64_t> fifo_;  ///< insertion order of physical keys
  std::unordered_map<std::uint64_t, std::uint64_t> training_unit_;  ///< pc -> last block
  std::uint64_t next_stream_base_ = 0;
};

}  // namespace dart::prefetch
