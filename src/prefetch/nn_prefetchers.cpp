#include "prefetch/nn_prefetchers.hpp"

#include <algorithm>

#include "nn/ops.hpp"

namespace dart::prefetch {

NnPrefetcherBase::NnPrefetcherBase(const NnAdapterOptions& options) : opts_(options) {
  if (opts_.initiation_interval == 0) opts_.initiation_interval = 1;
  if (opts_.trigger_sample == 0) opts_.trigger_sample = 1;
  hist_blocks_.assign(opts_.prep.history, 0);
  hist_pcs_.assign(opts_.prep.history, 0);
}

void NnPrefetcherBase::on_access(std::uint64_t block, std::uint64_t pc, bool /*hit*/,
                                 std::uint64_t cycle, std::vector<std::uint64_t>& out) {
  // Record history unconditionally (cheap), predict only when allowed.
  hist_blocks_[hist_pos_] = block;
  hist_pcs_[hist_pos_] = pc;
  hist_pos_ = (hist_pos_ + 1) % opts_.prep.history;
  if (hist_count_ < opts_.prep.history) {
    ++hist_count_;
    return;
  }
  if (++access_counter_ % opts_.trigger_sample != 0) return;
  if (cycle < next_allowed_cycle_) return;
  next_allowed_cycle_ = cycle + std::max<std::size_t>(1, opts_.initiation_interval);

  const std::size_t t_len = opts_.prep.history;
  nn::Tensor addr({1, t_len, opts_.prep.addr_segments});
  nn::Tensor pcs({1, t_len, opts_.prep.pc_segments});
  for (std::size_t t = 0; t < t_len; ++t) {
    const std::size_t idx = (hist_pos_ + t) % t_len;  // oldest -> newest
    trace::segment_value(hist_blocks_[idx], opts_.prep.addr_segments, opts_.prep.segment_bits,
                         addr.data() + t * opts_.prep.addr_segments);
    trace::segment_value(hist_pcs_[idx] >> 2, opts_.prep.pc_segments, opts_.prep.segment_bits,
                         pcs.data() + t * opts_.prep.pc_segments);
  }
  nn::Tensor probs = predict(addr, pcs);

  // Decode the delta bitmap: strongest deltas first, up to `degree`.
  std::vector<std::pair<float, std::size_t>> fired;
  for (std::size_t j = 0; j < probs.numel(); ++j) {
    if (probs[j] >= opts_.threshold) fired.emplace_back(probs[j], j);
  }
  std::sort(fired.begin(), fired.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  const std::size_t take = std::min(opts_.degree, fired.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::int64_t delta = trace::bit_to_delta(fired[i].second, opts_.prep.bitmap_size);
    out.push_back(static_cast<std::uint64_t>(static_cast<std::int64_t>(block) + delta));
  }
}

// ---------------------------------------------------------------------- DART

DartPrefetcher::DartPrefetcher(std::shared_ptr<const tabular::TabularPredictor> predictor,
                               const NnAdapterOptions& options, std::string display_name)
    : NnPrefetcherBase(options), predictor_(std::move(predictor)), name_(std::move(display_name)) {}

nn::Tensor DartPrefetcher::predict(const nn::Tensor& addr, const nn::Tensor& pc) {
  return predictor_->forward(addr, pc);  // already probabilities (sigmoid LUT)
}

// ----------------------------------------------------------- TransFetch-like

AttentionPrefetcher::AttentionPrefetcher(std::shared_ptr<nn::AddressPredictor> model,
                                         const NnAdapterOptions& options,
                                         std::string display_name)
    : NnPrefetcherBase(options), model_(std::move(model)), name_(std::move(display_name)) {}

nn::Tensor AttentionPrefetcher::predict(const nn::Tensor& addr, const nn::Tensor& pc) {
  nn::Tensor logits = model_->forward(addr, pc);
  nn::Tensor probs;
  nn::ops::sigmoid(logits, probs);
  return probs;
}

std::size_t AttentionPrefetcher::storage_bytes() const {
  return model_->num_params() * sizeof(float);
}

// --------------------------------------------------------------- Voyager-like

LstmPrefetcher::LstmPrefetcher(std::shared_ptr<nn::LstmPredictor> model,
                               const NnAdapterOptions& options, std::string display_name)
    : NnPrefetcherBase(options), model_(std::move(model)), name_(std::move(display_name)) {}

nn::Tensor LstmPrefetcher::predict(const nn::Tensor& addr, const nn::Tensor& pc) {
  nn::Tensor logits = model_->forward(addr, pc);
  nn::Tensor probs;
  nn::ops::sigmoid(logits, probs);
  return probs;
}

std::size_t LstmPrefetcher::storage_bytes() const {
  return model_->num_params() * sizeof(float);
}

}  // namespace dart::prefetch
