#include "prefetch/rule_based.hpp"

#include <algorithm>

#include "sim/registry.hpp"

namespace dart::prefetch {

// ------------------------------------------------------------------ NextLine

void NextLinePrefetcher::on_access(std::uint64_t block, std::uint64_t /*pc*/, bool /*hit*/,
                                   std::uint64_t /*cycle*/, std::vector<std::uint64_t>& out) {
  for (std::size_t d = 1; d <= degree_; ++d) out.push_back(block + d);
}

// -------------------------------------------------------------------- Stride

StridePrefetcher::StridePrefetcher(std::size_t table_entries, std::size_t degree)
    : table_(table_entries), degree_(degree) {
  if (table_entries != 0 && (table_entries & (table_entries - 1)) == 0) mask_ = table_entries - 1;
}

void StridePrefetcher::on_access(std::uint64_t block, std::uint64_t pc, bool /*hit*/,
                                 std::uint64_t /*cycle*/, std::vector<std::uint64_t>& out) {
  Entry& e = table_[index_of(pc)];
  if (!e.valid || e.pc_tag != pc) {
    e = Entry{pc, block, 0, 0, true};
    return;
  }
  const std::int64_t stride =
      static_cast<std::int64_t>(block) - static_cast<std::int64_t>(e.last_block);
  if (stride == e.stride && stride != 0) {
    e.confidence = std::min(e.confidence + 1, 3);
  } else {
    e.confidence = 0;
    e.stride = stride;
  }
  e.last_block = block;
  if (e.confidence >= 2) {
    for (std::size_t d = 1; d <= degree_; ++d) {
      out.push_back(static_cast<std::uint64_t>(static_cast<std::int64_t>(block) +
                                               e.stride * static_cast<std::int64_t>(d)));
    }
  }
}

std::size_t StridePrefetcher::storage_bytes() const {
  return table_.size() * sizeof(Entry);
}

// ----------------------------------------------------------------- BestOffset

BestOffsetPrefetcher::BestOffsetPrefetcher() : BestOffsetPrefetcher(Options()) {}

BestOffsetPrefetcher::BestOffsetPrefetcher(const Options& options) : opts_(options) {
  // Candidate offsets with prime factors {2, 3, 5} (the BO paper's list),
  // both directions, bounded by max_offset.
  for (std::int64_t o = 1; o <= static_cast<std::int64_t>(opts_.max_offset); ++o) {
    std::int64_t r = o;
    for (int p : {2, 3, 5}) {
      while (r % p == 0) r /= p;
    }
    if (r == 1) {
      offsets_.push_back(o);
      offsets_.push_back(-o);
    }
  }
  scores_.assign(offsets_.size(), 0);
  rr_.assign(opts_.rr_entries, ~0ULL);
  if (!rr_.empty() && (rr_.size() & (rr_.size() - 1)) == 0) rr_mask_ = rr_.size() - 1;
}

void BestOffsetPrefetcher::rr_insert(std::uint64_t block) {
  rr_[rr_index(block)] = block;
}

bool BestOffsetPrefetcher::rr_contains(std::uint64_t block) const {
  return rr_[rr_index(block)] == block;
}

void BestOffsetPrefetcher::end_learning_phase() {
  const auto best = std::max_element(scores_.begin(), scores_.end());
  const std::size_t idx = static_cast<std::size_t>(best - scores_.begin());
  prefetch_enabled_ = *best >= opts_.bad_score;
  if (prefetch_enabled_) best_offset_ = offsets_[idx];
  std::fill(scores_.begin(), scores_.end(), 0);
  round_ = 0;
  test_index_ = 0;
}

void BestOffsetPrefetcher::on_access(std::uint64_t block, std::uint64_t /*pc*/, bool hit,
                                     std::uint64_t /*cycle*/, std::vector<std::uint64_t>& out) {
  // Learning: test the next candidate offset against the RR table.
  const std::int64_t d = offsets_[test_index_];
  const std::uint64_t base = static_cast<std::uint64_t>(static_cast<std::int64_t>(block) - d);
  if (rr_contains(base)) {
    if (++scores_[test_index_] >= opts_.score_max) {
      best_offset_ = d;
      prefetch_enabled_ = true;
      std::fill(scores_.begin(), scores_.end(), 0);
      round_ = 0;
      test_index_ = 0;
    }
  }
  if (++test_index_ >= offsets_.size()) {
    test_index_ = 0;
    if (++round_ >= opts_.round_max) end_learning_phase();
  }
  // Prefetch on miss or prefetched hit (the BO trigger condition).
  if (prefetch_enabled_ && !hit) {
    for (std::size_t deg = 1; deg <= opts_.degree; ++deg) {
      out.push_back(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(block) + best_offset_ * static_cast<std::int64_t>(deg)));
    }
  }
}

void BestOffsetPrefetcher::on_fill(std::uint64_t block, bool was_prefetch) {
  // Completed prefetch for X+D fills: record the base X (it was timely);
  // demand fills record themselves.
  if (was_prefetch) {
    rr_insert(static_cast<std::uint64_t>(static_cast<std::int64_t>(block) - best_offset_));
  } else {
    rr_insert(block);
  }
}

std::size_t BestOffsetPrefetcher::storage_bytes() const {
  // RR table (4-byte tags) + per-offset scores + control state: ~4 KB as in
  // Table IX.
  return rr_.size() * 4 + scores_.size() * sizeof(int) + 64;
}

// ----------------------------------------------------------------------- ISB

IsbPrefetcher::IsbPrefetcher() : IsbPrefetcher(Options()) {}

IsbPrefetcher::IsbPrefetcher(const Options& options) : opts_(options) {}

void IsbPrefetcher::record_mapping(std::uint64_t block, std::uint64_t structural) {
  ps_.assign(block, structural);
  sp_.assign(structural, block);
  fifo_.push_back(block);
  if (fifo_.size() > opts_.max_mappings) {
    const std::uint64_t victim = fifo_.front();
    fifo_.pop_front();
    if (const std::uint64_t* vs = ps_.find(victim)) {
      sp_.erase(*vs);
      ps_.erase(victim);
    }
  }
}

std::uint64_t IsbPrefetcher::assign_structural(std::uint64_t block) {
  if (const std::uint64_t* s = ps_.find(block)) return *s;
  const std::uint64_t s = next_stream_base_;
  next_stream_base_ += opts_.stream_granularity;
  record_mapping(block, s);
  return s;
}

void IsbPrefetcher::on_access(std::uint64_t block, std::uint64_t pc, bool /*hit*/,
                              std::uint64_t /*cycle*/, std::vector<std::uint64_t>& out) {
  // Training: link the previous block on this PC's stream to this one by
  // assigning consecutive structural addresses.
  const std::uint64_t* tu = training_unit_.find(pc);
  if (tu != nullptr && *tu != block) {
    const std::uint64_t prev_struct = assign_structural(*tu);
    // Map this block right after its predecessor unless already mapped.
    if (ps_.find(block) == nullptr) {
      const std::uint64_t s = prev_struct + 1;
      // Avoid overwriting an existing mapping at s.
      if (sp_.find(s) == nullptr) {
        record_mapping(block, s);
      } else {
        assign_structural(block);
      }
    }
  }
  training_unit_.assign(pc, block);

  // Prediction: successors of this block's structural address.
  const std::uint64_t* st = ps_.find(block);
  if (st == nullptr) return;
  for (std::size_t d = 1; d <= opts_.degree; ++d) {
    if (const std::uint64_t* nxt = sp_.find(*st + d)) out.push_back(*nxt);
  }
}

std::size_t IsbPrefetcher::storage_bytes() const {
  // On-chip budget (training unit + PS/SP caches) as in Table IX; the full
  // maps live in off-chip memory in the original design.
  return 8 * 1024;
}

}  // namespace dart::prefetch

// ------------------------------------------------------- registry entries

namespace dart::sim {

void register_rule_based_prefetchers(PrefetcherRegistry& registry) {
  using prefetch::BestOffsetPrefetcher;
  using prefetch::IsbPrefetcher;
  using prefetch::NextLinePrefetcher;
  using prefetch::StridePrefetcher;

  registry.add("nextline", [](PrefetcherSpec& spec, PrefetcherContext&) {
    return std::make_unique<NextLinePrefetcher>(spec.get_uint("degree", 2));
  });
  registry.add("stride", [](PrefetcherSpec& spec, PrefetcherContext&) {
    return std::make_unique<StridePrefetcher>(spec.get_uint("table", 256),
                                              spec.get_uint("degree", 2));
  });
  registry.add("bo", [](PrefetcherSpec& spec, PrefetcherContext&) {
    BestOffsetPrefetcher::Options o;
    o.rr_entries = spec.get_uint("rr", o.rr_entries);
    o.score_max = static_cast<int>(spec.get_uint("score_max", o.score_max));
    o.round_max = static_cast<int>(spec.get_uint("round_max", o.round_max));
    o.bad_score = static_cast<int>(spec.get_uint("bad_score", o.bad_score));
    o.max_offset = spec.get_uint("max_offset", o.max_offset);
    o.degree = spec.get_uint("degree", o.degree);
    o.latency = spec.get_uint("latency", o.latency);
    return std::make_unique<BestOffsetPrefetcher>(o);
  });
  registry.add("isb", [](PrefetcherSpec& spec, PrefetcherContext&) {
    IsbPrefetcher::Options o;
    o.max_mappings = spec.get_uint("mappings", o.max_mappings);
    o.degree = spec.get_uint("degree", o.degree);
    o.stream_granularity = spec.get_uint("granularity", o.stream_granularity);
    o.latency = spec.get_uint("latency", o.latency);
    return std::make_unique<IsbPrefetcher>(o);
  });
}

}  // namespace dart::sim
