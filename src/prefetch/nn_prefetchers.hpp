// Neural / tabular prefetcher adapters (Table IX):
//  * DartPrefetcher       — the paper's contribution: table-hierarchy
//    predictor at the LLC (latency from the Eq. 22 complexity model).
//  * AttentionPrefetcher  — TransFetch-like baseline wrapping the
//    attention NN directly (latency ≈ 4.5K cycles; "-I" ideal = 0).
//  * LstmPrefetcher       — Voyager-like baseline wrapping the LSTM
//    predictor (latency ≈ 27.7K cycles; "-I" ideal = 0).
//
// All adapters share the same mechanics: keep the last T LLC accesses,
// build the segmented addr/PC input of §VI-A, run the predictor, turn
// bitmap bits with probability >= threshold into block addresses
// (current block + delta), strongest bits first.
//
// Latency-bound triggering: a predictor with prediction latency L cannot
// start a new inference while one is outstanding (it is not pipelined), so
// a trigger is accepted at most once every `initiation_interval` cycles —
// by default equal to the prediction latency. The "-I" ideal variants have
// zero latency and trigger on every access, exactly how the paper separates
// TransFetch/Voyager from TransFetch-I/Voyager-I.
#pragma once

#include <memory>

#include "nn/lstm.hpp"
#include "nn/transformer.hpp"
#include "sim/prefetcher.hpp"
#include "tabular/tabular_predictor.hpp"
#include "trace/preprocess.hpp"

namespace dart::prefetch {

struct NnAdapterOptions {
  trace::PreprocessOptions prep;     ///< must match the training pipeline
  float threshold = 0.5f;            ///< bitmap probability cutoff
  std::size_t degree = 16;           ///< max predictions per trigger
  std::size_t latency = 0;           ///< prediction latency in cycles
  /// Minimum cycles between two inference launches (1 = fully pipelined
  /// predictor, the default; set to `latency` to model a non-pipelined
  /// engine with a single outstanding prediction).
  std::size_t initiation_interval = 1;
  /// Predict on every Nth trigger access (simulation-cost sampling for the
  /// heavyweight NN baselines; predictions within a few accesses are nearly
  /// identical because the history window barely moves).
  std::size_t trigger_sample = 1;
};

/// Shared history-window + bitmap-decoding machinery.
class NnPrefetcherBase : public sim::Prefetcher {
 public:
  explicit NnPrefetcherBase(const NnAdapterOptions& options);

  void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                 std::vector<std::uint64_t>& out) final;
  std::size_t prediction_latency() const final { return opts_.latency; }

 protected:
  /// Runs the wrapped predictor on [1,T,S] inputs; returns [1, DO]
  /// probabilities.
  virtual nn::Tensor predict(const nn::Tensor& addr, const nn::Tensor& pc) = 0;

  NnAdapterOptions opts_;

 private:
  std::vector<std::uint64_t> hist_blocks_;
  std::vector<std::uint64_t> hist_pcs_;
  std::size_t hist_pos_ = 0;
  std::size_t hist_count_ = 0;
  std::uint64_t next_allowed_cycle_ = 0;
  std::uint64_t access_counter_ = 0;
};

class DartPrefetcher final : public NnPrefetcherBase {
 public:
  DartPrefetcher(std::shared_ptr<const tabular::TabularPredictor> predictor,
                 const NnAdapterOptions& options, std::string display_name = "DART");

  std::size_t storage_bytes() const override { return predictor_->storage_bytes(); }
  std::string name() const override { return name_; }

 protected:
  nn::Tensor predict(const nn::Tensor& addr, const nn::Tensor& pc) override;

 private:
  std::shared_ptr<const tabular::TabularPredictor> predictor_;
  std::string name_;
};

class AttentionPrefetcher final : public NnPrefetcherBase {
 public:
  AttentionPrefetcher(std::shared_ptr<nn::AddressPredictor> model,
                      const NnAdapterOptions& options, std::string display_name);

  std::size_t storage_bytes() const override;
  std::string name() const override { return name_; }
  /// The attention model caches activations during forward.
  bool shares_mutable_model() const override { return true; }

 protected:
  nn::Tensor predict(const nn::Tensor& addr, const nn::Tensor& pc) override;

 private:
  std::shared_ptr<nn::AddressPredictor> model_;
  std::string name_;
};

class LstmPrefetcher final : public NnPrefetcherBase {
 public:
  LstmPrefetcher(std::shared_ptr<nn::LstmPredictor> model, const NnAdapterOptions& options,
                 std::string display_name);

  std::size_t storage_bytes() const override;
  std::string name() const override { return name_; }
  /// The LSTM model caches activations during forward.
  bool shares_mutable_model() const override { return true; }

 protected:
  nn::Tensor predict(const nn::Tensor& addr, const nn::Tensor& pc) override;

 private:
  std::shared_ptr<nn::LstmPredictor> model_;
  std::string name_;
};

}  // namespace dart::prefetch
