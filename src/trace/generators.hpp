// Synthetic SPEC-like workload generators.
//
// Substitution (DESIGN.md §3): SPEC CPU 2006/2017 traces cannot be shipped,
// so each generator synthesizes an LLC access stream tuned to reproduce the
// published trace statistics of the paper's Table IV (#unique addresses,
// #pages, #deltas) and the qualitative pattern classes of Fig. 7. Prediction
// difficulty in the paper is governed by delta/page cardinality, so
// preserving those preserves the relative ordering of results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace dart::trace {

/// The eight benchmark applications of Table IV.
enum class App {
  kBwaves,      // 410.bwaves — multi-stream regular stride (SPEC 2006)
  kMilc,        // 433.milc — strided sweeps over many pages
  kLeslie3d,    // 437.leslie3d — few pages, small delta set
  kLibquantum,  // 462.libquantum — near-pure sequential
  kGcc,         // 602.gcc — mixed locality (SPEC 2017)
  kMcf,         // 605.mcf — pointer chasing, huge delta diversity
  kLbm,         // 619.lbm — structured grid, few deltas
  kWrf,         // 621.wrf — nested loops, moderate delta set
};

/// All apps in Table IV order.
const std::vector<App>& all_apps();

/// Paper-style display name, e.g. "410.bwaves".
std::string app_name(App app);

/// Parses "410.bwaves" / "bwaves" etc.; throws on unknown names.
App app_from_name(const std::string& name);

/// Generates `n` LLC accesses for `app`, deterministically for a seed.
MemoryTrace generate(App app, std::size_t n, std::uint64_t seed = 1);

// Building-block generators (also usable directly for tests/examples):

/// `streams` interleaved sequential streams advancing `stride_elems`
/// elements of `element_bytes` per access (word-granular accesses hit the
/// same cache line several times, setting a realistic LLC demand rate).
MemoryTrace gen_multi_stream(std::size_t n, std::size_t streams, std::size_t stride_elems,
                             std::size_t element_bytes, std::uint64_t region_bytes,
                             std::uint64_t seed);

/// Pointer-chasing walk over `nodes` heap nodes with random jumps.
MemoryTrace gen_pointer_chase(std::size_t n, std::size_t nodes, std::uint64_t seed);

/// Row-major nested-loop sweeps over a `rows x cols` grid of
/// `element_bytes`-sized elements, touching `arrays` arrays per iteration.
MemoryTrace gen_grid_sweep(std::size_t n, std::size_t rows, std::size_t cols,
                           std::size_t arrays, std::size_t element_bytes, std::uint64_t seed);

/// Mix of sequential bursts and skewed random jumps (gcc-like).
MemoryTrace gen_mixed(std::size_t n, double sequential_frac, std::size_t hot_pages,
                      std::uint64_t seed);

}  // namespace dart::trace
