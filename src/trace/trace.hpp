// Memory-access trace substrate.
//
// A trace is the sequence of LLC-level memory accesses of one application:
// (instruction id, program counter, byte address, read/write). Traces feed
// both the offline training pipeline (§VI-A preprocessing) and the
// trace-driven simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dart::trace {

struct MemoryAccess {
  std::uint64_t instr_id = 0;  ///< retiring instruction count at this access
  std::uint64_t pc = 0;        ///< program counter of the memory instruction
  std::uint64_t addr = 0;      ///< byte address
  bool is_write = false;
};

using MemoryTrace = std::vector<MemoryAccess>;

/// 64-byte cache line index of a byte address.
inline std::uint64_t block_of(std::uint64_t addr) { return addr >> 6; }

/// 4-KiB page index of a byte address.
inline std::uint64_t page_of(std::uint64_t addr) { return addr >> 12; }

/// Table IV statistics: unique block addresses, pages, and block deltas of
/// consecutive accesses.
struct TraceStats {
  std::size_t accesses = 0;
  std::size_t unique_blocks = 0;
  std::size_t unique_pages = 0;
  std::size_t unique_deltas = 0;
};

TraceStats compute_stats(const MemoryTrace& trace);

}  // namespace dart::trace
