// Binary trace-file format + streaming loader (DESIGN.md §12).
//
// `.dtrc` is a ChampSim-style flat record format for shipping captured or
// pre-generated access streams into the pipeline ("tracefile:path=..."
// workload specs):
//
//     magic   u32   "DTRC" (little-endian 0x43525444)
//     version u32   currently 1
//     count   u64   number of records
//     records count x { instr_id u64, pc u64, addr u64, flags u8 }
//     checksum u64  FNV-1a over the record bytes
//
// All fields little-endian (io/bytes.hpp conventions). `flags` bit 0 is the
// write bit; other bits must be zero in version 1. The reader streams
// records in fixed-size batches — it never loads the file wholesale — and
// bounds-checks every step: truncation, trailing garbage, flag corruption
// and checksum mismatches throw io::ArtifactError naming the byte offset.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace dart::trace {

inline constexpr std::uint32_t kTraceFileMagic = 0x43525444u;  // "DTRC" LE
inline constexpr std::uint32_t kTraceFileVersion = 1;
inline constexpr std::size_t kTraceFileHeaderBytes = 16;  // magic+version+count
inline constexpr std::size_t kTraceFileRecordBytes = 25;  // 3 x u64 + flags

/// Writes `trace` to `path` in the .dtrc format. Throws io::ArtifactError
/// when the file cannot be created or written.
void write_trace_file(const std::string& path, const MemoryTrace& trace);

/// Streaming .dtrc reader. Validates the header on construction and the
/// checksum when the last record has been consumed; every failure throws
/// io::ArtifactError with the offending byte offset.
class TraceFileReader {
 public:
  explicit TraceFileReader(const std::string& path);

  /// Reads the next record into `out`; false at end-of-trace (at which
  /// point the checksum has been verified).
  bool next(MemoryAccess& out);

  /// Records declared by the header.
  std::uint64_t count() const { return count_; }
  /// Records consumed so far.
  std::uint64_t consumed() const { return consumed_; }

 private:
  void fill_buffer();
  [[noreturn]] void fail(const std::string& what) const;

  std::string path_;
  std::ifstream in_;
  std::uint64_t count_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t checksum_ = 0;       ///< running FNV-1a over record bytes
  std::vector<std::uint8_t> buffer_; ///< current batch of raw record bytes
  std::size_t buf_pos_ = 0;
  std::uint64_t file_offset_ = 0;    ///< absolute offset of buffer_[0]
};

/// Reads the whole file through TraceFileReader. Throws io::ArtifactError
/// on any malformation.
MemoryTrace read_trace_file(const std::string& path);

}  // namespace dart::trace
