#include "trace/preprocess.hpp"

#include <stdexcept>

namespace dart::trace {

void segment_value(std::uint64_t value, std::size_t segments, std::size_t bits, float* out) {
  const std::uint64_t mask = (1ULL << bits) - 1;
  const float norm = 1.0f / static_cast<float>(mask);
  for (std::size_t s = 0; s < segments; ++s) {
    out[s] = static_cast<float>((value >> (s * bits)) & mask) * norm;
  }
}

int delta_to_bit(std::int64_t delta, std::size_t bitmap_size) {
  if (delta == 0) return -1;
  const auto half = static_cast<std::int64_t>(bitmap_size / 2);
  if (delta < -half || delta >= half) return -1;
  return static_cast<int>(delta + half);
}

std::int64_t bit_to_delta(std::size_t bit, std::size_t bitmap_size) {
  return static_cast<std::int64_t>(bit) - static_cast<std::int64_t>(bitmap_size / 2);
}

nn::Dataset make_dataset(const MemoryTrace& trace, const PreprocessOptions& opt) {
  const std::size_t t_len = opt.history;
  if (trace.size() < t_len + opt.lookforward + 1) {
    throw std::invalid_argument("make_dataset: trace too short for the window sizes");
  }
  std::size_t n = trace.size() - t_len - opt.lookforward;
  if (opt.max_samples > 0) n = std::min(n, opt.max_samples);

  nn::Dataset ds;
  ds.addr = nn::Tensor({n, t_len, opt.addr_segments});
  ds.pc = nn::Tensor({n, t_len, opt.pc_segments});
  ds.labels = nn::Tensor({n, opt.bitmap_size});

  for (std::size_t i = 0; i < n; ++i) {
    // History window ends at access index `cur` (the current access).
    const std::size_t cur = i + t_len - 1;
    for (std::size_t t = 0; t < t_len; ++t) {
      const MemoryAccess& a = trace[i + t];
      segment_value(block_of(a.addr), opt.addr_segments, opt.segment_bits,
                    ds.addr.data() + (i * t_len + t) * opt.addr_segments);
      segment_value(a.pc >> 2, opt.pc_segments, opt.segment_bits,
                    ds.pc.data() + (i * t_len + t) * opt.pc_segments);
    }
    const auto cur_block = static_cast<std::int64_t>(block_of(trace[cur].addr));
    float* label = ds.labels.row(i);
    for (std::size_t w = 1; w <= opt.lookforward; ++w) {
      const auto fut = static_cast<std::int64_t>(block_of(trace[cur + w].addr));
      const int bit = delta_to_bit(fut - cur_block, opt.bitmap_size);
      if (bit >= 0) label[bit] = 1.0f;
    }
  }
  return ds;
}

}  // namespace dart::trace
