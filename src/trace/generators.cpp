#include "trace/generators.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace dart::trace {

namespace {

constexpr std::uint64_t kBlock = 64;
constexpr std::uint64_t kPage = 4096;

/// Shared emission helper: advances the instruction counter by a random gap
/// modeling the non-memory instructions between accesses. Workloads with
/// more compute per access pass a wider gap range, which directly sets the
/// LLC demand rate the prefetchers must race against.
class Emitter {
 public:
  Emitter(std::uint64_t seed, std::int64_t gap_lo, std::int64_t gap_hi)
      : rng_(seed), gap_lo_(gap_lo), gap_hi_(gap_hi) {}

  void emit(MemoryTrace& out, std::uint64_t pc, std::uint64_t addr, bool write = false) {
    instr_ += 1 + static_cast<std::uint64_t>(rng_.uniform_int(gap_lo_, gap_hi_));
    out.push_back({instr_, pc, addr, write});
  }

  common::Rng& rng() { return rng_; }

 private:
  common::Rng rng_;
  std::int64_t gap_lo_;
  std::int64_t gap_hi_;
  std::uint64_t instr_ = 0;
};

/// Distinct, stable fake PC for logical instruction site `i`.
std::uint64_t pc_of(std::uint64_t base, std::uint64_t i) { return base + 4 * i; }

}  // namespace

MemoryTrace gen_multi_stream(std::size_t n, std::size_t streams, std::size_t stride_elems,
                             std::size_t element_bytes, std::uint64_t region_bytes,
                             std::uint64_t seed) {
  MemoryTrace out;
  out.reserve(n);
  Emitter em(seed, 1, 7);
  const std::uint64_t region_per_stream = region_bytes / streams;
  std::vector<std::uint64_t> cursor(streams);
  std::vector<std::uint64_t> base(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    base[s] = 0x10000000ULL + s * region_per_stream;
    // Seed-dependent starting phase so different seeds give different traces.
    cursor[s] = static_cast<std::uint64_t>(
        em.rng().uniform_int(0, static_cast<std::int64_t>(region_per_stream / element_bytes) - 1));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = i % streams;
    const std::uint64_t offset = (cursor[s] * stride_elems * element_bytes) % region_per_stream;
    em.emit(out, pc_of(0x400000, s), base[s] + offset);
    ++cursor[s];
    // Rare stream restart at a fresh offset (loop boundaries).
    if (em.rng().bernoulli(0.0005)) {
      cursor[s] = static_cast<std::uint64_t>(em.rng().uniform_int(
          0, static_cast<std::int64_t>(region_per_stream / element_bytes) - 1));
    }
  }
  return out;
}

MemoryTrace gen_pointer_chase(std::size_t n, std::size_t nodes, std::uint64_t seed) {
  MemoryTrace out;
  out.reserve(n);
  Emitter em(seed, 7, 23);  // graph codes do real work between dereferences
  // Nodes are laid out in allocation order (2 blocks apart) — successor
  // pointers mostly follow allocation locality (small, learnable deltas)
  // but cross edges and fresh traversals jump anywhere, which is what
  // explodes mcf's delta cardinality in Table IV while leaving part of the
  // stream predictable (teacher F1 ~0.55 in the paper).
  std::vector<std::uint64_t> node_addr(nodes);
  std::vector<std::uint32_t> next(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    node_addr[i] = 0x20000000ULL + static_cast<std::uint64_t>(i) * 2 * kBlock;
    if (em.rng().bernoulli(0.6) && i + 1 < nodes) {
      next[i] = static_cast<std::uint32_t>(i + 1);  // allocation locality
    } else {
      next[i] = static_cast<std::uint32_t>(
          em.rng().uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    }
  }
  std::uint32_t cur = 0;
  for (std::size_t i = 0; i < n; ++i) {
    em.emit(out, pc_of(0x500000, 0), node_addr[cur]);
    if (em.rng().bernoulli(0.15)) {
      cur = static_cast<std::uint32_t>(
          em.rng().uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    } else {
      cur = next[cur];
    }
  }
  return out;
}

MemoryTrace gen_grid_sweep(std::size_t n, std::size_t rows, std::size_t cols,
                           std::size_t arrays, std::size_t element_bytes, std::uint64_t seed) {
  MemoryTrace out;
  out.reserve(n);
  Emitter em(seed, 2, 10);
  const std::uint64_t array_bytes = static_cast<std::uint64_t>(rows) * cols * element_bytes;
  // Seed-dependent starting phase.
  std::size_t r = static_cast<std::size_t>(em.rng().uniform_int(0, static_cast<std::int64_t>(rows) - 1));
  std::size_t c = 0;
  for (std::size_t i = 0; out.size() < n; ++i) {
    const std::size_t a = i % arrays;
    const std::uint64_t base = 0x30000000ULL + a * (array_bytes + 8 * kPage);
    const std::uint64_t addr =
        base + (static_cast<std::uint64_t>(r) * cols + c) * element_bytes;
    em.emit(out, pc_of(0x600000, a), addr, /*is_write=*/a + 1 == arrays);
    // Stencil neighbor touch: occasionally read the row above/below, which
    // contributes the +/- row-width deltas real grid codes show.
    if (a == 0 && out.size() < n && em.rng().bernoulli(0.08)) {
      const std::size_t rn = (r + 1) % rows;
      em.emit(out, pc_of(0x600000, 7),
              base + (static_cast<std::uint64_t>(rn) * cols + c) * element_bytes);
    }
    if (a + 1 == arrays) {
      if (++c >= cols) {
        c = 0;
        if (++r >= rows) r = 0;
      }
    }
  }
  return out;
}

MemoryTrace gen_mixed(std::size_t n, double sequential_frac, std::size_t hot_pages,
                      std::uint64_t seed) {
  MemoryTrace out;
  out.reserve(n);
  Emitter em(seed, 2, 10);
  const std::uint64_t region = static_cast<std::uint64_t>(hot_pages) * kPage;
  std::uint64_t cursor = 0x40000000ULL;
  constexpr std::uint64_t kElem = 8;  // word-granular sequential scans
  for (std::size_t i = 0; i < n;) {
    if (em.rng().uniform() < sequential_frac) {
      // Sequential burst of 16-128 words.
      const auto burst = static_cast<std::size_t>(em.rng().uniform_int(16, 128));
      for (std::size_t b = 0; b < burst && i < n; ++b, ++i) {
        em.emit(out, pc_of(0x700000, 1), cursor);
        cursor += kElem;
        if (cursor >= 0x40000000ULL + region) cursor = 0x40000000ULL;
      }
    } else {
      // Skewed random jump: hot pages get most of the traffic.
      const std::size_t page = em.rng().zipf_like(hot_pages, 0.999);
      const auto line = static_cast<std::uint64_t>(em.rng().uniform_int(0, 63));
      cursor = 0x40000000ULL + page * kPage + line * kBlock;
      em.emit(out, pc_of(0x700000, 2), cursor);
      ++i;
    }
  }
  return out;
}

namespace {

/// milc-like: short strided sweeps, each over a randomly chosen page of a
/// large footprint (many pages, moderate deltas).
MemoryTrace gen_page_sweeps(std::size_t n, std::size_t total_pages, std::size_t sweep_len,
                            std::size_t stride_blocks, std::uint64_t seed) {
  MemoryTrace out;
  out.reserve(n);
  Emitter em(seed, 7, 19);
  for (std::size_t i = 0; i < n;) {
    const auto page = static_cast<std::uint64_t>(
        em.rng().uniform_int(0, static_cast<std::int64_t>(total_pages) - 1));
    std::uint64_t addr = 0x50000000ULL + page * kPage;
    for (std::size_t s = 0; s < sweep_len && i < n; ++s, ++i) {
      em.emit(out, pc_of(0x800000, s % 4), addr);
      addr += stride_blocks * kBlock;
    }
  }
  return out;
}

/// wrf-like: nested loops cycling through several strides over a moderate
/// footprint.
MemoryTrace gen_nested_strides(std::size_t n, std::size_t pages,
                               const std::vector<std::size_t>& strides, std::uint64_t seed) {
  MemoryTrace out;
  out.reserve(n);
  Emitter em(seed, 4, 14);
  const std::uint64_t region = static_cast<std::uint64_t>(pages) * kPage;
  std::uint64_t cursor = static_cast<std::uint64_t>(
                             em.rng().uniform_int(0, static_cast<std::int64_t>(pages) - 1)) *
                         kPage;
  std::size_t phase = 0, count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t addr = 0x60000000ULL + (cursor % region);
    em.emit(out, pc_of(0x900000, phase), addr);
    cursor += strides[phase] * kBlock;
    if (++count >= 512) {
      count = 0;
      phase = (phase + 1) % strides.size();
      // New loop nest starts at a page-aligned random offset.
      cursor = static_cast<std::uint64_t>(
                   em.rng().uniform_int(0, static_cast<std::int64_t>(pages) - 1)) *
               kPage;
    }
  }
  return out;
}

}  // namespace

const std::vector<App>& all_apps() {
  static const std::vector<App> apps = {App::kBwaves, App::kMilc,       App::kLeslie3d,
                                        App::kLibquantum, App::kGcc,    App::kMcf,
                                        App::kLbm,    App::kWrf};
  return apps;
}

std::string app_name(App app) {
  switch (app) {
    case App::kBwaves: return "410.bwaves";
    case App::kMilc: return "433.milc";
    case App::kLeslie3d: return "437.leslie3d";
    case App::kLibquantum: return "462.libquantum";
    case App::kGcc: return "602.gcc";
    case App::kMcf: return "605.mcf";
    case App::kLbm: return "619.lbm";
    case App::kWrf: return "621.wrf";
  }
  return "unknown";
}

App app_from_name(const std::string& name) {
  for (App app : all_apps()) {
    const std::string full = app_name(app);
    if (name == full || full.find("." + name) != std::string::npos ||
        full.substr(4) == name) {
      return app;
    }
  }
  throw std::invalid_argument("unknown app: " + name);
}

MemoryTrace generate(App app, std::size_t n, std::uint64_t seed) {
  switch (app) {
    case App::kBwaves:
      // Multi-stream stencil over doubles: regular, word-granular.
      return gen_multi_stream(n, /*streams=*/8, /*stride_elems=*/1, /*element=*/8,
                              /*region=*/15ULL << 20, seed);
    case App::kMilc:
      // Large footprint (many pages), short strided sweeps.
      return gen_page_sweeps(n, /*pages=*/20000, /*sweep=*/12, /*stride=*/2, seed);
    case App::kLeslie3d:
      // Small grid, few pages, few deltas; 16-byte elements.
      return gen_grid_sweep(n, /*rows=*/120, /*cols=*/900, /*arrays=*/2, /*element=*/16, seed);
    case App::kLibquantum:
      // Near-pure sequential word scan over a flat array.
      return gen_multi_stream(n, /*streams=*/1, /*stride_elems=*/1, /*element=*/8,
                              /*region=*/22ULL << 20, seed);
    case App::kGcc:
      // Mixed sequential bursts + skewed jumps.
      return gen_mixed(n, /*sequential=*/0.75, /*hot_pages=*/3400, seed);
    case App::kMcf:
      // Pointer chasing with random jumps: delta cardinality explodes.
      return gen_pointer_chase(n, /*nodes=*/60000, seed);
    case App::kLbm:
      // Structured grid, two arrays, tiny delta set; 16-byte elements.
      return gen_grid_sweep(n, /*rows=*/120, /*cols=*/2000, /*arrays=*/2, /*element=*/16, seed);
    case App::kWrf:
      // Nested loops with several strides.
      return gen_nested_strides(n, /*pages=*/3300, {1, 2, 7, 13}, seed);
  }
  throw std::invalid_argument("generate: unknown app");
}

}  // namespace dart::trace
