#include "trace/workloads.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "io/bytes.hpp"
#include "trace/trace_file.hpp"

namespace dart::trace {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t");
  return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
}

/// Display names go into artifact file names, so they are restricted to the
/// safe set; anything else becomes '-'.
std::string sanitize_name(const std::string& s) {
  std::string out;
  for (char c : s) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_' || c == '-';
    out.push_back(ok ? c : '-');
  }
  return out;
}

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("workload spec: " + what);
}

}  // namespace

// ---------------------------------------------------------------- WorkloadSpec

WorkloadSpec WorkloadSpec::parse(const std::string& text) {
  WorkloadSpec spec;
  std::size_t p = 0;
  std::size_t q = text.find(',');
  spec.family_ = lower(trim(text.substr(0, q)));
  if (spec.family_.empty()) bad_spec("empty family name in '" + text + "'");
  p = q == std::string::npos ? text.size() + 1 : q + 1;
  while (p <= text.size()) {
    q = text.find(',', p);
    if (q == std::string::npos) q = text.size();
    const std::string param = trim(text.substr(p, q - p));
    p = q + 1;
    if (param.empty()) continue;
    const std::size_t eq = param.find('=');
    if (eq == 0) bad_spec(spec.family_ + ": parameter '" + param + "' is not key=value");
    if (eq == std::string::npos) {
      spec.params_[lower(param)] = "1";  // bare flag
    } else {
      spec.params_[lower(trim(param.substr(0, eq)))] = trim(param.substr(eq + 1));
    }
  }
  return spec;
}

bool WorkloadSpec::has(const std::string& key) const {
  return params_.count(lower(key)) != 0;
}

std::string WorkloadSpec::get_string(const std::string& key, const std::string& fallback) {
  const std::string k = lower(key);
  used_.insert(k);
  auto it = params_.find(k);
  return it == params_.end() ? fallback : it->second;
}

std::uint64_t WorkloadSpec::get_size(const std::string& key, std::uint64_t fallback) {
  const std::string v = get_string(key, "");
  if (v.empty()) return fallback;
  std::uint64_t scale = 1;
  std::string digits = v;
  switch (std::tolower(static_cast<unsigned char>(v.back()))) {
    case 'k': scale = 1ULL << 10; digits.pop_back(); break;
    case 'm': scale = 1ULL << 20; digits.pop_back(); break;
    case 'g': scale = 1ULL << 30; digits.pop_back(); break;
    default: break;
  }
  try {
    std::size_t used = 0;
    const unsigned long long n = std::stoull(digits, &used);
    if (used != digits.size() || digits.empty()) throw std::invalid_argument(v);
    return static_cast<std::uint64_t>(n) * scale;
  } catch (const std::exception&) {
    bad_spec(family_ + ": parameter '" + key + "' is not a size: '" + v + "'");
  }
}

double WorkloadSpec::get_double(const std::string& key, double fallback) {
  const std::string v = get_string(key, "");
  if (v.empty()) return fallback;
  try {
    std::size_t used = 0;
    const double d = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    bad_spec(family_ + ": parameter '" + key + "' is not a number: '" + v + "'");
  }
}

std::vector<std::string> WorkloadSpec::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : params_) {
    if (!used_.count(k)) out.push_back(k);
  }
  return out;
}

std::string WorkloadSpec::canonical() const {
  std::ostringstream os;
  os << family_;
  for (const auto& [k, v] : params_) os << ',' << k << '=' << v;  // map = sorted
  return os.str();
}

// ------------------------------------------------------- address-stream layouts

namespace {

/// How synthetic keys become cache-line accesses. Each op on a key issues
/// the short burst a real data structure would: bucket probes + payload for
/// a hash table, a chain walk for pointer chasing, a root-to-leaf descent
/// for a B-tree, neighbor hops for a graph, or one array touch.
enum class Layout { kDirect, kHash, kChase, kBtree, kGraph };

Layout layout_from_name(const std::string& name) {
  if (name == "direct") return Layout::kDirect;
  if (name == "hash") return Layout::kHash;
  if (name == "chase") return Layout::kChase;
  if (name == "btree") return Layout::kBtree;
  if (name == "graph") return Layout::kGraph;
  bad_spec("unknown layout '" + name + "' (direct|hash|chase|btree|graph)");
}

// Disjoint virtual regions per structure, so layouts never alias.
constexpr std::uint64_t kArrayBase = 0x100000000000ULL;
constexpr std::uint64_t kBucketBase = 0x200000000000ULL;
constexpr std::uint64_t kPayloadBase = 0x300000000000ULL;
constexpr std::uint64_t kHeapBase = 0x400000000000ULL;
constexpr std::uint64_t kBtreeBase = 0x500000000000ULL;
constexpr std::uint64_t kBtreeLevelStride = 0x10000000000ULL;
constexpr std::uint64_t kGraphBase = 0x600000000000ULL;
/// Synthetic PC region; each (layout step) gets its own PC, spaced like
/// x86 memory instructions, so PC-based features see realistic streams.
constexpr std::uint64_t kPcBase = 0x400000ULL;

/// Emits the access burst for one key operation. `pc_slot` distinguishes op
/// kinds (read/update/insert/scan/rmw) in the PC stream.
struct LayoutMapper {
  Layout layout = Layout::kDirect;
  std::uint64_t items = 0;   ///< structure size in cache lines
  int btree_levels = 2;

  explicit LayoutMapper(Layout l, std::uint64_t n) : layout(l), items(n) {
    // Fanout-256 tree: levels such that 256^levels covers the key space.
    std::uint64_t cap = 256;
    btree_levels = 1;
    while (cap < items && btree_levels < 8) {
      cap *= 256;
      ++btree_levels;
    }
    if (btree_levels < 2) btree_levels = 2;  // root + leaf at minimum
  }

  void emit(MemoryTrace& out, std::uint64_t& instr, std::uint64_t key, bool is_write,
            std::uint64_t pc_slot) const {
    const std::uint64_t slot_pc = kPcBase + pc_slot * 0x40;
    auto push = [&](std::uint64_t pc, std::uint64_t addr, bool w) {
      out.push_back({instr, pc, addr, w});
      instr += 3;  // a handful of non-memory instructions between accesses
    };
    const std::uint64_t pos = key % items;
    switch (layout) {
      case Layout::kDirect:
        push(slot_pc, kArrayBase + pos * 64, is_write);
        break;
      case Layout::kHash: {
        // Open-addressing probe: h picks the bucket, its high bits the
        // cluster length (1-3 consecutive lines), then the payload line.
        const std::uint64_t h = common::mix64(key);
        const std::uint64_t bucket = h % items;
        const std::uint64_t probes = 1 + ((h >> 32) % 3);
        for (std::uint64_t p = 0; p < probes; ++p) {
          push(slot_pc + p * 4, kBucketBase + ((bucket + p) % items) * 64, false);
        }
        push(slot_pc + 16, kPayloadBase + (common::mix64(key ^ 0x7f4a7c15ULL) % items) * 64,
             is_write);
        break;
      }
      case Layout::kChase: {
        // 4-hop chain walk; each hop's node is derived from the previous.
        std::uint64_t node = common::mix64(key) % items;
        for (int d = 0; d < 4; ++d) {
          push(slot_pc + static_cast<std::uint64_t>(d) * 4, kHeapBase + node * 64,
               is_write && d == 3);
          node = common::mix64(node + 0x9e3779b9ULL) % items;
        }
        break;
      }
      case Layout::kBtree: {
        // Root-to-leaf descent: level l is indexed by the key's high
        // base-256 digits, so upper levels stay hot while leaves spread.
        for (int l = 0; l < btree_levels; ++l) {
          const int shift = 8 * (btree_levels - 1 - l);
          const std::uint64_t idx = shift >= 64 ? 0 : (pos >> shift);
          push(slot_pc + static_cast<std::uint64_t>(l) * 4,
               kBtreeBase + static_cast<std::uint64_t>(l) * kBtreeLevelStride + idx * 64,
               is_write && l == btree_levels - 1);
        }
        break;
      }
      case Layout::kGraph: {
        // 4-step neighbor walk from the key's vertex.
        std::uint64_t node = pos;
        for (int s = 0; s < 4; ++s) {
          push(slot_pc + static_cast<std::uint64_t>(s) * 4, kGraphBase + node * 64,
               is_write && s == 3);
          node = common::mix64(node * 2 + static_cast<std::uint64_t>(s) + 1) % items;
        }
        break;
      }
    }
  }

  /// Leaf-only access for range scans (the descent already happened).
  void emit_scan_step(MemoryTrace& out, std::uint64_t& instr, std::uint64_t key,
                      std::uint64_t pc_slot) const {
    const std::uint64_t pos = key % items;
    std::uint64_t addr;
    switch (layout) {
      case Layout::kBtree:
        addr = kBtreeBase + static_cast<std::uint64_t>(btree_levels - 1) * kBtreeLevelStride +
               pos * 64;
        break;
      case Layout::kHash:
        addr = kPayloadBase + pos * 64;
        break;
      case Layout::kChase:
        addr = kHeapBase + pos * 64;
        break;
      case Layout::kGraph:
        addr = kGraphBase + pos * 64;
        break;
      case Layout::kDirect:
      default:
        addr = kArrayBase + pos * 64;
        break;
    }
    out.push_back({instr, kPcBase + pc_slot * 0x40 + 8, addr, false});
    instr += 3;
  }
};

// ------------------------------------------------------------ family builders

/// Key-stream family. Plain families draw keys from one pinned sampler;
/// ycsb-a..f are op mixes (per-mille thresholds, drawn with one bounded
/// integer per op) over a scrambled-zipfian / latest request distribution.
enum class Family {
  kZipfian,
  kScrambled,
  kLatest,
  kExponential,
  kUniform,
  kSequential,
  kYcsbA,
  kYcsbB,
  kYcsbC,
  kYcsbD,
  kYcsbE,
  kYcsbF,
};

const std::vector<std::pair<std::string, Family>>& family_table() {
  static const std::vector<std::pair<std::string, Family>> table = {
      {"zipfian", Family::kZipfian},   {"scrambled", Family::kScrambled},
      {"scrambled-zipfian", Family::kScrambled},  // YCSB's canonical name
      {"latest", Family::kLatest},     {"exponential", Family::kExponential},
      {"uniform", Family::kUniform},   {"sequential", Family::kSequential},
      {"ycsb-a", Family::kYcsbA},      {"ycsb-b", Family::kYcsbB},
      {"ycsb-c", Family::kYcsbC},      {"ycsb-d", Family::kYcsbD},
      {"ycsb-e", Family::kYcsbE},      {"ycsb-f", Family::kYcsbF},
  };
  return table;
}

bool is_ycsb(Family f) { return f >= Family::kYcsbA; }

/// Fully-resolved workload configuration captured by the generator closure.
struct SyntheticConfig {
  Family family = Family::kZipfian;
  Layout layout = Layout::kDirect;
  std::uint64_t items = 0;        ///< footprint / 64
  double theta = common::ZipfianSampler::kDefaultTheta;
  double exp_mean = 0.0;          ///< exponential: mean key offset
  std::uint64_t stride = 1;       ///< sequential: lines per step
  std::uint64_t scan_max = 16;    ///< ycsb-e: max keys per scan
  double write_frac = 0.0;        ///< plain families: update fraction
  bool seed_override = false;
  std::uint64_t seed = 0;
};

/// YCSB A-F op mixes as per-mille thresholds (read / update / insert /
/// scan / read-modify-write), matching the canonical workload definitions.
struct OpMix {
  std::uint32_t read = 0, update = 0, insert = 0, scan = 0, rmw = 0;
};

OpMix mix_for(Family f) {
  switch (f) {
    case Family::kYcsbA: return {500, 500, 0, 0, 0};
    case Family::kYcsbB: return {950, 50, 0, 0, 0};
    case Family::kYcsbC: return {1000, 0, 0, 0, 0};
    case Family::kYcsbD: return {950, 0, 50, 0, 0};  // reads follow "latest"
    case Family::kYcsbE: return {0, 0, 50, 950, 0};
    case Family::kYcsbF: return {500, 0, 0, 0, 500};
    default: return {1000, 0, 0, 0, 0};
  }
}

// PC-slot layout: op kinds get disjoint slots so each op type looks like a
// distinct instruction neighborhood.
constexpr std::uint64_t kSlotRead = 0, kSlotUpdate = 1, kSlotInsert = 2, kSlotScan = 3,
                        kSlotRmw = 4;

MemoryTrace generate_synthetic(const SyntheticConfig& cfg, std::size_t n, std::uint64_t seed) {
  if (cfg.seed_override) seed = cfg.seed;
  common::Rng rng(common::derive_seed(seed, 0x77));
  LayoutMapper mapper(cfg.layout, cfg.items);

  MemoryTrace out;
  out.reserve(n + 8);
  std::uint64_t instr = 1;

  if (!is_ycsb(cfg.family)) {
    // Plain key stream: one sampler, one op per key.
    common::ZipfianSampler zipf(cfg.items, cfg.theta);
    common::ScrambledZipfianSampler scrambled(cfg.items, cfg.theta);
    common::LatestSampler latest(cfg.items, cfg.theta);
    common::ExponentialSampler expo(cfg.items, cfg.exp_mean);
    std::uint64_t step = 0;
    while (out.size() < n) {
      std::uint64_t key = 0;
      switch (cfg.family) {
        case Family::kZipfian: key = zipf.next(rng); break;
        case Family::kScrambled: key = scrambled.next(rng); break;
        case Family::kLatest: key = latest.next(rng, cfg.items); break;
        case Family::kExponential: key = expo.next(rng); break;
        case Family::kUniform: key = rng.below(cfg.items); break;
        case Family::kSequential: key = (step * cfg.stride) % cfg.items; break;
        default: break;
      }
      ++step;
      const bool write = cfg.write_frac > 0.0 && rng.bernoulli(cfg.write_frac);
      mapper.emit(out, instr, key, write, write ? kSlotUpdate : kSlotRead);
    }
  } else {
    const OpMix mix = mix_for(cfg.family);
    const std::uint32_t t_read = mix.read;
    const std::uint32_t t_update = t_read + mix.update;
    const std::uint32_t t_insert = t_update + mix.insert;
    const std::uint32_t t_scan = t_insert + mix.scan;
    common::ScrambledZipfianSampler request(cfg.items, cfg.theta);
    common::LatestSampler latest(cfg.items, cfg.theta);
    // D/E grow the key space by inserting; the layout folds grown keys back
    // into the footprint, so the address region stays bounded.
    std::uint64_t record_count = cfg.items;
    while (out.size() < n) {
      const std::uint32_t r = static_cast<std::uint32_t>(rng.below(1000));
      if (r < t_read) {
        const std::uint64_t key = cfg.family == Family::kYcsbD
                                      ? latest.next(rng, record_count)
                                      : request.next(rng);
        mapper.emit(out, instr, key, false, kSlotRead);
      } else if (r < t_update) {
        mapper.emit(out, instr, request.next(rng), true, kSlotUpdate);
      } else if (r < t_insert) {
        mapper.emit(out, instr, record_count++, true, kSlotInsert);
      } else if (r < t_scan) {
        const std::uint64_t start = request.next(rng);
        const std::uint64_t len = 1 + rng.below(cfg.scan_max);
        mapper.emit(out, instr, start, false, kSlotScan);  // descent
        for (std::uint64_t i = 1; i < len; ++i) {
          mapper.emit_scan_step(out, instr, start + i, kSlotScan);
        }
      } else {
        const std::uint64_t key = request.next(rng);
        mapper.emit(out, instr, key, false, kSlotRmw);
        mapper.emit(out, instr, key, true, kSlotRmw);
      }
    }
  }
  out.resize(n);  // the last op may have overshot by a few burst accesses
  return out;
}

Workload build_synthetic(WorkloadSpec spec) {
  SyntheticConfig cfg;
  bool known = false;
  for (const auto& [name, family] : family_table()) {
    if (name == spec.family()) {
      cfg.family = family;
      known = true;
      break;
    }
  }
  if (!known) {
    std::string families;
    for (const auto& [name, f] : family_table()) families += name + "|";
    families.pop_back();
    bad_spec("unknown family '" + spec.family() + "' (" + families + ")");
  }

  const std::uint64_t footprint = spec.get_size("footprint", 64ULL << 20);
  if (footprint < 64 * 64) bad_spec(spec.family() + ": footprint must be at least 4K");
  cfg.items = footprint / 64;
  cfg.layout = layout_from_name(
      lower(spec.get_string("layout", is_ycsb(cfg.family) ? "hash" : "direct")));
  cfg.theta = spec.get_double("theta", common::ZipfianSampler::kDefaultTheta);
  if (cfg.theta <= 0.0 || cfg.theta >= 1.0) {
    bad_spec(spec.family() + ": theta must be in (0, 1)");
  }
  if (cfg.family == Family::kExponential) {
    cfg.exp_mean = spec.get_double("mean", static_cast<double>(cfg.items) / 10.0);
    if (cfg.exp_mean <= 0.0) bad_spec("exponential: mean must be > 0");
  }
  if (cfg.family == Family::kSequential) {
    cfg.stride = spec.get_size("stride", 1);
    if (cfg.stride == 0) bad_spec("sequential: stride must be > 0");
  }
  if (cfg.family == Family::kYcsbE) {
    cfg.scan_max = spec.get_size("scan", 16);
    if (cfg.scan_max == 0) bad_spec("ycsb-e: scan must be > 0");
  }
  if (!is_ycsb(cfg.family)) {
    cfg.write_frac = spec.get_double("write", 0.0);
    if (cfg.write_frac < 0.0 || cfg.write_frac > 1.0) {
      bad_spec(spec.family() + ": write must be in [0, 1]");
    }
  }
  if (spec.has("seed")) {
    cfg.seed_override = true;
    cfg.seed = spec.get_size("seed", 0);
  }
  const std::string label = spec.get_string("label", "");

  const std::vector<std::string> unused = spec.unused_keys();
  if (!unused.empty()) {
    std::string keys;
    for (const std::string& k : unused) keys += (keys.empty() ? "" : ", ") + k;
    bad_spec(spec.family() + ": unknown parameter(s): " + keys);
  }

  const std::string name = sanitize_name(label.empty() ? spec.family() : label);
  const std::string canonical = "trace:" + spec.canonical();
  return Workload(name, canonical,
                  [cfg](std::size_t n, std::uint64_t seed) {
                    return generate_synthetic(cfg, n, seed);
                  });
}

Workload build_tracefile(WorkloadSpec spec) {
  const std::string path = spec.get_string("path", "");
  if (path.empty()) bad_spec("tracefile: missing required parameter 'path'");
  const std::string label = spec.get_string("label", "");
  const std::vector<std::string> unused = spec.unused_keys();
  if (!unused.empty()) {
    std::string keys;
    for (const std::string& k : unused) keys += (keys.empty() ? "" : ", ") + k;
    bad_spec("tracefile: unknown parameter(s): " + keys);
  }
  std::string name = label;
  if (name.empty()) {
    // Default display name: the file's stem.
    const std::size_t slash = path.find_last_of("/\\");
    name = slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = name.rfind('.');
    if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  }
  return Workload(sanitize_name(name), "tracefile:" + spec.canonical().substr(10),
                  [path](std::size_t n, std::uint64_t /*seed*/) {
                    MemoryTrace file = read_trace_file(path);
                    if (file.empty()) {
                      throw std::invalid_argument("tracefile workload: '" + path + "' is empty");
                    }
                    // Wrap shorter files: replay with continued instr_ids so
                    // downstream windows see a continuous stream.
                    MemoryTrace out;
                    out.reserve(n);
                    const std::uint64_t span = file.back().instr_id + 4;
                    for (std::size_t i = 0; out.size() < n; ++i) {
                      MemoryAccess a = file[i % file.size()];
                      a.instr_id += span * (i / file.size());
                      out.push_back(a);
                    }
                    return out;
                  });
}

}  // namespace

// -------------------------------------------------------------------- Workload

Workload::Workload(App app)
    : name_(app_name(app)), spec_(app_name(app)),
      gen_([app](std::size_t n, std::uint64_t seed) {
        return dart::trace::generate(app, n, seed);
      }) {}

Workload Workload::parse(const std::string& text) {
  const std::string s = trim(text);
  if (s.empty()) throw std::invalid_argument("workload spec: empty spec");
  if (lower(s.substr(0, 10)) == "tracefile:") {
    return build_tracefile(WorkloadSpec::parse("tracefile," + s.substr(10)));
  }
  if (lower(s.substr(0, 6)) == "trace:") {
    return build_synthetic(WorkloadSpec::parse(s.substr(6)));
  }
  // A bare name: Table IV app names take precedence, then family names.
  try {
    return Workload(app_from_name(s));
  } catch (const std::invalid_argument&) {
  }
  return build_synthetic(WorkloadSpec::parse(s));
}

std::vector<std::string> Workload::known_families() {
  std::vector<std::string> names;
  for (const auto& [name, f] : family_table()) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

MemoryTrace Workload::generate(std::size_t n, std::uint64_t seed) const {
  return gen_(n, seed);
}

std::vector<Workload> parse_workload_list(const std::string& text) {
  // Semicolons always separate; commas also separate when the list carries
  // no parameters (legacy "mcf,gcc" app lists keep working).
  std::vector<std::string> specs;
  const bool has_params = text.find('=') != std::string::npos ||
                          text.find(':') != std::string::npos ||
                          text.find(';') != std::string::npos;
  const char sep = has_params ? ';' : ',';
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    const std::string item = trim(text.substr(start, end - start));
    start = end + 1;
    if (!item.empty()) specs.push_back(item);
  }
  std::vector<Workload> out;
  out.reserve(specs.size());
  for (const std::string& s : specs) out.push_back(Workload::parse(s));
  return out;
}

std::uint64_t trace_content_hash(const MemoryTrace& trace) {
  // Hash in bounded chunks through the trace-file record encoding, so the
  // hash is exactly the FNV-1a of the .dtrc record region.
  std::uint64_t h = io::kFnv1aBasis;
  io::ByteWriter w;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const MemoryAccess& a = trace[i];
    w.u64(a.instr_id);
    w.u64(a.pc);
    w.u64(a.addr);
    w.u8(a.is_write ? 1 : 0);
    if (w.size() >= 1 << 16 || i + 1 == trace.size()) {
      h = io::fnv1a64(w.bytes().data(), w.size(), h);
      w = io::ByteWriter();
    }
  }
  return h;
}

}  // namespace dart::trace
