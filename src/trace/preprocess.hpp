// Trace preprocessing (the paper's §VI-A, following TransFetch):
//  * Segmented address input — a block address is split into S segments of
//    `segment_bits` bits each, mapping a T-length history to a T x S matrix.
//  * Delta bitmap labels — bit j of the DO-wide bitmap is set when the block
//    delta (future block - current block) equals j - DO/2 for some access
//    within the look-forward window.
#pragma once

#include <cstdint>

#include "nn/dataset.hpp"
#include "trace/trace.hpp"

namespace dart::trace {

struct PreprocessOptions {
  std::size_t history = 8;        ///< T — input history length
  std::size_t segment_bits = 6;   ///< c — bits per segment
  std::size_t addr_segments = 8;  ///< S for block addresses (covers 48 bits)
  std::size_t pc_segments = 8;    ///< S for program counters
  std::size_t bitmap_size = 128;  ///< DO — delta bitmap width (deltas in [-DO/2, DO/2))
  std::size_t lookforward = 8;    ///< window of future accesses labeled
  std::size_t max_samples = 0;    ///< 0 = unlimited
};

/// Splits `value` into `segments` chunks of `bits` bits (LSB first) and
/// normalizes each to [0, 1]. Writes `segments` floats to `out`.
void segment_value(std::uint64_t value, std::size_t segments, std::size_t bits, float* out);

/// Builds the supervised dataset from a trace. Windows whose look-forward
/// contains no in-range delta get an all-zero bitmap (kept: the model must
/// learn to stay silent on them).
nn::Dataset make_dataset(const MemoryTrace& trace, const PreprocessOptions& options);

/// Delta -> bitmap bit index; returns -1 when out of range or zero.
int delta_to_bit(std::int64_t delta, std::size_t bitmap_size);

/// Bitmap bit index -> delta.
std::int64_t bit_to_delta(std::size_t bit, std::size_t bitmap_size);

}  // namespace dart::trace
