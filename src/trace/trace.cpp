#include "trace/trace.hpp"

#include <unordered_set>

namespace dart::trace {

TraceStats compute_stats(const MemoryTrace& trace) {
  TraceStats stats;
  stats.accesses = trace.size();
  std::unordered_set<std::uint64_t> blocks, pages;
  std::unordered_set<std::int64_t> deltas;
  blocks.reserve(trace.size());
  std::uint64_t prev_block = 0;
  bool have_prev = false;
  for (const auto& a : trace) {
    const std::uint64_t blk = block_of(a.addr);
    blocks.insert(blk);
    pages.insert(page_of(a.addr));
    if (have_prev) {
      deltas.insert(static_cast<std::int64_t>(blk) - static_cast<std::int64_t>(prev_block));
    }
    prev_block = blk;
    have_prev = true;
  }
  stats.unique_blocks = blocks.size();
  stats.unique_pages = pages.size();
  stats.unique_deltas = deltas.size();
  return stats;
}

}  // namespace dart::trace
