#include "trace/trace_file.hpp"

#include <cstring>

#include "io/bytes.hpp"

namespace dart::trace {

namespace {

/// Records per streaming batch: 4096 records = 100 KiB resident, far below
/// any realistic trace size, so memory stays flat no matter the file.
constexpr std::size_t kBatchRecords = 4096;

inline std::uint64_t le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void write_trace_file(const std::string& path, const MemoryTrace& trace) {
  io::ByteWriter w;
  w.u32(kTraceFileMagic);
  w.u32(kTraceFileVersion);
  w.u64(trace.size());
  const std::size_t records_begin = w.size();
  for (const MemoryAccess& a : trace) {
    w.u64(a.instr_id);
    w.u64(a.pc);
    w.u64(a.addr);
    w.u8(a.is_write ? 1 : 0);
  }
  w.u64(io::fnv1a64(w.bytes().data() + records_begin, w.size() - records_begin));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw io::ArtifactError("trace file: cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.size()));
  if (!out) throw io::ArtifactError("trace file: short write to '" + path + "'");
}

TraceFileReader::TraceFileReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary) {
  if (!in_) fail("cannot open");
  std::uint8_t header[kTraceFileHeaderBytes];
  in_.read(reinterpret_cast<char*>(header), sizeof(header));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    file_offset_ = static_cast<std::uint64_t>(in_.gcount());
    fail("truncated header (" + std::to_string(in_.gcount()) + " of " +
         std::to_string(sizeof(header)) + " bytes)");
  }
  if (le32(header) != kTraceFileMagic) fail("bad magic (not a .dtrc trace)");
  const std::uint32_t version = le32(header + 4);
  if (version != kTraceFileVersion) {
    file_offset_ = 4;
    fail("unsupported version " + std::to_string(version));
  }
  count_ = le64(header + 8);
  file_offset_ = kTraceFileHeaderBytes;
  // Validate the declared count against the actual file size before anyone
  // trusts it (read_trace_file reserves count records): a hostile or
  // corrupted header must fail here, not in an allocator.
  in_.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in_.tellg());
  const std::uint64_t max_records =
      (~0ULL - kTraceFileHeaderBytes - 8) / kTraceFileRecordBytes;
  if (count_ > max_records ||
      file_size != kTraceFileHeaderBytes + count_ * kTraceFileRecordBytes + 8) {
    file_offset_ = 8;  // the count field
    fail("header declares " + std::to_string(count_) + " records but file has " +
         std::to_string(file_size) + " bytes");
  }
  in_.seekg(kTraceFileHeaderBytes, std::ios::beg);
}

void TraceFileReader::fail(const std::string& what) const {
  throw io::ArtifactError("trace file '" + path_ + "': " + what + " at byte offset " +
                          std::to_string(file_offset_ + buf_pos_));
}

void TraceFileReader::fill_buffer() {
  file_offset_ += buffer_.size();
  const std::uint64_t left = count_ - consumed_;
  const std::size_t batch =
      static_cast<std::size_t>(left < kBatchRecords ? left : kBatchRecords);
  buffer_.resize(batch * kTraceFileRecordBytes);
  buf_pos_ = 0;
  in_.read(reinterpret_cast<char*>(buffer_.data()),
           static_cast<std::streamsize>(buffer_.size()));
  if (in_.gcount() != static_cast<std::streamsize>(buffer_.size())) {
    buf_pos_ = static_cast<std::size_t>(in_.gcount());
    fail("truncated record " + std::to_string(consumed_ + in_.gcount() / kTraceFileRecordBytes) +
         " of " + std::to_string(count_));
  }
  checksum_ = io::fnv1a64(buffer_.data(), buffer_.size(),
                          consumed_ == 0 ? io::kFnv1aBasis : checksum_);
}

bool TraceFileReader::next(MemoryAccess& out) {
  if (consumed_ == count_) return false;
  if (buf_pos_ == buffer_.size()) fill_buffer();
  const std::uint8_t* p = buffer_.data() + buf_pos_;
  out.instr_id = le64(p);
  out.pc = le64(p + 8);
  out.addr = le64(p + 16);
  const std::uint8_t flags = p[24];
  if (flags > 1) {
    buf_pos_ += 24;
    fail("corrupt flags byte " + std::to_string(static_cast<int>(flags)) + " in record " +
         std::to_string(consumed_));
  }
  out.is_write = flags != 0;
  buf_pos_ += kTraceFileRecordBytes;
  ++consumed_;
  if (consumed_ == count_) {
    // Trailer: the stored checksum, then nothing else.
    std::uint8_t trailer[8];
    in_.read(reinterpret_cast<char*>(trailer), sizeof(trailer));
    file_offset_ += buffer_.size();
    buf_pos_ = 0;
    if (in_.gcount() != static_cast<std::streamsize>(sizeof(trailer))) {
      fail("truncated checksum trailer");
    }
    const std::uint64_t expect = count_ == 0 ? io::fnv1a64(nullptr, 0) : checksum_;
    if (le64(trailer) != expect) fail("checksum mismatch (corrupt records)");
    char extra;
    if (in_.read(&extra, 1); in_.gcount() != 0) {
      file_offset_ += sizeof(trailer);
      fail("trailing garbage after checksum");
    }
  }
  return true;
}

MemoryTrace read_trace_file(const std::string& path) {
  TraceFileReader reader(path);
  MemoryTrace trace;
  trace.reserve(static_cast<std::size_t>(reader.count()));
  MemoryAccess a;
  while (reader.next(a)) trace.push_back(a);
  return trace;
}

}  // namespace dart::trace
