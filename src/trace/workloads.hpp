// YCSB-grade workload engine (DESIGN.md §12).
//
// A `Workload` is a named, deterministic source of memory-access traces: the
// eight Table IV app generators, a parameterized key-distribution family
// mapped onto an address-stream layout, or a ChampSim-style trace file. Every
// workload is described by a registry-style spec string mirroring the
// prefetcher grammar of sim/registry.hpp:
//
//     trace:zipfian,theta=0.99,footprint=64M,layout=hash,seed=42
//     trace:ycsb-b,footprint=1G
//     tracefile:path=traces/gcc.dtrc
//     605.mcf                          (legacy Table IV app names)
//
// Families: zipfian, scrambled, latest, exponential, uniform, sequential
// key streams plus the YCSB A-F op mixes. Key streams are drawn by the
// pinned samplers in common/rng.hpp and mapped onto one of five address
// layouts (hash-table probe, pointer-chase, B-tree scan, graph-walk, or
// direct array), so a "key" becomes the short burst of cache-line accesses a
// real KV/index structure would issue. Everything downstream — sweeps
// (core::ExperimentRunner), `dart_run --simulate`, and the serving load
// generator (serve::run_client_load) — consumes Workloads, so the same
// corpus drives all three. All draws route through common/rng.hpp +
// common/detmath.hpp: a (spec, n, seed) triple yields a bit-identical trace
// on every platform and standard library, pinned by golden content-hash
// tests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace dart::trace {

/// Parsed workload spec parameters: the `key=value` / bare-flag grammar of
/// sim::PrefetcherSpec, re-hosted here so the trace layer stays independent
/// of the simulator. Getters record consumed keys; `unused_keys` exposes
/// typos for rejection.
class WorkloadSpec {
 public:
  /// Parses "family[,key=value|flag]...". Throws std::invalid_argument on
  /// an empty family name or a malformed pair.
  static WorkloadSpec parse(const std::string& text);

  const std::string& family() const { return family_; }

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& fallback);
  /// Accepts K/M/G size suffixes ("64M" = 64·2^20). Throws on non-numbers.
  std::uint64_t get_size(const std::string& key, std::uint64_t fallback);
  double get_double(const std::string& key, double fallback);

  /// Keys present in the spec that no getter consumed (typo detection).
  std::vector<std::string> unused_keys() const;
  /// Canonical "family,k=v,..." form (keys sorted); parsing it round-trips.
  std::string canonical() const;

 private:
  std::string family_;
  std::map<std::string, std::string> params_;
  std::set<std::string> used_;
};

/// A named deterministic trace source. Value type: cheap to copy, carries a
/// shared generator closure. Replaces bare trace::App throughout the
/// pipeline; App converts implicitly so existing call sites keep working.
class Workload {
 public:
  Workload() : Workload(App::kGcc) {}
  /// A Table IV app as a workload (implicit: legacy call sites pass App).
  Workload(App app);  // NOLINT(google-explicit-constructor)

  /// Parses any accepted spec form: a Table IV app name ("605.mcf",
  /// "mcf"), "trace:<family>,k=v,...", "<family>,k=v,...", or
  /// "tracefile:path=...". Throws std::invalid_argument on unknown
  /// families/apps, malformed pairs, out-of-range parameters, or unused
  /// keys. Every spec accepts `label=<name>` to override the display name.
  static Workload parse(const std::string& spec);

  /// All synthetic family names ("zipfian", ..., "ycsb-f"), sorted.
  static std::vector<std::string> known_families();

  /// Display name; filesystem-safe by construction (used in artifact file
  /// names), e.g. "410.bwaves", "zipfian-theta0.99", "ycsb-b".
  const std::string& name() const { return name_; }
  /// Canonical spec string; Workload::parse(spec()) reproduces the
  /// workload. Cache keys serialize this.
  const std::string& spec() const { return spec_; }

  /// Generates `n` accesses deterministically for `seed` (a `seed=` spec
  /// parameter, when present, overrides the argument).
  MemoryTrace generate(std::size_t n, std::uint64_t seed) const;

  /// Internal: assembles a workload from a prebuilt generator closure. Used
  /// by the spec builders; prefer `parse` everywhere else.
  Workload(std::string name, std::string spec,
           std::function<MemoryTrace(std::size_t, std::uint64_t)> gen)
      : name_(std::move(name)), spec_(std::move(spec)), gen_(std::move(gen)) {}

 private:
  std::string name_;
  std::string spec_;
  std::function<MemoryTrace(std::size_t, std::uint64_t)> gen_;
};

/// Parses a ';'-separated workload spec list (DART_WORKLOADS,
/// DART_SERVE_WORKLOADS, CLI args); ','-separation also works when no spec
/// carries parameters, mirroring sim::split_spec_list.
std::vector<Workload> parse_workload_list(const std::string& text);

/// 64-bit FNV-1a content hash over the trace's records (little-endian
/// serialized, the trace-file record encoding). The quantity pinned by the
/// golden reproducibility tests and diffed across compilers by the CI
/// corpus-hash job.
std::uint64_t trace_content_hash(const MemoryTrace& trace);

}  // namespace dart::trace
