#include "sim/shard_replay.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "sim/workspace.hpp"

namespace dart::sim {

namespace {

/// Fieldwise saturating subtraction: every SimStats field is monotone in
/// the replayed prefix (the simulator is causal), so `a - b` never actually
/// saturates when `a` extends `b`'s input — the clamp only guards against
/// misuse.
SimStats stats_sub(const SimStats& a, const SimStats& b) {
  auto sub = [](std::uint64_t x, std::uint64_t y) { return x >= y ? x - y : 0; };
  SimStats d;
  d.instructions = sub(a.instructions, b.instructions);
  d.cycles = sub(a.cycles, b.cycles);
  d.llc_accesses = sub(a.llc_accesses, b.llc_accesses);
  d.llc_hits = sub(a.llc_hits, b.llc_hits);
  d.llc_demand_misses = sub(a.llc_demand_misses, b.llc_demand_misses);
  d.pf_issued = sub(a.pf_issued, b.pf_issued);
  d.pf_useful = sub(a.pf_useful, b.pf_useful);
  d.pf_late = sub(a.pf_late, b.pf_late);
  d.pf_dropped = sub(a.pf_dropped, b.pf_dropped);
  return d;
}

void stats_add(SimStats* acc, const SimStats& d) {
  acc->instructions += d.instructions;
  acc->cycles += d.cycles;
  acc->llc_accesses += d.llc_accesses;
  acc->llc_hits += d.llc_hits;
  acc->llc_demand_misses += d.llc_demand_misses;
  acc->pf_issued += d.pf_issued;
  acc->pf_useful += d.pf_useful;
  acc->pf_late += d.pf_late;
  acc->pf_dropped += d.pf_dropped;
}

SimStats replay_range(const SimConfig& config, const trace::MemoryTrace& trace,
                      const ShardPrefetcherFactory& factory, std::size_t begin, std::size_t end) {
  if (begin >= end) return SimStats{};
  const trace::MemoryTrace sub(trace.begin() + static_cast<std::ptrdiff_t>(begin),
                               trace.begin() + static_cast<std::ptrdiff_t>(end));
  std::unique_ptr<Prefetcher> pf = factory ? factory() : nullptr;
  Simulator simulator(config);
  return simulator.run(sub, pf.get(), thread_local_sim_workspace());
}

}  // namespace

ShardedStats run_sharded(const SimConfig& config, const trace::MemoryTrace& trace,
                         const ShardPrefetcherFactory& factory, const ShardReplayOptions& options) {
  ShardedStats out;
  const std::size_t n = trace.size();
  if (n == 0) return out;
  const std::size_t shards = std::max<std::size_t>(1, std::min(options.shards, n));
  const std::size_t chunk = (n + shards - 1) / shards;
  const bool full_warmup = options.warmup == kFullWarmup;

  out.shards.resize(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    ShardSlice& s = out.shards[i];
    s.begin = std::min(n, i * chunk);
    s.end = std::min(n, s.begin + chunk);
    s.warm_begin = full_warmup ? 0 : (s.begin > options.warmup ? s.begin - options.warmup : 0);
  }

  // Per-shard replay. In full-prefix mode each shard runs [0, end) once and
  // stores the prefix stats; the consecutive differences are taken in the
  // pinned merge below (shard i-1's prefix is exactly shard i's warmup, so
  // no second run is needed). In partial mode each shard runs its own
  // warmup window and its full window, independently of every other shard.
  std::vector<SimStats> prefix(shards);  // full-warmup mode: S(0, end_i)
  auto run_shard = [&](std::size_t i) {
    ShardSlice& s = out.shards[i];
    if (full_warmup) {
      prefix[i] = replay_range(config, trace, factory, 0, s.end);
    } else {
      const SimStats warm = replay_range(config, trace, factory, s.warm_begin, s.begin);
      const SimStats full = replay_range(config, trace, factory, s.warm_begin, s.end);
      s.contribution = stats_sub(full, warm);
    }
  };
  if (options.parallel && shards > 1) {
    common::parallel_for_each(shards, run_shard, /*min_grain=*/1);
  } else {
    for (std::size_t i = 0; i < shards; ++i) run_shard(i);
  }

  // Pinned deterministic merge: shard order, always. In full-warmup mode
  // the consecutive prefix differences telescope, so the merged stats equal
  // the unsharded replay bit-for-bit on every field.
  for (std::size_t i = 0; i < shards; ++i) {
    ShardSlice& s = out.shards[i];
    if (full_warmup) {
      s.contribution = i == 0 ? prefix[0] : stats_sub(prefix[i], prefix[i - 1]);
    }
    stats_add(&out.merged, s.contribution);
  }
  if (!full_warmup) {
    // The global instruction span is known exactly regardless of warmup
    // quality; only the cache-state-dependent counters carry warmup error.
    out.merged.instructions = trace.back().instr_id - trace.front().instr_id + 1;
  }
  return out;
}

}  // namespace dart::sim
