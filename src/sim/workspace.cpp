#include "sim/workspace.hpp"

namespace dart::sim {

SimWorkspace& thread_local_sim_workspace() {
  thread_local SimWorkspace ws;
  return ws;
}

}  // namespace dart::sim
