#include "sim/registry.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace dart::sim {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Display-name decorator: forwards everything to the wrapped prefetcher
/// but reports a caller-chosen name (the spec's `label=` parameter), so
/// parameter sweeps over one prefetcher type stay distinguishable.
class RelabeledPrefetcher final : public Prefetcher {
 public:
  RelabeledPrefetcher(std::unique_ptr<Prefetcher> inner, std::string label)
      : inner_(std::move(inner)), label_(std::move(label)) {}

  void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                 std::vector<std::uint64_t>& out) override {
    inner_->on_access(block, pc, hit, cycle, out);
  }
  void on_fill(std::uint64_t block, bool was_prefetch) override {
    inner_->on_fill(block, was_prefetch);
  }
  std::size_t prediction_latency() const override { return inner_->prediction_latency(); }
  std::size_t storage_bytes() const override { return inner_->storage_bytes(); }
  bool shares_mutable_model() const override { return inner_->shares_mutable_model(); }
  std::string name() const override { return label_; }

 private:
  std::unique_ptr<Prefetcher> inner_;
  std::string label_;
};

}  // namespace

// ------------------------------------------------------------ PrefetcherSpec

PrefetcherSpec PrefetcherSpec::parse(const std::string& text) {
  PrefetcherSpec spec;
  spec.text_ = trim(text);
  const std::size_t colon = spec.text_.find(':');
  spec.name_ = lower(trim(spec.text_.substr(0, colon)));
  if (spec.name_.empty()) {
    throw std::invalid_argument("prefetcher spec '" + text + "' has an empty name");
  }
  if (colon == std::string::npos) return spec;

  std::stringstream params(spec.text_.substr(colon + 1));
  std::string item;
  while (std::getline(params, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      spec.params_[lower(item)] = "1";  // bare flag
      continue;
    }
    const std::string key = lower(trim(item.substr(0, eq)));
    const std::string value = trim(item.substr(eq + 1));
    if (key.empty() || value.empty()) {
      throw std::invalid_argument("prefetcher spec '" + text + "': malformed parameter '" +
                                  item + "'");
    }
    spec.params_[key] = value;
  }
  return spec;
}

bool PrefetcherSpec::has(const std::string& key) const {
  return params_.count(lower(key)) != 0;
}

std::string PrefetcherSpec::get_string(const std::string& key, const std::string& fallback) {
  const std::string k = lower(key);
  used_.insert(k);
  auto it = params_.find(k);
  return it == params_.end() ? fallback : it->second;
}

std::size_t PrefetcherSpec::get_uint(const std::string& key, std::size_t fallback) {
  const std::string v = get_string(key, "");
  if (v.empty()) return fallback;
  try {
    // std::stoull silently wraps negative input to huge values.
    if (v[0] == '-' || v[0] == '+') throw std::invalid_argument(v);
    std::size_t pos = 0;
    const unsigned long long parsed = std::stoull(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return static_cast<std::size_t>(parsed);
  } catch (const std::exception&) {
    throw std::invalid_argument("prefetcher spec '" + text_ + "': parameter '" + key +
                                "' expects an integer, got '" + v + "'");
  }
}

double PrefetcherSpec::get_double(const std::string& key, double fallback) {
  const std::string v = get_string(key, "");
  if (v.empty()) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("prefetcher spec '" + text_ + "': parameter '" + key +
                                "' expects a number, got '" + v + "'");
  }
}

bool PrefetcherSpec::get_flag(const std::string& key, bool fallback) {
  const std::string v = lower(get_string(key, ""));
  if (v.empty()) return fallback;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("prefetcher spec '" + text_ + "': parameter '" + key +
                              "' expects a boolean, got '" + v + "'");
}

void PrefetcherSpec::set_default(const std::string& key, const std::string& value) {
  params_.emplace(lower(key), value);
}

std::vector<std::string> PrefetcherSpec::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : params_) {
    if (used_.count(key) == 0) out.push_back(key);
  }
  return out;
}

std::string PrefetcherSpec::canonical() const {
  std::string out = name_;
  char sep = ':';
  for (const auto& [key, value] : params_) {  // std::map: already key-sorted
    out += sep;
    out += key + "=" + value;
    sep = ',';
  }
  return out;
}

// -------------------------------------------------------- PrefetcherRegistry

PrefetcherRegistry& PrefetcherRegistry::instance() {
  static PrefetcherRegistry* registry = [] {
    auto* r = new PrefetcherRegistry();
    register_rule_based_prefetchers(*r);
    register_model_backed_prefetchers(*r);
    return r;
  }();
  return *registry;
}

void PrefetcherRegistry::add(const std::string& name, PrefetcherFactory factory) {
  std::lock_guard lock(mu_);
  factories_[lower(name)] = std::move(factory);
}

void PrefetcherRegistry::add_alias(const std::string& alias, const std::string& target,
                                   const std::map<std::string, std::string>& implied) {
  std::lock_guard lock(mu_);
  aliases_[lower(alias)] = Alias{lower(target), implied};
}

bool PrefetcherRegistry::contains(const std::string& name) const {
  std::lock_guard lock(mu_);
  const std::string n = lower(name);
  return factories_.count(n) != 0 || aliases_.count(n) != 0;
}

std::vector<std::string> PrefetcherRegistry::known_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, factory] : factories_) names.push_back(name);
  for (const auto& [name, alias] : aliases_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void PrefetcherRegistry::validate(const std::string& spec_text) const {
  const PrefetcherSpec spec = PrefetcherSpec::parse(spec_text);
  if (!contains(spec.name())) {
    std::string known;
    for (const auto& n : known_names()) known += (known.empty() ? "" : ", ") + n;
    // A comma inside the name means a ','-separated list of specs where at
    // least one carries parameters — only ';' can separate those.
    const std::string hint = spec.name().find(',') != std::string::npos
                                 ? " (separate multiple parameterized specs with ';')"
                                 : "";
    throw std::invalid_argument("unknown prefetcher '" + spec.name() + "' in spec '" +
                                spec_text + "'" + hint + "; known: " + known);
  }
}

std::unique_ptr<Prefetcher> PrefetcherRegistry::make(const std::string& spec_text,
                                                     PrefetcherContext& context) const {
  validate(spec_text);
  PrefetcherSpec spec = PrefetcherSpec::parse(spec_text);
  std::string name = spec.name();

  PrefetcherFactory factory;
  {
    std::lock_guard lock(mu_);
    auto alias = aliases_.find(name);
    if (alias != aliases_.end()) {
      for (const auto& [key, value] : alias->second.implied) spec.set_default(key, value);
      name = alias->second.target;
    }
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      throw std::invalid_argument("prefetcher alias '" + spec.name() +
                                  "' targets unregistered '" + name + "'");
    }
    factory = it->second;
  }

  const std::string label = spec.get_string("label", "");
  std::unique_ptr<Prefetcher> pf = factory(spec, context);

  const std::vector<std::string> unused = spec.unused_keys();
  if (!unused.empty()) {
    std::string keys;
    for (const auto& k : unused) keys += (keys.empty() ? "" : ", ") + k;
    throw std::invalid_argument("prefetcher spec '" + spec_text +
                                "': unknown parameter(s): " + keys);
  }
  if (!label.empty()) pf = std::make_unique<RelabeledPrefetcher>(std::move(pf), label);
  return pf;
}

std::unique_ptr<Prefetcher> make_prefetcher(const std::string& spec_text,
                                            PrefetcherContext& context) {
  return PrefetcherRegistry::instance().make(spec_text, context);
}

std::unique_ptr<Prefetcher> make_prefetcher(const std::string& spec_text) {
  PrefetcherContext context;
  return PrefetcherRegistry::instance().make(spec_text, context);
}

std::vector<std::string> split_spec_list(const std::string& text) {
  // Commas split only parameter-free legacy name lists; any ';' or ':'
  // means spec grammar, where ';' is the separator.
  const bool legacy_names_only =
      text.find(';') == std::string::npos && text.find(':') == std::string::npos;
  const char delim = legacy_names_only ? ',' : ';';
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, delim)) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace dart::sim
