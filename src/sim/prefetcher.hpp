// LLC prefetcher interface (Fig. 3's integration point).
//
// The simulator calls `on_access` for every LLC demand access; the
// prefetcher may append candidate block addresses to `out`. Issued
// predictions become visible to the cache only after
// `prediction_latency()` cycles — this is how the evaluation separates
// practical prefetchers from the zero-latency "-I" ideals (Table IX).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dart::sim {

/// Abstract LLC prefetcher driven by the timing simulator (Fig. 3's
/// integration point). Implementations observe demand accesses/fills and
/// emit candidate block addresses; the simulator applies queueing, latency,
/// and degree limits. Instances are constructed from spec strings through
/// `sim::PrefetcherRegistry` (registry.hpp) — new prefetchers should
/// register a factory there rather than extend any driver.
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  /// Observes an LLC demand access (post L1/L2 filtering).
  /// `block` is the 64-byte line index, `hit` the LLC outcome, `cycle` the
  /// current simulation cycle (used by latency-bound predictors to throttle
  /// their trigger rate to one outstanding prediction).
  virtual void on_access(std::uint64_t block, std::uint64_t pc, bool hit, std::uint64_t cycle,
                         std::vector<std::uint64_t>& out) = 0;

  /// Called when a line fills the LLC (demand or prefetch) — several
  /// rule-based prefetchers (BO) train on fills.
  virtual void on_fill(std::uint64_t block, bool was_prefetch) {
    (void)block;
    (void)was_prefetch;
  }

  /// True when `on_fill` observes fill events. Prefetchers whose `on_fill`
  /// is a no-op may return false so the simulator skips demand-fill event
  /// queueing entirely (observationally identical, cheaper replay). The
  /// conservative default keeps any overridden `on_fill` working.
  virtual bool trains_on_fill() const { return true; }

  /// Cycles between a trigger access and the prefetch becoming issueable.
  virtual std::size_t prediction_latency() const { return 0; }

  /// Metadata/model storage footprint in bytes (Table IX column).
  virtual std::size_t storage_bytes() const = 0;

  /// True when the prediction path mutates state shared with other
  /// prefetcher instances (e.g. an activation-caching NN model used by both
  /// the practical and ideal variants). Schedulers running cells
  /// concurrently must serialize simulations of such prefetchers
  /// (core::ExperimentRunner takes the per-app model lock), and the
  /// serving layer cannot deploy them at all: serve shards share ONE
  /// predictor instance across threads with no serialization, which is
  /// sound only for the const tabular query path. serve/shard.cpp pins
  /// that requirement with a compile-time audit, and
  /// tests/serve_server_test.cpp asserts the DART adapter stays shareable
  /// while the NN baselines keep reporting that they are not.
  virtual bool shares_mutable_model() const { return false; }

  /// Display name used in result tables ("BO", "DART-L", ...). Distinct
  /// configurations may share a name; reporting layers disambiguate by
  /// spec string when they collide.
  virtual std::string name() const = 0;
};

}  // namespace dart::sim
