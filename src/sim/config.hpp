// Simulation parameters (the paper's Table III). One core is simulated per
// workload (the paper reports per-application results).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dart::sim {

struct SimConfig {
  // CPU: 4 GHz, 4-wide OoO, 256-entry ROB, 64-entry LSQ.
  std::size_t issue_width = 4;
  std::size_t rob_entries = 256;
  std::size_t lsq_entries = 64;

  // L1 D-cache: 64 KB, 12-way, 16-entry MSHR, 5-cycle.
  std::size_t l1_size = 64 * 1024;
  std::size_t l1_ways = 12;  // rounded to 16 sets x 12 ways? kept associative
  std::size_t l1_mshrs = 16;
  std::size_t l1_latency = 5;

  // L2: 1 MB, 8-way, 32-entry MSHR, 10-cycle.
  std::size_t l2_size = 1024 * 1024;
  std::size_t l2_ways = 8;
  std::size_t l2_mshrs = 32;
  std::size_t l2_latency = 10;

  // LLC: 8 MB, 16-way, 64-entry MSHR, 20-cycle.
  std::size_t llc_size = 8 * 1024 * 1024;
  std::size_t llc_ways = 16;
  std::size_t llc_mshrs = 64;
  std::size_t llc_latency = 20;

  // DRAM: tRP = tRCD = tCAS = 12.5 ns at 4 GHz -> 50 cycles each; a row miss
  // pays all three. We charge a flat average access latency.
  std::size_t dram_latency = 150;

  // Prefetch engine limits.
  std::size_t prefetch_queue = 128;  ///< max in-flight prefetches
  std::size_t max_degree = 16;       ///< prefetches accepted per trigger
};

}  // namespace dart::sim
