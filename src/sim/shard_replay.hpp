// Sharded trace replay with deterministic merge (DESIGN.md §13).
//
// Splits a trace into K contiguous shards, replays each on its own worker
// with a fresh prefetcher instance, and merges the per-shard counter deltas
// by a pinned in-order reduction. The merge contract rests on one property
// the simulator already guarantees: replay is a deterministic, causal
// function of its input sequence — the stats after processing the first k
// accesses of a given input depend only on those k accesses.
//
// Two warmup modes:
//
//  * Full-prefix warmup (`warmup == kFullWarmup`, the default): shard i
//    replays the whole prefix [0, end_i) once and its contribution is the
//    consecutive difference S(end_i) - S(end_{i-1}). Because the windows
//    are contiguous, the pinned sum telescopes: merged == S(n) BIT-EXACTLY
//    for every field, including the non-additive `cycles` and
//    `instructions`. This is the verification mode — no wall-clock win
//    (the last shard replays everything), but the merge is provably exact
//    and tests assert it.
//
//  * Partial warmup (`warmup == W`): shard i replays [begin_i - W, end_i)
//    and subtracts its own warmup run over [begin_i - W, begin_i), so only
//    ~n/K + 2W accesses are simulated per shard — the scale-out mode. The
//    warmup approximates, but does not equal, the true cache/prefetcher
//    state at begin_i, so merged counters carry a bounded warmup error.
//    `instructions` is recomputed from the global trace endpoints (exact by
//    construction) and `cycles` is the sum of window deltas (approximate);
//    accuracy/coverage ratios converge to the unsharded values as W grows.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "sim/prefetcher.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace dart::sim {

/// Sentinel warmup meaning "replay the full prefix" (the exact mode).
inline constexpr std::size_t kFullWarmup = static_cast<std::size_t>(-1);

/// Shard plan knobs.
struct ShardReplayOptions {
  /// Number of contiguous shards (clamped to [1, trace size]).
  std::size_t shards = 1;
  /// Warmup accesses replayed before each shard window to approximate the
  /// cache state at the window start; kFullWarmup = replay the full prefix
  /// (bit-exact merge, no speedup).
  std::size_t warmup = kFullWarmup;
  /// Fan the shards out on the shared thread pool (false = run in order;
  /// the merged result is identical either way).
  bool parallel = true;
};

/// One shard's window and its merged-in counter delta.
struct ShardSlice {
  std::size_t begin = 0;       ///< first trace index owned by this shard
  std::size_t end = 0;         ///< one past the last owned index
  std::size_t warm_begin = 0;  ///< first index actually replayed (warmup)
  SimStats contribution;       ///< window delta merged into the total
};

/// The pinned-merge result: the reduced totals plus per-shard deltas.
struct ShardedStats {
  SimStats merged;                 ///< in-order sum of shard contributions
  std::vector<ShardSlice> shards;  ///< per-shard windows and deltas
};

/// Builds one fresh prefetcher per replay. Must be callable concurrently;
/// each returned instance is owned by exactly one shard replay. A nullptr
/// return replays the baseline (no prefetcher).
using ShardPrefetcherFactory = std::function<std::unique_ptr<Prefetcher>()>;

/// Replays `trace` across `options.shards` contiguous shards and merges the
/// per-shard stats deltas by a pinned in-order reduction (shard 0 first,
/// always — thread scheduling can never reorder the merge). See the file
/// comment for the exactness contract per warmup mode.
ShardedStats run_sharded(const SimConfig& config, const trace::MemoryTrace& trace,
                         const ShardPrefetcherFactory& factory, const ShardReplayOptions& options);

}  // namespace dart::sim
