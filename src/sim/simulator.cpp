#include "sim/simulator.hpp"

namespace dart::sim {

namespace {

/// Front-end cycle of an instruction id: a shift when `issue_width` is a
/// power of two (every shipped config), one division otherwise. This runs
/// once per access, so the strength reduction is worth the branch.
struct WidthDiv {
  explicit WidthDiv(std::size_t w) : width(w) {
    if (w != 0 && (w & (w - 1)) == 0) {
      while ((std::size_t{1} << shift) < w) ++shift;
      pow2 = true;
    }
  }
  std::uint64_t operator()(std::uint64_t x) const { return pow2 ? x >> shift : x / width; }

  std::size_t width;
  unsigned shift = 0;
  bool pow2 = false;
};

}  // namespace

SimStats Simulator::run(const trace::MemoryTrace& trace, Prefetcher* prefetcher) {
  return run(trace, prefetcher, thread_local_sim_workspace());
}

SimStats Simulator::run(const trace::MemoryTrace& trace, Prefetcher* prefetcher,
                        SimWorkspace& ws) {
  SimStats stats;
  Cache& l1 = ws.l1.ensure(config_.l1_size, config_.l1_ways);
  Cache& l2 = ws.l2.ensure(config_.l2_size, config_.l2_ways);
  Cache& llc = ws.llc.ensure(config_.llc_size, config_.llc_ways);

  // In-order issue / commit bookkeeping: (instr_id, completion time) of
  // outstanding memory instructions, oldest first. Bounded by the LSQ.
  InstrRing& window = ws.window;
  window.reset(config_.lsq_entries > 0 ? config_.lsq_entries : 1);
  // Outstanding LLC->DRAM demand misses (completion times, time-ordered).
  TimeRing& mshr = ws.mshr;
  mshr.clear();
  // In-flight prefetches: block -> fill time + totally ordered fill queue.
  FlatMap64& inflight_pf = ws.inflight;
  inflight_pf.reset();
  FillRing& fill_queue = ws.fills;
  fill_queue.clear();
  // Demand fills notify the prefetcher when the line actually arrives, not
  // at issue time — BO's offset scoring depends on fill timing.
  FillRing& demand_fill_queue = ws.demand_fills;
  demand_fill_queue.clear();
  std::vector<std::uint64_t>& pf_candidates = ws.pf_candidates;
  // Demand-fill events exist only to train the prefetcher; skip the queue
  // when there is nobody to notify.
  const bool notify_fills = prefetcher != nullptr && prefetcher->trains_on_fill();

  std::uint64_t last_commit = 0;
  std::uint64_t prev_issue = 0;
  std::uint64_t fill_seq = 0;

  const WidthDiv front_end_cycle(config_.issue_width);
  const std::uint64_t hier_latency =
      config_.l1_latency + config_.l2_latency + config_.llc_latency;
  const std::uint64_t demand_miss_latency = hier_latency + config_.dram_latency;

  // Distance (in trace entries) at which upcoming cache sets are hinted to
  // the host CPU: far enough to cover host-memory latency with one
  // iteration of simulation work, near enough to stay timely.
  constexpr std::size_t kLookahead = 2;

  const std::size_t n = trace.size();
  for (std::size_t i = 0; i < n; ++i) {
    const trace::MemoryAccess& acc = trace[i];
    const std::uint64_t block = trace::block_of(acc.addr);

    if (i + kLookahead < n) {
      const std::uint64_t next = trace::block_of(trace[i + kLookahead].addr);
      l1.prefetch_set(next);
      l2.prefetch_set(next);
      llc.prefetch_set(next);
    }
    // The next pending prefetch fill will probe and insert into its LLC
    // set shortly; start pulling that set in as well.
    if (!fill_queue.empty()) llc.prefetch_set(fill_queue.top().block);

    // Earliest cycle this instruction could issue on a 4-wide front end,
    // respecting program order.
    std::uint64_t t = front_end_cycle(acc.instr_id);
    if (t < prev_issue) t = prev_issue;

    // ROB limit: the instruction `rob_entries` older must have committed.
    while (!window.empty() && window.front_id() + config_.rob_entries <= acc.instr_id) {
      if (window.front_complete() > t) t = window.front_complete();
      window.pop_front();
    }
    // LSQ limit: bounded outstanding memory instructions.
    while (!window.empty() && window.size() >= config_.lsq_entries) {
      if (window.front_complete() > t) t = window.front_complete();
      window.pop_front();
    }

    // Notify completed demand fills.
    if (notify_fills) {
      while (!demand_fill_queue.empty() && demand_fill_queue.top().time <= t) {
        prefetcher->on_fill(demand_fill_queue.top().block, /*was_prefetch=*/false);
        demand_fill_queue.pop();
      }
    }
    // Apply prefetch fills that have landed by now.
    while (!fill_queue.empty() && fill_queue.top().time <= t) {
      const FillEvent f = fill_queue.top();
      fill_queue.pop();
      const FlatMap64::Probe p = inflight_pf.probe(f.block);
      // A stale event (its prefetch was superseded or consumed) no longer
      // matches the in-flight fill time and is discarded.
      if (p.found && inflight_pf.value_at(p.slot) == f.time) {
        llc.insert(f.block, /*prefetched=*/true);
        if (prefetcher != nullptr) prefetcher->on_fill(f.block, /*was_prefetch=*/true);
        inflight_pf.erase_at(p.slot);
      }
    }

    // --- Cache lookups ------------------------------------------------------
    std::uint64_t complete;
    if (l1.access(block)) {
      complete = t + config_.l1_latency;
    } else if (l2.access(block)) {
      complete = t + config_.l1_latency + config_.l2_latency;
      l1.fill(block, false);
    } else {
      // The access reaches the LLC: the prefetcher observes it.
      ++stats.llc_accesses;
      const bool llc_hit = llc.access(block);
      if (llc_hit) {
        ++stats.llc_hits;
        if (llc.last_hit_was_useful_prefetch()) ++stats.pf_useful;
        complete = t + hier_latency;
        // Retire completed misses on the hit path too: a long hit run must
        // not preserve stale MSHR entries (`t` is monotone, so entries at
        // or before `t` can never delay a later miss).
        while (!mshr.empty() && mshr.top() <= t) mshr.pop();
      } else {
        const FlatMap64::Probe p = inflight_pf.probe(block);
        const bool in_flight = p.found;
        const std::uint64_t pf_fill =
            in_flight ? inflight_pf.value_at(p.slot) : 0;
        if (in_flight && pf_fill <= t + demand_miss_latency) {
          // Late-but-useful prefetch: the line arrives sooner than a fresh
          // demand fetch would, so the demand waits for the fill.
          ++stats.pf_late;
          complete = t + hier_latency;
          if (pf_fill > complete) complete = pf_fill;
          llc.fill(block, false);
          inflight_pf.erase_at(p.slot);
        } else {
          // Too-late prefetch (fill would land after a demand fetch): the
          // demand issues its own DRAM access and the prefetch is wasted.
          if (in_flight) inflight_pf.erase_at(p.slot);
          // Full DRAM miss, gated by LLC MSHR availability.
          ++stats.llc_demand_misses;
          std::uint64_t issue = t;
          while (!mshr.empty() && mshr.size() >= config_.llc_mshrs) {
            if (mshr.top() > issue) issue = mshr.top();
            mshr.pop();
          }
          complete = issue + demand_miss_latency;
          mshr.push(complete);
          while (!mshr.empty() && mshr.top() <= t) mshr.pop();
          llc.fill(block, false);
          if (notify_fills) demand_fill_queue.push({complete, fill_seq++, block});
        }
        l2.fill(block, false);
        l1.fill(block, false);
      }

      // --- Prefetcher trigger ----------------------------------------------
      if (prefetcher != nullptr) {
        pf_candidates.clear();
        prefetcher->on_access(block, acc.pc, llc_hit, t, pf_candidates);
        // Overlap the admission loop's LLC duplicate probes: hint every
        // candidate's set before the first dependent load.
        for (std::uint64_t cand : pf_candidates) llc.prefetch_set(cand);
        const std::uint64_t ready = t + prefetcher->prediction_latency();
        std::size_t accepted = 0;
        for (std::uint64_t cand : pf_candidates) {
          if (accepted >= config_.max_degree) {
            ++stats.pf_dropped;
            continue;
          }
          if (llc.contains(cand)) {
            ++stats.pf_dropped;
            continue;
          }
          // Single probe: the duplicate check's miss position doubles as
          // the insert slot.
          const FlatMap64::Probe cp = inflight_pf.probe(cand);
          if (cp.found || inflight_pf.size() >= config_.prefetch_queue) {
            ++stats.pf_dropped;
            continue;
          }
          const std::uint64_t fill_time = ready + config_.dram_latency;
          inflight_pf.insert_at(cp, cand, fill_time);
          fill_queue.push({fill_time, fill_seq++, cand});
          ++stats.pf_issued;
          ++accepted;
        }
      }
    }

    window.push_back(acc.instr_id, complete);
    if (complete > last_commit) last_commit = complete;
    prev_issue = t;
  }

  if (!trace.empty()) {
    // Robust to traces whose ids do not start at zero: the id span of the
    // endpoints, inclusive.
    stats.instructions = trace.back().instr_id - trace.front().instr_id + 1;
  }
  const std::uint64_t front_end = front_end_cycle(stats.instructions);
  stats.cycles = last_commit > front_end ? last_commit : front_end;
  return stats;
}

trace::MemoryTrace extract_llc_trace(const trace::MemoryTrace& raw, const SimConfig& config) {
  return extract_llc_trace(raw, config, thread_local_sim_workspace());
}

trace::MemoryTrace extract_llc_trace(const trace::MemoryTrace& raw, const SimConfig& config,
                                     SimWorkspace& ws) {
  Cache& l1 = ws.l1.ensure(config.l1_size, config.l1_ways);
  Cache& l2 = ws.l2.ensure(config.l2_size, config.l2_ways);
  trace::MemoryTrace out;
  out.reserve(raw.size());
  constexpr std::size_t kLookahead = 2;
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n; ++i) {
    const trace::MemoryAccess& acc = raw[i];
    const std::uint64_t block = trace::block_of(acc.addr);
    if (i + kLookahead < n) {
      const std::uint64_t next = trace::block_of(raw[i + kLookahead].addr);
      l1.prefetch_set(next);
      l2.prefetch_set(next);
    }
    if (l1.access(block)) continue;
    if (l2.access(block)) {
      l1.fill(block, false);
      continue;
    }
    l2.fill(block, false);
    l1.fill(block, false);
    out.push_back(acc);
  }
  return out;
}

}  // namespace dart::sim
