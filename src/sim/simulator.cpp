#include "sim/simulator.hpp"

#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

namespace dart::sim {

namespace {

/// Pending prefetch fill, ordered by fill time.
struct PendingFill {
  std::uint64_t fill_time;
  std::uint64_t block;
  bool operator>(const PendingFill& o) const { return fill_time > o.fill_time; }
};

}  // namespace

SimStats Simulator::run(const trace::MemoryTrace& trace, Prefetcher* prefetcher) {
  SimStats stats;
  Cache l1(config_.l1_size, config_.l1_ways);
  Cache l2(config_.l2_size, config_.l2_ways);
  Cache llc(config_.llc_size, config_.llc_ways);

  // In-order issue / commit bookkeeping: (instr_id, completion time) of
  // outstanding memory instructions, oldest first.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> window;
  // Outstanding LLC->DRAM demand misses (completion times, min-heap).
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>, std::greater<>> mshr;
  // In-flight prefetches: block -> fill time + ordered fill queue.
  std::unordered_map<std::uint64_t, std::uint64_t> inflight_pf;
  std::priority_queue<PendingFill, std::vector<PendingFill>, std::greater<>> fill_queue;
  // Demand fills notify the prefetcher when the line actually arrives, not
  // at issue time — BO's offset scoring depends on fill timing.
  std::priority_queue<PendingFill, std::vector<PendingFill>, std::greater<>> demand_fill_queue;

  std::vector<std::uint64_t> pf_candidates;
  std::uint64_t last_commit = 0;
  std::uint64_t prev_issue = 0;

  const std::uint64_t demand_miss_latency =
      config_.l1_latency + config_.l2_latency + config_.llc_latency + config_.dram_latency;

  for (const auto& acc : trace) {
    const std::uint64_t block = trace::block_of(acc.addr);

    // Earliest cycle this instruction could issue on a 4-wide front end,
    // respecting program order.
    std::uint64_t t = acc.instr_id / config_.issue_width;
    if (t < prev_issue) t = prev_issue;

    // ROB limit: the instruction `rob_entries` older must have committed.
    while (!window.empty() && window.front().first + config_.rob_entries <= acc.instr_id) {
      t = std::max(t, window.front().second);
      window.pop_front();
    }
    // LSQ limit: bounded outstanding memory instructions.
    while (window.size() >= config_.lsq_entries) {
      t = std::max(t, window.front().second);
      window.pop_front();
    }

    // Notify completed demand fills.
    while (prefetcher != nullptr && !demand_fill_queue.empty() &&
           demand_fill_queue.top().fill_time <= t) {
      prefetcher->on_fill(demand_fill_queue.top().block, /*was_prefetch=*/false);
      demand_fill_queue.pop();
    }
    // Apply prefetch fills that have landed by now.
    while (!fill_queue.empty() && fill_queue.top().fill_time <= t) {
      const PendingFill f = fill_queue.top();
      fill_queue.pop();
      auto it = inflight_pf.find(f.block);
      if (it != inflight_pf.end() && it->second == f.fill_time) {
        llc.insert(f.block, /*prefetched=*/true);
        if (prefetcher != nullptr) prefetcher->on_fill(f.block, /*was_prefetch=*/true);
        inflight_pf.erase(it);
      }
    }

    // --- Cache lookups ------------------------------------------------------
    std::uint64_t complete;
    if (l1.access(block)) {
      complete = t + config_.l1_latency;
    } else if (l2.access(block)) {
      complete = t + config_.l1_latency + config_.l2_latency;
      l1.insert(block, false);
    } else {
      // The access reaches the LLC: the prefetcher observes it.
      ++stats.llc_accesses;
      const bool llc_hit = llc.access(block);
      if (llc_hit) {
        ++stats.llc_hits;
        if (llc.last_hit_was_useful_prefetch()) ++stats.pf_useful;
        complete = t + config_.l1_latency + config_.l2_latency + config_.llc_latency;
      } else {
        auto pf_it = inflight_pf.find(block);
        if (pf_it != inflight_pf.end() && pf_it->second <= t + demand_miss_latency) {
          // Late-but-useful prefetch: the line arrives sooner than a fresh
          // demand fetch would, so the demand waits for the fill.
          ++stats.pf_late;
          complete = std::max(
              t + config_.l1_latency + config_.l2_latency + config_.llc_latency,
              pf_it->second);
          llc.insert(block, false);
          inflight_pf.erase(pf_it);
        } else {
          // Too-late prefetch (fill would land after a demand fetch): the
          // demand issues its own DRAM access and the prefetch is wasted.
          if (pf_it != inflight_pf.end()) inflight_pf.erase(pf_it);
          // Full DRAM miss, gated by LLC MSHR availability.
          ++stats.llc_demand_misses;
          std::uint64_t issue = t;
          while (mshr.size() >= config_.llc_mshrs) {
            issue = std::max(issue, mshr.top());
            mshr.pop();
          }
          complete = issue + demand_miss_latency;
          mshr.push(complete);
          while (!mshr.empty() && mshr.top() <= t) mshr.pop();
          llc.insert(block, false);
          if (prefetcher != nullptr) demand_fill_queue.push({complete, block});
        }
        l2.insert(block, false);
        l1.insert(block, false);
      }

      // --- Prefetcher trigger ----------------------------------------------
      if (prefetcher != nullptr) {
        pf_candidates.clear();
        prefetcher->on_access(block, acc.pc, llc_hit, t, pf_candidates);
        const std::uint64_t ready = t + prefetcher->prediction_latency();
        std::size_t accepted = 0;
        for (std::uint64_t cand : pf_candidates) {
          if (accepted >= config_.max_degree) {
            ++stats.pf_dropped;
            continue;
          }
          if (llc.contains(cand) || inflight_pf.count(cand) != 0) {
            ++stats.pf_dropped;
            continue;
          }
          if (inflight_pf.size() >= config_.prefetch_queue) {
            ++stats.pf_dropped;
            continue;
          }
          const std::uint64_t fill_time = ready + config_.dram_latency;
          inflight_pf.emplace(cand, fill_time);
          fill_queue.push({fill_time, cand});
          ++stats.pf_issued;
          ++accepted;
        }
      }
    }

    window.emplace_back(acc.instr_id, complete);
    last_commit = std::max(last_commit, complete);
    prev_issue = t;
  }

  stats.instructions = trace.empty() ? 0 : trace.back().instr_id;
  const std::uint64_t front_end = stats.instructions / config_.issue_width;
  stats.cycles = std::max(last_commit, front_end);
  return stats;
}

trace::MemoryTrace extract_llc_trace(const trace::MemoryTrace& raw, const SimConfig& config) {
  Cache l1(config.l1_size, config.l1_ways);
  Cache l2(config.l2_size, config.l2_ways);
  trace::MemoryTrace out;
  for (const auto& acc : raw) {
    const std::uint64_t block = trace::block_of(acc.addr);
    if (l1.access(block)) continue;
    if (l2.access(block)) {
      l1.insert(block, false);
      continue;
    }
    l2.insert(block, false);
    l1.insert(block, false);
    out.push_back(acc);
  }
  return out;
}

}  // namespace dart::sim
