// Trace-driven timing simulator (ChampSim-style substrate, DESIGN.md §3).
//
// Models a 4-wide OoO core with a ROB/LSQ-limited memory window, a 3-level
// cache hierarchy with LLC MSHRs, a flat-latency DRAM, and an LLC prefetch
// engine with prediction-latency modeling. Deliberately simplified relative
// to ChampSim (no wrong path / branch predictor — inputs are memory access
// traces), but reproduces the mechanisms the paper's evaluation depends on:
// miss overlap bounded by ROB/MSHRs, prefetch timeliness as a function of
// predictor latency, and IPC sensitivity to LLC misses.
//
// The replay loop is the sweep bottleneck (every ExperimentRunner cell pays
// it in full), so its hot path is allocation-free: all mutable state lives
// in a reusable `SimWorkspace` (DESIGN.md §8), and the convenience
// overloads draw from the calling thread's workspace. Results are
// bit-identical to the straight-line reference implementation in
// tests/sim_reference_test.cpp.
#pragma once

#include <cstdint>

#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/prefetcher.hpp"
#include "sim/workspace.hpp"
#include "trace/trace.hpp"

namespace dart::sim {

struct SimStats {
  /// Instructions covered by the trace: `instr_id` span of its endpoints
  /// (+1), so traces whose ids do not start near zero still report a
  /// meaningful IPC.
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;

  std::uint64_t llc_accesses = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t llc_demand_misses = 0;  ///< demand accesses that paid DRAM

  std::uint64_t pf_issued = 0;
  std::uint64_t pf_useful = 0;   ///< demand hit on a prefetched resident line
  std::uint64_t pf_late = 0;     ///< demand arrived while prefetch in flight
  std::uint64_t pf_dropped = 0;  ///< queue-full / duplicate suppressions

  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
  }
  /// Fraction of issued prefetches that served a demand access (Fig. 12).
  double accuracy() const {
    return pf_issued > 0
               ? static_cast<double>(pf_useful + pf_late) / static_cast<double>(pf_issued)
               : 0.0;
  }
  /// Fraction of would-be misses eliminated or overlapped (Fig. 13).
  double coverage() const {
    const std::uint64_t covered = pf_useful + pf_late;
    const std::uint64_t would_miss = covered + llc_demand_misses;
    return would_miss > 0 ? static_cast<double>(covered) / static_cast<double>(would_miss)
                          : 0.0;
  }
};

class Simulator {
 public:
  explicit Simulator(const SimConfig& config) : config_(config) {}

  /// Runs the trace with an optional LLC prefetcher (nullptr = baseline),
  /// replaying through the calling thread's workspace.
  SimStats run(const trace::MemoryTrace& trace, Prefetcher* prefetcher = nullptr);

  /// Same, replaying through an explicit workspace (zero steady-state
  /// allocation when `ws` is reused across runs).
  SimStats run(const trace::MemoryTrace& trace, Prefetcher* prefetcher, SimWorkspace& ws);

  const SimConfig& config() const { return config_; }

 private:
  SimConfig config_;
};

/// Functionally filters a raw access trace through L1D and L2, returning the
/// accesses that reach the LLC — the paper's "memory access trace extracted
/// from the last level cache" (§VI-A) used to train the predictors. Uses the
/// calling thread's workspace.
trace::MemoryTrace extract_llc_trace(const trace::MemoryTrace& raw, const SimConfig& config);

/// Same, filtering through an explicit workspace's L1/L2.
trace::MemoryTrace extract_llc_trace(const trace::MemoryTrace& raw, const SimConfig& config,
                                     SimWorkspace& ws);

}  // namespace dart::sim
