#include "sim/cache.hpp"

#include <stdexcept>

namespace dart::sim {

Cache::Cache(std::size_t size_bytes, std::size_t ways, std::size_t line_bytes)
    : sets_(size_bytes / (ways * line_bytes)), ways_(ways) {
  if (sets_ == 0) throw std::invalid_argument("Cache: zero sets");
  lines_.assign(sets_ * ways_, Line{});
}

bool Cache::access(std::uint64_t block) {
  ++stat_accesses_;
  last_useful_ = false;
  const std::size_t set = set_of(block);
  const std::uint64_t tag = tag_of(block);
  Line* base = lines_.data() + set * ways_;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      ++stat_hits_;
      line.lru = ++tick_;
      if (line.prefetched && !line.used) {
        line.used = true;
        ++stat_useful_;
        last_useful_ = true;
      }
      return true;
    }
  }
  return false;
}

bool Cache::contains(std::uint64_t block) const {
  const std::size_t set = set_of(block);
  const std::uint64_t tag = tag_of(block);
  const Line* base = lines_.data() + set * ways_;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

Cache::EvictInfo Cache::insert(std::uint64_t block, bool prefetched) {
  EvictInfo info;
  const std::size_t set = set_of(block);
  const std::uint64_t tag = tag_of(block);
  Line* base = lines_.data() + set * ways_;
  Line* victim = nullptr;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) return info;  // already present
    if (!line.valid) {
      if (victim == nullptr || victim->valid) victim = &line;
    } else if (victim == nullptr || (victim->valid && line.lru < victim->lru)) {
      victim = &line;
    }
  }
  if (victim->valid) {
    info.evicted = true;
    info.victim_block = victim->tag * sets_ + set;
    info.victim_prefetched = victim->prefetched;
    info.victim_used = victim->used;
    if (victim->prefetched && !victim->used) ++stat_unused_evict_;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++tick_;
  victim->prefetched = prefetched;
  victim->used = false;
  return info;
}

void Cache::reset_stats() {
  stat_accesses_ = stat_hits_ = stat_useful_ = stat_unused_evict_ = 0;
}

}  // namespace dart::sim
