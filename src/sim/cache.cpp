#include "sim/cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace dart::sim {

Cache::Cache(std::size_t size_bytes, std::size_t ways, std::size_t line_bytes)
    : sets_(size_bytes / (ways * line_bytes)), ways_(ways) {
  if (sets_ == 0) throw std::invalid_argument("Cache: zero sets");
  if ((sets_ & (sets_ - 1)) == 0) {
    set_mask_ = sets_ - 1;
    set_shift_ = 0;
    while ((std::size_t{1} << set_shift_) < sets_) ++set_shift_;
  } else {
#ifdef __SIZEOF_INT128__
    // floor(log2(sets_)) and the 64-bit reciprocal; sets_ is not a power of
    // two here, so floor(2^(64+s) / sets_) < 2^64 always fits.
    while ((std::size_t{1} << (magic_shift_ + 1)) < sets_) ++magic_shift_;
    magic_ = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(1) << (64 + magic_shift_)) / sets_);
#endif
  }
  tags_.assign(sets_ * ways_, 0);
  fill_.assign(sets_, 0);
  if (ways_ <= kMaxPackedWays) {
    order_.assign(sets_, kIdentityOrder);
    pf_flags_.assign(sets_, 0);
  } else {
    // Wide-associativity fallback: per-line timestamps and flag bytes.
    slow_lru_.assign(sets_ * ways_, 0);
    slow_flags_.assign(sets_ * ways_, 0);
  }
}

void Cache::reset_stats() {
  stat_accesses_ = stat_hits_ = stat_useful_ = stat_unused_evict_ = 0;
}

void Cache::reset() {
  std::fill(fill_.begin(), fill_.end(), 0);
  slow_tick_ = 0;
  last_useful_ = false;
  reset_stats();
}

}  // namespace dart::sim
