// Reusable simulator arena (DESIGN.md §8), mirroring
// tabular::InferenceWorkspace on the replay side.
//
// One `Simulator::run` needs an in-order instruction window, an in-flight
// prefetch table, and three time-ordered event queues. Allocating them per
// run (and per node, as std::deque / std::unordered_map / priority_queue
// do) dominates sweep wall-clock once the per-access work is lean, so every
// replay entry point takes a `SimWorkspace&` holding flat, reusable
// versions of each structure. Steady state performs zero heap allocations:
// the first run on a workspace warms the arrays, every later run only
// resets counters and valid bits.
//
// The structures encode the replay loop's actual bounds:
//  - `InstrRing`: the window never exceeds `lsq_entries` (the LSQ drain
//    loop pops before every push), so a power-of-two ring with head/size
//    indices replaces the deque.
//  - `FlatMap64`: in-flight prefetches are capped by
//    `prefetch_queue`; open addressing with linear probing and
//    backward-shift deletion replaces the node-based hash map, and the
//    probe that checks for a duplicate candidate doubles as the insert
//    position (single-probe admission).
//  - `TimeRing` / `FillRing`: sorted rings over vectors whose capacity
//    persists across runs (event keys arrive almost sorted, so insertion
//    is an O(1) append and pop-min an O(1) head advance). Fill events
//    carry a per-run sequence number so ordering is total (time, then
//    issue order) — pop order, and therefore prefetcher `on_fill`
//    training order and LLC insertion order, is
//    implementation-independent. This is what makes the optimized loop
//    bit-comparable to the straight-line reference simulator in
//    tests/sim_reference_test.cpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/cache.hpp"

namespace dart::sim {

/// Fixed-capacity FIFO of in-flight memory instructions
/// (instr_id, completion cycle), oldest first.
class InstrRing {
 public:
  /// Prepares for a run with at most `capacity` live entries; keeps the
  /// backing array when the (power-of-two rounded) capacity already fits.
  void reset(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    if (cap > buf_.size()) buf_.resize(cap);
    mask_ = buf_.size() - 1;
    head_ = size_ = 0;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::uint64_t front_id() const { return buf_[head_].id; }
  std::uint64_t front_complete() const { return buf_[head_].complete; }
  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --size_;
  }
  void push_back(std::uint64_t id, std::uint64_t complete) {
    buf_[(head_ + size_) & mask_] = {id, complete};
    ++size_;
  }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t complete;
  };
  std::vector<Entry> buf_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Open-addressing uint64 -> uint64 hash map: linear probing,
/// backward-shift deletion (no tombstones), grown by rehash at 1/2 load.
/// Serves as the simulator's in-flight prefetch table (block -> fill cycle)
/// and as the flat replacement for the rule-based prefetchers' mapping
/// tables (ISB's PS/SP/training maps). Any uint64 key is valid; occupancy
/// is tracked explicitly rather than via a reserved key.
class FlatMap64 {
 public:
  FlatMap64() { reset(); }  // slots_ is never empty: probe() needs no guard

  /// Empties the table for a new run, keeping the slot array.
  void reset() {
    if (slots_.size() < kMinSlots) {
      slots_.assign(kMinSlots, Slot{});
    } else if (size_ != 0) {
      std::fill(slots_.begin(), slots_.end(), Slot{});
    }
    mask_ = slots_.size() - 1;
    size_ = 0;
  }

  std::size_t size() const { return size_; }

  /// One probe serving both lookup and insertion: `found` tells whether
  /// `key` is present; `slot` is its position when found, or the insert
  /// position otherwise (valid until the next mutation).
  struct Probe {
    std::size_t slot;
    bool found;
  };
  Probe probe(std::uint64_t key) const {
    std::size_t i = hash(key) & mask_;
    while (slots_[i].live) {
      if (slots_[i].key == key) return {i, true};
      i = (i + 1) & mask_;
    }
    return {i, false};
  }

  std::uint64_t value_at(std::size_t slot) const { return slots_[slot].value; }
  void set_value_at(std::size_t slot, std::uint64_t value) { slots_[slot].value = value; }

  /// Inserts at a position returned by a `probe` miss on the same key.
  void insert_at(Probe p, std::uint64_t key, std::uint64_t value) {
    slots_[p.slot] = {key, value, true};
    if (++size_ * 2 > slots_.size()) grow();
  }

  /// Removes the entry at a position returned by a `probe` hit.
  void erase_at(std::size_t slot) {
    std::size_t i = slot;
    std::size_t j = i;
    for (;;) {
      slots_[i].live = false;
      for (;;) {
        j = (j + 1) & mask_;
        if (!slots_[j].live) {
          --size_;
          return;
        }
        const std::size_t home = hash(slots_[j].key) & mask_;
        // Shift j back into the hole iff its home slot lies cyclically at
        // or before the hole (the standard linear-probing deletion rule).
        const bool between_hole_and_j =
            i <= j ? (home > i && home <= j) : (home > i || home <= j);
        if (!between_hole_and_j) break;
      }
      slots_[i] = slots_[j];
      i = j;
    }
  }

  // Convenience wrappers for map-style call sites.

  /// Pointer to the value for `key`, or nullptr when absent.
  const std::uint64_t* find(std::uint64_t key) const {
    const Probe p = probe(key);
    return p.found ? &slots_[p.slot].value : nullptr;
  }

  /// Inserts or overwrites `key -> value`.
  void assign(std::uint64_t key, std::uint64_t value) {
    const Probe p = probe(key);
    if (p.found) {
      slots_[p.slot].value = value;
    } else {
      insert_at(p, key, value);
    }
  }

  /// Removes `key` when present.
  void erase(std::uint64_t key) {
    const Probe p = probe(key);
    if (p.found) erase_at(p.slot);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    bool live = false;
  };
  static constexpr std::size_t kMinSlots = 256;

  static std::size_t hash(std::uint64_t key) {
    // Fibonacci mix: consecutive keys (block runs, structural streams)
    // spread across the table instead of clustering one probe run.
    std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> 16);
  }

  void grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.live) insert_at(probe(s.key), s.key, s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Time-ordered bounded queue over a reusable power-of-two ring: a sorted
/// ring with back-insertion. The replay loop's event keys are almost always
/// pushed in non-decreasing order (completion/fill cycles track the
/// monotone issue cycle), so a push is an O(1) append — out-of-order keys
/// (MSHR back-pressure reshuffling completions) shift a handful of tail
/// entries. Pop-min is an O(1) head advance. This replaces a binary heap
/// whose sift chains cost log(n) dependent steps on exactly the miss path
/// this structure serves.
template <typename T, typename Earlier>
class SortedRing {
 public:
  void clear() { head_ = size_ = 0; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  const T& top() const { return buf_[head_]; }

  void push(const T& v) {
    if (size_ == buf_.size()) grow();
    const std::size_t mask = buf_.size() - 1;
    // Insertion sort from the back: shift strictly-later entries one step.
    std::size_t i = (head_ + size_) & mask;
    while (i != head_) {
      const std::size_t prev = (i - 1) & mask;
      if (!Earlier()(v, buf_[prev])) break;
      buf_[i] = buf_[prev];
      i = prev;
    }
    buf_[i] = v;
    ++size_;
  }

  void pop() {
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

 private:
  void grow() {
    std::vector<T> bigger(buf_.empty() ? 128 : buf_.size() * 2);
    const std::size_t mask = buf_.empty() ? 0 : buf_.size() - 1;
    for (std::size_t i = 0; i < size_; ++i) bigger[i] = buf_[(head_ + i) & mask];
    buf_.swap(bigger);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

struct EarlierU64 {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

/// Outstanding completion cycles (LLC MSHR occupancy). Equal keys are
/// interchangeable, so no tie-break is needed.
using TimeRing = SortedRing<std::uint64_t, EarlierU64>;

/// Pending cache fill, totally ordered by (fill cycle, issue sequence).
struct FillEvent {
  std::uint64_t time;
  std::uint64_t seq;
  std::uint64_t block;
};

struct EarlierFill {
  bool operator()(const FillEvent& a, const FillEvent& b) const {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }
};

/// Time-ordered fill events. The (time, seq) order is total, so pop order —
/// and therefore prefetcher `on_fill` training order and LLC insertion
/// order — is implementation-independent.
using FillRing = SortedRing<FillEvent, EarlierFill>;

/// Reusable cache storage: rebuilt when the requested geometry changes,
/// reset (valid bits + stats cleared, arrays kept) otherwise.
class CacheSlot {
 public:
  Cache& ensure(std::size_t size_bytes, std::size_t ways) {
    if (!cache_ || size_bytes != size_bytes_ || ways != ways_) {
      cache_.emplace(size_bytes, ways);
      size_bytes_ = size_bytes;
      ways_ = ways;
    } else {
      cache_->reset();
    }
    return *cache_;
  }

 private:
  std::optional<Cache> cache_;
  std::size_t size_bytes_ = 0;
  std::size_t ways_ = 0;
};

/// All mutable state of one trace replay. Reusing one workspace across
/// `Simulator::run` / `extract_llc_trace` calls (as core::ExperimentRunner
/// and the fig/table benches do) makes repeated cells allocation-free in
/// steady state. Not thread-safe: one workspace per thread.
struct SimWorkspace {
  CacheSlot l1;
  CacheSlot l2;
  CacheSlot llc;
  InstrRing window;
  TimeRing mshr;
  FillRing fills;          ///< in-flight prefetch fills
  FillRing demand_fills;   ///< demand-miss fills (prefetcher training)
  FlatMap64 inflight;      ///< block -> prefetch fill cycle
  std::vector<std::uint64_t> pf_candidates;
};

/// The calling thread's reusable workspace, for entry points that don't
/// manage one explicitly (mirrors tabular::thread_local_workspace()).
SimWorkspace& thread_local_sim_workspace();

}  // namespace dart::sim
