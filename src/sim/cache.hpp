// Set-associative cache with true-LRU replacement and per-line prefetch
// bookkeeping (prefetched / used bits for accuracy accounting).
#pragma once

#include <cstdint>
#include <vector>

namespace dart::sim {

class Cache {
 public:
  /// `size_bytes` total capacity, `ways` associativity, 64-byte lines.
  Cache(std::size_t size_bytes, std::size_t ways, std::size_t line_bytes = 64);

  std::size_t num_sets() const { return sets_; }
  std::size_t ways() const { return ways_; }

  /// Demand access: updates LRU; returns true on hit. A hit on a line whose
  /// prefetched bit is set marks it used (counted once as a useful
  /// prefetch).
  bool access(std::uint64_t block);

  /// Presence check with no state update.
  bool contains(std::uint64_t block) const;

  struct EvictInfo {
    bool evicted = false;          ///< a valid line was displaced
    std::uint64_t victim_block = 0;
    bool victim_prefetched = false;
    bool victim_used = false;      ///< victim was a prefetch that got used
  };

  /// Fills `block` (no-op if already present); `prefetched` tags prefetch
  /// fills. Returns information about the displaced victim.
  EvictInfo insert(std::uint64_t block, bool prefetched);

  /// True if the last `access()` hit a prefetched line for the first time.
  bool last_hit_was_useful_prefetch() const { return last_useful_; }

  // Aggregate statistics.
  std::uint64_t accesses() const { return stat_accesses_; }
  std::uint64_t hits() const { return stat_hits_; }
  std::uint64_t misses() const { return stat_accesses_ - stat_hits_; }
  std::uint64_t useful_prefetches() const { return stat_useful_; }
  std::uint64_t unused_prefetch_evictions() const { return stat_unused_evict_; }

  void reset_stats();

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< global timestamp; larger = more recent
    bool valid = false;
    bool prefetched = false;
    bool used = false;
  };

  std::size_t set_of(std::uint64_t block) const { return block % sets_; }
  std::uint64_t tag_of(std::uint64_t block) const { return block / sets_; }

  std::size_t sets_;
  std::size_t ways_;
  std::vector<Line> lines_;  ///< sets_ * ways_, row-major by set
  std::uint64_t tick_ = 0;
  bool last_useful_ = false;

  std::uint64_t stat_accesses_ = 0;
  std::uint64_t stat_hits_ = 0;
  std::uint64_t stat_useful_ = 0;
  std::uint64_t stat_unused_evict_ = 0;
};

}  // namespace dart::sim
