// Set-associative cache with true-LRU replacement and per-line prefetch
// bookkeeping (prefetched / used bits for accuracy accounting).
//
// Layout (DESIGN.md §8): the replay loop probes a cache on every access, so
// state is split by access frequency. The hot `tags_` array holds one
// 64-bit tag per line and is the only thing a lookup touches — a 16-way
// set is two cache lines of tags instead of eight cache lines of AoS
// `Line` structs. All per-set metadata packs into two words:
//
//  * `order_[set]` — the set's entire true-LRU state as a base-16
//    permutation of way indices, most recent in nibble 0. A hit is a SWAR
//    move-to-front (~8 ALU ops, no loads); the victim of a full set is
//    read from the last live nibble in O(1), replacing the former
//    O(ways) timestamp argmin scan. Sets wider than 16 ways fall back to
//    per-line timestamps in `slow_lru_`.
//  * `pf_flags_[set]` — two bits per way (prefetched / used).
//
// There is no valid bit: lines fill each set in way order (the victim rule
// prefers the first unused way), so the live lines of a set are exactly the
// prefix [0, fill_[set]) and a probe scans only that prefix.
//
// Set indexing uses shift/mask when the set count is a power of two (the
// default L2/LLC geometries) and a Granlund–Montgomery style multiply-high
// reciprocal otherwise (the default L1 has 85 sets) — one widening multiply
// plus a conditional fixup instead of a hardware divide. Geometry, and
// therefore every simulated outcome, is identical either way.
//
// The probe methods live in the header so the replay loop inlines them.
#pragma once

#include <cstdint>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace dart::sim {

class Cache {
 public:
  /// `size_bytes` total capacity, `ways` associativity, 64-byte lines.
  Cache(std::size_t size_bytes, std::size_t ways, std::size_t line_bytes = 64);

  std::size_t num_sets() const { return sets_; }
  std::size_t ways() const { return ways_; }

  /// Demand access: updates LRU; returns true on hit. A hit on a line whose
  /// prefetched bit is set marks it used (counted once as a useful
  /// prefetch).
  bool access(std::uint64_t block) {
    ++stat_accesses_;
    last_useful_ = false;
    std::size_t set;
    std::uint64_t tag;
    split(block, set, tag);
    const int w = find_way(tags_.data() + set * ways_, fill_[set], tag);
    if (w < 0) return false;
    ++stat_hits_;
    const std::size_t way = static_cast<std::size_t>(w);
    if (get_flags(set, way) == kPrefetchedFlag) {  // prefetched, not yet used
      or_flags(set, way, kUsedFlag);
      ++stat_useful_;
      last_useful_ = true;
    }
    touch(set, way);
    return true;
  }

  /// Presence check with no state update.
  bool contains(std::uint64_t block) const {
    std::size_t set;
    std::uint64_t tag;
    split(block, set, tag);
    return find_way(tags_.data() + set * ways_, fill_[set], tag) >= 0;
  }

  struct EvictInfo {
    bool evicted = false;          ///< a valid line was displaced
    std::uint64_t victim_block = 0;
    bool victim_prefetched = false;
    bool victim_used = false;      ///< victim was a prefetch that got used
  };

  /// Fills `block` (no-op if already present); `prefetched` tags prefetch
  /// fills. Returns information about the displaced victim.
  EvictInfo insert(std::uint64_t block, bool prefetched) {
    std::size_t set;
    std::uint64_t tag;
    split(block, set, tag);
    if (find_way(tags_.data() + set * ways_, fill_[set], tag) >= 0) {
      return EvictInfo{};  // already present
    }
    return fill_at(set, tag, prefetched);
  }

  /// Fills `block` assuming it is absent — the caller just observed a miss
  /// on this cache and nothing touched it since (the replay loop's
  /// access-miss -> fill sequence). Skips the presence re-scan.
  EvictInfo fill(std::uint64_t block, bool prefetched) {
    std::size_t set;
    std::uint64_t tag;
    split(block, set, tag);
    return fill_at(set, tag, prefetched);
  }

  /// Hints the host CPU to pull `block`'s set (its tag row) into the host
  /// caches. The replay loop issues this for upcoming trace entries so
  /// host-memory latency overlaps with simulation work; it never changes
  /// simulated state.
  void prefetch_set(std::uint64_t block) const {
#if defined(__GNUC__) || defined(__clang__)
    std::size_t set;
    std::uint64_t tag;
    split(block, set, tag);
    const std::size_t base = set * ways_;
    // A set's tag row is ways_*8 bytes; touch every host line it spans
    // (2 for the 16-way LLC).
    for (std::size_t w = 0; w < ways_; w += 8) {
      __builtin_prefetch(tags_.data() + base + w);
    }
    if (ways_ <= kMaxPackedWays) __builtin_prefetch(order_.data() + set);
#else
    (void)block;
#endif
  }

  /// True if the last `access()` hit a prefetched line for the first time.
  bool last_hit_was_useful_prefetch() const { return last_useful_; }

  // Aggregate statistics.
  std::uint64_t accesses() const { return stat_accesses_; }
  std::uint64_t hits() const { return stat_hits_; }
  std::uint64_t misses() const { return stat_accesses_ - stat_hits_; }
  std::uint64_t useful_prefetches() const { return stat_useful_; }
  std::uint64_t unused_prefetch_evictions() const { return stat_unused_evict_; }

  void reset_stats();

  /// Invalidates every line and zeroes statistics: equivalent to a freshly
  /// constructed cache of the same geometry, without releasing the arrays.
  /// O(sets), not O(lines): only the per-set fill counters are cleared (the
  /// recency words stay valid — they are permutations regardless of
  /// history, and flags are rewritten on fill).
  /// Lets a SimWorkspace reuse cache storage across `Simulator::run` calls.
  void reset();

 private:
  static constexpr std::uint32_t kPrefetchedFlag = 1u;
  static constexpr std::uint32_t kUsedFlag = 2u;
  static constexpr std::size_t kMaxPackedWays = 16;
  static constexpr std::uint64_t kNibbleOnes = 0x1111111111111111ull;
  static constexpr std::uint64_t kNibbleHighs = 0x8888888888888888ull;
  static constexpr std::uint64_t kIdentityOrder = 0xFEDCBA9876543210ull;

  /// Index of `tag` among the first `live` ways of a set's tag row, or -1.
  /// AVX2 builds compare four tags per step (one branch per vector instead
  /// of one per way — an LLC set probe is 4 checks instead of 16); other
  /// builds use the equivalent scalar scan. A hit reports the lowest
  /// matching way; live tags are unique within a set, so any match is it.
  static int find_way(const std::uint64_t* tags, std::size_t live, std::uint64_t tag) {
    std::size_t w = 0;
#if defined(__AVX2__)
    const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(tag));
    for (; w + 4 <= live; w += 4) {
      const __m256i row =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags + w));
      const int m = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(row, needle)));
      if (m != 0) return static_cast<int>(w) + __builtin_ctz(static_cast<unsigned>(m));
    }
#endif
    for (; w < live; ++w) {
      if (tags[w] == tag) return static_cast<int>(w);
    }
    return -1;
  }

  /// set = block % sets_, tag = block / sets_, by shift/mask (power-of-two
  /// set counts) or multiply-high reciprocal (exact for every uint64 block:
  /// with m = floor(2^(64+s) / d), s = floor(log2 d), the estimate
  /// q = (m * block) >> (64+s) is floor(block/d) or one less, so a single
  /// conditional correction restores the exact quotient).
  void split(std::uint64_t block, std::size_t& set, std::uint64_t& tag) const {
    if (set_shift_ >= 0) {
      set = static_cast<std::size_t>(block & set_mask_);
      tag = block >> set_shift_;
      return;
    }
#ifdef __SIZEOF_INT128__
    std::uint64_t q = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(magic_) * block) >> 64) >> magic_shift_;
    std::uint64_t r = block - q * sets_;
    if (r >= sets_) {
      r -= sets_;
      ++q;
    }
    set = static_cast<std::size_t>(r);
    tag = q;
#else
    set = static_cast<std::size_t>(block % sets_);
    tag = block / sets_;
#endif
  }

  /// Position (0 = most recent) of way `w` in the set's recency word.
  /// SWAR zero-nibble search: the recency word is a permutation of 0..15,
  /// so exactly one nibble matches and the lowest set bit of the detector
  /// is reliable even across subtraction borrows.
  static std::size_t order_pos(std::uint64_t order, std::size_t w) {
    const std::uint64_t x = order ^ (kNibbleOnes * w);
    const std::uint64_t zeros = (x - kNibbleOnes) & ~x & kNibbleHighs;
    return static_cast<std::size_t>(ctz64(zeros)) / 4;
  }

  /// Moves the nibble at position `p` to position 0, shifting positions
  /// 0..p-1 one nibble deeper. Positions above p are unchanged. The double
  /// shifts keep every shift amount < 64 for p = 15.
  static std::uint64_t order_move_to_front(std::uint64_t order, std::size_t p,
                                           std::uint64_t way) {
    const std::uint64_t below = order & ((std::uint64_t{1} << (4 * p)) - 1);
    const std::uint64_t above = ((order >> 4) >> (4 * p) << (4 * p)) << 4;
    return above | (below << 4) | way;
  }

  static int ctz64(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctzll(v);
#else
    int c = 0;
    while ((v & 1) == 0) {
      v >>= 1;
      ++c;
    }
    return c;
#endif
  }

  // Per-way prefetched/used flag access: one packed word per set up to 16
  // ways, one byte per line beyond.
  std::uint32_t get_flags(std::size_t set, std::size_t way) const {
    return ways_ <= kMaxPackedWays ? (pf_flags_[set] >> (2 * way)) & 3u
                                   : slow_flags_[set * ways_ + way];
  }
  void or_flags(std::size_t set, std::size_t way, std::uint32_t f) {
    if (ways_ <= kMaxPackedWays) {
      pf_flags_[set] |= f << (2 * way);
    } else {
      slow_flags_[set * ways_ + way] |= static_cast<std::uint8_t>(f);
    }
  }
  void put_flags(std::size_t set, std::size_t way, std::uint32_t f) {
    if (ways_ <= kMaxPackedWays) {
      pf_flags_[set] = (pf_flags_[set] & ~(3u << (2 * way))) | (f << (2 * way));
    } else {
      slow_flags_[set * ways_ + way] = static_cast<std::uint8_t>(f);
    }
  }

  /// Marks `way` most recently used.
  void touch(std::size_t set, std::size_t way) {
    if (ways_ <= kMaxPackedWays) {
      std::uint64_t& order = order_[set];
      order = order_move_to_front(order, order_pos(order, way), way);
    } else {
      slow_lru_[set * ways_ + way] = ++slow_tick_;
    }
  }

  /// Victim selection + line write for a known-absent tag: the first unused
  /// way while the set is filling (the AoS scan's "first invalid way"
  /// rule), else the least-recently-used way.
  EvictInfo fill_at(std::size_t set, std::uint64_t tag, bool prefetched) {
    EvictInfo info;
    std::size_t victim;
    if (fill_[set] < ways_) {
      victim = fill_[set]++;
    } else {
      victim = lru_victim(set);
      const std::uint32_t vf = get_flags(set, victim);
      info.evicted = true;
      info.victim_block = tags_[set * ways_ + victim] * sets_ + set;
      info.victim_prefetched = (vf & kPrefetchedFlag) != 0;
      info.victim_used = (vf & kUsedFlag) != 0;
      if (vf == kPrefetchedFlag) ++stat_unused_evict_;
    }
    tags_[set * ways_ + victim] = tag;
    put_flags(set, victim, prefetched ? kPrefetchedFlag : 0u);
    touch(set, victim);
    return info;
  }

  /// Least-recently-used way of a full set: the deepest live nibble of the
  /// recency word (O(1)), or the timestamp argmin for wide sets.
  std::size_t lru_victim(std::size_t set) const {
    if (ways_ <= kMaxPackedWays) {
      return static_cast<std::size_t>((order_[set] >> (4 * (ways_ - 1))) & 0xF);
    }
    const std::uint64_t* lru = slow_lru_.data() + set * ways_;
    std::size_t victim = 0;
    std::uint64_t best = lru[0];
    for (std::size_t w = 1; w < ways_; ++w) {
      if (lru[w] < best) {
        best = lru[w];
        victim = w;
      }
    }
    return victim;
  }

  std::size_t sets_;
  std::size_t ways_;
  int set_shift_ = -1;           ///< log2(sets_) when a power of two, else -1
  std::uint64_t set_mask_ = 0;   ///< sets_ - 1 when a power of two
  std::uint64_t magic_ = 0;      ///< floor(2^(64+magic_shift_) / sets_)
  unsigned magic_shift_ = 0;     ///< floor(log2(sets_))

  std::vector<std::uint64_t> tags_;      ///< hot: sets_ * ways_, row-major by set
  std::vector<std::uint64_t> order_;     ///< per-set nibble-packed LRU order
  std::vector<std::uint32_t> pf_flags_;  ///< per-set 2-bit/way prefetch flags
  std::vector<std::uint16_t> fill_;      ///< per-set live-way count
  // Wide-associativity (> 16 ways) fallback state: per-line timestamps and
  // flag bytes instead of the packed per-set words.
  std::vector<std::uint64_t> slow_lru_;
  std::vector<std::uint8_t> slow_flags_;
  std::uint64_t slow_tick_ = 0;
  bool last_useful_ = false;

  std::uint64_t stat_accesses_ = 0;
  std::uint64_t stat_hits_ = 0;
  std::uint64_t stat_useful_ = 0;
  std::uint64_t stat_unused_evict_ = 0;
};

}  // namespace dart::sim
