// Extensible prefetcher registry (DESIGN.md §4).
//
// Every prefetcher the experiment harness knows is a named factory keyed by
// a parseable *spec string*:
//
//   spec   := name [":" param ("," param)*]
//   param  := key "=" value | flag
//
// e.g. "stride:table=256,degree=4", "dart:variant=l,threshold=0.6" or
// "transfetch:ideal". Names and keys are case-insensitive; a bare flag is
// shorthand for `flag=1`. Legacy display names ("DART-S", "TransFetch-I")
// are registered as aliases that imply the matching parameters, so every
// spec the old hard-coded driver accepted still works.
//
// Factories receive a `PrefetcherContext` that lends them *lazy* access to
// trained pipeline artifacts (attention teacher, LSTM baseline, tabularized
// DART predictor). Rule-based prefetchers ignore the context entirely, so
// they can be built with the context-free `make_prefetcher(spec)` overload.
//
// Adding a scenario is now a registry entry plus a spec string — never an
// edit to the evaluation driver.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "sim/prefetcher.hpp"
#include "tabular/quant.hpp"
#include "trace/preprocess.hpp"

namespace dart::nn {
class AddressPredictor;
class LstmPredictor;
}  // namespace dart::nn
namespace dart::tabular {
class TabularPredictor;
}  // namespace dart::tabular

namespace dart::sim {

/// Parsed form of a prefetcher spec string. The grammar:
///
///     spec   := name [":" param ("," param)*]
///     param  := key "=" value | flag        (a bare flag means flag=1)
///
/// e.g. `"bo"`, `"stride:table=256,degree=4"`, `"transfetch:ideal"`,
/// `"dart:variant=l,threshold=0.6"`, `"dart-artifact:file=m.dart"`. Names
/// and keys are case-insensitive; every spec additionally accepts
/// `label=<name>` to override the display name. Parameter getters record
/// which keys were consumed so the registry can reject typos
/// (`unused_keys`).
class PrefetcherSpec {
 public:
  /// Parses `text`; throws std::invalid_argument on an empty name or a
  /// malformed `key=value` pair.
  static PrefetcherSpec parse(const std::string& text);

  /// The (lowercased) prefetcher name the spec opens with.
  const std::string& name() const { return name_; }
  /// The original spec text as supplied by the user.
  const std::string& text() const { return text_; }

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& fallback);
  /// Throws std::invalid_argument when the value does not parse as a number.
  std::size_t get_uint(const std::string& key, std::size_t fallback);
  double get_double(const std::string& key, double fallback);
  /// Bare flags ("transfetch:ideal") and 1/true/yes/on are true.
  bool get_flag(const std::string& key, bool fallback = false);

  /// Installs a parameter unless the user already set it (alias expansion).
  void set_default(const std::string& key, const std::string& value);
  /// Keys present in the spec that no getter ever consumed.
  std::vector<std::string> unused_keys() const;

  /// Canonical "name:k=v,..." form (keys sorted); parsing it yields an
  /// equal spec, making specs round-trippable through CSV/JSON exports.
  std::string canonical() const;

 private:
  std::string text_;
  std::string name_;
  std::map<std::string, std::string> params_;
  std::set<std::string> used_;
};

/// Request for a tabularized DART predictor, as expressed in a spec
/// ("dart:variant=s", optionally with table overrides).
struct DartModelRequest {
  std::string variant = "default";  ///< "s" | "default" | "l"
  std::size_t table_k = 0;          ///< 0 = variant default
  std::size_t table_c = 0;          ///< 0 = variant default
  /// Table-quantization mode to serve under (DESIGN.md §10). Applied after
  /// training/loading — artifacts are cached float and stay shareable
  /// across modes.
  tabular::QuantMode quant = tabular::QuantMode::kOff;
};

/// A trained tabular predictor plus its analytic cost-model latency.
struct DartModel {
  std::shared_ptr<const tabular::TabularPredictor> predictor;  ///< shared, immutable
  std::size_t latency_cycles = 0;      ///< Eq. 22 prediction latency
  std::string display_name = "DART";   ///< Table VIII variant name
};

/// Lends factories lazy, shared access to trained pipeline artifacts. The
/// providers are std::functions so the owner (core::ExperimentRunner, a
/// test, a custom harness) decides where models come from and how training
/// is synchronized; factories that need a missing provider throw.
struct PrefetcherContext {
  trace::PreprocessOptions prep;       ///< must match the training pipeline
  std::size_t degree = 16;             ///< default max predictions/trigger
  std::size_t nn_trigger_sample = 1;   ///< default NN-baseline sampling
  /// Directory where the owning harness caches trained artifacts (`.dart`
  /// files, NN checkpoints) — see core/artifact_cache.hpp. Informational
  /// for factories; providers below are expected to consult it themselves.
  /// Empty when caching is disabled.
  std::string artifact_dir;

  /// Lazily trains/loads the attention teacher shared by this app's cells.
  std::function<std::shared_ptr<nn::AddressPredictor>()> attention_model;
  /// Lazily trains/loads the Voyager-like LSTM baseline.
  std::function<std::shared_ptr<nn::LstmPredictor>()> lstm_model;
  /// Lazily trains/loads the tabularized DART predictor for a request.
  std::function<DartModel(const DartModelRequest&)> dart_model;
};

/// Constructs a prefetcher from its parsed spec, borrowing trained
/// artifacts from the context. Factories must consume every parameter they
/// honor via the PrefetcherSpec getters (unconsumed keys are rejected).
using PrefetcherFactory =
    std::function<std::unique_ptr<Prefetcher>(PrefetcherSpec&, PrefetcherContext&)>;

/// Process-wide name -> factory map behind every prefetcher the experiment
/// harness can build (DESIGN.md §4). Adding a scenario is one `add()` call
/// (from any linked translation unit) plus a spec string — the evaluation
/// driver never changes. Thread-safe; alias entries expand legacy display
/// names ("DART-S", "TransFetch-I") into parameterized specs.
class PrefetcherRegistry {
 public:
  /// Process-wide registry with the built-in factories pre-installed.
  static PrefetcherRegistry& instance();

  /// Registers `factory` under (case-insensitive) `name`.
  void add(const std::string& name, PrefetcherFactory factory);
  /// Registers `alias` to construct `target` with `implied` parameter
  /// defaults (e.g. "TransFetch-I" -> "transfetch" + ideal=1).
  void add_alias(const std::string& alias, const std::string& target,
                 const std::map<std::string, std::string>& implied = {});

  /// Parses `spec_text`, resolves aliases, runs the factory and rejects
  /// unknown names or unconsumed parameters with std::invalid_argument.
  /// A `label=<name>` parameter is accepted on every spec and overrides the
  /// constructed prefetcher's display name (for parameter sweeps).
  std::unique_ptr<Prefetcher> make(const std::string& spec_text,
                                   PrefetcherContext& context) const;

  /// Throws std::invalid_argument when `spec_text` is malformed or names an
  /// unregistered prefetcher. Cheap (does not construct anything).
  void validate(const std::string& spec_text) const;

  bool contains(const std::string& name) const;
  /// All registered names and aliases, sorted.
  std::vector<std::string> known_names() const;

 private:
  struct Alias {
    std::string target;
    std::map<std::string, std::string> implied;
  };

  mutable std::mutex mu_;
  std::map<std::string, PrefetcherFactory> factories_;
  std::map<std::string, Alias> aliases_;
};

/// Convenience: PrefetcherRegistry::instance().make(spec, context).
std::unique_ptr<Prefetcher> make_prefetcher(const std::string& spec_text,
                                            PrefetcherContext& context);
/// Context-free overload for prefetchers that need no trained artifacts.
std::unique_ptr<Prefetcher> make_prefetcher(const std::string& spec_text);

/// Splits a user-facing spec list (DART_PREFETCHERS, CLI args): semicolons
/// always separate; commas also separate when no spec in the list carries
/// parameters (legacy "BO,ISB,DART" lists keep working).
std::vector<std::string> split_spec_list(const std::string& text);

// Built-in factory packs, installed by instance() on first use. Defined
// next to the prefetchers they wrap (src/prefetch/rule_based.cpp and
// src/core/registry_entries.cpp); the whole project links as one library,
// so the cross-directory definition is resolved at link time.

/// Installs the rule-based pack: nextline, stride, bo, isb (+ aliases).
void register_rule_based_prefetchers(PrefetcherRegistry& registry);
/// Installs the model-backed pack: transfetch, voyager, dart (+ "-I"/"-S"/
/// "-L" aliases) and dart-artifact (serve a `.dart` file, training-free).
void register_model_backed_prefetchers(PrefetcherRegistry& registry);

}  // namespace dart::sim
