// Analytic complexity model: kernel/table latency, storage and arithmetic
// operations (the paper's §V-C, Eq. 16-21) and whole-model aggregation
// (Eq. 22-23), plus a systolic-array cost model for the baseline NN models
// (Table V is "examined under systolic array implementation [50]").
//
// All latencies are in cycles under the paper's fully-parallel assumption;
// storage in bits (helpers convert to bytes); ops are scalar arithmetic
// operations beyond table lookups.
#pragma once

#include <cstddef>
#include <cstdint>

#include "nn/transformer.hpp"

namespace dart::tabular {

/// ceil(log2 x) with log2(1) = 0.
std::size_t log2_ceil(std::size_t x);

/// Per-layer table configuration (the paper's Table II): one <K, C> pair per
/// layer class.
struct TableLayerConfig {
  std::size_t k = 128;
  std::size_t c = 2;
};

/// Full table configuration for the model of Fig. 6.
struct TableConfig {
  TableLayerConfig input;      ///< <KI, CI>
  TableLayerConfig attention;  ///< <KA, CA>
  TableLayerConfig ffn;        ///< <KF, CF>
  TableLayerConfig output;     ///< <KO, CO>
  std::size_t data_bits = 32;  ///< d — table entry bit width

  /// Convenience: the same <K, C> for every layer class (the paper's Table V
  /// uses uniform K, C).
  static TableConfig uniform(std::size_t k, std::size_t c, std::size_t data_bits = 32);
};

// --- Kernel-level model (Eq. 16-21) ---------------------------------------

/// Eq. 16: L_l = log K + log C + 1.
std::size_t linear_kernel_latency(std::size_t k, std::size_t c);

/// Eq. 17 (with C = Ck = Ct): L_a = 2 (log K + log C + 1).
std::size_t attention_kernel_latency(std::size_t k, std::size_t c);

/// Eq. 18 (bits): S_l = T C log K + DO K C d.
std::size_t linear_kernel_storage_bits(std::size_t t, std::size_t d_out, std::size_t k,
                                       std::size_t c, std::size_t data_bits);

/// Eq. 19 (bits, C = Ck = Ct): S_a = (3T + Dk) C log K + 2 K^2 C d.
std::size_t attention_kernel_storage_bits(std::size_t t, std::size_t dk, std::size_t k,
                                          std::size_t c, std::size_t data_bits);

/// Eq. 20: A_l = T C log K + T DO log C.
std::size_t linear_kernel_ops(std::size_t t, std::size_t d_out, std::size_t k, std::size_t c);

/// Eq. 21 (C = Ck = Ct): A_a = (3T + Dk) C log K + (T^2 + Dk^2) log C.
std::size_t attention_kernel_ops(std::size_t t, std::size_t dk, std::size_t k, std::size_t c);

// --- Whole-model model (Eq. 22-23) -----------------------------------------

/// Fixed costs for the non-tabular pieces (layer norm is kept as arithmetic;
/// the output sigmoid is one LUT lookup).
struct FixedCosts {
  std::size_t layernorm_latency = 6;  ///< L_ln
  std::size_t sigmoid_latency = 1;    ///< L_sigma (one lookup)
  std::size_t layernorm_storage_bits = 2 * 32 * 8;  ///< gamma/beta, per layer
  std::size_t sigmoid_storage_bits = 256 * 32;      ///< the LUT
};

struct ModelCost {
  std::size_t latency_cycles = 0;
  std::size_t storage_bits = 0;
  std::size_t arithmetic_ops = 0;

  double storage_bytes() const { return static_cast<double>(storage_bits) / 8.0; }
};

/// Eq. 22-23 evaluated for an architecture (Table I notation lives in
/// nn::ModelConfig) and a table configuration.
ModelCost tabular_model_cost(const nn::ModelConfig& arch, const TableConfig& tables,
                             const FixedCosts& fixed = {});

/// Systolic-array cost of the *neural* model (Table V's Teacher/Student
/// rows): each matmul [m,k]x[k,n] is pipelined in m + k + n - 2 cycles on an
/// unbounded array; storage is 32-bit parameters; ops are 2*MAC counts.
ModelCost nn_model_cost(const nn::ModelConfig& arch);

}  // namespace dart::tabular
