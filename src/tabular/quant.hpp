// Quantized table aggregation (DESIGN.md §10, the MADDNESS lineage).
//
// A linear/fused kernel's [C][K][DO] output table is quantized per output
// column to int16 or int8: column o stores integers q plus a float scale
// s_o and a float offset z_o (the zero point, pre-multiplied by C and kept
// in the float domain so it is applied exactly once per query). Aggregation
// becomes C integer row-adds followed by one dequantization pass:
//
//   y_o = s_o * (q[0][code_0][o] + ... + q[C-1][code_{C-1}][o]) + z_o
//
// Integer ranges are chosen with accumulation headroom (§10: int16 rows use
// ±⌊32767/C⌋, int8 shuffle LUTs ±⌊127/C⌋), so the saturating adds the SIMD
// paths use can never actually saturate — the error budget stays the pure
// rounding bound C·s_o/2. For K ≤ 16 the int8 mode additionally builds
// 16-entry in-register codebooks aggregated with AVX2 `vpshufb` byte
// shuffles, 32 rows per instruction; K > 16 uses widened row gathers +
// saturating adds. Every SIMD path has a scalar twin that produces
// bit-identical results, and `aggregate_quantized_reference` is the always-
// scalar golden path the tolerance tests pin both against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dart::tabular {

/// Table quantization mode of the inference path (the DART_QUANT knob).
/// kOff queries the exact float tables; kInt16/kInt8 aggregate quantized
/// tables within the DESIGN.md §10 error budget.
enum class QuantMode : std::uint8_t {
  kOff = 0,    ///< exact float tables (the default)
  kInt16 = 1,  ///< int16 rows, ±⌊32767/C⌋ headroom, error ≤ C·s_o/2
  kInt8 = 2,   ///< int8 rows (+ vpshufb LUTs when K ≤ 16), error ≤ C·s_o/2
};

/// Canonical knob spelling of a mode: "off", "int16", "int8".
const char* quant_mode_name(QuantMode mode);

/// Parses a knob value ("off" | "int16" | "int8", case-sensitive); throws
/// std::invalid_argument on anything else so a typo in DART_QUANT or a
/// `quant=` spec parameter fails loudly instead of silently serving float.
QuantMode parse_quant_mode(const std::string& text);

/// One kernel's quantized table: integer payload in the same [C][K][DO]
/// layout as the float table it mirrors, plus the per-output-column
/// dequantization affine (scale, offset). Built by `quantize_table` or
/// adopted bit-exact from a `.dart` QNTT chunk.
struct QuantizedTable {
  QuantMode mode = QuantMode::kOff;  ///< payload width; kOff = no table
  std::size_t c = 0;                 ///< subspaces (codebooks)
  std::size_t k = 0;                 ///< prototypes per subspace
  std::size_t out_dim = 0;           ///< output columns (DO)
  /// Per-column dequantization scale s_o (0 for constant columns, which
  /// quantize exactly into the offset).
  std::vector<float> scales;
  /// Per-column dequantization offset z_o = C · midpoint_o — the zero point
  /// kept in the float domain and applied once per output.
  std::vector<float> offsets;
  std::vector<std::int16_t> q16;  ///< [C][K][DO] payload when mode == kInt16
  std::vector<std::int8_t> q8;    ///< [C][K][DO] payload when mode == kInt8
  /// In-register shuffle codebooks, [C][DO][16]: a relayout of `q8` built
  /// only when mode == kInt8 and K ≤ 16 (the vpshufb fast path).
  std::vector<std::int8_t> lut8;

  /// True when no quantized payload is attached (float path serves).
  bool empty() const { return mode == QuantMode::kOff; }
  /// True when the vpshufb 16-entry-codebook path is available.
  bool shuffle() const { return !lut8.empty(); }
  /// Integer payload bytes (the Eq. 18 storage win; excludes scales/offsets).
  std::size_t payload_bytes() const {
    return q16.size() * sizeof(std::int16_t) + q8.size() * sizeof(std::int8_t);
  }
  /// The §10 rounding-error bound of output column o: C · s_o / 2.
  float error_bound(std::size_t o) const {
    return 0.5f * static_cast<float>(c) * scales[o];
  }
};

/// Quantizes a float [C][K][DO] table (`table[((c*K)+k)*DO+o]`) to `mode`.
/// Deterministic: the same table and mode always yield the same payload.
/// `mode` must not be kOff; throws std::invalid_argument on that or on a
/// zero dimension.
QuantizedTable quantize_table(const float* table, std::size_t c, std::size_t k,
                              std::size_t out_dim, QuantMode mode);

/// Rebuilds the derived vpshufb LUT layout of `qt` from its `q8` payload
/// (no-op unless mode == kInt8 and K ≤ 16). Used after adopting a payload
/// from an artifact, where only `q8` travels.
void rebuild_shuffle_lut(QuantizedTable& qt);

/// Aggregates `n` rows from the quantized table: row i reads code
/// `codes[c*n + i]` per subspace c (the SoA layout of
/// LinearKernel::query_into) and writes DO dequantized floats at
/// `out + i*out_stride`. Dispatches to the AVX2 vpshufb / widened-row
/// saturating-add kernels when compiled for a host with AVX2, else to
/// scalar twins that produce bit-identical results.
void aggregate_quantized(const QuantizedTable& qt, const std::uint32_t* codes, std::size_t n,
                         float* out, std::size_t out_stride);

/// The always-scalar golden reference of `aggregate_quantized`: identical
/// arithmetic (saturating integer accumulation, one fused scale+offset per
/// output), no SIMD. The tolerance tests pin the SIMD paths against this
/// bit-exactly; it is not used on any hot path.
void aggregate_quantized_reference(const QuantizedTable& qt, const std::uint32_t* codes,
                                   std::size_t n, float* out, std::size_t out_stride);

}  // namespace dart::tabular
