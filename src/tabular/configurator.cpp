#include "tabular/configurator.hpp"

#include <algorithm>
#include <sstream>

namespace dart::tabular {

std::string PredictorConfig::to_string() const {
  std::ostringstream os;
  os << "(L=" << arch.layers << ", D=" << arch.dim << ", H=" << arch.heads
     << ", K=" << tables.attention.k << ", C=" << tables.attention.c << ")";
  return os.str();
}

bool config_is_valid(const nn::ModelConfig& arch, const TableConfig& tables) {
  const std::size_t dh = arch.heads > 0 ? arch.dim / arch.heads : arch.dim;
  if (arch.heads == 0 || arch.dim % arch.heads != 0) return false;
  // Input kernel partitions the segment dimension.
  if (arch.addr_dim % tables.input.c != 0) return false;
  if (arch.pc_dim % tables.input.c != 0) return false;
  // Attention-block linear kernels partition DA; the attention kernel
  // partitions per-head Dk and the sequence length T.
  if (arch.dim % tables.attention.c != 0) return false;
  if (dh % tables.attention.c != 0) return false;
  if (arch.seq_len % tables.attention.c != 0) return false;
  // FFN kernels partition DA and DF.
  if (arch.dim % tables.ffn.c != 0) return false;
  if (arch.ffn_dim % tables.ffn.c != 0) return false;
  // Output kernel partitions DA.
  if (arch.dim % tables.output.c != 0) return false;
  return true;
}

TableConfigurator::TableConfigurator(const ConfiguratorOptions& options) {
  for (std::size_t layers : options.layer_counts) {
    for (std::size_t dim : options.dims) {
      for (std::size_t heads : options.head_counts) {
        if (dim % heads != 0) continue;
        nn::ModelConfig arch = options.base;
        arch.layers = layers;
        arch.dim = dim;
        arch.heads = heads;
        arch.ffn_dim = options.ffn_multiplier * dim;
        for (std::size_t k : options.prototype_counts) {
          for (std::size_t c : options.subspace_counts) {
            TableConfig tables = TableConfig::uniform(k, c);
            if (!config_is_valid(arch, tables)) continue;
            PredictorConfig pc;
            pc.arch = arch;
            pc.tables = tables;
            pc.cost = tabular_model_cost(arch, tables, options.fixed);
            candidates_.push_back(pc);
          }
        }
      }
    }
  }
  // Sort by latency descending, storage descending — the greedy scan below
  // then walks candidates in exactly the paper's search order.
  std::sort(candidates_.begin(), candidates_.end(), [](const auto& a, const auto& b) {
    if (a.cost.latency_cycles != b.cost.latency_cycles) {
      return a.cost.latency_cycles > b.cost.latency_cycles;
    }
    return a.cost.storage_bits > b.cost.storage_bits;
  });
}

std::optional<PredictorConfig> TableConfigurator::configure(std::size_t tau_cycles,
                                                            double s_bytes) const {
  // Candidates are sorted latency-major descending: the first candidate with
  // latency < tau whose storage also fits is the greedy answer (within one
  // latency tier storage is descending, so the first storage fit is the max).
  for (const auto& cand : candidates_) {
    if (cand.cost.latency_cycles >= tau_cycles) continue;
    if (cand.cost.storage_bytes() >= s_bytes) continue;
    return cand;
  }
  return std::nullopt;
}

}  // namespace dart::tabular
