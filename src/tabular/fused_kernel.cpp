#include "tabular/fused_kernel.hpp"

#include <stdexcept>

#include "common/thread_pool.hpp"
#include "pq/kmeans.hpp"
#include "tabular/complexity.hpp"

namespace dart::tabular {

FusedKernel::FusedKernel(std::size_t in_dim, std::size_t out_dim,
                         const std::function<nn::Tensor(const nn::Tensor&)>& stack,
                         const nn::Tensor& training_rows, const FusedKernelConfig& config)
    : in_dim_(in_dim), out_dim_(out_dim), config_(config) {
  if (training_rows.ndim() != 2 || training_rows.dim(1) != in_dim) {
    throw std::invalid_argument("FusedKernel: training rows must be [M, DI]");
  }
  pq::KMeansOptions km;
  km.max_iters = config.kmeans_iters;
  km.seed = config.seed;
  pq::KMeansResult res = pq::kmeans(training_rows, config.num_prototypes, km);
  // Evaluate the full layer stack at every prototype: this row IS the table.
  table_ = stack(res.centroids);
  if (table_.ndim() != 2 || table_.dim(0) != config.num_prototypes ||
      table_.dim(1) != out_dim) {
    throw std::invalid_argument("FusedKernel: stack output shape mismatch");
  }
  encoder_ = pq::make_encoder(config.encoder, res.centroids);
}

FusedKernel FusedKernel::from_parts(const FusedKernelConfig& config, std::size_t in_dim,
                                    std::size_t out_dim, nn::Tensor table,
                                    std::unique_ptr<pq::Encoder> encoder) {
  if (in_dim == 0 || out_dim == 0 || config.num_prototypes == 0) {
    throw std::invalid_argument("FusedKernel::from_parts: inconsistent dimensions");
  }
  if (table.ndim() != 2 || table.dim(0) != config.num_prototypes || table.dim(1) != out_dim) {
    throw std::invalid_argument("FusedKernel::from_parts: table shape mismatch");
  }
  if (!encoder || encoder->vec_dim() != in_dim ||
      encoder->num_prototypes() != config.num_prototypes) {
    throw std::invalid_argument("FusedKernel::from_parts: encoder shape mismatch");
  }
  FusedKernel kernel;
  kernel.config_ = config;
  kernel.in_dim_ = in_dim;
  kernel.out_dim_ = out_dim;
  kernel.table_ = std::move(table);
  kernel.encoder_ = std::move(encoder);
  return kernel;
}

nn::Tensor FusedKernel::query(const nn::Tensor& rows) const {
  if (rows.ndim() != 2 || rows.dim(1) != in_dim_) {
    throw std::invalid_argument("FusedKernel::query: rows must be [T, DI]");
  }
  const std::size_t t_len = rows.dim(0);
  nn::Tensor out({t_len, out_dim_});
  common::parallel_for(t_len, [&](std::size_t r0, std::size_t r1) {
    std::vector<std::uint32_t> codes(r1 - r0);
    encoder_->encode_batch(rows.row(r0), in_dim_, r1 - r0, codes.data());
    if (!quant_.empty()) {
      // C = 1: the quantized "aggregation" is a dequantizing row copy.
      aggregate_quantized(quant_, codes.data(), r1 - r0, out.row(r0), out_dim_);
      return;
    }
    for (std::size_t t = r0; t < r1; ++t) {
      const float* src = table_.row(codes[t - r0]);
      std::copy(src, src + out_dim_, out.row(t));
    }
  }, 32);
  return out;
}

void FusedKernel::quantize(QuantMode mode) {
  if (mode == QuantMode::kOff) {
    quant_ = QuantizedTable{};
    return;
  }
  quant_ = quantize_table(table_.data(), 1, config_.num_prototypes, out_dim_, mode);
}

void FusedKernel::attach_quantized(QuantizedTable table) {
  if (table.empty()) {
    quant_ = QuantizedTable{};
    return;
  }
  const std::size_t expected = config_.num_prototypes * out_dim_;
  const bool payload_ok = table.mode == QuantMode::kInt16
                              ? (table.q16.size() == expected && table.q8.empty())
                              : (table.q8.size() == expected && table.q16.empty());
  if (table.c != 1 || table.k != config_.num_prototypes || table.out_dim != out_dim_ ||
      table.scales.size() != out_dim_ || table.offsets.size() != out_dim_ || !payload_ok) {
    throw std::invalid_argument("FusedKernel::attach_quantized: payload shape mismatch");
  }
  rebuild_shuffle_lut(table);
  quant_ = std::move(table);
}

std::size_t FusedKernel::latency_cycles() const {
  return log2_ceil(config_.num_prototypes) + 1;
}

}  // namespace dart::tabular
