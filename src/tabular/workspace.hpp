// Per-thread inference arena (DESIGN.md §6).
//
// One `TabularPredictor::forward_sample_into` call needs ~10 small scratch
// buffers (activations, per-subspace code vectors, score matrices). Heap-
// allocating them per sample dominates runtime at the paper's tiny model
// sizes (T=8, D=32), so every query-path entry point takes an
// `InferenceWorkspace&`: a bump allocator over chunked slabs with
// mark/rewind scoping. Steady state performs zero heap allocations — the
// first sample warms the slabs, every later alloc is a pointer bump.
//
// Pointer stability: slabs never move once allocated (overflow adds a new
// chunk instead of growing in place), so buffers handed out before an
// overflow stay valid. `rewind(mark)` releases everything allocated after
// `mark()` without freeing the underlying memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dart::tabular {

/// Static shape summary of a tabular predictor, used to size an
/// InferenceWorkspace once, up front. `float_slots` / `code_slots` are the
/// peak per-sample scratch demands (computed by
/// `TabularPredictor::tabular_arch()` from the actual kernel configs).
struct TabularArch {
  std::size_t seq_len = 0;      ///< T: input sequence length
  std::size_t dim = 0;          ///< D: model (embedding) width
  std::size_t ffn_dim = 0;      ///< DF: FFN hidden width
  std::size_t out_dim = 0;      ///< DO: output bitmap width
  std::size_t heads = 0;        ///< attention heads per layer
  std::size_t layers = 0;       ///< encoder layers
  std::size_t float_slots = 0;  ///< peak float scratch per sample
  std::size_t code_slots = 0;   ///< peak uint32 scratch per sample

  /// Per-head width D / heads (0 for a head-less shell).
  std::size_t head_dim() const { return heads == 0 ? 0 : dim / heads; }
};

/// The per-thread inference arena of the file comment: a bump allocator
/// over chunked, pointer-stable slabs (one for floats, one for uint32
/// codes) with mark/rewind scoping. Steady-state query paths allocate
/// exclusively from it — zero heap traffic after the first sample.
class InferenceWorkspace {
 public:
  /// Empty workspace; slabs grow on first use (or call `ensure`).
  InferenceWorkspace() = default;
  /// Pre-sizes the slabs so a forward pass of `arch` never overflows.
  explicit InferenceWorkspace(const TabularArch& arch) { ensure(arch); }

  InferenceWorkspace(const InferenceWorkspace&) = delete;
  InferenceWorkspace& operator=(const InferenceWorkspace&) = delete;
  /// Movable so containers of per-shard workspaces work; moved-from
  /// workspaces are empty.
  InferenceWorkspace(InferenceWorkspace&&) = default;
  InferenceWorkspace& operator=(InferenceWorkspace&&) = default;

  /// Grows the first slab to cover `arch` if needed. Must not be called
  /// while allocations are outstanding (i.e. only at mark depth zero).
  void ensure(const TabularArch& arch);

  /// Bump-allocates `n` floats (uninitialized).
  float* floats(std::size_t n) { return float_slab_.alloc(n); }
  /// Bump-allocates `n` uint32 code slots (uninitialized).
  std::uint32_t* codes(std::size_t n) { return code_slab_.alloc(n); }

  /// A snapshot of both slabs' bump positions; obtained from `mark()` and
  /// handed back to `rewind()`. Markers must be rewound in LIFO order
  /// (stack discipline) — rewinding an outer marker invalidates every
  /// allocation and marker taken after it.
  struct Marker {
    std::size_t float_chunk;  ///< float slab: active chunk index
    std::size_t float_used;   ///< float slab: elements used in that chunk
    std::size_t code_chunk;   ///< code slab: active chunk index
    std::size_t code_used;    ///< code slab: elements used in that chunk
  };

  /// Captures the current bump positions of both slabs.
  Marker mark() const {
    return {float_slab_.chunk_idx_, float_slab_.used_, code_slab_.chunk_idx_, code_slab_.used_};
  }
  /// Releases everything allocated after `m` without freeing memory.
  void rewind(const Marker& m) {
    float_slab_.rewind(m.float_chunk, m.float_used);
    code_slab_.rewind(m.code_chunk, m.code_used);
  }

 private:
  template <typename T>
  struct Slab {
    // Chunks are unique_ptr<T[]> so growth never relocates live buffers.
    std::vector<std::unique_ptr<T[]>> chunks_;
    std::vector<std::size_t> capacities_;
    std::size_t chunk_idx_ = 0;
    std::size_t used_ = 0;

    T* alloc(std::size_t n) {
      while (chunk_idx_ < chunks_.size() && used_ + n > capacities_[chunk_idx_]) {
        ++chunk_idx_;
        used_ = 0;
      }
      if (chunk_idx_ == chunks_.size()) add_chunk(n);
      T* p = chunks_[chunk_idx_].get() + used_;
      used_ += n;
      return p;
    }
    void add_chunk(std::size_t min_cap) {
      std::size_t cap = capacities_.empty() ? 1024 : capacities_.back() * 2;
      if (cap < min_cap) cap = min_cap;
      chunks_.push_back(std::unique_ptr<T[]>(new T[cap]));
      capacities_.push_back(cap);
    }
    void rewind(std::size_t chunk, std::size_t used) {
      chunk_idx_ = chunk;
      used_ = used;
    }
  };

  Slab<float> float_slab_;
  Slab<std::uint32_t> code_slab_;
};

/// The calling thread's reusable workspace. Wrapper entry points
/// (`TabularPredictor::forward`, Tensor-based kernel queries) draw from it
/// so steady-state inference performs no heap allocation; hot paths that
/// manage their own lifetimes pass an explicit workspace instead. Safe
/// because all users follow mark/rewind stack discipline.
InferenceWorkspace& thread_local_workspace();

}  // namespace dart::tabular
