#include "tabular/linear_kernel.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "pq/kmeans.hpp"

namespace dart::tabular {

LinearKernel::LinearKernel(const nn::Tensor& weight, const nn::Tensor& bias,
                           const nn::Tensor& training_rows, const KernelConfig& config)
    : config_(config), in_dim_(weight.dim(1)), out_dim_(weight.dim(0)) {
  if (training_rows.ndim() != 2 || training_rows.dim(1) != in_dim_) {
    throw std::invalid_argument("LinearKernel: training rows must be [M, DI]");
  }
  if (in_dim_ % config.num_subspaces != 0) {
    throw std::invalid_argument("LinearKernel: DI must be divisible by C");
  }
  sub_dim_ = in_dim_ / config.num_subspaces;
  const std::size_t k = config.num_prototypes;
  const std::size_t c_count = config.num_subspaces;
  const std::size_t m = training_rows.dim(0);

  table_.assign(c_count * k * out_dim_, 0.0f);
  encoders_.resize(c_count);

  // Per-subspace prototype learning + table construction (Eq. 10).
  // Subspaces are independent — parallelize across them. Each subspace owns
  // the disjoint table block [c*K*DO, (c+1)*K*DO).
  common::parallel_for_each(c_count, [&](std::size_t c) {
    nn::Tensor sub({m, sub_dim_});
    for (std::size_t i = 0; i < m; ++i) {
      const float* src = training_rows.row(i) + c * sub_dim_;
      std::copy(src, src + sub_dim_, sub.row(i));
    }
    pq::KMeansOptions km;
    km.max_iters = config_.kmeans_iters;
    km.seed = common::derive_seed(config_.seed, c);
    pq::KMeansResult res = pq::kmeans(sub, k, km);
    // h^c_o(W)_k = W_o,c · P_ck  (+ bias folded into subspace 0).
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* proto = res.centroids.row(kk);
      float* trow = table_.data() + (c * k + kk) * out_dim_;
      for (std::size_t o = 0; o < out_dim_; ++o) {
        const float* wrow = weight.row(o) + c * sub_dim_;
        float acc = 0.0f;
        for (std::size_t j = 0; j < sub_dim_; ++j) acc += wrow[j] * proto[j];
        if (c == 0) acc += bias[o];
        trow[o] = acc;
      }
    }
    encoders_[c] = pq::make_encoder(config_.encoder, res.centroids);
  }, 1);
}

LinearKernel LinearKernel::from_parts(const KernelConfig& config, std::size_t in_dim,
                                      std::size_t out_dim, std::vector<float> table,
                                      std::vector<std::unique_ptr<pq::Encoder>> encoders) {
  const std::size_t k = config.num_prototypes;
  const std::size_t c_count = config.num_subspaces;
  if (in_dim == 0 || out_dim == 0 || k == 0 || c_count == 0 || in_dim % c_count != 0) {
    throw std::invalid_argument("LinearKernel::from_parts: inconsistent dimensions");
  }
  if (table.size() != c_count * k * out_dim) {
    throw std::invalid_argument("LinearKernel::from_parts: table size mismatch");
  }
  if (encoders.size() != c_count) {
    throw std::invalid_argument("LinearKernel::from_parts: encoder count mismatch");
  }
  const std::size_t sub_dim = in_dim / c_count;
  for (const auto& enc : encoders) {
    if (!enc || enc->vec_dim() != sub_dim || enc->num_prototypes() != k) {
      throw std::invalid_argument("LinearKernel::from_parts: encoder shape mismatch");
    }
  }
  LinearKernel kernel;
  kernel.config_ = config;
  kernel.in_dim_ = in_dim;
  kernel.out_dim_ = out_dim;
  kernel.sub_dim_ = sub_dim;
  kernel.table_ = std::move(table);
  kernel.encoders_ = std::move(encoders);
  return kernel;
}

void LinearKernel::query_into(const float* rows, std::size_t n, std::size_t row_stride,
                              float* out, std::size_t out_stride,
                              InferenceWorkspace& ws) const {
  const std::size_t k = config_.num_prototypes;
  const std::size_t c_count = config_.num_subspaces;
  const auto m = ws.mark();
  // Codes in subspace-major (SoA) order: codes[c * n + i].
  std::uint32_t* codes = ws.codes(c_count * n);
  for (std::size_t c = 0; c < c_count; ++c) {
    encoders_[c]->encode_batch(rows + c * sub_dim_, row_stride, n, codes + c * n);
  }
  if (!quant_.empty()) {
    // Quantized aggregation (DESIGN.md §10): integer row-adds + one
    // dequantization affine per output column.
    aggregate_quantized(quant_, codes, n, out, out_stride);
    ws.rewind(m);
    return;
  }
  const float* tbl = table_.data();
  for (std::size_t i = 0; i < n; ++i) {
    float* orow = out + i * out_stride;
    // Subspace 0 initializes (bias is folded there), the rest accumulate:
    // C contiguous row-adds of length DO.
    const float* t0 = tbl + codes[i] * out_dim_;
    std::copy(t0, t0 + out_dim_, orow);
    for (std::size_t c = 1; c < c_count; ++c) {
      const float* tc = tbl + (c * k + codes[c * n + i]) * out_dim_;
      for (std::size_t o = 0; o < out_dim_; ++o) orow[o] += tc[o];
    }
  }
  ws.rewind(m);
}

nn::Tensor LinearKernel::query(const nn::Tensor& rows) const {
  if (rows.ndim() != 2 || rows.dim(1) != in_dim_) {
    throw std::invalid_argument("LinearKernel::query: rows must be [T, DI]");
  }
  const std::size_t t_len = rows.dim(0);
  nn::Tensor out({t_len, out_dim_});
  // Encoding, lookups and aggregation per row are independent
  // ("embarrassingly parallel" per §V-A2). One workspace per block.
  common::parallel_for_blocks(t_len, [&](std::size_t, std::size_t r0, std::size_t r1) {
    query_into(rows.row(r0), r1 - r0, in_dim_, out.row(r0), out_dim_,
               thread_local_workspace());
  }, 16);
  return out;
}

nn::Tensor LinearKernel::query3d(const nn::Tensor& x) const {
  if (x.ndim() != 3) throw std::invalid_argument("LinearKernel::query3d expects [B,T,DI]");
  nn::Tensor flat = x.reshaped({x.dim(0) * x.dim(1), x.dim(2)});
  nn::Tensor out = query(flat);
  out.reshape({x.dim(0), x.dim(1), out_dim_});
  return out;
}

std::size_t LinearKernel::table_bytes() const { return table_.size() * sizeof(float); }

void LinearKernel::quantize(QuantMode mode) {
  if (mode == QuantMode::kOff) {
    quant_ = QuantizedTable{};
    return;
  }
  quant_ = quantize_table(table_.data(), config_.num_subspaces, config_.num_prototypes,
                          out_dim_, mode);
}

void LinearKernel::attach_quantized(QuantizedTable table) {
  if (table.empty()) {
    quant_ = QuantizedTable{};
    return;
  }
  const std::size_t expected =
      config_.num_subspaces * config_.num_prototypes * out_dim_;
  const bool payload_ok = table.mode == QuantMode::kInt16
                              ? (table.q16.size() == expected && table.q8.empty())
                              : (table.q8.size() == expected && table.q16.empty());
  if (table.c != config_.num_subspaces || table.k != config_.num_prototypes ||
      table.out_dim != out_dim_ || table.scales.size() != out_dim_ ||
      table.offsets.size() != out_dim_ || !payload_ok) {
    throw std::invalid_argument("LinearKernel::attach_quantized: payload shape mismatch");
  }
  rebuild_shuffle_lut(table);
  quant_ = std::move(table);
}

}  // namespace dart::tabular
