// Linear tabularization kernel (the paper's §V-A, Eq. 10-11).
//
// Converts y = W x + b into table lookups: prototypes are learned (k-means)
// on the layer's *actual input distribution* (rows of the training
// activations), then for every output channel o and subspace c the dot
// products W_o,c · P_ck are precomputed. The bias is folded into subspace 0
// so query-time aggregation adds it for free.
//
// Table layout is [C][K][DO] (DESIGN.md §6): the DO outputs of one
// (subspace, prototype) pair are contiguous, so aggregation is C row-copies/
// row-adds of length DO — auto-vectorizable streaming adds instead of the
// DO×C strided gathers a [DO][C][K] layout forces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"
#include "pq/encoder.hpp"
#include "tabular/quant.hpp"
#include "tabular/workspace.hpp"

namespace dart::tabular {

/// Training-time configuration of one linear kernel: the <K, C> table
/// geometry plus the prototype-learning knobs.
struct KernelConfig {
  std::size_t num_prototypes = 128;  ///< K: prototypes per subspace
  std::size_t num_subspaces = 2;     ///< C: input subspaces (codebooks)
  pq::EncoderKind encoder = pq::EncoderKind::kExact;  ///< query-time encoder
  std::size_t kmeans_iters = 10;  ///< k-means refinement iterations
  std::uint64_t seed = 7;         ///< prototype-learning RNG seed
};

/// A tabularized linear layer (the paper's §V-A): y = Wx + b replaced by
/// per-subspace prototype encoding plus C row-adds from the precomputed
/// [C][K][DO] output table. Optionally carries a quantized mirror of the
/// table (DESIGN.md §10) that `query_into` aggregates instead, trading a
/// bounded per-column error for 2–4× smaller table traffic.
class LinearKernel {
 public:
  /// `weight` [DO, DI], `bias` [DO], `training_rows` [M, DI] — the observed
  /// inputs of this layer (batch and sequence flattened), per Fig. 4a.
  LinearKernel(const nn::Tensor& weight, const nn::Tensor& bias,
               const nn::Tensor& training_rows, const KernelConfig& config);

  /// Deserialization factory: adopts a previously trained table (in the
  /// [C][K][DO] layout of `table()`) and per-subspace encoders verbatim —
  /// no k-means, no weights. Validates dimensional consistency (table size,
  /// encoder count/width/prototype count) and throws std::invalid_argument
  /// on mismatch, so a corrupted artifact cannot yield out-of-bounds
  /// lookups. Used by `src/io/artifact.cpp`.
  static LinearKernel from_parts(const KernelConfig& config, std::size_t in_dim,
                                 std::size_t out_dim, std::vector<float> table,
                                 std::vector<std::unique_ptr<pq::Encoder>> encoders);

  /// Zero-allocation hot path: applies the kernel to `n` rows starting at
  /// `rows` (consecutive rows `row_stride` floats apart) and writes row i's
  /// DO outputs at `out + i * out_stride`. Strictly serial — callers own
  /// all parallelism (DESIGN.md §6) — and allocates only from `ws`. When a
  /// quantized table is attached (`quantize`/`attach_quantized`), the
  /// aggregation runs on it within the §10 error budget; otherwise the
  /// exact float table serves.
  void query_into(const float* rows, std::size_t n, std::size_t row_stride, float* out,
                  std::size_t out_stride, InferenceWorkspace& ws) const;

  /// Builds (or clears, for kOff) the quantized mirror of the output table
  /// (DESIGN.md §10). Deterministic from the float table, which is kept —
  /// switching back to kOff restores bit-exact float queries. Not
  /// thread-safe vs concurrent queries: quantize before sharing.
  void quantize(QuantMode mode);

  /// Adopts a quantized table verbatim (the `.dart` QNTT-chunk load path —
  /// bit-exact vs the saving process, no requantization). Validates the
  /// payload against this kernel's <C, K, DO> and throws
  /// std::invalid_argument on mismatch. Rebuilds the derived vpshufb LUT.
  void attach_quantized(QuantizedTable table);

  /// Active quantization mode (kOff when the float table serves).
  QuantMode quant_mode() const { return quant_.mode; }

  /// The attached quantized table (empty() when mode is kOff); exposed for
  /// serialization and the golden tolerance tests.
  const QuantizedTable& quantized() const { return quant_; }

  /// Applies the kernel to [T, DI] (or [M, DI]) rows -> [T, DO].
  /// Pure lookups + aggregation; no multiplications with weights.
  /// Convenience wrapper over `query_into` that parallelizes across rows.
  nn::Tensor query(const nn::Tensor& rows) const;

  /// Applies to a 3-D activation [B, T, DI] -> [B, T, DO].
  nn::Tensor query3d(const nn::Tensor& x) const;

  /// Input width DI.
  std::size_t in_dim() const { return in_dim_; }
  /// Output width DO.
  std::size_t out_dim() const { return out_dim_; }
  /// K: prototypes per subspace.
  std::size_t num_prototypes() const { return config_.num_prototypes; }
  /// C: input subspaces.
  std::size_t num_subspaces() const { return config_.num_subspaces; }

  /// Workspace code slots one `query_into` over `n` rows needs.
  std::size_t code_slots(std::size_t n) const { return config_.num_subspaces * n; }

  /// Table storage in bytes (DO*K*C entries, 4 bytes each) — the S_h term
  /// of Eq. 18.
  std::size_t table_bytes() const;

  /// The training-time configuration this kernel was built with.
  const KernelConfig& config() const { return config_; }

  /// Raw table in [C][K][DO] layout: entry ((c*K)+k)*DO+o = W_o,c · P_ck
  /// (+ b_o when c == 0). Exposed for the golden-reference tests.
  const std::vector<float>& table() const { return table_; }
  /// Per-subspace encoder (for the golden-reference tests).
  const pq::Encoder& encoder(std::size_t c) const { return *encoders_[c]; }

 private:
  LinearKernel() = default;  // from_parts fills every member

  KernelConfig config_;
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  std::size_t sub_dim_ = 0;
  // table_[((c * K) + k) * DO + o] = W_o,c · P_ck (+ b_o when c == 0).
  std::vector<float> table_;
  std::vector<std::unique_ptr<pq::Encoder>> encoders_;  ///< one per subspace
  QuantizedTable quant_;  ///< optional quantized mirror (empty = float path)
};

}  // namespace dart::tabular
