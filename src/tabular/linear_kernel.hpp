// Linear tabularization kernel (the paper's §V-A, Eq. 10-11).
//
// Converts y = W x + b into table lookups: prototypes are learned (k-means)
// on the layer's *actual input distribution* (rows of the training
// activations), then for every output channel o and subspace c the dot
// products W_o,c · P_ck are precomputed. The bias is folded into subspace 0
// so query-time aggregation adds it for free.
//
// Table layout is [C][K][DO] (DESIGN.md §6): the DO outputs of one
// (subspace, prototype) pair are contiguous, so aggregation is C row-copies/
// row-adds of length DO — auto-vectorizable streaming adds instead of the
// DO×C strided gathers a [DO][C][K] layout forces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"
#include "pq/encoder.hpp"
#include "tabular/workspace.hpp"

namespace dart::tabular {

struct KernelConfig {
  std::size_t num_prototypes = 128;  ///< K
  std::size_t num_subspaces = 2;     ///< C
  pq::EncoderKind encoder = pq::EncoderKind::kExact;
  std::size_t kmeans_iters = 10;
  std::uint64_t seed = 7;
};

class LinearKernel {
 public:
  /// `weight` [DO, DI], `bias` [DO], `training_rows` [M, DI] — the observed
  /// inputs of this layer (batch and sequence flattened), per Fig. 4a.
  LinearKernel(const nn::Tensor& weight, const nn::Tensor& bias,
               const nn::Tensor& training_rows, const KernelConfig& config);

  /// Deserialization factory: adopts a previously trained table (in the
  /// [C][K][DO] layout of `table()`) and per-subspace encoders verbatim —
  /// no k-means, no weights. Validates dimensional consistency (table size,
  /// encoder count/width/prototype count) and throws std::invalid_argument
  /// on mismatch, so a corrupted artifact cannot yield out-of-bounds
  /// lookups. Used by `src/io/artifact.cpp`.
  static LinearKernel from_parts(const KernelConfig& config, std::size_t in_dim,
                                 std::size_t out_dim, std::vector<float> table,
                                 std::vector<std::unique_ptr<pq::Encoder>> encoders);

  /// Zero-allocation hot path: applies the kernel to `n` rows starting at
  /// `rows` (consecutive rows `row_stride` floats apart) and writes row i's
  /// DO outputs at `out + i * out_stride`. Strictly serial — callers own
  /// all parallelism (DESIGN.md §6) — and allocates only from `ws`.
  void query_into(const float* rows, std::size_t n, std::size_t row_stride, float* out,
                  std::size_t out_stride, InferenceWorkspace& ws) const;

  /// Applies the kernel to [T, DI] (or [M, DI]) rows -> [T, DO].
  /// Pure lookups + aggregation; no multiplications with weights.
  /// Convenience wrapper over `query_into` that parallelizes across rows.
  nn::Tensor query(const nn::Tensor& rows) const;

  /// Applies to a 3-D activation [B, T, DI] -> [B, T, DO].
  nn::Tensor query3d(const nn::Tensor& x) const;

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  std::size_t num_prototypes() const { return config_.num_prototypes; }
  std::size_t num_subspaces() const { return config_.num_subspaces; }

  /// Workspace code slots one `query_into` over `n` rows needs.
  std::size_t code_slots(std::size_t n) const { return config_.num_subspaces * n; }

  /// Table storage in bytes (DO*K*C entries, 4 bytes each) — the S_h term
  /// of Eq. 18.
  std::size_t table_bytes() const;

  const KernelConfig& config() const { return config_; }

  /// Raw table in [C][K][DO] layout: entry ((c*K)+k)*DO+o = W_o,c · P_ck
  /// (+ b_o when c == 0). Exposed for the golden-reference tests.
  const std::vector<float>& table() const { return table_; }
  /// Per-subspace encoder (for the golden-reference tests).
  const pq::Encoder& encoder(std::size_t c) const { return *encoders_[c]; }

 private:
  LinearKernel() = default;  // from_parts fills every member

  KernelConfig config_;
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  std::size_t sub_dim_ = 0;
  // table_[((c * K) + k) * DO + o] = W_o,c · P_ck (+ b_o when c == 0).
  std::vector<float> table_;
  std::vector<std::unique_ptr<pq::Encoder>> encoders_;  ///< one per subspace
};

}  // namespace dart::tabular
