// Linear tabularization kernel (the paper's §V-A, Eq. 10-11).
//
// Converts y = W x + b into table lookups: prototypes are learned (k-means)
// on the layer's *actual input distribution* (rows of the training
// activations), then for every output channel o and subspace c the dot
// products W_o,c · P_ck are precomputed. The bias is folded into subspace 0
// so query-time aggregation adds it for free.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"
#include "pq/encoder.hpp"

namespace dart::tabular {

struct KernelConfig {
  std::size_t num_prototypes = 128;  ///< K
  std::size_t num_subspaces = 2;     ///< C
  pq::EncoderKind encoder = pq::EncoderKind::kExact;
  std::size_t kmeans_iters = 10;
  std::uint64_t seed = 7;
};

class LinearKernel {
 public:
  /// `weight` [DO, DI], `bias` [DO], `training_rows` [M, DI] — the observed
  /// inputs of this layer (batch and sequence flattened), per Fig. 4a.
  LinearKernel(const nn::Tensor& weight, const nn::Tensor& bias,
               const nn::Tensor& training_rows, const KernelConfig& config);

  /// Applies the kernel to [T, DI] (or [M, DI]) rows -> [T, DO].
  /// Pure lookups + aggregation; no multiplications with weights.
  nn::Tensor query(const nn::Tensor& rows) const;

  /// Applies to a 3-D activation [B, T, DI] -> [B, T, DO].
  nn::Tensor query3d(const nn::Tensor& x) const;

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  std::size_t num_prototypes() const { return config_.num_prototypes; }
  std::size_t num_subspaces() const { return config_.num_subspaces; }

  /// Table storage in bytes (DO*K*C entries, 4 bytes each) — the S_h term
  /// of Eq. 18.
  std::size_t table_bytes() const;

  const KernelConfig& config() const { return config_; }

 private:
  KernelConfig config_;
  std::size_t in_dim_;
  std::size_t out_dim_;
  std::size_t sub_dim_;
  // table_[((o * C) + c) * K + k] = W_o,c · P_ck (+ b_o when c == 0).
  std::vector<float> table_;
  std::vector<std::unique_ptr<pq::Encoder>> encoders_;  ///< one per subspace
};

}  // namespace dart::tabular
