#include "tabular/lut.hpp"

#include <cmath>

namespace dart::tabular {

SigmoidLut::SigmoidLut() {
  // Entry i holds sigmoid at the midpoint of its cell, halving the
  // worst-case quantization error vs sampling at cell edges.
  const float step = 2.0f * kRange / static_cast<float>(kEntries);
  inv_step_ = 1.0f / step;
  for (std::size_t i = 0; i < kEntries; ++i) {
    const float x = -kRange + (static_cast<float>(i) + 0.5f) * step;
    table_[i] = 1.0f / (1.0f + std::exp(-x));
  }
}

nn::Tensor SigmoidLut::apply(const nn::Tensor& x) const {
  nn::Tensor out(x.shape());
  apply_batch(x.data(), x.numel(), out.data());
  return out;
}

}  // namespace dart::tabular
