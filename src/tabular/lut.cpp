#include "tabular/lut.hpp"

#include <algorithm>
#include <cmath>

namespace dart::tabular {

SigmoidLut::SigmoidLut() {
  // Entry i holds sigmoid at the midpoint of its cell, halving the
  // worst-case quantization error vs sampling at cell edges.
  const float step = 2.0f * kRange / static_cast<float>(kEntries);
  for (std::size_t i = 0; i < kEntries; ++i) {
    const float x = -kRange + (static_cast<float>(i) + 0.5f) * step;
    table_[i] = 1.0f / (1.0f + std::exp(-x));
  }
}

float SigmoidLut::operator()(float x) const {
  if (x <= -kRange) return 0.0f;
  if (x >= kRange) return 1.0f;
  const float step = 2.0f * kRange / static_cast<float>(kEntries);
  auto idx = static_cast<std::size_t>((x + kRange) / step);
  idx = std::min(idx, kEntries - 1);
  return table_[idx];
}

nn::Tensor SigmoidLut::apply(const nn::Tensor& x) const {
  nn::Tensor out(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) out[i] = (*this)(x[i]);
  return out;
}

}  // namespace dart::tabular
