#include "tabular/lut.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dart::tabular {

SigmoidLut::SigmoidLut() {
  // Entry i holds sigmoid at the midpoint of its cell, halving the
  // worst-case quantization error vs sampling at cell edges.
  const float step = 2.0f * kRange / static_cast<float>(kEntries);
  inv_step_ = 1.0f / step;
  for (std::size_t i = 0; i < kEntries; ++i) {
    const float x = -kRange + (static_cast<float>(i) + 0.5f) * step;
    table_[i] = 1.0f / (1.0f + std::exp(-x));
  }
}

void SigmoidLut::set_table(const float* values, std::size_t n) {
  if (n != kEntries) throw std::invalid_argument("SigmoidLut::set_table: size mismatch");
  std::copy(values, values + n, table_.begin());
}

nn::Tensor SigmoidLut::apply(const nn::Tensor& x) const {
  nn::Tensor out(x.shape());
  apply_batch(x.data(), x.numel(), out.data());
  return out;
}

}  // namespace dart::tabular
