// Attention tabularization kernel (the paper's §V-B, Eq. 12-15).
//
// Tabularizes one attention head over [T, Dk] inputs without any fixed
// weight matrix, via two quantization stages:
//
//   1. QK stage — prototypes for Q rows and K rows per Dk-subspace; the QK
//      table stores pairwise prototype dot products (Eq. 12), so the T×T
//      score matrix is recovered by lookups (Eq. 13). Depth K², width Ck.
//   2. QKV stage — the approximated score rows (length T) are quantized a
//      second time; scaling by 1/sqrt(Dk) and the activation are applied to
//      the score prototypes at *training* time (Eq. 14), then dotted against
//      prototypes of V columns (V^T rows), giving the QKV table of depth K²,
//      width Ct. A query is two rounds of encode->lookup->aggregate (Eq. 15).
//
// Double quantization keeps total depth at 2K² instead of the naive K³.
//
// Activation note: the paper's text says Softmax but its Eq. 14 applies a
// Sigmoid to the scaled score prototypes — softmax cannot be folded
// per-subspace because it normalizes over the full row. We implement Eq. 14
// (sigmoid folding) as the default and also provide a softmax-at-query mode
// for ablation (row softmax on the looked-up scores costs O(T) scalar ops,
// no matmul).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"
#include "pq/encoder.hpp"
#include "tabular/linear_kernel.hpp"
#include "tabular/workspace.hpp"

namespace dart::tabular {

enum class AttentionActivation {
  kSigmoidFolded,   ///< Eq. 14: sigmoid folded into the QKV table (default)
  kSoftmaxAtQuery,  ///< ablation: exact row softmax applied to looked-up scores
};

struct AttentionKernelConfig {
  std::size_t num_prototypes = 128;  ///< K (shared by both stages, as in the paper)
  std::size_t ck = 2;                ///< subspaces over the Dk dimension
  std::size_t ct = 2;                ///< subspaces over the T dimension
  AttentionActivation activation = AttentionActivation::kSigmoidFolded;
  pq::EncoderKind encoder = pq::EncoderKind::kExact;
  std::size_t kmeans_iters = 10;
  std::uint64_t seed = 11;
};

class AttentionKernel {
 public:
  /// Trains both stages from per-head activations `q`,`k`,`v` of shape
  /// [N, T, Dk] collected on the training set.
  AttentionKernel(const nn::Tensor& q, const nn::Tensor& k, const nn::Tensor& v,
                  const AttentionKernelConfig& config);

  /// Deserialization factory: adopts previously trained QK/QKV tables (the
  /// `qk_table()` / `qkv_table()` layouts) and the four encoder banks
  /// verbatim — no k-means, no activations. Validates every size and
  /// encoder shape against `config`/`t_len`/`dk` and throws
  /// std::invalid_argument on mismatch. Used by `src/io/artifact.cpp`.
  static AttentionKernel from_parts(const AttentionKernelConfig& config, std::size_t t_len,
                                    std::size_t dk, std::vector<float> qk_table,
                                    std::vector<float> qkv_table,
                                    std::vector<std::unique_ptr<pq::Encoder>> q_encoders,
                                    std::vector<std::unique_ptr<pq::Encoder>> k_encoders,
                                    std::vector<std::unique_ptr<pq::Encoder>> s_encoders,
                                    std::vector<std::unique_ptr<pq::Encoder>> v_encoders);

  /// Zero-allocation hot path: queries one sample whose q/k/v rows live at
  /// `q + t*q_stride` etc. (so per-head slices of a packed [T, 3D] QKV
  /// activation can be queried without split copies) and writes row t of
  /// the [T, Dk] output at `out + t*out_stride`. Strictly serial; scratch
  /// comes from `ws`.
  void query_into(const float* q, std::size_t q_stride, const float* k, std::size_t k_stride,
                  const float* v, std::size_t v_stride, float* out, std::size_t out_stride,
                  InferenceWorkspace& ws) const {
    query_batch_into(q, q_stride, k, k_stride, v, v_stride, 1, out, out_stride, ws);
  }

  /// Block variant: `n` consecutive samples whose q/k/v rows are uniformly
  /// strided across the whole block (true for a packed [n*T, 3D] QKV
  /// activation). All four encoder banks run ONE encode_batch per subspace
  /// over the n*T (or n*Dk) rows; only the table-lookup aggregation loops
  /// iterate per sample. Sample s's [T, Dk] output starts at
  /// `out + s*T*out_stride`.
  void query_batch_into(const float* q, std::size_t q_stride, const float* k,
                        std::size_t k_stride, const float* v, std::size_t v_stride,
                        std::size_t n, float* out, std::size_t out_stride,
                        InferenceWorkspace& ws) const;

  /// Queries one sample: q/k/v are [T, Dk]; returns [T, Dk].
  nn::Tensor query(const nn::Tensor& q, const nn::Tensor& k, const nn::Tensor& v) const;

  /// Reconstructs the approximate (unscaled) score matrix QK^T [T, T] via
  /// the first-stage lookups only (Eq. 13) — exposed for tests/ablation.
  nn::Tensor approx_scores(const nn::Tensor& q, const nn::Tensor& k) const;

  std::size_t seq_len() const { return t_len_; }
  std::size_t head_dim() const { return dk_; }

  /// Workspace demand of one single-sample `query_into` (floats, codes);
  /// the block variant scales both by the sample count.
  std::size_t float_slots() const { return t_len_ * t_len_ + dk_ * t_len_; }
  std::size_t code_slots() const {
    return 2 * config_.ck * t_len_ + config_.ct * (t_len_ + dk_);
  }

  /// Total table storage in bytes: K^2 * (Ck + Ct) entries (Eq. 19's S_h).
  std::size_t table_bytes() const;

  const AttentionKernelConfig& config() const { return config_; }

  // Raw tables and encoder banks (golden-reference tests). Layouts:
  // qk_table()[c*K*K + i*K + j] = P^c_q,i · P^c_k,j,
  // qkv_table()[c*K*K + i*K + j] = act(P^c_s,i / sqrt(Dk)) · P^c_v,j.
  const std::vector<float>& qk_table() const { return qk_table_; }
  const std::vector<float>& qkv_table() const { return qkv_table_; }
  const pq::Encoder& q_encoder(std::size_t c) const { return *q_encoders_[c]; }
  const pq::Encoder& k_encoder(std::size_t c) const { return *k_encoders_[c]; }
  const pq::Encoder& s_encoder(std::size_t c) const { return *s_encoders_[c]; }
  const pq::Encoder& v_encoder(std::size_t c) const { return *v_encoders_[c]; }

 private:
  AttentionKernel() = default;  // from_parts fills every member

  AttentionKernelConfig config_;
  std::size_t t_len_ = 0;
  std::size_t dk_ = 0;
  std::size_t sub_dk_ = 0;  ///< Dk / Ck
  std::size_t sub_t_ = 0;   ///< T / Ct

  // Stage 1: QK table, layout [c][i][j] = P^c_q,i · P^c_k,j.
  std::vector<float> qk_table_;  ///< Ck * K * K
  std::vector<std::unique_ptr<pq::Encoder>> q_encoders_;  ///< per Dk-subspace
  std::vector<std::unique_ptr<pq::Encoder>> k_encoders_;

  // Stage 2: QKV table, layout [c][i][j] = act(P^c_s,i / sqrt(Dk)) · P^c_v,j.
  std::vector<float> qkv_table_;  ///< Ct * K * K
  std::vector<std::unique_ptr<pq::Encoder>> s_encoders_;  ///< score-row subspaces
  std::vector<std::unique_ptr<pq::Encoder>> v_encoders_;  ///< V-column subspaces
};

}  // namespace dart::tabular
