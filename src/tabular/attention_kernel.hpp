// Attention tabularization kernel (the paper's §V-B, Eq. 12-15).
//
// Tabularizes one attention head over [T, Dk] inputs without any fixed
// weight matrix, via two quantization stages:
//
//   1. QK stage — prototypes for Q rows and K rows per Dk-subspace; the QK
//      table stores pairwise prototype dot products (Eq. 12), so the T×T
//      score matrix is recovered by lookups (Eq. 13). Depth K², width Ck.
//   2. QKV stage — the approximated score rows (length T) are quantized a
//      second time; scaling by 1/sqrt(Dk) and the activation are applied to
//      the score prototypes at *training* time (Eq. 14), then dotted against
//      prototypes of V columns (V^T rows), giving the QKV table of depth K²,
//      width Ct. A query is two rounds of encode->lookup->aggregate (Eq. 15).
//
// Double quantization keeps total depth at 2K² instead of the naive K³.
//
// Activation note: the paper's text says Softmax but its Eq. 14 applies a
// Sigmoid to the scaled score prototypes — softmax cannot be folded
// per-subspace because it normalizes over the full row. We implement Eq. 14
// (sigmoid folding) as the default and also provide a softmax-at-query mode
// for ablation (row softmax on the looked-up scores costs O(T) scalar ops,
// no matmul).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"
#include "pq/encoder.hpp"
#include "tabular/linear_kernel.hpp"

namespace dart::tabular {

enum class AttentionActivation {
  kSigmoidFolded,   ///< Eq. 14: sigmoid folded into the QKV table (default)
  kSoftmaxAtQuery,  ///< ablation: exact row softmax applied to looked-up scores
};

struct AttentionKernelConfig {
  std::size_t num_prototypes = 128;  ///< K (shared by both stages, as in the paper)
  std::size_t ck = 2;                ///< subspaces over the Dk dimension
  std::size_t ct = 2;                ///< subspaces over the T dimension
  AttentionActivation activation = AttentionActivation::kSigmoidFolded;
  pq::EncoderKind encoder = pq::EncoderKind::kExact;
  std::size_t kmeans_iters = 10;
  std::uint64_t seed = 11;
};

class AttentionKernel {
 public:
  /// Trains both stages from per-head activations `q`,`k`,`v` of shape
  /// [N, T, Dk] collected on the training set.
  AttentionKernel(const nn::Tensor& q, const nn::Tensor& k, const nn::Tensor& v,
                  const AttentionKernelConfig& config);

  /// Queries one sample: q/k/v are [T, Dk]; returns [T, Dk].
  nn::Tensor query(const nn::Tensor& q, const nn::Tensor& k, const nn::Tensor& v) const;

  /// Reconstructs the approximate (unscaled) score matrix QK^T [T, T] via
  /// the first-stage lookups only (Eq. 13) — exposed for tests/ablation.
  nn::Tensor approx_scores(const nn::Tensor& q, const nn::Tensor& k) const;

  std::size_t seq_len() const { return t_len_; }
  std::size_t head_dim() const { return dk_; }

  /// Total table storage in bytes: K^2 * (Ck + Ct) entries (Eq. 19's S_h).
  std::size_t table_bytes() const;

  const AttentionKernelConfig& config() const { return config_; }

 private:
  AttentionKernelConfig config_;
  std::size_t t_len_ = 0;
  std::size_t dk_ = 0;
  std::size_t sub_dk_ = 0;  ///< Dk / Ck
  std::size_t sub_t_ = 0;   ///< T / Ct

  // Stage 1: QK table, layout [c][i][j] = P^c_q,i · P^c_k,j.
  std::vector<float> qk_table_;  ///< Ck * K * K
  std::vector<std::unique_ptr<pq::Encoder>> q_encoders_;  ///< per Dk-subspace
  std::vector<std::unique_ptr<pq::Encoder>> k_encoders_;

  // Stage 2: QKV table, layout [c][i][j] = act(P^c_s,i / sqrt(Dk)) · P^c_v,j.
  std::vector<float> qkv_table_;  ///< Ct * K * K
  std::vector<std::unique_ptr<pq::Encoder>> s_encoders_;  ///< score-row subspaces
  std::vector<std::unique_ptr<pq::Encoder>> v_encoders_;  ///< V-column subspaces
};

}  // namespace dart::tabular
