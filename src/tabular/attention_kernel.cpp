#include "tabular/attention_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/ops.hpp"
#include "pq/kmeans.hpp"

namespace dart::tabular {

namespace {

/// Slices subspace `c` (width `sub`) out of [M, D] rows.
nn::Tensor slice_subspace(const nn::Tensor& rows, std::size_t c, std::size_t sub) {
  const std::size_t m = rows.dim(0);
  nn::Tensor out({m, sub});
  for (std::size_t i = 0; i < m; ++i) {
    const float* src = rows.row(i) + c * sub;
    std::copy(src, src + sub, out.row(i));
  }
  return out;
}

/// Pairwise prototype dot products over one subspace: table[i*K+j] = A_i·B_j.
void pairwise_dot(const nn::Tensor& a, const nn::Tensor& b, float* table) {
  const std::size_t k = a.dim(0), v = a.dim(1);
  for (std::size_t i = 0; i < k; ++i) {
    const float* arow = a.row(i);
    for (std::size_t j = 0; j < k; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (std::size_t d = 0; d < v; ++d) acc += arow[d] * brow[d];
      table[i * k + j] = acc;
    }
  }
}

}  // namespace

AttentionKernel::AttentionKernel(const nn::Tensor& q, const nn::Tensor& k, const nn::Tensor& v,
                                 const AttentionKernelConfig& config)
    : config_(config) {
  if (q.ndim() != 3 || k.ndim() != 3 || v.ndim() != 3) {
    throw std::invalid_argument("AttentionKernel: inputs must be [N, T, Dk]");
  }
  const std::size_t n = q.dim(0);
  t_len_ = q.dim(1);
  dk_ = q.dim(2);
  if (dk_ % config.ck != 0) throw std::invalid_argument("AttentionKernel: Dk % Ck != 0");
  if (t_len_ % config.ct != 0) throw std::invalid_argument("AttentionKernel: T % Ct != 0");
  sub_dk_ = dk_ / config.ck;
  sub_t_ = t_len_ / config.ct;
  const std::size_t kp = config.num_prototypes;

  // ---- Stage 1: Q/K prototypes and the QK table (Eq. 12) ----------------
  nn::Tensor q_rows = q.reshaped({n * t_len_, dk_});
  nn::Tensor k_rows = k.reshaped({n * t_len_, dk_});
  qk_table_.assign(config.ck * kp * kp, 0.0f);
  q_encoders_.resize(config.ck);
  k_encoders_.resize(config.ck);
  common::parallel_for_each(config.ck, [&](std::size_t c) {
    pq::KMeansOptions km;
    km.max_iters = config_.kmeans_iters;
    km.seed = common::derive_seed(config_.seed, 100 + c);
    auto rq = pq::kmeans(slice_subspace(q_rows, c, sub_dk_), kp, km);
    km.seed = common::derive_seed(config_.seed, 200 + c);
    auto rk = pq::kmeans(slice_subspace(k_rows, c, sub_dk_), kp, km);
    pairwise_dot(rq.centroids, rk.centroids, qk_table_.data() + c * kp * kp);
    q_encoders_[c] = pq::make_encoder(config_.encoder, rq.centroids);
    k_encoders_[c] = pq::make_encoder(config_.encoder, rk.centroids);
  }, 1);

  // ---- Approximate training scores via stage-1 lookups (Eq. 13) ---------
  // For the softmax-at-query mode the activation is applied here, so the
  // stage-2 prototypes are learned on the distribution the query will see.
  nn::Tensor score_rows({n * t_len_, t_len_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  common::parallel_for_each(n, [&](std::size_t s) {
    // SoA codes per subspace; one encode_batch per (subspace, sample).
    std::vector<std::uint32_t> qc(config_.ck * t_len_), kc(config_.ck * t_len_);
    const float* qbase = q.data() + s * t_len_ * dk_;
    const float* kbase = k.data() + s * t_len_ * dk_;
    for (std::size_t c = 0; c < config_.ck; ++c) {
      q_encoders_[c]->encode_batch(qbase + c * sub_dk_, dk_, t_len_, qc.data() + c * t_len_);
      k_encoders_[c]->encode_batch(kbase + c * sub_dk_, dk_, t_len_, kc.data() + c * t_len_);
    }
    for (std::size_t t1 = 0; t1 < t_len_; ++t1) {
      float* out = score_rows.row(s * t_len_ + t1);
      for (std::size_t t2 = 0; t2 < t_len_; ++t2) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < config_.ck; ++c) {
          acc += qk_table_[c * kp * kp + qc[c * t_len_ + t1] * kp + kc[c * t_len_ + t2]];
        }
        out[t2] = acc;
      }
      if (config_.activation == AttentionActivation::kSoftmaxAtQuery) {
        // Scale + row softmax now; prototypes then live in probability space.
        float mx = out[0] * scale;
        for (std::size_t t2 = 0; t2 < t_len_; ++t2) mx = std::max(mx, out[t2] * scale);
        float denom = 0.0f;
        for (std::size_t t2 = 0; t2 < t_len_; ++t2) {
          out[t2] = std::exp(out[t2] * scale - mx);
          denom += out[t2];
        }
        for (std::size_t t2 = 0; t2 < t_len_; ++t2) out[t2] /= denom;
      }
    }
  }, 1);

  // ---- V columns: reshape+transpose to [N*Dk, T] (the paper's V~r) ------
  nn::Tensor v_cols({n * dk_, t_len_});
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < dk_; ++d) {
      float* dst = v_cols.row(s * dk_ + d);
      for (std::size_t t = 0; t < t_len_; ++t) dst[t] = v.at(s, t, d);
    }
  }

  // ---- Stage 2: score/V prototypes and the QKV table (Eq. 14) -----------
  qkv_table_.assign(config.ct * kp * kp, 0.0f);
  s_encoders_.resize(config.ct);
  v_encoders_.resize(config.ct);
  common::parallel_for_each(config.ct, [&](std::size_t c) {
    pq::KMeansOptions km;
    km.max_iters = config_.kmeans_iters;
    km.seed = common::derive_seed(config_.seed, 300 + c);
    auto rs = pq::kmeans(slice_subspace(score_rows, c, sub_t_), kp, km);
    km.seed = common::derive_seed(config_.seed, 400 + c);
    auto rv = pq::kmeans(slice_subspace(v_cols, c, sub_t_), kp, km);
    // Fold scaling + activation into the score prototypes (Eq. 14); in the
    // softmax mode the scores were already activated above, so the
    // prototypes are used as-is.
    nn::Tensor activated = rs.centroids;
    if (config_.activation == AttentionActivation::kSigmoidFolded) {
      for (std::size_t i = 0; i < activated.numel(); ++i) {
        activated[i] = nn::ops::sigmoid(activated[i] * scale);
      }
    }
    pairwise_dot(activated, rv.centroids, qkv_table_.data() + c * kp * kp);
    s_encoders_[c] = pq::make_encoder(config_.encoder, rs.centroids);
    v_encoders_[c] = pq::make_encoder(config_.encoder, rv.centroids);
  }, 1);
}

AttentionKernel AttentionKernel::from_parts(
    const AttentionKernelConfig& config, std::size_t t_len, std::size_t dk,
    std::vector<float> qk_table, std::vector<float> qkv_table,
    std::vector<std::unique_ptr<pq::Encoder>> q_encoders,
    std::vector<std::unique_ptr<pq::Encoder>> k_encoders,
    std::vector<std::unique_ptr<pq::Encoder>> s_encoders,
    std::vector<std::unique_ptr<pq::Encoder>> v_encoders) {
  const std::size_t kp = config.num_prototypes;
  if (t_len == 0 || dk == 0 || kp == 0 || config.ck == 0 || config.ct == 0 ||
      dk % config.ck != 0 || t_len % config.ct != 0) {
    throw std::invalid_argument("AttentionKernel::from_parts: inconsistent dimensions");
  }
  if (qk_table.size() != config.ck * kp * kp || qkv_table.size() != config.ct * kp * kp) {
    throw std::invalid_argument("AttentionKernel::from_parts: table size mismatch");
  }
  const std::size_t sub_dk = dk / config.ck;
  const std::size_t sub_t = t_len / config.ct;
  auto check_bank = [kp](const std::vector<std::unique_ptr<pq::Encoder>>& bank,
                         std::size_t count, std::size_t width) {
    if (bank.size() != count) {
      throw std::invalid_argument("AttentionKernel::from_parts: encoder count mismatch");
    }
    for (const auto& enc : bank) {
      if (!enc || enc->vec_dim() != width || enc->num_prototypes() != kp) {
        throw std::invalid_argument("AttentionKernel::from_parts: encoder shape mismatch");
      }
    }
  };
  check_bank(q_encoders, config.ck, sub_dk);
  check_bank(k_encoders, config.ck, sub_dk);
  check_bank(s_encoders, config.ct, sub_t);
  check_bank(v_encoders, config.ct, sub_t);

  AttentionKernel kernel;
  kernel.config_ = config;
  kernel.t_len_ = t_len;
  kernel.dk_ = dk;
  kernel.sub_dk_ = sub_dk;
  kernel.sub_t_ = sub_t;
  kernel.qk_table_ = std::move(qk_table);
  kernel.qkv_table_ = std::move(qkv_table);
  kernel.q_encoders_ = std::move(q_encoders);
  kernel.k_encoders_ = std::move(k_encoders);
  kernel.s_encoders_ = std::move(s_encoders);
  kernel.v_encoders_ = std::move(v_encoders);
  return kernel;
}

void AttentionKernel::query_batch_into(const float* q, std::size_t q_stride, const float* k,
                                       std::size_t k_stride, const float* v,
                                       std::size_t v_stride, std::size_t n, float* out,
                                       std::size_t out_stride, InferenceWorkspace& ws) const {
  const std::size_t kp = config_.num_prototypes;
  const std::size_t ck = config_.ck, ct = config_.ct;
  const std::size_t rows = n * t_len_;   // Q/K/score rows across the block
  const std::size_t vrows = n * dk_;     // V columns across the block
  const auto m = ws.mark();

  // ---- Stage 1: encode all samples' Q/K rows, one call per subspace -----
  std::uint32_t* qc = ws.codes(ck * rows);
  std::uint32_t* kc = ws.codes(ck * rows);
  for (std::size_t c = 0; c < ck; ++c) {
    q_encoders_[c]->encode_batch(q + c * sub_dk_, q_stride, rows, qc + c * rows);
    k_encoders_[c]->encode_batch(k + c * sub_dk_, k_stride, rows, kc + c * rows);
  }

  // ---- Score matrices via QK lookups (Eq. 13), per sample ---------------
  float* scores = ws.floats(rows * t_len_);
  for (std::size_t s = 0; s < n; ++s) {
    float* sbase = scores + s * t_len_ * t_len_;
    for (std::size_t c = 0; c < ck; ++c) {
      const float* tab = qk_table_.data() + c * kp * kp;
      const std::uint32_t* qcc = qc + c * rows + s * t_len_;
      const std::uint32_t* kcc = kc + c * rows + s * t_len_;
      for (std::size_t t1 = 0; t1 < t_len_; ++t1) {
        const float* trow = tab + qcc[t1] * kp;
        float* srow = sbase + t1 * t_len_;
        if (c == 0) {
          for (std::size_t t2 = 0; t2 < t_len_; ++t2) srow[t2] = trow[kcc[t2]];
        } else {
          for (std::size_t t2 = 0; t2 < t_len_; ++t2) srow[t2] += trow[kcc[t2]];
        }
      }
    }
  }
  if (config_.activation == AttentionActivation::kSoftmaxAtQuery) {
    const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
    for (std::size_t t1 = 0; t1 < rows; ++t1) {
      float* srow = scores + t1 * t_len_;
      float mx = srow[0] * scale;
      for (std::size_t t2 = 0; t2 < t_len_; ++t2) {
        srow[t2] *= scale;
        mx = std::max(mx, srow[t2]);
      }
      float denom = 0.0f;
      for (std::size_t t2 = 0; t2 < t_len_; ++t2) {
        srow[t2] = std::exp(srow[t2] - mx);
        denom += srow[t2];
      }
      const float inv = 1.0f / denom;
      for (std::size_t t2 = 0; t2 < t_len_; ++t2) srow[t2] *= inv;
    }
  }

  // ---- Stage 2: encode all score rows and V columns ----------------------
  std::uint32_t* sc = ws.codes(ct * rows);
  std::uint32_t* vc = ws.codes(ct * vrows);
  for (std::size_t c = 0; c < ct; ++c) {
    s_encoders_[c]->encode_batch(scores + c * sub_t_, t_len_, rows, sc + c * rows);
  }
  // Transpose each sample's V to [Dk, T] so its columns become encoder rows.
  float* vt = ws.floats(vrows * t_len_);
  for (std::size_t s = 0; s < n; ++s) {
    float* vts = vt + s * dk_ * t_len_;
    const float* vs = v + s * t_len_ * v_stride;
    for (std::size_t t = 0; t < t_len_; ++t) {
      const float* vrow = vs + t * v_stride;
      for (std::size_t d = 0; d < dk_; ++d) vts[d * t_len_ + t] = vrow[d];
    }
  }
  for (std::size_t c = 0; c < ct; ++c) {
    v_encoders_[c]->encode_batch(vt + c * sub_t_, t_len_, vrows, vc + c * vrows);
  }

  // ---- Final lookups + aggregation (Eq. 15), per sample ------------------
  for (std::size_t s = 0; s < n; ++s) {
    float* obase = out + s * t_len_ * out_stride;
    for (std::size_t c = 0; c < ct; ++c) {
      const float* tab = qkv_table_.data() + c * kp * kp;
      const std::uint32_t* scc = sc + c * rows + s * t_len_;
      const std::uint32_t* vcc = vc + c * vrows + s * dk_;
      for (std::size_t t = 0; t < t_len_; ++t) {
        const float* trow = tab + scc[t] * kp;
        float* orow = obase + t * out_stride;
        if (c == 0) {
          for (std::size_t d = 0; d < dk_; ++d) orow[d] = trow[vcc[d]];
        } else {
          for (std::size_t d = 0; d < dk_; ++d) orow[d] += trow[vcc[d]];
        }
      }
    }
  }
  ws.rewind(m);
}

nn::Tensor AttentionKernel::approx_scores(const nn::Tensor& q, const nn::Tensor& k) const {
  const std::size_t kp = config_.num_prototypes;
  nn::Tensor scores({t_len_, t_len_});
  std::vector<std::uint32_t> qc(config_.ck * t_len_), kc(config_.ck * t_len_);
  for (std::size_t c = 0; c < config_.ck; ++c) {
    q_encoders_[c]->encode_batch(q.data() + c * sub_dk_, dk_, t_len_, qc.data() + c * t_len_);
    k_encoders_[c]->encode_batch(k.data() + c * sub_dk_, dk_, t_len_, kc.data() + c * t_len_);
  }
  for (std::size_t t1 = 0; t1 < t_len_; ++t1) {
    for (std::size_t t2 = 0; t2 < t_len_; ++t2) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < config_.ck; ++c) {
        acc += qk_table_[c * kp * kp + qc[c * t_len_ + t1] * kp + kc[c * t_len_ + t2]];
      }
      scores.at(t1, t2) = acc;
    }
  }
  return scores;
}

nn::Tensor AttentionKernel::query(const nn::Tensor& q, const nn::Tensor& k,
                                  const nn::Tensor& v) const {
  if (q.ndim() != 2 || q.dim(0) != t_len_ || q.dim(1) != dk_) {
    throw std::invalid_argument("AttentionKernel::query: q must be [T, Dk]");
  }
  nn::Tensor out({t_len_, dk_});
  query_into(q.data(), dk_, k.data(), dk_, v.data(), dk_, out.data(), dk_,
             thread_local_workspace());
  return out;
}

std::size_t AttentionKernel::table_bytes() const {
  return (qk_table_.size() + qkv_table_.size()) * sizeof(float);
}

}  // namespace dart::tabular
