#include "tabular/attention_kernel.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/ops.hpp"
#include "pq/kmeans.hpp"

namespace dart::tabular {

namespace {

/// Slices subspace `c` (width `sub`) out of [M, D] rows.
nn::Tensor slice_subspace(const nn::Tensor& rows, std::size_t c, std::size_t sub) {
  const std::size_t m = rows.dim(0);
  nn::Tensor out({m, sub});
  for (std::size_t i = 0; i < m; ++i) {
    const float* src = rows.row(i) + c * sub;
    std::copy(src, src + sub, out.row(i));
  }
  return out;
}

/// Pairwise prototype dot products over one subspace: table[i*K+j] = A_i·B_j.
void pairwise_dot(const nn::Tensor& a, const nn::Tensor& b, float* table) {
  const std::size_t k = a.dim(0), v = a.dim(1);
  for (std::size_t i = 0; i < k; ++i) {
    const float* arow = a.row(i);
    for (std::size_t j = 0; j < k; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (std::size_t d = 0; d < v; ++d) acc += arow[d] * brow[d];
      table[i * k + j] = acc;
    }
  }
}

}  // namespace

AttentionKernel::AttentionKernel(const nn::Tensor& q, const nn::Tensor& k, const nn::Tensor& v,
                                 const AttentionKernelConfig& config)
    : config_(config) {
  if (q.ndim() != 3 || k.ndim() != 3 || v.ndim() != 3) {
    throw std::invalid_argument("AttentionKernel: inputs must be [N, T, Dk]");
  }
  const std::size_t n = q.dim(0);
  t_len_ = q.dim(1);
  dk_ = q.dim(2);
  if (dk_ % config.ck != 0) throw std::invalid_argument("AttentionKernel: Dk % Ck != 0");
  if (t_len_ % config.ct != 0) throw std::invalid_argument("AttentionKernel: T % Ct != 0");
  sub_dk_ = dk_ / config.ck;
  sub_t_ = t_len_ / config.ct;
  const std::size_t kp = config.num_prototypes;

  // ---- Stage 1: Q/K prototypes and the QK table (Eq. 12) ----------------
  nn::Tensor q_rows = q.reshaped({n * t_len_, dk_});
  nn::Tensor k_rows = k.reshaped({n * t_len_, dk_});
  qk_table_.assign(config.ck * kp * kp, 0.0f);
  q_encoders_.resize(config.ck);
  k_encoders_.resize(config.ck);
  std::vector<nn::Tensor> q_protos(config.ck), k_protos(config.ck);
  common::parallel_for_each(config.ck, [&](std::size_t c) {
    pq::KMeansOptions km;
    km.max_iters = config_.kmeans_iters;
    km.seed = common::derive_seed(config_.seed, 100 + c);
    auto rq = pq::kmeans(slice_subspace(q_rows, c, sub_dk_), kp, km);
    km.seed = common::derive_seed(config_.seed, 200 + c);
    auto rk = pq::kmeans(slice_subspace(k_rows, c, sub_dk_), kp, km);
    pairwise_dot(rq.centroids, rk.centroids, qk_table_.data() + c * kp * kp);
    q_encoders_[c] = pq::make_encoder(config_.encoder, rq.centroids);
    k_encoders_[c] = pq::make_encoder(config_.encoder, rk.centroids);
    q_protos[c] = std::move(rq.centroids);
    k_protos[c] = std::move(rk.centroids);
  }, 1);

  // ---- Approximate training scores via stage-1 lookups (Eq. 13) ---------
  // For the softmax-at-query mode the activation is applied here, so the
  // stage-2 prototypes are learned on the distribution the query will see.
  nn::Tensor score_rows({n * t_len_, t_len_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
  common::parallel_for_each(n, [&](std::size_t s) {
    std::vector<std::uint32_t> qc(t_len_ * config_.ck), kc(t_len_ * config_.ck);
    for (std::size_t t = 0; t < t_len_; ++t) {
      const float* qrow = q.data() + (s * t_len_ + t) * dk_;
      const float* krow = k.data() + (s * t_len_ + t) * dk_;
      for (std::size_t c = 0; c < config_.ck; ++c) {
        qc[t * config_.ck + c] = q_encoders_[c]->encode(qrow + c * sub_dk_);
        kc[t * config_.ck + c] = k_encoders_[c]->encode(krow + c * sub_dk_);
      }
    }
    for (std::size_t t1 = 0; t1 < t_len_; ++t1) {
      float* out = score_rows.row(s * t_len_ + t1);
      for (std::size_t t2 = 0; t2 < t_len_; ++t2) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < config_.ck; ++c) {
          acc += qk_table_[c * kp * kp + qc[t1 * config_.ck + c] * kp + kc[t2 * config_.ck + c]];
        }
        out[t2] = acc;
      }
      if (config_.activation == AttentionActivation::kSoftmaxAtQuery) {
        // Scale + row softmax now; prototypes then live in probability space.
        float mx = out[0] * scale;
        for (std::size_t t2 = 0; t2 < t_len_; ++t2) mx = std::max(mx, out[t2] * scale);
        float denom = 0.0f;
        for (std::size_t t2 = 0; t2 < t_len_; ++t2) {
          out[t2] = std::exp(out[t2] * scale - mx);
          denom += out[t2];
        }
        for (std::size_t t2 = 0; t2 < t_len_; ++t2) out[t2] /= denom;
      }
    }
  }, 1);

  // ---- V columns: reshape+transpose to [N*Dk, T] (the paper's V~r) ------
  nn::Tensor v_cols({n * dk_, t_len_});
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < dk_; ++d) {
      float* dst = v_cols.row(s * dk_ + d);
      for (std::size_t t = 0; t < t_len_; ++t) dst[t] = v.at(s, t, d);
    }
  }

  // ---- Stage 2: score/V prototypes and the QKV table (Eq. 14) -----------
  qkv_table_.assign(config.ct * kp * kp, 0.0f);
  s_encoders_.resize(config.ct);
  v_encoders_.resize(config.ct);
  common::parallel_for_each(config.ct, [&](std::size_t c) {
    pq::KMeansOptions km;
    km.max_iters = config_.kmeans_iters;
    km.seed = common::derive_seed(config_.seed, 300 + c);
    auto rs = pq::kmeans(slice_subspace(score_rows, c, sub_t_), kp, km);
    km.seed = common::derive_seed(config_.seed, 400 + c);
    auto rv = pq::kmeans(slice_subspace(v_cols, c, sub_t_), kp, km);
    // Fold scaling + activation into the score prototypes (Eq. 14); in the
    // softmax mode the scores were already activated above, so the
    // prototypes are used as-is.
    nn::Tensor activated = rs.centroids;
    if (config_.activation == AttentionActivation::kSigmoidFolded) {
      for (std::size_t i = 0; i < activated.numel(); ++i) {
        activated[i] = nn::ops::sigmoid(activated[i] * scale);
      }
    }
    pairwise_dot(activated, rv.centroids, qkv_table_.data() + c * kp * kp);
    s_encoders_[c] = pq::make_encoder(config_.encoder, rs.centroids);
    v_encoders_[c] = pq::make_encoder(config_.encoder, rv.centroids);
  }, 1);
}

nn::Tensor AttentionKernel::approx_scores(const nn::Tensor& q, const nn::Tensor& k) const {
  const std::size_t kp = config_.num_prototypes;
  nn::Tensor scores({t_len_, t_len_});
  std::vector<std::uint32_t> qc(t_len_ * config_.ck), kc(t_len_ * config_.ck);
  for (std::size_t t = 0; t < t_len_; ++t) {
    for (std::size_t c = 0; c < config_.ck; ++c) {
      qc[t * config_.ck + c] = q_encoders_[c]->encode(q.row(t) + c * sub_dk_);
      kc[t * config_.ck + c] = k_encoders_[c]->encode(k.row(t) + c * sub_dk_);
    }
  }
  for (std::size_t t1 = 0; t1 < t_len_; ++t1) {
    for (std::size_t t2 = 0; t2 < t_len_; ++t2) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < config_.ck; ++c) {
        acc += qk_table_[c * kp * kp + qc[t1 * config_.ck + c] * kp + kc[t2 * config_.ck + c]];
      }
      scores.at(t1, t2) = acc;
    }
  }
  return scores;
}

nn::Tensor AttentionKernel::query(const nn::Tensor& q, const nn::Tensor& k,
                                  const nn::Tensor& v) const {
  if (q.ndim() != 2 || q.dim(0) != t_len_ || q.dim(1) != dk_) {
    throw std::invalid_argument("AttentionKernel::query: q must be [T, Dk]");
  }
  const std::size_t kp = config_.num_prototypes;
  nn::Tensor scores = approx_scores(q, k);
  if (config_.activation == AttentionActivation::kSoftmaxAtQuery) {
    const float scale = 1.0f / std::sqrt(static_cast<float>(dk_));
    scores *= scale;
    nn::ops::softmax_rows(scores);
  }
  // Second-stage encodings: score rows and V columns.
  std::vector<std::uint32_t> sc(t_len_ * config_.ct), vc(dk_ * config_.ct);
  for (std::size_t t = 0; t < t_len_; ++t) {
    for (std::size_t c = 0; c < config_.ct; ++c) {
      sc[t * config_.ct + c] = s_encoders_[c]->encode(scores.row(t) + c * sub_t_);
    }
  }
  std::vector<float> vcol(t_len_);
  for (std::size_t d = 0; d < dk_; ++d) {
    for (std::size_t t = 0; t < t_len_; ++t) vcol[t] = v.at(t, d);
    for (std::size_t c = 0; c < config_.ct; ++c) {
      vc[d * config_.ct + c] = v_encoders_[c]->encode(vcol.data() + c * sub_t_);
    }
  }
  // Final lookups + aggregation (Eq. 15).
  nn::Tensor out({t_len_, dk_});
  for (std::size_t t = 0; t < t_len_; ++t) {
    float* orow = out.row(t);
    for (std::size_t d = 0; d < dk_; ++d) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < config_.ct; ++c) {
        acc += qkv_table_[c * kp * kp + sc[t * config_.ct + c] * kp + vc[d * config_.ct + c]];
      }
      orow[d] = acc;
    }
  }
  return out;
}

std::size_t AttentionKernel::table_bytes() const {
  return (qk_table_.size() + qkv_table_.size()) * sizeof(float);
}

}  // namespace dart::tabular
