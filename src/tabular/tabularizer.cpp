#include "tabular/tabularizer.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/ops.hpp"

namespace dart::tabular {

namespace {

/// Stride-subsamples the leading dimension down to at most `max_n` rows.
nn::Tensor subsample(const nn::Tensor& t, std::size_t max_n) {
  const std::size_t n = t.dim(0);
  if (n <= max_n) return t;
  const std::size_t stride = (n + max_n - 1) / max_n;
  const std::size_t row_sz = t.numel() / n;
  std::vector<std::size_t> picks;
  for (std::size_t i = 0; i < n; i += stride) picks.push_back(i);
  auto shape = t.shape();
  shape[0] = picks.size();
  nn::Tensor out(shape);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    const float* src = t.data() + picks[i] * row_sz;
    std::copy(src, src + row_sz, out.data() + i * row_sz);
  }
  return out;
}

nn::Tensor flatten2d(const nn::Tensor& x) {
  const std::size_t d = x.dim(x.ndim() - 1);
  return x.reshaped({x.numel() / d, d});
}

/// Copies an nn::Linear (value + bias) into a fresh layer for fine-tuning.
nn::Linear clone_linear(const nn::Linear& src) {
  nn::Linear copy(src.in_dim(), src.out_dim(), /*seed=*/1, "ft_copy");
  copy.mutable_weight() = src.weight();
  copy.mutable_bias() = src.bias();
  return copy;
}

LnParams copy_ln(const nn::LayerNorm& ln) {
  return LnParams{ln.gamma(), ln.beta(), 1e-5f};
}

/// Adds the positional encoding to every sample of a [N, T, D] tensor.
void add_pos(nn::Tensor& x, const nn::Tensor& pos) {
  const std::size_t n = x.dim(0), t_len = x.dim(1), d = x.dim(2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < t_len; ++t) {
      float* row = x.data() + (i * t_len + t) * d;
      const float* p = pos.row(t);
      for (std::size_t j = 0; j < d; ++j) row[j] += p[j];
    }
  }
}

void record_stage(TabularizeReport* report, const std::string& name, const nn::Tensor& approx,
                  const nn::Tensor& ref) {
  if (report == nullptr) return;
  report->stages.push_back({name, nn::ops::cosine_similarity(approx, ref)});
}

}  // namespace

TabularPredictor tabularize(nn::AddressPredictor& model, const nn::Tensor& addr,
                            const nn::Tensor& pc, const TabularizeOptions& options,
                            TabularizeReport* report) {
  const nn::ModelConfig& arch = model.config();
  if (!config_is_valid(arch, options.tables)) {
    throw std::invalid_argument("tabularize: table config incompatible with architecture");
  }
  nn::Tensor addr_s = subsample(addr, options.max_train_samples);
  nn::Tensor pc_s = subsample(pc, options.max_train_samples);
  const std::size_t n = addr_s.dim(0);
  const std::size_t t_len = arch.seq_len;
  const std::size_t d = arch.dim;
  const std::size_t heads = arch.heads;
  const std::size_t dh = d / heads;

  TabularPredictor tab(arch);
  tab.pos_encoding = model.pos_encoding().value;

  KernelConfig lin_cfg;
  lin_cfg.encoder = options.encoder;
  lin_cfg.kmeans_iters = options.kmeans_iters;

  auto make_linear_kernel = [&](const nn::Linear& layer, const nn::Tensor& rows,
                                const TableLayerConfig& tc, std::uint64_t stream) {
    KernelConfig cfg = lin_cfg;
    cfg.num_prototypes = tc.k;
    cfg.num_subspaces = tc.c;
    cfg.seed = common::derive_seed(options.seed, stream);
    return std::make_unique<LinearKernel>(layer.weight(), layer.bias(), rows, cfg);
  };

  // --- Stage 0: input embeddings (first layers -> no fine-tuning) ---------
  tab.addr_kernel = make_linear_kernel(model.addr_embed(), flatten2d(addr_s),
                                       options.tables.input, 1);
  tab.pc_kernel = make_linear_kernel(model.pc_embed(), flatten2d(pc_s), options.tables.input, 2);

  // Reference activations (original NN on original data).
  nn::Tensor x_ref = model.addr_embed().apply(addr_s);
  {
    nn::Tensor ep = model.pc_embed().apply(pc_s);
    x_ref += ep;
    add_pos(x_ref, tab.pos_encoding);
  }
  // Approximated activations (tabular path so far).
  nn::Tensor x_hat = tab.addr_kernel->query3d(addr_s);
  {
    nn::Tensor ep = tab.pc_kernel->query3d(pc_s);
    x_hat += ep;
    add_pos(x_hat, tab.pos_encoding);
  }
  record_stage(report, "embed", x_hat, x_ref);

  // --- Encoder layers ------------------------------------------------------
  for (std::size_t l = 0; l < arch.layers; ++l) {
    auto& enc = *model.encoder_layers()[l];
    TabularEncoderLayer tl;
    const std::string prefix = "enc" + std::to_string(l);

    // QKV projection (linear layer i>0: fine-tune on X̂ -> reference QKV).
    nn::Tensor qkv_ref = enc.msa().qkv_proj().apply(x_ref);  // [N,T,3D]
    nn::Linear qkv_ft = clone_linear(enc.msa().qkv_proj());
    if (options.fine_tune) {
      const double mse =
          fine_tune_linear(qkv_ft, flatten2d(x_hat), flatten2d(qkv_ref), options.ft);
      if (report != nullptr) report->finetune_mse.push_back(mse);
    }
    tl.qkv = make_linear_kernel(qkv_ft, flatten2d(x_hat), options.tables.attention, 10 + l * 8);
    nn::Tensor qkv_hat = tl.qkv->query3d(x_hat);
    record_stage(report, prefix + ".qkv", qkv_hat, qkv_ref);

    // Attention kernels, one per head, trained on the tabular QKV̂.
    nn::Tensor concat_ref = enc.msa().attention_core(qkv_ref);
    nn::Tensor concat_hat({n, t_len, d});
    for (std::size_t h = 0; h < heads; ++h) {
      nn::Tensor q({n, t_len, dh}), k({n, t_len, dh}), v({n, t_len, dh});
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t t = 0; t < t_len; ++t) {
          const float* row = qkv_hat.data() + (i * t_len + t) * 3 * d;
          for (std::size_t j = 0; j < dh; ++j) {
            q.at(i, t, j) = row[h * dh + j];
            k.at(i, t, j) = row[d + h * dh + j];
            v.at(i, t, j) = row[2 * d + h * dh + j];
          }
        }
      }
      AttentionKernelConfig acfg;
      acfg.num_prototypes = options.tables.attention.k;
      acfg.ck = options.tables.attention.c;
      acfg.ct = options.tables.attention.c;
      acfg.activation = options.attention_activation;
      acfg.encoder = options.encoder;
      acfg.kmeans_iters = options.kmeans_iters;
      acfg.seed = common::derive_seed(options.seed, 100 + l * 16 + h);
      auto head_kernel = std::make_unique<AttentionKernel>(q, k, v, acfg);
      // Propagate the approximation through the head.
      common::parallel_for_each(n, [&](std::size_t i) {
        nn::Tensor qs({t_len, dh}), ks({t_len, dh}), vs({t_len, dh});
        for (std::size_t t = 0; t < t_len; ++t) {
          for (std::size_t j = 0; j < dh; ++j) {
            qs.at(t, j) = q.at(i, t, j);
            ks.at(t, j) = k.at(i, t, j);
            vs.at(t, j) = v.at(i, t, j);
          }
        }
        nn::Tensor o = head_kernel->query(qs, ks, vs);
        for (std::size_t t = 0; t < t_len; ++t) {
          float* dst = concat_hat.data() + (i * t_len + t) * d + h * dh;
          for (std::size_t j = 0; j < dh; ++j) dst[j] = o.at(t, j);
        }
      }, 1);
      tl.heads.push_back(std::move(head_kernel));
    }
    record_stage(report, prefix + ".attn", concat_hat, concat_ref);

    // Output projection + residual + LN1.
    nn::Tensor out_ref = enc.msa().out_proj().apply(concat_ref);
    nn::Linear out_ft = clone_linear(enc.msa().out_proj());
    if (options.fine_tune) {
      const double mse =
          fine_tune_linear(out_ft, flatten2d(concat_hat), flatten2d(out_ref), options.ft);
      if (report != nullptr) report->finetune_mse.push_back(mse);
    }
    tl.out_proj =
        make_linear_kernel(out_ft, flatten2d(concat_hat), options.tables.attention, 11 + l * 8);
    tl.ln1 = copy_ln(enc.ln1());
    {
      nn::Tensor attn_hat = tl.out_proj->query3d(concat_hat);
      attn_hat += x_hat;
      x_hat = tl.ln1.apply(attn_hat);
      out_ref += x_ref;
      x_ref = enc.ln1().apply(out_ref);
    }
    record_stage(report, prefix + ".ln1", x_hat, x_ref);

    // FFN hidden.
    nn::Tensor hidden_ref = enc.ffn().hidden_layer().apply(x_ref);
    nn::Linear hidden_ft = clone_linear(enc.ffn().hidden_layer());
    if (options.fine_tune) {
      const double mse =
          fine_tune_linear(hidden_ft, flatten2d(x_hat), flatten2d(hidden_ref), options.ft);
      if (report != nullptr) report->finetune_mse.push_back(mse);
    }
    tl.ffn_hidden = make_linear_kernel(hidden_ft, flatten2d(x_hat), options.tables.ffn,
                                       12 + l * 8);
    nn::Tensor hidden_hat = tl.ffn_hidden->query3d(x_hat);
    // Exact ReLU on both paths.
    for (std::size_t i = 0; i < hidden_hat.numel(); ++i) {
      hidden_hat[i] = hidden_hat[i] > 0.0f ? hidden_hat[i] : 0.0f;
    }
    nn::Tensor hidden_ref_relu(hidden_ref.shape());
    for (std::size_t i = 0; i < hidden_ref.numel(); ++i) {
      hidden_ref_relu[i] = hidden_ref[i] > 0.0f ? hidden_ref[i] : 0.0f;
    }

    // FFN output + residual + LN2.
    nn::Tensor ffn_ref = enc.ffn().output_layer().apply(hidden_ref_relu);
    nn::Linear ffn_out_ft = clone_linear(enc.ffn().output_layer());
    if (options.fine_tune) {
      const double mse =
          fine_tune_linear(ffn_out_ft, flatten2d(hidden_hat), flatten2d(ffn_ref), options.ft);
      if (report != nullptr) report->finetune_mse.push_back(mse);
    }
    tl.ffn_out =
        make_linear_kernel(ffn_out_ft, flatten2d(hidden_hat), options.tables.ffn, 13 + l * 8);
    tl.ln2 = copy_ln(enc.ln2());
    {
      nn::Tensor ffn_hat = tl.ffn_out->query3d(hidden_hat);
      ffn_hat += x_hat;
      x_hat = tl.ln2.apply(ffn_hat);
      ffn_ref += x_ref;
      x_ref = enc.ln2().apply(ffn_ref);
    }
    record_stage(report, prefix + ".ln2", x_hat, x_ref);

    tab.layers.push_back(std::move(tl));
  }

  // --- Final LN + classification head -------------------------------------
  tab.final_ln = copy_ln(model.final_ln());
  x_hat = tab.final_ln.apply(x_hat);
  x_ref = model.final_ln().apply(x_ref);

  nn::Tensor head_ref = model.head().apply(x_ref);  // [N, T, DO]
  nn::Linear head_ft = clone_linear(model.head());
  if (options.fine_tune) {
    const double mse =
        fine_tune_linear(head_ft, flatten2d(x_hat), flatten2d(head_ref), options.ft);
    if (report != nullptr) report->finetune_mse.push_back(mse);
  }
  tab.head_kernel = make_linear_kernel(head_ft, flatten2d(x_hat), options.tables.output, 99);
  if (report != nullptr) {
    nn::Tensor head_hat = tab.head_kernel->query3d(x_hat);
    record_stage(report, "head", head_hat, head_ref);
  }
  return tab;
}

}  // namespace dart::tabular
