#include "tabular/finetune.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/loss.hpp"
#include "nn/ops.hpp"
#include "nn/optimizer.hpp"

namespace dart::tabular {

namespace {

/// Cholesky factorization of an SPD matrix in place (lower triangle).
void cholesky(std::vector<double>& a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        if (sum <= 0.0) throw std::runtime_error("ridge_solve: matrix not SPD");
        a[i * n + j] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
  }
}

/// Solves L L^T x = rhs for one column in place.
void cholesky_solve(const std::vector<double>& l, std::size_t n, std::vector<double>& x) {
  for (std::size_t i = 0; i < n; ++i) {
    double sum = x[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * n + k] * x[k];
    x[i] = sum / l[i * n + i];
  }
  for (std::size_t i = n; i-- > 0;) {
    double sum = x[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l[k * n + i] * x[k];
    x[i] = sum / l[i * n + i];
  }
}

}  // namespace

nn::Tensor ridge_solve(const nn::Tensor& a, const nn::Tensor& b, float lambda) {
  if (a.ndim() != 2 || b.ndim() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("ridge_solve: A [M,P], B [M,Q] required");
  }
  const std::size_t m = a.dim(0), p = a.dim(1), q = b.dim(1);
  // Normal equations in double precision: G = A^T A + lambda I, R = A^T B.
  std::vector<double> g(p * p, 0.0);
  std::vector<double> r(p * q, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (std::size_t x = 0; x < p; ++x) {
      const double ax = arow[x];
      for (std::size_t y = x; y < p; ++y) g[x * p + y] += ax * arow[y];
      for (std::size_t y = 0; y < q; ++y) r[x * q + y] += ax * brow[y];
    }
  }
  for (std::size_t x = 0; x < p; ++x) {
    for (std::size_t y = 0; y < x; ++y) g[x * p + y] = g[y * p + x];
    g[x * p + x] += lambda;
  }
  cholesky(g, p);
  nn::Tensor w({p, q});
  std::vector<double> col(p);
  for (std::size_t y = 0; y < q; ++y) {
    for (std::size_t x = 0; x < p; ++x) col[x] = r[x * q + y];
    cholesky_solve(g, p, col);
    for (std::size_t x = 0; x < p; ++x) w.at(x, y) = static_cast<float>(col[x]);
  }
  return w;
}

double fine_tune_linear(nn::Linear& layer, const nn::Tensor& x_hat, const nn::Tensor& y_ref,
                        const FineTuneOptions& options) {
  const std::size_t m = x_hat.dim(0);
  const std::size_t din = layer.in_dim(), dout = layer.out_dim();
  if (x_hat.dim(1) != din || y_ref.dim(1) != dout || y_ref.dim(0) != m) {
    throw std::invalid_argument("fine_tune_linear: shape mismatch");
  }

  if (options.method == FineTuneMethod::kClosedForm) {
    // Augment X with a ones column so the bias is solved jointly, and
    // center the target on the current layer's output: solving for the
    // *update* dW with ridge ||dW||^2 shrinks toward the trained weights
    // rather than toward zero.
    nn::Tensor aug({m, din + 1});
    for (std::size_t i = 0; i < m; ++i) {
      const float* src = x_hat.row(i);
      float* dst = aug.row(i);
      std::copy(src, src + din, dst);
      dst[din] = 1.0f;
    }
    nn::Tensor residual = y_ref;
    residual -= layer.apply(x_hat);
    // Scale lambda by the Gram diagonal so it is dimensionless.
    double diag = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const float* row = aug.row(i);
      for (std::size_t j = 0; j <= din; ++j) diag += static_cast<double>(row[j]) * row[j];
    }
    const float lambda =
        options.ridge_lambda * static_cast<float>(diag / static_cast<double>(din + 1));
    nn::Tensor dw = ridge_solve(aug, residual, std::max(lambda, 1e-6f));  // [din+1, dout]
    for (std::size_t o = 0; o < dout; ++o) {
      for (std::size_t j = 0; j < din; ++j) layer.mutable_weight().at(o, j) += dw.at(j, o);
      layer.mutable_bias()[o] += dw.at(din, o);
    }
  } else {
    nn::Adam adam(layer.params(), options.lr);
    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
      for (std::size_t begin = 0; begin < m; begin += options.batch_size) {
        const std::size_t end = std::min(m, begin + options.batch_size);
        nn::Tensor xb({end - begin, din}), yb({end - begin, dout});
        std::copy(x_hat.row(begin), x_hat.row(begin) + (end - begin) * din, xb.data());
        std::copy(y_ref.row(begin), y_ref.row(begin) + (end - begin) * dout, yb.data());
        adam.zero_grad();
        nn::Tensor pred = layer.forward(xb);
        nn::Tensor d_pred;
        nn::mse_loss(pred, yb, d_pred);
        layer.backward(d_pred);
        adam.step();
      }
    }
  }
  // Report the residual MSE on the fine-tuning set.
  nn::Tensor pred = layer.apply(x_hat);
  nn::Tensor d_unused;
  return nn::mse_loss(pred, y_ref, d_unused);
}

}  // namespace dart::tabular
