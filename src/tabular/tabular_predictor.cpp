#include "tabular/tabular_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace dart::tabular {

namespace {

/// Copies a [rows, width] workspace buffer into a freshly shaped stage
/// tensor (introspection path only — the hot path passes stages=nullptr).
void push_stage(std::vector<nn::Tensor>* stages, const float* buf, std::size_t rows,
                std::size_t width) {
  if (stages == nullptr) return;
  nn::Tensor t(rows <= 1 ? std::vector<std::size_t>{width}
                         : std::vector<std::size_t>{rows, width});
  std::copy(buf, buf + rows * width, t.data());
  stages->push_back(std::move(t));
}

}  // namespace

nn::Tensor LnParams::apply(const nn::Tensor& x) const {
  nn::Tensor y(x.shape());
  apply_into(x.data(), y.data(), x.numel() / gamma.numel());
  return y;
}

void LnParams::apply_into(const float* x, float* y, std::size_t m) const {
  const std::size_t d = gamma.numel();
  const float* g = gamma.data();
  const float* b = beta.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = x + i * d;
    float* yrow = y + i * d;
    // 4-lane reductions: strict-FP serial sums chain at add latency; four
    // independent accumulators pipeline (and match what a vectorized sum
    // would compute, deterministically).
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    std::size_t j = 0;
    for (; j + 4 <= d; j += 4) {
      s0 += row[j];
      s1 += row[j + 1];
      s2 += row[j + 2];
      s3 += row[j + 3];
    }
    float mean = (s0 + s1) + (s2 + s3);
    for (; j < d; ++j) mean += row[j];
    mean /= static_cast<float>(d);
    float v0 = 0.0f, v1 = 0.0f, v2 = 0.0f, v3 = 0.0f;
    j = 0;
    for (; j + 4 <= d; j += 4) {
      const float d0 = row[j] - mean, d1 = row[j + 1] - mean;
      const float d2 = row[j + 2] - mean, d3 = row[j + 3] - mean;
      v0 += d0 * d0;
      v1 += d1 * d1;
      v2 += d2 * d2;
      v3 += d3 * d3;
    }
    float var = (v0 + v1) + (v2 + v3);
    for (; j < d; ++j) {
      const float diff = row[j] - mean;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    for (std::size_t jj = 0; jj < d; ++jj) {
      yrow[jj] = (row[jj] - mean) * inv * g[jj] + b[jj];
    }
  }
}

TabularArch TabularPredictor::tabular_arch() const {
  TabularArch ta;
  ta.seq_len = arch_.seq_len;
  ta.dim = arch_.dim;
  ta.ffn_dim = arch_.ffn_dim;
  ta.out_dim = arch_.out_dim;
  ta.heads = arch_.heads;
  ta.layers = arch_.layers;
  const std::size_t t = ta.seq_len;
  // Persistent per-sample activations: x, scratch, qkv, concat, hidden,
  // per-token head output (see forward_sample_into). Attention adds a
  // transient score matrix + transposed V per head.
  ta.float_slots = t * (2 * ta.dim + 3 * ta.dim + ta.dim + ta.ffn_dim + ta.out_dim) +
                   ta.out_dim + t * t + ta.head_dim() * t + 64;
  // Codes are transient per kernel call (mark/rewind), so the demand is the
  // max over kernels, not the sum.
  std::size_t codes = 0;
  auto linear = [&codes, t](const std::unique_ptr<LinearKernel>& k) {
    if (k) codes = std::max(codes, k->code_slots(t));
  };
  linear(addr_kernel);
  linear(pc_kernel);
  for (const auto& layer : layers) {
    linear(layer.qkv);
    for (const auto& h : layer.heads) {
      if (h) codes = std::max(codes, h->code_slots());
    }
    linear(layer.out_proj);
    linear(layer.ffn_hidden);
    linear(layer.ffn_out);
  }
  linear(head_kernel);
  ta.code_slots = codes + 16;
  return ta;
}

void TabularPredictor::forward_block_into(const float* addr, const float* pc, std::size_t n,
                                          float* probs_out, InferenceWorkspace& ws,
                                          std::vector<nn::Tensor>* stages) const {
  const std::size_t t_len = arch_.seq_len;
  const std::size_t d = arch_.dim;
  const std::size_t dh = d / arch_.heads;
  const std::size_t rows = n * t_len;  // all kernels operate row-wise
  if (n != 1) stages = nullptr;
  const auto frame = ws.mark();

  // Embedding: two linear kernels over all rows + positional encoding
  // (broadcast per sample), summed in place.
  float* x = ws.floats(rows * d);
  float* tmp = ws.floats(rows * d);  // reused for attention/FFN outputs
  addr_kernel->query_into(addr, rows, arch_.addr_dim, x, d, ws);
  pc_kernel->query_into(pc, rows, arch_.pc_dim, tmp, d, ws);
  const float* pos = pos_encoding.data();
  for (std::size_t s = 0; s < n; ++s) {
    float* xs = x + s * t_len * d;
    const float* ts = tmp + s * t_len * d;
    for (std::size_t i = 0; i < t_len * d; ++i) xs[i] += ts[i] + pos[i];
  }
  push_stage(stages, x, t_len, d);

  for (const auto& layer : layers) {
    const auto layer_frame = ws.mark();
    // Packed QKV projection [n*T, 3D]; heads query strided views of it —
    // no q/k/v split copies.
    float* qkv = ws.floats(rows * 3 * d);
    layer.qkv->query_into(x, rows, d, qkv, 3 * d, ws);
    push_stage(stages, qkv, t_len, 3 * d);
    float* concat = ws.floats(rows * d);
    for (std::size_t h = 0; h < layer.heads.size(); ++h) {
      layer.heads[h]->query_batch_into(qkv + h * dh, 3 * d,          // q
                                       qkv + d + h * dh, 3 * d,      // k
                                       qkv + 2 * d + h * dh, 3 * d,  // v
                                       n, concat + h * dh, d, ws);
    }
    push_stage(stages, concat, t_len, d);
    // Output projection + residual + LN1 (normalized back into x).
    layer.out_proj->query_into(concat, rows, d, tmp, d, ws);
    for (std::size_t i = 0; i < rows * d; ++i) tmp[i] += x[i];
    layer.ln1.apply_into(tmp, x, rows);
    push_stage(stages, x, t_len, d);
    // FFN: hidden kernel -> exact ReLU -> output kernel + residual + LN2.
    float* hidden = ws.floats(rows * arch_.ffn_dim);
    layer.ffn_hidden->query_into(x, rows, d, hidden, arch_.ffn_dim, ws);
    for (std::size_t i = 0; i < rows * arch_.ffn_dim; ++i) {
      hidden[i] = hidden[i] > 0.0f ? hidden[i] : 0.0f;
    }
    layer.ffn_out->query_into(hidden, rows, arch_.ffn_dim, tmp, d, ws);
    for (std::size_t i = 0; i < rows * d; ++i) tmp[i] += x[i];
    layer.ln2.apply_into(tmp, x, rows);
    push_stage(stages, x, t_len, d);
    ws.rewind(layer_frame);
  }

  final_ln.apply_into(x, x, rows);
  const std::size_t out_d = arch_.out_dim;
  float* per_token = ws.floats(rows * out_d);
  head_kernel->query_into(x, rows, d, per_token, out_d, ws);
  // Mean pool + sigmoid LUT, per sample.
  const float inv_t = 1.0f / static_cast<float>(t_len);
  for (std::size_t s = 0; s < n; ++s) {
    float* probs = probs_out + s * out_d;
    const float* pt = per_token + s * t_len * out_d;
    for (std::size_t j = 0; j < out_d; ++j) probs[j] = 0.0f;
    for (std::size_t t = 0; t < t_len; ++t) {
      const float* row = pt + t * out_d;
      for (std::size_t j = 0; j < out_d; ++j) probs[j] += row[j] * inv_t;
    }
    push_stage(stages, probs, 1, out_d);
    sigmoid_lut.apply_batch(probs, out_d, probs);
  }
  ws.rewind(frame);
}

nn::Tensor TabularPredictor::forward_sample(const nn::Tensor& addr, const nn::Tensor& pc,
                                            std::vector<nn::Tensor>* stages) const {
  nn::Tensor probs({arch_.out_dim});
  // No ensure(): the thread-local arena grows to the peak demand on the
  // first call and is a pure bump allocator afterwards.
  forward_sample_into(addr.data(), pc.data(), probs.data(), thread_local_workspace(), stages);
  return probs;
}

nn::Tensor TabularPredictor::forward(const nn::Tensor& addr, const nn::Tensor& pc) const {
  if (addr.ndim() != 3) throw std::invalid_argument("TabularPredictor: addr must be [B,T,S]");
  const std::size_t b_sz = addr.dim(0);
  const std::size_t t_len = addr.dim(1);
  const std::size_t sa = addr.dim(2);
  const std::size_t sp = pc.dim(2);
  nn::Tensor out({b_sz, arch_.out_dim});
  if (b_sz == 0) return out;
  // Layer-major sub-blocks of at most 16 samples: long enough to amortize
  // encoder calls (128+ rows each), small enough that the activation
  // buffers stay L2-resident — larger blocks measurably degrade (the seed's
  // "slower past batch 16" effect was this spill).
  constexpr std::size_t kMaxBlockSamples = 16;
  TabularArch ta = tabular_arch();
  const std::size_t nb = common::plan_blocks(b_sz, 1);
  const std::size_t per_block = std::min(kMaxBlockSamples, (b_sz + nb - 1) / nb);
  ta.float_slots *= per_block;
  ta.code_slots *= per_block;
  // The single top-level batch split (DESIGN.md §6): every kernel invoked
  // below this fork is serial, so the pool is never oversubscribed by
  // nested parallel_for calls.
  common::parallel_for_blocks(b_sz, [&](std::size_t, std::size_t b0, std::size_t b1) {
    InferenceWorkspace& ws = thread_local_workspace();
    ws.ensure(ta);
    for (std::size_t s0 = b0; s0 < b1; s0 += kMaxBlockSamples) {
      const std::size_t bn = std::min(kMaxBlockSamples, b1 - s0);
      forward_block_into(addr.data() + s0 * t_len * sa, pc.data() + s0 * t_len * sp, bn,
                         out.row(s0), ws);
    }
  }, 1);
  return out;
}

std::size_t TabularPredictor::storage_bytes() const {
  std::size_t total = sigmoid_lut.table_bytes();
  auto add_kernel = [&total](const std::unique_ptr<LinearKernel>& k) {
    if (k) total += k->table_bytes();
  };
  add_kernel(addr_kernel);
  add_kernel(pc_kernel);
  total += pos_encoding.numel() * sizeof(float);
  for (const auto& layer : layers) {
    add_kernel(layer.qkv);
    for (const auto& h : layer.heads) total += h->table_bytes();
    add_kernel(layer.out_proj);
    add_kernel(layer.ffn_hidden);
    add_kernel(layer.ffn_out);
    total += (layer.ln1.gamma.numel() + layer.ln1.beta.numel() + layer.ln2.gamma.numel() +
              layer.ln2.beta.numel()) *
             sizeof(float);
  }
  total += (final_ln.gamma.numel() + final_ln.beta.numel()) * sizeof(float);
  add_kernel(head_kernel);
  return total;
}

void TabularPredictor::set_quant_mode(QuantMode mode) {
  auto quantize = [mode](const std::unique_ptr<LinearKernel>& k) {
    if (k) k->quantize(mode);
  };
  quantize(addr_kernel);
  quantize(pc_kernel);
  for (const auto& layer : layers) {
    quantize(layer.qkv);
    quantize(layer.out_proj);
    quantize(layer.ffn_hidden);
    quantize(layer.ffn_out);
  }
  quantize(head_kernel);
  quant_mode_ = mode;
}

std::size_t TabularPredictor::quantized_bytes() const {
  std::size_t total = 0;
  auto add_kernel = [&total](const std::unique_ptr<LinearKernel>& k) {
    if (k) total += k->quantized().payload_bytes();
  };
  add_kernel(addr_kernel);
  add_kernel(pc_kernel);
  for (const auto& layer : layers) {
    add_kernel(layer.qkv);
    add_kernel(layer.out_proj);
    add_kernel(layer.ffn_hidden);
    add_kernel(layer.ffn_out);
  }
  add_kernel(head_kernel);
  return total;
}

}  // namespace dart::tabular
