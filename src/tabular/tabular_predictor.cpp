#include "tabular/tabular_predictor.hpp"

#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace dart::tabular {

nn::Tensor LnParams::apply(const nn::Tensor& x) const {
  const std::size_t d = gamma.numel();
  const std::size_t m = x.numel() / d;
  nn::Tensor y(x.shape());
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = x.data() + i * d;
    float* yrow = y.data() + i * d;
    float mean = 0.0f;
    for (std::size_t j = 0; j < d; ++j) mean += row[j];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (std::size_t j = 0; j < d; ++j) {
      const float diff = row[j] - mean;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    for (std::size_t j = 0; j < d; ++j) {
      yrow[j] = (row[j] - mean) * inv * gamma[j] + beta[j];
    }
  }
  return y;
}

nn::Tensor TabularPredictor::forward_sample(const nn::Tensor& addr, const nn::Tensor& pc,
                                            std::vector<nn::Tensor>* stages) const {
  const std::size_t t_len = arch_.seq_len;
  const std::size_t d = arch_.dim;
  const std::size_t dh = d / arch_.heads;

  // Embedding: two linear kernels + positional encoding.
  nn::Tensor x = addr_kernel->query(addr);
  nn::Tensor xp = pc_kernel->query(pc);
  x += xp;
  x += pos_encoding;
  if (stages != nullptr) stages->push_back(x);

  for (const auto& layer : layers) {
    nn::Tensor qkv = layer.qkv->query(x);  // [T, 3D]
    if (stages != nullptr) stages->push_back(qkv);
    // Per-head attention kernel queries.
    nn::Tensor concat({t_len, d});
    for (std::size_t h = 0; h < layer.heads.size(); ++h) {
      nn::Tensor q({t_len, dh}), k({t_len, dh}), v({t_len, dh});
      for (std::size_t t = 0; t < t_len; ++t) {
        const float* row = qkv.row(t);
        for (std::size_t j = 0; j < dh; ++j) {
          q.at(t, j) = row[h * dh + j];
          k.at(t, j) = row[d + h * dh + j];
          v.at(t, j) = row[2 * d + h * dh + j];
        }
      }
      nn::Tensor o = layer.heads[h]->query(q, k, v);
      for (std::size_t t = 0; t < t_len; ++t) {
        float* dst = concat.row(t) + h * dh;
        const float* src = o.row(t);
        for (std::size_t j = 0; j < dh; ++j) dst[j] = src[j];
      }
    }
    if (stages != nullptr) stages->push_back(concat);
    nn::Tensor attn_out = layer.out_proj->query(concat);
    attn_out += x;  // residual
    x = layer.ln1.apply(attn_out);
    if (stages != nullptr) stages->push_back(x);
    // FFN: hidden kernel -> exact ReLU -> output kernel.
    nn::Tensor hidden = layer.ffn_hidden->query(x);
    for (std::size_t i = 0; i < hidden.numel(); ++i) {
      hidden[i] = hidden[i] > 0.0f ? hidden[i] : 0.0f;
    }
    nn::Tensor ffn = layer.ffn_out->query(hidden);
    ffn += x;  // residual
    x = layer.ln2.apply(ffn);
    if (stages != nullptr) stages->push_back(x);
  }

  x = final_ln.apply(x);
  nn::Tensor per_token = head_kernel->query(x);  // [T, DO]
  // Mean pool + sigmoid LUT.
  const std::size_t out_d = arch_.out_dim;
  nn::Tensor probs({out_d});
  const float inv_t = 1.0f / static_cast<float>(t_len);
  for (std::size_t t = 0; t < t_len; ++t) {
    const float* row = per_token.row(t);
    for (std::size_t j = 0; j < out_d; ++j) probs[j] += row[j] * inv_t;
  }
  if (stages != nullptr) stages->push_back(probs);
  for (std::size_t j = 0; j < out_d; ++j) probs[j] = sigmoid_lut(probs[j]);
  return probs;
}

nn::Tensor TabularPredictor::forward(const nn::Tensor& addr, const nn::Tensor& pc) const {
  if (addr.ndim() != 3) throw std::invalid_argument("TabularPredictor: addr must be [B,T,S]");
  const std::size_t b_sz = addr.dim(0);
  const std::size_t t_len = addr.dim(1);
  const std::size_t sa = addr.dim(2);
  const std::size_t sp = pc.dim(2);
  nn::Tensor out({b_sz, arch_.out_dim});
  common::parallel_for_each(b_sz, [&](std::size_t b) {
    nn::Tensor a({t_len, sa}), p({t_len, sp});
    std::copy(addr.data() + b * t_len * sa, addr.data() + (b + 1) * t_len * sa, a.data());
    std::copy(pc.data() + b * t_len * sp, pc.data() + (b + 1) * t_len * sp, p.data());
    nn::Tensor probs = forward_sample(a, p);
    std::copy(probs.data(), probs.data() + arch_.out_dim, out.row(b));
  }, 1);
  return out;
}

std::size_t TabularPredictor::storage_bytes() const {
  std::size_t total = sigmoid_lut.table_bytes();
  auto add_kernel = [&total](const std::unique_ptr<LinearKernel>& k) {
    if (k) total += k->table_bytes();
  };
  add_kernel(addr_kernel);
  add_kernel(pc_kernel);
  total += pos_encoding.numel() * sizeof(float);
  for (const auto& layer : layers) {
    add_kernel(layer.qkv);
    for (const auto& h : layer.heads) total += h->table_bytes();
    add_kernel(layer.out_proj);
    add_kernel(layer.ffn_hidden);
    add_kernel(layer.ffn_out);
    total += (layer.ln1.gamma.numel() + layer.ln1.beta.numel() + layer.ln2.gamma.numel() +
              layer.ln2.beta.numel()) *
             sizeof(float);
  }
  total += (final_ln.gamma.numel() + final_ln.beta.numel()) * sizeof(float);
  add_kernel(head_kernel);
  return total;
}

}  // namespace dart::tabular
