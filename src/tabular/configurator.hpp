// Table configurator (the paper's §VI-C2): enumerates a pre-defined design
// space of model configurations (DA, DF, DO, H, L) and table configurations
// (K, C), computes each candidate's tabular latency/storage via Eq. 22-23,
// and answers "given latency constraint τ and storage constraint s, which
// configuration should the student model and tables use?" with a
// latency-major greedy search.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tabular/complexity.hpp"

namespace dart::tabular {

/// One valid (architecture, tables) pair with its analytic cost.
struct PredictorConfig {
  nn::ModelConfig arch;
  TableConfig tables;
  ModelCost cost;

  std::string to_string() const;
};

struct ConfiguratorOptions {
  /// Base architecture fields that are fixed by the data pipeline (sequence
  /// length, segment counts, bitmap size) — candidates vary the rest.
  nn::ModelConfig base;
  std::vector<std::size_t> dims = {16, 32, 64};
  std::vector<std::size_t> layer_counts = {1, 2};
  std::vector<std::size_t> head_counts = {2};
  std::vector<std::size_t> prototype_counts = {16, 32, 64, 128, 256, 512, 1024};
  std::vector<std::size_t> subspace_counts = {1, 2, 4};
  std::size_t ffn_multiplier = 4;  ///< DF = multiplier * DA
  FixedCosts fixed;
};

class TableConfigurator {
 public:
  explicit TableConfigurator(const ConfiguratorOptions& options);

  /// All enumerated valid candidates (the "configuration dictionary").
  const std::vector<PredictorConfig>& candidates() const { return candidates_; }

  /// Latency-major greedy search (§VI-C2): among candidates with latency
  /// < tau_cycles, picks the one with the highest latency; under that
  /// latency, the largest storage < s_bytes; if none, steps down to the
  /// next-lower latency, and so on. Returns nullopt when no candidate fits.
  std::optional<PredictorConfig> configure(std::size_t tau_cycles, double s_bytes) const;

 private:
  std::vector<PredictorConfig> candidates_;
};

/// True when (arch, tables) is dimension-consistent for the tabular kernels:
/// every subspace count divides the dimension it partitions.
bool config_is_valid(const nn::ModelConfig& arch, const TableConfig& tables);

}  // namespace dart::tabular
