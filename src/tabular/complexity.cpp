#include "tabular/complexity.hpp"

namespace dart::tabular {

std::size_t log2_ceil(std::size_t x) {
  std::size_t l = 0;
  while ((1ULL << l) < x) ++l;
  return l;
}

TableConfig TableConfig::uniform(std::size_t k, std::size_t c, std::size_t data_bits) {
  TableConfig cfg;
  cfg.input = {k, c};
  cfg.attention = {k, c};
  cfg.ffn = {k, c};
  cfg.output = {k, c};
  cfg.data_bits = data_bits;
  return cfg;
}

std::size_t linear_kernel_latency(std::size_t k, std::size_t c) {
  return log2_ceil(k) + log2_ceil(c) + 1;
}

std::size_t attention_kernel_latency(std::size_t k, std::size_t c) {
  return 2 * (log2_ceil(k) + log2_ceil(c) + 1);
}

std::size_t linear_kernel_storage_bits(std::size_t t, std::size_t d_out, std::size_t k,
                                       std::size_t c, std::size_t data_bits) {
  return t * c * log2_ceil(k) + d_out * k * c * data_bits;
}

std::size_t attention_kernel_storage_bits(std::size_t t, std::size_t dk, std::size_t k,
                                          std::size_t c, std::size_t data_bits) {
  return (3 * t + dk) * c * log2_ceil(k) + 2 * k * k * c * data_bits;
}

std::size_t linear_kernel_ops(std::size_t t, std::size_t d_out, std::size_t k, std::size_t c) {
  return t * c * log2_ceil(k) + t * d_out * log2_ceil(c);
}

std::size_t attention_kernel_ops(std::size_t t, std::size_t dk, std::size_t k, std::size_t c) {
  return (3 * t + dk) * c * log2_ceil(k) + (t * t + dk * dk) * log2_ceil(c);
}

ModelCost tabular_model_cost(const nn::ModelConfig& arch, const TableConfig& tables,
                             const FixedCosts& fixed) {
  ModelCost cost;
  const std::size_t t = arch.seq_len;

  // ---- Latency (Eq. 22) ---------------------------------------------------
  cost.latency_cycles += linear_kernel_latency(tables.input.k, tables.input.c);  // input linear
  cost.latency_cycles += fixed.layernorm_latency;                                // final LN
  cost.latency_cycles +=
      linear_kernel_latency(tables.output.k, tables.output.c) + fixed.sigmoid_latency;
  cost.latency_cycles +=
      arch.layers * (2 * fixed.layernorm_latency +
                     2 * linear_kernel_latency(tables.attention.k, tables.attention.c) +
                     attention_kernel_latency(tables.attention.k, tables.attention.c) +
                     2 * linear_kernel_latency(tables.ffn.k, tables.ffn.c));

  // ---- Storage (Eq. 23) ---------------------------------------------------
  const std::size_t d = tables.data_bits;
  // Two input linears (address + PC embeddings).
  cost.storage_bits +=
      2 * linear_kernel_storage_bits(t, arch.dim, tables.input.k, tables.input.c, d);
  cost.storage_bits += fixed.layernorm_storage_bits;  // final LN
  cost.storage_bits +=
      linear_kernel_storage_bits(t, arch.out_dim, tables.output.k, tables.output.c, d) +
      fixed.sigmoid_storage_bits;
  cost.storage_bits +=
      arch.layers *
      (2 * fixed.layernorm_storage_bits +
       // Fused QKV projection (the paper's Sl(TT, 3 H DA) term uses the
       // head-expanded width; our fused projection width is 3*DA).
       linear_kernel_storage_bits(t, 3 * arch.dim, tables.attention.k, tables.attention.c, d) +
       attention_kernel_storage_bits(t, arch.dim, tables.attention.k, tables.attention.c, d) +
       linear_kernel_storage_bits(t, arch.dim, tables.attention.k, tables.attention.c, d) +
       linear_kernel_storage_bits(t, arch.ffn_dim, tables.ffn.k, tables.ffn.c, d) +
       linear_kernel_storage_bits(t, arch.dim, tables.ffn.k, tables.ffn.c, d));

  // ---- Arithmetic operations (Eq. 20-21 aggregated) ------------------------
  cost.arithmetic_ops += linear_kernel_ops(t, arch.dim, tables.input.k, tables.input.c) * 2;
  cost.arithmetic_ops += linear_kernel_ops(t, arch.out_dim, tables.output.k, tables.output.c);
  cost.arithmetic_ops +=
      arch.layers * (linear_kernel_ops(t, 3 * arch.dim, tables.attention.k, tables.attention.c) +
                     attention_kernel_ops(t, arch.dim, tables.attention.k, tables.attention.c) +
                     linear_kernel_ops(t, arch.dim, tables.attention.k, tables.attention.c) +
                     linear_kernel_ops(t, arch.ffn_dim, tables.ffn.k, tables.ffn.c) +
                     linear_kernel_ops(t, arch.dim, tables.ffn.k, tables.ffn.c));
  return cost;
}

namespace {
/// Systolic-array latency of one [m,k]x[k,n] matmul: pipelined wavefront.
std::size_t systolic_latency(std::size_t m, std::size_t k, std::size_t n) {
  return m + k + n - 2;
}
}  // namespace

ModelCost nn_model_cost(const nn::ModelConfig& arch) {
  ModelCost cost;
  const std::size_t t = arch.seq_len;
  const std::size_t d_model = arch.dim;
  const std::size_t dh = arch.heads > 0 ? d_model / arch.heads : d_model;

  auto add_matmul = [&cost](std::size_t m, std::size_t k, std::size_t n) {
    cost.latency_cycles += systolic_latency(m, k, n);
    cost.arithmetic_ops += 2 * m * k * n;  // MAC = mul + add
  };
  auto add_params = [&cost](std::size_t n) { cost.storage_bits += n * 32; };

  // Input embeddings (address + PC) — parallel in hardware, so latency once.
  cost.latency_cycles += systolic_latency(t, arch.addr_dim, d_model);
  cost.arithmetic_ops += 2 * t * arch.addr_dim * d_model + 2 * t * arch.pc_dim * d_model;
  add_params(d_model * arch.addr_dim + d_model);
  add_params(d_model * arch.pc_dim + d_model);
  add_params(t * d_model);  // positional encoding

  for (std::size_t l = 0; l < arch.layers; ++l) {
    // QKV projection.
    add_matmul(t, d_model, 3 * d_model);
    add_params(3 * d_model * d_model + 3 * d_model);
    // Attention (heads run in parallel; latency counted once per stage).
    cost.latency_cycles += systolic_latency(t, dh, t);      // QK^T
    cost.arithmetic_ops += arch.heads * 2 * t * dh * t;
    cost.latency_cycles += t;                               // softmax (row reduce)
    cost.arithmetic_ops += arch.heads * 3 * t * t;
    cost.latency_cycles += systolic_latency(t, t, dh);      // A V
    cost.arithmetic_ops += arch.heads * 2 * t * t * dh;
    // Output projection.
    add_matmul(t, d_model, d_model);
    add_params(d_model * d_model + d_model);
    // LayerNorms.
    cost.latency_cycles += 2 * 8;
    cost.arithmetic_ops += 2 * 4 * t * d_model;
    add_params(4 * d_model);
    // FFN.
    add_matmul(t, d_model, arch.ffn_dim);
    add_matmul(t, arch.ffn_dim, d_model);
    cost.arithmetic_ops += t * arch.ffn_dim;  // ReLU
    add_params(arch.ffn_dim * d_model + arch.ffn_dim + d_model * arch.ffn_dim + d_model);
  }
  // Final LN + classification head + sigmoid.
  cost.latency_cycles += 8;
  cost.arithmetic_ops += 4 * t * d_model;
  add_params(2 * d_model);
  add_matmul(t, d_model, arch.out_dim);
  add_params(arch.out_dim * d_model + arch.out_dim);
  cost.latency_cycles += 4;  // sigmoid
  cost.arithmetic_ops += arch.out_dim * 4;
  return cost;
}

}  // namespace dart::tabular
