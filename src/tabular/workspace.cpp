#include "tabular/workspace.hpp"

namespace dart::tabular {

void InferenceWorkspace::ensure(const TabularArch& arch) {
  // Guarantee one chunk large enough for the whole declared demand, so the
  // steady state allocates from a single contiguous slab even when the
  // workspace was first warmed by a smaller demand (existing chunks never
  // move; the bump allocator skips the ones that are too small).
  auto grow = [](auto& slab, std::size_t slots) {
    if (slots == 0) return;
    for (std::size_t cap : slab.capacities_) {
      if (cap >= slots) return;
    }
    slab.add_chunk(slots);
  };
  grow(float_slab_, arch.float_slots);
  grow(code_slab_, arch.code_slots);
}

InferenceWorkspace& thread_local_workspace() {
  thread_local InferenceWorkspace ws;
  return ws;
}

}  // namespace dart::tabular
