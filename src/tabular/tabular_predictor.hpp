// The table-hierarchy predictor (the DART predictor of Fig. 3): a structural
// mirror of nn::AddressPredictor in which every matrix multiplication has
// been replaced by a tabularization kernel. LayerNorms stay arithmetic
// (Algorithm 1, line 18) and the output sigmoid is a fixed LUT (line 16).
//
// Query-path design (DESIGN.md §6): the hot path is
// `forward_sample_into(addr, pc, probs, ws)` — raw pointers in, raw
// pointers out, all scratch from a per-thread `InferenceWorkspace`, zero
// heap allocations and zero tensor copies (per-head q/k/v are strided views
// into the packed QKV activation). `forward` is the ONLY place that forks
// the thread pool; every kernel underneath runs serial.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "nn/transformer.hpp"
#include "tabular/attention_kernel.hpp"
#include "tabular/linear_kernel.hpp"
#include "tabular/lut.hpp"
#include "tabular/workspace.hpp"

namespace dart::tabular {

/// Frozen LayerNorm parameters carried over from the NN verbatim.
struct LnParams {
  nn::Tensor gamma;   ///< per-feature scale
  nn::Tensor beta;    ///< per-feature shift
  float eps = 1e-5f;  ///< variance epsilon

  /// Row-wise normalization of the last dimension.
  nn::Tensor apply(const nn::Tensor& x) const;

  /// Normalizes `m` rows of width `gamma.numel()` from `x` into `y`
  /// (in-place safe: `y` may equal `x`).
  void apply_into(const float* x, float* y, std::size_t m) const;
};

/// One tabularized encoder layer.
struct TabularEncoderLayer {
  std::unique_ptr<LinearKernel> qkv;  ///< packed Q/K/V projection, [D -> 3D]
  std::vector<std::unique_ptr<AttentionKernel>> heads;  ///< one per head
  std::unique_ptr<LinearKernel> out_proj;    ///< attention output projection
  LnParams ln1;                              ///< post-attention LayerNorm
  std::unique_ptr<LinearKernel> ffn_hidden;  ///< FFN expansion, [D -> DF]
  std::unique_ptr<LinearKernel> ffn_out;     ///< FFN contraction, [DF -> D]
  LnParams ln2;                              ///< post-FFN LayerNorm
};

/// The assembled table-hierarchy predictor: input/QKV/FFN/head linear
/// kernels, per-head attention kernels, frozen LayerNorms, and the output
/// sigmoid LUT, queried through the zero-allocation paths described in the
/// file comment.
class TabularPredictor {
 public:
  /// Empty predictor (no kernels) — a move-assignment target for loaders
  /// and aggregate containers; not queryable until populated.
  TabularPredictor() = default;

  /// Predictor shell for architecture `arch`; kernels are then populated by
  /// the Tabularizer (or an artifact loader).
  explicit TabularPredictor(const nn::ModelConfig& arch) : arch_(arch) {}

  /// Batched query: [B,T,S] segmented addr + pc -> probabilities [B, DO]
  /// (post-sigmoid-LUT). The single top-level batch split: samples run in
  /// parallel on the shared pool, each on a per-thread workspace.
  nn::Tensor forward(const nn::Tensor& addr, const nn::Tensor& pc) const;

  /// Zero-allocation layer-major block query: `n` samples' [T, S] inputs,
  /// contiguous, at `addr`/`pc`; writes n*DO probabilities to `probs_out`.
  /// Every linear kernel runs ONCE over all n*T rows (encoders see long
  /// batches, aggregation loops stream), only the attention heads iterate
  /// per sample. Serial; safe to call concurrently with distinct
  /// workspaces. `stages` is honored for n == 1 only.
  void forward_block_into(const float* addr, const float* pc, std::size_t n, float* probs_out,
                          InferenceWorkspace& ws,
                          std::vector<nn::Tensor>* stages = nullptr) const;

  /// Zero-allocation single-sample query. `addr`/`pc` point at one sample's
  /// [T, S] rows (contiguous), `probs_out` receives DO probabilities.
  /// Serial; safe to call concurrently with distinct workspaces.
  void forward_sample_into(const float* addr, const float* pc, float* probs_out,
                           InferenceWorkspace& ws,
                           std::vector<nn::Tensor>* stages = nullptr) const {
    forward_block_into(addr, pc, 1, probs_out, ws, stages);
  }

  /// Single-sample query exposing the per-stage activations; `stages`
  /// receives one [T, D]-shaped tensor per stage (used for the Fig. 11
  /// cosine-similarity analysis).
  nn::Tensor forward_sample(const nn::Tensor& addr, const nn::Tensor& pc,
                            std::vector<nn::Tensor>* stages = nullptr) const;

  /// Shape + workspace-demand summary used to size `InferenceWorkspace`s
  /// once, before the batch split.
  TabularArch tabular_arch() const;

  /// Total table storage in bytes (tables + sigmoid LUT + LN params).
  std::size_t storage_bytes() const;

  /// Quantizes (or, for kOff, restores to exact float) every linear
  /// kernel's output table (DESIGN.md §10). Attention tables stay float —
  /// their per-subspace scales would compound across the two lookup stages
  /// for a small share of the query cost. Deterministic; the float tables
  /// are kept, so modes can be switched freely. NOT thread-safe vs
  /// concurrent queries: serving layers must quantize before publishing a
  /// predictor epoch (serve::ShardEngine relies on this).
  void set_quant_mode(QuantMode mode);

  /// The mode applied by the last set_quant_mode / artifact load (kOff
  /// means every kernel serves exact float tables).
  QuantMode quant_mode() const { return quant_mode_; }

  /// Records `mode` as the active quantization mode WITHOUT touching any
  /// kernel — the `.dart` loader calls this after attaching the stored
  /// QNTT payloads verbatim. Everywhere else, use set_quant_mode.
  void adopt_quant_mode(QuantMode mode) { quant_mode_ = mode; }

  /// Total quantized-payload bytes across all linear kernels (0 when
  /// kOff) — the storage/traffic counterpart of storage_bytes(), reported
  /// by the bench JSON.
  std::size_t quantized_bytes() const;

  /// Writes the complete deployment bundle — every kernel table, encoder,
  /// LayerNorm, the sigmoid LUT and the architecture — as a versioned
  /// `.dart` artifact (DESIGN.md §7). Defined in `src/io/artifact.cpp`;
  /// throws io::ArtifactError on I/O failure. For artifacts with metadata
  /// (app, latency, cache key) use io::save_predictor_artifact.
  void save(const std::string& path) const;
  /// Reloads a predictor saved by `save` (or `dart_train`); predictions are
  /// bit-exact vs the original instance. Throws io::ArtifactError on
  /// missing, truncated, corrupted, or version-incompatible files.
  static TabularPredictor load(const std::string& path);

  /// The architecture this predictor mirrors.
  const nn::ModelConfig& arch() const { return arch_; }

  // Builder access (populated by the Tabularizer).
  std::unique_ptr<LinearKernel> addr_kernel;  ///< address embedding kernel
  std::unique_ptr<LinearKernel> pc_kernel;    ///< PC embedding kernel
  nn::Tensor pos_encoding;                    ///< positional encoding, [T, D]
  std::vector<TabularEncoderLayer> layers;    ///< tabularized encoder stack
  LnParams final_ln;                          ///< pre-head LayerNorm
  std::unique_ptr<LinearKernel> head_kernel;  ///< output head, [D -> DO]
  SigmoidLut sigmoid_lut;                     ///< output activation LUT

 private:
  nn::ModelConfig arch_;
  QuantMode quant_mode_ = QuantMode::kOff;
};

}  // namespace dart::tabular
