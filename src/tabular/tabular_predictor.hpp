// The table-hierarchy predictor (the DART predictor of Fig. 3): a structural
// mirror of nn::AddressPredictor in which every matrix multiplication has
// been replaced by a tabularization kernel. LayerNorms stay arithmetic
// (Algorithm 1, line 18) and the output sigmoid is a fixed LUT (line 16).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "nn/transformer.hpp"
#include "tabular/attention_kernel.hpp"
#include "tabular/linear_kernel.hpp"
#include "tabular/lut.hpp"

namespace dart::tabular {

/// Frozen LayerNorm parameters carried over from the NN verbatim.
struct LnParams {
  nn::Tensor gamma;
  nn::Tensor beta;
  float eps = 1e-5f;

  /// Row-wise normalization of the last dimension.
  nn::Tensor apply(const nn::Tensor& x) const;
};

/// One tabularized encoder layer.
struct TabularEncoderLayer {
  std::unique_ptr<LinearKernel> qkv;
  std::vector<std::unique_ptr<AttentionKernel>> heads;
  std::unique_ptr<LinearKernel> out_proj;
  LnParams ln1;
  std::unique_ptr<LinearKernel> ffn_hidden;
  std::unique_ptr<LinearKernel> ffn_out;
  LnParams ln2;
};

class TabularPredictor {
 public:
  explicit TabularPredictor(const nn::ModelConfig& arch) : arch_(arch) {}

  /// Batched query: [B,T,S] segmented addr + pc -> probabilities [B, DO]
  /// (post-sigmoid-LUT). Samples are independent and processed in parallel.
  nn::Tensor forward(const nn::Tensor& addr, const nn::Tensor& pc) const;

  /// Single-sample query exposing the per-stage activations; `stages`
  /// receives one [T, D]-shaped tensor per stage (used for the Fig. 11
  /// cosine-similarity analysis).
  nn::Tensor forward_sample(const nn::Tensor& addr, const nn::Tensor& pc,
                            std::vector<nn::Tensor>* stages = nullptr) const;

  /// Total table storage in bytes (tables + sigmoid LUT + LN params).
  std::size_t storage_bytes() const;

  const nn::ModelConfig& arch() const { return arch_; }

  // Builder access (populated by the Tabularizer).
  std::unique_ptr<LinearKernel> addr_kernel;
  std::unique_ptr<LinearKernel> pc_kernel;
  nn::Tensor pos_encoding;  ///< [T, D]
  std::vector<TabularEncoderLayer> layers;
  LnParams final_ln;
  std::unique_ptr<LinearKernel> head_kernel;
  SigmoidLut sigmoid_lut;

 private:
  nn::ModelConfig arch_;
};

}  // namespace dart::tabular
