// Layer-wise tabularization with fine-tuning (the paper's Algorithm 1).
//
// Walks the trained attention model layer by layer; for every linear layer
// it (optionally) fine-tunes a copy of the weights on the tabular-
// approximated inputs (Eq. 26), then converts it with the linear kernel; the
// attention operation uses the attention kernel; LayerNorm passes through;
// the output sigmoid becomes a LUT. The approximated activations X̂ are
// propagated through the partially-built table hierarchy, so each stage is
// trained on exactly the distribution it will see at query time.
#pragma once

#include <string>
#include <vector>

#include "nn/transformer.hpp"
#include "tabular/configurator.hpp"
#include "tabular/finetune.hpp"
#include "tabular/tabular_predictor.hpp"

namespace dart::tabular {

struct TabularizeOptions {
  TableConfig tables = TableConfig::uniform(128, 2);
  bool fine_tune = true;  ///< Algorithm 1 line 7-9; off = "DART w/o FT"
  FineTuneOptions ft;
  AttentionActivation attention_activation = AttentionActivation::kSigmoidFolded;
  pq::EncoderKind encoder = pq::EncoderKind::kExact;
  std::size_t kmeans_iters = 8;
  /// Training windows used for prototype learning / fine-tuning; the input
  /// set is stride-subsampled down to this count to bound k-means cost.
  std::size_t max_train_samples = 2048;
  std::uint64_t seed = 33;
};

/// Per-stage fidelity of the tabular model vs the NN (Fig. 11's metric).
struct StageSimilarity {
  std::string name;       ///< e.g. "enc0.attn"
  double cosine = 0.0;    ///< cosine similarity of X̂ vs the NN activation
};

struct TabularizeReport {
  std::vector<StageSimilarity> stages;
  std::vector<double> finetune_mse;  ///< residual MSE per fine-tuned layer
};

/// Builds the table hierarchy from a trained model and its training inputs
/// (addr/pc are [N, T, S] tensors). The model is not mutated (fine-tuning
/// operates on copies). `report` is optional.
TabularPredictor tabularize(nn::AddressPredictor& model, const nn::Tensor& addr,
                            const nn::Tensor& pc, const TabularizeOptions& options,
                            TabularizeReport* report = nullptr);

}  // namespace dart::tabular
