#include "tabular/quant.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace dart::tabular {

namespace {

// Integer magnitude cap per mode. Ranges leave accumulation headroom so no
// saturating add along the C-term sum can actually saturate (DESIGN.md §10):
//  - int16 rows accumulate in 16-bit lanes: cap ⌊32767/C⌋.
//  - int8 rows widen to 16-bit before accumulating: cap 127 (C·127 fits in
//    int16 for any realistic C; beyond 258 subspaces fall back to ⌊32767/C⌋).
//  - int8 shuffle LUTs (K ≤ 16) accumulate in 8-bit lanes: cap ⌊127/C⌋.
int quant_cap(QuantMode mode, std::size_t c, std::size_t k) {
  if (mode == QuantMode::kInt16) return static_cast<int>(32767 / c);
  if (k <= 16) return static_cast<int>(127 / c);
  return c <= 258 ? 127 : static_cast<int>(32767 / c);
}

// One dequantization step: y = s * acc + z. The SIMD paths use fused
// multiply-add where the ISA has it, so the scalar twin must round
// identically — std::fmaf guarantees a single rounding, matching
// _mm256_fmadd_ps lane arithmetic. Without FMA both sides are mul+add.
inline float dequant1(float s, int acc, float z) {
#if defined(__FMA__)
  return std::fmaf(s, static_cast<float>(acc), z);
#else
  return s * static_cast<float>(acc) + z;
#endif
}

inline int sat16(int v) { return std::clamp(v, -32768, 32767); }
inline int sat8(int v) { return std::clamp(v, -128, 127); }

// Scalar twins of the SIMD kernels: identical accumulation semantics
// (element widths, saturation points, one fused dequant per output).

void rows16_scalar(const QuantizedTable& qt, const std::uint32_t* codes, std::size_t n,
                   float* out, std::size_t out_stride) {
  const std::size_t k = qt.k, dout = qt.out_dim, cc = qt.c;
  for (std::size_t i = 0; i < n; ++i) {
    float* orow = out + i * out_stride;
    const std::int16_t* r0 = qt.q16.data() + codes[i] * dout;
    for (std::size_t o = 0; o < dout; ++o) {
      int acc = r0[o];
      for (std::size_t c = 1; c < cc; ++c) {
        const std::int16_t* rc = qt.q16.data() + (c * k + codes[c * n + i]) * dout;
        acc = sat16(acc + rc[o]);
      }
      orow[o] = dequant1(qt.scales[o], acc, qt.offsets[o]);
    }
  }
}

void rows8_scalar(const QuantizedTable& qt, const std::uint32_t* codes, std::size_t n,
                  float* out, std::size_t out_stride) {
  const std::size_t k = qt.k, dout = qt.out_dim, cc = qt.c;
  for (std::size_t i = 0; i < n; ++i) {
    float* orow = out + i * out_stride;
    const std::int8_t* r0 = qt.q8.data() + codes[i] * dout;
    for (std::size_t o = 0; o < dout; ++o) {
      int acc = r0[o];  // widened to 16-bit accumulation, as in the SIMD path
      for (std::size_t c = 1; c < cc; ++c) {
        const std::int8_t* rc = qt.q8.data() + (c * k + codes[c * n + i]) * dout;
        acc = sat16(acc + rc[o]);
      }
      orow[o] = dequant1(qt.scales[o], acc, qt.offsets[o]);
    }
  }
}

// The shuffle path keeps the accumulator in 8-bit lanes; headroom
// quantization (±⌊127/C⌋) makes the saturating adds exact.
void shuffle_scalar(const QuantizedTable& qt, const std::uint32_t* codes, std::size_t n,
                    float* out, std::size_t out_stride) {
  const std::size_t k = qt.k, dout = qt.out_dim, cc = qt.c;
  for (std::size_t i = 0; i < n; ++i) {
    float* orow = out + i * out_stride;
    const std::int8_t* r0 = qt.q8.data() + codes[i] * dout;
    for (std::size_t o = 0; o < dout; ++o) {
      int acc = r0[o];
      for (std::size_t c = 1; c < cc; ++c) {
        const std::int8_t* rc = qt.q8.data() + (c * k + codes[c * n + i]) * dout;
        acc = sat8(acc + rc[o]);
      }
      orow[o] = dequant1(qt.scales[o], acc, qt.offsets[o]);
    }
  }
}

#if defined(__AVX2__)

// int16 rows: 8 outputs per iteration. Load 8 int16 per subspace row,
// saturating-add across subspaces in 16-bit lanes, widen once, dequantize.
void rows16_avx2(const QuantizedTable& qt, const std::uint32_t* codes, std::size_t n,
                 float* out, std::size_t out_stride) {
  const std::size_t k = qt.k, dout = qt.out_dim, cc = qt.c;
  const std::size_t d8 = dout - dout % 8;
  for (std::size_t i = 0; i < n; ++i) {
    float* orow = out + i * out_stride;
    const std::int16_t* r0 = qt.q16.data() + codes[i] * dout;
    for (std::size_t o = 0; o < d8; o += 8) {
      __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + o));
      for (std::size_t c = 1; c < cc; ++c) {
        const std::int16_t* rc = qt.q16.data() + (c * k + codes[c * n + i]) * dout;
        acc = _mm_adds_epi16(acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rc + o)));
      }
      __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(acc));
      __m256 s = _mm256_loadu_ps(qt.scales.data() + o);
      __m256 z = _mm256_loadu_ps(qt.offsets.data() + o);
#if defined(__FMA__)
      _mm256_storeu_ps(orow + o, _mm256_fmadd_ps(s, f, z));
#else
      _mm256_storeu_ps(orow + o, _mm256_add_ps(_mm256_mul_ps(s, f), z));
#endif
    }
    for (std::size_t o = d8; o < dout; ++o) {
      int acc = r0[o];
      for (std::size_t c = 1; c < cc; ++c) {
        acc = sat16(acc + qt.q16[(c * k + codes[c * n + i]) * dout + o]);
      }
      orow[o] = dequant1(qt.scales[o], acc, qt.offsets[o]);
    }
  }
}

// int8 rows (K > 16): 8 outputs per iteration — load 8 bytes per subspace
// row, sign-extend to 16-bit, saturating-add, widen, dequantize.
void rows8_avx2(const QuantizedTable& qt, const std::uint32_t* codes, std::size_t n,
                float* out, std::size_t out_stride) {
  const std::size_t k = qt.k, dout = qt.out_dim, cc = qt.c;
  const std::size_t d8 = dout - dout % 8;
  for (std::size_t i = 0; i < n; ++i) {
    float* orow = out + i * out_stride;
    const std::int8_t* r0 = qt.q8.data() + codes[i] * dout;
    for (std::size_t o = 0; o < d8; o += 8) {
      __m128i acc = _mm_cvtepi8_epi16(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0 + o)));
      for (std::size_t c = 1; c < cc; ++c) {
        const std::int8_t* rc = qt.q8.data() + (c * k + codes[c * n + i]) * dout;
        acc = _mm_adds_epi16(acc, _mm_cvtepi8_epi16(_mm_loadl_epi64(
                                      reinterpret_cast<const __m128i*>(rc + o))));
      }
      __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(acc));
      __m256 s = _mm256_loadu_ps(qt.scales.data() + o);
      __m256 z = _mm256_loadu_ps(qt.offsets.data() + o);
#if defined(__FMA__)
      _mm256_storeu_ps(orow + o, _mm256_fmadd_ps(s, f, z));
#else
      _mm256_storeu_ps(orow + o, _mm256_add_ps(_mm256_mul_ps(s, f), z));
#endif
    }
    for (std::size_t o = d8; o < dout; ++o) {
      int acc = r0[o];
      for (std::size_t c = 1; c < cc; ++c) {
        acc = sat16(acc + qt.q8[(c * k + codes[c * n + i]) * dout + o]);
      }
      orow[o] = dequant1(qt.scales[o], acc, qt.offsets[o]);
    }
  }
}

// vpshufb path (int8, K ≤ 16, C ≤ 16): each (subspace, output) pair owns a
// 16-byte in-register codebook; one _mm256_shuffle_epi8 looks 32 rows'
// codes up at once, and subspaces combine with 8-bit saturating adds. The
// [DO][32] int8 tile is then dequantize-transposed into row-major floats.
// Output columns are tiled so the staging buffer stays on the stack.
void shuffle_avx2(const QuantizedTable& qt, const std::uint32_t* codes, std::size_t n,
                  float* out, std::size_t out_stride) {
  constexpr std::size_t kRows = 32;   // rows per shuffle block
  constexpr std::size_t kOTile = 64;  // output columns per staging tile
  const std::size_t dout = qt.out_dim, cc = qt.c;
  const std::size_t nb = n - n % kRows;
  alignas(32) std::uint8_t idx_bytes[kRows];
  alignas(32) std::int8_t tile[kOTile * kRows];
  std::array<__m256i, 16> idx;  // per-subspace code bytes for this block
  for (std::size_t i0 = 0; i0 < nb; i0 += kRows) {
    for (std::size_t c = 0; c < cc; ++c) {
      for (std::size_t j = 0; j < kRows; ++j) {
        idx_bytes[j] = static_cast<std::uint8_t>(codes[c * n + i0 + j]);
      }
      idx[c] = _mm256_load_si256(reinterpret_cast<const __m256i*>(idx_bytes));
    }
    for (std::size_t o0 = 0; o0 < dout; o0 += kOTile) {
      const std::size_t ow = std::min(kOTile, dout - o0);
      for (std::size_t o = 0; o < ow; ++o) {
        __m256i lut = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(qt.lut8.data() + (o0 + o) * 16)));
        __m256i acc = _mm256_shuffle_epi8(lut, idx[0]);
        for (std::size_t c = 1; c < cc; ++c) {
          lut = _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(
              qt.lut8.data() + (c * dout + o0 + o) * 16)));
          acc = _mm256_adds_epi8(acc, _mm256_shuffle_epi8(lut, idx[c]));
        }
        _mm256_store_si256(reinterpret_cast<__m256i*>(tile + o * kRows), acc);
      }
      for (std::size_t j = 0; j < kRows; ++j) {
        float* orow = out + (i0 + j) * out_stride + o0;
        for (std::size_t o = 0; o < ow; ++o) {
          orow[o] = dequant1(qt.scales[o0 + o], tile[o * kRows + j], qt.offsets[o0 + o]);
        }
      }
    }
  }
  // Tail rows (< 32) take the scalar twin — same 8-bit saturating
  // accumulation over the row-layout payload, so results stay identical.
  for (std::size_t i = nb; i < n; ++i) {
    float* orow = out + i * out_stride;
    const std::int8_t* r0 = qt.q8.data() + codes[i] * dout;
    for (std::size_t o = 0; o < dout; ++o) {
      int acc = r0[o];
      for (std::size_t c = 1; c < cc; ++c) {
        const std::int8_t* rc = qt.q8.data() + (c * qt.k + codes[c * n + i]) * dout;
        acc = sat8(acc + rc[o]);
      }
      orow[o] = dequant1(qt.scales[o], acc, qt.offsets[o]);
    }
  }
}

#endif  // __AVX2__

}  // namespace

const char* quant_mode_name(QuantMode mode) {
  switch (mode) {
    case QuantMode::kOff:
      return "off";
    case QuantMode::kInt16:
      return "int16";
    case QuantMode::kInt8:
      return "int8";
  }
  return "off";
}

QuantMode parse_quant_mode(const std::string& text) {
  if (text == "off") return QuantMode::kOff;
  if (text == "int16") return QuantMode::kInt16;
  if (text == "int8") return QuantMode::kInt8;
  throw std::invalid_argument("invalid quantization mode '" + text +
                              "' (expected off|int16|int8)");
}

QuantizedTable quantize_table(const float* table, std::size_t c, std::size_t k,
                              std::size_t out_dim, QuantMode mode) {
  if (mode == QuantMode::kOff) {
    throw std::invalid_argument("quantize_table: mode must be int16 or int8");
  }
  if (c == 0 || k == 0 || out_dim == 0) {
    throw std::invalid_argument("quantize_table: zero dimension");
  }
  QuantizedTable qt;
  qt.mode = mode;
  qt.c = c;
  qt.k = k;
  qt.out_dim = out_dim;
  qt.scales.assign(out_dim, 0.0f);
  qt.offsets.assign(out_dim, 0.0f);
  const int cap = quant_cap(mode, c, k);

  // Per-column affine: map [lo_o, hi_o] onto [-cap, +cap] around the
  // midpoint. A constant column gets scale 0 and quantizes exactly into
  // the offset.
  std::vector<float> mid(out_dim);
  for (std::size_t o = 0; o < out_dim; ++o) {
    float lo = table[o], hi = table[o];
    for (std::size_t e = o; e < c * k * out_dim; e += out_dim) {
      lo = std::min(lo, table[e]);
      hi = std::max(hi, table[e]);
    }
    mid[o] = 0.5f * (hi + lo);
    const float half = 0.5f * (hi - lo);
    qt.scales[o] = half > 0.0f ? half / static_cast<float>(cap) : 0.0f;
    qt.offsets[o] = static_cast<float>(c) * mid[o];
  }

  auto encode1 = [&](std::size_t e, std::size_t o) {
    if (qt.scales[o] == 0.0f) return 0;
    const int q = static_cast<int>(std::lrintf((table[e] - mid[o]) / qt.scales[o]));
    return std::clamp(q, -cap, cap);
  };
  const std::size_t total = c * k * out_dim;
  if (mode == QuantMode::kInt16) {
    qt.q16.resize(total);
    for (std::size_t e = 0; e < total; ++e) {
      qt.q16[e] = static_cast<std::int16_t>(encode1(e, e % out_dim));
    }
  } else {
    qt.q8.resize(total);
    for (std::size_t e = 0; e < total; ++e) {
      qt.q8[e] = static_cast<std::int8_t>(encode1(e, e % out_dim));
    }
    rebuild_shuffle_lut(qt);
  }
  return qt;
}

void rebuild_shuffle_lut(QuantizedTable& qt) {
  qt.lut8.clear();
  if (qt.mode != QuantMode::kInt8 || qt.k > 16 || qt.c > 16) return;
  // [C][K][DO] -> [C][DO][16]; prototype slots past K stay zero (codes are
  // always < K, so they are never shuffled in).
  qt.lut8.assign(qt.c * qt.out_dim * 16, 0);
  for (std::size_t c = 0; c < qt.c; ++c) {
    for (std::size_t kk = 0; kk < qt.k; ++kk) {
      const std::int8_t* row = qt.q8.data() + (c * qt.k + kk) * qt.out_dim;
      for (std::size_t o = 0; o < qt.out_dim; ++o) {
        qt.lut8[(c * qt.out_dim + o) * 16 + kk] = row[o];
      }
    }
  }
}

void aggregate_quantized(const QuantizedTable& qt, const std::uint32_t* codes, std::size_t n,
                         float* out, std::size_t out_stride) {
#if defined(__AVX2__)
  if (qt.mode == QuantMode::kInt16) {
    rows16_avx2(qt, codes, n, out, out_stride);
  } else if (qt.shuffle()) {
    shuffle_avx2(qt, codes, n, out, out_stride);
  } else {
    rows8_avx2(qt, codes, n, out, out_stride);
  }
#else
  aggregate_quantized_reference(qt, codes, n, out, out_stride);
#endif
}

void aggregate_quantized_reference(const QuantizedTable& qt, const std::uint32_t* codes,
                                   std::size_t n, float* out, std::size_t out_stride) {
  if (qt.mode == QuantMode::kInt16) {
    rows16_scalar(qt, codes, n, out, out_stride);
  } else if (qt.shuffle()) {
    shuffle_scalar(qt, codes, n, out, out_stride);
  } else {
    rows8_scalar(qt, codes, n, out, out_stride);
  }
}

}  // namespace dart::tabular
