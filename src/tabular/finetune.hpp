// Layer fine-tuning (the paper's §VI-E2, Eq. 26): before tabularizing linear
// layer i, retrain its weights so that W' X̂ + b' matches the *original* NN
// layer output Y on the tabular-approximated inputs X̂, counteracting error
// accumulation across tabularized layers.
//
// Two solvers:
//  * kClosedForm — ridge-regularized least squares via normal equations +
//    Cholesky; the exact minimizer of Eq. 26 (fast, deterministic).
//  * kSgd        — E epochs of mini-batch Adam on the MSE loss
//    (paper-faithful iterative variant).
#pragma once

#include <cstdint>

#include "nn/linear.hpp"

namespace dart::tabular {

enum class FineTuneMethod { kClosedForm, kSgd };

struct FineTuneOptions {
  FineTuneMethod method = FineTuneMethod::kClosedForm;
  /// Closed form: Tikhonov regularizer pulling the solution toward the
  /// *original trained weights* (not toward zero), scaled relative to the
  /// Gram matrix's mean diagonal. Large values recover the un-fine-tuned
  /// layer; small values give the pure least-squares fit of Eq. 26. The
  /// default guards against overfitting the approximated activations when
  /// the workload's train/test phases differ.
  float ridge_lambda = 0.05f;
  std::size_t epochs = 4;      ///< SGD: E of Algorithm 1
  std::size_t batch_size = 256;
  float lr = 1e-3f;
  std::uint64_t seed = 23;
};

/// Fine-tunes `layer` in place on pairs (x_hat [M, DI] -> y_ref [M, DO]).
/// Returns the final MSE.
double fine_tune_linear(nn::Linear& layer, const nn::Tensor& x_hat, const nn::Tensor& y_ref,
                        const FineTuneOptions& options);

/// Solves min_W ||A W - B||^2 + lambda ||W||^2 for A [M, P], B [M, Q] via
/// normal equations; returns W [P, Q]. Exposed for tests.
nn::Tensor ridge_solve(const nn::Tensor& a, const nn::Tensor& b, float lambda);

}  // namespace dart::tabular
