// Fixed lookup-table approximation of the output Sigmoid (Algorithm 1,
// line 16; Meher [46]): uniform 256-entry table over [-8, 8], clamped
// outside. One comparison + one lookup per scalar — no transcendentals at
// query time.
#pragma once

#include <array>
#include <cstddef>

#include "nn/tensor.hpp"

namespace dart::tabular {

class SigmoidLut {
 public:
  static constexpr std::size_t kEntries = 256;
  static constexpr float kRange = 8.0f;  ///< covers [-8, 8]

  SigmoidLut();

  /// LUT-approximated sigmoid of a scalar.
  float operator()(float x) const;

  /// Applies elementwise to a tensor (out-of-place).
  nn::Tensor apply(const nn::Tensor& x) const;

  /// Worst-case absolute error vs the exact sigmoid over the covered range
  /// (useful for tests; ~ kRange / kEntries * max|σ'| = 1/128 * 1/4).
  static constexpr float max_abs_error() { return (2.0f * kRange / kEntries) * 0.25f; }

  std::size_t table_bytes() const { return kEntries * sizeof(float); }

 private:
  std::array<float, kEntries> table_{};
};

}  // namespace dart::tabular
