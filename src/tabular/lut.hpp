// Fixed lookup-table approximation of the output Sigmoid (Algorithm 1,
// line 16; Meher [46]): uniform 256-entry table over [-8, 8], clamped
// outside. One comparison + one lookup per scalar — no transcendentals at
// query time. The inverse cell width is precomputed at construction and the
// scalar operator is inline, so `apply_batch` compiles to a tight
// multiply + clamp + gather loop.
#pragma once

#include <array>
#include <cstddef>

#include "nn/tensor.hpp"

namespace dart::tabular {

class SigmoidLut {
 public:
  static constexpr std::size_t kEntries = 256;
  static constexpr float kRange = 8.0f;  ///< covers [-8, 8]

  SigmoidLut();

  /// LUT-approximated sigmoid of a scalar.
  float operator()(float x) const {
    if (x <= -kRange) return 0.0f;
    if (x >= kRange) return 1.0f;
    auto idx = static_cast<std::size_t>((x + kRange) * inv_step_);
    if (idx >= kEntries) idx = kEntries - 1;
    return table_[idx];
  }

  /// Applies elementwise to `n` scalars at `x`, writing to `out` (which may
  /// alias `x` — used in-place on workspace buffers by the predictor).
  void apply_batch(const float* x, std::size_t n, float* out) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = (*this)(x[i]);
  }

  /// Applies elementwise to a tensor (out-of-place).
  nn::Tensor apply(const nn::Tensor& x) const;

  /// Worst-case absolute error vs the exact sigmoid over the covered range
  /// (useful for tests; ~ kRange / kEntries * max|σ'| = 1/128 * 1/4).
  static constexpr float max_abs_error() { return (2.0f * kRange / kEntries) * 0.25f; }

  std::size_t table_bytes() const { return kEntries * sizeof(float); }

  /// Raw table contents (serialization).
  const float* table_data() const { return table_.data(); }

  /// Adopts `n` (= kEntries) stored table values verbatim — used when
  /// reloading a `.dart` artifact, so served predictions stay bit-exact
  /// with the producing host even if its libm rounds std::exp differently.
  /// Throws std::invalid_argument on a size mismatch.
  void set_table(const float* values, std::size_t n);

 private:
  std::array<float, kEntries> table_{};
  float inv_step_ = 0.0f;  ///< kEntries / (2*kRange), set once in the ctor
};

}  // namespace dart::tabular
