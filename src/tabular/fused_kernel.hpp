// Fused multi-layer table (the paper's stated future work, §VIII: "explore
// converting multiple layers into a single table to further reduce latency,
// storage, and operations").
//
// Unlike the per-layer kernels, a fused table cannot decompose additively
// across subspaces when the fused function is nonlinear (e.g. FFN =
// Linear∘ReLU∘Linear), so it uses a single full-width codebook (C = 1):
// K prototypes are learned on the layer-stack's *input* distribution, and
// the table stores the exact stack output evaluated at each prototype:
//
//   table[k] = f(P_k),  query(x) = table[g(x)]
//
// Query cost: one encode (log K with the hash tree) + one DO-wide row copy —
// zero aggregation arithmetic, strictly cheaper than two chained linear
// kernels (2·(log K + log C + 1) vs log K + 1 cycles). The trade-off is
// pure vector quantization error (no per-subspace factorization), which the
// ablation bench quantifies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "nn/tensor.hpp"
#include "pq/encoder.hpp"
#include "tabular/quant.hpp"

namespace dart::tabular {

/// Training-time configuration of a fused table: one full-width codebook.
struct FusedKernelConfig {
  std::size_t num_prototypes = 256;  ///< K (single codebook)
  pq::EncoderKind encoder = pq::EncoderKind::kExact;  ///< query-time encoder
  std::size_t kmeans_iters = 12;  ///< k-means refinement iterations
  std::uint64_t seed = 47;        ///< prototype-learning RNG seed
};

/// A whole layer stack collapsed into one [K, DO] table: query = encode +
/// row copy (see the file comment). Supports the same optional quantized
/// mirror as LinearKernel (DESIGN.md §10) — with C = 1 the "aggregation"
/// is a dequantizing row copy, so quantization is purely a storage win.
class FusedKernel {
 public:
  /// `stack` maps a [M, DI] batch to [M, DO] — any composition of layers
  /// (typically FFN hidden∘relu∘out, optionally including the residual and
  /// LayerNorm). Prototypes are learned on `training_rows` [M, DI].
  FusedKernel(std::size_t in_dim, std::size_t out_dim,
              const std::function<nn::Tensor(const nn::Tensor&)>& stack,
              const nn::Tensor& training_rows, const FusedKernelConfig& config);

  /// Deserialization factory: adopts a previously evaluated [K, DO] table
  /// and its encoder verbatim — the layer stack is not needed to reload.
  /// Validates shapes and throws std::invalid_argument on mismatch. Used by
  /// `src/io/artifact.cpp`.
  static FusedKernel from_parts(const FusedKernelConfig& config, std::size_t in_dim,
                                std::size_t out_dim, nn::Tensor table,
                                std::unique_ptr<pq::Encoder> encoder);

  /// Query: encode each row, copy the precomputed stack output (a
  /// dequantizing copy when a quantized table is attached).
  nn::Tensor query(const nn::Tensor& rows) const;

  /// Builds (or clears, for kOff) the quantized mirror of the table
  /// (DESIGN.md §10). The float table is kept; kOff restores bit-exact
  /// queries. Quantize before sharing across threads.
  void quantize(QuantMode mode);

  /// Adopts a quantized table verbatim (the `.dart` QNTT load path);
  /// validates the payload against <1, K, DO> and throws
  /// std::invalid_argument on mismatch.
  void attach_quantized(QuantizedTable table);

  /// Active quantization mode (kOff when the float table serves).
  QuantMode quant_mode() const { return quant_.mode; }

  /// The attached quantized table (empty() when mode is kOff).
  const QuantizedTable& quantized() const { return quant_; }

  /// Input width DI.
  std::size_t in_dim() const { return in_dim_; }
  /// Output width DO.
  std::size_t out_dim() const { return out_dim_; }

  /// Table storage in bytes: K * DO entries.
  std::size_t table_bytes() const { return table_.numel() * sizeof(float); }

  /// Query latency in the Eq. 16 cycle model: encode (log K) + 1 lookup —
  /// no aggregation tree.
  std::size_t latency_cycles() const;

  /// The training-time configuration this kernel was built with.
  const FusedKernelConfig& config() const { return config_; }
  /// Raw [K, DO] table — stack output per prototype (serialization/tests).
  const nn::Tensor& table() const { return table_; }
  /// The single full-width codebook encoder (serialization/tests).
  const pq::Encoder& encoder() const { return *encoder_; }

  /// Writes this kernel as a `.dart` artifact (DESIGN.md §7, FUSD chunk).
  /// Defined in `src/io/artifact.cpp`; throws io::ArtifactError on failure.
  void save(const std::string& path) const;
  /// Reloads a kernel saved by `save`; bit-exact. Throws io::ArtifactError
  /// on missing/corrupted/incompatible files.
  static FusedKernel load(const std::string& path);

 private:
  FusedKernel() = default;  // from_parts fills every member

  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  FusedKernelConfig config_;
  nn::Tensor table_;  ///< [K, DO] — stack evaluated at each prototype
  std::unique_ptr<pq::Encoder> encoder_;
  QuantizedTable quant_;  ///< optional quantized mirror (empty = float path)
};

}  // namespace dart::tabular
