#include "core/experiment.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/artifact_cache.hpp"
#include "core/configs.hpp"
#include "core/result_store.hpp"
#include "sim/shard_replay.hpp"
#include "tabular/complexity.hpp"

namespace dart::core {

namespace {

/// Per-app shared state: the trained pipeline, the baseline run, and the
/// context lending artifacts to registry factories. The mutex serializes
/// lazy training and the DART-model cache across this app's cells; cells of
/// different apps never contend.
struct AppState {
  explicit AppState(trace::Workload w, const PipelineOptions& options)
      : workload(std::move(w)), pipe(workload, options) {}

  trace::Workload workload;
  Pipeline pipe;
  std::mutex mu;
  sim::PrefetcherContext ctx;
  double baseline_ipc = 0.0;
  std::map<std::string, sim::DartModel> dart_cache;
};

void build_context(AppState& state, const ExperimentSpec& spec) {
  AppState* s = &state;
  const PipelineOptions popts = spec.pipeline;
  state.ctx.prep = popts.prep;
  state.ctx.degree = popts.sim.max_degree;
  state.ctx.nn_trigger_sample = spec.nn_trigger_sample;
  state.ctx.artifact_dir = popts.artifact_dir;
  state.ctx.attention_model = [s] {
    std::lock_guard lock(s->mu);
    return s->pipe.teacher_shared();
  };
  state.ctx.lstm_model = [s] {
    std::lock_guard lock(s->mu);
    return s->pipe.lstm_baseline_shared();
  };
  // Three cache levels, checked in order: the in-memory per-app map, the
  // `.dart` artifact on disk (train-once across processes, keyed by the
  // producing-configuration hash so stale files retrain), then training.
  state.ctx.dart_model = [s, popts](const sim::DartModelRequest& request) {
    std::lock_guard lock(s->mu);
    // The quant mode joins the in-memory key (distinct served tables) but
    // NOT the artifact config key: artifacts stay float and are shared
    // across modes, with quantization applied after load.
    std::ostringstream key;
    key << normalize_dart_variant(request.variant) << '/' << request.table_k << '/'
        << request.table_c << '/' << tabular::quant_mode_name(request.quant);
    auto it = s->dart_cache.find(key.str());
    if (it != s->dart_cache.end()) return it->second;

    std::string path;
    if (!popts.artifact_dir.empty()) {
      path = dart_artifact_path(popts.artifact_dir, s->workload, popts, request);
      if (auto loaded = try_load_dart_artifact(
              path, dart_config_key(s->workload, popts, request), request.quant)) {
        return s->dart_cache.emplace(key.str(), std::move(*loaded)).first->second;
      }
    }
    TrainedDart trained = train_dart(s->pipe, request);
    if (!path.empty()) save_dart_artifact(path, s->workload, trained, "experiment_runner");
    trained.predictor.set_quant_mode(request.quant);
    sim::DartModel model;
    model.latency_cycles = trained.latency_cycles;
    model.display_name = trained.display_name;
    model.predictor =
        std::make_shared<tabular::TabularPredictor>(std::move(trained.predictor));
    return s->dart_cache.emplace(key.str(), std::move(model)).first->second;
  };
}

/// Runs every task, fanning out on the shared pool when possible. The first
/// task exception is rethrown after all tasks finished (cells already in
/// flight are never abandoned mid-simulation).
void run_tasks(const std::vector<std::function<void()>>& tasks, bool parallel) {
  auto& pool = common::ThreadPool::instance();
  if (!parallel || tasks.size() <= 1 || pool.size() <= 1 ||
      common::ThreadPool::inside_worker()) {
    for (const auto& task : tasks) task();
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = tasks.size();
  std::exception_ptr first_error;
  for (const auto& task : tasks) {
    pool.submit([&, task] {
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard lock(mu);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) cv.notify_all();
    });
  }
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
  // Rethrow the original exception so failures surface with the same type
  // regardless of the parallel flag.
  if (first_error) std::rethrow_exception(first_error);
}

/// Outcome slot of one timed cell attempt. shared_ptr-owned so an abandoned
/// (timed-out) attempt thread can finish into it safely after the waiter
/// has moved on to the next attempt.
struct AttemptState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  ExperimentCell cell;
};

/// Runs `body` under an optional wall-clock timeout. Returns true when the
/// attempt finished (with *cell or *error filled); false on timeout, in
/// which case the still-running thread was handed to `zombies` for reaping
/// at sweep end and its eventual result is discarded.
bool run_attempt(const std::function<ExperimentCell()>& body, std::uint64_t timeout_ms,
                 std::vector<std::thread>* zombies, std::mutex* zombies_mu,
                 ExperimentCell* cell, std::exception_ptr* error) {
  if (timeout_ms == 0) {
    try {
      *cell = body();
    } catch (...) {
      *error = std::current_exception();
    }
    return true;
  }
  // A dedicated thread per timed attempt: the simulator has no cancellation
  // points, so the only sound timeout is to abandon the attempt and let its
  // thread run to completion off to the side.
  auto at = std::make_shared<AttemptState>();
  std::thread th([at, body] {
    ExperimentCell c;
    std::exception_ptr e;
    try {
      c = body();
    } catch (...) {
      e = std::current_exception();
    }
    std::lock_guard lock(at->mu);
    at->cell = std::move(c);
    at->error = e;
    at->done = true;
    at->cv.notify_all();
  });
  std::unique_lock lock(at->mu);
  const bool finished =
      at->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] { return at->done; });
  if (finished) {
    *cell = std::move(at->cell);
    *error = at->error;
    lock.unlock();
    th.join();
    return true;
  }
  lock.unlock();
  std::lock_guard z(*zombies_mu);
  zombies->push_back(std::move(th));
  return false;
}

// Minimal CSV field handling: quote fields containing commas (spec strings
// do), matching common::TablePrinter's convention.
std::string csv_quote(const std::string& field) {
  if (field.find(',') == std::string::npos) return field;
  return "\"" + field + "\"";
}

bool csv_next_field(std::stringstream& ss, std::string* out) {
  out->clear();
  if (!ss.good()) return false;
  if (ss.peek() == '"') {
    ss.get();
    std::getline(ss, *out, '"');
    if (ss.peek() == ',') ss.get();
    return true;
  }
  return static_cast<bool>(std::getline(ss, *out, ','));
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

// --------------------------------------------------------------- CellStatus

const char* cell_status_name(CellStatus status) {
  switch (status) {
    case CellStatus::kDone:
      return "done";
    case CellStatus::kFailed:
      return "failed";
    case CellStatus::kSkipped:
      return "skipped";
  }
  return "unknown";
}

SweepOptions SweepOptions::from_env() {
  SweepOptions o;
  o.store_dir = common::env_string("DART_SWEEP_DIR", "");
  o.cell_timeout_ms = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, common::env_int("DART_SWEEP_TIMEOUT_MS", 0)));
  o.cell_retries = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, common::env_int("DART_SWEEP_RETRIES", 2)));
  o.backoff_ms = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, common::env_int("DART_SWEEP_BACKOFF_MS", 10)));
  o.trace_shards = static_cast<std::size_t>(
      std::max<std::int64_t>(1, common::env_int("DART_SWEEP_SHARDS", 1)));
  const std::int64_t warmup = common::env_int("DART_SWEEP_WARMUP", -1);
  o.shard_warmup = warmup < 0 ? sim::kFullWarmup : static_cast<std::size_t>(warmup);
  return o;
}

// ------------------------------------------------------------ ExperimentSpec

ExperimentSpec ExperimentSpec::bench_defaults() {
  ExperimentSpec spec;
  for (const auto& name : common::env_list("DART_APPS")) {
    spec.apps.push_back(trace::app_from_name(name));
  }
  const std::string wls = common::env_string("DART_WORKLOADS", "");
  if (!wls.empty()) {
    // Validate up front (fail fast on typos) but carry the spec strings.
    for (const trace::Workload& w : trace::parse_workload_list(wls)) {
      spec.workloads.push_back(w.spec());
    }
  }
  const std::string pfs = common::env_string("DART_PREFETCHERS", "");
  if (!pfs.empty()) spec.prefetchers = sim::split_spec_list(pfs);
  return spec;
}

// ---------------------------------------------------------- ExperimentResult

std::vector<std::string> ExperimentResult::apps() const {
  std::vector<std::string> out;
  for (const auto& c : cells) {
    if (std::find(out.begin(), out.end(), c.app) == out.end()) out.push_back(c.app);
  }
  return out;
}

std::vector<std::string> ExperimentResult::prefetchers() const {
  std::vector<std::string> out;
  for (const auto& c : cells) {
    if (std::find(out.begin(), out.end(), c.prefetcher) == out.end()) {
      out.push_back(c.prefetcher);
    }
  }
  return out;
}

const ExperimentCell* ExperimentResult::find(const std::string& prefetcher,
                                             const std::string& app) const {
  for (const auto& c : cells) {
    if (c.prefetcher == prefetcher && c.app == app) return &c;
  }
  return nullptr;
}

std::vector<PrefetcherSummary> ExperimentResult::summaries() const {
  std::vector<PrefetcherSummary> out;
  std::vector<std::size_t> counts;
  for (const auto& c : cells) {
    std::size_t i = 0;
    while (i < out.size() && out[i].prefetcher != c.prefetcher) ++i;
    if (i == out.size()) {
      PrefetcherSummary s;
      s.prefetcher = c.prefetcher;
      out.push_back(s);
      counts.push_back(0);
    }
    PrefetcherSummary& s = out[i];
    s.mean_accuracy += c.stats.accuracy();
    s.mean_coverage += c.stats.coverage();
    s.mean_ipc_improvement += c.ipc_improvement;
    s.storage_bytes = std::max(s.storage_bytes, c.storage_bytes);
    s.latency_cycles = c.latency_cycles;
    ++counts[i];
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (counts[i] == 0) continue;
    const double n = static_cast<double>(counts[i]);
    out[i].mean_accuracy /= n;
    out[i].mean_coverage /= n;
    out[i].mean_ipc_improvement /= n;
  }
  return out;
}

std::size_t ExperimentResult::count(CellStatus status) const {
  std::size_t n = 0;
  for (const auto& c : cells) {
    if (c.status == status) ++n;
  }
  return n;
}

bool ExperimentResult::write_csv(const std::string& path, const std::string& tag) const {
  std::ofstream out(path);
  if (!out) return false;
  if (!tag.empty()) out << tag << '\n';
  out << "spec,prefetcher,app,baseline_ipc,ipc_improvement,pf_issued,pf_useful,pf_late,"
         "pf_dropped,llc_accesses,llc_hits,llc_demand_misses,instructions,cycles,"
         "storage_bytes,latency_cycles\n";
  out << std::setprecision(12);
  for (const auto& c : cells) {
    out << csv_quote(c.spec) << ',' << csv_quote(c.prefetcher) << ',' << c.app << ','
        << c.baseline_ipc << ',' << c.ipc_improvement << ',' << c.stats.pf_issued << ','
        << c.stats.pf_useful << ',' << c.stats.pf_late << ',' << c.stats.pf_dropped << ','
        << c.stats.llc_accesses << ',' << c.stats.llc_hits << ','
        << c.stats.llc_demand_misses << ',' << c.stats.instructions << ',' << c.stats.cycles
        << ',' << c.storage_bytes << ',' << c.latency_cycles << '\n';
  }
  return static_cast<bool>(out);
}

bool ExperimentResult::read_csv(const std::string& path, const std::string& expected_tag,
                                ExperimentResult* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!expected_tag.empty()) {
    if (!std::getline(in, line) || line != expected_tag) return false;
  }
  if (!std::getline(in, line)) return false;  // header
  ExperimentResult result;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    ExperimentCell c;
    std::string field;
    if (!csv_next_field(ss, &c.spec) || !csv_next_field(ss, &c.prefetcher) ||
        !csv_next_field(ss, &c.app)) {
      return false;
    }
    auto next_d = [&]() {
      if (!csv_next_field(ss, &field)) throw std::invalid_argument("short row");
      return std::stod(field);
    };
    auto next_u = [&]() { return static_cast<std::uint64_t>(next_d()); };
    try {
      c.baseline_ipc = next_d();
      c.ipc_improvement = next_d();
      c.stats.pf_issued = next_u();
      c.stats.pf_useful = next_u();
      c.stats.pf_late = next_u();
      c.stats.pf_dropped = next_u();
      c.stats.llc_accesses = next_u();
      c.stats.llc_hits = next_u();
      c.stats.llc_demand_misses = next_u();
      c.stats.instructions = next_u();
      c.stats.cycles = next_u();
      c.storage_bytes = static_cast<std::size_t>(next_u());
      c.latency_cycles = static_cast<std::size_t>(next_u());
    } catch (const std::exception&) {
      return false;
    }
    result.cells.push_back(std::move(c));
  }
  if (result.cells.empty()) return false;
  *out = std::move(result);
  return true;
}

bool ExperimentResult::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << std::setprecision(12) << "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ExperimentCell& c = cells[i];
    out << "  {\"spec\": \"" << json_escape(c.spec) << "\", \"prefetcher\": \""
        << json_escape(c.prefetcher) << "\", \"app\": \"" << json_escape(c.app)
        << "\", \"baseline_ipc\": " << c.baseline_ipc
        << ", \"ipc_improvement\": " << c.ipc_improvement
        << ", \"accuracy\": " << c.stats.accuracy()
        << ", \"coverage\": " << c.stats.coverage() << ", \"ipc\": " << c.stats.ipc()
        << ", \"pf_issued\": " << c.stats.pf_issued << ", \"pf_useful\": " << c.stats.pf_useful
        << ", \"pf_late\": " << c.stats.pf_late
        << ", \"llc_demand_misses\": " << c.stats.llc_demand_misses
        << ", \"instructions\": " << c.stats.instructions << ", \"cycles\": " << c.stats.cycles
        << ", \"storage_bytes\": " << c.storage_bytes
        << ", \"latency_cycles\": " << c.latency_cycles << "}"
        << (i + 1 < cells.size() ? "," : "") << '\n';
  }
  out << "]\n";
  return static_cast<bool>(out);
}

// ---------------------------------------------------------- ExperimentRunner

ExperimentRunner::ExperimentRunner(ExperimentSpec spec) : spec_(std::move(spec)) {}

ExperimentResult ExperimentRunner::run() {
  // The grid's rows: legacy apps first, then parsed workload specs; all
  // eight Table IV apps when neither list names anything.
  std::vector<trace::Workload> workloads(spec_.apps.begin(), spec_.apps.end());
  for (const std::string& spec_text : spec_.workloads) {
    workloads.push_back(trace::Workload::parse(spec_text));
  }
  if (workloads.empty()) {
    workloads.assign(trace::all_apps().begin(), trace::all_apps().end());
  }
  // Fail fast on unknown prefetcher names, before any training starts.
  for (const auto& spec_text : spec_.prefetchers) {
    sim::PrefetcherRegistry::instance().validate(spec_text);
  }

  const SweepOptions& sweep = spec_.sweep;
  // The durable result store (DESIGN.md §13): opened before any work, so a
  // resumed sweep skips every already-committed cell below.
  std::unique_ptr<ResultStore> store;
  if (!sweep.store_dir.empty()) store = std::make_unique<ResultStore>(sweep.store_dir);

  // Cell identity: the pipeline configuration hash plus the sweep replay
  // plan (NN sampling, shard count, warmup) — a cell is only reused when
  // it would provably reproduce the stored numbers.
  auto config_of = [&](const trace::Workload& w) {
    std::ostringstream os;
    os << pipeline_cache_key(w, spec_.pipeline) << "/nn" << spec_.nn_trigger_sample << "/sh"
       << sweep.trace_shards << "/w";
    if (sweep.trace_shards <= 1 || sweep.shard_warmup == sim::kFullWarmup) {
      os << "full";
    } else {
      os << sweep.shard_warmup;
    }
    return os.str();
  };

  const std::size_t npf = spec_.prefetchers.size();
  ExperimentResult result;
  result.cells.assign(workloads.size() * npf, ExperimentCell{});
  std::vector<std::uint64_t> keys(result.cells.size(), 0);
  std::vector<char> pending(result.cells.size(), 1);
  if (store) {
    for (std::size_t a = 0; a < workloads.size(); ++a) {
      const std::string config = config_of(workloads[a]);
      for (std::size_t p = 0; p < npf; ++p) {
        const std::size_t i = a * npf + p;
        keys[i] = sweep_cell_key(workloads[a].spec(), spec_.prefetchers[p], config);
        CellRecord rec;
        // Only completed records are reused; quarantined cells get a fresh
        // chance on every resume (their record is superseded on success).
        if (store->find(keys[i], &rec) && rec.status == CellStatus::kDone) {
          result.cells[i] = rec.cell;
          result.cells[i].status = CellStatus::kSkipped;
          pending[i] = 0;
        }
      }
    }
  }

  std::vector<std::unique_ptr<AppState>> states;
  states.reserve(workloads.size());
  for (const trace::Workload& w : workloads) {
    states.push_back(std::make_unique<AppState>(w, spec_.pipeline));
    build_context(*states.back(), spec_);
  }

  // Phase 1: per-app preparation (trace generation + dataset + baseline
  // simulation) in parallel across apps — but only for apps that still
  // have pending cells; a fully-resumed app costs nothing.
  std::vector<std::function<void()>> prep_tasks;
  for (std::size_t a = 0; a < states.size(); ++a) {
    const bool needed = std::any_of(pending.begin() + static_cast<std::ptrdiff_t>(a * npf),
                                    pending.begin() + static_cast<std::ptrdiff_t>((a + 1) * npf),
                                    [](char x) { return x != 0; });
    if (!needed) continue;
    AppState* state = states[a].get();
    prep_tasks.push_back([state, this] {
      state->pipe.prepare();
      sim::Simulator simulator(spec_.pipeline.sim);
      state->baseline_ipc = simulator
                                .run(state->pipe.raw_trace(), nullptr,
                                     sim::thread_local_sim_workspace())
                                .ipc();
    });
  }
  run_tasks(prep_tasks, spec_.parallel);

  // Phase 2: every pending (app, prefetcher) cell is an independent pool
  // task wrapped in the retry/timeout/quarantine harness. Heavy shared
  // artifacts (teacher, LSTM, DART tables) are trained lazily under the
  // app's context lock the first time a cell needs them.
  std::mutex zombies_mu;
  std::vector<std::thread> zombies;  // abandoned timed-out attempt threads
  std::vector<std::function<void()>> cell_tasks;
  std::size_t prepped_apps = 0;
  for (std::size_t a = 0; a < states.size(); ++a) {
    bool app_has_cells = false;
    for (std::size_t p = 0; p < npf; ++p) {
      const std::size_t i = a * npf + p;
      if (!pending[i]) continue;
      app_has_cells = true;
      AppState* state = states[a].get();
      ExperimentCell* cell = &result.cells[i];
      const std::uint64_t key = keys[i];
      const std::string spec_text = spec_.prefetchers[p];
      // The attempt body: everything that may fail or hang, producing a
      // finished cell. Runs inline or on a timed attempt thread.
      auto simulate = [state, spec_text, sweep, this]() {
        const common::CellFault fault =
            common::fault_injector().on_cell(state->workload.name() + "|" + spec_text);
        if (fault.delay_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
        }
        if (fault.fail) {
          throw std::runtime_error("injected fail-cell fault for " + spec_text);
        }
        std::unique_ptr<sim::Prefetcher> pf = sim::make_prefetcher(spec_text, state->ctx);
        // NN adapters drive a model shared with this app's other cells and
        // mutate it during forward: serialize their simulations on the app
        // lock (cells of other apps and rule-based cells stay concurrent).
        std::unique_lock<std::mutex> model_lock;
        if (pf->shares_mutable_model()) model_lock = std::unique_lock(state->mu);
        sim::SimStats stats;
        if (sweep.trace_shards > 1 && !pf->shares_mutable_model()) {
          // Sharded replay with pinned deterministic merge. Mutable-model
          // prefetchers are excluded: per-shard instances would contend on
          // the one shared model, which is neither faster nor meaningful.
          sim::ShardReplayOptions shard_opts;
          shard_opts.shards = sweep.trace_shards;
          shard_opts.warmup = sweep.shard_warmup;
          stats = sim::run_sharded(
                      spec_.pipeline.sim, state->pipe.raw_trace(),
                      [state, spec_text] { return sim::make_prefetcher(spec_text, state->ctx); },
                      shard_opts)
                      .merged;
        } else {
          sim::Simulator simulator(spec_.pipeline.sim);
          // Every cell replays through its worker thread's reusable
          // workspace: after the pool warms up, a sweep of any size
          // performs zero steady-state replay allocations.
          stats = simulator.run(state->pipe.raw_trace(), pf.get(),
                                sim::thread_local_sim_workspace());
        }
        ExperimentCell out;
        out.spec = spec_text;
        out.prefetcher = pf->name();
        out.app = state->workload.name();
        out.stats = stats;
        out.baseline_ipc = state->baseline_ipc;
        out.ipc_improvement = state->baseline_ipc > 0.0
                                  ? (stats.ipc() - state->baseline_ipc) / state->baseline_ipc
                                  : 0.0;
        out.storage_bytes = pf->storage_bytes();
        out.latency_cycles = pf->prediction_latency();
        return out;
      };
      cell_tasks.push_back([simulate, state, cell, key, spec_text, sweep, &zombies, &zombies_mu,
                            &store] {
        const std::uint32_t max_attempts = sweep.cell_retries + 1;
        std::string last_error;
        std::uint32_t attempts = 0;
        bool ok = false;
        for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
          ++attempts;
          ExperimentCell out;
          std::exception_ptr err;
          const bool finished =
              run_attempt(simulate, sweep.cell_timeout_ms, &zombies, &zombies_mu, &out, &err);
          if (finished && !err) {
            *cell = std::move(out);
            ok = true;
            break;
          }
          if (err) {
            try {
              std::rethrow_exception(err);
            } catch (const SweepCrash&) {
              throw;  // a crash is never a cell failure: propagate, no retry
            } catch (const std::exception& e) {
              last_error = e.what();
            } catch (...) {
              last_error = "unknown cell error";
            }
          } else {
            last_error = "cell attempt timed out after " +
                         std::to_string(sweep.cell_timeout_ms) + " ms";
          }
          if (attempt < max_attempts && sweep.backoff_ms > 0) {
            // Doubling backoff: transient failures (exhausted file handles,
            // memory pressure) get breathing room before the retry.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sweep.backoff_ms << (attempt - 1)));
          }
        }
        if (ok) {
          cell->status = CellStatus::kDone;
          cell->error.clear();
        } else {
          // Quarantine: the cell keeps its identity (so reports still show
          // the row) but zero counters, and the sweep carries on.
          cell->spec = spec_text;
          cell->prefetcher = spec_text;
          cell->app = state->workload.name();
          cell->baseline_ipc = state->baseline_ipc;
          cell->status = CellStatus::kFailed;
          cell->error = last_error;
        }
        cell->attempts = attempts;
        if (store) {
          CellRecord rec;
          rec.key = key;
          rec.status = cell->status;
          rec.attempts = attempts;
          rec.error = cell->error;
          rec.cell = *cell;
          store->append(rec);  // durable commit; may throw SweepCrash
        }
      });
    }
    if (app_has_cells) ++prepped_apps;
  }
  // Single-app grids run cells inline: their heavy cost is model training,
  // which serializes on the one app lock anyway, and training's nested
  // parallel_for only fans out when not already inside a pool worker.
  std::exception_ptr sweep_error;
  try {
    run_tasks(cell_tasks, spec_.parallel && prepped_apps > 1);
  } catch (...) {
    sweep_error = std::current_exception();
  }
  // Reap abandoned attempt threads before anything they reference (the app
  // states, the store) leaves scope — and before TSan would flag them.
  {
    std::lock_guard z(zombies_mu);
    for (std::thread& t : zombies) t.join();
    zombies.clear();
  }
  if (sweep_error) std::rethrow_exception(sweep_error);

  // Distinct specs can share a display name (e.g. two unlabeled stride
  // configurations). Reporting groups by display name, so fall back to the
  // spec text for colliding names rather than silently merging their cells.
  std::map<std::string, std::set<std::string>> specs_by_name;
  for (const auto& c : result.cells) specs_by_name[c.prefetcher].insert(c.spec);
  for (auto& c : result.cells) {
    if (specs_by_name[c.prefetcher].size() > 1) c.prefetcher = c.spec;
  }
  return result;
}

}  // namespace dart::core
