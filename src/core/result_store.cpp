#include "core/result_store.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/fault.hpp"
#include "io/bytes.hpp"

namespace dart::core {

namespace {

// Frame header: magic 'DRS1' + payload length + payload checksum.
constexpr std::uint32_t kRecordMagic = 0x31535244u;  // "DRS1" little-endian
constexpr std::size_t kFrameHeader = 4 + 4 + 8;
constexpr std::uint8_t kRecordVersion = 1;

void serialize_record(const CellRecord& rec, io::ByteWriter* payload) {
  payload->u8(kRecordVersion);
  payload->u64(rec.key);
  payload->u8(static_cast<std::uint8_t>(rec.status));
  payload->u32(rec.attempts);
  payload->str(rec.error);
  const ExperimentCell& c = rec.cell;
  payload->str(c.spec);
  payload->str(c.prefetcher);
  payload->str(c.app);
  payload->f64(c.baseline_ipc);
  payload->f64(c.ipc_improvement);
  payload->u64(c.stats.instructions);
  payload->u64(c.stats.cycles);
  payload->u64(c.stats.llc_accesses);
  payload->u64(c.stats.llc_hits);
  payload->u64(c.stats.llc_demand_misses);
  payload->u64(c.stats.pf_issued);
  payload->u64(c.stats.pf_useful);
  payload->u64(c.stats.pf_late);
  payload->u64(c.stats.pf_dropped);
  payload->u64(c.storage_bytes);
  payload->u64(c.latency_cycles);
}

CellRecord parse_record(const std::uint8_t* data, std::size_t n) {
  io::ByteReader r(data, n);
  const std::uint8_t version = r.u8();
  if (version != kRecordVersion) {
    throw io::ArtifactError("result-store record version " + std::to_string(version) +
                            " is not supported");
  }
  CellRecord rec;
  rec.key = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(CellStatus::kSkipped)) {
    throw io::ArtifactError("result-store record has invalid status " + std::to_string(status));
  }
  rec.status = static_cast<CellStatus>(status);
  rec.attempts = r.u32();
  rec.error = r.str();
  ExperimentCell& c = rec.cell;
  c.spec = r.str();
  c.prefetcher = r.str();
  c.app = r.str();
  c.baseline_ipc = r.f64();
  c.ipc_improvement = r.f64();
  c.stats.instructions = r.u64();
  c.stats.cycles = r.u64();
  c.stats.llc_accesses = r.u64();
  c.stats.llc_hits = r.u64();
  c.stats.llc_demand_misses = r.u64();
  c.stats.pf_issued = r.u64();
  c.stats.pf_useful = r.u64();
  c.stats.pf_late = r.u64();
  c.stats.pf_dropped = r.u64();
  c.storage_bytes = static_cast<std::size_t>(r.u64());
  c.latency_cycles = static_cast<std::size_t>(r.u64());
  if (!r.done()) {
    throw io::ArtifactError("result-store record payload has " +
                            std::to_string(r.remaining()) + " trailing bytes");
  }
  c.status = rec.status;
  c.attempts = rec.attempts;
  c.error = rec.error;
  return rec;
}

std::uint64_t read_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint32_t read_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t sweep_cell_key(const std::string& workload, const std::string& prefetcher,
                             const std::string& config) {
  // Chain the three length-prefixed strings so ("ab","c") and ("a","bc")
  // cannot collide.
  io::ByteWriter w;
  w.str(workload);
  w.str(prefetcher);
  w.str(config);
  return io::fnv1a64(w.bytes().data(), w.size());
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw io::ArtifactError("cannot create result-store directory '" + dir_ +
                            "': " + ec.message());
  }
  path_ = dir_ + "/results.log";
  replay_and_recover();
  open_append_fd();
}

ResultStore::~ResultStore() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
}

void ResultStore::replay_and_recover() {
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    if (in) {
      const std::streamsize n = in.tellg();
      bytes.resize(static_cast<std::size_t>(n));
      in.seekg(0);
      if (n > 0) in.read(reinterpret_cast<char*>(bytes.data()), n);
      if (!in) throw io::ArtifactError("cannot read result store '" + path_ + "'");
    }
  }
  const std::size_t disk_size = bytes.size();
  // Chaos hook: an armed corrupt-store-tail fault chops the image here,
  // simulating the torn final write the recovery below must absorb.
  common::fault_injector().mutate_store(bytes);

  // Scan frames front to back; the first bad frame ends the valid prefix.
  // Everything after it is a torn tail: dropped, never trusted.
  std::size_t off = 0;
  while (off + kFrameHeader <= bytes.size()) {
    if (read_u32_le(bytes.data() + off) != kRecordMagic) break;
    const std::uint32_t len = read_u32_le(bytes.data() + off + 4);
    if (off + kFrameHeader + len > bytes.size()) break;
    const std::uint64_t checksum = read_u64_le(bytes.data() + off + 8);
    const std::uint8_t* payload = bytes.data() + off + kFrameHeader;
    if (io::fnv1a64(payload, len) != checksum) break;
    CellRecord rec;
    try {
      rec = parse_record(payload, len);
    } catch (const io::ArtifactError&) {
      break;  // checksum collided with garbage; treat as torn
    }
    auto it = index_.find(rec.key);
    if (it == index_.end()) {
      index_.emplace(rec.key, records_.size());
      records_.push_back(std::move(rec));
    } else {
      records_[it->second] = std::move(rec);  // last record wins
    }
    off += kFrameHeader + len;
    ++recovery_.records;
  }

  recovery_.dropped_bytes = disk_size > off ? disk_size - off : 0;
  recovery_.truncated = recovery_.dropped_bytes > 0;
  if (recovery_.truncated) {
    std::cerr << "[result-store] '" << path_ << "': dropped " << recovery_.dropped_bytes
              << " torn trailing byte(s) at offset " << off << "; " << recovery_.records
              << " intact record(s) recovered\n";
  }
  // Make disk match the recovered prefix (atomically) so a later reader
  // never re-parses the torn tail we just rejected.
  if (off != disk_size) io::write_file_atomic(path_, bytes.data(), off);
}

void ResultStore::open_append_fd() {
#if defined(__unix__) || defined(__APPLE__)
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd_ < 0) throw io::ArtifactError("cannot open result store '" + path_ + "' for append");
#endif
}

std::size_t ResultStore::size() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

bool ResultStore::find(std::uint64_t key, CellRecord* out) const {
  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  *out = records_[it->second];
  return true;
}

std::vector<CellRecord> ResultStore::records() const {
  std::lock_guard lock(mu_);
  return records_;
}

void ResultStore::append(const CellRecord& rec) {
  io::ByteWriter payload;
  serialize_record(rec, &payload);
  io::ByteWriter frame;
  frame.u32(kRecordMagic);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u64(io::fnv1a64(payload.bytes().data(), payload.size()));
  std::vector<std::uint8_t> buf = frame.bytes();
  buf.insert(buf.end(), payload.bytes().begin(), payload.bytes().end());

  std::unique_lock lock(mu_);
  if (crashed_) {
    throw SweepCrash("result store crashed by fault injection; resume the sweep");
  }
#if defined(__unix__) || defined(__APPLE__)
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t w = ::write(fd_, buf.data() + off, buf.size() - off);
    if (w < 0) throw io::ArtifactError("failed appending to result store '" + path_ + "'");
    off += static_cast<std::size_t>(w);
  }
  // The commit point: the record must be durable before the index reflects
  // it or any crash fault fires (resume correctness depends on it).
  if (::fsync(fd_) != 0) {
    throw io::ArtifactError("failed syncing result store '" + path_ + "'");
  }
#else
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out) throw io::ArtifactError("cannot open result store '" + path_ + "' for append");
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    out.flush();
    if (!out) throw io::ArtifactError("failed appending to result store '" + path_ + "'");
  }
#endif
  auto it = index_.find(rec.key);
  if (it == index_.end()) {
    index_.emplace(rec.key, records_.size());
    records_.push_back(rec);
  } else {
    records_[it->second] = rec;
  }

  const common::CrashAction crash = common::fault_injector().on_store_commit();
  if (crash == common::CrashAction::kExit) {
    // A real kill for CI resume tests: nothing unwinds, no destructors run,
    // exactly like SIGKILL — except the exit code proves it was injected.
    std::_Exit(common::kCrashExitCode);
  }
  if (crash == common::CrashAction::kThrow) {
    crashed_ = true;  // latch: concurrent workers stop committing too
    throw SweepCrash("injected sweep crash after durable commit of cell key " +
                     std::to_string(rec.key));
  }
}

void ResultStore::compact() {
  std::lock_guard lock(mu_);
  io::ByteWriter image;
  for (const CellRecord& rec : records_) {
    io::ByteWriter payload;
    serialize_record(rec, &payload);
    image.u32(kRecordMagic);
    image.u32(static_cast<std::uint32_t>(payload.size()));
    image.u64(io::fnv1a64(payload.bytes().data(), payload.size()));
    for (std::uint8_t b : payload.bytes()) image.u8(b);
  }
#if defined(__unix__) || defined(__APPLE__)
  // Close the append fd across the rename: the old inode is dead after it.
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
#endif
  io::write_file_atomic(path_, image.bytes().data(), image.size());
  open_append_fd();
}

}  // namespace dart::core
