#include "core/configs.hpp"

#include "common/env.hpp"

namespace dart::core {

tabular::QuantMode quant_mode_from_env() {
  return tabular::parse_quant_mode(common::env_string("DART_QUANT", "off"));
}

trace::PreprocessOptions default_preprocess() {
  trace::PreprocessOptions p;
  p.history = 8;
  p.segment_bits = 6;
  p.addr_segments = 8;
  p.pc_segments = 8;
  p.bitmap_size = 128;
  p.lookforward = 16;
  return p;
}

namespace {
nn::ModelConfig base_arch() {
  const auto prep = default_preprocess();
  nn::ModelConfig m;
  m.seq_len = prep.history;
  m.addr_dim = prep.addr_segments;
  m.pc_dim = prep.pc_segments;
  m.out_dim = prep.bitmap_size;
  return m;
}
}  // namespace

nn::ModelConfig paper_teacher_config() {
  nn::ModelConfig m = base_arch();
  m.layers = 4;
  m.dim = 256;
  m.heads = 8;
  m.ffn_dim = 4 * m.dim;
  return m;
}

nn::ModelConfig paper_student_config() {
  nn::ModelConfig m = base_arch();
  m.layers = 1;
  m.dim = 32;
  m.heads = 2;
  m.ffn_dim = 4 * m.dim;
  return m;
}

nn::ModelConfig bench_teacher_config() {
  if (common::env_int("DART_PAPER_SCALE", 0) != 0) return paper_teacher_config();
  nn::ModelConfig m = base_arch();
  m.layers = 2;
  m.dim = 64;
  m.heads = 4;
  m.ffn_dim = 4 * m.dim;
  return m;
}

tabular::TableConfig dart_table_config() { return tabular::TableConfig::uniform(128, 2); }

DartVariant dart_s_variant() {
  nn::ModelConfig m = base_arch();
  m.layers = 1;
  m.dim = 16;
  m.heads = 2;
  m.ffn_dim = 4 * m.dim;
  return {"DART-S", 60, 30e3, m, tabular::TableConfig::uniform(16, 1)};
}

DartVariant dart_variant() {
  nn::ModelConfig m = paper_student_config();
  return {"DART", 100, 1e6, m, tabular::TableConfig::uniform(128, 2)};
}

DartVariant dart_l_variant() {
  nn::ModelConfig m = base_arch();
  m.layers = 2;
  m.dim = 32;
  m.heads = 2;
  m.ffn_dim = 4 * m.dim;
  return {"DART-L", 200, 4e6, m, tabular::TableConfig::uniform(256, 2)};
}

}  // namespace dart::core
