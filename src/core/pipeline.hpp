// End-to-end DART pipeline (the paper's Fig. 2): per-application data
// preparation -> teacher training -> knowledge-distilled student ->
// layer-wise tabularization with fine-tuning -> evaluation.
//
// The pipeline is stage-lazy: benches request only the stages they need
// (e.g. Table VI needs teacher + students, Fig. 8 needs the student + many
// tabularizations) and earlier stages are computed once and cached.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "nn/lstm.hpp"
#include "nn/trainer.hpp"
#include "nn/transformer.hpp"
#include "sim/config.hpp"
#include "tabular/tabularizer.hpp"
#include "trace/preprocess.hpp"
#include "trace/workloads.hpp"

namespace dart::core {

struct PipelineOptions {
  trace::PreprocessOptions prep;
  nn::ModelConfig teacher_arch;
  nn::ModelConfig student_arch;
  nn::TrainOptions teacher_train;
  nn::TrainOptions student_train;
  nn::KdOptions kd;
  tabular::TabularizeOptions tab;
  sim::SimConfig sim;
  std::size_t raw_accesses = 400000;  ///< generated accesses per app
  double train_frac = 0.75;
  std::uint64_t seed = 42;
  /// Directory for trained-artifact caching (NN checkpoints here; `.dart`
  /// files via core/artifact_cache.hpp). Empty disables caching. Stale
  /// entries are detected by a configuration hash in the file name
  /// (`pipeline_cache_key`), so changing any knob retrains automatically.
  std::string artifact_dir;

  /// Defaults scaled for CPU benches; reads DART_* env knobs (DESIGN.md §5),
  /// including DART_ARTIFACT_DIR for `artifact_dir`.
  static PipelineOptions bench_defaults();
};

/// Hash of every option that affects trained models for `workload` (trace
/// generation, preprocessing, architectures, training/distillation/
/// tabularization knobs, LLC-extraction geometry), as 16 hex digits.
/// Artifact caches key file names on it so stale files are never reused.
/// The workload contributes its canonical spec string, so two parameterized
/// workloads never collide. (trace::App converts implicitly.)
std::string pipeline_cache_key(const trace::Workload& workload, const PipelineOptions& options);

/// Per-workload experiment state.
class Pipeline {
 public:
  /// trace::App converts implicitly, so legacy `Pipeline(App::kMcf, o)`
  /// call sites keep working.
  Pipeline(trace::Workload workload, const PipelineOptions& options);

  /// Stage 0: generate the raw trace, extract the LLC stream, build and
  /// split the dataset. Called implicitly by later stages.
  void prepare();

  /// Stage 1 (§VI-B): the large attention model.
  nn::AddressPredictor& teacher();

  /// Student trained with plain BCE (the "Stu w/o KD" row of Table VI).
  nn::AddressPredictor& student_no_kd();

  /// Stage 2 (§VI-D): student distilled from the teacher.
  nn::AddressPredictor& student();

  /// Stage 3 (§VI-E): tabularize the distilled student. Does not cache —
  /// sweeps call this with varying configs.
  tabular::TabularPredictor tabularize(const tabular::TabularizeOptions& options,
                                       tabular::TabularizeReport* report = nullptr);

  /// Stage 3 with the pipeline's default options (cached).
  tabular::TabularPredictor& dart();

  /// Voyager-like LSTM baseline trained on the same data.
  nn::LstmPredictor& lstm_baseline();

  /// Shared-ownership handles to the cached models, for prefetcher adapters
  /// that may outlive the pipeline (sim::PrefetcherContext providers).
  std::shared_ptr<nn::AddressPredictor> teacher_shared();
  std::shared_ptr<nn::LstmPredictor> lstm_baseline_shared();

  // F1 on the held-out test split.
  nn::F1Result eval_nn(nn::AddressPredictor& model);
  nn::F1Result eval_lstm(nn::LstmPredictor& model);
  nn::F1Result eval_tabular(const tabular::TabularPredictor& model);

  const nn::Dataset& train_set();
  const nn::Dataset& test_set();
  const trace::MemoryTrace& raw_trace();
  const trace::MemoryTrace& llc_trace();
  const trace::Workload& workload() const { return workload_; }
  const PipelineOptions& options() const { return opts_; }

 private:
  /// Checkpoint path for `model` ("teacher"/"student"/"lstm") under
  /// `opts_.artifact_dir`, or "" when caching is disabled.
  std::string checkpoint_path(const char* model);

  trace::Workload workload_;
  PipelineOptions opts_;
  std::string cache_key_;  ///< lazily computed pipeline_cache_key
  bool prepared_ = false;
  trace::MemoryTrace raw_;
  trace::MemoryTrace llc_;
  nn::Dataset train_;
  nn::Dataset test_;
  std::shared_ptr<nn::AddressPredictor> teacher_;
  std::unique_ptr<nn::AddressPredictor> student_no_kd_;
  std::unique_ptr<nn::AddressPredictor> student_;
  std::shared_ptr<nn::LstmPredictor> lstm_;
  std::unique_ptr<tabular::TabularPredictor> dart_;
};

/// Micro-F1 of a tabular predictor on a dataset (probabilities vs labels).
nn::F1Result evaluate_tabular_f1(const tabular::TabularPredictor& model,
                                 const nn::Dataset& data, std::size_t batch = 512);

}  // namespace dart::core
